// Package carat reproduces "A Queueing Network Model for a Distributed
// Database Testbed System" (Jenq, Kohler, Towsley; ICDE 1987): an
// analytical queueing network model of a distributed transaction
// processing system — two-phase locking with distributed deadlock
// detection, before-image write-ahead journaling, and centralized
// two-phase commit — validated against a faithful discrete-event simulator
// of the CARAT testbed the paper measured.
//
// The package offers three entry points:
//
//   - SolveModel analytically predicts throughput, utilizations, disk I/O
//     rates and response times for a workload (the paper's contribution).
//   - Simulate runs the CARAT testbed simulator on the same workload (the
//     paper's "measurement" side).
//   - Compare does both and lays the results side by side, which is how
//     every table and figure of the paper's evaluation is regenerated.
//
// Standard workloads are the paper's LB8, MB4, MB8 and UB6; NewWorkload
// builds custom mixes. All times are milliseconds unless a field name says
// otherwise.
package carat

import (
	"fmt"
	"strconv"
	"strings"

	"carat/internal/cc"
	"carat/internal/core"
	"carat/internal/disk"
	"carat/internal/experiment"
	"carat/internal/openload"
	"carat/internal/placement"
	"carat/internal/repl"
	"carat/internal/stats"
	"carat/internal/storage"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// TxnType identifies a workload transaction type.
type TxnType string

// The four synthetic transaction types of the paper's workload (Section 2).
const (
	LocalReadOnly     TxnType = "LRO"
	LocalUpdate       TxnType = "LU"
	DistributedRead   TxnType = "DRO"
	DistributedUpdate TxnType = "DU"
)

func (t TxnType) kind() (testbed.TxnKind, error) {
	switch t {
	case LocalReadOnly:
		return testbed.LRO, nil
	case LocalUpdate:
		return testbed.LU, nil
	case DistributedRead:
		return testbed.DRO, nil
	case DistributedUpdate:
		return testbed.DU, nil
	default:
		return 0, fmt.Errorf("carat: unknown transaction type %q", string(t))
	}
}

// Workload describes one experiment: a transaction mix over a set of
// nodes at a given transaction size. Construct with WorkloadLB8/MB4/MB8/
// UB6 or NewWorkload, then adjust with the With* methods (which return
// modified copies).
type Workload struct {
	w workload.Workload
}

// WorkloadLB8 returns the paper's local-only workload (4 LRO + 4 LU users
// per node) at transaction size n.
func WorkloadLB8(n int) Workload { return Workload{workload.LB8(n)} }

// WorkloadMB4 returns the paper's mixed distributed workload (one user of
// each type per node) at transaction size n.
func WorkloadMB4(n int) Workload { return Workload{workload.MB4(n)} }

// WorkloadMB8 returns MB4 with doubled populations.
func WorkloadMB8(n int) Workload { return Workload{workload.MB8(n)} }

// WorkloadUB6 returns the paper's local-intensive distributed workload
// (2 LRO + 2 LU + 1 DRO + 1 DU per node).
func WorkloadUB6(n int) Workload { return Workload{workload.UB6(n)} }

// WorkloadByName looks up a standard workload ("LB8", "MB4", "MB8", "UB6").
func WorkloadByName(name string, n int) (Workload, error) {
	w, err := workload.ByName(name, n)
	return Workload{w}, err
}

// User places one closed-loop user of the given type at a home node; Remote
// names the slave node for distributed types. Remotes optionally spreads a
// distributed transaction's remote requests over several slave sites, with
// two-phase commit coordinating all of them.
type User struct {
	Type    TxnType
	Home    int
	Remote  int
	Remotes []int
}

// NewWorkload builds a custom two-or-more-node workload with the paper's
// Table 2 service costs and disk profiles (node 0 gets the RM05, others
// the RP06). Users place the transaction mix; n is the transaction size.
func NewWorkload(name string, nodes int, users []User, n int) (Workload, error) {
	if nodes < 1 {
		return Workload{}, fmt.Errorf("carat: need at least one node")
	}
	var specs []testbed.UserSpec
	for i, u := range users {
		k, err := u.Type.kind()
		if err != nil {
			return Workload{}, fmt.Errorf("carat: user %d: %w", i, err)
		}
		spec := testbed.UserSpec{
			Kind:   k,
			Home:   testbed.NodeID(u.Home),
			Remote: testbed.NodeID(u.Remote),
		}
		for _, r := range u.Remotes {
			spec.Remotes = append(spec.Remotes, testbed.NodeID(r))
		}
		specs = append(specs, spec)
	}
	dbs := make([]disk.ServiceModel, nodes)
	logs := make([]disk.ServiceModel, nodes)
	for i := range dbs {
		if i == 0 {
			dbs[i] = disk.ProfileRM05()
		} else {
			dbs[i] = disk.ProfileRP06()
		}
	}
	w := workload.Workload{
		Name:              name,
		NumNodes:          nodes,
		Users:             specs,
		RequestsPerTxn:    n,
		RecordsPerRequest: 4,
		RemoteFrac:        0.5,
		Layout:            storage.DefaultLayout(),
		Params:            testbed.DefaultParams(nodes),
		DBDisks:           dbs,
		LogDisks:          logs,
	}
	return Workload{w}, nil
}

// Name returns the workload's name.
func (w Workload) Name() string { return w.w.Name }

// TransactionSize returns n, the requests per transaction.
func (w Workload) TransactionSize() int { return w.w.RequestsPerTxn }

// WithTransactionSize returns a copy at a different transaction size.
func (w Workload) WithTransactionSize(n int) Workload {
	w.w.RequestsPerTxn = n
	return w
}

// WithSeparateLogDisks gives every node a dedicated log device with the
// same profile as its database disk — the configuration the paper says a
// real deployment would use.
func (w Workload) WithSeparateLogDisks() Workload {
	logs := make([]disk.ServiceModel, w.w.NumNodes)
	copy(logs, w.w.DBDisks)
	w.w.LogDisks = logs
	return w
}

// WithBufferHitRatio enables the shared database buffer extension: the
// fraction h of granule reads hit memory and skip the disk.
func (w Workload) WithBufferHitRatio(h float64) Workload {
	w.w.BufferHitRatio = h
	return w
}

// WithThinkTime sets the user think time R_UT for every transaction type
// (the paper runs with zero). The workload's other cost parameters are
// preserved: only ThinkTime changes, in a fresh copy of the cost tables so
// the receiver workload is not mutated.
func (w Workload) WithThinkTime(ms float64) Workload {
	p := w.w.Params
	if p.Costs == nil {
		p = testbed.DefaultParams(w.w.NumNodes)
	}
	costs := make(map[testbed.NodeID]map[testbed.TxnKind]testbed.PhaseCosts, len(p.Costs))
	for n, byKind := range p.Costs {
		m := make(map[testbed.TxnKind]testbed.PhaseCosts, len(byKind))
		for k, c := range byKind {
			c.ThinkTime = ms
			m[k] = c
		}
		costs[n] = m
	}
	p.Costs = costs
	w.w.Params = p
	return w
}

// WithHotspot skews record access: frac of accesses target the first hot
// fraction of each site's records (the nonuniform-access extension from
// the paper's conclusions). It affects the simulator; the analytical model
// keeps the paper's uniform-access assumption, so expect the two to
// diverge — that divergence is the point of the extension.
func (w Workload) WithHotspot(hot, frac float64) Workload {
	w.w.Pattern = storage.Hotspot{Hot: hot, Frac: frac}
	return w
}

// WithDatabaseSize overrides each site's database size (blocks at the
// paper's six records per block). Smaller databases raise contention.
func (w Workload) WithDatabaseSize(granules int) Workload {
	w.w.Layout = storage.Layout{Granules: granules, RecordsPerGran: 6}
	return w
}

// ConcurrencyControl names a concurrency control protocol for the
// simulator. The analytical model covers only TwoPhaseLocking (the paper's
// scheme); SolveModel returns an error for the baselines.
type ConcurrencyControl string

// The available protocols: the paper's dynamic 2PL with deadlock
// detection, the two classical timestamp-prevention variants, basic
// timestamp ordering (the alternative Galler's study — cited by the
// paper — favored), optimistic execution with backward validation at
// commit, and QueCC-style deterministic queue-ordered execution.
const (
	TwoPhaseLocking   ConcurrencyControl = "2PL"
	WaitDie           ConcurrencyControl = "wait-die"
	WoundWait         ConcurrencyControl = "wound-wait"
	TimestampOrdering ConcurrencyControl = "timestamp-ordering"
	OptimisticCC      ConcurrencyControl = "occ"
	QueCC             ConcurrencyControl = "quecc"
)

// ParseConcurrencyControl resolves a user-supplied protocol name —
// case-insensitively, accepting the canonical names and common aliases
// ("optimistic", "deterministic", "to", …). Unknown names return an error
// listing the valid modes; it is the strict front door the CLIs use for
// their -cc flags.
func ParseConcurrencyControl(name string) (ConcurrencyControl, error) {
	p, err := cc.Parse(name)
	if err != nil {
		return "", err
	}
	switch p {
	case cc.TwoPhaseWaitDie:
		return WaitDie, nil
	case cc.TwoPhaseWoundWait:
		return WoundWait, nil
	case cc.TimestampOrdering:
		return TimestampOrdering, nil
	case cc.Optimistic:
		return OptimisticCC, nil
	case cc.QueueOrdered:
		return QueCC, nil
	default:
		return TwoPhaseLocking, nil
	}
}

// protocol maps the facade name to the testbed's protocol enum.
// Unrecognized values fall back to the paper's 2PL default.
func (c ConcurrencyControl) protocol() testbed.CCProtocol {
	switch c {
	case WaitDie:
		return testbed.CCWaitDie
	case WoundWait:
		return testbed.CCWoundWait
	case TimestampOrdering:
		return testbed.CCTimestamp
	case OptimisticCC:
		return testbed.CCOCC
	case QueCC:
		return testbed.CCQueCC
	default:
		return testbed.CC2PL
	}
}

// WithConcurrencyControl selects the simulator's protocol. Unrecognized
// values fall back to the paper's 2PL default; use ParseConcurrencyControl
// to validate names first.
func (w Workload) WithConcurrencyControl(ccName ConcurrencyControl) Workload {
	w.w.Concurrency = ccName.protocol()
	return w
}

// WithDeadlockAdjust scales the model's two-cycle deadlock probability by
// the given factor — the per-workload adjusting factor of Section 5.4.3.
// Fit one with CalibrateDeadlockFactor.
func (w Workload) WithDeadlockAdjust(factor float64) Workload {
	w.w.DeadlockAdjust = factor
	return w
}

// WithTMSerializationModel enables the analytical model's optional
// TM-server serialization correction — the delay the paper deliberately
// ignores (Section 5.5) and blames for its largest deviations at small
// transaction sizes. The correction lowers predicted throughput slightly,
// most at small n.
func (w Workload) WithTMSerializationModel() Workload {
	w.w.ModelTMSerialization = true
	return w
}

// WithRemoteFraction sets the share of a distributed transaction's n
// requests that execute at its slave sites (the paper's experiments use
// 0.5: l = r = n/2). Both the simulator's request scheduler and the
// model's l(t)/r(t) split follow it.
func (w Workload) WithRemoteFraction(frac float64) Workload {
	w.w.RemoteFrac = frac
	return w
}

// WithCPUs gives every node k processors (the paper's nodes had one; two
// models a VAX 11/782-class dual processor). The model's CPU center
// becomes an m-server station solved with Seidmann's approximation.
func (w Workload) WithCPUs(k int) Workload {
	w.w.CPUs = k
	return w
}

// WithDetailedDisks swaps the flat per-block disk times for positional
// seek+rotation models calibrated to the same means. The analytical model
// keeps using the means, so the comparison measures the robustness of that
// assumption against realistic service-time variability.
func (w Workload) WithDetailedDisks() Workload {
	w.w.DetailedDisks = true
	return w
}

// WithEthernet models the inter-site network as the testbed's 10 Mb/s
// Ethernet under load ([ALME79], the paper's Communication Network Model)
// instead of a fixed delay: the simulator estimates channel utilization
// from bytes on the wire, and the analytical model feeds its own message
// rate back into the network model each iteration. At the paper's two-node
// message rates the resulting α is fractions of a millisecond — the
// paper's justification for neglecting it.
func (w Workload) WithEthernet() Workload {
	w.w.EthernetAlpha = true
	return w
}

// WithStripedDatabase spreads each site's database over k identical disks
// (block g on disk g mod k) — the paper's "multiple DISK queueing centers"
// option. Both the simulator and the model gain one disk queue per stripe;
// the shared recovery log stays on the first stripe unless
// WithSeparateLogDisks is also applied.
func (w Workload) WithStripedDatabase(k int) Workload {
	w.w.DiskStripes = k
	return w
}

// WithNetworkDelay sets the mean one-way inter-site message delay α in ms.
// The paper measured a negligible α on its two-node Ethernet and dropped
// it; a non-zero value slows distributed transactions in both the model
// (Eqs. 21–22 and the 2PC round trips) and the simulator.
func (w Workload) WithNetworkDelay(alphaMS float64) Workload {
	w.w.Alpha = alphaMS
	return w
}

// SiteCrash schedules one explicit crash in a FaultPlan: site Site loses
// its volatile state at AtMS and begins restart recovery DownForMS later.
type SiteCrash struct {
	Site      int
	AtMS      float64
	DownForMS float64
}

// PartitionSchedule schedules one network partition: at AtMS the sites
// split into the given groups (any site not listed stays in an implicit
// last group), messages cross group boundaries in neither direction, and
// after HealAfterMS the network heals and deferred reconciliation runs.
type PartitionSchedule struct {
	Groups      [][]int
	AtMS        float64
	HealAfterMS float64
}

// GrayFailure degrades one site without failing it: from AtMS for ForMS
// the site's CPU service times are stretched by CPUFactor and its disk
// service times by DiskFactor (each >= 1; zero leaves that resource
// unchanged). The site stays up and answers every protocol — just slowly.
type GrayFailure struct {
	Site       int
	AtMS       float64
	ForMS      float64
	CPUFactor  float64
	DiskFactor float64
}

// FaultPlan injects mid-run faults into simulator runs: site crashes
// (explicit schedule and/or an exponential crash process), network
// partitions (scheduled and/or a random partition process), gray failures,
// message loss and extra delay on the inter-site network, and the protocol
// timeouts surviving sites use to degrade gracefully. Fault timing is
// driven by a dedicated RNG stream derived from Seed, so it is
// deterministic and independent of the workload seed. A zero plan is fully
// inert. All times are milliseconds.
type FaultPlan struct {
	// Seed drives the fault RNG (zero selects a fixed default stream).
	Seed uint64
	// Crashes lists explicit crash/restart events.
	Crashes []SiteCrash
	// CrashMTTFMS > 0 adds a random crash process per site with this mean
	// time to failure; each outage lasts an exponential time with mean
	// CrashMTTRMS (default 5000) before restart recovery begins.
	CrashMTTFMS float64
	CrashMTTRMS float64
	// MsgLossProb loses each inter-site message with this probability,
	// adding MsgRetransmitMS (default 10) per retransmission.
	MsgLossProb     float64
	MsgRetransmitMS float64
	// MsgExtraDelayProb adds, with this probability, an exponential extra
	// delay of mean MsgExtraDelayMS (default 5) to an inter-site hop.
	MsgExtraDelayProb float64
	MsgExtraDelayMS   float64
	// PrepareTimeoutMS bounds the 2PC coordinator's wait for PREPARE
	// acknowledgments (presumed abort on expiry); zero disables it.
	PrepareTimeoutMS float64
	// LockWaitTimeoutMS bounds every lock wait; zero disables it.
	LockWaitTimeoutMS float64
	// RetryBackoffMS is how long a user whose slave site is down waits
	// between submission attempts (default 500).
	RetryBackoffMS float64
	// ProbeLossProb drops each inter-site deadlock probe with this
	// probability — silently, with no retransmission (1.0 is allowed: a
	// fully partitioned detection channel). Probe retransmission
	// (Resilience.ProbeRetryMS) is the countermeasure.
	ProbeLossProb float64
	// ProbeLossUntilMS, when positive, drops every inter-site probe before
	// this simulation instant — a bounded detection-channel outage.
	ProbeLossUntilMS float64
	// Partitions lists explicit network partitions.
	Partitions []PartitionSchedule
	// PartitionMTBFMS > 0 adds a random partition process with this mean
	// time between partitions; each lasts an exponential time with mean
	// PartitionMeanMS (default 10000), splitting sites into two groups
	// with per-site probability PartitionSplitProb (default 0.5).
	PartitionMTBFMS    float64
	PartitionMeanMS    float64
	PartitionSplitProb float64
	// GraySites lists scheduled gray-failure windows.
	GraySites []GrayFailure
	// HeartbeatIntervalMS and SuspectAfterMS tune the heartbeat failure
	// detector that partitions arm (defaults 250 and 1000): a site
	// unobserved for SuspectAfterMS is suspected until heard from again.
	HeartbeatIntervalMS float64
	SuspectAfterMS      float64
}

// WithFaults attaches a fault plan to the workload's simulator runs; the
// analytical model ignores it. Availability metrics appear in
// NodeMetrics and Measurement.
func (w Workload) WithFaults(f FaultPlan) Workload {
	fp := &testbed.FaultPlan{
		Seed:              f.Seed,
		CrashMTTFMS:       f.CrashMTTFMS,
		CrashMTTRMS:       f.CrashMTTRMS,
		MsgLossProb:       f.MsgLossProb,
		MsgRetransmitMS:   f.MsgRetransmitMS,
		MsgExtraDelayProb: f.MsgExtraDelayProb,
		MsgExtraDelayMS:   f.MsgExtraDelayMS,
		PrepareTimeoutMS:  f.PrepareTimeoutMS,
		LockWaitTimeoutMS: f.LockWaitTimeoutMS,
		RetryBackoffMS:    f.RetryBackoffMS,
		ProbeLossProb:     f.ProbeLossProb,
		ProbeLossUntilMS:  f.ProbeLossUntilMS,

		PartitionMTBFMS:     f.PartitionMTBFMS,
		PartitionMeanMS:     f.PartitionMeanMS,
		PartitionSplitProb:  f.PartitionSplitProb,
		HeartbeatIntervalMS: f.HeartbeatIntervalMS,
		SuspectAfterMS:      f.SuspectAfterMS,
	}
	for _, c := range f.Crashes {
		fp.Crashes = append(fp.Crashes, testbed.SiteCrash{
			Site: testbed.NodeID(c.Site), AtMS: c.AtMS, DownForMS: c.DownForMS,
		})
	}
	for _, ps := range f.Partitions {
		groups := make([][]testbed.NodeID, 0, len(ps.Groups))
		for _, g := range ps.Groups {
			ids := make([]testbed.NodeID, 0, len(g))
			for _, s := range g {
				ids = append(ids, testbed.NodeID(s))
			}
			groups = append(groups, ids)
		}
		fp.Partitions = append(fp.Partitions, testbed.PartitionSchedule{
			Groups: groups, AtMS: ps.AtMS, HealAfterMS: ps.HealAfterMS,
		})
	}
	for _, g := range f.GraySites {
		fp.GraySites = append(fp.GraySites, testbed.GrayFailure{
			Site: testbed.NodeID(g.Site), AtMS: g.AtMS, ForMS: g.ForMS,
			CPUFactor: g.CPUFactor, DiskFactor: g.DiskFactor,
		})
	}
	w.w.Faults = fp
	return w
}

// ParseFaultPlan parses the comma-separated key=value fault syntax shared
// by the command-line tools (caratsim -faults, carattrace -faults):
//
//	crash=SITE@AT+DOWN  crash site SITE at AT ms for DOWN ms (repeatable)
//	mttf=MS             random crashes: mean time to failure per site
//	mttr=MS             mean outage before restart recovery (default 5000)
//	loss=P              per-message loss probability in [0,1)
//	retrans=MS          retransmission delay per lost message (default 10)
//	delayp=P            probability of extra delay on a hop
//	delayms=MS          mean of the extra exponential delay (default 5)
//	prepto=MS           2PC prepare timeout (presumed abort on expiry)
//	lockto=MS           lock wait timeout
//	backoff=MS          user retry backoff while a slave site is down
//	probeloss=P         per-probe loss probability in [0,1] (no retransmit)
//	probeout=MS         drop every inter-site probe before this instant
//	fseed=N             fault RNG seed (default: a fixed stream)
func ParseFaultPlan(s string) (FaultPlan, error) {
	var f FaultPlan
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return f, fmt.Errorf("faults: %q is not key=value", part)
		}
		if key == "crash" {
			rest, down, ok := strings.Cut(val, "+")
			if !ok {
				return f, fmt.Errorf("faults: crash wants SITE@AT+DOWN, got %q", val)
			}
			site, at, ok := strings.Cut(rest, "@")
			if !ok {
				return f, fmt.Errorf("faults: crash wants SITE@AT+DOWN, got %q", val)
			}
			sc := SiteCrash{}
			var err error
			if sc.Site, err = strconv.Atoi(site); err != nil {
				return f, fmt.Errorf("faults: crash site %q: %w", site, err)
			}
			if sc.AtMS, err = strconv.ParseFloat(at, 64); err != nil {
				return f, fmt.Errorf("faults: crash time %q: %w", at, err)
			}
			if sc.DownForMS, err = strconv.ParseFloat(down, 64); err != nil {
				return f, fmt.Errorf("faults: crash duration %q: %w", down, err)
			}
			f.Crashes = append(f.Crashes, sc)
			continue
		}
		if key == "fseed" {
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return f, fmt.Errorf("faults: fseed %q: %w", val, err)
			}
			f.Seed = n
			continue
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return f, fmt.Errorf("faults: %s value %q: %w", key, val, err)
		}
		switch key {
		case "mttf":
			f.CrashMTTFMS = x
		case "mttr":
			f.CrashMTTRMS = x
		case "loss":
			f.MsgLossProb = x
		case "retrans":
			f.MsgRetransmitMS = x
		case "delayp":
			f.MsgExtraDelayProb = x
		case "delayms":
			f.MsgExtraDelayMS = x
		case "prepto":
			f.PrepareTimeoutMS = x
		case "lockto":
			f.LockWaitTimeoutMS = x
		case "backoff":
			f.RetryBackoffMS = x
		case "probeloss":
			f.ProbeLossProb = x
		case "probeout":
			f.ProbeLossUntilMS = x
		default:
			return f, fmt.Errorf("faults: unknown key %q", key)
		}
	}
	return f, nil
}

// ParsePartitions parses the command-line network-partition syntax
// (caratsim -partition) into the plan: semicolon-separated entries, each
// either a scheduled split
//
//	GROUPS@AT+HEAL   e.g. 0,1|2,3@60000+20000
//
// — GROUPS is |-separated comma lists of sites; the split takes effect at
// AT ms and heals HEAL ms later — or one of the key=value options
//
//	mtbf=MS     random partition process: mean time between partitions
//	mean=MS     mean partition duration (default 10000)
//	split=P     per-site probability of landing in the first group (0.5)
//	hb=MS       failure-detector heartbeat interval (default 250)
//	suspect=MS  suspicion timeout (default 1000)
func ParsePartitions(s string, f *FaultPlan) error {
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if key, val, ok := strings.Cut(part, "="); ok && !strings.Contains(key, "@") {
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("partition: %s value %q: %w", key, val, err)
			}
			switch key {
			case "mtbf":
				f.PartitionMTBFMS = x
			case "mean":
				f.PartitionMeanMS = x
			case "split":
				f.PartitionSplitProb = x
			case "hb":
				f.HeartbeatIntervalMS = x
			case "suspect":
				f.SuspectAfterMS = x
			default:
				return fmt.Errorf("partition: unknown key %q", key)
			}
			continue
		}
		groupsPart, timing, ok := strings.Cut(part, "@")
		if !ok {
			return fmt.Errorf("partition: %q wants GROUPS@AT+HEAL", part)
		}
		at, heal, ok := strings.Cut(timing, "+")
		if !ok {
			return fmt.Errorf("partition: %q wants GROUPS@AT+HEAL", part)
		}
		var ps PartitionSchedule
		var err error
		if ps.AtMS, err = strconv.ParseFloat(at, 64); err != nil {
			return fmt.Errorf("partition: time %q: %w", at, err)
		}
		if ps.HealAfterMS, err = strconv.ParseFloat(heal, 64); err != nil {
			return fmt.Errorf("partition: heal %q: %w", heal, err)
		}
		for _, grp := range strings.Split(groupsPart, "|") {
			var ids []int
			for _, site := range strings.Split(grp, ",") {
				site = strings.TrimSpace(site)
				if site == "" {
					continue
				}
				id, err := strconv.Atoi(site)
				if err != nil {
					return fmt.Errorf("partition: site %q: %w", site, err)
				}
				ids = append(ids, id)
			}
			if len(ids) > 0 {
				ps.Groups = append(ps.Groups, ids)
			}
		}
		if len(ps.Groups) == 0 {
			return fmt.Errorf("partition: %q names no sites", part)
		}
		f.Partitions = append(f.Partitions, ps)
	}
	return nil
}

// ParseGraySites parses the command-line gray-failure syntax (caratsim
// -graysites) into the plan: semicolon-separated windows
//
//	SITE@AT+FOR*FACTOR        e.g. 1@60000+30000*3
//	SITE@AT+FOR*CPU/DISK      e.g. 1@60000+30000*3/2
//
// — site SITE runs with CPU (and disk) service times stretched by the
// factor from AT ms for FOR ms. A single factor degrades both resources;
// CPU/DISK sets them separately.
func ParseGraySites(s string, f *FaultPlan) error {
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sitePart, rest, ok := strings.Cut(part, "@")
		if !ok {
			return fmt.Errorf("graysites: %q wants SITE@AT+FOR*FACTOR", part)
		}
		timing, factors, ok := strings.Cut(rest, "*")
		if !ok {
			return fmt.Errorf("graysites: %q wants SITE@AT+FOR*FACTOR", part)
		}
		at, dur, ok := strings.Cut(timing, "+")
		if !ok {
			return fmt.Errorf("graysites: %q wants SITE@AT+FOR*FACTOR", part)
		}
		var g GrayFailure
		var err error
		if g.Site, err = strconv.Atoi(strings.TrimSpace(sitePart)); err != nil {
			return fmt.Errorf("graysites: site %q: %w", sitePart, err)
		}
		if g.AtMS, err = strconv.ParseFloat(at, 64); err != nil {
			return fmt.Errorf("graysites: time %q: %w", at, err)
		}
		if g.ForMS, err = strconv.ParseFloat(dur, 64); err != nil {
			return fmt.Errorf("graysites: duration %q: %w", dur, err)
		}
		cpu, dsk, split := strings.Cut(factors, "/")
		if g.CPUFactor, err = strconv.ParseFloat(cpu, 64); err != nil {
			return fmt.Errorf("graysites: factor %q: %w", cpu, err)
		}
		g.DiskFactor = g.CPUFactor
		if split {
			if g.DiskFactor, err = strconv.ParseFloat(dsk, 64); err != nil {
				return fmt.Errorf("graysites: disk factor %q: %w", dsk, err)
			}
		}
		f.GraySites = append(f.GraySites, g)
	}
	return nil
}

// RetryPolicy bounds and paces transaction resubmission after aborts
// (deadlock victims, crashed participants, timeouts). All times are
// milliseconds; the zero value is the paper's behavior — retry
// immediately, forever.
type RetryPolicy struct {
	// MaxAttempts caps submissions per user transaction; on exhaustion the
	// transaction is abandoned and counted, not resubmitted. Zero means
	// unlimited.
	MaxAttempts int
	// BaseBackoffMS starts the exponential backoff between resubmissions;
	// zero disables backoff. Successive waits multiply by Multiplier
	// (default 2) up to MaxBackoffMS (default 32× base), with a symmetric
	// ±JitterFrac random perturbation from a dedicated RNG stream.
	BaseBackoffMS float64
	MaxBackoffMS  float64
	Multiplier    float64
	JitterFrac    float64
}

// AdmissionPolicy gates transaction arrivals at each site by
// multiprogramming level. Zero MaxMPL disables the gate.
type AdmissionPolicy struct {
	// MaxMPL caps concurrently admitted submissions homed at a site.
	MaxMPL int
	// AbortRateThreshold, when positive, engages the gate only while the
	// site's abort rate (aborts/s over WindowMS, default 1000) is at or
	// above it; zero engages the gate unconditionally.
	AbortRateThreshold float64
	WindowMS           float64
	// Shed rejects excess arrivals (they re-try after ShedBackoffMS,
	// default 100) instead of queueing them FIFO.
	Shed          bool
	ShedBackoffMS float64
}

// Resilience configures the simulator's overload and failure
// countermeasures: retry with backoff, admission control, and periodic
// retransmission of deadlock-detection probes for still-blocked
// transactions (ProbeRetryMS > 0; countermeasure to probe loss). The zero
// value is fully inert — simulator runs are byte-identical with and
// without it.
type Resilience struct {
	Retry        RetryPolicy
	Admission    AdmissionPolicy
	ProbeRetryMS float64
}

// WithResilience attaches the resilience policies to the workload's
// simulator runs; the analytical model ignores them. Retry, admission and
// probe counters appear in NodeMetrics.
func (w Workload) WithResilience(r Resilience) Workload {
	w.w.Resilience = testbed.Resilience{
		Retry: testbed.RetryPolicy{
			MaxAttempts:   r.Retry.MaxAttempts,
			BaseBackoffMS: r.Retry.BaseBackoffMS,
			MaxBackoffMS:  r.Retry.MaxBackoffMS,
			Multiplier:    r.Retry.Multiplier,
			JitterFrac:    r.Retry.JitterFrac,
		},
		Admission: testbed.AdmissionPolicy{
			MaxMPL:             r.Admission.MaxMPL,
			AbortRateThreshold: r.Admission.AbortRateThreshold,
			WindowMS:           r.Admission.WindowMS,
			Shed:               r.Admission.Shed,
			ShedBackoffMS:      r.Admission.ShedBackoffMS,
		},
		ProbeRetryMS: r.ProbeRetryMS,
	}
	return w
}

// ParseResilience parses the comma-separated key=value resilience syntax
// of the command-line tools (caratsim -resilience):
//
//	retries=N       submissions per transaction before abandoning (0 = unlimited)
//	backoff=MS      base exponential backoff between resubmissions
//	maxbackoff=MS   backoff cap (default 32× base)
//	mult=X          backoff multiplier (default 2)
//	jitter=F        symmetric backoff jitter fraction in [0,1]
//	mpl=N           per-site admission cap (0 = no gate)
//	abortrate=R     engage the gate only above R aborts/s (0 = always)
//	window=MS       abort-rate measurement window (default 1000)
//	shed=BOOL       reject excess arrivals instead of queueing them
//	shedbackoff=MS  re-arrival delay for shed arrivals (default 100)
//	probe=MS        re-initiate deadlock probes every MS while blocked
func ParseResilience(s string) (Resilience, error) {
	var r Resilience
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return r, fmt.Errorf("resilience: %q is not key=value", part)
		}
		switch key {
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil {
				return r, fmt.Errorf("resilience: retries %q: %w", val, err)
			}
			r.Retry.MaxAttempts = n
		case "mpl":
			n, err := strconv.Atoi(val)
			if err != nil {
				return r, fmt.Errorf("resilience: mpl %q: %w", val, err)
			}
			r.Admission.MaxMPL = n
		case "shed":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return r, fmt.Errorf("resilience: shed %q: %w", val, err)
			}
			r.Admission.Shed = b
		default:
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return r, fmt.Errorf("resilience: %s value %q: %w", key, val, err)
			}
			switch key {
			case "backoff":
				r.Retry.BaseBackoffMS = x
			case "maxbackoff":
				r.Retry.MaxBackoffMS = x
			case "mult":
				r.Retry.Multiplier = x
			case "jitter":
				r.Retry.JitterFrac = x
			case "abortrate":
				r.Admission.AbortRateThreshold = x
			case "window":
				r.Admission.WindowMS = x
			case "shedbackoff":
				r.Admission.ShedBackoffMS = x
			case "probe":
				r.ProbeRetryMS = x
			default:
				return r, fmt.Errorf("resilience: unknown key %q", key)
			}
		}
	}
	return r, nil
}

// ReplicationPolicy configures replicated granules in the simulator: every
// granule keeps Factor copies on distinct sites (primary first), writes
// take exclusive locks at the primary copy and propagate to all available
// replicas inside the commit protocol, and reads run the selected read
// mode. Factor 0 or 1 is fully inert — simulator runs are byte-identical
// with and without it. Replication is a testbed extension beyond the
// paper's single-copy system; the analytical model ignores it.
type ReplicationPolicy struct {
	// Factor is the replication factor R: copies per granule, including the
	// primary. Must not exceed the node count.
	Factor int
	// ReadQuorum makes reads confirm against a majority quorum of the
	// replica set instead of reading one copy (read-one, the default).
	ReadQuorum bool
}

// WithReplication attaches the replication policy to the workload's
// simulator runs; the analytical model ignores it. Replication counters
// appear in NodeMetrics.
func (w Workload) WithReplication(r ReplicationPolicy) Workload {
	mode := repl.ReadOne
	if r.ReadQuorum {
		mode = repl.ReadQuorum
	}
	w.w.Replication = repl.Policy{Factor: r.Factor, Read: mode}
	return w
}

// ParseReplication parses the comma-separated key=value replication syntax
// of the command-line tools (caratsim -repl):
//
//	R=N        replication factor (copies per granule; 1 = off)
//	read=MODE  read policy: one (default) or quorum
func ParseReplication(s string) (ReplicationPolicy, error) {
	var r ReplicationPolicy
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return r, fmt.Errorf("repl: %q is not key=value", part)
		}
		switch key {
		case "R", "r", "factor":
			n, err := strconv.Atoi(val)
			if err != nil {
				return r, fmt.Errorf("repl: factor %q: %w", val, err)
			}
			r.Factor = n
		case "read":
			mode, err := repl.ParseReadMode(val)
			if err != nil {
				return r, fmt.Errorf("repl: %w", err)
			}
			r.ReadQuorum = mode == repl.ReadQuorum
		default:
			return r, fmt.Errorf("repl: unknown key %q", key)
		}
	}
	return r, nil
}

// AccessPattern selects how requests pick records at a site. The zero
// value is the paper's uniform sampling; construct skewed patterns with
// HotspotPattern or ZipfPattern. The analytical model always keeps the
// uniform assumption, so skewed patterns are simulator-only extensions.
type AccessPattern struct {
	p storage.Pattern
}

// UniformPattern is the paper's assumption: records chosen uniformly at
// random from the site's database.
func UniformPattern() AccessPattern { return AccessPattern{storage.Uniform{}} }

// HotspotPattern is the b–c rule: frac of accesses target the first hot
// fraction of each site's records (HotspotPattern(0.2, 0.8) is the classic
// 80/20 skew).
func HotspotPattern(hot, frac float64) AccessPattern {
	return AccessPattern{storage.Hotspot{Hot: hot, Frac: frac}}
}

// ZipfPattern draws record ranks from a bounded Zipf distribution with
// exponent theta (the YCSB-style default is 0.99; larger is more skewed).
func ZipfPattern(theta float64) AccessPattern {
	return AccessPattern{storage.NewZipf(theta)}
}

// PatternByName builds a pattern from its command-line name ("uniform",
// "hotspot", "zipf") and the relevant shape parameters; hot/frac apply to
// hotspot, theta to zipf.
func PatternByName(name string, hot, frac, theta float64) (AccessPattern, error) {
	switch name {
	case "", "uniform":
		return UniformPattern(), nil
	case "hotspot":
		return HotspotPattern(hot, frac), nil
	case "zipf":
		return ZipfPattern(theta), nil
	default:
		return AccessPattern{}, fmt.Errorf("carat: unknown access pattern %q (want uniform, hotspot or zipf)", name)
	}
}

// WithPattern selects the record-access pattern for every request in the
// workload (generalizes WithHotspot; see AccessPattern).
func (w Workload) WithPattern(p AccessPattern) Workload {
	w.w.Pattern = p.p
	return w
}

// WithZipf is shorthand for WithPattern(ZipfPattern(theta)).
func (w Workload) WithZipf(theta float64) Workload {
	return w.WithPattern(ZipfPattern(theta))
}

// BurstModulation makes an open arrival process bursty: an on-off
// modulator (a two-state MMPP) multiplies the arrival rate by Factor
// during exponentially distributed on-periods of mean OnMeanMS, separated
// by off-periods of mean OffMeanMS at the base rate. Factor <= 1 or zero
// sojourn means disable modulation.
type BurstModulation struct {
	Factor    float64
	OnMeanMS  float64
	OffMeanMS float64
}

// RampPoint is one knot of a piecewise-linear open arrival schedule.
type RampPoint struct {
	AtMS         float64
	LambdaPerSec float64
}

// OpenClass describes one transaction class of an open arrival mix. Zero
// Requests or RemoteFrac inherit the workload's transaction size and
// remote fraction; a nil Pattern inherits the workload's access pattern.
type OpenClass struct {
	// Type is the transaction type arrivals of this class run.
	Type TxnType
	// Weight is the class's share of arrivals (relative; zero counts as 1).
	Weight float64
	// Requests overrides the transaction size n for this class.
	Requests int
	// RemoteFrac overrides the share of requests sent to the slave site.
	RemoteFrac float64
	// Pattern overrides the record-access pattern.
	Pattern *AccessPattern
}

// OpenArrivals switches the simulator from the paper's closed terminals to
// an open workload: transactions arrive in per-site Poisson streams at the
// given rate instead of being resubmitted by a fixed user population. The
// zero value is inert. Closed users may coexist with open arrivals; the
// analytical model keeps using the closed population (open mode has no
// analytical counterpart — that contrast is the point).
type OpenArrivals struct {
	// LambdaPerSec is the system-wide arrival rate, split evenly across
	// sites; PerSiteLambdaPerSec (len = nodes) sets per-site rates instead.
	LambdaPerSec        float64
	PerSiteLambdaPerSec []float64
	// Burst optionally modulates the rate (MMPP on-off bursts).
	Burst BurstModulation
	// Ramp optionally replaces the constant rate with a piecewise-linear
	// system-wide schedule (flat before the first and after the last knot).
	Ramp []RampPoint
	// Classes is the arrival mix (empty: one class per transaction type the
	// topology supports, equal weights).
	Classes []OpenClass
}

// WithOpenArrivals attaches an open arrival process to the workload's
// simulator runs. An unknown class Type is reported when the simulation is
// built. Open-queue measurements appear in NodeMetrics' Open* fields.
func (w Workload) WithOpenArrivals(o OpenArrivals) Workload {
	oc := &testbed.OpenConfig{
		RatePerSec: o.LambdaPerSec,
		Burst: openload.Burst{
			Factor:    o.Burst.Factor,
			OnMeanMS:  o.Burst.OnMeanMS,
			OffMeanMS: o.Burst.OffMeanMS,
		},
	}
	oc.PerSiteRatePerSec = append(oc.PerSiteRatePerSec, o.PerSiteLambdaPerSec...)
	for _, p := range o.Ramp {
		oc.Ramp = append(oc.Ramp, testbed.OpenRampPoint{AtMS: p.AtMS, RatePerSec: p.LambdaPerSec})
	}
	for _, c := range o.Classes {
		k, err := c.Type.kind()
		if err != nil {
			k = testbed.TxnKind(99) // out of range: Config validation names it
		}
		tc := testbed.OpenClass{
			Kind:       k,
			Weight:     c.Weight,
			Requests:   c.Requests,
			RemoteFrac: c.RemoteFrac,
		}
		if c.Pattern != nil {
			tc.Pattern = c.Pattern.p
		}
		oc.Classes = append(oc.Classes, tc)
	}
	w.w.Open = oc
	return w
}

// WithoutClosedUsers removes the closed terminal population, leaving the
// open arrival process (attach one with WithOpenArrivals first) as the
// only submission source. The analytical model needs the closed users, so
// SolveModel fails on the result; Simulate and CapacitySweep accept it.
func (w Workload) WithoutClosedUsers() Workload {
	w.w.Users = nil
	return w
}

// ParseOpenClasses parses the command-line open-mix syntax (caratsim
// -classes): classes separated by ';', each a comma-separated list of
// key=value settings:
//
//	kind=TYPE      transaction type: LRO, LU, DRO or DU (required)
//	weight=X       relative share of arrivals (default 1)
//	n=N            requests per transaction (default: the workload's n)
//	rf=F           remote fraction for distributed types (default: workload's)
//	pattern=NAME   record access: uniform, hotspot or zipf (default: workload's)
//	hot=F          hotspot: hot fraction of records (default 0.2)
//	frac=F         hotspot: share of accesses aimed at the hot set (default 0.8)
//	theta=F        zipf: skew exponent (default 0.99)
//
// Example: 'kind=LRO,weight=3;kind=DU,weight=1,n=4,rf=0.25,pattern=zipf'.
func ParseOpenClasses(s string) ([]OpenClass, error) {
	var out []OpenClass
	for _, spec := range strings.Split(s, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		c := OpenClass{}
		pattern, hot, frac, theta := "", 0.2, 0.8, 0.99
		for _, part := range strings.Split(spec, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			key, val, ok := strings.Cut(part, "=")
			if !ok {
				return nil, fmt.Errorf("classes: %q is not key=value", part)
			}
			switch key {
			case "kind":
				c.Type = TxnType(val)
				if _, err := c.Type.kind(); err != nil {
					return nil, fmt.Errorf("classes: %w", err)
				}
			case "n":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("classes: n %q: %w", val, err)
				}
				c.Requests = n
			case "pattern":
				pattern = val
			default:
				x, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("classes: %s value %q: %w", key, val, err)
				}
				switch key {
				case "weight":
					c.Weight = x
				case "rf":
					c.RemoteFrac = x
				case "hot":
					hot = x
				case "frac":
					frac = x
				case "theta":
					theta = x
				default:
					return nil, fmt.Errorf("classes: unknown key %q", key)
				}
			}
		}
		if c.Type == "" {
			return nil, fmt.Errorf("classes: %q needs kind=TYPE", spec)
		}
		if pattern != "" {
			p, err := PatternByName(pattern, hot, frac, theta)
			if err != nil {
				return nil, err
			}
			c.Pattern = &p
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("classes: empty class list")
	}
	return out, nil
}

// SimOptions controls a simulation run.
type SimOptions struct {
	// Seed makes runs reproducible; equal seeds give identical results.
	Seed uint64
	// WarmupMS is discarded simulated time before measurement starts
	// (default 2 minutes).
	WarmupMS float64
	// DurationMS is total simulated time including warmup (default 62
	// minutes, giving a one-hour measurement window).
	DurationMS float64
	// Replications is the number of independent runs per experiment point
	// (0 or 1 means a single run, the historical behavior). Replication 0
	// uses Seed; replication r > 0 uses a seed derived through independent
	// substreams, so replications are uncorrelated yet individually
	// reproducible. With more than one replication, figures and tables
	// report across-replication means with 95% confidence half-widths, and
	// SimulateReplicated aggregates full measurements.
	Replications int
	// Workers bounds how many simulations run concurrently in replicated
	// mode (0 means GOMAXPROCS). The results are bit-identical for any
	// worker count.
	Workers int
	// Progress, when non-nil, receives (completed, total) run counts as a
	// replicated experiment advances. Calls are serialized.
	Progress func(done, total int)
}

func (o SimOptions) fill() experiment.SimOptions {
	e := experiment.DefaultSimOptions()
	if o.Seed != 0 {
		e.Seed = o.Seed
	}
	if o.WarmupMS > 0 {
		e.Warmup = o.WarmupMS
	}
	if o.DurationMS > 0 {
		e.Duration = o.DurationMS
	}
	e.Replications = o.Replications
	e.Workers = o.Workers
	e.Progress = o.Progress
	return e
}

// NodeMetrics reports one node's performance, in the units the paper's
// tables use.
type NodeMetrics struct {
	// TxnPerSec is TR-XPUT: committed transactions per second for users
	// homed at this node.
	TxnPerSec float64
	// TxnPerSecByType breaks TR-XPUT down by transaction type.
	TxnPerSecByType map[TxnType]float64
	// RecordsPerSec is the normalized record throughput of Figures 5 and 8.
	RecordsPerSec float64
	// CPUUtilization is Total-CPU, a fraction.
	CPUUtilization float64
	// DiskIOPerSec is Total-DIO: block I/Os per second including the log.
	DiskIOPerSec float64
	// DiskUtilization is the database disk's busy fraction.
	DiskUtilization float64
	// MeanResponseMS maps transaction type to mean response time in ms,
	// including aborted executions (simulation only; the model reports
	// per-chain response times through Predict).
	MeanResponseMS map[TxnType]float64
	// Deadlocks counts deadlock victims (simulation only).
	Deadlocks int64
	// SubmissionsPerCommit is the measured N_s of Eq. 4: executions per
	// commit, per type (simulation only; the model's N_s follows from its
	// AbortProbability as 1/(1-Pa)).
	SubmissionsPerCommit map[TxnType]float64
	// TxnPerSecCI is the 95% batch-means confidence half-width around
	// TxnPerSecByType, in transactions/second (simulation only; +Inf when
	// the run is too short for two batch windows).
	TxnPerSecCI map[TxnType]float64
	// P95ResponseMS is the 95th-percentile response time per type in ms
	// (simulation only).
	P95ResponseMS map[TxnType]float64

	// Availability metrics (simulation only; all zero without WithFaults).

	// Crashes counts this site's crashes in the window, and DowntimeMS the
	// total time it was down; Availability is 1 - DowntimeMS/WindowMS.
	Crashes      int64
	DowntimeMS   float64
	Availability float64
	// CrashAborts and TimeoutAborts count aborted submissions of
	// transactions homed here, by cause (deadlock aborts are in Deadlocks).
	CrashAborts   int64
	TimeoutAborts int64
	// InDoubtCommitted and InDoubtAborted count prepared 2PC branches this
	// site resolved during restart recovery.
	InDoubtCommitted int64
	InDoubtAborted   int64
	// MessagesLost counts lost (and retransmitted) messages leaving here.
	MessagesLost int64
	// PartitionAborts counts aborted submissions of transactions homed
	// here whose participants were severed by a network partition;
	// PartitionShed counts submissions blocked before they began because
	// the home site could not reach (or suspected) a remote participant.
	PartitionAborts int64
	PartitionShed   int64
	// SuspectEvents counts suspicion transitions this site's failure
	// detector raised against peers.
	SuspectEvents int64
	// GrayMS is the time this site spent inside a gray-failure window.
	GrayMS float64
	// DegradedCommits counts commits recorded here while some site was
	// down — the goodput under partial outage.
	DegradedCommits int64

	// Resilience metrics (simulation only). Retried is live even without
	// WithResilience — the default policy resubmits every abort; the rest
	// are zero unless the corresponding knob is set.

	// Retried and Abandoned count aborted submissions of transactions
	// homed here that were resubmitted vs given up, keyed by abort cause
	// ("deadlock", "crash", "timeout").
	Retried   map[string]int64
	Abandoned map[string]int64
	// ShedArrivals and DelayedArrivals count admission-gate rejections and
	// queueings at this site; MeanAdmitWaitMS is the mean queueing delay
	// of the delayed ones, and PeakMPL the high-water mark of concurrently
	// admitted submissions.
	ShedArrivals    int64
	DelayedArrivals int64
	MeanAdmitWaitMS float64
	PeakMPL         int
	// ProbesLost counts deadlock probes fault injection dropped leaving
	// this site; ProbesResent counts probe rounds re-initiated here.
	ProbesLost   int64
	ProbesResent int64
	// ValidationAborts counts transactions this site's optimistic
	// validator rejected at commit (OCC runs only; always zero under
	// other protocols, whose conflicts surface as deadlocks or restarts).
	ValidationAborts int64

	// Replication metrics (simulation only; zero without WithReplication).

	// FailoverReads counts reads of a down site's granules this site served
	// from its replica copies; ReplicaApplies counts committed writers'
	// updates journaled at this site's replicas (including restart
	// catch-up); QuorumReads counts quorum confirmations for reads served
	// here (read-quorum policy only).
	FailoverReads  int64
	ReplicaApplies int64
	QuorumReads    int64

	// Open-arrival metrics (simulation only; zero without WithOpenArrivals).

	// OpenArrivals counts open-mode transactions that arrived at this site
	// within the window; OpenOfferedPerSec is the measured offered rate.
	OpenArrivals      int64
	OpenOfferedPerSec float64
	// OpenMeanInSystem and OpenPeakInSystem are the time-average and peak
	// number of open transactions resident at this site, from arrival
	// (including admission-gate queueing) to completion.
	OpenMeanInSystem float64
	OpenPeakInSystem float64
	// Open response percentiles aggregate the committed response-time
	// distribution across all transaction types homed here, in ms.
	OpenMeanResponseMS float64
	OpenP50ResponseMS  float64
	OpenP95ResponseMS  float64
}

// DemandBreakdown decomposes one transaction type's commit cycle into the
// model's per-center demands (Eqs. 5–10), in milliseconds per cycle.
type DemandBreakdown struct {
	CPUMS        float64
	DiskMS       float64
	LockWaitMS   float64
	RemoteWaitMS float64
	CommitWaitMS float64
}

// Prediction is the analytical model's output.
type Prediction struct {
	Nodes []NodeMetrics
	// Iterations is the fixed-point iteration count; Converged reports
	// whether the tolerance was met.
	Iterations int
	Converged  bool
	// AbortProbability maps node -> type -> the model's P_a (Eq. 3).
	AbortProbability []map[TxnType]float64
	// Demands maps node -> type -> the per-cycle demand decomposition of
	// the type's home-side chain (coordinator chain for distributed
	// types).
	Demands []map[TxnType]DemandBreakdown
}

// Measurement is the simulator's output.
type Measurement struct {
	Nodes []NodeMetrics
	// WindowMS is the measurement window length.
	WindowMS float64
	// DegradedMS is the time within the window during which at least one
	// site was down (zero without WithFaults).
	DegradedMS float64
	// Partitions counts network partitions that took effect within the
	// window; PartitionMS is the time a partition was in effect.
	Partitions  int64
	PartitionMS float64

	// Shared-fabric metrics (all zero — and omitted from JSON, keeping
	// pre-existing serializations byte-identical — unless the workload
	// routes messages through the contended Ethernet fabric: scale
	// configurations built with NewScaleConfig).

	// NetMessages and NetBytes count inter-site messages and payload bytes
	// on the shared wire within the window.
	NetMessages int64 `json:",omitempty"`
	NetBytes    int64 `json:",omitempty"`
	// NetUtilization is the wire's offered utilization (raw transmission
	// time over the window); values above 1 mean the offered traffic
	// exceeds the channel's raw capacity.
	NetUtilization float64 `json:",omitempty"`
	// NetMeanInflationMS and NetMeanQueueMS are the per-message CSMA/CD
	// contention inflation and queueing delay, in ms.
	NetMeanInflationMS float64 `json:",omitempty"`
	NetMeanQueueMS     float64 `json:",omitempty"`
}

// Comparison pairs the two for one workload.
type Comparison struct {
	Workload  string
	N         int
	Predicted *Prediction
	Measured  *Measurement
}

// SolveModel analytically solves the queueing network model for the
// workload (Sections 3–6 of the paper).
func SolveModel(w Workload) (*Prediction, error) {
	m, err := w.w.Model()
	if err != nil {
		return nil, err
	}
	res, err := core.Solve(m)
	if err != nil {
		return nil, err
	}
	return predictionFrom(res), nil
}

func predictionFrom(res *core.Result) *Prediction {
	p := &Prediction{Iterations: res.Iterations, Converged: res.Converged}
	for _, s := range res.Sites {
		nm := NodeMetrics{
			TxnPerSec:       s.TotalTxnThroughput * 1000,
			TxnPerSecByType: map[TxnType]float64{},
			RecordsPerSec:   s.RecordThroughput * 1000,
			CPUUtilization:  s.CPUUtilization,
			DiskIOPerSec:    s.DiskIORate * 1000,
			DiskUtilization: s.DiskUtilization,
			MeanResponseMS:  map[TxnType]float64{},
		}
		pa := map[TxnType]float64{}
		dem := map[TxnType]DemandBreakdown{}
		for ty, cr := range s.Chains {
			if ty.Slave() {
				continue
			}
			tt := TxnType(ty.WorkloadName())
			nm.TxnPerSecByType[tt] += cr.Throughput * 1000
			nm.MeanResponseMS[tt] = cr.ResponseTime
			pa[tt] = cr.Pa
			dem[tt] = DemandBreakdown{
				CPUMS:        cr.CPUDemand,
				DiskMS:       cr.DiskDemand + cr.LogDemand,
				LockWaitMS:   cr.LWDemand,
				RemoteWaitMS: cr.RWDemand,
				CommitWaitMS: cr.CWDemand,
			}
		}
		p.Nodes = append(p.Nodes, nm)
		p.AbortProbability = append(p.AbortProbability, pa)
		p.Demands = append(p.Demands, dem)
	}
	return p
}

// Simulate runs the CARAT testbed simulator on the workload.
func Simulate(w Workload, opts SimOptions) (*Measurement, error) {
	e := opts.fill()
	cfg := w.w.TestbedConfig(e.Seed, e.Warmup, e.Duration)
	sys, err := testbed.New(cfg)
	if err != nil {
		return nil, err
	}
	res := sys.Run()
	return measurementFrom(res), nil
}

func measurementFrom(res testbed.Results) *Measurement {
	m := &Measurement{
		WindowMS:           res.Window,
		DegradedMS:         res.DegradedMS,
		Partitions:         res.Partitions,
		PartitionMS:        res.PartitionMS,
		NetMessages:        res.NetMessages,
		NetBytes:           res.NetBytes,
		NetUtilization:     res.NetUtilization,
		NetMeanInflationMS: res.NetMeanInflationMS,
		NetMeanQueueMS:     res.NetMeanQueueMS,
	}
	for _, n := range res.Nodes {
		nm := NodeMetrics{
			TxnPerSec:            n.TotalTxnThroughput,
			TxnPerSecByType:      map[TxnType]float64{},
			RecordsPerSec:        n.RecordThroughput,
			CPUUtilization:       n.CPUUtilization,
			DiskIOPerSec:         n.DiskIORate,
			DiskUtilization:      n.DBDiskUtilization,
			MeanResponseMS:       map[TxnType]float64{},
			Deadlocks:            n.LocalDeadlocks + n.GlobalDeadlocks,
			SubmissionsPerCommit: map[TxnType]float64{},
			TxnPerSecCI:          map[TxnType]float64{},
			P95ResponseMS:        map[TxnType]float64{},
			Crashes:              n.Crashes,
			DowntimeMS:           n.DowntimeMS,
			Availability:         n.Availability,
			CrashAborts:          n.CrashAborts,
			TimeoutAborts:        n.TimeoutAborts,
			InDoubtCommitted:     n.InDoubtCommitted,
			InDoubtAborted:       n.InDoubtAborted,
			MessagesLost:         n.MessagesLost,
			PartitionAborts:      n.PartitionAborts,
			PartitionShed:        n.PartitionShed,
			SuspectEvents:        n.SuspectEvents,
			GrayMS:               n.GrayMS,
			DegradedCommits:      n.DegradedCommits,
			ShedArrivals:         n.ShedArrivals,
			DelayedArrivals:      n.DelayedArrivals,
			MeanAdmitWaitMS:      n.MeanAdmitWaitMS,
			PeakMPL:              n.PeakMPL,
			ProbesLost:           n.ProbesLost,
			ProbesResent:         n.ProbesResent,
			ValidationAborts:     n.ValidationAborts,
			FailoverReads:        n.FailoverReads,
			ReplicaApplies:       n.ReplicaApplies,
			QuorumReads:          n.QuorumReads,
			OpenArrivals:         n.OpenArrivals,
			OpenOfferedPerSec:    n.OpenOfferedPerSec,
			OpenMeanInSystem:     n.OpenMeanInSystem,
			OpenPeakInSystem:     n.OpenPeakInSystem,
			OpenMeanResponseMS:   n.OpenMeanResponseMS,
			OpenP50ResponseMS:    n.OpenP50ResponseMS,
			OpenP95ResponseMS:    n.OpenP95ResponseMS,
		}
		for cause, count := range n.Retried {
			if count > 0 {
				if nm.Retried == nil {
					nm.Retried = map[string]int64{}
				}
				nm.Retried[cause.String()] = count
			}
		}
		for cause, count := range n.Abandoned {
			if count > 0 {
				if nm.Abandoned == nil {
					nm.Abandoned = map[string]int64{}
				}
				nm.Abandoned[cause.String()] = count
			}
		}
		for _, k := range []testbed.TxnKind{testbed.LRO, testbed.LU, testbed.DRO, testbed.DU} {
			tt := TxnType(k.String())
			if x := n.TxnThroughput[k]; x > 0 {
				nm.TxnPerSecByType[tt] = x
				nm.MeanResponseMS[tt] = n.MeanResponse[k]
				nm.TxnPerSecCI[tt] = n.ThroughputCI[k]
				nm.P95ResponseMS[tt] = n.P95Response[k]
			}
			if c := n.Commits[k]; c > 0 {
				nm.SubmissionsPerCommit[tt] = float64(n.Submissions[k]) / float64(c)
			}
		}
		m.Nodes = append(m.Nodes, nm)
	}
	return m
}

// ChaosOptions configures a randomized fault-injection audit: Runs
// simulator runs of the workload, each under a fault plan and resilience
// policy drawn from a stream seeded by Seed, each audited against the
// testbed's hard invariants (2PC atomicity, durability under restart
// replay, transaction conservation) and a goodput floor relative to a
// fault-free baseline. Zero fields take defaults (20 runs, 5 s warmup,
// 90 s duration, 5% goodput floor).
type ChaosOptions struct {
	Runs           int
	Seed           uint64
	WarmupMS       float64
	DurationMS     float64
	MinGoodputFrac float64
	// Partitions additionally draws scheduled network partitions and
	// failure-detector timings into every run's plan, arming the
	// split-brain invariants (cross-site atomicity, replica agreement,
	// post-heal reconciliation).
	Partitions bool
}

// ChaosRun is one randomized run's record.
type ChaosRun struct {
	Run        int
	Seed       uint64
	GoodputTPS float64
	// Violations lists every broken invariant; empty means clean.
	Violations []string
}

// ChaosReport is the outcome of a chaos audit.
type ChaosReport struct {
	// BaselineTPS is the workload's fault-free goodput, the reference for
	// the goodput floor.
	BaselineTPS float64
	Runs        []ChaosRun
}

// Violations flattens every run's violations, each prefixed with its run
// index and seed for replay.
func (r *ChaosReport) Violations() []string {
	var out []string
	for _, run := range r.Runs {
		for _, v := range run.Violations {
			out = append(out, fmt.Sprintf("run %d (seed %#x): %s", run.Run, run.Seed, v))
		}
	}
	return out
}

// RunChaos executes a randomized fault-injection audit over the workload.
// Any fault plan or resilience policy already attached to the workload is
// overridden per run by the drawn configurations. The audit is
// deterministic in (workload, options).
func RunChaos(w Workload, opts ChaosOptions) (*ChaosReport, error) {
	rep, err := experiment.RunChaos(w.w, experiment.ChaosOptions{
		Runs:           opts.Runs,
		Seed:           opts.Seed,
		Warmup:         opts.WarmupMS,
		Duration:       opts.DurationMS,
		MinGoodputFrac: opts.MinGoodputFrac,
		Partitions:     opts.Partitions,
	})
	if err != nil {
		return nil, err
	}
	out := &ChaosReport{BaselineTPS: rep.BaselineTPS}
	for _, run := range rep.Runs {
		out.Runs = append(out.Runs, ChaosRun{
			Run: run.Run, Seed: run.Seed, GoodputTPS: run.GoodputTPS, Violations: run.Violations,
		})
	}
	return out, nil
}

// CapacityPoint is the measurement at one offered-load grid point of a
// capacity sweep. All rates are system-wide transactions per second.
type CapacityPoint struct {
	// LambdaTPS is the configured offered rate; OfferedTPS is the rate the
	// arrival processes actually generated in the measurement window.
	LambdaTPS  float64
	OfferedTPS float64
	// CommittedTPS is the goodput; ShedTPS counts arrivals the admission
	// gate rejected, AbandonedTPS transactions that exhausted their retry
	// budget.
	CommittedTPS float64
	ShedTPS      float64
	AbandonedTPS float64
	// Response-time percentiles over committed transactions, in ms.
	MeanResponseMS float64
	P50ResponseMS  float64
	P95ResponseMS  float64
	// MeanInSystem is the time-average number of resident open
	// transactions, system-wide.
	MeanInSystem float64
}

// CapacityReport is a full capacity sweep: per-λ measurements plus the
// derived saturation summary.
type CapacityReport struct {
	Workload string
	Points   []CapacityPoint
	// PeakCommittedTPS is the measured capacity (largest goodput on the
	// grid); KneeLambdaTPS is the smallest offered rate reaching 95% of it.
	PeakCommittedTPS float64
	KneeLambdaTPS    float64
	// BottleneckBoundTPS is the closed model's MVA bottleneck bound 1/D_max
	// (Section 4) — zero when the workload has no closed users or cannot be
	// modeled.
	BottleneckBoundTPS float64
}

// CapacitySweep measures the workload's open-arrival saturation behavior:
// one simulation per rate in lambdasPerSec (system-wide arrivals per
// second, open arrivals replacing the closed terminals), reporting
// offered/committed/shed throughput and response percentiles per point,
// the saturation knee, and the closed model's bottleneck bound 1/D_max for
// comparison. The workload's closed users parameterize the bound and the
// default arrival mix; attach WithOpenArrivals first to control the mix or
// burstiness, and WithResilience to admission-control the overloaded
// points. Replications and Workers in opts apply per grid point; results
// are bit-identical for any worker count.
func CapacitySweep(w Workload, lambdasPerSec []float64, opts SimOptions) (*CapacityReport, error) {
	wl := w.w
	cr, err := experiment.CapacitySweep(func() workload.Workload { return wl }, lambdasPerSec, opts.fill())
	if err != nil {
		return nil, err
	}
	out := &CapacityReport{
		Workload:           cr.Workload,
		PeakCommittedTPS:   cr.PeakCommittedTPS,
		KneeLambdaTPS:      cr.KneeLambdaTPS,
		BottleneckBoundTPS: cr.BottleneckBoundTPS,
	}
	for _, p := range cr.Points {
		out.Points = append(out.Points, CapacityPoint(p))
	}
	return out, nil
}

// CCComparisonPoint is the measurement at one (protocol, contention, MPL)
// cell of the concurrency-control comparison lab.
type CCComparisonPoint struct {
	// Protocol and Contention name the cell; Users is the closed
	// multiprogramming level across both sites.
	Protocol   string
	Contention string
	Users      int
	// CommittedTPS is system-wide goodput; AbortRate the aborted fraction
	// of submissions; MeanResponseMS the commit-weighted mean response.
	CommittedTPS   float64
	AbortRate      float64
	MeanResponseMS float64
	// Paradigm-specific counters: deadlock victims and probe rounds exist
	// only under locking, validation aborts only under OCC, and lock waits
	// never under OCC or TO.
	Deadlocks        int64
	ProbesResent     int64
	ValidationAborts int64
	LockWaits        int64
}

// CCComparisonReport is the full protocol × contention × MPL grid.
type CCComparisonReport struct {
	Protocols   []string
	Contentions []string
	MPLs        []int
	// Points is protocol-major, then contention, then MPL.
	Points []CCComparisonPoint
}

// CompareConcurrencyControls runs the contention-sweep lab: every protocol
// crossed with the standard contention levels (uniform, 80/20 hotspot,
// zipf-0.99) and every MPL multiplier in mpls (the MB4 mix replicated m
// times per site — 8m users), measuring throughput, abort rate and the
// paradigm-specific counters under identical assumptions. A nil or empty
// protocols list compares the default trio: 2PL with deadlock detection,
// QueCC and OCC. Simulation-only (the analytical model covers 2PL alone);
// results are bit-identical for any opts.Workers.
func CompareConcurrencyControls(protocols []ConcurrencyControl, mpls []int, opts SimOptions) (*CCComparisonReport, error) {
	var prots []testbed.CCProtocol
	if len(protocols) == 0 {
		prots = experiment.DefaultCCProtocols()
	} else {
		for _, p := range protocols {
			prots = append(prots, p.protocol())
		}
	}
	res, err := experiment.CCSweep(prots, experiment.DefaultCCContentions(), mpls, opts.fill())
	if err != nil {
		return nil, err
	}
	out := &CCComparisonReport{Contentions: res.Contentions, MPLs: res.MPLs}
	for _, p := range res.Protocols {
		out.Protocols = append(out.Protocols, p.String())
	}
	for _, p := range res.Points {
		out.Points = append(out.Points, CCComparisonPoint(p))
	}
	return out, nil
}

// PlacementStrategy names a data-directory placement strategy for the
// scale-out configurations: how the fleet's granule space maps onto home
// sites. Validate names with ParsePlacement.
type PlacementStrategy string

// The available strategies: uniform striping (granule g lives at site
// g mod N), contiguous range shards, and range shards with a home-site
// affinity fraction (each transaction keeps that share of its accesses in
// its home shard and scatters the rest).
const (
	HashPlacement     PlacementStrategy = "hash"
	RangePlacement    PlacementStrategy = "range"
	LocalityPlacement PlacementStrategy = "locality"
)

// ParsePlacement resolves a user-supplied strategy name —
// case-insensitively, accepting the canonical names and common aliases
// ("striped", "shard", "affinity", …). Unknown names return an error
// listing the valid strategies; it is the strict front door the CLIs use
// for their -placement flags.
func ParsePlacement(name string) (PlacementStrategy, error) {
	s, err := placement.Parse(name)
	if err != nil {
		return "", err
	}
	return PlacementStrategy(s.String()), nil
}

// NewScaleConfig builds an N-site scale-out workload: a homogeneous fleet
// whose granule space is mapped onto the sites by the placement directory,
// every inter-site message riding a shared contended Ethernet fabric, and
// open Poisson arrivals of lambdaPerSite transactions per second at each
// site. Locality is the affinity fraction for LocalityPlacement (ignored
// by the other strategies). Sites must be in [2, 512]; the 16/64/128-site
// grid of the scale sweep is the intended range.
func NewScaleConfig(sites int, strategy PlacementStrategy, locality, lambdaPerSite float64) (Workload, error) {
	if sites < 2 || sites > 512 {
		return Workload{}, fmt.Errorf("carat: scale config needs between 2 and 512 sites, got %d", sites)
	}
	s, err := placement.Parse(string(strategy))
	if err != nil {
		return Workload{}, err
	}
	if locality < 0 || locality > 1 {
		return Workload{}, fmt.Errorf("carat: locality must be in [0, 1], got %v", locality)
	}
	if lambdaPerSite <= 0 {
		return Workload{}, fmt.Errorf("carat: per-site arrival rate must be positive, got %v", lambdaPerSite)
	}
	return Workload{experiment.ScaleWorkload(s, sites, locality, lambdaPerSite)}, nil
}

// ScalePoint is the measurement at one (sites, locality, λ) cell of a
// scale sweep: throughput, and the per-center utilizations that locate
// the cell's bottleneck.
type ScalePoint struct {
	Sites         int
	Locality      float64
	LambdaPerSite float64
	// CommittedTPS is system-wide goodput; AbortRate the aborted fraction
	// of submissions; MeanResponseMS the commit-weighted mean response.
	CommittedTPS   float64
	AbortRate      float64
	MeanResponseMS float64
	// The candidate bottleneck centers: maximum CPU, disk and TM
	// utilization over all sites, and the shared wire's utilization with
	// its per-message contention and queueing delays.
	MaxCPUUtil         float64
	MaxDiskUtil        float64
	MaxTMUtil          float64
	WireUtil           float64
	NetMeanInflationMS float64
	NetMeanQueueMS     float64
	// Bottleneck names the max-utilization center: cpu, disk, tm or wire.
	Bottleneck string
}

// ScaleReport is the full sites × locality × λ grid of one scale sweep.
type ScaleReport struct {
	Strategy   string
	Sites      []int
	Localities []float64
	// LambdasPerSite is the per-site offered-rate grid, txn/s.
	LambdasPerSite []float64
	// Points is sites-major, then locality, then λ.
	Points []ScalePoint
}

// ScaleSweep runs the scale-out study: NewScaleConfig fleets at every
// site count crossed with every locality level and per-site arrival rate,
// measuring where the bottleneck sits in each cell — the experiment that
// shows the binding resource migrating from the sites' CPUs onto the
// shared wire as the fleet grows and locality drops. Simulation-only;
// results are bit-identical for any opts.Workers.
func ScaleSweep(strategy PlacementStrategy, sites []int, localities, lambdasPerSite []float64, opts SimOptions) (*ScaleReport, error) {
	s, err := placement.Parse(string(strategy))
	if err != nil {
		return nil, err
	}
	res, err := experiment.ScaleSweep(s, sites, localities, lambdasPerSite, opts.fill())
	if err != nil {
		return nil, err
	}
	out := &ScaleReport{
		Strategy:       res.Strategy.String(),
		Sites:          res.Sites,
		Localities:     res.Localities,
		LambdasPerSite: res.Lambdas,
	}
	for _, p := range res.Points {
		out.Points = append(out.Points, ScalePoint(p))
	}
	return out, nil
}

// Estimate is an across-replication estimate: the mean over independent
// runs and the two-sided 95% Student-t confidence half-width around it
// (+Inf with fewer than two replications).
type Estimate struct {
	Mean      float64
	HalfWidth float64
}

// ReplicatedNodeMetrics carries one node's across-replication estimates, in
// the units of NodeMetrics.
type ReplicatedNodeMetrics struct {
	TxnPerSec       Estimate
	TxnPerSecByType map[TxnType]Estimate
	RecordsPerSec   Estimate
	CPUUtilization  Estimate
	DiskIOPerSec    Estimate
	MeanResponseMS  map[TxnType]Estimate
}

// ReplicatedMeasurement is the output of SimulateReplicated: per-node
// estimates over the replications, plus every underlying run.
type ReplicatedMeasurement struct {
	// Replications is the number of independent runs aggregated.
	Replications int
	// Seeds[r] is the seed replication r ran with (replication 0 runs with
	// the base seed, so Runs[0] equals a plain Simulate with these options).
	Seeds []uint64
	// WindowMS is the per-run measurement window length.
	WindowMS float64
	Nodes    []ReplicatedNodeMetrics
	// Runs holds each replication's full measurement, in replication order.
	Runs []*Measurement
}

// SimulateReplicated runs opts.Replications independent simulations of the
// workload across opts.Workers parallel workers (each with its own
// simulation environment and derived seed) and aggregates them into means
// with 95% confidence half-widths. The output is bit-identical for any
// worker count.
func SimulateReplicated(w Workload, opts SimOptions) (*ReplicatedMeasurement, error) {
	e := opts.fill()
	rc, err := experiment.RunReplicated(w.w, e)
	if err != nil {
		return nil, err
	}
	rm := &ReplicatedMeasurement{
		Replications: len(rc.Reps),
		Seeds:        rc.Seeds,
	}
	for _, res := range rc.Reps {
		rm.Runs = append(rm.Runs, measurementFrom(res))
	}
	rm.WindowMS = rm.Runs[0].WindowMS
	for node := range rm.Runs[0].Nodes {
		nm := ReplicatedNodeMetrics{
			TxnPerSec:       estimateOver(rm.Runs, func(m *Measurement) float64 { return m.Nodes[node].TxnPerSec }),
			RecordsPerSec:   estimateOver(rm.Runs, func(m *Measurement) float64 { return m.Nodes[node].RecordsPerSec }),
			CPUUtilization:  estimateOver(rm.Runs, func(m *Measurement) float64 { return m.Nodes[node].CPUUtilization }),
			DiskIOPerSec:    estimateOver(rm.Runs, func(m *Measurement) float64 { return m.Nodes[node].DiskIOPerSec }),
			TxnPerSecByType: map[TxnType]Estimate{},
			MeanResponseMS:  map[TxnType]Estimate{},
		}
		for ty := range rm.Runs[0].Nodes[node].TxnPerSecByType {
			ty := ty
			nm.TxnPerSecByType[ty] = estimateOver(rm.Runs, func(m *Measurement) float64 { return m.Nodes[node].TxnPerSecByType[ty] })
			nm.MeanResponseMS[ty] = estimateOver(rm.Runs, func(m *Measurement) float64 { return m.Nodes[node].MeanResponseMS[ty] })
		}
		rm.Nodes = append(rm.Nodes, nm)
	}
	return rm, nil
}

// estimateOver tallies one scalar across the replications.
func estimateOver(runs []*Measurement, get func(*Measurement) float64) Estimate {
	var t stats.Tally
	for _, m := range runs {
		t.Add(get(m))
	}
	return Estimate{Mean: t.Mean(), HalfWidth: t.CI95()}
}

// Compare solves the model and runs the simulator for the workload.
func Compare(w Workload, opts SimOptions) (*Comparison, error) {
	c, err := experiment.Run(w.w, opts.fill())
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Workload:  c.Workload,
		N:         c.N,
		Predicted: predictionFrom(c.Model),
		Measured:  measurementFrom(c.Measured),
	}, nil
}

// Calibration reports a fitted deadlock adjusting factor (Section 5.4.3).
type Calibration struct {
	// Factor is the fitted multiplier for the model's two-cycle deadlock
	// probability; pass it to WithDeadlockAdjust.
	Factor float64
	// FittedError and BaselineError are the mean relative TR-XPUT errors
	// with the fitted factor and with the uncalibrated factor of 1.
	FittedError   float64
	BaselineError float64
}

// CalibrateDeadlockFactor implements the paper's calibration remark: it
// simulates the named workload at each transaction size, then fits the
// model's deadlock adjusting factor to the measurements. Use the sizes
// where the model deviates (the paper's approximation degrades at large
// n): e.g. CalibrateDeadlockFactor("MB8", []int{12, 16, 20}, opts).
func CalibrateDeadlockFactor(name string, ns []int, opts SimOptions) (*Calibration, error) {
	mk, err := workloadMaker(name)
	if err != nil {
		return nil, err
	}
	res, err := experiment.Calibrate(mk, ns, opts.fill())
	if err != nil {
		return nil, err
	}
	return &Calibration{
		Factor:        res.Adjust,
		FittedError:   res.Error,
		BaselineError: res.BaselineError,
	}, nil
}

func workloadMaker(name string) (func(int) workload.Workload, error) {
	if _, err := workload.ByName(name, 4); err != nil {
		return nil, err
	}
	return func(n int) workload.Workload {
		wl, _ := workload.ByName(name, n)
		return wl
	}, nil
}

// ReproduceFigure regenerates one of the paper's figures (5–10) over the
// paper's transaction-size sweep, returning an ASCII rendering with the
// underlying numbers. Pass zero-value opts for defaults.
func ReproduceFigure(id int, opts SimOptions) (string, error) {
	f, err := buildFigure(id, opts)
	if err != nil {
		return "", err
	}
	return f.ASCII(), nil
}

// ReproduceFigureMarkdown is ReproduceFigure rendered as a Markdown table.
func ReproduceFigureMarkdown(id int, opts SimOptions) (string, error) {
	f, err := buildFigure(id, opts)
	if err != nil {
		return "", err
	}
	return f.Markdown(), nil
}

func buildFigure(id int, opts SimOptions) (*experiment.Figure, error) {
	e := opts.fill()
	ns := experiment.PaperNs()
	switch id {
	case 5:
		return experiment.Figure5(ns, e)
	case 6:
		return experiment.Figure6(ns, e)
	case 7:
		return experiment.Figure7(ns, e)
	case 8:
		return experiment.Figure8(ns, e)
	case 9:
		return experiment.Figure9(ns, e)
	case 10:
		return experiment.Figure10(ns, e)
	default:
		return nil, fmt.Errorf("carat: the paper has figures 5 through 10, not %d", id)
	}
}

// ReproduceExtensionFigure regenerates the repository's extension figure —
// mean LU response time, model vs simulation, over the paper's sweep.
func ReproduceExtensionFigure(opts SimOptions) (string, error) {
	f, err := experiment.FigureResponseTimes(experiment.PaperNs(), opts.fill())
	if err != nil {
		return "", err
	}
	return f.ASCII(), nil
}

// ReproduceExtensionFigureMarkdown is ReproduceExtensionFigure as Markdown.
func ReproduceExtensionFigureMarkdown(opts SimOptions) (string, error) {
	f, err := experiment.FigureResponseTimes(experiment.PaperNs(), opts.fill())
	if err != nil {
		return "", err
	}
	return f.Markdown(), nil
}

// ReproduceTable regenerates one of the paper's result tables (3, 4 or 5)
// over the paper's sweep; Table 1 (for given l, r and q it uses l=r=n/2,
// q≈4 with mild contention) and Table 2 (the input parameters) are also
// available for reference.
func ReproduceTable(id int, opts SimOptions) (string, error) {
	t, err := buildTable(id, opts)
	if err != nil {
		return "", err
	}
	return t.Render(), nil
}

// ReproduceTableMarkdown is ReproduceTable rendered as a Markdown table.
func ReproduceTableMarkdown(id int, opts SimOptions) (string, error) {
	t, err := buildTable(id, opts)
	if err != nil {
		return "", err
	}
	return t.Markdown(), nil
}

func buildTable(id int, opts SimOptions) (*experiment.Table, error) {
	e := opts.fill()
	ns := experiment.PaperNs()
	switch id {
	case 1:
		return experiment.Table1(4, 4, 3.97, 0.05, 0.02, 0.01)
	case 2:
		return experiment.Table2(), nil
	case 3:
		return experiment.Table3(ns, e)
	case 4:
		return experiment.Table4(ns, e)
	case 5:
		return experiment.Table5(ns, e)
	default:
		return nil, fmt.Errorf("carat: no table %d (want 1-5)", id)
	}
}
