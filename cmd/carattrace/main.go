// Command carattrace runs a short simulation with protocol tracing and
// prints the event stream: every lock wait, deadlock victim, rollback and
// two-phase-commit step, in simulation-time order. Useful for watching the
// protocols of Section 2 operate — e.g. follow one distributed update from
// TBEGIN through PREPARE acknowledgments, the force-written commit record,
// and the slave commits.
//
// Usage:
//
//	carattrace [-workload MB4] [-n 8] [-seconds 30] [-txn 17] [-cc 2PL]
//	carattrace -faults 'crash=1@10000+5000,lockto=8000' -seconds 30
//	carattrace -open -lambda 1 -resilience 'mpl=4,shed=1' -seconds 30
//	carattrace -sites 16 -placement locality -locality 0.5 -seconds 10
//
// With -sites or -placement the tool traces a generated N-site scale
// configuration (carat.NewScaleConfig; the same directory-driven fleets
// caratsim's scale mode runs) instead of a named workload: -placement
// selects the strategy (hash, range or locality), -locality the home-shard
// affinity fraction, and -lambda the per-site arrival rate. Every message
// on the shared Ethernet fabric prints a `net-hop` event (Node is the
// sender, Granule the destination site). Unknown strategies and site
// counts outside [2, 512] are rejected with the valid values.
//
// With -txn only that transaction's events print. With -faults (same
// syntax as caratsim; see carat.ParseFaultPlan) the stream also carries
// the site-level crash, restart and timeout-abort events. With -partition
// and -graysites (caratsim syntax; see carat.ParsePartitions and
// carat.ParseGraySites) it carries the partition, partition-heal, suspect
// and trust events of the failure-detector layer. With -open the
// closed terminals are replaced by Poisson arrivals at -lambda system-wide
// transactions per second, and each arrival prints an `arrival` event at
// its home site (its Txn field is the negated arrival sequence number —
// no submission exists yet); an arrival rejected by a shedding admission
// gate (-resilience 'mpl=N,shed=1') prints `admission-shed` instead of
// entering the system.
package main

import (
	"flag"
	"fmt"
	"os"

	"carat"
)

func main() {
	var (
		name    = flag.String("workload", "MB4", "workload: LB8, MB4, MB8 or UB6")
		n       = flag.Int("n", 8, "transaction size")
		seconds = flag.Float64("seconds", 30, "simulated seconds to trace")
		seed    = flag.Uint64("seed", 1, "random seed")
		txn     = flag.Int64("txn", 0, "print only this transaction id (0 = all)")
		cc      = flag.String("cc", "2PL", "concurrency control: 2PL, wait-die, wound-wait, timestamp-ordering, occ or quecc")
		dbsize  = flag.Int("dbsize", 0, "database blocks per site (0 = paper's 3000)")
		faults  = flag.String("faults", "", "fault plan, e.g. 'crash=1@10000+5000,lockto=8000' (caratsim syntax)")
		partStr = flag.String("partition", "", "network partitions, e.g. '0|1@10000+8000' (caratsim syntax)")
		grayStr = flag.String("graysites", "", "gray failures, e.g. '1@10000+8000*3' (caratsim syntax)")
		resil   = flag.String("resilience", "", "resilience policy, e.g. 'mpl=4,shed=1' (caratsim syntax)")
		open    = flag.Bool("open", false, "replace closed terminals with open Poisson arrivals")
		lambda  = flag.Float64("lambda", 1.0, "open mode: system-wide arrival rate, txn/s (scale mode: per-site)")
		sites   = flag.Int("sites", 16, "scale mode: site count in [2,512]")
		placemt = flag.String("placement", "", "scale mode: placement strategy: hash, range or locality")
		localty = flag.Float64("locality", 0.9, "scale mode: home-shard affinity fraction in [0,1]")
	)
	flag.Parse()

	ccMode, err := carat.ParseConcurrencyControl(*cc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	scaleMode := *placemt != ""
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "sites", "locality":
			scaleMode = true
		}
	})
	var wl carat.Workload
	if scaleMode {
		strategy := carat.LocalityPlacement
		if *placemt != "" {
			if strategy, err = carat.ParsePlacement(*placemt); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if wl, err = carat.NewScaleConfig(*sites, strategy, *localty, *lambda); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else if wl, err = carat.WorkloadByName(*name, *n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wl = wl.WithConcurrencyControl(ccMode)
	if *dbsize > 0 {
		wl = wl.WithDatabaseSize(*dbsize)
	}
	if *faults != "" || *partStr != "" || *grayStr != "" {
		var fp carat.FaultPlan
		if *faults != "" {
			if fp, err = carat.ParseFaultPlan(*faults); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *partStr != "" {
			if err := carat.ParsePartitions(*partStr, &fp); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *grayStr != "" {
			if err := carat.ParseGraySites(*grayStr, &fp); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		wl = wl.WithFaults(fp)
	}
	if *resil != "" {
		r, err := carat.ParseResilience(*resil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wl = wl.WithResilience(r)
	}
	if *open {
		wl = wl.WithOpenArrivals(carat.OpenArrivals{LambdaPerSec: *lambda}).WithoutClosedUsers()
	}
	opts := carat.SimOptions{Seed: *seed, WarmupMS: 1, DurationMS: *seconds * 1000}

	count := 0
	_, err = carat.SimulateWithTrace(wl, opts, func(ev carat.TraceEvent) {
		if *txn != 0 && ev.Txn != *txn {
			return
		}
		count++
		g := ""
		if ev.Granule >= 0 {
			g = fmt.Sprintf(" granule=%d", ev.Granule)
		}
		fmt.Printf("%12.1f ms  txn=%-5d %-4s node=%d  %-20s%s\n",
			ev.TimeMS, ev.Txn, ev.Type, ev.Node, ev.Event, g)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("-- %d events over %.0f simulated seconds\n", count, *seconds)
}
