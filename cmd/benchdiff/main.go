// Command benchdiff compares two benchmark baselines recorded as `go test
// -json` event streams (the files `make bench` writes) and fails when a
// gated benchmark regresses beyond a threshold.
//
// Usage:
//
//	benchdiff -old BENCH_old.json -new BENCH_new.json [-gate regex] [-max-regress 20]
//
// The gate regexp selects which benchmarks are enforced; every gated
// benchmark must appear in both files. Non-gated benchmarks present in both
// files are reported for context but never fail the run. The exit status is
// 1 if any gated benchmark's ns/op grew by more than -max-regress percent.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// gatedDefault enforces the two simulator benchmarks the kernel overhaul
// is measured by.
const gatedDefault = `^(BenchmarkSimulateMB8|BenchmarkCapacitySweep)$`

// testEvent is the subset of the test2json event schema benchdiff needs.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a benchmark result line: name, iteration count, ns/op.
// The optional -N suffix is the GOMAXPROCS tag go test appends.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op`)

// parse extracts name -> ns/op from a go test -json stream. Result lines
// can be split across several output events (go test flushes the name and
// the numbers separately), so output is reassembled per package first.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	perPkg := map[string]*strings.Builder{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("%s: not a go test -json stream: %v", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		b := perPkg[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			perPkg[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := map[string]float64{}
	for _, b := range perPkg {
		for _, line := range strings.Split(b.String(), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			out[m[1]] = ns
		}
	}
	return out, nil
}

func main() {
	var (
		oldPath    = flag.String("old", "", "baseline go test -json file")
		newPath    = flag.String("new", "", "candidate go test -json file")
		gate       = flag.String("gate", gatedDefault, "regexp selecting the enforced benchmarks")
		maxRegress = flag.Float64("max-regress", 20, "maximum allowed ns/op growth for gated benchmarks, percent")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -gate: %v\n", err)
		os.Exit(2)
	}

	oldNS, err := parse(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newNS, err := parse(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newNS))
	for name := range newNS {
		if _, ok := oldNS[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	failed := false
	gatedSeen := 0
	for _, name := range names {
		o, n := oldNS[name], newNS[name]
		deltaPct := (n - o) / o * 100
		gated := gateRe.MatchString(name)
		status := "      "
		if gated {
			gatedSeen++
			if deltaPct > *maxRegress {
				status = "FAIL  "
				failed = true
			} else {
				status = "ok    "
			}
		}
		fmt.Printf("%s%-45s %14.0f -> %14.0f ns/op  %+7.1f%%\n", status, name, o, n, deltaPct)
	}

	// A gated benchmark missing from either file is a gate failure: the
	// regression check silently passing because the benchmark vanished is
	// exactly the failure mode this tool exists to prevent.
	for name := range newNS {
		if gateRe.MatchString(name) {
			if _, ok := oldNS[name]; !ok {
				fmt.Fprintf(os.Stderr, "benchdiff: gated benchmark %s missing from %s\n", name, *oldPath)
				failed = true
			}
		}
	}
	for name := range oldNS {
		if gateRe.MatchString(name) {
			if _, ok := newNS[name]; !ok {
				fmt.Fprintf(os.Stderr, "benchdiff: gated benchmark %s missing from %s\n", name, *newPath)
				failed = true
			}
		}
	}
	if gatedSeen == 0 && !failed {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark matches gate %q in both files\n", *gate)
		os.Exit(1)
	}

	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: gated benchmark regressed more than %.0f%%\n", *maxRegress)
		os.Exit(1)
	}
	fmt.Println("benchdiff: gated benchmarks within threshold")
}
