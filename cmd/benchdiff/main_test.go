package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// writeStream writes a go test -json event stream whose reassembled output
// contains the given lines; the first line is split across two events to
// mirror how go test actually flushes benchmark results (name first, the
// numbers later).
func writeStream(t *testing.T, name string, lines []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	var body string
	for i, line := range lines {
		if i == 0 && len(line) > 10 {
			body += `{"Action":"output","Package":"carat","Output":"` + line[:10] + `"}` + "\n"
			body += `{"Action":"output","Package":"carat","Output":"` + line[10:] + `\n"}` + "\n"
			continue
		}
		body += `{"Action":"output","Package":"carat","Output":"` + line + `\n"}` + "\n"
	}
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseReassemblesSplitLines(t *testing.T) {
	path := writeStream(t, "bench.json", []string{
		`BenchmarkSimulateMB8   \t       5\t  52647245 ns/op`,
		`BenchmarkCapacitySweep \t       5\t 140087276 ns/op\t 0.80 knee-tps`,
		`BenchmarkOther-8       \t     100\t      1234 ns/op\t 10 B/op`,
		`not a benchmark line`,
	})
	got, err := parse(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSimulateMB8":   52647245,
		"BenchmarkCapacitySweep": 140087276,
		"BenchmarkOther":         1234,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestParseRejectsNonJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.txt")
	if err := os.WriteFile(path, []byte("BenchmarkFoo 1 100 ns/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parse(path); err == nil {
		t.Fatal("parse accepted a non-JSON file")
	}
}

func TestGateRegexpMatchesDefaults(t *testing.T) {
	re := regexp.MustCompile(gatedDefault)
	for _, name := range []string{"BenchmarkSimulateMB8", "BenchmarkCapacitySweep"} {
		if !re.MatchString(name) {
			t.Errorf("default gate must match %s", name)
		}
	}
	for _, name := range []string{"BenchmarkSimulateHourMB8", "BenchmarkCapacitySweepDeterministic", "BenchmarkModelSolveMB8"} {
		if re.MatchString(name) {
			t.Errorf("default gate must not match %s", name)
		}
	}
}
