// Command caratrepro regenerates every table and figure of the paper's
// evaluation section: Figures 5–10 (LB8 and MB4 sweeps of record
// throughput, CPU utilization, and disk I/O rate) and Tables 3–5 (MB8,
// UB6 and per-type MB4 model-vs-measurement comparisons), plus the
// reference Tables 1 and 2.
//
// Usage:
//
//	caratrepro              # everything (several simulated hours; ~10 s wall)
//	caratrepro -only fig5   # one artifact: fig5..fig10, table1..table5
//	caratrepro -seed 7 -minutes 30
//	caratrepro -reps 8 -workers 4   # mean ±95% CI columns, parallel runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"carat"
)

func main() {
	var (
		only    = flag.String("only", "", "one artifact: fig5..fig10 or table1..table5 (default all)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		minutes = flag.Float64("minutes", 60, "simulated measurement minutes per data point")
		reps    = flag.Int("reps", 1, "independent replications per data point; >1 adds ±95% CI columns")
		workers = flag.Int("workers", 0, "parallel simulation workers for -reps (0 = GOMAXPROCS)")
		format  = flag.String("format", "text", "output format: text or markdown")
	)
	flag.Parse()
	markdown := strings.EqualFold(*format, "markdown") || strings.EqualFold(*format, "md")

	warmup := 120_000.0
	opts := carat.SimOptions{
		Seed:         *seed,
		WarmupMS:     warmup,
		DurationMS:   warmup + *minutes*60_000,
		Replications: *reps,
		Workers:      *workers,
	}

	type artifact struct {
		name string
		run  func() (string, error)
	}
	var artifacts []artifact
	for id := 5; id <= 10; id++ {
		id := id
		artifacts = append(artifacts, artifact{
			name: fmt.Sprintf("fig%d", id),
			run: func() (string, error) {
				if markdown {
					return carat.ReproduceFigureMarkdown(id, opts)
				}
				return carat.ReproduceFigure(id, opts)
			},
		})
	}
	artifacts = append(artifacts, artifact{
		name: "figr",
		run: func() (string, error) {
			if markdown {
				return carat.ReproduceExtensionFigureMarkdown(opts)
			}
			return carat.ReproduceExtensionFigure(opts)
		},
	})
	for id := 1; id <= 5; id++ {
		id := id
		artifacts = append(artifacts, artifact{
			name: fmt.Sprintf("table%d", id),
			run: func() (string, error) {
				if markdown {
					return carat.ReproduceTableMarkdown(id, opts)
				}
				return carat.ReproduceTable(id, opts)
			},
		})
	}

	matched := false
	for _, a := range artifacts {
		if *only != "" && !strings.EqualFold(*only, a.name) {
			continue
		}
		matched = true
		// The artifact closures read the shared opts, so installing a
		// per-artifact progress line here is seen by the run below.
		name := a.name
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d runs", name, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
		out, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", a.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Println(strings.Repeat("=", 78))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown artifact %q (want fig5..fig10, figr, or table1..table5)\n", *only)
		os.Exit(1)
	}
}
