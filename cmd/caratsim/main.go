// Command caratsim runs the CARAT testbed simulator — the reproduction's
// stand-in for the paper's two VAX 11/780s — and prints the measured
// performance.
//
// Usage:
//
//	caratsim [-workload MB4] [-n 8] [-seed 1] [-minutes 60] [-logdisk] ...
//	caratsim -workload MB4 -sweep -reps 8 -workers 4   # mean ±95% CI per point
//	caratsim -workload MB4 -faults 'crash=1@60000+10000,lockto=5000'
//	caratsim -workload MB4 -chaos 20   # randomized fault audit, 20 runs
//	caratsim -workload MB8 -open -lambda 0.8            # open Poisson arrivals
//	caratsim -workload MB8 -lambdas 0.5,0.8,1.0,1.4 -resilience mpl=8  # capacity sweep
//	caratsim -cc quecc -workload MB4 -n 8                # deterministic execution
//	caratsim -ccsweep 1,2,4 -minutes 10                  # 2PL vs QueCC vs OCC lab
//	caratsim -sites 64 -placement hash -lambda 0.5       # one 64-site scale run
//	caratsim -scalesweep 0.5,1.0 -minutes 10             # 16/64/128-site scale-out study
//
// The -sites, -placement and -locality flags select a generated N-site
// scale configuration (carat.NewScaleConfig) instead of a named workload:
// a homogeneous fleet whose granule space is mapped onto home sites by the
// placement directory (hash = uniform striping, range = contiguous shards,
// locality = range shards with a home-shard affinity fraction from
// -locality), every inter-site message riding a shared contended Ethernet
// fabric, and open arrivals at -lambda transactions/s per site. Unknown
// strategies and site counts outside [2, 512] are rejected with the valid
// values. With -scalesweep L1,L2,... the tool instead runs the full
// scale-out study — every -sites count crossed with every -locality level
// and every per-site rate — and prints the bottleneck-migration table:
// per-cell throughput, the maximum CPU/disk/TM utilization over the sites,
// the shared wire's utilization with its per-message contention inflation
// and queueing delay, and which center binds.
//
// The -cc flag selects the concurrency-control paradigm
// (case-insensitive): 2PL (deadlock detection, the paper's scheme),
// wait-die, wound-wait, timestamp-ordering, occ (optimistic, backward
// validation at commit) or quecc (deterministic queue-ordered execution).
// Unknown names are rejected with the valid list. With -ccsweep M1,M2,...
// the tool instead runs the comparison lab: the default protocol trio
// (2PL, QueCC, OCC) crossed with three contention levels (uniform, 80/20
// hotspot, zipf-0.99) and the given MPL multipliers (8m users per cell),
// reporting throughput, abort rate and paradigm-specific counters.
//
// With -open the simulator runs an open workload: transactions arrive in
// per-site Poisson streams at -lambda arrivals/s system-wide instead of
// being resubmitted by the closed terminals (which are removed). The mix
// defaults to one class per transaction type; -classes overrides it (see
// carat.ParseOpenClasses), -burstfactor/-burston/-burstoff modulate the
// rate with on-off bursts, and -ramp 'AT:RATE,AT:RATE,...' (ms:arrivals/s)
// replaces the constant rate with a piecewise-linear schedule.
//
// With -lambdas L1,L2,... the tool instead runs a capacity sweep: one open
// simulation per offered rate, reporting committed throughput and response
// percentiles per point, the saturation knee, and the closed model's
// bottleneck bound 1/D_max (Section 4) for comparison.
//
// The -pattern flag selects the record-access pattern (uniform, the
// paper's assumption; hotspot, the b–c rule shaped by -hot/-hotfrac; zipf,
// shaped by -zipftheta).
//
// The -faults argument is a comma-separated list of key=value settings:
//
//	crash=SITE@AT+DOWN  crash site SITE at AT ms for DOWN ms (repeatable)
//	mttf=MS             random crashes: mean time to failure per site
//	mttr=MS             mean outage before restart recovery (default 5000)
//	loss=P              per-message loss probability in [0,1)
//	retrans=MS          retransmission delay per lost message (default 10)
//	delayp=P            probability of extra delay on a hop
//	delayms=MS          mean of the extra exponential delay (default 5)
//	prepto=MS           2PC prepare timeout (presumed abort on expiry)
//	lockto=MS           lock wait timeout
//	backoff=MS          user retry backoff while a slave site is down
//	probeloss=P         per-probe loss probability in [0,1] (no retransmit)
//	probeout=MS         drop every inter-site probe before this instant
//	fseed=N             fault RNG seed (default: fixed stream)
//
// The -partition argument schedules network partitions (semicolon-
// separated; see carat.ParsePartitions). Each entry is either a split
// GROUPS@AT+HEAL — |-separated site lists, e.g. '0,1|2,3@60000+20000'
// splits sites {0,1} from {2,3} at t=60 s for 20 s — or a key=value
// option: mtbf=MS and mean=MS arm a random partition process, split=P
// sets its per-site group probability, and hb=MS / suspect=MS tune the
// heartbeat failure detector. During a partition, messages do not cross
// group boundaries: distributed transactions needing unreachable (or
// suspected) participants are shed at submission, in-flight ones abort
// (presumed abort; in-doubt slaves resolve by cooperative termination at
// heal), and minority-side sites refuse failover reads.
//
// The -graysites argument schedules gray failures (semicolon-separated;
// see carat.ParseGraySites): '1@60000+30000*3/2' runs site 1 with CPU
// service times stretched 3x and disk 2x from t=60 s for 30 s. A single
// factor ('1@60000+30000*3') degrades both resources.
//
// The -resilience argument configures retry, admission control and probe
// retransmission (see carat.ParseResilience):
//
//	retries=N       submissions per transaction before abandoning (0 = unlimited)
//	backoff=MS      base exponential backoff between resubmissions
//	maxbackoff=MS   backoff cap (default 32× base)
//	mult=X          backoff multiplier (default 2)
//	jitter=F        symmetric backoff jitter fraction in [0,1]
//	mpl=N           per-site admission cap (0 = no gate)
//	abortrate=R     engage the gate only above R aborts/s (0 = always)
//	window=MS       abort-rate measurement window (default 1000)
//	shed=BOOL       reject excess arrivals instead of queueing them
//	shedbackoff=MS  re-arrival delay for shed arrivals (default 100)
//	probe=MS        re-initiate deadlock probes every MS while blocked
//
// The -repl argument replicates every granule across sites (primary-copy
// two-phase locking with write-all-available propagation; see
// carat.ParseReplication):
//
//	R=N        replication factor (copies per granule; 1 = off)
//	read=MODE  read policy: one (default) or quorum
//
// With -chaos N the tool instead runs N simulations under randomized
// bounded fault plans and resilience policies, audits each against the
// testbed's correctness invariants (2PC atomicity, durability under
// restart replay, transaction conservation, a goodput floor) and exits
// non-zero if any run violates one. Adding -chaospartitions draws
// scheduled network partitions into every run's plan, arming the
// split-brain invariants (replica agreement and post-heal
// reconciliation).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"carat"
)

func main() {
	var (
		name    = flag.String("workload", "MB4", "workload: LB8, MB4, MB8 or UB6")
		n       = flag.Int("n", 8, "transaction size (requests per transaction)")
		sweep   = flag.Bool("sweep", false, "sweep n over the paper's grid 4,8,12,16,20")
		seed    = flag.Uint64("seed", 1, "random seed (equal seeds reproduce runs exactly)")
		minutes = flag.Float64("minutes", 60, "simulated measurement window in minutes")
		logdisk = flag.Bool("logdisk", false, "give each node a separate log disk")
		buffer  = flag.Float64("buffer", 0, "database buffer hit ratio in [0,1)")
		think   = flag.Float64("think", 0, "user think time in ms")
		dbsize  = flag.Int("dbsize", 0, "database size in blocks per site (0 = paper's 3000)")
		stripes = flag.Int("stripes", 1, "database disk stripes per site")
		cpus    = flag.Int("cpus", 1, "processors per node")
		hot     = flag.Float64("hot", 0, "hotspot: fraction of records that are hot (0 = uniform)")
		hotfrac = flag.Float64("hotfrac", 0.8, "hotspot: fraction of accesses aimed at the hot set")
		pattern = flag.String("pattern", "", "record access pattern: uniform, hotspot or zipf")
		theta   = flag.Float64("zipftheta", 0.99, "zipf: skew exponent for -pattern zipf")
		open    = flag.Bool("open", false, "open workload: Poisson arrivals replace the closed terminals")
		lambda  = flag.Float64("lambda", 1, "open mode: system-wide arrival rate in transactions/s")
		classes = flag.String("classes", "", "open mode: arrival mix, e.g. 'kind=LRO,weight=3;kind=DU,n=4' (see doc comment)")
		bfactor = flag.Float64("burstfactor", 0, "open mode: burst rate multiplier (<=1 = no bursts)")
		bon     = flag.Float64("burston", 0, "open mode: mean burst duration in ms")
		boff    = flag.Float64("burstoff", 0, "open mode: mean gap between bursts in ms")
		ramp    = flag.String("ramp", "", "open mode: piecewise-linear schedule 'AT:RATE,AT:RATE' (ms:arrivals/s)")
		lambdas = flag.String("lambdas", "", "capacity sweep: comma-separated offered rates in transactions/s")
		cc      = flag.String("cc", "2PL", "concurrency control: 2PL, wait-die, wound-wait, timestamp-ordering, occ or quecc")
		ccsweep = flag.String("ccsweep", "", "CC comparison lab: comma-separated MPL multipliers, e.g. '1,2,4' (8m users per cell)")
		scsweep = flag.String("scalesweep", "", "scale-out study: comma-separated per-site arrival rates in txn/s, e.g. '0.5,1.0'")
		sites   = flag.String("sites", "16,64,128", "scale mode: comma-separated site counts in [2,512]")
		placemt = flag.String("placement", "locality", "scale mode: placement strategy: hash, range or locality")
		localty = flag.String("locality", "0.9,0.5,0.1", "scale mode: comma-separated home-shard affinity fractions in [0,1]")
		reps    = flag.Int("reps", 1, "independent replications per point; >1 reports mean ±95% CI")
		workers = flag.Int("workers", 0, "parallel simulation workers for -reps (0 = GOMAXPROCS)")
		faults  = flag.String("faults", "", "fault plan, e.g. 'crash=1@60000+10000,lockto=5000' (see doc comment)")
		partStr = flag.String("partition", "", "network partitions, e.g. '0,1|2,3@60000+20000;mtbf=120000' (see doc comment)")
		grayStr = flag.String("graysites", "", "gray failures, e.g. '1@60000+30000*3/2' (see doc comment)")
		chParts = flag.Bool("chaospartitions", false, "with -chaos: also draw scheduled partitions into every run")
		resil   = flag.String("resilience", "", "resilience policy, e.g. 'retries=8,backoff=50,mpl=4,probe=500' (see doc comment)")
		replStr = flag.String("repl", "", "replication policy, e.g. 'R=2,read=quorum' (see doc comment)")
		chaos   = flag.Int("chaos", 0, "run a randomized fault audit with this many runs instead of a measurement")
		asJSON  = flag.Bool("json", false, "emit measurements as JSON")
	)
	flag.Parse()

	ccMode, err := carat.ParseConcurrencyControl(*cc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var faultPlan *carat.FaultPlan
	if *faults != "" {
		fp, err := carat.ParseFaultPlan(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		faultPlan = &fp
	}
	if *partStr != "" || *grayStr != "" {
		if faultPlan == nil {
			faultPlan = &carat.FaultPlan{}
		}
		if *partStr != "" {
			if err := carat.ParsePartitions(*partStr, faultPlan); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *grayStr != "" {
			if err := carat.ParseGraySites(*grayStr, faultPlan); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	var resilience *carat.Resilience
	if *resil != "" {
		r, err := carat.ParseResilience(*resil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		resilience = &r
	}
	var replication *carat.ReplicationPolicy
	if *replStr != "" {
		rp, err := carat.ParseReplication(*replStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		replication = &rp
	}
	var openMix []carat.OpenClass
	if *classes != "" {
		mix, err := carat.ParseOpenClasses(*classes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		openMix = mix
	}
	rampPoints, err := parseRamp(*ramp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	arrivals := carat.OpenArrivals{
		LambdaPerSec: *lambda,
		Burst:        carat.BurstModulation{Factor: *bfactor, OnMeanMS: *bon, OffMeanMS: *boff},
		Ramp:         rampPoints,
		Classes:      openMix,
	}
	grid, err := parseGrid(*lambdas)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *chaos > 0 {
		wl, err := carat.WorkloadByName(*name, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if replication != nil {
			wl = wl.WithReplication(*replication)
		}
		wl = wl.WithConcurrencyControl(ccMode)
		runChaos(wl, *chaos, *seed, *chParts, *asJSON)
		return
	}

	ns := []int{*n}
	if *sweep {
		ns = []int{4, 8, 12, 16, 20}
	}
	warmup := 120_000.0
	opts := carat.SimOptions{
		Seed:         *seed,
		WarmupMS:     warmup,
		DurationMS:   warmup + *minutes*60_000,
		Replications: *reps,
		Workers:      *workers,
	}
	if *ccsweep != "" {
		mpls, err := parseMPLs(*ccsweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runCCSweep(mpls, opts, *asJSON)
		return
	}
	scaleMode := *scsweep != ""
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "sites", "placement", "locality":
			scaleMode = true
		}
	})
	if scaleMode {
		strategy, err := carat.ParsePlacement(*placemt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		siteCounts, err := parseSites(*sites)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		localities, err := parseLocalities(*localty)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *scsweep != "" {
			lams, err := parseGrid(*scsweep)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runScaleSweep(strategy, siteCounts, localities, lams, opts, *asJSON)
			return
		}
		runScale(strategy, siteCounts[0], localities[0], *lambda, opts, *asJSON)
		return
	}
	for _, size := range ns {
		wl, err := carat.WorkloadByName(*name, size)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *logdisk {
			wl = wl.WithSeparateLogDisks()
		}
		if *buffer > 0 {
			wl = wl.WithBufferHitRatio(*buffer)
		}
		if *think > 0 {
			wl = wl.WithThinkTime(*think)
		}
		if *dbsize > 0 {
			wl = wl.WithDatabaseSize(*dbsize)
		}
		if *stripes > 1 {
			wl = wl.WithStripedDatabase(*stripes)
		}
		if *cpus > 1 {
			wl = wl.WithCPUs(*cpus)
		}
		if *hot > 0 {
			wl = wl.WithHotspot(*hot, *hotfrac)
		}
		if *pattern != "" {
			h := *hot
			if h == 0 {
				h = 0.2
			}
			p, err := carat.PatternByName(*pattern, h, *hotfrac, *theta)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			wl = wl.WithPattern(p)
		}
		wl = wl.WithConcurrencyControl(ccMode)
		if faultPlan != nil {
			wl = wl.WithFaults(*faultPlan)
		}
		if resilience != nil {
			wl = wl.WithResilience(*resilience)
		}
		if replication != nil {
			wl = wl.WithReplication(*replication)
		}
		if len(grid) > 0 {
			if *open || *classes != "" || *bfactor > 1 {
				wl = wl.WithOpenArrivals(arrivals)
			}
			runCapacity(wl, size, grid, opts, *asJSON)
			continue
		}
		if *open {
			wl = wl.WithOpenArrivals(arrivals).WithoutClosedUsers()
		}
		if *reps > 1 {
			runReplicated(wl, size, opts, *asJSON)
			continue
		}
		meas, err := carat.Simulate(wl, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				Workload string
				N        int
				Seed     uint64
				*carat.Measurement
			}{wl.Name(), size, *seed, meas}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("%s  n=%d  seed=%d  window=%.0f min\n", wl.Name(), size, *seed, meas.WindowMS/60000)
		for i, node := range meas.Nodes {
			fmt.Printf("  Node %c: TR-XPUT %.3f txn/s  records %.1f/s  CPU %.3f  DIO %.1f/s  deadlocks %d\n",
				'A'+i, node.TxnPerSec, node.RecordsPerSec, node.CPUUtilization,
				node.DiskIOPerSec, node.Deadlocks)
			for _, ty := range []carat.TxnType{carat.LocalReadOnly, carat.LocalUpdate, carat.DistributedRead, carat.DistributedUpdate} {
				if x, ok := node.TxnPerSecByType[ty]; ok {
					fmt.Printf("    %-4s X=%.3f±%.3f/s  R=%.0f ms  p95=%.0f ms\n",
						ty, x, node.TxnPerSecCI[ty], node.MeanResponseMS[ty], node.P95ResponseMS[ty])
				}
			}
			if faultPlan != nil {
				fmt.Printf("    avail %.4f  crashes %d  down %.0f ms  aborts crash/timeout %d/%d  in-doubt C/A %d/%d  lost msgs %d\n",
					node.Availability, node.Crashes, node.DowntimeMS,
					node.CrashAborts, node.TimeoutAborts,
					node.InDoubtCommitted, node.InDoubtAborted, node.MessagesLost)
			}
			if *partStr != "" || *grayStr != "" {
				fmt.Printf("    partition aborts/shed %d/%d  suspects %d  gray %.0f ms\n",
					node.PartitionAborts, node.PartitionShed, node.SuspectEvents, node.GrayMS)
			}
			if resilience != nil {
				var retried, abandoned int64
				for _, c := range node.Retried {
					retried += c
				}
				for _, c := range node.Abandoned {
					abandoned += c
				}
				fmt.Printf("    retried %d  abandoned %d  shed/delayed %d/%d  admit wait %.1f ms  peak MPL %d  probes lost/resent %d/%d\n",
					retried, abandoned, node.ShedArrivals, node.DelayedArrivals,
					node.MeanAdmitWaitMS, node.PeakMPL, node.ProbesLost, node.ProbesResent)
			}
			if replication != nil {
				fmt.Printf("    failover reads %d  replica applies %d  quorum reads %d\n",
					node.FailoverReads, node.ReplicaApplies, node.QuorumReads)
			}
			if *open {
				fmt.Printf("    arrivals %d (%.3f/s offered)  in-system mean %.1f peak %.0f  R mean/p50/p95 %.0f/%.0f/%.0f ms\n",
					node.OpenArrivals, node.OpenOfferedPerSec,
					node.OpenMeanInSystem, node.OpenPeakInSystem,
					node.OpenMeanResponseMS, node.OpenP50ResponseMS, node.OpenP95ResponseMS)
			}
		}
		if faultPlan != nil {
			var degraded int64
			for _, node := range meas.Nodes {
				degraded += node.DegradedCommits
			}
			fmt.Printf("  degraded: %.0f ms with a site down, %d commits during outages\n",
				meas.DegradedMS, degraded)
			if meas.Partitions > 0 {
				fmt.Printf("  partitions: %d taking effect, network severed %.0f ms\n",
					meas.Partitions, meas.PartitionMS)
			}
		}
		fmt.Println()
	}
}

// parseGrid parses the -lambdas comma-separated rate list.
func parseGrid(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var grid []float64
	for _, part := range strings.Split(s, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("lambdas: %q: %w", part, err)
		}
		grid = append(grid, x)
	}
	return grid, nil
}

// parseMPLs parses the -ccsweep comma-separated MPL multiplier list.
func parseMPLs(s string) ([]int, error) {
	var mpls []int
	for _, part := range strings.Split(s, ",") {
		m, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("ccsweep: %q: %w", part, err)
		}
		if m < 1 {
			return nil, fmt.Errorf("ccsweep: MPL multiplier %d < 1", m)
		}
		mpls = append(mpls, m)
	}
	return mpls, nil
}

// parseSites parses the -sites comma-separated site-count list, rejecting
// counts outside the scale configurations' [2, 512] range.
func parseSites(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("sites: %q: %w", part, err)
		}
		if c < 2 || c > 512 {
			return nil, fmt.Errorf("sites: %d out of range (valid site counts: 2 through 512)", c)
		}
		counts = append(counts, c)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("sites: empty site-count list")
	}
	return counts, nil
}

// parseLocalities parses the -locality comma-separated affinity list.
func parseLocalities(s string) ([]float64, error) {
	locs, err := parseGrid(s)
	if err != nil {
		return nil, fmt.Errorf("locality: %w", err)
	}
	if len(locs) == 0 {
		return nil, fmt.Errorf("locality: empty affinity list")
	}
	for _, l := range locs {
		if l < 0 || l > 1 {
			return nil, fmt.Errorf("locality: affinity %v out of range (valid affinities: 0 through 1)", l)
		}
	}
	return locs, nil
}

// runScale runs a single generated N-site configuration through the
// standard measurement path and prints the fleet summary with the shared
// wire's metrics.
func runScale(strategy carat.PlacementStrategy, sites int, locality, lambdaPerSite float64, opts carat.SimOptions, asJSON bool) {
	wl, err := carat.NewScaleConfig(sites, strategy, locality, lambdaPerSite)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	meas, err := carat.Simulate(wl, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Workload      string
			Sites         int
			Placement     string
			Locality      float64
			LambdaPerSite float64
			Seed          uint64
			*carat.Measurement
		}{wl.Name(), sites, string(strategy), locality, lambdaPerSite, opts.Seed, meas}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	var tps, maxCPU, maxDisk float64
	for _, node := range meas.Nodes {
		tps += node.TxnPerSec
		if node.CPUUtilization > maxCPU {
			maxCPU = node.CPUUtilization
		}
		if node.DiskUtilization > maxDisk {
			maxDisk = node.DiskUtilization
		}
	}
	fmt.Printf("%s  sites=%d  placement=%s  locality=%.2f  λ/site=%.2f/s  seed=%d  window=%.0f min\n",
		wl.Name(), sites, strategy, locality, lambdaPerSite, opts.Seed, meas.WindowMS/60000)
	fmt.Printf("  fleet: committed %.2f txn/s  max CPU util %.3f  max disk util %.3f\n", tps, maxCPU, maxDisk)
	fmt.Printf("  wire: %d msgs (%d bytes)  util %.3f  inflation %.3f ms/msg  queue %.3f ms/msg\n",
		meas.NetMessages, meas.NetBytes, meas.NetUtilization, meas.NetMeanInflationMS, meas.NetMeanQueueMS)
}

// runScaleSweep runs the full scale-out study and prints the
// bottleneck-migration table.
func runScaleSweep(strategy carat.PlacementStrategy, sites []int, localities, lambdas []float64, opts carat.SimOptions, asJSON bool) {
	opts.Progress = func(done, total int) {
		fmt.Fprintf(os.Stderr, "\rscale sweep: %d/%d cells", done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
	report, err := carat.ScaleSweep(strategy, sites, localities, lambdas, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("Scale sweep  placement=%s  seed=%d  %d cells\n", report.Strategy, opts.Seed, len(report.Points))
	fmt.Printf("  %5s %8s %7s %9s %7s %9s %8s %9s %7s %9s %9s %9s  %s\n",
		"sites", "locality", "λ/site", "TPS", "abort", "resp ms",
		"CPU", "disk", "TM", "wire", "infl ms", "queue ms", "bottleneck")
	for _, p := range report.Points {
		fmt.Printf("  %5d %8.2f %7.2f %9.1f %7.3f %9.0f %8.2f %9.2f %7.2f %9.2f %9.3f %9.3f  %s\n",
			p.Sites, p.Locality, p.LambdaPerSite, p.CommittedTPS, p.AbortRate, p.MeanResponseMS,
			p.MaxCPUUtil, p.MaxDiskUtil, p.MaxTMUtil, p.WireUtil,
			p.NetMeanInflationMS, p.NetMeanQueueMS, p.Bottleneck)
	}
}

// runCCSweep runs the concurrency-control comparison lab over the default
// protocol trio (2PL-detect, QueCC, OCC) and prints the full grid.
func runCCSweep(mpls []int, opts carat.SimOptions, asJSON bool) {
	opts.Progress = func(done, total int) {
		fmt.Fprintf(os.Stderr, "\rCC sweep: %d/%d cells", done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
	report, err := carat.CompareConcurrencyControls(nil, mpls, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("CC comparison  seed=%d  protocols %s  contentions %s\n",
		opts.Seed, strings.Join(report.Protocols, ", "), strings.Join(report.Contentions, ", "))
	fmt.Printf("  %-14s %-14s %6s %9s %7s %8s %10s %8s %8s %10s\n",
		"protocol", "contention", "users", "TPS", "abort", "resp ms",
		"deadlocks", "probes", "v-aborts", "lock waits")
	for _, p := range report.Points {
		fmt.Printf("  %-14s %-14s %6d %9.2f %7.3f %8.0f %10d %8d %8d %10d\n",
			p.Protocol, p.Contention, p.Users, p.CommittedTPS, p.AbortRate,
			p.MeanResponseMS, p.Deadlocks, p.ProbesResent, p.ValidationAborts, p.LockWaits)
	}
}

// parseRamp parses the -ramp 'AT:RATE,AT:RATE' schedule (ms:arrivals/s).
func parseRamp(s string) ([]carat.RampPoint, error) {
	if s == "" {
		return nil, nil
	}
	var pts []carat.RampPoint
	for _, part := range strings.Split(s, ",") {
		at, rate, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("ramp: %q wants AT:RATE", part)
		}
		var p carat.RampPoint
		var err error
		if p.AtMS, err = strconv.ParseFloat(at, 64); err != nil {
			return nil, fmt.Errorf("ramp: time %q: %w", at, err)
		}
		if p.LambdaPerSec, err = strconv.ParseFloat(rate, 64); err != nil {
			return nil, fmt.Errorf("ramp: rate %q: %w", rate, err)
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// runCapacity runs the -lambdas capacity sweep and prints the saturation
// summary against the closed model's bottleneck bound.
func runCapacity(wl carat.Workload, size int, grid []float64, opts carat.SimOptions, asJSON bool) {
	opts.Progress = func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s n=%d: %d/%d capacity runs", wl.Name(), size, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
	report, err := carat.CapacitySweep(wl, grid, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			N    int
			Seed uint64
			*carat.CapacityReport
		}{size, opts.Seed, report}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%s  n=%d  seed=%d  capacity sweep over %d offered rates\n",
		report.Workload, size, opts.Seed, len(report.Points))
	for _, p := range report.Points {
		fmt.Printf("  λ=%6.3f/s  offered %6.3f  committed %6.3f  shed %5.3f  abandoned %5.3f  R %7.0f ms  p95 %7.0f ms  N %7.1f\n",
			p.LambdaTPS, p.OfferedTPS, p.CommittedTPS, p.ShedTPS, p.AbandonedTPS,
			p.MeanResponseMS, p.P95ResponseMS, p.MeanInSystem)
	}
	fmt.Printf("  peak committed %.3f txn/s  knee λ=%.3f/s", report.PeakCommittedTPS, report.KneeLambdaTPS)
	if report.BottleneckBoundTPS > 0 {
		fmt.Printf("  bound 1/Dmax %.3f txn/s (measured peak = %.0f%% of bound)",
			report.BottleneckBoundTPS, 100*report.PeakCommittedTPS/report.BottleneckBoundTPS)
	}
	fmt.Println()
	fmt.Println()
}

// runChaos runs the randomized fault audit and exits non-zero if any run
// violates an invariant.
func runChaos(wl carat.Workload, runs int, seed uint64, partitions, asJSON bool) {
	report, err := carat.RunChaos(wl, carat.ChaosOptions{Runs: runs, Seed: seed, Partitions: partitions})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("%s chaos audit: %d runs, fault-free baseline %.2f txn/s\n",
			wl.Name(), len(report.Runs), report.BaselineTPS)
		for _, run := range report.Runs {
			status := "ok"
			if len(run.Violations) > 0 {
				status = fmt.Sprintf("%d VIOLATION(S)", len(run.Violations))
			}
			fmt.Printf("  run %2d  seed %#016x  goodput %7.2f txn/s  %s\n",
				run.Run, run.Seed, run.GoodputTPS, status)
		}
	}
	if bad := report.Violations(); len(bad) > 0 {
		for _, v := range bad {
			fmt.Fprintln(os.Stderr, v)
		}
		os.Exit(1)
	}
}

// runReplicated runs one sweep point with -reps > 1: independent parallel
// replications aggregated into mean ±95% CI per metric. A progress line on
// stderr tracks the worker pool.
func runReplicated(wl carat.Workload, size int, opts carat.SimOptions, asJSON bool) {
	opts.Progress = func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s n=%d: %d/%d replications", wl.Name(), size, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
	rm, err := carat.SimulateReplicated(wl, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Workload string
			N        int
			Seed     uint64
			*carat.ReplicatedMeasurement
		}{wl.Name(), size, opts.Seed, rm}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%s  n=%d  seed=%d  reps=%d  window=%.0f min  (95%% CI over replications)\n",
		wl.Name(), size, opts.Seed, rm.Replications, rm.WindowMS/60000)
	for i, node := range rm.Nodes {
		fmt.Printf("  Node %c: TR-XPUT %.3f ±%.3f txn/s  records %.1f ±%.1f/s  CPU %.3f ±%.3f  DIO %.1f ±%.1f/s\n",
			'A'+i, node.TxnPerSec.Mean, node.TxnPerSec.HalfWidth,
			node.RecordsPerSec.Mean, node.RecordsPerSec.HalfWidth,
			node.CPUUtilization.Mean, node.CPUUtilization.HalfWidth,
			node.DiskIOPerSec.Mean, node.DiskIOPerSec.HalfWidth)
		for _, ty := range []carat.TxnType{carat.LocalReadOnly, carat.LocalUpdate, carat.DistributedRead, carat.DistributedUpdate} {
			if x, ok := node.TxnPerSecByType[ty]; ok {
				r := node.MeanResponseMS[ty]
				fmt.Printf("    %-4s X=%.3f ±%.3f/s  R=%.0f ±%.0f ms\n", ty, x.Mean, x.HalfWidth, r.Mean, r.HalfWidth)
			}
		}
	}
	fmt.Println()
}
