// Command caratmodel solves the analytical queueing network model for one
// of the paper's workloads and prints the predicted performance.
//
// Usage:
//
//	caratmodel [-workload MB4] [-n 8] [-sweep] [-logdisk] [-buffer 0.0] [-think 0]
//
// With -sweep the transaction size runs over the paper's 4..20 grid.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"carat"
)

func main() {
	var (
		name      = flag.String("workload", "MB4", "workload: LB8, MB4, MB8 or UB6")
		n         = flag.Int("n", 8, "transaction size (requests per transaction)")
		sweep     = flag.Bool("sweep", false, "sweep n over the paper's grid 4,8,12,16,20")
		logdisk   = flag.Bool("logdisk", false, "give each node a separate log disk")
		buffer    = flag.Float64("buffer", 0, "database buffer hit ratio in [0,1)")
		think     = flag.Float64("think", 0, "user think time in ms")
		dbsize    = flag.Int("dbsize", 0, "database size in blocks per site (0 = paper's 3000)")
		stripes   = flag.Int("stripes", 1, "database disk stripes per site")
		cpus      = flag.Int("cpus", 1, "processors per node")
		breakdown = flag.Bool("breakdown", false, "print each type's per-cycle demand decomposition")
		asJSON    = flag.Bool("json", false, "emit predictions as JSON")
	)
	flag.Parse()

	ns := []int{*n}
	if *sweep {
		ns = []int{4, 8, 12, 16, 20}
	}
	for _, size := range ns {
		wl, err := carat.WorkloadByName(*name, size)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *logdisk {
			wl = wl.WithSeparateLogDisks()
		}
		if *buffer > 0 {
			wl = wl.WithBufferHitRatio(*buffer)
		}
		if *think > 0 {
			wl = wl.WithThinkTime(*think)
		}
		if *dbsize > 0 {
			wl = wl.WithDatabaseSize(*dbsize)
		}
		if *stripes > 1 {
			wl = wl.WithStripedDatabase(*stripes)
		}
		if *cpus > 1 {
			wl = wl.WithCPUs(*cpus)
		}
		pred, err := carat.SolveModel(wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				Workload string
				N        int
				*carat.Prediction
			}{wl.Name(), size, pred}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("%s  n=%d  (converged=%v in %d iterations)\n", wl.Name(), size, pred.Converged, pred.Iterations)
		for i, node := range pred.Nodes {
			fmt.Printf("  Node %c: TR-XPUT %.3f txn/s  records %.1f/s  CPU %.3f  DIO %.1f/s  disk util %.3f\n",
				'A'+i, node.TxnPerSec, node.RecordsPerSec, node.CPUUtilization,
				node.DiskIOPerSec, node.DiskUtilization)
			for _, ty := range []carat.TxnType{carat.LocalReadOnly, carat.LocalUpdate, carat.DistributedRead, carat.DistributedUpdate} {
				if x, ok := node.TxnPerSecByType[ty]; ok {
					fmt.Printf("    %-4s X=%.3f/s  R=%.0f ms  Pa=%.4f\n",
						ty, x, node.MeanResponseMS[ty], pred.AbortProbability[i][ty])
					if *breakdown {
						if d, ok := pred.Demands[i][ty]; ok {
							fmt.Printf("         demand/cycle ms: cpu=%.0f disk=%.0f lockwait=%.0f remotewait=%.0f commitwait=%.0f\n",
								d.CPUMS, d.DiskMS, d.LockWaitMS, d.RemoteWaitMS, d.CommitWaitMS)
						}
					}
				}
			}
		}
		fmt.Println()
	}
}
