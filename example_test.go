package carat_test

import (
	"fmt"
	"log"

	"carat"
)

// Solve the analytical model for the paper's MB4 workload and read off the
// headline predictions.
func ExampleSolveModel() {
	pred, err := carat.SolveModel(carat.WorkloadMB4(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged: %v\n", pred.Converged)
	fmt.Printf("node A TR-XPUT: %.2f txn/s\n", pred.Nodes[0].TxnPerSec)
	fmt.Printf("node A beats node B: %v\n", pred.Nodes[0].TxnPerSec > pred.Nodes[1].TxnPerSec)
	// Output:
	// converged: true
	// node A TR-XPUT: 0.58 txn/s
	// node A beats node B: true
}

// Run the testbed simulator deterministically: the same seed reproduces
// the measurement exactly.
func ExampleSimulate() {
	opts := carat.SimOptions{Seed: 7, WarmupMS: 10_000, DurationMS: 310_000}
	a, err := carat.Simulate(carat.WorkloadLB8(8), opts)
	if err != nil {
		log.Fatal(err)
	}
	b, err := carat.Simulate(carat.WorkloadLB8(8), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reproducible: %v\n", a.Nodes[0].TxnPerSec == b.Nodes[0].TxnPerSec)
	fmt.Printf("measured some commits: %v\n", a.Nodes[0].TxnPerSec > 0)
	// Output:
	// reproducible: true
	// measured some commits: true
}

// Ask a what-if question: how much does a dedicated log disk buy on the
// paper's shared-disk configuration? The model answers in milliseconds.
func ExampleWorkload_WithSeparateLogDisks() {
	shared, err := carat.SolveModel(carat.WorkloadLB8(8))
	if err != nil {
		log.Fatal(err)
	}
	dedicated, err := carat.SolveModel(carat.WorkloadLB8(8).WithSeparateLogDisks())
	if err != nil {
		log.Fatal(err)
	}
	gain := dedicated.Nodes[0].TxnPerSec/shared.Nodes[0].TxnPerSec - 1
	fmt.Printf("dedicated log disk gains more than 15%%: %v\n", gain > 0.15)
	// Output:
	// dedicated log disk gains more than 15%: true
}

// The paper's headline qualitative result: record throughput falls once
// transactions grow past n ≈ 8, because deadlock probability rises rapidly
// with transaction size.
func ExampleWorkload_WithTransactionSize() {
	wl := carat.WorkloadMB8(8)
	at8, err := carat.SolveModel(wl)
	if err != nil {
		log.Fatal(err)
	}
	at20, err := carat.SolveModel(wl.WithTransactionSize(20))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("records/s falls from n=8 to n=20: %v\n",
		at20.Nodes[0].RecordsPerSec < at8.Nodes[0].RecordsPerSec)
	fmt.Printf("abort probability rises: %v\n",
		at20.AbortProbability[0][carat.LocalUpdate] > at8.AbortProbability[0][carat.LocalUpdate])
	// Output:
	// records/s falls from n=8 to n=20: true
	// abort probability rises: true
}
