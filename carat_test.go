package carat

import (
	"strings"
	"testing"
)

// quick keeps unit-test simulations short but long enough for stable rates.
var quick = SimOptions{Seed: 1, WarmupMS: 30_000, DurationMS: 630_000}

func TestSolveModelMB4(t *testing.T) {
	pred, err := SolveModel(WorkloadMB4(8))
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Converged {
		t.Fatal("model did not converge")
	}
	if len(pred.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(pred.Nodes))
	}
	for i, n := range pred.Nodes {
		if n.TxnPerSec <= 0 || n.RecordsPerSec <= 0 || n.CPUUtilization <= 0 || n.DiskIOPerSec <= 0 {
			t.Fatalf("node %d metrics: %+v", i, n)
		}
		for _, ty := range []TxnType{LocalReadOnly, LocalUpdate, DistributedRead, DistributedUpdate} {
			if n.TxnPerSecByType[ty] <= 0 {
				t.Fatalf("node %d missing %v throughput", i, ty)
			}
			if n.MeanResponseMS[ty] <= 0 {
				t.Fatalf("node %d missing %v response time", i, ty)
			}
		}
	}
}

func TestSimulateLB8(t *testing.T) {
	meas, err := Simulate(WorkloadLB8(8), quick)
	if err != nil {
		t.Fatal(err)
	}
	if meas.WindowMS != 600_000 {
		t.Fatalf("window = %v", meas.WindowMS)
	}
	for i, n := range meas.Nodes {
		if n.TxnPerSec <= 0 {
			t.Fatalf("node %d idle", i)
		}
		if _, ok := n.TxnPerSecByType[DistributedUpdate]; ok {
			t.Fatal("LB8 must not run DU")
		}
	}
}

func TestCompareAgreesRoughly(t *testing.T) {
	c, err := Compare(WorkloadMB4(8), quick)
	if err != nil {
		t.Fatal(err)
	}
	if c.Workload != "MB4" || c.N != 8 {
		t.Fatalf("identity: %s/%d", c.Workload, c.N)
	}
	for i := range c.Predicted.Nodes {
		mo := c.Predicted.Nodes[i].TxnPerSec
		me := c.Measured.Nodes[i].TxnPerSec
		if mo <= 0 || me <= 0 {
			t.Fatalf("node %d: model %v sim %v", i, mo, me)
		}
		rel := (mo - me) / me
		if rel < -0.5 || rel > 0.8 {
			t.Fatalf("node %d: model %v vs sim %v diverge", i, mo, me)
		}
	}
}

func TestDeterministicSimulation(t *testing.T) {
	a, err := Simulate(WorkloadMB4(8), quick)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(WorkloadMB4(8), quick)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i].TxnPerSec != b.Nodes[i].TxnPerSec {
			t.Fatal("same seed must reproduce results exactly")
		}
	}
	c, err := Simulate(WorkloadMB4(8), SimOptions{Seed: 2, WarmupMS: quick.WarmupMS, DurationMS: quick.DurationMS})
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes[0].TxnPerSec == c.Nodes[0].TxnPerSec {
		t.Log("different seeds coincided exactly — suspicious but not impossible")
	}
}

func TestWorkloadOptions(t *testing.T) {
	w := WorkloadLB8(8)
	if w.Name() != "LB8" || w.TransactionSize() != 8 {
		t.Fatal("identity accessors wrong")
	}
	if w2 := w.WithTransactionSize(12); w2.TransactionSize() != 12 || w.TransactionSize() != 8 {
		t.Fatal("WithTransactionSize must copy")
	}

	// Separate log disks must beat the paper's shared-disk compromise.
	shared, err := SolveModel(w)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := SolveModel(w.WithSeparateLogDisks())
	if err != nil {
		t.Fatal(err)
	}
	if sep.Nodes[0].TxnPerSec <= shared.Nodes[0].TxnPerSec {
		t.Fatal("separate log disks should increase model throughput")
	}

	// Buffer hits help both model and simulation.
	buf, err := SolveModel(w.WithBufferHitRatio(0.8))
	if err != nil {
		t.Fatal(err)
	}
	if buf.Nodes[0].TxnPerSec <= shared.Nodes[0].TxnPerSec {
		t.Fatal("buffer pool should increase model throughput")
	}

	// Think time reduces utilization.
	think, err := SolveModel(w.WithThinkTime(2000))
	if err != nil {
		t.Fatal(err)
	}
	if think.Nodes[0].CPUUtilization >= shared.Nodes[0].CPUUtilization {
		t.Fatal("think time should reduce utilization")
	}
}

func TestHotspotRaisesContention(t *testing.T) {
	base, err := Simulate(WorkloadLB8(16), quick)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Simulate(WorkloadLB8(16).WithHotspot(0.01, 0.9), quick)
	if err != nil {
		t.Fatal(err)
	}
	var baseDl, hotDl int64
	for i := range base.Nodes {
		baseDl += base.Nodes[i].Deadlocks
		hotDl += hot.Nodes[i].Deadlocks
	}
	if hotDl <= baseDl {
		t.Fatalf("hotspot should raise deadlocks: %d vs %d", hotDl, baseDl)
	}
}

func TestSmallDatabaseRaisesAborts(t *testing.T) {
	big, err := SolveModel(WorkloadMB4(12))
	if err != nil {
		t.Fatal(err)
	}
	small, err := SolveModel(WorkloadMB4(12).WithDatabaseSize(300))
	if err != nil {
		t.Fatal(err)
	}
	if small.AbortProbability[0][LocalUpdate] <= big.AbortProbability[0][LocalUpdate] {
		t.Fatal("smaller database should raise the abort probability")
	}
}

func TestNewWorkloadCustomMix(t *testing.T) {
	users := []User{
		{Type: LocalUpdate, Home: 0},
		{Type: LocalUpdate, Home: 0},
		{Type: DistributedUpdate, Home: 0, Remote: 1},
		{Type: DistributedUpdate, Home: 1, Remote: 0},
	}
	w, err := NewWorkload("custom", 2, users, 8)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := SolveModel(w)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Nodes[0].TxnPerSecByType[LocalUpdate] <= 0 {
		t.Fatal("custom mix missing LU throughput")
	}
	if _, err := NewWorkload("bad", 0, users, 8); err == nil {
		t.Fatal("zero nodes must fail")
	}
	if _, err := NewWorkload("bad", 2, []User{{Type: "???", Home: 0}}, 8); err == nil {
		t.Fatal("unknown type must fail")
	}
}

func TestWorkloadByName(t *testing.T) {
	for _, name := range []string{"LB8", "MB4", "MB8", "UB6"} {
		w, err := WorkloadByName(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != name {
			t.Fatalf("name = %s", w.Name())
		}
	}
	if _, err := WorkloadByName("XX", 8); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestResponsePercentiles(t *testing.T) {
	meas, err := Simulate(WorkloadMB4(8), quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, ty := range []TxnType{LocalReadOnly, LocalUpdate, DistributedRead, DistributedUpdate} {
		mean := meas.Nodes[0].MeanResponseMS[ty]
		p95 := meas.Nodes[0].P95ResponseMS[ty]
		if p95 < mean {
			t.Fatalf("%v: p95 (%v) below mean (%v)", ty, p95, mean)
		}
		if p95 > 20*mean {
			t.Fatalf("%v: p95 (%v) implausibly above mean (%v)", ty, p95, mean)
		}
	}
}

func TestMultiCPUNodes(t *testing.T) {
	// With the shared disk the CPU is not the bottleneck, so a second
	// processor helps little; combine with a buffer pool (CPU-bound
	// regime) and the second CPU pays. Model and simulator must agree on
	// both calls.
	base := WorkloadLB8(8).WithBufferHitRatio(0.9).WithSeparateLogDisks()
	dual := base.WithCPUs(2)

	bp, err := SolveModel(base)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := SolveModel(dual)
	if err != nil {
		t.Fatal(err)
	}
	modelGain := dp.Nodes[0].TxnPerSec / bp.Nodes[0].TxnPerSec
	if modelGain <= 1.1 {
		t.Fatalf("model: second CPU should pay in a CPU-bound regime (gain %v)", modelGain)
	}

	bm, err := Simulate(base, quick)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := Simulate(dual, quick)
	if err != nil {
		t.Fatal(err)
	}
	simGain := dm.Nodes[0].TxnPerSec / bm.Nodes[0].TxnPerSec
	if simGain <= 1.1 {
		t.Fatalf("sim: second CPU should pay in a CPU-bound regime (gain %v)", simGain)
	}
	if simGain/modelGain > 1.35 || modelGain/simGain > 1.35 {
		t.Fatalf("model gain %v vs sim gain %v diverge", modelGain, simGain)
	}
}

func TestDetailedDisksKeepModelAccuracy(t *testing.T) {
	// The positional disk model has the same mean block time, so the
	// analytical model (which only sees means) should keep tracking the
	// simulator within a modest band — the BCMP robustness check.
	wl := WorkloadLB8(8).WithDetailedDisks()
	pred, err := SolveModel(wl)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := Simulate(wl, quick)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pred.Nodes {
		mo, me := pred.Nodes[i].TxnPerSec, meas.Nodes[i].TxnPerSec
		if me <= 0 {
			t.Fatalf("node %d: detailed-disk sim stalled", i)
		}
		rel := (mo - me) / me
		if rel < -0.35 || rel > 0.6 {
			t.Fatalf("node %d: model %v vs detailed-disk sim %v (rel %+.0f%%)", i, mo, me, rel*100)
		}
	}
	// Detailed runs stay reproducible.
	again, err := Simulate(wl, quick)
	if err != nil {
		t.Fatal(err)
	}
	if again.Nodes[0].TxnPerSec != meas.Nodes[0].TxnPerSec {
		t.Fatal("detailed-disk simulation not reproducible with equal seeds")
	}
}

func TestEthernetModelNegligibleAtPaperScale(t *testing.T) {
	// The paper's justification for dropping α: at two-node message rates
	// the Ethernet adds fractions of a millisecond. Enabling the network
	// model must therefore barely move either side.
	base, err := Compare(WorkloadMB4(8), quick)
	if err != nil {
		t.Fatal(err)
	}
	eth, err := Compare(WorkloadMB4(8).WithEthernet(), quick)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Predicted.Nodes {
		bm := base.Predicted.Nodes[i].TxnPerSec
		em := eth.Predicted.Nodes[i].TxnPerSec
		if em > bm || em < bm*0.98 {
			t.Fatalf("node %d: Ethernet model moved model throughput %v -> %v", i, bm, em)
		}
		bs := base.Measured.Nodes[i].TxnPerSec
		es := eth.Measured.Nodes[i].TxnPerSec
		if es < bs*0.95 || es > bs*1.05 {
			t.Fatalf("node %d: Ethernet model moved sim throughput %v -> %v", i, bs, es)
		}
	}
}

func TestStripedDatabase(t *testing.T) {
	// Two stripes roughly halve the per-disk load: throughput rises in
	// both model and simulation, and the two keep agreeing.
	base := WorkloadLB8(8)
	striped := base.WithStripedDatabase(2)

	basePred, err := SolveModel(base)
	if err != nil {
		t.Fatal(err)
	}
	stripedPred, err := SolveModel(striped)
	if err != nil {
		t.Fatal(err)
	}
	if stripedPred.Nodes[0].TxnPerSec <= basePred.Nodes[0].TxnPerSec {
		t.Fatalf("model: stripes should help (%v vs %v)",
			stripedPred.Nodes[0].TxnPerSec, basePred.Nodes[0].TxnPerSec)
	}

	baseMeas, err := Simulate(base, quick)
	if err != nil {
		t.Fatal(err)
	}
	stripedMeas, err := Simulate(striped, quick)
	if err != nil {
		t.Fatal(err)
	}
	if stripedMeas.Nodes[0].TxnPerSec <= baseMeas.Nodes[0].TxnPerSec {
		t.Fatalf("sim: stripes should help (%v vs %v)",
			stripedMeas.Nodes[0].TxnPerSec, baseMeas.Nodes[0].TxnPerSec)
	}
	rel := (stripedPred.Nodes[0].TxnPerSec - stripedMeas.Nodes[0].TxnPerSec) / stripedMeas.Nodes[0].TxnPerSec
	if rel < -0.4 || rel > 0.6 {
		t.Fatalf("striped model diverges from sim: %v vs %v",
			stripedPred.Nodes[0].TxnPerSec, stripedMeas.Nodes[0].TxnPerSec)
	}
}

func TestThroughputConfidenceIntervals(t *testing.T) {
	meas, err := Simulate(WorkloadLB8(8), SimOptions{Seed: 1, WarmupMS: 60_000, DurationMS: 2_060_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, ty := range []TxnType{LocalReadOnly, LocalUpdate} {
		x := meas.Nodes[0].TxnPerSecByType[ty]
		ci := meas.Nodes[0].TxnPerSecCI[ty]
		if ci <= 0 {
			t.Fatalf("%v: CI = %v, want positive", ty, ci)
		}
		// With 20 batch windows over ~33 minutes the interval should be
		// a modest fraction of the estimate.
		if ci > 0.5*x {
			t.Fatalf("%v: CI %v too wide for estimate %v", ty, ci, x)
		}
	}
}

func TestCalibrationAPI(t *testing.T) {
	cal, err := CalibrateDeadlockFactor("MB8", []int{16}, quick)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Factor <= 0 {
		t.Fatalf("factor = %v", cal.Factor)
	}
	if cal.FittedError > cal.BaselineError {
		t.Fatalf("fit worse than baseline: %v > %v", cal.FittedError, cal.BaselineError)
	}
	// The fitted factor must feed back into the model.
	if _, err := SolveModel(WorkloadMB8(16).WithDeadlockAdjust(cal.Factor)); err != nil {
		t.Fatal(err)
	}
	if _, err := CalibrateDeadlockFactor("NOPE", []int{8}, quick); err == nil {
		t.Fatal("unknown workload must fail")
	}
}

func TestConcurrencyControlSelection(t *testing.T) {
	wl := WorkloadMB4(8)
	for _, cc := range []ConcurrencyControl{WaitDie, WoundWait, TimestampOrdering} {
		w := wl.WithConcurrencyControl(cc)
		meas, err := Simulate(w, quick)
		if err != nil {
			t.Fatalf("%v: %v", cc, err)
		}
		if meas.Nodes[0].TxnPerSec <= 0 {
			t.Fatalf("%v: no throughput", cc)
		}
		// The analytical model only covers the paper's protocol.
		if _, err := SolveModel(w); err == nil {
			t.Fatalf("%v: SolveModel should refuse non-2PL protocols", cc)
		}
	}
	// Selecting 2PL (or anything unknown) keeps the model available.
	if _, err := SolveModel(wl.WithConcurrencyControl(TwoPhaseLocking)); err != nil {
		t.Fatal(err)
	}
}

func TestReproduceFigureAndTableErrors(t *testing.T) {
	if _, err := ReproduceFigure(4, quick); err == nil {
		t.Fatal("figure 4 does not exist")
	}
	if _, err := ReproduceTable(6, quick); err == nil {
		t.Fatal("table 6 does not exist")
	}
}

func TestReproduceStaticTables(t *testing.T) {
	t1, err := ReproduceTable(1, quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t1, "DMIO") {
		t.Fatal("table 1 rendering broken")
	}
	t2, err := ReproduceTable(2, quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t2, "7.8") {
		t.Fatal("table 2 rendering broken")
	}
}

// TestThinkTimeInteractiveLaw exercises the dormant R_UT > 0 closed-mode
// path (the paper always runs Z = 0): adding think time must lower
// throughput, and the measured rates must obey the interactive
// response-time law X = N/(R+Z) chain by chain — MB4 homes one user per
// type per node, so each chain's commit rate is 1/(R+Z).
func TestThinkTimeInteractiveLaw(t *testing.T) {
	const z = 2000.0
	base, err := Simulate(WorkloadMB4(8), quick)
	if err != nil {
		t.Fatal(err)
	}
	thought, err := Simulate(WorkloadMB4(8).WithThinkTime(z), quick)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(m *Measurement) float64 {
		var x float64
		for _, n := range m.Nodes {
			x += n.TxnPerSec
		}
		return x
	}
	x0, xz := sum(base), sum(thought)
	if xz >= x0 {
		t.Fatalf("think time did not lower throughput: %.3f -> %.3f txn/s", x0, xz)
	}
	for i, n := range thought.Nodes {
		for ty, x := range n.TxnPerSecByType {
			r := n.MeanResponseMS[ty]
			law := 1000 / (r + z) // one user per (node, type) in MB4
			if rel := (x - law) / law; rel < -0.2 || rel > 0.2 {
				t.Errorf("node %d %s: X=%.4f/s violates N/(R+Z)=%.4f/s (R=%.0f ms)", i, ty, x, law, r)
			}
		}
	}
	// The analytical model covers Z > 0 through Eq. 10: it must track the
	// simulator about as well as it does at Z = 0.
	pred, err := SolveModel(WorkloadMB4(8).WithThinkTime(z))
	if err != nil {
		t.Fatal(err)
	}
	var xm float64
	for _, n := range pred.Nodes {
		xm += n.TxnPerSec
	}
	if rel := (xm - xz) / xz; rel < -0.15 || rel > 0.15 {
		t.Errorf("model X=%.3f vs simulated X=%.3f under think time (%.1f%% off)", xm, xz, 100*rel)
	}
}

// TestWithThinkTimeDoesNotMutateReceiver pins the copy-on-write contract:
// deriving a think-time variant must leave the original workload's cost
// tables untouched (the method used to rebuild defaults, which would also
// discard any non-default costs).
func TestWithThinkTimeDoesNotMutateReceiver(t *testing.T) {
	w := WorkloadMB4(8)
	a, err := Simulate(w, quick)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.WithThinkTime(5000)
	b, err := Simulate(w, quick)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i].TxnPerSec != b.Nodes[i].TxnPerSec {
			t.Fatalf("node %d: WithThinkTime mutated its receiver: %.4f vs %.4f",
				i, a.Nodes[i].TxnPerSec, b.Nodes[i].TxnPerSec)
		}
	}
}

func TestParseOpenClasses(t *testing.T) {
	mix, err := ParseOpenClasses("kind=LRO,weight=3;kind=DU,weight=1,n=4,rf=0.25,pattern=zipf,theta=0.8")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 {
		t.Fatalf("classes = %d, want 2", len(mix))
	}
	if mix[0].Type != LocalReadOnly || mix[0].Weight != 3 || mix[0].Pattern != nil {
		t.Fatalf("first class: %+v", mix[0])
	}
	if mix[1].Type != DistributedUpdate || mix[1].Requests != 4 || mix[1].RemoteFrac != 0.25 || mix[1].Pattern == nil {
		t.Fatalf("second class: %+v", mix[1])
	}
	for _, bad := range []string{
		"", "weight=2", "kind=XYZ", "kind=LU,weight", "kind=LU,n=x",
		"kind=LU,bogus=1", "kind=LU,pattern=spiral",
	} {
		if _, err := ParseOpenClasses(bad); err == nil {
			t.Errorf("ParseOpenClasses(%q) accepted", bad)
		}
	}
}

// TestOpenArrivalsSimulate smoke-tests open mode through the facade: the
// Open* metrics populate, closed terminals can be removed, and an unknown
// class type is reported when the simulation is built.
func TestOpenArrivalsSimulate(t *testing.T) {
	w := WorkloadMB4(8).
		WithOpenArrivals(OpenArrivals{LambdaPerSec: 0.5}).
		WithoutClosedUsers()
	meas, err := Simulate(w, quick)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range meas.Nodes {
		if n.OpenArrivals <= 0 || n.OpenOfferedPerSec <= 0 {
			t.Errorf("node %d: no open arrivals recorded: %+v", i, n)
		}
		if n.OpenMeanResponseMS <= 0 || n.OpenMeanInSystem <= 0 {
			t.Errorf("node %d: open queue metrics empty", i)
		}
	}
	// Closed-only runs must keep the open metrics at zero (inert default).
	closed, err := Simulate(WorkloadMB4(8), quick)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range closed.Nodes {
		if n.OpenArrivals != 0 || n.OpenOfferedPerSec != 0 {
			t.Errorf("node %d: closed run reports open arrivals", i)
		}
	}
	if _, err := SolveModel(w); err == nil {
		t.Error("SolveModel accepted a workload without closed users")
	}
	bad := WorkloadMB4(8).WithOpenArrivals(OpenArrivals{
		LambdaPerSec: 0.5,
		Classes:      []OpenClass{{Type: TxnType("nope")}},
	})
	if _, err := Simulate(bad, quick); err == nil {
		t.Error("Simulate accepted an unknown open class type")
	}
}

// TestZipfPatternSimulate smoke-tests the zipf access pattern end to end.
func TestZipfPatternSimulate(t *testing.T) {
	meas, err := Simulate(WorkloadMB4(8).WithZipf(0.99), quick)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Nodes[0].TxnPerSec <= 0 {
		t.Fatal("zipf workload idle")
	}
	if _, err := PatternByName("spiral", 0, 0, 0); err == nil {
		t.Error("PatternByName accepted an unknown pattern")
	}
}

// TestFacadeCapacitySweep smoke-tests the capacity sweep through the public
// API on a small grid with short windows.
func TestFacadeCapacitySweep(t *testing.T) {
	w := WorkloadMB4(8).WithResilience(Resilience{Admission: AdmissionPolicy{MaxMPL: 8}})
	rep, err := CapacitySweep(w, []float64{0.4, 0.8}, SimOptions{
		Seed: 3, WarmupMS: 10_000, DurationMS: 130_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	if rep.BottleneckBoundTPS <= 0 {
		t.Error("no bottleneck bound for a modelable workload")
	}
	if rep.PeakCommittedTPS <= 0 || rep.KneeLambdaTPS <= 0 {
		t.Errorf("empty summary: %+v", rep)
	}
	for _, p := range rep.Points {
		if p.OfferedTPS <= 0 || p.CommittedTPS <= 0 {
			t.Errorf("λ=%v: empty point: %+v", p.LambdaTPS, p)
		}
	}
	if _, err := CapacitySweep(w, nil, SimOptions{}); err == nil {
		t.Error("CapacitySweep accepted an empty grid")
	}
}
