package carat

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (one benchmark per artifact) and adds ablations for
// the design choices DESIGN.md calls out. Each iteration performs the full
// artifact regeneration — the model solve plus the simulation sweep — with
// a reduced simulation window so a -bench run stays responsive; the
// caratrepro command produces the publication-window versions.
//
// Per-artifact shape metrics are reported with b.ReportMetric so a bench
// run doubles as a quantitative regression check on the reproduction:
//
//	model-over-sim-pct   mean signed relative error of the model vs the
//	                     simulator over the artifact's cells (positive:
//	                     model optimistic, the paper's own bias)
//	knee-drop-ratio      throughput at n=20 over throughput at n=8 (< 1
//	                     demonstrates the paper's deadlock-driven decline)

import (
	"math"
	"testing"

	"carat/internal/core"
	"carat/internal/experiment"
	"carat/internal/mva"
	"carat/internal/repl"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// benchOpts keeps each benchmark iteration around a second: a 10-minute
// simulated window per sweep point.
func benchOpts() experiment.SimOptions {
	return experiment.SimOptions{Seed: 1, Warmup: 30_000, Duration: 630_000}
}

// meanModelError returns the mean signed relative error (percent) of
// model vs simulation for a metric over nodes and sweep points.
func meanModelError(comps []*experiment.Comparison, metric experiment.Metric) float64 {
	var sum float64
	var n int
	for _, c := range comps {
		for node := 0; node < 2; node++ {
			mo, me := metric.Get(c, node)
			if me > 0 {
				sum += (mo - me) / me * 100
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// kneeDrop returns metric(n=20)/metric(n=8) on the simulation side at a
// node, quantifying the deadlock-induced throughput decline.
func kneeDrop(comps []*experiment.Comparison, metric experiment.Metric, node int) float64 {
	var at8, at20 float64
	for _, c := range comps {
		_, me := metric.Get(c, node)
		switch c.N {
		case 8:
			at8 = me
		case 20:
			at20 = me
		}
	}
	if at8 == 0 {
		return math.NaN()
	}
	return at20 / at8
}

// benchFigure runs one LB8/MB4 figure regeneration per iteration.
func benchFigure(b *testing.B, mk func(int) workload.Workload, metric experiment.Metric, node int) {
	b.Helper()
	var comps []*experiment.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		comps, err = experiment.Sweep(mk, experiment.PaperNs(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanModelError(comps, metric), "model-over-sim-pct")
	b.ReportMetric(kneeDrop(comps, metric, node), "knee-drop-ratio")
}

// BenchmarkFigure5LB8RecordThroughput regenerates Figure 5: LB8 record
// throughput at Node B over n = 4..20.
func BenchmarkFigure5LB8RecordThroughput(b *testing.B) {
	benchFigure(b, workload.LB8, experiment.RecordThroughput, 1)
}

// BenchmarkFigure6LB8CPUUtilization regenerates Figure 6: LB8 CPU
// utilization at Node B.
func BenchmarkFigure6LB8CPUUtilization(b *testing.B) {
	benchFigure(b, workload.LB8, experiment.CPUUtilization, 1)
}

// BenchmarkFigure7LB8DiskIORate regenerates Figure 7: LB8 disk I/O rate at
// Node B.
func BenchmarkFigure7LB8DiskIORate(b *testing.B) {
	benchFigure(b, workload.LB8, experiment.DiskIORate, 1)
}

// BenchmarkFigure8MB4RecordThroughput regenerates Figure 8: MB4 record
// throughput (both nodes; knee reported for Node A).
func BenchmarkFigure8MB4RecordThroughput(b *testing.B) {
	benchFigure(b, workload.MB4, experiment.RecordThroughput, 0)
}

// BenchmarkFigure9MB4CPUUtilization regenerates Figure 9: MB4 CPU
// utilization.
func BenchmarkFigure9MB4CPUUtilization(b *testing.B) {
	benchFigure(b, workload.MB4, experiment.CPUUtilization, 0)
}

// BenchmarkFigure10MB4DiskIORate regenerates Figure 10: MB4 disk I/O rate.
func BenchmarkFigure10MB4DiskIORate(b *testing.B) {
	benchFigure(b, workload.MB4, experiment.DiskIORate, 0)
}

// BenchmarkTable3MB8 regenerates Table 3: the MB8 model-vs-measurement
// comparison of TR-XPUT, Total-CPU and Total-DIO per node.
func BenchmarkTable3MB8(b *testing.B) {
	var comps []*experiment.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		comps, err = experiment.Sweep(workload.MB8, experiment.PaperNs(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanModelError(comps, experiment.TxnThroughput), "model-over-sim-pct")
	b.ReportMetric(kneeDrop(comps, experiment.TxnThroughput, 0), "knee-drop-ratio")
}

// BenchmarkTable4UB6 regenerates Table 4: the UB6 comparison.
func BenchmarkTable4UB6(b *testing.B) {
	var comps []*experiment.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		comps, err = experiment.Sweep(workload.UB6, experiment.PaperNs(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meanModelError(comps, experiment.TxnThroughput), "model-over-sim-pct")
	b.ReportMetric(kneeDrop(comps, experiment.TxnThroughput, 0), "knee-drop-ratio")
}

// BenchmarkTable5MB4PerType regenerates Table 5: MB4 per-transaction-type
// throughputs at each node, reporting the mean per-type model error.
func BenchmarkTable5MB4PerType(b *testing.B) {
	var tbl *experiment.Table
	var comps []*experiment.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		comps, err = experiment.Sweep(workload.MB4, experiment.PaperNs(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		tbl, err = experiment.Table5([]int{4}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = tbl
	b.ReportMetric(meanModelError(comps, experiment.TxnThroughput), "model-over-sim-pct")
}

// BenchmarkModelSolveMB8 isolates the analytical solver (no simulation):
// the cost of one full fixed-point solution — the quantity that makes the
// model useful for capacity planning.
func BenchmarkModelSolveMB8(b *testing.B) {
	wl := workload.MB8(12)
	for i := 0; i < b.N; i++ {
		m, err := wl.Model()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Solve(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateMB8 is the simulator's single-run baseline at the
// benchmark window (10 simulated minutes of MB8): the number future perf
// PRs compare ns/op against.
func BenchmarkSimulateMB8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		meas, err := Simulate(WorkloadMB8(8), SimOptions{Seed: 1, WarmupMS: 30_000, DurationMS: 630_000})
		if err != nil {
			b.Fatal(err)
		}
		if meas.Nodes[0].TxnPerSec <= 0 {
			b.Fatal("simulation stalled")
		}
	}
}

// BenchmarkReplicatedSweep runs the replication availability sweep — R=1
// baseline plus R=2 under both read policies, with one site crashed mid-
// window — and reports the availability gain replication buys over the
// unreplicated baseline.
func BenchmarkReplicatedSweep(b *testing.B) {
	plan := testbed.FaultPlan{
		Crashes: []testbed.SiteCrash{{Site: 1, AtMS: 60_000, DownForMS: 120_000}},
	}
	var pts []experiment.ReplicationPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiment.ReplicationSweep(workload.MB4(8), []int{1, 2},
			[]repl.ReadMode{repl.ReadOne, repl.ReadQuorum}, plan, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric((pts[1].Availability-pts[0].Availability)*100, "avail-gain-pct")
	b.ReportMetric(float64(pts[1].FailoverReads), "failover-reads")
}

// BenchmarkSimulateHourMB8 isolates the simulator: one simulated hour of
// the MB8 workload per iteration.
func BenchmarkSimulateHourMB8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		meas, err := Simulate(WorkloadMB8(12), SimOptions{Seed: uint64(i + 1), WarmupMS: 60_000, DurationMS: 3_660_000})
		if err != nil {
			b.Fatal(err)
		}
		if meas.Nodes[0].TxnPerSec <= 0 {
			b.Fatal("simulation stalled")
		}
	}
}

// BenchmarkAblationSeparateLogDisk measures the throughput gain from a
// dedicated log disk (the configuration the paper says practice demands),
// model side.
func BenchmarkAblationSeparateLogDisk(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		shared, err := SolveModel(WorkloadLB8(8))
		if err != nil {
			b.Fatal(err)
		}
		sep, err := SolveModel(WorkloadLB8(8).WithSeparateLogDisks())
		if err != nil {
			b.Fatal(err)
		}
		gain = (sep.Nodes[0].TxnPerSec/shared.Nodes[0].TxnPerSec - 1) * 100
	}
	b.ReportMetric(gain, "throughput-gain-pct")
}

// BenchmarkAblationBufferPool measures the model-predicted throughput gain
// from a 60% buffer hit ratio.
func BenchmarkAblationBufferPool(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		base, err := SolveModel(WorkloadLB8(8))
		if err != nil {
			b.Fatal(err)
		}
		buf, err := SolveModel(WorkloadLB8(8).WithBufferHitRatio(0.6))
		if err != nil {
			b.Fatal(err)
		}
		gain = (buf.Nodes[0].TxnPerSec/base.Nodes[0].TxnPerSec - 1) * 100
	}
	b.ReportMetric(gain, "throughput-gain-pct")
}

// BenchmarkAblationExactVsApproxMVA compares the exact MVA recursion with
// the Schweitzer–Bard approximation on the MB8 site networks, reporting
// the approximation's throughput error.
func BenchmarkAblationExactVsApproxMVA(b *testing.B) {
	wl := workload.MB8(8)
	var errPct float64
	for i := 0; i < b.N; i++ {
		exactM, _ := wl.Model()
		exact, err := core.Solve(exactM)
		if err != nil {
			b.Fatal(err)
		}
		approxM, _ := wl.Model()
		approxM.UseApproxMVA = true
		approx, err := core.Solve(approxM)
		if err != nil {
			b.Fatal(err)
		}
		errPct = math.Abs(approx.Sites[0].TotalTxnThroughput/exact.Sites[0].TotalTxnThroughput-1) * 100
	}
	b.ReportMetric(errPct, "approx-error-pct")
}

// BenchmarkMVAExactKernel measures the raw exact-MVA recursion on an
// MB8-sized site network (6 chains, populations of 2, 3 centers).
func BenchmarkMVAExactKernel(b *testing.B) {
	n := &mva.Network{
		Kinds: []mva.CenterKind{mva.Queueing, mva.Queueing, mva.Delay},
		Demands: [][]float64{
			{100, 150, 120, 170, 80, 110},
			{900, 2700, 450, 1350, 450, 1350},
			{0, 50, 400, 600, 800, 700},
		},
		Populations: []int{2, 2, 2, 2, 2, 2},
	}
	for i := 0; i < b.N; i++ {
		if _, err := mva.SolveExact(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDiskStripes sweeps the database over 1, 2 and 4 disk
// stripes (the paper's "multiple DISK queueing centers" option) and
// reports the model-predicted speedup of each step.
func BenchmarkAblationDiskStripes(b *testing.B) {
	var x1, x2, x4 float64
	for i := 0; i < b.N; i++ {
		solveStripes := func(k int) float64 {
			pred, err := SolveModel(WorkloadLB8(8).WithStripedDatabase(k))
			if err != nil {
				b.Fatal(err)
			}
			return pred.Nodes[0].TxnPerSec
		}
		x1, x2, x4 = solveStripes(1), solveStripes(2), solveStripes(4)
	}
	b.ReportMetric(x2/x1*100-100, "gain-2-stripes-pct")
	b.ReportMetric(x4/x1*100-100, "gain-4-stripes-pct")
}

// BenchmarkAblationTMSerialization measures the model's optional
// TM-serialization correction (Section 5.5, [JACO83]) at the transaction
// size where the paper reports its largest deviation: n=4.
func BenchmarkAblationTMSerialization(b *testing.B) {
	var dropPct float64
	for i := 0; i < b.N; i++ {
		wl := workload.MB8(4)
		off, _ := wl.Model()
		offRes, err := core.Solve(off)
		if err != nil {
			b.Fatal(err)
		}
		wl.ModelTMSerialization = true
		on, _ := wl.Model()
		onRes, err := core.Solve(on)
		if err != nil {
			b.Fatal(err)
		}
		dropPct = (1 - onRes.Sites[0].TotalTxnThroughput/offRes.Sites[0].TotalTxnThroughput) * 100
	}
	b.ReportMetric(dropPct, "throughput-drop-pct")
}

// BenchmarkBaselineConcurrencyControls runs the same contended workload
// under the paper's 2PL-with-detection and the three classical baselines
// (wait-die, wound-wait, basic timestamp ordering), reporting each
// protocol's throughput relative to 2PL. This is the comparison behind the
// 2PL-vs-TO controversy the paper's introduction recounts: which protocol
// "wins" depends on the workload — under this read-heavy mix basic TO
// starves its long writers.
func BenchmarkBaselineConcurrencyControls(b *testing.B) {
	opts := SimOptions{Seed: 3, WarmupMS: 30_000, DurationMS: 630_000}
	wl := WorkloadMB8(8)
	var base, wd, ww, to float64
	for i := 0; i < b.N; i++ {
		run := func(cc ConcurrencyControl) float64 {
			meas, err := Simulate(wl.WithConcurrencyControl(cc), opts)
			if err != nil {
				b.Fatal(err)
			}
			return meas.Nodes[0].TxnPerSec + meas.Nodes[1].TxnPerSec
		}
		base = run(TwoPhaseLocking)
		wd = run(WaitDie)
		ww = run(WoundWait)
		to = run(TimestampOrdering)
	}
	b.ReportMetric(wd/base*100, "wait-die-vs-2PL-pct")
	b.ReportMetric(ww/base*100, "wound-wait-vs-2PL-pct")
	b.ReportMetric(to/base*100, "basic-TO-vs-2PL-pct")
}

// BenchmarkAblationDeadlockVictimPolicies compares simulator throughput
// under the three victim-selection policies the lock manager offers. The
// paper (and the model's Pd) assume the requester dies; this quantifies
// how much that choice matters.
func BenchmarkAblationDeadlockVictimPolicies(b *testing.B) {
	// Victim policy is internal to the lock manager; at the public API the
	// requester policy is what the testbed uses, so this ablation runs the
	// simulator at high contention and reports the deadlock rate as the
	// sensitivity proxy.
	var perHour float64
	for i := 0; i < b.N; i++ {
		meas, err := Simulate(WorkloadMB8(16).WithDatabaseSize(600),
			SimOptions{Seed: 5, WarmupMS: 30_000, DurationMS: 630_000})
		if err != nil {
			b.Fatal(err)
		}
		var d int64
		for _, n := range meas.Nodes {
			d += n.Deadlocks
		}
		perHour = float64(d) * 6 // 10-minute window -> per hour
	}
	b.ReportMetric(perHour, "deadlocks-per-hour")
}

// BenchmarkCapacitySweep runs a small open-arrival capacity sweep — three
// offered rates around the MB4 bottleneck bound with an MPL-8 admission
// gate — and reports how close the measured capacity lands to the closed
// model's 1/D_max prediction.
func BenchmarkCapacitySweep(b *testing.B) {
	wl := workload.MB4(8)
	wl.Resilience = testbed.Resilience{Admission: testbed.AdmissionPolicy{MaxMPL: 8}}
	var cr *experiment.CapacityResult
	for i := 0; i < b.N; i++ {
		var err error
		cr, err = experiment.CapacitySweep(func() workload.Workload { return wl },
			[]float64{0.4, 0.8, 1.6}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cr.PeakCommittedTPS/cr.BottleneckBoundTPS*100, "peak-vs-bound-pct")
	b.ReportMetric(cr.KneeLambdaTPS, "knee-tps")
}
