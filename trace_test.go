package carat

import "testing"

func TestSimulateWithTrace(t *testing.T) {
	var events []TraceEvent
	meas, err := SimulateWithTrace(WorkloadMB4(4),
		SimOptions{Seed: 1, WarmupMS: 1, DurationMS: 60_000},
		func(ev TraceEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if meas.Nodes[0].TxnPerSec <= 0 {
		t.Fatal("traced run produced no throughput")
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	kinds := map[string]bool{}
	var lastT float64
	for _, ev := range events {
		kinds[ev.Event] = true
		if ev.TimeMS < lastT {
			t.Fatalf("events out of time order: %v after %v", ev.TimeMS, lastT)
		}
		lastT = ev.TimeMS
		if ev.Txn <= 0 {
			t.Fatalf("event without transaction id: %+v", ev)
		}
	}
	for _, want := range []string{"begin", "lock-grant", "committed", "force-commit-record", "prepare-ack"} {
		if !kinds[want] {
			t.Fatalf("trace missing %q events; saw %v", want, kinds)
		}
	}
}
