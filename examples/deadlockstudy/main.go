// Deadlock study: reproduce the paper's headline qualitative finding —
// normalized record throughput rises and then *falls* as transactions
// grow, because the probability of deadlock (and therefore rollback work)
// increases rapidly with transaction size n.
//
// The study runs both sides of the paper: the simulator measures deadlock
// victims and resubmissions directly, while the model predicts the same
// knee from its two-cycle deadlock approximation.
package main

import (
	"fmt"
	"log"

	"carat"
)

func main() {
	fmt.Println("MB8 workload, both nodes combined; sweep of transaction size n.")
	fmt.Printf("%4s | %14s %14s | %10s %12s | %12s\n",
		"n", "sim records/s", "mdl records/s", "deadlocks", "Ns (sim)", "Pa(LU) model")

	opts := carat.SimOptions{Seed: 7, WarmupMS: 60_000, DurationMS: 1_860_000}
	for _, n := range []int{2, 4, 8, 12, 16, 20, 24} {
		wl := carat.WorkloadMB8(n)
		cmp, err := carat.Compare(wl, opts)
		if err != nil {
			log.Fatal(err)
		}
		var simRec, mdlRec float64
		var deadlocks int64
		for i := range cmp.Measured.Nodes {
			simRec += cmp.Measured.Nodes[i].RecordsPerSec
			mdlRec += cmp.Predicted.Nodes[i].RecordsPerSec
			deadlocks += cmp.Measured.Nodes[i].Deadlocks
		}
		ns := cmp.Measured.Nodes[0].SubmissionsPerCommit[carat.LocalUpdate]
		fmt.Printf("%4d | %14.1f %14.1f | %10d %12.2f | %12.4f\n",
			n, simRec, mdlRec, deadlocks, ns, cmp.Predicted.AbortProbability[0][carat.LocalUpdate])
	}

	// The same knee moves left when the database shrinks: halving the
	// database roughly doubles the conflict probability per lock.
	fmt.Println("\nModel: record throughput at n=12 versus database size (blocks/site):")
	for _, size := range []int{3000, 1500, 750, 375} {
		pred, err := carat.SolveModel(carat.WorkloadMB8(12).WithDatabaseSize(size))
		if err != nil {
			log.Fatal(err)
		}
		var rec float64
		for _, n := range pred.Nodes {
			rec += n.RecordsPerSec
		}
		fmt.Printf("  %5d blocks: %8.1f records/s   Pa(LU)=%.4f\n",
			size, rec, pred.AbortProbability[0][carat.LocalUpdate])
	}
}
