// Hotspot: probe the boundary of the model's uniform-access assumption —
// one of the extensions the paper's conclusions call for ("nonuniform and
// nonrandom database access patterns").
//
// The simulator supports a b–c hotspot pattern (a fraction of accesses
// target a small hot set); the analytical model deliberately keeps the
// paper's uniformity assumption. Comparing the two shows how quickly the
// model's predictions degrade as access skew grows — the model is accurate
// at uniform access and increasingly optimistic as the hot set shrinks.
package main

import (
	"fmt"
	"log"

	"carat"
)

func main() {
	wl := carat.WorkloadLB8(12)
	opts := carat.SimOptions{Seed: 3, WarmupMS: 60_000, DurationMS: 1_260_000}

	pred, err := carat.SolveModel(wl)
	if err != nil {
		log.Fatal(err)
	}
	modelX := pred.Nodes[0].TxnPerSec

	fmt.Println("LB8, n=12, Node A. Model assumes uniform access: TR-XPUT =",
		fmt.Sprintf("%.3f txn/s", modelX))
	fmt.Println("\nSimulation under increasing skew (80% of accesses to the hot set):")
	fmt.Printf("%22s %12s %12s %14s\n", "hot set", "sim TR-XPUT", "deadlocks", "model error")

	cases := []struct {
		label string
		hot   float64
	}{
		{"uniform (paper)", 0},
		{"20% of records", 0.20},
		{"5% of records", 0.05},
		{"1% of records", 0.01},
	}
	for _, c := range cases {
		w := wl
		if c.hot > 0 {
			w = wl.WithHotspot(c.hot, 0.8)
		}
		meas, err := carat.Simulate(w, opts)
		if err != nil {
			log.Fatal(err)
		}
		simX := meas.Nodes[0].TxnPerSec
		fmt.Printf("%22s %12.3f %12d %+13.0f%%\n",
			c.label, simX, meas.Nodes[0].Deadlocks+meas.Nodes[1].Deadlocks,
			100*(modelX-simX)/simX)
	}
	fmt.Println("\nThe growing error is the cost of the uniformity assumption, and the")
	fmt.Println("reason the paper lists nonuniform access as future modeling work.")
}
