// Capacity planning: the analytical model answers what-if questions in
// milliseconds that would each take a measurement campaign on a real
// testbed — exactly the use the paper envisions for it.
//
// Question: the paper's shared database/log disk was a known compromise
// ("a single disk becomes a performance bottleneck"). How much throughput
// does a dedicated log disk buy back, how does that compare with a
// database buffer pool, and what does the combination achieve?
package main

import (
	"fmt"
	"log"

	"carat"
)

func solve(wl carat.Workload) *carat.Prediction {
	pred, err := carat.SolveModel(wl)
	if err != nil {
		log.Fatal(err)
	}
	return pred
}

func main() {
	base := carat.WorkloadLB8(8)

	configs := []struct {
		name string
		wl   carat.Workload
	}{
		{"paper's configuration (shared DB+log disk)", base},
		{"dedicated log disk per node", base.WithSeparateLogDisks()},
		{"60% buffer pool hit ratio", base.WithBufferHitRatio(0.6)},
		{"log disk + 60% buffer pool", base.WithSeparateLogDisks().WithBufferHitRatio(0.6)},
		{"database striped over 2 disks", base.WithStripedDatabase(2)},
		{"dual-processor nodes (VAX 11/782)", base.WithCPUs(2)},
		{"all upgrades together", base.WithSeparateLogDisks().WithBufferHitRatio(0.6).WithStripedDatabase(2).WithCPUs(2)},
	}

	fmt.Println("LB8 workload, n=8, Node A — model predictions:")
	fmt.Printf("%-46s %10s %10s %10s\n", "configuration", "TR-XPUT/s", "CPU util", "disk util")
	baseline := 0.0
	for i, cfg := range configs {
		pred := solve(cfg.wl)
		n := pred.Nodes[0]
		if i == 0 {
			baseline = n.TxnPerSec
		}
		fmt.Printf("%-46s %10.3f %10.3f %10.3f   (%+.0f%%)\n",
			cfg.name, n.TxnPerSec, n.CPUUtilization, n.DiskUtilization,
			100*(n.TxnPerSec-baseline)/baseline)
	}

	// Second question: how far does the upgraded configuration scale with
	// multiprogramming level before lock contention bites? Scale the LB8
	// mix per node and watch the abort probability.
	fmt.Println("\nScaling the per-node population on the upgraded configuration:")
	fmt.Printf("%8s %12s %14s %16s\n", "users", "TR-XPUT/s", "CPU util", "P(abort) for LU")
	for _, mult := range []int{1, 2, 3, 4} {
		var users []carat.User
		for node := 0; node < 2; node++ {
			for i := 0; i < 4*mult; i++ {
				users = append(users, carat.User{Type: carat.LocalReadOnly, Home: node})
				users = append(users, carat.User{Type: carat.LocalUpdate, Home: node})
			}
		}
		wl, err := carat.NewWorkload(fmt.Sprintf("LB%d", 8*mult), 2, users, 8)
		if err != nil {
			log.Fatal(err)
		}
		pred := solve(wl.WithSeparateLogDisks().WithBufferHitRatio(0.6))
		n := pred.Nodes[0]
		fmt.Printf("%8d %12.3f %14.3f %16.4f\n",
			8*mult, n.TxnPerSec, n.CPUUtilization, pred.AbortProbability[0][carat.LocalUpdate])
	}
}
