// Concurrency control comparison: re-run the controversy the paper's
// introduction recounts. Galler's simulation study concluded basic
// timestamp ordering beats two-phase locking; Agrawal, Carey and Livny
// later showed such conclusions hinge on modeling assumptions "with no
// clear physical meaning". With a single testbed holding every assumption
// fixed — same workload, same disks, same CPU costs, same recovery and
// commit protocols — the comparison can be made cleanly.
//
// The testbed runs the paper's 2PL-with-deadlock-detection plus five
// alternatives: wait-die, wound-wait (Rosenkrantz's prevention schemes),
// basic timestamp ordering, optimistic execution with backward validation
// (OCC), and QueCC-style deterministic queue-ordered execution. For the
// full contention-sweep lab (three access patterns × MPL grid) see
// carat.CompareConcurrencyControls or `caratsim -ccsweep`.
package main

import (
	"fmt"
	"log"

	"carat"
)

func main() {
	protocols := []carat.ConcurrencyControl{
		carat.TwoPhaseLocking, carat.WaitDie, carat.WoundWait, carat.TimestampOrdering,
		carat.OptimisticCC, carat.QueCC,
	}
	opts := carat.SimOptions{Seed: 5, WarmupMS: 60_000, DurationMS: 1_860_000}

	for _, n := range []int{4, 8, 16} {
		fmt.Printf("MB8 workload, n=%d (both nodes combined):\n", n)
		fmt.Printf("  %-20s %12s %12s %14s %12s\n",
			"protocol", "TR-XPUT/s", "DU txn/s", "CC aborts", "LU resp ms")
		for _, cc := range protocols {
			wl := carat.WorkloadMB8(n).WithConcurrencyControl(cc)
			meas, err := carat.Simulate(wl, opts)
			if err != nil {
				log.Fatal(err)
			}
			var xput, du float64
			var aborts int64
			for _, node := range meas.Nodes {
				xput += node.TxnPerSec
				du += node.TxnPerSecByType[carat.DistributedUpdate]
				aborts += node.Deadlocks + node.ValidationAborts
			}
			fmt.Printf("  %-20s %12.3f %12.3f %14d %12.0f\n",
				string(cc), xput, du, aborts, meas.Nodes[0].MeanResponseMS[carat.LocalUpdate])
		}
		fmt.Println()
	}
	fmt.Println("Reading the table: at low contention the protocols are close; as n grows,")
	fmt.Println("prevention restarts more often than detection, and basic TO increasingly")
	fmt.Println("starves the long update transactions — whether TO 'beats' 2PL depends on")
	fmt.Println("the workload, which is the point the paper's introduction makes.")
}
