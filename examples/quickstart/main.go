// Quickstart: solve the analytical model for the paper's MB4 workload,
// run the testbed simulator on the same workload, and compare — the
// model-vs-measurement exercise at the heart of the paper.
package main

import (
	"fmt"
	"log"

	"carat"
)

func main() {
	// MB4: one user of each transaction type (local read-only, local
	// update, distributed read-only, distributed update) at each of two
	// nodes; each transaction issues 8 requests of 4 records.
	wl := carat.WorkloadMB4(8)

	cmp, err := carat.Compare(wl, carat.SimOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Workload %s, transaction size n=%d\n\n", cmp.Workload, cmp.N)
	fmt.Printf("%-8s %-12s %12s %12s %12s\n", "Node", "Source", "TR-XPUT/s", "CPU util", "DIO/s")
	for i := range cmp.Predicted.Nodes {
		p := cmp.Predicted.Nodes[i]
		m := cmp.Measured.Nodes[i]
		fmt.Printf("%-8c %-12s %12.3f %12.3f %12.1f\n", 'A'+i, "model", p.TxnPerSec, p.CPUUtilization, p.DiskIOPerSec)
		fmt.Printf("%-8c %-12s %12.3f %12.3f %12.1f\n", 'A'+i, "simulation", m.TxnPerSec, m.CPUUtilization, m.DiskIOPerSec)
	}

	fmt.Println("\nPer-type throughput (transactions/second), node A:")
	for _, ty := range []carat.TxnType{carat.LocalReadOnly, carat.LocalUpdate, carat.DistributedRead, carat.DistributedUpdate} {
		fmt.Printf("  %-4s  model %.3f   simulation %.3f\n",
			ty, cmp.Predicted.Nodes[0].TxnPerSecByType[ty], cmp.Measured.Nodes[0].TxnPerSecByType[ty])
	}
	fmt.Printf("\nModel converged: %v (%d iterations); simulated %d deadlock victims.\n",
		cmp.Predicted.Converged, cmp.Predicted.Iterations,
		cmp.Measured.Nodes[0].Deadlocks+cmp.Measured.Nodes[1].Deadlocks)
}
