// Scaleout: run the model and simulator beyond the paper's two nodes —
// "the architecture generalizes to any number of nodes" (Section 2).
//
// Three nodes, with each node's distributed users spreading their remote
// requests over both other nodes; two-phase commit then coordinates three
// participants. The model decomposes each distributed transaction into a
// coordinator chain plus one slave chain per slave site, exactly as the
// paper's Site Processing Model prescribes.
package main

import (
	"fmt"
	"log"

	"carat"
)

func main() {
	const nodes = 3
	var users []carat.User
	for home := 0; home < nodes; home++ {
		var others []int
		for j := 0; j < nodes; j++ {
			if j != home {
				others = append(others, j)
			}
		}
		users = append(users,
			carat.User{Type: carat.LocalReadOnly, Home: home},
			carat.User{Type: carat.LocalUpdate, Home: home},
			carat.User{Type: carat.DistributedRead, Home: home, Remotes: others},
			carat.User{Type: carat.DistributedUpdate, Home: home, Remotes: others},
		)
	}
	wl, err := carat.NewWorkload("MB4x3", nodes, users, 8)
	if err != nil {
		log.Fatal(err)
	}

	cmp, err := carat.Compare(wl, carat.SimOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Three-node MB4-style workload, n=8; remote requests split across both peers.")
	fmt.Printf("%-6s %-12s %12s %12s %12s\n", "Node", "Source", "TR-XPUT/s", "CPU util", "DIO/s")
	for i := range cmp.Predicted.Nodes {
		p := cmp.Predicted.Nodes[i]
		m := cmp.Measured.Nodes[i]
		fmt.Printf("%-6d %-12s %12.3f %12.3f %12.1f\n", i, "model", p.TxnPerSec, p.CPUUtilization, p.DiskIOPerSec)
		fmt.Printf("%-6d %-12s %12.3f %12.3f %12.1f\n", i, "simulation", m.TxnPerSec, m.CPUUtilization, m.DiskIOPerSec)
	}

	// Network sensitivity: a slow WAN between the sites hits distributed
	// transactions through the remote-wait and 2PC round trips.
	fmt.Println("\nDistributed-update throughput vs one-way network delay (node 0):")
	fmt.Printf("%12s %14s %14s\n", "alpha (ms)", "model DU/s", "sim DU/s")
	for _, alpha := range []float64{0, 10, 50, 200} {
		c, err := carat.Compare(wl.WithNetworkDelay(alpha), carat.SimOptions{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12.0f %14.3f %14.3f\n", alpha,
			c.Predicted.Nodes[0].TxnPerSecByType[carat.DistributedUpdate],
			c.Measured.Nodes[0].TxnPerSecByType[carat.DistributedUpdate])
	}
}
