package carat

import (
	"strings"
	"testing"
)

func TestWorkloadUB6Facade(t *testing.T) {
	pred, err := SolveModel(WorkloadUB6(8))
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Converged || pred.Nodes[0].TxnPerSec <= 0 {
		t.Fatalf("UB6 model broken: %+v", pred.Nodes[0])
	}
	// UB6 is local-intensive: LRO+LU throughput dominates DRO+DU.
	n := pred.Nodes[0]
	local := n.TxnPerSecByType[LocalReadOnly] + n.TxnPerSecByType[LocalUpdate]
	dist := n.TxnPerSecByType[DistributedRead] + n.TxnPerSecByType[DistributedUpdate]
	if local <= dist {
		t.Fatalf("UB6 should be local-intensive: local %v vs distributed %v", local, dist)
	}
}

func TestWithTMSerializationModelFacade(t *testing.T) {
	off, err := SolveModel(WorkloadMB8(4))
	if err != nil {
		t.Fatal(err)
	}
	on, err := SolveModel(WorkloadMB8(4).WithTMSerializationModel())
	if err != nil {
		t.Fatal(err)
	}
	if on.Nodes[0].TxnPerSec >= off.Nodes[0].TxnPerSec {
		t.Fatalf("TM correction should lower throughput: %v vs %v",
			on.Nodes[0].TxnPerSec, off.Nodes[0].TxnPerSec)
	}
}

func TestWithNetworkDelayFacade(t *testing.T) {
	fast, err := SolveModel(WorkloadMB4(8))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SolveModel(WorkloadMB4(8).WithNetworkDelay(100))
	if err != nil {
		t.Fatal(err)
	}
	fd := fast.Nodes[0].TxnPerSecByType[DistributedUpdate]
	sd := slow.Nodes[0].TxnPerSecByType[DistributedUpdate]
	if sd >= fd {
		t.Fatalf("100 ms hops should slow DU: %v vs %v", sd, fd)
	}
}

func TestWithRemoteFraction(t *testing.T) {
	// Pushing more of each DU transaction to the (slower-disk) slave node
	// must slow DU in both model and simulator; model and sim must agree
	// on the direction.
	base, err := SolveModel(WorkloadMB4(8))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := SolveModel(WorkloadMB4(8).WithRemoteFraction(0.75))
	if err != nil {
		t.Fatal(err)
	}
	bm := base.Nodes[0].TxnPerSecByType[DistributedUpdate]
	hm := heavy.Nodes[0].TxnPerSecByType[DistributedUpdate]
	if hm >= bm {
		t.Fatalf("model: 75%% remote should slow node A's DU: %v vs %v", hm, bm)
	}
	meas, err := Simulate(WorkloadMB4(8).WithRemoteFraction(0.75), quick)
	if err != nil {
		t.Fatal(err)
	}
	ms := meas.Nodes[0].TxnPerSecByType[DistributedUpdate]
	rel := (hm - ms) / ms
	if rel < -0.5 || rel > 0.8 {
		t.Fatalf("remote-heavy model %v vs sim %v diverge", hm, ms)
	}
}

func TestNewWorkloadMultiRemote(t *testing.T) {
	users := []User{
		{Type: LocalUpdate, Home: 0},
		{Type: DistributedUpdate, Home: 0, Remotes: []int{1, 2}},
		{Type: DistributedUpdate, Home: 1, Remotes: []int{0, 2}},
		{Type: DistributedUpdate, Home: 2, Remotes: []int{0, 1}},
	}
	wl, err := NewWorkload("tri", 3, users, 8)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(wl, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Predicted.Nodes) != 3 || len(cmp.Measured.Nodes) != 3 {
		t.Fatal("expected three nodes on both sides")
	}
	for i := range cmp.Predicted.Nodes {
		mo := cmp.Predicted.Nodes[i].TxnPerSecByType[DistributedUpdate]
		me := cmp.Measured.Nodes[i].TxnPerSecByType[DistributedUpdate]
		if mo <= 0 || me <= 0 {
			t.Fatalf("node %d: DU stalled (model %v, sim %v)", i, mo, me)
		}
		rel := (mo - me) / me
		if rel < -0.5 || rel > 0.8 {
			t.Fatalf("node %d: model %v vs sim %v diverge", i, mo, me)
		}
	}
}

func TestReproduceMarkdown(t *testing.T) {
	out, err := ReproduceTableMarkdown(2, quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "| Node | Type |") && !strings.Contains(out, "| --- |") {
		t.Fatalf("not a markdown table:\n%s", out)
	}
	if _, err := ReproduceTableMarkdown(9, quick); err == nil {
		t.Fatal("bad table id must fail")
	}
	if _, err := ReproduceFigureMarkdown(99, quick); err == nil {
		t.Fatal("bad figure id must fail")
	}
}

func TestReproduceFigureMarkdownQuick(t *testing.T) {
	tiny := SimOptions{Seed: 1, WarmupMS: 5_000, DurationMS: 125_000}
	out, err := ReproduceFigureMarkdown(6, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "|") {
		t.Fatalf("markdown figure broken:\n%s", out)
	}
}

func TestSimulateReplicatedFacade(t *testing.T) {
	opts := SimOptions{
		Seed:         1,
		WarmupMS:     10_000,
		DurationMS:   130_000,
		Replications: 3,
		Workers:      2,
	}
	rm, err := SimulateReplicated(WorkloadMB4(8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Replications != 3 || len(rm.Seeds) != 3 || len(rm.Runs) != 3 {
		t.Fatalf("replication bookkeeping wrong: %d reps, %d seeds, %d runs",
			rm.Replications, len(rm.Seeds), len(rm.Runs))
	}
	if rm.Seeds[0] != opts.Seed {
		t.Fatalf("Seeds[0] = %d, want the base seed %d", rm.Seeds[0], opts.Seed)
	}
	for i, node := range rm.Nodes {
		if node.TxnPerSec.Mean <= 0 {
			t.Fatalf("node %d: nonpositive mean throughput", i)
		}
		if node.TxnPerSec.HalfWidth < 0 {
			t.Fatalf("node %d: negative CI half-width", i)
		}
		if node.CPUUtilization.Mean <= 0 || node.CPUUtilization.Mean > 1 {
			t.Fatalf("node %d: CPU utilization %v out of range", i, node.CPUUtilization.Mean)
		}
	}
	// Replication 0 must reproduce the plain Simulate run exactly.
	single, err := Simulate(WorkloadMB4(8), SimOptions{Seed: 1, WarmupMS: 10_000, DurationMS: 130_000})
	if err != nil {
		t.Fatal(err)
	}
	if rm.Runs[0].Nodes[0].TxnPerSec != single.Nodes[0].TxnPerSec {
		t.Fatalf("replication 0 throughput %v != serial Simulate %v",
			rm.Runs[0].Nodes[0].TxnPerSec, single.Nodes[0].TxnPerSec)
	}
}
