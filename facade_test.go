package carat

import (
	"strings"
	"testing"
)

func TestWorkloadUB6Facade(t *testing.T) {
	pred, err := SolveModel(WorkloadUB6(8))
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Converged || pred.Nodes[0].TxnPerSec <= 0 {
		t.Fatalf("UB6 model broken: %+v", pred.Nodes[0])
	}
	// UB6 is local-intensive: LRO+LU throughput dominates DRO+DU.
	n := pred.Nodes[0]
	local := n.TxnPerSecByType[LocalReadOnly] + n.TxnPerSecByType[LocalUpdate]
	dist := n.TxnPerSecByType[DistributedRead] + n.TxnPerSecByType[DistributedUpdate]
	if local <= dist {
		t.Fatalf("UB6 should be local-intensive: local %v vs distributed %v", local, dist)
	}
}

func TestWithTMSerializationModelFacade(t *testing.T) {
	off, err := SolveModel(WorkloadMB8(4))
	if err != nil {
		t.Fatal(err)
	}
	on, err := SolveModel(WorkloadMB8(4).WithTMSerializationModel())
	if err != nil {
		t.Fatal(err)
	}
	if on.Nodes[0].TxnPerSec >= off.Nodes[0].TxnPerSec {
		t.Fatalf("TM correction should lower throughput: %v vs %v",
			on.Nodes[0].TxnPerSec, off.Nodes[0].TxnPerSec)
	}
}

func TestWithNetworkDelayFacade(t *testing.T) {
	fast, err := SolveModel(WorkloadMB4(8))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SolveModel(WorkloadMB4(8).WithNetworkDelay(100))
	if err != nil {
		t.Fatal(err)
	}
	fd := fast.Nodes[0].TxnPerSecByType[DistributedUpdate]
	sd := slow.Nodes[0].TxnPerSecByType[DistributedUpdate]
	if sd >= fd {
		t.Fatalf("100 ms hops should slow DU: %v vs %v", sd, fd)
	}
}

func TestWithRemoteFraction(t *testing.T) {
	// Pushing more of each DU transaction to the (slower-disk) slave node
	// must slow DU in both model and simulator; model and sim must agree
	// on the direction.
	base, err := SolveModel(WorkloadMB4(8))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := SolveModel(WorkloadMB4(8).WithRemoteFraction(0.75))
	if err != nil {
		t.Fatal(err)
	}
	bm := base.Nodes[0].TxnPerSecByType[DistributedUpdate]
	hm := heavy.Nodes[0].TxnPerSecByType[DistributedUpdate]
	if hm >= bm {
		t.Fatalf("model: 75%% remote should slow node A's DU: %v vs %v", hm, bm)
	}
	meas, err := Simulate(WorkloadMB4(8).WithRemoteFraction(0.75), quick)
	if err != nil {
		t.Fatal(err)
	}
	ms := meas.Nodes[0].TxnPerSecByType[DistributedUpdate]
	rel := (hm - ms) / ms
	if rel < -0.5 || rel > 0.8 {
		t.Fatalf("remote-heavy model %v vs sim %v diverge", hm, ms)
	}
}

func TestNewWorkloadMultiRemote(t *testing.T) {
	users := []User{
		{Type: LocalUpdate, Home: 0},
		{Type: DistributedUpdate, Home: 0, Remotes: []int{1, 2}},
		{Type: DistributedUpdate, Home: 1, Remotes: []int{0, 2}},
		{Type: DistributedUpdate, Home: 2, Remotes: []int{0, 1}},
	}
	wl, err := NewWorkload("tri", 3, users, 8)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(wl, quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Predicted.Nodes) != 3 || len(cmp.Measured.Nodes) != 3 {
		t.Fatal("expected three nodes on both sides")
	}
	for i := range cmp.Predicted.Nodes {
		mo := cmp.Predicted.Nodes[i].TxnPerSecByType[DistributedUpdate]
		me := cmp.Measured.Nodes[i].TxnPerSecByType[DistributedUpdate]
		if mo <= 0 || me <= 0 {
			t.Fatalf("node %d: DU stalled (model %v, sim %v)", i, mo, me)
		}
		rel := (mo - me) / me
		if rel < -0.5 || rel > 0.8 {
			t.Fatalf("node %d: model %v vs sim %v diverge", i, mo, me)
		}
	}
}

func TestReproduceMarkdown(t *testing.T) {
	out, err := ReproduceTableMarkdown(2, quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "| Node | Type |") && !strings.Contains(out, "| --- |") {
		t.Fatalf("not a markdown table:\n%s", out)
	}
	if _, err := ReproduceTableMarkdown(9, quick); err == nil {
		t.Fatal("bad table id must fail")
	}
	if _, err := ReproduceFigureMarkdown(99, quick); err == nil {
		t.Fatal("bad figure id must fail")
	}
}

func TestReproduceFigureMarkdownQuick(t *testing.T) {
	tiny := SimOptions{Seed: 1, WarmupMS: 5_000, DurationMS: 125_000}
	out, err := ReproduceFigureMarkdown(6, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "|") {
		t.Fatalf("markdown figure broken:\n%s", out)
	}
}

func TestSimulateReplicatedFacade(t *testing.T) {
	opts := SimOptions{
		Seed:         1,
		WarmupMS:     10_000,
		DurationMS:   130_000,
		Replications: 3,
		Workers:      2,
	}
	rm, err := SimulateReplicated(WorkloadMB4(8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Replications != 3 || len(rm.Seeds) != 3 || len(rm.Runs) != 3 {
		t.Fatalf("replication bookkeeping wrong: %d reps, %d seeds, %d runs",
			rm.Replications, len(rm.Seeds), len(rm.Runs))
	}
	if rm.Seeds[0] != opts.Seed {
		t.Fatalf("Seeds[0] = %d, want the base seed %d", rm.Seeds[0], opts.Seed)
	}
	for i, node := range rm.Nodes {
		if node.TxnPerSec.Mean <= 0 {
			t.Fatalf("node %d: nonpositive mean throughput", i)
		}
		if node.TxnPerSec.HalfWidth < 0 {
			t.Fatalf("node %d: negative CI half-width", i)
		}
		if node.CPUUtilization.Mean <= 0 || node.CPUUtilization.Mean > 1 {
			t.Fatalf("node %d: CPU utilization %v out of range", i, node.CPUUtilization.Mean)
		}
	}
	// Replication 0 must reproduce the plain Simulate run exactly.
	single, err := Simulate(WorkloadMB4(8), SimOptions{Seed: 1, WarmupMS: 10_000, DurationMS: 130_000})
	if err != nil {
		t.Fatal(err)
	}
	if rm.Runs[0].Nodes[0].TxnPerSec != single.Nodes[0].TxnPerSec {
		t.Fatalf("replication 0 throughput %v != serial Simulate %v",
			rm.Runs[0].Nodes[0].TxnPerSec, single.Nodes[0].TxnPerSec)
	}
}

// TestParseConcurrencyControl pins the strict -cc front door: every
// canonical name and the documented aliases resolve case-insensitively,
// and unknown names are rejected with an error listing the valid modes.
func TestParseConcurrencyControl(t *testing.T) {
	cases := map[string]ConcurrencyControl{
		"2PL":                TwoPhaseLocking,
		"2pl-detect":         TwoPhaseLocking,
		"wait-die":           WaitDie,
		"WOUND-WAIT":         WoundWait,
		"timestamp-ordering": TimestampOrdering,
		"to":                 TimestampOrdering,
		"occ":                OptimisticCC,
		"Optimistic":         OptimisticCC,
		"QueCC":              QueCC,
		"deterministic":      QueCC,
		" quecc ":            QueCC,
	}
	for name, want := range cases {
		got, err := ParseConcurrencyControl(name)
		if err != nil {
			t.Fatalf("ParseConcurrencyControl(%q): %v", name, err)
		}
		if got != want {
			t.Fatalf("ParseConcurrencyControl(%q) = %q, want %q", name, got, want)
		}
	}
	for _, bad := range []string{"", "2pc", "mvcc", "locking"} {
		_, err := ParseConcurrencyControl(bad)
		if err == nil {
			t.Fatalf("ParseConcurrencyControl(%q) accepted", bad)
		}
		for _, mode := range []string{"2PL-detect", "OCC", "QueCC"} {
			if !strings.Contains(err.Error(), mode) {
				t.Fatalf("error %q does not list valid mode %s", err, mode)
			}
		}
	}
}

// TestSimulateOCCAndQueCCFacade drives the two new paradigms end to end
// through the public facade: both make progress, OCC reports its
// validation aborts (with retry accounting under the "validation" cause),
// and QueCC reports none.
func TestSimulateOCCAndQueCCFacade(t *testing.T) {
	opts := SimOptions{Seed: 3, WarmupMS: 20_000, DurationMS: 320_000}
	wl := WorkloadMB4(8).WithDatabaseSize(400)
	occ, err := Simulate(wl.WithConcurrencyControl(OptimisticCC), opts)
	if err != nil {
		t.Fatal(err)
	}
	var vAborts, retried int64
	for i, node := range occ.Nodes {
		if node.TxnPerSec <= 0 {
			t.Fatalf("node %d stalled under OCC", i)
		}
		vAborts += node.ValidationAborts
		retried += node.Retried["validation"]
	}
	if vAborts == 0 || retried == 0 {
		t.Fatalf("OCC on a contended database: %d validation aborts, %d retried — want both > 0",
			vAborts, retried)
	}
	qc, err := Simulate(wl.WithConcurrencyControl(QueCC), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, node := range qc.Nodes {
		if node.TxnPerSec <= 0 {
			t.Fatalf("node %d stalled under QueCC", i)
		}
		if node.Deadlocks != 0 || node.ValidationAborts != 0 {
			t.Fatalf("node %d: QueCC reports %d deadlocks, %d validation aborts — want zero",
				i, node.Deadlocks, node.ValidationAborts)
		}
	}
}

// TestCompareConcurrencyControlsFacade smoke-tests the comparison lab's
// facade entry: the default trio over two MPLs, full grid out.
func TestCompareConcurrencyControlsFacade(t *testing.T) {
	report, err := CompareConcurrencyControls(nil, []int{1, 2},
		SimOptions{Seed: 99, WarmupMS: 20_000, DurationMS: 140_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Protocols) != 3 || len(report.Contentions) != 3 {
		t.Fatalf("default grid is %v × %v, want 3 protocols × 3 contentions",
			report.Protocols, report.Contentions)
	}
	if want := 3 * 3 * 2; len(report.Points) != want {
		t.Fatalf("got %d points, want %d", len(report.Points), want)
	}
	for _, p := range report.Points {
		if p.CommittedTPS <= 0 {
			t.Fatalf("%s/%s/%d: no throughput", p.Protocol, p.Contention, p.Users)
		}
	}
	if _, err := CompareConcurrencyControls(nil, nil, SimOptions{}); err == nil {
		t.Fatal("empty MPL list accepted")
	}
}
