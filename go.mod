module carat

go 1.23
