module carat

go 1.22
