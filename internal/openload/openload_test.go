package openload

import (
	"math"
	"testing"

	"carat/internal/rng"
)

// count returns the number of arrivals in [0, horizon).
func count(p *Process, horizon float64) int {
	n := 0
	for t := p.Next(0); t < horizon; t = p.Next(t) {
		n++
	}
	return n
}

// A plain Poisson process at constant rate should produce close to
// rate*horizon arrivals over a long horizon.
func TestPoissonConstantRate(t *testing.T) {
	const rate = 0.01 // 10/s
	const horizon = 1_000_000.0
	p := NewProcess(rate, nil, Burst{}, rng.New(7))
	n := count(p, horizon)
	want := rate * horizon
	if math.Abs(float64(n)-want) > 4*math.Sqrt(want) {
		t.Fatalf("arrival count %d outside 4σ of %v", n, want)
	}
}

// Same seed, same parameters ⇒ identical arrival sequence.
func TestProcessDeterministic(t *testing.T) {
	mk := func() *Process {
		return NewProcess(0.005, []RampPoint{{0, 0.002}, {50_000, 0.01}},
			Burst{OnMeanMS: 2000, OffMeanMS: 8000, Factor: 4}, rng.New(42))
	}
	a, b := mk(), mk()
	ta, tb := 0.0, 0.0
	for i := 0; i < 2000; i++ {
		ta, tb = a.Next(ta), b.Next(tb)
		if ta != tb {
			t.Fatalf("arrival %d diverged: %v vs %v", i, ta, tb)
		}
	}
}

// An increasing ramp should put far more arrivals in the late window than
// the early window, and EnvelopeRate must interpolate linearly.
func TestRampShapesArrivals(t *testing.T) {
	ramp := []RampPoint{{0, 0.001}, {100_000, 0.01}}
	p := NewProcess(0, ramp, Burst{}, rng.New(3))
	if got := p.EnvelopeRate(50_000); math.Abs(got-0.0055) > 1e-12 {
		t.Fatalf("midpoint rate = %v, want 0.0055", got)
	}
	if got := p.EnvelopeRate(-5); got != 0.001 {
		t.Fatalf("pre-ramp rate = %v, want first point", got)
	}
	if got := p.EnvelopeRate(200_000); got != 0.01 {
		t.Fatalf("post-ramp rate = %v, want last point", got)
	}
	early, late := 0, 0
	for tt := p.Next(0); tt < 100_000; tt = p.Next(tt) {
		if tt < 30_000 {
			early++
		} else if tt >= 70_000 {
			late++
		}
	}
	if late < 3*early {
		t.Fatalf("ramp not shaping arrivals: early=%d late=%d", early, late)
	}
}

// The burst modulator raises the long-run rate toward the stationary mix
// of on and off states.
func TestBurstRaisesMeanRate(t *testing.T) {
	const base = 0.004
	b := Burst{OnMeanMS: 5000, OffMeanMS: 15000, Factor: 5}
	p := NewProcess(base, nil, b, rng.New(11))
	const horizon = 2_000_000.0
	n := count(p, horizon)
	want := base * b.meanFactor() * horizon // stationary-mix mean
	if math.Abs(float64(n)-want) > 0.15*want {
		t.Fatalf("burst arrival count %d not within 15%% of %v", n, want)
	}
	if mr := p.MeanRate(horizon); math.Abs(mr-base*b.meanFactor()) > 1e-12 {
		t.Fatalf("MeanRate = %v, want %v", mr, base*b.meanFactor())
	}
}

// A zero-rate process never fires.
func TestZeroRateNeverFires(t *testing.T) {
	p := NewProcess(0, nil, Burst{}, rng.New(1))
	if got := p.Next(0); !math.IsInf(got, 1) {
		t.Fatalf("zero-rate Next = %v, want +Inf", got)
	}
	// A ramp that decays to zero must terminate rather than spin.
	p2 := NewProcess(0, []RampPoint{{0, 0.01}, {1000, 0}}, Burst{}, rng.New(2))
	last := 0.0
	for tt := p2.Next(0); !math.IsInf(tt, 1); tt = p2.Next(tt) {
		if tt <= last {
			t.Fatalf("non-increasing arrival time %v after %v", tt, last)
		}
		last = tt
		if last > 10_000 {
			t.Fatalf("arrival at %v long after the schedule hit zero", last)
		}
	}
}
