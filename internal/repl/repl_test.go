package repl

import (
	"reflect"
	"testing"

	"carat/internal/rng"
)

func TestPolicyValidateAndQuorum(t *testing.T) {
	p := Policy{}
	if err := p.Validate(2); err != nil {
		t.Fatal(err)
	}
	if p.Factor != 1 || p.Active() {
		t.Fatalf("zero policy normalized to %+v, want inert Factor=1", p)
	}
	bad := Policy{Factor: 3}
	if err := bad.Validate(2); err == nil {
		t.Fatal("factor above the site count must be rejected")
	}
	neg := Policy{Factor: -1}
	if err := neg.Validate(2); err == nil {
		t.Fatal("negative factor must be rejected")
	}
	for _, tc := range []struct{ factor, quorum int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3},
	} {
		if q := (Policy{Factor: tc.factor}).QuorumSize(); q != tc.quorum {
			t.Errorf("QuorumSize(R=%d) = %d, want %d", tc.factor, q, tc.quorum)
		}
	}
}

func TestParseReadMode(t *testing.T) {
	for s, want := range map[string]ReadMode{
		"one": ReadOne, "": ReadOne, "read-one": ReadOne,
		"quorum": ReadQuorum, "QUORUM": ReadQuorum,
	} {
		got, err := ParseReadMode(s)
		if err != nil || got != want {
			t.Errorf("ParseReadMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseReadMode("all"); err == nil {
		t.Fatal("unknown mode must be rejected")
	}
}

func TestPlacementShape(t *testing.T) {
	const nodes, granules, factor = 4, 50, 3
	p := NewPlacement(nodes, granules, factor, rng.New(7))
	for owner := 0; owner < nodes; owner++ {
		for g := 0; g < granules; g++ {
			reps := p.Replicas(owner, g)
			if len(reps) != factor {
				t.Fatalf("(%d,%d): %d replicas, want %d", owner, g, len(reps), factor)
			}
			if reps[0] != owner {
				t.Fatalf("(%d,%d): primary is %d, want the owner", owner, g, reps[0])
			}
			seen := map[int]bool{}
			for _, s := range reps {
				if s < 0 || s >= nodes {
					t.Fatalf("(%d,%d): replica site %d out of range", owner, g, s)
				}
				if seen[s] {
					t.Fatalf("(%d,%d): duplicate replica site %d in %v", owner, g, s, reps)
				}
				seen[s] = true
			}
			if !p.HasReplica(owner, owner, g) {
				t.Fatalf("(%d,%d): owner not reported as replica", owner, g)
			}
		}
	}
}

// TestPlacementDeterministic pins that placement is a pure function of the
// RNG stream: equal seeds reproduce it, different seeds vary it.
func TestPlacementDeterministic(t *testing.T) {
	a := NewPlacement(5, 200, 2, rng.New(42))
	b := NewPlacement(5, 200, 2, rng.New(42))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different placements")
	}
	c := NewPlacement(5, 200, 2, rng.New(43))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical placements (suspicious)")
	}
}

// TestPlacementSpreads sanity-checks that replicas are spread over the
// non-owner sites rather than piling onto one.
func TestPlacementSpreads(t *testing.T) {
	const nodes, granules = 4, 600
	p := NewPlacement(nodes, granules, 2, rng.New(9))
	counts := make([]int, nodes)
	for g := 0; g < granules; g++ {
		counts[p.Replicas(0, g)[1]]++
	}
	for s := 1; s < nodes; s++ {
		if counts[s] < granules/(nodes-1)/2 {
			t.Fatalf("site %d holds only %d of %d replicas of site 0 (counts %v)", s, counts[s], granules, counts)
		}
	}
}
