// Package repl describes the testbed's data replication scheme: replica
// placement, the read policy, and the quorum arithmetic.
//
// CARAT itself runs fully partitioned data — every granule lives at exactly
// one site — so this package is a testbed extension beyond the paper's
// model. The scheme is primary-copy: granule g of site "owner" keeps its
// primary at the owner (writes lock and execute there exactly as in the
// unreplicated system) and Factor-1 additional copies at other sites,
// placed deterministically from a dedicated substream of the workload RNG.
// Writes propagate to the copies after the coordinator's force-written
// commit record (write-all-available: copies at crashed sites catch up
// during restart recovery); reads either go to the primary, failing over to
// the first live copy when the primary's site is down (ReadOne), or
// additionally consult a majority of copies (ReadQuorum).
package repl

import (
	"fmt"
	"strings"

	"carat/internal/rng"
)

// ReadMode selects how reads use the replica set.
type ReadMode int

const (
	// ReadOne serves each read at a single copy: the primary while its
	// site is up, otherwise the first live replica in placement order.
	ReadOne ReadMode = iota
	// ReadQuorum additionally consults copies until a majority of the
	// replica set (Factor/2 + 1 sites) has confirmed the read. Reads abort
	// when fewer than a quorum of copies are live.
	ReadQuorum
)

// String names the mode the way the CLI spells it.
func (m ReadMode) String() string {
	if m == ReadQuorum {
		return "quorum"
	}
	return "one"
}

// ParseReadMode parses the CLI spelling of a read mode.
func ParseReadMode(s string) (ReadMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "one", "read-one", "readone":
		return ReadOne, nil
	case "quorum", "read-quorum", "readquorum":
		return ReadQuorum, nil
	default:
		return ReadOne, fmt.Errorf("repl: unknown read mode %q (want one or quorum)", s)
	}
}

// Policy configures replication for one run. The zero value (and any
// Factor <= 1) is fully inert: no placement is built, no replica state is
// kept, and the simulation is byte-identical to an unreplicated build.
type Policy struct {
	// Factor is the replication factor R: the number of copies of each
	// granule, primary included. 0 and 1 both mean unreplicated.
	Factor int
	// Read selects the read policy (meaningful only when Factor > 1).
	Read ReadMode
}

// Active reports whether the policy replicates anything at all.
func (p Policy) Active() bool { return p.Factor > 1 }

// Validate checks the policy against the site count and normalizes a zero
// factor to 1 in place.
func (p *Policy) Validate(nodes int) error {
	if p.Factor < 0 {
		return fmt.Errorf("repl: negative replication factor %d", p.Factor)
	}
	if p.Factor == 0 {
		p.Factor = 1
	}
	if p.Factor > nodes {
		return fmt.Errorf("repl: replication factor %d exceeds %d sites", p.Factor, nodes)
	}
	if p.Read != ReadOne && p.Read != ReadQuorum {
		return fmt.Errorf("repl: unknown read mode %d", int(p.Read))
	}
	return nil
}

// QuorumSize returns the read quorum: a majority of the replica set.
func (p Policy) QuorumSize() int { return p.Factor/2 + 1 }

// Placement is the deterministic replica map of one run: for every
// (owner site, granule) pair, the ordered list of sites holding a copy,
// primary (the owner) first. It is a pure function of the RNG stream it was
// built from, so equal seeds give identical placements.
type Placement struct {
	nodes    int
	granules int
	factor   int
	// sites holds the replica lists back to back: the copies of granule g
	// of site o occupy sites[(o*granules+g)*factor : ...+factor].
	sites []int
}

// NewPlacement draws a placement for nodes sites of granules granules each
// at replication factor R from r. Each owner's granules draw from their own
// Split substream, so the placement of one site never depends on the node
// count ordering of another's draws.
func NewPlacement(nodes, granules, factor int, r *rng.Rand) *Placement {
	if factor < 1 {
		factor = 1
	}
	if factor > nodes {
		factor = nodes
	}
	p := &Placement{
		nodes:    nodes,
		granules: granules,
		factor:   factor,
		sites:    make([]int, nodes*granules*factor),
	}
	for owner := 0; owner < nodes; owner++ {
		or := r.Split(uint64(owner))
		for g := 0; g < granules; g++ {
			out := p.sites[(owner*granules+g)*factor:][:0]
			out = append(out, owner)
			if factor > 1 {
				// Sample factor-1 distinct sites from the nodes-1 non-owner
				// sites; index i maps to site i, skipping the owner.
				for _, i := range or.SampleInts(nodes-1, factor-1) {
					s := i
					if s >= owner {
						s++
					}
					out = append(out, s)
				}
			}
		}
	}
	return p
}

// Factor returns the replication factor the placement was built with.
func (p *Placement) Factor() int { return p.factor }

// Replicas returns the sites holding a copy of granule g of site owner,
// primary first. The returned slice aliases the placement; don't mutate it.
func (p *Placement) Replicas(owner, g int) []int {
	return p.sites[(owner*p.granules+g)*p.factor:][:p.factor:p.factor]
}

// HasReplica reports whether site holds a copy of granule g of site owner.
func (p *Placement) HasReplica(site, owner, g int) bool {
	for _, s := range p.Replicas(owner, g) {
		if s == site {
			return true
		}
	}
	return false
}
