// Package probe implements distributed (global) deadlock detection with a
// variation of the Chandy–Misra–Haas edge-chasing algorithm for the AND
// request model [CHAN83], as used by the CARAT testbed (Section 2: "global
// deadlocks were detected using a variation of the probe algorithm").
//
// When a transaction blocks at a site and one of its (transitive) blockers
// is a distributed transaction currently active at another site, the site
// sends a probe to that site. A site receiving probe(i, j, k) forwards it
// along transaction k's local wait-for edges; a probe arriving back at its
// initiator proves a cycle, and the initiator is chosen as victim (matching
// the model's Pra term: a coordinator in remote wait is aborted when a
// deadlock is detected at the remote site).
//
// The package is transport-agnostic: Detector consumes and produces Probe
// values; the testbed carries them between sites as messages.
package probe

import "slices"

// TxnID identifies a global transaction (the same id at every site it
// touches).
type TxnID int64

// SiteID identifies a site.
type SiteID int

// Probe is one edge-chasing message: "initiator Initiator is transitively
// blocked by To, discovered while examining From's dependencies."
type Probe struct {
	Initiator TxnID
	From      TxnID
	To        TxnID
	Dest      SiteID
	// Seq is the initiator's probe round. Initiate starts round 0; each
	// Reprobe for a still-blocked initiator bumps the round. Forwarding
	// sites dedup per (initiator, target, round), so a retransmitted round
	// is chased again even where an earlier — possibly lost — round already
	// passed through.
	Seq int
}

// Host exposes the per-site state the detector needs. Implemented by the
// testbed node.
type Host interface {
	// WaitsFor returns the global ids of the transactions that t's local
	// agent is waiting on at this site (empty if not blocked here).
	WaitsFor(t TxnID) []TxnID
	// ActiveSite returns the site where transaction t is currently
	// executing or blocked. ok is false if t is unknown or finished.
	ActiveSite(t TxnID) (site SiteID, ok bool)
}

// probeKey dedups one chased edge: (initiator, target, round).
type probeKey struct {
	initiator TxnID
	to        TxnID
	seq       int
}

// Detector is the per-site probe engine.
type Detector struct {
	site SiteID
	host Host
	// sent dedups (initiator, to, round) triples so each probe edge is
	// chased once per blocking episode and round.
	sent map[probeKey]bool
	// seq is the current probe round per initiator blocked at this site;
	// absent means round 0 (plain Initiate).
	seq map[TxnID]int
	// visitBuf is the scratch visited-set for chase, reused across calls.
	visitBuf map[TxnID]bool
	// probeBuf is the scratch output slice for chase, reused across calls.
	// Callers consume the returned probes before the next detector call.
	probeBuf []Probe

	initiated int64
	received  int64
	detected  int64
}

// NewDetector creates the engine for one site.
func NewDetector(site SiteID, host Host) *Detector {
	return &Detector{site: site, host: host, sent: make(map[probeKey]bool), seq: make(map[TxnID]int), visitBuf: make(map[TxnID]bool)}
}

// Counts returns (probes initiated, probes received, deadlocks detected).
func (d *Detector) Counts() (initiated, received, detected int64) {
	return d.initiated, d.received, d.detected
}

// ClearTxn forgets dedup and round state for an initiator, called when the
// transaction unblocks, aborts, or commits so a future blocking episode
// re-probes.
func (d *Detector) ClearTxn(t TxnID) {
	for k := range d.sent {
		if k.initiator == t {
			delete(d.sent, k)
		}
	}
	delete(d.seq, t)
}

// Initiate runs when transaction blocked becomes blocked at this site.
// It chases blocked's local dependency closure; every edge that leaves the
// site becomes an outgoing probe. Local cycles are the lock manager's job
// and are not reported here.
func (d *Detector) Initiate(blocked TxnID) []Probe {
	d.initiated++
	d.probeBuf = d.chase(blocked, blocked, d.seq[blocked], nil, d.probeBuf[:0])
	return d.probeBuf
}

// Reprobe re-initiates edge chasing for a transaction still blocked at this
// site, in a fresh round: the emitted probes carry a bumped Seq, so every
// site on the path forwards them again even if it forwarded (or lost) the
// previous round. Message loss therefore delays detection by at most the
// caller's retransmission period instead of hiding the deadlock forever.
func (d *Detector) Reprobe(blocked TxnID) []Probe {
	d.seq[blocked]++
	d.initiated++
	d.probeBuf = d.chase(blocked, blocked, d.seq[blocked], nil, d.probeBuf[:0])
	return d.probeBuf
}

// Receive processes an incoming probe at this site. It returns any probes
// to forward, and if the probe closed a cycle, found=true with the victim
// (the initiator).
func (d *Detector) Receive(p Probe) (forward []Probe, victim TxnID, found bool) {
	d.received++
	if p.To == p.Initiator {
		d.detected++
		return nil, p.Initiator, true
	}
	forward = d.chase(p.Initiator, p.To, p.Seq, nil, d.probeBuf[:0])
	d.probeBuf = forward
	// chase reports a closed cycle by emitting a probe addressed to the
	// initiator at its own site; intercept that here if the initiator is
	// local-to-this-site conceptually immaterial — detection happens when
	// the probe targets the initiator.
	kept := forward[:0]
	for _, f := range forward {
		if f.To == f.Initiator {
			d.detected++
			victim, found = f.Initiator, true
			continue
		}
		kept = append(kept, f)
	}
	return kept, victim, found
}

// chase walks the local wait-for graph from txn on behalf of initiator's
// probe round seq, appending a probe to out for every dependency whose
// target is active at another site, and returns out. visited guards against
// local cycles re-entering. The top-level call passes the detector's reused
// scratch slice; the result is only valid until the next detector call.
func (d *Detector) chase(initiator, txn TxnID, seq int, visited map[TxnID]bool, out []Probe) []Probe {
	if visited == nil {
		visited = d.visitBuf
		clear(visited)
		visited[txn] = true
	}
	deps := d.host.WaitsFor(txn)
	// The testbed host returns sorted dependencies; sorting is only a
	// determinism backstop for hosts that don't.
	if !slices.IsSorted(deps) {
		slices.Sort(deps)
	}
	for _, m := range deps {
		if m == initiator {
			// Cycle closed locally against a remote initiator: emit a
			// self-addressed probe that Receive converts to detection.
			out = append(out, Probe{Initiator: initiator, From: txn, To: initiator, Dest: d.site, Seq: seq})
			continue
		}
		site, ok := d.host.ActiveSite(m)
		if !ok {
			continue
		}
		if site == d.site {
			if !visited[m] {
				visited[m] = true
				out = d.chase(initiator, m, seq, visited, out)
			}
			continue
		}
		key := probeKey{initiator: initiator, to: m, seq: seq}
		if d.sent[key] {
			continue
		}
		d.sent[key] = true
		out = append(out, Probe{Initiator: initiator, From: txn, To: m, Dest: site, Seq: seq})
	}
	return out
}
