package probe

import "testing"

// fakeHost wires a hand-built global wait-for graph for one site.
type fakeHost struct {
	edges map[TxnID][]TxnID
	site  map[TxnID]SiteID
}

func (h *fakeHost) WaitsFor(t TxnID) []TxnID { return h.edges[t] }
func (h *fakeHost) ActiveSite(t TxnID) (SiteID, bool) {
	s, ok := h.site[t]
	return s, ok
}

func TestNoProbesWithoutRemoteEdges(t *testing.T) {
	h := &fakeHost{
		edges: map[TxnID][]TxnID{1: {2}},
		site:  map[TxnID]SiteID{1: 0, 2: 0},
	}
	d := NewDetector(0, h)
	probes := d.Initiate(1)
	if len(probes) != 0 {
		t.Fatalf("probes = %v; purely local edges emit nothing", probes)
	}
}

func TestRemoteEdgeEmitsProbe(t *testing.T) {
	h := &fakeHost{
		edges: map[TxnID][]TxnID{1: {2}},
		site:  map[TxnID]SiteID{1: 0, 2: 1},
	}
	d := NewDetector(0, h)
	probes := d.Initiate(1)
	if len(probes) != 1 {
		t.Fatalf("probes = %v, want one", probes)
	}
	p := probes[0]
	if p.Initiator != 1 || p.To != 2 || p.Dest != 1 {
		t.Fatalf("probe = %+v", p)
	}
}

func TestTwoSiteCycleDetected(t *testing.T) {
	// Site 0: txn 1 waits for txn 2 (active at site 1).
	// Site 1: txn 2 waits for txn 1 (active at site 0).
	h0 := &fakeHost{
		edges: map[TxnID][]TxnID{1: {2}},
		site:  map[TxnID]SiteID{1: 0, 2: 1},
	}
	h1 := &fakeHost{
		edges: map[TxnID][]TxnID{2: {1}},
		site:  map[TxnID]SiteID{1: 0, 2: 1},
	}
	d0 := NewDetector(0, h0)
	d1 := NewDetector(1, h1)

	probes := d0.Initiate(1)
	if len(probes) != 1 {
		t.Fatalf("site 0 probes = %v", probes)
	}
	fwd, victim, found := d1.Receive(probes[0])
	// At site 1, txn 2's dependency is txn 1 == initiator: cycle.
	if !found || victim != 1 {
		t.Fatalf("found=%v victim=%v fwd=%v, want detection with victim 1", found, victim, fwd)
	}
}

func TestThreeSiteCycleDetected(t *testing.T) {
	// 1@0 -> 2@1 -> 3@2 -> 1@0.
	sites := map[TxnID]SiteID{1: 0, 2: 1, 3: 2}
	h0 := &fakeHost{edges: map[TxnID][]TxnID{1: {2}}, site: sites}
	h1 := &fakeHost{edges: map[TxnID][]TxnID{2: {3}}, site: sites}
	h2 := &fakeHost{edges: map[TxnID][]TxnID{3: {1}}, site: sites}
	d0, d1, d2 := NewDetector(0, h0), NewDetector(1, h1), NewDetector(2, h2)

	ps := d0.Initiate(1)
	if len(ps) != 1 || ps[0].Dest != 1 {
		t.Fatalf("step1 probes = %v", ps)
	}
	ps, _, found := d1.Receive(ps[0])
	if found || len(ps) != 1 || ps[0].Dest != 2 || ps[0].To != 3 {
		t.Fatalf("step2 = %v found=%v", ps, found)
	}
	_, victim, found := d2.Receive(ps[0])
	if !found || victim != 1 {
		t.Fatalf("cycle not closed: victim=%v found=%v", victim, found)
	}
}

func TestLocalChainThenRemote(t *testing.T) {
	// At site 0: 1 -> 2 (local) -> 3 (remote). Initiating for 1 must
	// chase through 2 and probe 3.
	h := &fakeHost{
		edges: map[TxnID][]TxnID{1: {2}, 2: {3}},
		site:  map[TxnID]SiteID{1: 0, 2: 0, 3: 1},
	}
	d := NewDetector(0, h)
	probes := d.Initiate(1)
	if len(probes) != 1 || probes[0].To != 3 || probes[0].Initiator != 1 {
		t.Fatalf("probes = %v", probes)
	}
}

func TestDedupSuppressesRepeatProbes(t *testing.T) {
	h := &fakeHost{
		edges: map[TxnID][]TxnID{1: {2}},
		site:  map[TxnID]SiteID{1: 0, 2: 1},
	}
	d := NewDetector(0, h)
	if got := len(d.Initiate(1)); got != 1 {
		t.Fatalf("first initiate: %d probes", got)
	}
	if got := len(d.Initiate(1)); got != 0 {
		t.Fatalf("second initiate must be deduped, got %d probes", got)
	}
	d.ClearTxn(1)
	if got := len(d.Initiate(1)); got != 1 {
		t.Fatalf("after ClearTxn: %d probes, want 1", got)
	}
}

func TestNoFalseDeadlockOnChain(t *testing.T) {
	// 1@0 -> 2@1, and at site 1 txn 2 waits for 3 which is not blocked.
	sites := map[TxnID]SiteID{1: 0, 2: 1, 3: 1}
	h1 := &fakeHost{edges: map[TxnID][]TxnID{2: {3}}, site: sites}
	d1 := NewDetector(1, h1)
	_, _, found := d1.Receive(Probe{Initiator: 1, From: 1, To: 2, Dest: 1})
	if found {
		t.Fatal("chain without cycle reported as deadlock")
	}
}

func TestFinishedTxnBreaksChase(t *testing.T) {
	h := &fakeHost{
		edges: map[TxnID][]TxnID{1: {2}},
		site:  map[TxnID]SiteID{1: 0}, // txn 2 unknown (finished)
	}
	d := NewDetector(0, h)
	if probes := d.Initiate(1); len(probes) != 0 {
		t.Fatalf("probes = %v; finished target must stop the chase", probes)
	}
}

func TestCounts(t *testing.T) {
	h := &fakeHost{
		edges: map[TxnID][]TxnID{2: {1}},
		site:  map[TxnID]SiteID{1: 0, 2: 1},
	}
	d := NewDetector(1, h)
	d.Receive(Probe{Initiator: 1, From: 1, To: 2, Dest: 1})
	ini, rcv, det := d.Counts()
	if ini != 0 || rcv != 1 || det != 1 {
		t.Fatalf("counts = %d,%d,%d", ini, rcv, det)
	}
}

func TestProbeDirectlyAtInitiator(t *testing.T) {
	h := &fakeHost{edges: map[TxnID][]TxnID{}, site: map[TxnID]SiteID{}}
	d := NewDetector(0, h)
	_, victim, found := d.Receive(Probe{Initiator: 7, From: 3, To: 7, Dest: 0})
	if !found || victim != 7 {
		t.Fatalf("self-addressed probe must detect: found=%v victim=%v", found, victim)
	}
}

func TestReprobeBypassesDedupWithFreshRound(t *testing.T) {
	h := &fakeHost{
		edges: map[TxnID][]TxnID{1: {2}},
		site:  map[TxnID]SiteID{1: 0, 2: 1},
	}
	d := NewDetector(0, h)
	first := d.Initiate(1)
	if len(first) != 1 || first[0].Seq != 0 {
		t.Fatalf("initiate = %v, want one round-0 probe", first)
	}
	if got := d.Initiate(1); len(got) != 0 {
		t.Fatalf("repeat initiate must be deduped, got %v", got)
	}
	again := d.Reprobe(1)
	if len(again) != 1 || again[0].Seq != 1 {
		t.Fatalf("reprobe = %v, want one round-1 probe", again)
	}
	if got := d.Reprobe(1); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("second reprobe = %v, want one round-2 probe", got)
	}
	// Unblocking resets the round: the next blocking episode starts at 0.
	d.ClearTxn(1)
	if got := d.Initiate(1); len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("initiate after ClearTxn = %v, want one round-0 probe", got)
	}
}

func TestForwarderForwardsEachRoundOnce(t *testing.T) {
	// Site 1 forwards probes for the chain 1@0 -> 2@1 -> 3@2. A repeated
	// round is dropped (the transport may duplicate), but a fresh round —
	// a retransmission after suspected loss — is forwarded again.
	sites := map[TxnID]SiteID{1: 0, 2: 1, 3: 2}
	h1 := &fakeHost{edges: map[TxnID][]TxnID{2: {3}}, site: sites}
	d1 := NewDetector(1, h1)
	round0 := Probe{Initiator: 1, From: 1, To: 2, Dest: 1, Seq: 0}
	fwd, _, found := d1.Receive(round0)
	if found || len(fwd) != 1 || fwd[0].Seq != 0 {
		t.Fatalf("round 0: fwd=%v found=%v, want one forwarded probe", fwd, found)
	}
	if fwd, _, _ := d1.Receive(round0); len(fwd) != 0 {
		t.Fatalf("duplicate round 0 must not be forwarded again: %v", fwd)
	}
	round1 := Probe{Initiator: 1, From: 1, To: 2, Dest: 1, Seq: 1}
	fwd, _, found = d1.Receive(round1)
	if found || len(fwd) != 1 || fwd[0].Seq != 1 {
		t.Fatalf("round 1: fwd=%v found=%v, want one forwarded probe", fwd, found)
	}
}
