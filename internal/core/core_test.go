package core_test

import (
	"math"
	"testing"

	"carat/internal/core"
	"carat/internal/workload"
)

func solve(t *testing.T, name string, n int) *core.Result {
	t.Helper()
	wl, err := workload.ByName(name, n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wl.Model()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("%s n=%d did not converge in %d iterations", name, n, res.Iterations)
	}
	return res
}

func TestMB4Solves(t *testing.T) {
	res := solve(t, "MB4", 8)
	if len(res.Sites) != 2 {
		t.Fatalf("sites = %d", len(res.Sites))
	}
	for i, s := range res.Sites {
		if s.TotalTxnThroughput <= 0 {
			t.Fatalf("site %d throughput %v", i, s.TotalTxnThroughput)
		}
		if s.CPUUtilization <= 0 || s.CPUUtilization > 1 {
			t.Fatalf("site %d cpu %v", i, s.CPUUtilization)
		}
		if s.DiskUtilization <= 0 || s.DiskUtilization > 1 {
			t.Fatalf("site %d disk %v", i, s.DiskUtilization)
		}
		for _, ty := range []core.Type{core.LRO, core.LU, core.DROC, core.DUC, core.DROS, core.DUS} {
			cr := s.Chains[ty]
			if cr == nil {
				t.Fatalf("site %d missing chain %v", i, ty)
			}
			if cr.Throughput <= 0 {
				t.Fatalf("site %d chain %v throughput %v", i, ty, cr.Throughput)
			}
		}
	}
}

func TestNodeAOutperformsNodeB(t *testing.T) {
	// Node A's RM05 (28 ms) beats node B's RP06 (40 ms) on every workload.
	for _, name := range []string{"LB8", "MB4", "MB8", "UB6"} {
		res := solve(t, name, 8)
		a, b := res.Sites[0], res.Sites[1]
		if a.TotalTxnThroughput <= b.TotalTxnThroughput {
			t.Errorf("%s: node A %v <= node B %v", name,
				a.TotalTxnThroughput, b.TotalTxnThroughput)
		}
	}
}

func TestLROBeatsLU(t *testing.T) {
	res := solve(t, "MB4", 8)
	for i, s := range res.Sites {
		if s.Chains[core.LRO].Throughput <= s.Chains[core.LU].Throughput {
			t.Errorf("site %d: LRO %v <= LU %v", i,
				s.Chains[core.LRO].Throughput, s.Chains[core.LU].Throughput)
		}
	}
}

func TestCoordinatorSlaveCoupling(t *testing.T) {
	// Each DROC cycle is one DROS cycle: converged throughputs must agree.
	res := solve(t, "MB4", 8)
	for i := range res.Sites {
		j := 1 - i
		coordX := res.Sites[i].Chains[core.DROC].Throughput
		slaveX := res.Sites[j].Chains[core.DROS].Throughput
		if math.Abs(coordX-slaveX) > 0.15*coordX {
			t.Errorf("DROC@%d X=%v vs DROS@%d X=%v: coupling broken", i, coordX, j, slaveX)
		}
		coordX = res.Sites[i].Chains[core.DUC].Throughput
		slaveX = res.Sites[j].Chains[core.DUS].Throughput
		if math.Abs(coordX-slaveX) > 0.15*coordX {
			t.Errorf("DUC@%d X=%v vs DUS@%d X=%v: coupling broken", i, coordX, j, slaveX)
		}
	}
}

func TestThroughputFallsAtLargeN(t *testing.T) {
	// The paper's headline shape: normalized record throughput falls as n
	// grows beyond 8 because deadlock rollbacks dominate.
	rec := func(n int) float64 {
		res := solve(t, "LB8", n)
		return res.Sites[1].RecordThroughput
	}
	at8, at20 := rec(8), rec(20)
	if at20 >= at8 {
		t.Fatalf("record throughput must fall: n=8 %v, n=20 %v", at8, at20)
	}
}

func TestAbortProbabilityGrowsWithN(t *testing.T) {
	var prev float64
	for _, n := range []int{4, 8, 12, 16, 20} {
		res := solve(t, "MB8", n)
		pa := res.Sites[0].Chains[core.LU].Pa
		if pa < prev {
			t.Fatalf("Pa(LU) fell from %v to %v at n=%d", prev, pa, n)
		}
		prev = pa
	}
	if prev <= 0 {
		t.Fatal("Pa stayed zero at n=20 under MB8")
	}
}

func TestEquation3Consistency(t *testing.T) {
	// The visit-count-derived Pa must match Eq. 3's closed form.
	res := solve(t, "MB4", 12)
	for i, s := range res.Sites {
		for _, ty := range []core.Type{core.LRO, core.LU} {
			cr := s.Chains[ty]
			want := 1 - math.Pow(1-cr.Pb*cr.Pd, cr.Nlk)
			if math.Abs(cr.Pa-want) > 0.02+0.1*want {
				t.Errorf("site %d %v: Pa=%v, Eq.3 gives %v", i, ty, cr.Pa, want)
			}
		}
		for _, ty := range []core.Type{core.DROC, core.DUC} {
			cr := s.Chains[ty]
			want := 1 - math.Pow(1-cr.Pb*cr.Pd, cr.Nlk)*math.Pow(1-cr.Pra, float64(6))
			_ = want // r(t)=6 at n=12; the matrix encodes the same structure
			if cr.Pa < 0 || cr.Pa >= 1 {
				t.Errorf("site %d %v: Pa=%v out of range", i, ty, cr.Pa)
			}
		}
	}
}

func TestBlockingRatioNearOneThird(t *testing.T) {
	// BR(t) = (2N+1)/(6N) ~ 1/3 for the paper's lock counts; the measured
	// range was 0.23–0.41.
	res := solve(t, "MB8", 8)
	cr := res.Sites[0].Chains[core.LU]
	if cr.BR < 0.3 || cr.BR > 0.4 {
		t.Fatalf("BR = %v, want ~1/3", cr.BR)
	}
	// Eq. 16: P_lw = 1-(1-Pb)^Nlk, reported per chain.
	want := 1 - math.Pow(1-cr.Pb, cr.Nlk)
	if math.Abs(cr.Plw-want) > 1e-12 {
		t.Fatalf("Plw = %v, want %v", cr.Plw, want)
	}
	if cr.Plw <= 0 || cr.Plw >= 1 {
		t.Fatalf("Plw = %v out of (0,1)", cr.Plw)
	}
}

func TestLocalWorkloadHasNoDistributedChains(t *testing.T) {
	res := solve(t, "LB8", 8)
	for i, s := range res.Sites {
		for _, ty := range []core.Type{core.DROC, core.DUC, core.DROS, core.DUS} {
			if _, ok := s.Chains[ty]; ok {
				t.Errorf("site %d has unexpected %v chain", i, ty)
			}
		}
		if s.Chains[core.LRO].RRW != 0 || s.Chains[core.LRO].RCW != 0 {
			t.Errorf("site %d local chain has remote/commit waits", i)
		}
	}
}

func TestLittlesLawOnCycle(t *testing.T) {
	res := solve(t, "MB4", 8)
	for i, s := range res.Sites {
		for ty, cr := range s.Chains {
			if got := cr.Throughput * cr.CycleTime; math.Abs(got-float64(cr.Population)) > 1e-6 {
				t.Errorf("site %d %v: X*R = %v, want %d", i, ty, got, cr.Population)
			}
		}
	}
}

func TestDiskIORateConsistent(t *testing.T) {
	// DIO rate must equal disk utilization divided by mean service time
	// when the log shares the database disk.
	res := solve(t, "LB8", 8)
	for i, s := range res.Sites {
		meanSvc := 28.0
		if i == 1 {
			meanSvc = 40.0
		}
		implied := s.DiskUtilization / meanSvc
		if math.Abs(s.DiskIORate-implied) > 0.05*implied {
			t.Errorf("site %d: DIO rate %v vs utilization-implied %v", i, s.DiskIORate, implied)
		}
	}
}

func TestSeparateLogDiskHelps(t *testing.T) {
	wl := workload.LB8(8)
	shared, err := wl.Model()
	if err != nil {
		t.Fatal(err)
	}
	sharedRes, err := core.Solve(shared)
	if err != nil {
		t.Fatal(err)
	}
	wl.LogDisks = wl.DBDisks // dedicated log device with same profile
	sep, err := wl.Model()
	if err != nil {
		t.Fatal(err)
	}
	sepRes, err := core.Solve(sep)
	if err != nil {
		t.Fatal(err)
	}
	if sepRes.Sites[0].TotalTxnThroughput <= sharedRes.Sites[0].TotalTxnThroughput {
		t.Fatalf("separate log (%v) should beat shared (%v)",
			sepRes.Sites[0].TotalTxnThroughput, sharedRes.Sites[0].TotalTxnThroughput)
	}
}

func TestBufferPoolHelps(t *testing.T) {
	wl := workload.LB8(8)
	base, _ := wl.Model()
	baseRes, err := core.Solve(base)
	if err != nil {
		t.Fatal(err)
	}
	wl.BufferHitRatio = 0.8
	buf, _ := wl.Model()
	bufRes, err := core.Solve(buf)
	if err != nil {
		t.Fatal(err)
	}
	if bufRes.Sites[0].TotalTxnThroughput <= baseRes.Sites[0].TotalTxnThroughput {
		t.Fatalf("buffer pool (%v) should beat none (%v)",
			bufRes.Sites[0].TotalTxnThroughput, baseRes.Sites[0].TotalTxnThroughput)
	}
}

func TestApproxMVAMatchesExact(t *testing.T) {
	wl := workload.MB8(8)
	exactM, _ := wl.Model()
	exactRes, err := core.Solve(exactM)
	if err != nil {
		t.Fatal(err)
	}
	approxM, _ := wl.Model()
	approxM.UseApproxMVA = true
	approxRes, err := core.Solve(approxM)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exactRes.Sites {
		e := exactRes.Sites[i].TotalTxnThroughput
		a := approxRes.Sites[i].TotalTxnThroughput
		if math.Abs(e-a) > 0.1*e {
			t.Errorf("site %d: exact %v vs approx %v", i, e, a)
		}
	}
}

func TestTMSerializationCorrection(t *testing.T) {
	// The optional correction must lower throughput (it adds a delay),
	// by a larger relative amount at n=4 than at n=20 (the TM is busiest
	// when transactions are short), and never by more than a few percent
	// at the paper's parameters.
	drop := func(n int) float64 {
		wl := workload.MB8(n)
		off, err := wl.Model()
		if err != nil {
			t.Fatal(err)
		}
		offRes, err := core.Solve(off)
		if err != nil {
			t.Fatal(err)
		}
		wl.ModelTMSerialization = true
		on, err := wl.Model()
		if err != nil {
			t.Fatal(err)
		}
		onRes, err := core.Solve(on)
		if err != nil {
			t.Fatal(err)
		}
		if onRes.Sites[0].Chains[core.LRO].TMWaitDemand <= 0 {
			t.Fatal("TM wait demand not populated with correction on")
		}
		if offRes.Sites[0].Chains[core.LRO].TMWaitDemand != 0 {
			t.Fatal("TM wait demand leaked into the uncorrected model")
		}
		return 1 - onRes.Sites[0].TotalTxnThroughput/offRes.Sites[0].TotalTxnThroughput
	}
	d4, d20 := drop(4), drop(20)
	if d4 <= 0 {
		t.Fatalf("correction must lower throughput at n=4, got drop %v", d4)
	}
	if d4 < d20 {
		t.Fatalf("correction should matter more at n=4 (%v) than n=20 (%v)", d4, d20)
	}
	if d4 > 0.1 {
		t.Fatalf("correction implausibly large at n=4: %v", d4)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := core.Solve(&core.Model{}); err == nil {
		t.Error("empty model must fail")
	}
	bad := &core.Model{Sites: []*core.Site{{
		Granules: 100, RecordsPerGranule: 6, DiskTime: 28,
		Chains: map[core.Type]*core.Chain{
			core.DROC: {Type: core.DROC, Population: 1, Local: 2, Remote: 2,
				RecordsPerRequest: 4, SlaveSites: []int{5}},
		},
	}}}
	if _, err := core.Solve(bad); err == nil {
		t.Error("coordinator with invalid slave site must fail")
	}
	noChains := &core.Model{Sites: []*core.Site{{
		Granules: 100, RecordsPerGranule: 6, DiskTime: 28,
		Chains: map[core.Type]*core.Chain{},
	}}}
	if _, err := core.Solve(noChains); err == nil {
		t.Error("model without chains must fail")
	}
}

func TestWorkloadNames(t *testing.T) {
	cases := map[core.Type]string{
		core.LRO: "LRO", core.LU: "LU",
		core.DROC: "DRO", core.DROS: "DRO",
		core.DUC: "DU", core.DUS: "DU",
	}
	for ty, want := range cases {
		if got := ty.WorkloadName(); got != want {
			t.Errorf("%v.WorkloadName() = %q, want %q", ty, got, want)
		}
	}
}

func TestThroughputOf(t *testing.T) {
	res := solve(t, "MB4", 8)
	s := res.Sites[0]
	// ThroughputOf("DU") must equal the DUC chain alone (slaves excluded).
	if got, want := s.ThroughputOf("DU"), s.Chains[core.DUC].Throughput; got != want {
		t.Fatalf("ThroughputOf(DU) = %v, want DUC's %v", got, want)
	}
	if got := s.ThroughputOf("LRO"); got != s.Chains[core.LRO].Throughput {
		t.Fatalf("ThroughputOf(LRO) = %v", got)
	}
	if got := s.ThroughputOf("nope"); got != 0 {
		t.Fatalf("unknown name throughput = %v", got)
	}
	// Per-node totals match the summed map.
	var sum float64
	for _, name := range []string{"LRO", "LU", "DRO", "DU"} {
		sum += s.ThroughputOf(name)
	}
	if diff := sum - s.TotalTxnThroughput; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("per-type sum %v != total %v", sum, s.TotalTxnThroughput)
	}
}

func TestMultiCPUSiteModel(t *testing.T) {
	// Doubling CPUs in a CPU-bound regime (buffer pool absorbing reads)
	// must raise model throughput.
	wl := workload.LB8(8)
	wl.BufferHitRatio = 0.9
	wl.LogDisks = wl.DBDisks // separate log
	single, err := wl.Model()
	if err != nil {
		t.Fatal(err)
	}
	singleRes, err := core.Solve(single)
	if err != nil {
		t.Fatal(err)
	}
	wl.CPUs = 2
	dual, err := wl.Model()
	if err != nil {
		t.Fatal(err)
	}
	dualRes, err := core.Solve(dual)
	if err != nil {
		t.Fatal(err)
	}
	if dualRes.Sites[0].TotalTxnThroughput <= singleRes.Sites[0].TotalTxnThroughput {
		t.Fatalf("dual CPU should beat single: %v vs %v",
			dualRes.Sites[0].TotalTxnThroughput, singleRes.Sites[0].TotalTxnThroughput)
	}
	if u := dualRes.Sites[0].CPUUtilization; u > 1 {
		t.Fatalf("per-processor utilization %v > 1", u)
	}
}

func TestEthernetAlphaModelConverges(t *testing.T) {
	wl := workload.MB4(8)
	wl.EthernetAlpha = true
	m, err := wl.Model()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("Ethernet-coupled model did not converge")
	}
	// The resulting α must be tiny at two-node message rates (the paper's
	// observation) — well under a millisecond.
	if m.Alpha <= 0 || m.Alpha > 1 {
		t.Fatalf("converged alpha = %v ms, want (0, 1]", m.Alpha)
	}
}

func TestTypeHelpers(t *testing.T) {
	if !core.LRO.ReadOnly() || core.LU.ReadOnly() || !core.DROS.ReadOnly() {
		t.Fatal("ReadOnly wrong")
	}
	if core.DROC.Counterpart() != core.DROS || core.DUS.Counterpart() != core.DUC {
		t.Fatal("Counterpart wrong")
	}
	if core.LRO.Counterpart() != core.LRO {
		t.Fatal("local counterpart wrong")
	}
	if !core.DUC.Coordinator() || !core.DUS.Slave() || core.LU.Distributed() {
		t.Fatal("role helpers wrong")
	}
	if len(core.Types()) != core.NumTypes {
		t.Fatal("Types() wrong")
	}
}
