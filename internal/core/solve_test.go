package core_test

import (
	"math"
	"strings"
	"testing"

	"carat/internal/core"
)

// divergentModel passes validation (an infinite disk time is not <= 0) but
// cannot converge: every cycle time is +Inf from the first iteration. Before
// the solver checked for non-finite iterates this "converged" silently —
// NaN/Inf relative deltas compare false against every threshold — and
// assembled garbage.
func divergentModel() *core.Model {
	return &core.Model{Sites: []*core.Site{{
		Granules: 100, RecordsPerGranule: 6, DiskTime: math.Inf(1),
		Chains: map[core.Type]*core.Chain{
			core.LRO: {
				Type: core.LRO, Population: 2, Local: 4, RecordsPerRequest: 4,
				UCPU: 7.8, TMCPU: 8, DMCPU: 5.4, LRCPU: 2.2, DMIOCPU: 1.5,
				InitCPU: 21.4, CommitCPU: 8, CommitOps: 1, AbortCPU: 5.4, UnlockCPU: 2,
			},
		},
	}}}
}

func TestSolveDetectsDivergence(t *testing.T) {
	m := divergentModel()
	res, err := core.Solve(m)
	if err == nil {
		t.Fatalf("divergent model solved silently: %+v", res.Sites[0].Chains[core.LRO])
	}
	for _, want := range []string{"diverged", "residual", "damping"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("divergence error %q does not mention %q", err, want)
		}
	}
}

func TestSolveRestoresDampingAfterRetry(t *testing.T) {
	m := divergentModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	want := m.Damping
	if _, err := core.Solve(m); err == nil {
		t.Fatal("divergent model solved silently")
	}
	if m.Damping != want {
		t.Errorf("Damping = %v after failed solve, want %v restored", m.Damping, want)
	}
}
