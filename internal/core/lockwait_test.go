package core

import (
	"math"
	"testing"

	"carat/internal/rng"
)

// TestExpectedLocksAtAbortMonteCarlo validates Eq. 11 against direct
// simulation of its own model: each of Nlk lock requests independently
// kills the transaction with probability x; given it died, count the locks
// acquired before death.
func TestExpectedLocksAtAbortMonteCarlo(t *testing.T) {
	r := rng.New(17)
	for _, tc := range []struct {
		nlk int
		x   float64
	}{
		{10, 0.05},
		{32, 0.01},
		{80, 0.02},
		{5, 0.3},
	} {
		var sum float64
		var deaths int
		for trial := 0; trial < 400_000; trial++ {
			for i := 0; i < tc.nlk; i++ {
				if r.Bool(tc.x) {
					sum += float64(i)
					deaths++
					break
				}
			}
		}
		if deaths < 1000 {
			t.Fatalf("nlk=%d x=%v: only %d deaths sampled", tc.nlk, tc.x, deaths)
		}
		mc := sum / float64(deaths)
		analytic := expectedLocksAtAbort(float64(tc.nlk), tc.x)
		if math.Abs(mc-analytic) > 0.03*analytic+0.05 {
			t.Errorf("nlk=%d x=%v: Monte Carlo %v vs Eq.11 %v", tc.nlk, tc.x, mc, analytic)
		}
	}
}

func TestExpectedLocksAtAbortLimits(t *testing.T) {
	// x -> 0: uniform over the request sequence, E[Y] -> (Nlk-1)/2.
	if got := expectedLocksAtAbort(21, 0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("zero-x limit = %v, want 10", got)
	}
	// x -> 1: death on the first request, no locks held.
	if got := expectedLocksAtAbort(21, 0.999999); got > 0.01 {
		t.Fatalf("x->1 limit = %v, want ~0", got)
	}
	if expectedLocksAtAbort(0, 0.1) != 0 {
		t.Fatal("zero locks must give zero")
	}
	if expectedLocksAtAbort(10, 1) != 0 {
		t.Fatal("x=1 must give zero")
	}
	// Monotone decreasing in x.
	prev := math.Inf(1)
	for _, x := range []float64{1e-6, 1e-4, 0.01, 0.1, 0.5} {
		got := expectedLocksAtAbort(40, x)
		if got > prev {
			t.Fatalf("E[Y] not decreasing at x=%v", x)
		}
		prev = got
	}
}

func TestBlocksMatrix(t *testing.T) {
	// Readers block only on writers; writers block on everyone (Eq. 15).
	for _, reader := range []Type{LRO, DROC, DROS} {
		for _, other := range Types() {
			want := other.Update()
			if got := blocks(reader, other); got != want {
				t.Errorf("blocks(%v, %v) = %v, want %v", reader, other, got, want)
			}
		}
	}
	for _, writer := range []Type{LU, DUC, DUS} {
		for _, other := range Types() {
			if !blocks(writer, other) {
				t.Errorf("blocks(%v, %v) = false, want true", writer, other)
			}
		}
	}
}

func TestBlockingRatioFormula(t *testing.T) {
	// Eq. 19: BR = (2N+1)/(6N); at N=1 it is 1/2, tending to 1/3.
	if got := blockingRatio(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("BR(1) = %v", got)
	}
	if got := blockingRatio(1e9); math.Abs(got-1.0/3) > 1e-6 {
		t.Fatalf("BR(inf) = %v", got)
	}
	if blockingRatio(0) != 0 {
		t.Fatal("BR(0) must be 0")
	}
}

func TestCongestionAndClamp(t *testing.T) {
	if congestion(0) != 1 {
		t.Fatal("congestion(0) must be 1")
	}
	if congestion(0.5) != 2 {
		t.Fatal("congestion(0.5) must be 2")
	}
	if got := congestion(0.99); got != congestion(2) {
		t.Fatalf("congestion must clamp at 0.95: %v", got)
	}
	if congestion(-1) != 1 {
		t.Fatal("negative utilization must clamp to 0")
	}
	if clamp01(-0.5) != 0 || clamp01(1.5) != 1 || clamp01(0.25) != 0.25 {
		t.Fatal("clamp01 wrong")
	}
}
