package core

import "math"

// This file implements the lock-wait submodel of Section 5.4: the average
// number of locks held (Eqs. 11–14), the blocking probabilities (Eqs.
// 15–17), the two-cycle deadlock approximation (Section 5.4.3), and the
// blocking time (Eqs. 18–20).

// expectedLocksAtAbort returns E[Y] of Eq. 11: the expected number of
// locks held when a transaction is aborted, under the truncated-geometric
// model where each of the Nlk lock requests independently dies with
// probability x = Pb·Pd. As x -> 0 this tends to (Nlk-1)/2 (uniform over
// the request sequence).
func expectedLocksAtAbort(nlk, x float64) float64 {
	if nlk <= 0 {
		return 0
	}
	if x < 1e-12 {
		return (nlk - 1) / 2
	}
	if x >= 1 {
		return 0
	}
	q := 1 - x
	qn := math.Pow(q, nlk)
	return q/x - nlk*qn/(1-qn)
}

// blockers returns whether chain type s can block a lock request of chain
// type t: shared requests are blocked only by exclusive holders; exclusive
// requests are blocked by any holder (Eq. 15's two cases).
func blocks(t, s Type) bool { return t.Update() || s.Update() }

// lockHeldWeight returns Σ over blocking chains s of N(s,i)·L_h(s,i),
// minus the requester's own single-transaction contribution when it is in
// the blocking set — the numerator of Eq. 15.
func (st *solverState) lockHeldWeight(i int, t Type) float64 {
	var w float64
	for _, s := range st.chainsAt(i) {
		if !blocks(t, s.c.Type) {
			continue
		}
		w += float64(s.c.Population) * s.Lh
		if s.c.Type == t {
			w -= s.Lh
		}
	}
	if w < 0 {
		w = 0
	}
	return w
}

// pbOf computes Eq. 15: the probability one lock request of a type-t
// transaction at site i is blocked, clamped to [0, maxPb].
func (st *solverState) pbOf(i int, t Type) float64 {
	ng := float64(st.m.Sites[i].Granules)
	pb := st.lockHeldWeight(i, t) / ng
	if pb < 0 {
		pb = 0
	}
	if pb > maxPb {
		pb = maxPb
	}
	return pb
}

// pbBetween computes PB(t,s,i) of Eq. 17: the probability the blocker is a
// type-s transaction, given a type-t request blocked at site i.
func (st *solverState) pbBetween(i int, t Type, s *chainState) float64 {
	if !blocks(t, s.c.Type) {
		return 0
	}
	total := st.lockHeldWeight(i, t)
	if total <= 0 {
		return 0
	}
	w := float64(s.c.Population) * s.Lh
	if s.c.Type == t {
		w -= s.Lh
	}
	if w < 0 {
		w = 0
	}
	return w / total
}

// blockingRatio returns BR(t) of Eq. 19 — the fraction of its execution
// time during which a transaction's locks block a conflicting request,
// approximately 1/3 (the paper measured 0.23–0.41).
func blockingRatio(nlk float64) float64 {
	if nlk <= 0 {
		return 0
	}
	return (2*nlk + 1) / (6 * nlk)
}

// lockWaitTime computes R_LW(t,i) of Eq. 20: the mean blocked time per
// lock wait, as the PB-weighted mean of RLT(s,i) = BR(s)·R(s,i) (Eq. 18)
// over the possible blockers.
//
// Eq. 18's R is the blocker's execution time. Feeding the blocker's full
// execution time back in diverges at high contention (the blocker's time
// is itself mostly lock wait, which is itself this quantity), so R here is
// the blocker's non-waiting execution time per submission, and waiting
// chains are reintroduced with a bounded cascade factor 1/(1-Pw): with
// probability Pw the blocker is itself blocked and the wait extends by
// another blocking period. This keeps Eq. 18's BR·R form at low contention
// (where D_LW ≈ 0 and the factor is ≈ 1) and stays finite at n = 20.
func (st *solverState) lockWaitTime(i int, t Type) float64 {
	var r float64
	for _, s := range st.chainsAt(i) {
		pb := st.pbBetween(i, t, s)
		if pb == 0 {
			continue
		}
		useful := s.Rexec - s.DLW/s.Ns
		if useful < 0 {
			useful = 0
		}
		cascade := 1 / (1 - math.Min(s.Pw, maxCascadeOccupancy))
		r += pb * blockingRatio(s.Nlk) * useful * cascade
	}
	return r
}

// maxCascadeOccupancy bounds the wait-chain amplification: deadlock
// detection resolves long chains, so the effective blocked fraction seen
// through a chain is capped.
const maxCascadeOccupancy = 0.75

// blockedShareOf returns the probability that, given a type-s transaction
// at site i is blocked, its blocker is one specific type-t transaction
// whose time-average held locks are lhT. Zero when t cannot block s.
func (st *solverState) blockedShareOf(i int, s *chainState, t Type, lhT float64) float64 {
	if !blocks(s.c.Type, t) {
		return 0
	}
	total := st.lockHeldWeight(i, s.c.Type)
	if total <= 0 {
		return 0
	}
	share := lhT / total
	if share > 1 {
		share = 1
	}
	return share
}

// deadlockProb computes Pd(t,i): the probability a blocked type-t request
// at site i is a deadlock victim, from two-cycle deadlocks only (Section
// 5.4.3). The local term: we blocked on a type-s transaction (PB); a cycle
// closes if that transaction is itself blocked (occupancy D_LW/R) and its
// blocker is specifically us (our L_h share of its blocking weight). The
// global term adds two-cycle deadlocks between two distributed
// transactions: our counterpart at the other site holds locks there, and
// the blocker's counterpart may be blocked on them.
func (st *solverState) deadlockProb(i int, t *chainState) float64 {
	var pd float64
	for _, s := range st.chainsAt(i) {
		pb := st.pbBetween(i, t.c.Type, s)
		if pb == 0 {
			continue
		}
		// Local two-cycle: s blocked here, by us.
		pd += pb * s.Pw * st.blockedShareOf(i, s, t.c.Type, t.Lh)

		// Global two-cycle: both t and s are distributed, and s's
		// counterpart (at site js) is blocked by t's counterpart there.
		if !t.c.Type.Distributed() || !s.c.Type.Distributed() {
			continue
		}
		tcp := st.counterpart(t)
		if tcp == nil {
			continue
		}
		for _, scp := range st.counterparts(s) {
			if scp.site != tcp.site {
				continue
			}
			pd += pb * scp.Pw * st.blockedShareOf(scp.site, scp, tcp.c.Type, tcp.Lh)
		}
	}
	pd *= st.m.DeadlockAdjust
	if pd < 0 {
		pd = 0
	}
	if pd > 1 {
		pd = 1
	}
	return pd
}

// maxPb bounds the blocking probability away from 1 for numerical safety
// under extreme contention.
const maxPb = 0.95
