// Package core implements the paper's contribution: the analytical
// queueing network model of Sections 3–6. Each site is a closed
// multi-chain product-form network (CPU and disk queueing centers; lock
// wait, remote wait, commit wait and user think delay centers) whose
// parameters — blocking probability, deadlock probability, lock wait time,
// remote wait time, commit wait time, resubmission count — are themselves
// functions of the network's solution. The model is therefore solved by a
// damped fixed-point iteration, each step of which runs exact Mean Value
// Analysis on every site (Section 6).
//
// Equation references throughout this package are to the paper.
package core

import (
	"fmt"

	"carat/internal/phase"
)

// Type enumerates the model's six transaction chain types (Section 4.2):
// the four workload types, with distributed types split into their
// coordinator and slave halves.
type Type int

const (
	// LRO is a local read-only transaction.
	LRO Type = iota
	// LU is a local update transaction.
	LU
	// DROC is the coordinator half of a distributed read-only transaction.
	DROC
	// DUC is the coordinator half of a distributed update transaction.
	DUC
	// DROS is a distributed read-only slave.
	DROS
	// DUS is a distributed update slave.
	DUS

	// NumTypes is the number of chain types.
	NumTypes = int(DUS) + 1
)

var typeNames = [NumTypes]string{"LRO", "LU", "DROC", "DUC", "DROS", "DUS"}

// String returns the paper's abbreviation.
func (t Type) String() string {
	if t < 0 || int(t) >= NumTypes {
		return fmt.Sprintf("Type(%d)", int(t))
	}
	return typeNames[t]
}

// Types lists all chain types in declaration order.
func Types() []Type {
	out := make([]Type, NumTypes)
	for i := range out {
		out[i] = Type(i)
	}
	return out
}

// WorkloadName returns the workload transaction type this chain belongs
// to: coordinators map back to DRO/DU, local types to themselves, and
// slaves to their transaction's type.
func (t Type) WorkloadName() string {
	switch t {
	case DROC, DROS:
		return "DRO"
	case DUC, DUS:
		return "DU"
	default:
		return t.String()
	}
}

// ReadOnly reports whether the chain requests only shared locks.
func (t Type) ReadOnly() bool { return t == LRO || t == DROC || t == DROS }

// Update reports whether the chain requests exclusive locks.
func (t Type) Update() bool { return !t.ReadOnly() }

// Coordinator reports whether the chain is a distributed coordinator.
func (t Type) Coordinator() bool { return t == DROC || t == DUC }

// Slave reports whether the chain is a distributed slave.
func (t Type) Slave() bool { return t == DROS || t == DUS }

// Distributed reports whether the chain belongs to a distributed
// transaction.
func (t Type) Distributed() bool { return t.Coordinator() || t.Slave() }

// Counterpart returns the matching chain type at the other end of a
// distributed transaction (DROC<->DROS, DUC<->DUS); local types map to
// themselves.
func (t Type) Counterpart() Type {
	switch t {
	case DROC:
		return DROS
	case DUC:
		return DUS
	case DROS:
		return DROC
	case DUS:
		return DUC
	default:
		return t
	}
}

// Chain parameterizes one transaction type at one site — the model's
// N(t,i) population plus the per-phase resource requirements R_c(t,i)
// (Table 2 basic parameters and the derived phase costs). All times are
// milliseconds.
type Chain struct {
	Type       Type
	Population int // N(t,i)

	// Local and Remote are l(t) and r(t): requests executed at this site
	// and requests shipped to slave sites. Slaves have Remote = 0 and
	// Local equal to the coordinator's r(t).
	Local  int
	Remote int
	// RecordsPerRequest is the records accessed per request (paper: 4).
	RecordsPerRequest int

	// Per-visit CPU requirements by phase.
	UCPU, TMCPU, DMCPU, LRCPU, DMIOCPU      float64
	InitCPU, CommitCPU, AbortCPU, UnlockCPU float64

	// DMIOOps is disk operations per granule access (1 read-only,
	// 3 update: read + journal write + in-place write). CommitOps is
	// force-written log records at this site per commit (TCIO).
	DMIOOps   int
	CommitOps int

	// ThinkTime is R_UT.
	ThinkTime float64

	// Topology for distributed chains. Coordinators name their slave
	// sites; slaves name their coordinator's site. Ignored for local
	// types.
	SlaveSites []int
	CoordSite  int
}

// N returns the chain's total requests n(t) = l + r.
func (c *Chain) N() int { return c.Local + c.Remote }

// Site describes one site's database and devices.
type Site struct {
	Granules          int     // Ng
	RecordsPerGranule int     // Nb
	DiskTime          float64 // mean block I/O service time on the database disk
	LogDiskTime       float64 // mean log write time (same device unless SeparateLog)
	SeparateLog       bool
	// CPUs is the number of processors at the site: the CPU becomes an
	// m-server center solved with Seidmann's approximation. Default 1.
	CPUs int
	// DiskStripes spreads the database over this many identical disks,
	// each its own queueing center with an equal share of the demand —
	// the paper's "multiple DISK queueing centers can be used to
	// represent multiple disks for the database" (Section 4). Default 1.
	DiskStripes int
	// BufferHitRatio lets a fraction of granule reads skip the disk
	// (database-buffering extension; the paper's testbed has 0).
	BufferHitRatio float64

	Chains map[Type]*Chain
}

// Model is the full input: one Site Processing Model per site plus the
// communication delay and solver controls.
type Model struct {
	Sites []*Site
	// Alpha is the mean one-way inter-site message delay (the paper's α;
	// negligible on the measured two-node Ethernet).
	Alpha float64
	// AlphaModel, when non-nil, is the low-level Communication Network
	// Model of Section 3: each iteration feeds the current inter-site
	// message rate (messages per ms across all sites) back into the
	// network model, which returns the α to use next — e.g. the
	// Almes–Lazowska Ethernet model under load. Alpha then serves as the
	// starting value.
	AlphaModel func(messagesPerMS float64) float64
	// DeadlockAdjust calibrates the two-cycle deadlock approximation; the
	// paper notes an adjusting factor can be measured per workload.
	// Default 1.
	DeadlockAdjust float64
	// InflateCW inflates commit-wait service times by the target site's
	// congestion (1/(1-U)), approximating queueing inside the 2PC delays.
	InflateCW bool

	// IncludeTMSerialization adds the TM-server serialization delay the
	// paper deliberately ignores (Section 5.5, which notes the reduction
	// technique of [JACO83] "can be applied if the serialization delay is
	// to be taken into account"). The TM critical section's holding time
	// is its CPU burst inflated by CPU congestion; each TM visit then
	// queues for the mutex with an M/M/1-style wait U·S/(1-U). The
	// correction matters most at small transaction sizes, where the paper
	// reports its model's largest deviations.
	IncludeTMSerialization bool

	// Solver controls.
	Tol     float64 // convergence tolerance on throughput (default 1e-8)
	MaxIter int     // iteration cap (default 500)
	Damping float64 // new-value weight in (0,1] (default 0.5)
	// UseApproxMVA switches the per-site solver to Schweitzer–Bard,
	// needed when populations are too large for exact MVA.
	UseApproxMVA bool
}

// Validate checks structural consistency and fills solver defaults.
func (m *Model) Validate() error {
	if len(m.Sites) == 0 {
		return fmt.Errorf("core: no sites")
	}
	for i, s := range m.Sites {
		if s.Granules <= 0 || s.RecordsPerGranule <= 0 {
			return fmt.Errorf("core: site %d layout invalid", i)
		}
		if s.DiskTime <= 0 {
			return fmt.Errorf("core: site %d disk time invalid", i)
		}
		if s.LogDiskTime == 0 {
			s.LogDiskTime = s.DiskTime
		}
		if s.BufferHitRatio < 0 || s.BufferHitRatio >= 1 {
			return fmt.Errorf("core: site %d buffer hit ratio %v out of [0,1)", i, s.BufferHitRatio)
		}
		if s.DiskStripes == 0 {
			s.DiskStripes = 1
		}
		if s.CPUs == 0 {
			s.CPUs = 1
		}
		if s.CPUs < 0 {
			return fmt.Errorf("core: site %d negative CPU count", i)
		}
		if s.DiskStripes < 0 {
			return fmt.Errorf("core: site %d negative disk stripes", i)
		}
		for ty, c := range s.Chains {
			if c.Type != ty {
				return fmt.Errorf("core: site %d chain %v keyed as %v", i, c.Type, ty)
			}
			if c.Population < 0 {
				return fmt.Errorf("core: site %d chain %v negative population", i, ty)
			}
			if c.Population == 0 {
				continue
			}
			if c.Local < 0 || c.Remote < 0 || c.N() == 0 {
				return fmt.Errorf("core: site %d chain %v has no requests", i, ty)
			}
			if ty.Slave() && c.Remote != 0 {
				return fmt.Errorf("core: site %d slave chain %v has remote requests", i, ty)
			}
			if ty.Coordinator() {
				if c.Remote == 0 {
					return fmt.Errorf("core: site %d coordinator %v has no remote requests", i, ty)
				}
				if len(c.SlaveSites) == 0 {
					return fmt.Errorf("core: site %d coordinator %v has no slave sites", i, ty)
				}
				for _, j := range c.SlaveSites {
					if j < 0 || j >= len(m.Sites) || j == i {
						return fmt.Errorf("core: site %d coordinator %v slave site %d invalid", i, ty, j)
					}
					sc := m.Sites[j].Chains[ty.Counterpart()]
					if sc == nil || sc.Population == 0 {
						return fmt.Errorf("core: site %d coordinator %v has no %v chain at slave site %d",
							i, ty, ty.Counterpart(), j)
					}
				}
			}
			if ty.Slave() {
				j := c.CoordSite
				if j < 0 || j >= len(m.Sites) || j == i {
					return fmt.Errorf("core: site %d slave %v coordinator site %d invalid", i, ty, j)
				}
				cc := m.Sites[j].Chains[ty.Counterpart()]
				if cc == nil || cc.Population == 0 {
					return fmt.Errorf("core: site %d slave %v has no coordinator chain at site %d", i, ty, j)
				}
			}
			if c.RecordsPerRequest <= 0 {
				return fmt.Errorf("core: site %d chain %v records per request invalid", i, ty)
			}
		}
	}
	if m.DeadlockAdjust == 0 {
		m.DeadlockAdjust = 1
	}
	if m.Tol <= 0 {
		m.Tol = 1e-8
	}
	if m.MaxIter <= 0 {
		m.MaxIter = 500
	}
	if m.Damping <= 0 || m.Damping > 1 {
		m.Damping = 0.5
	}
	return nil
}

// ChainResult reports the model's predictions for one chain at one site.
type ChainResult struct {
	Type       Type
	Population int

	// Throughput is the commit rate in transactions per ms.
	Throughput float64
	// CycleTime is the full commit-to-commit cycle N/X in ms.
	CycleTime float64
	// ResponseTime is the user response time R(t,i): cycle minus the
	// final think, including aborted executions.
	ResponseTime float64

	// The converged model quantities.
	Pb, Pd, Pra, Pa float64
	Ns              float64 // submissions per commit, Eq. 4
	Nlk             float64 // locks requested per execution, Eq. 2
	Plw             float64 // probability of blocking at least once, Eq. 16
	BR              float64 // blocking ratio (2Nlk+1)/(6Nlk), Eq. 19
	Lh              float64 // time-average locks held, Eq. 14
	RLW             float64 // mean lock wait per blocked request, Eq. 20
	RRW             float64 // mean remote wait per visit, Eqs. 21–24
	RCW             float64 // mean two-phase-commit wait per commit

	// Demands per commit cycle at the site's centers (Eqs. 5–10).
	CPUDemand, DiskDemand, LogDemand       float64
	LWDemand, RWDemand, CWDemand, UTDemand float64
	// TMWaitDemand is the optional TM-serialization delay per cycle
	// (zero unless Model.IncludeTMSerialization).
	TMWaitDemand float64
	// DiskOps is the expected disk operations per commit cycle.
	DiskOps float64
	// Visits are the converged per-execution phase visit counts (Eq. 1).
	Visits [phase.NumPhases]float64
}

// SiteResult aggregates one site.
type SiteResult struct {
	Chains map[Type]*ChainResult

	// CPUUtilization and DiskUtilization are the queueing-center busy
	// fractions; DiskIORate is block I/Os per ms (database plus log).
	CPUUtilization     float64
	DiskUtilization    float64
	LogDiskUtilization float64
	DiskIORate         float64

	// TotalTxnThroughput sums local and coordinator chains (commits/ms) —
	// the tables' TR-XPUT, assigned to the transaction's home site.
	TotalTxnThroughput float64
	// RecordThroughput is the normalized throughput of Figures 5 and 8:
	// Σ X(t,i) · n(t) · records-per-request over home chains, records/ms.
	RecordThroughput float64
}

// ThroughputOf returns the commit rate (per ms) of the workload type named
// by its paper abbreviation ("LRO", "LU", "DRO", "DU"), summing the
// non-slave chains that map to it.
func (s *SiteResult) ThroughputOf(workloadName string) float64 {
	var x float64
	for ty, cr := range s.Chains {
		if ty.Slave() {
			continue
		}
		if ty.WorkloadName() == workloadName {
			x += cr.Throughput
		}
	}
	return x
}

// Result is the converged model solution.
type Result struct {
	Sites      []*SiteResult
	Iterations int
	Converged  bool
}
