package core_test

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"carat/internal/core"
	"carat/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden model snapshot")

// modelGolden pins the solver's exact converged outputs for the MB8 sweep:
// any change to the iteration, the submodels or the MVA shows up here.
type modelGolden struct {
	// Per n, per site: total TR-XPUT (txn/ms), CPU util, DIO rate, and
	// the LU chain's Pa.
	Points map[string][]goldenSite `json:"points"`
}

type goldenSite struct {
	X    float64 `json:"x"`
	CPU  float64 `json:"cpu"`
	DIO  float64 `json:"dio"`
	PaLU float64 `json:"paLU"`
}

func takeModelSnapshot(t *testing.T) modelGolden {
	t.Helper()
	snap := modelGolden{Points: map[string][]goldenSite{}}
	for _, n := range []int{4, 12, 20} {
		m, err := workload.MB8(n).Model()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Solve(m)
		if err != nil {
			t.Fatal(err)
		}
		key := map[int]string{4: "n4", 12: "n12", 20: "n20"}[n]
		for _, s := range res.Sites {
			snap.Points[key] = append(snap.Points[key], goldenSite{
				X:    s.TotalTxnThroughput,
				CPU:  s.CPUUtilization,
				DIO:  s.DiskIORate,
				PaLU: s.Chains[core.LU].Pa,
			})
		}
	}
	return snap
}

func TestGoldenModelSnapshot(t *testing.T) {
	path := filepath.Join("testdata", "golden_model_mb8.json")
	got := takeModelSnapshot(t)

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden model snapshot rewritten: %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want modelGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for key, ws := range want.Points {
		gs := got.Points[key]
		if len(gs) != len(ws) {
			t.Fatalf("%s: site count changed", key)
		}
		for i := range ws {
			// The solver is deterministic; allow only float round-trip slack.
			check := func(name string, g, w float64) {
				if math.Abs(g-w) > 1e-9*(1+math.Abs(w)) {
					t.Errorf("%s site %d %s drifted: %v, golden %v", key, i, name, g, w)
				}
			}
			check("X", gs[i].X, ws[i].X)
			check("CPU", gs[i].CPU, ws[i].CPU)
			check("DIO", gs[i].DIO, ws[i].DIO)
			check("PaLU", gs[i].PaLU, ws[i].PaLU)
		}
	}
	if t.Failed() {
		t.Log("deliberate solver change? re-pin with: go test ./internal/core -run GoldenModel -update-golden")
	}
}
