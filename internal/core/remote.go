package core

import "math"

// This file implements the distributed couplings: the remote-abort
// probability Pra (the (1-Pra)^r factor of Eq. 3), the remote wait delays
// of Eqs. 21–24, and the two-phase commit delay of Section 5.7.

// remoteAbortProbCoordinator estimates Pra(t): the probability one remote
// request of coordinator chain t ends in an abort because the request's
// slave execution died in a deadlock (local or global) detected at the
// slave site. Each of the request's q lock requests at the slave dies with
// probability Pb_s·Pd_s.
func (st *solverState) remoteAbortProbCoordinator(t *chainState) float64 {
	var worst float64
	for _, s := range st.counterparts(t) {
		p := 1 - math.Pow(1-s.Pb*s.Pd, s.q)
		if p > worst {
			worst = p
		}
	}
	return clamp01(worst)
}

// remoteAbortProbSlave estimates Pra for a slave chain: the probability
// one wait for the next remote request ends with an abort instead, because
// the transaction died elsewhere — at the coordinator's site or at a
// sibling slave. Consistency requires the slave's total survival to match
// the coordinator's survival from non-local causes:
//
//	(1 - Pra_s)^l = (1-Pb_c·Pd_c)^Nlk_c · Π_siblings (1-Pb·Pd)^Nlk
func (st *solverState) remoteAbortProbSlave(s *chainState) float64 {
	coord := st.coordinatorOf(s)
	if coord == nil || s.c.Local == 0 {
		return 0
	}
	survive := math.Pow(1-coord.Pb*coord.Pd, coord.Nlk)
	for _, sib := range st.counterparts(coord) {
		if sib == s {
			continue
		}
		survive *= math.Pow(1-sib.Pb*sib.Pd, sib.Nlk)
	}
	if survive <= 0 {
		return 1
	}
	return clamp01(1 - math.Pow(survive, 1/float64(s.c.Local)))
}

// remoteWaitCoordinator computes Eqs. 21–22: the coordinator's mean wait
// per remote request is two network hops plus the slave-side request
// response time — the slave chain's cycle time with its own remote-wait
// and dormancy components removed, spread over the cycle's remote
// requests.
func (st *solverState) remoteWaitCoordinator(t *chainState) float64 {
	if t.c.Remote == 0 || t.Ns <= 0 {
		return 0
	}
	var sum float64
	for _, s := range st.counterparts(t) {
		busy := s.Rtotal - s.DRW - s.DUT
		if busy < 0 {
			busy = 0
		}
		sum += busy
	}
	return 2*st.m.Alpha + sum/(t.Ns*float64(t.c.Remote))
}

// remoteWaitSlave computes Eqs. 23–24: a slave's mean wait between remote
// requests is the coordinator's cycle time minus the part the coordinator
// spends waiting on this slave and thinking, spread over the slave's
// request visits.
func (st *solverState) remoteWaitSlave(s *chainState) float64 {
	coord := st.coordinatorOf(s)
	if coord == nil || s.c.Local == 0 || s.Ns <= 0 {
		return 0
	}
	f := 1.0
	if n := len(coord.c.SlaveSites); n > 0 {
		f = 1 / float64(n)
	}
	w := coord.Rtotal - coord.DRW*f - coord.DUT
	if w < 0 {
		w = 0
	}
	return w / (s.Ns * float64(s.c.Local))
}

// congestion returns the service-time inflation 1/(1-U) for embedding
// queueing effects into the commit-wait delay approximation, bounded away
// from the singularity.
func congestion(u float64) float64 {
	if u > 0.95 {
		u = 0.95
	}
	if u < 0 {
		u = 0
	}
	return 1 / (1 - u)
}

// commitWaits computes the coordinator's two-phase commit delays of
// Section 5.7. The commit path waits for two slave round trips: the
// PREPARE phase (slave TM + commit processing + any force-written prepare
// record) and the COMMIT phase (slave TM + unlock). The abort path waits
// for one rollback round trip (slave TM + abort processing + undo writes).
// Since slaves work in parallel, each phase takes the slowest slave. With
// Model.InflateCW the slave service times are inflated by the slave site's
// congestion.
func (st *solverState) commitWaits(t *chainState) (rcwc, rcwa float64) {
	slaves := st.counterparts(t)
	if len(slaves) == 0 {
		return 0, 0
	}
	var prepMax, commitMax, abortMax float64
	for _, s := range slaves {
		site := st.m.Sites[s.site]
		cpuInfl, diskInfl := 1.0, 1.0
		if st.m.InflateCW {
			cpuInfl = congestion(st.cpuUtil[s.site])
			diskInfl = congestion(st.logUtil[s.site])
		}
		prep := 2*st.m.Alpha + cpuInfl*(s.c.TMCPU+s.c.CommitCPU) +
			diskInfl*float64(s.c.CommitOps)*site.LogDiskTime
		commit := 2*st.m.Alpha + cpuInfl*(s.c.TMCPU+s.c.UnlockCPU)
		abort := 2*st.m.Alpha + cpuInfl*(s.c.TMCPU+s.c.AbortCPU+s.EY*s.c.DMIOCPU)
		if s.c.Type.Update() {
			abort += diskInfl * s.EY * site.DiskTime
		}
		if prep > prepMax {
			prepMax = prep
		}
		if commit > commitMax {
			commitMax = commit
		}
		if abort > abortMax {
			abortMax = abort
		}
	}
	return prepMax + commitMax, abortMax
}

// slaveCommitWait is the slave-side CWC: the gap between its PREPARE
// acknowledgment and the COMMIT message — two hops plus the coordinator's
// force-written commit record.
func (st *solverState) slaveCommitWait(s *chainState) float64 {
	coord := st.coordinatorOf(s)
	if coord == nil {
		return 0
	}
	site := st.m.Sites[coord.site]
	diskInfl := 1.0
	if st.m.InflateCW {
		diskInfl = congestion(st.logUtil[coord.site])
	}
	return 2*st.m.Alpha + diskInfl*float64(coord.c.CommitOps)*site.LogDiskTime
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
