package core

import (
	"errors"
	"fmt"
	"math"

	"carat/internal/mva"
	"carat/internal/phase"
	"carat/internal/storage"
)

// errDiverged tags a detected divergence of the damped fixed-point
// iteration: a non-finite iterate or a residual still growing long past the
// point where a contracting iteration would have settled.
var errDiverged = errors.New("fixed-point iteration diverged")

// chainState carries the iteration variables for one chain at one site.
type chainState struct {
	site int
	c    *Chain

	q   float64 // granules (I/Os) per request, via Yao's formula
	Nlk float64 // locks per execution at this site, Eq. 2

	// Feedback variables (damped between iterations).
	Pb, Pd, Pra          float64
	Lh                   float64
	RLW, RRW, RCWC, RCWA float64
	RTM                  float64 // TM serialization wait per TM visit

	// Per-iteration derived quantities.
	visits  [phase.NumPhases]float64
	Pa, Ns  float64
	EY, sig float64

	// Demands per commit cycle.
	Dcpu, Ddisk, Dlog       float64
	DLW, DRW, DCW, DUT, DTM float64
	diskOps                 float64

	// MVA outputs.
	X, Rtotal, Rexec, Rs, Rf, Pw float64
}

// solverState is the whole-model iteration state.
type solverState struct {
	m      *Model
	chains []*chainState          // all populated chains
	bySite [][]*chainState        // chains grouped by site
	index  []map[Type]*chainState // site -> type -> state

	cpuUtil, diskUtil, logUtil []float64
}

func newSolverState(m *Model) *solverState {
	st := &solverState{
		m:        m,
		bySite:   make([][]*chainState, len(m.Sites)),
		index:    make([]map[Type]*chainState, len(m.Sites)),
		cpuUtil:  make([]float64, len(m.Sites)),
		diskUtil: make([]float64, len(m.Sites)),
		logUtil:  make([]float64, len(m.Sites)),
	}
	for i, s := range m.Sites {
		st.index[i] = make(map[Type]*chainState)
		for _, ty := range Types() {
			c, ok := s.Chains[ty]
			if !ok || c.Population == 0 {
				continue
			}
			records := s.Granules * s.RecordsPerGranule
			cs := &chainState{
				site: i,
				c:    c,
				q:    storage.Yao(records, s.RecordsPerGranule, c.RecordsPerRequest),
			}
			cs.Nlk = float64(c.Local) * cs.q
			st.chains = append(st.chains, cs)
			st.bySite[i] = append(st.bySite[i], cs)
			st.index[i][ty] = cs
		}
	}
	return st
}

func (st *solverState) chainsAt(i int) []*chainState { return st.bySite[i] }

// counterpart returns the single counterpart chain of a slave (its
// coordinator's chain is returned by coordinatorOf; a slave's counterpart
// is the coordinator chain) or the first counterpart of a coordinator.
func (st *solverState) counterpart(t *chainState) *chainState {
	cps := st.counterparts(t)
	if len(cps) == 0 {
		return nil
	}
	return cps[0]
}

// counterparts returns the chain states at the other end(s) of a
// distributed chain: a coordinator's slave chains, or a slave's
// coordinator chain. Empty for local types.
func (st *solverState) counterparts(t *chainState) []*chainState {
	ty := t.c.Type
	switch {
	case ty.Coordinator():
		var out []*chainState
		for _, j := range t.c.SlaveSites {
			if s, ok := st.index[j][ty.Counterpart()]; ok {
				out = append(out, s)
			}
		}
		return out
	case ty.Slave():
		if c, ok := st.index[t.c.CoordSite][ty.Counterpart()]; ok {
			return []*chainState{c}
		}
	}
	return nil
}

// coordinatorOf returns a slave chain's coordinator state.
func (st *solverState) coordinatorOf(s *chainState) *chainState {
	if !s.c.Type.Slave() {
		return nil
	}
	return st.counterpart(s)
}

// Solve runs the fixed-point iteration of Section 6 and returns the
// converged model predictions. A detected divergence (non-finite iterates,
// or a residual still exploding after many iterations) is retried once at
// half the configured damping before giving up with a descriptive error —
// the standard rescue for an under-damped fixed point.
func Solve(m *Model) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	origDamping, origAlpha := m.Damping, m.Alpha
	res, err := solveOnce(m)
	if err == nil || !errors.Is(err, errDiverged) {
		return res, err
	}
	m.Damping = origDamping / 2
	m.Alpha = origAlpha
	res, retryErr := solveOnce(m)
	m.Damping = origDamping
	if retryErr != nil {
		return nil, fmt.Errorf("%w; retry at damping %v: %v", err, origDamping/2, retryErr)
	}
	return res, nil
}

// solveOnce runs the iteration at the model's current damping, reporting
// divergence through errDiverged.
func solveOnce(m *Model) (*Result, error) {
	st := newSolverState(m)
	if len(st.chains) == 0 {
		return nil, fmt.Errorf("core: no populated chains")
	}

	prevX := make([]float64, len(st.chains))
	converged := false
	iter := 0
	lastDelta := math.NaN()
	for ; iter < m.MaxIter; iter++ {
		if err := st.step(); err != nil {
			if errors.Is(err, errDiverged) {
				return nil, fmt.Errorf("core: iteration %d: %w (last residual %.3g, damping %v)",
					iter, err, lastDelta, m.Damping)
			}
			return nil, fmt.Errorf("core: iteration %d: %w", iter, err)
		}
		var maxDelta float64
		for k, cs := range st.chains {
			d := math.Abs(cs.X-prevX[k]) / (math.Abs(cs.X) + 1e-15)
			if d > maxDelta {
				maxDelta = d
			}
			prevX[k] = cs.X
		}
		for _, cs := range st.chains {
			// A non-finite throughput or cycle time can otherwise "converge"
			// silently: NaN compares false against every threshold.
			if !finite(cs.X) || !finite(cs.Rtotal) {
				return nil, fmt.Errorf(
					"core: iteration %d: %w: %v chain at site %d has X=%v R=%v (residual %.3g, damping %v)",
					iter, errDiverged, cs.c.Type, cs.site, cs.X, cs.Rtotal, maxDelta, m.Damping)
			}
		}
		lastDelta = maxDelta
		if iter > 0 && maxDelta < m.Tol {
			converged = true
			iter++
			break
		}
		if iter >= 50 && maxDelta > 1e6 {
			return nil, fmt.Errorf(
				"core: iteration %d: %w: residual %.3g still growing (tol %v, damping %v)",
				iter, errDiverged, maxDelta, m.Tol, m.Damping)
		}
	}
	return st.assemble(iter, converged), nil
}

// finite reports whether x is neither NaN nor ±Inf.
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// step performs one iteration: visit counts and demands from the current
// feedback variables, per-site MVA, then damped feedback updates.
func (st *solverState) step() error {
	// 1. Visit counts, abort probabilities, demands.
	for _, cs := range st.chains {
		if err := cs.computeVisits(); err != nil {
			return err
		}
		cs.computeDemands(st.m.Sites[cs.site])
		if !finite(cs.Dcpu) || !finite(cs.Ddisk) || !finite(cs.Dlog) ||
			!finite(cs.DLW+cs.DRW+cs.DCW+cs.DUT+cs.DTM) {
			return fmt.Errorf("%w: %v chain at site %d has non-finite demands (cpu %v, disk %v, log %v)",
				errDiverged, cs.c.Type, cs.site, cs.Dcpu, cs.Ddisk, cs.Dlog)
		}
	}

	// 2. Per-site MVA.
	for i := range st.m.Sites {
		if err := st.solveSite(i); err != nil {
			return err
		}
	}

	// 3. Execution-time decomposition and lock-holding estimates.
	for _, cs := range st.chains {
		cs.decomposeTimes()
	}
	// Lh must be updated for all chains before Pb/PB (they couple sites
	// through nothing, but couple chains within a site).
	d := st.m.Damping
	for _, cs := range st.chains {
		newLh := cs.lockHolding()
		cs.Lh = d*newLh + (1-d)*cs.Lh
	}

	// 4. Feedback: blocking, deadlock, remote and commit waits.
	type upd struct {
		pb, pd, pra, rlw, rrw, rcwc, rcwa float64
	}
	updates := make([]upd, len(st.chains))
	for k, cs := range st.chains {
		u := &updates[k]
		u.pb = st.pbOf(cs.site, cs.c.Type)
		u.pd = st.deadlockProb(cs.site, cs)
		u.rlw = st.lockWaitTime(cs.site, cs.c.Type)
		switch {
		case cs.c.Type.Coordinator():
			u.pra = st.remoteAbortProbCoordinator(cs)
			u.rrw = st.remoteWaitCoordinator(cs)
			u.rcwc, u.rcwa = st.commitWaits(cs)
		case cs.c.Type.Slave():
			u.pra = st.remoteAbortProbSlave(cs)
			u.rrw = st.remoteWaitSlave(cs)
			u.rcwc, u.rcwa = st.slaveCommitWait(cs), 0
		}
	}
	for k, cs := range st.chains {
		u := updates[k]
		cs.Pb = d*u.pb + (1-d)*cs.Pb
		cs.Pd = d*u.pd + (1-d)*cs.Pd
		cs.Pra = d*u.pra + (1-d)*cs.Pra
		cs.RLW = d*u.rlw + (1-d)*cs.RLW
		cs.RRW = d*u.rrw + (1-d)*cs.RRW
		cs.RCWC = d*u.rcwc + (1-d)*cs.RCWC
		cs.RCWA = d*u.rcwa + (1-d)*cs.RCWA
	}
	if st.m.IncludeTMSerialization {
		st.updateTMSerialization(d)
	}
	if st.m.AlphaModel != nil {
		newAlpha := st.m.AlphaModel(st.messageRate())
		st.m.Alpha = d*newAlpha + (1-d)*st.m.Alpha
	}
	return nil
}

// messageRate estimates the total inter-site message rate (messages per
// ms): per committed distributed transaction, each remote request costs a
// REMDO and its acknowledgment, initialization adds a DBOPEN round trip
// per slave site, and two-phase commit adds two round trips per slave.
func (st *solverState) messageRate() float64 {
	var rate float64
	for _, cs := range st.chains {
		if !cs.c.Type.Coordinator() {
			continue
		}
		slaves := float64(len(cs.c.SlaveSites))
		perCycle := 2*cs.Ns*float64(cs.c.Remote) + // request/response per submission
			2*slaves + // DBOPEN round trip
			4*slaves // PREPARE and COMMIT round trips
		rate += cs.X * perCycle
	}
	return rate
}

// updateTMSerialization estimates, per site, the wait for the TM server's
// critical section: the mutex is held for the TM CPU burst inflated by CPU
// congestion, visits arrive at rate Σ X·N_s·V_TM, and the M/M/1 wait
// U·S/(1-U) is charged per TM visit as a delay (the paper's Section 5.5
// deviation, made optional).
func (st *solverState) updateTMSerialization(damping float64) {
	for i := range st.m.Sites {
		chains := st.bySite[i]
		if len(chains) == 0 {
			continue
		}
		infl := congestion(st.cpuUtil[i])
		var util, visitRate float64
		for _, cs := range chains {
			hold := cs.c.TMCPU * infl
			rate := cs.X * cs.Ns * cs.visits[phase.TM]
			util += rate * hold
			visitRate += rate
		}
		if util > 0.95 {
			util = 0.95
		}
		var meanHold float64
		if visitRate > 0 {
			// Mean holding time over all visits at the site.
			meanHold = util / visitRate
		}
		wait := util / (1 - util) * meanHold
		for _, cs := range chains {
			cs.RTM = damping*wait + (1-damping)*cs.RTM
		}
	}
}

// computeVisits builds the phase transition matrix for the chain's current
// probabilities and solves Eq. 1. Pa is read off as V_TA (each execution
// ends in exactly one of TC or TA), and N_s follows from Eq. 4.
func (cs *chainState) computeVisits() error {
	pr := phase.Probs{
		L: cs.c.Local, R: cs.c.Remote, Q: cs.q,
		Pb: cs.Pb, Pd: cs.Pd, Pra: cs.Pra,
	}
	var m *phase.Matrix
	var err error
	if cs.c.Type.Slave() {
		m, err = phase.Slave(pr)
	} else {
		m, err = phase.Coordinator(pr)
	}
	if err != nil {
		return err
	}
	cs.visits, err = phase.VisitCounts(m)
	if err != nil {
		return err
	}
	cs.Pa = clamp01(cs.visits[phase.TA])
	if cs.Pa > 0.999 {
		cs.Pa = 0.999
	}
	cs.Ns = 1 / (1 - cs.Pa) // Eq. 4
	x := cs.Pb * cs.Pd
	cs.EY = expectedLocksAtAbort(cs.Nlk, x)
	if cs.Nlk > 0 {
		cs.sigSet(cs.EY / cs.Nlk)
	} else {
		cs.sigSet(0)
	}
	return nil
}

func (cs *chainState) sigSet(s float64) { cs.sig = clamp01(s) }

// computeDemands evaluates Eqs. 5–10: total service demands per commit
// cycle at each center, as N_s times the per-execution demand.
func (cs *chainState) computeDemands(site *Site) {
	v := cs.visits
	c := cs.c
	undoWrites := 0.0
	undoCPU := 0.0
	if c.Type.Update() {
		undoWrites = cs.EY
		undoCPU = cs.EY * c.DMIOCPU
	}
	cpu := v[phase.INIT]*c.InitCPU +
		v[phase.U]*c.UCPU +
		v[phase.TM]*c.TMCPU +
		v[phase.DM]*c.DMCPU +
		v[phase.LR]*c.LRCPU +
		v[phase.DMIO]*c.DMIOCPU +
		v[phase.TC]*c.CommitCPU +
		v[phase.TA]*(c.AbortCPU+undoCPU) +
		v[phase.UL]*c.UnlockCPU
	cs.Dcpu = cs.Ns * cpu

	h := site.BufferHitRatio
	var dbOpsPerGranule, logOpsPerGranule float64
	if c.Type.Update() {
		dbOpsPerGranule = (1 - h) + 1 // read (buffer-absorbable) + in-place write
		logOpsPerGranule = 1          // before-image journal write
	} else {
		dbOpsPerGranule = 1 - h
	}
	dbOps := v[phase.DMIO]*dbOpsPerGranule + v[phase.TAIO]*undoWrites
	logOps := v[phase.DMIO]*logOpsPerGranule + v[phase.TCIO]*float64(c.CommitOps)
	// Ddisk is the database-disk demand; Dlog the log demand. When the
	// log shares the database disk, solveSite folds Dlog into the first
	// stripe.
	cs.Ddisk = cs.Ns * dbOps * site.DiskTime
	cs.Dlog = cs.Ns * logOps * site.LogDiskTime
	cs.diskOps = cs.Ns * (dbOps + logOps)

	cs.DLW = cs.Ns * v[phase.LW] * cs.RLW                          // Eq. 7
	cs.DRW = cs.Ns * v[phase.RW] * cs.RRW                          // Eq. 8
	cs.DCW = cs.Ns * (v[phase.CWC]*cs.RCWC + v[phase.CWA]*cs.RCWA) // Eq. 9
	cs.DUT = cs.Ns * c.ThinkTime                                   // Eq. 10 + final think
	cs.DTM = cs.Ns * v[phase.TM] * cs.RTM                          // TM serialization (optional)
}

// solveSite builds and solves site i's product-form network: CPU and disk
// queueing centers (plus a log-disk center when separate) and one combined
// delay center for LW+RW+CW+UT.
func (st *solverState) solveSite(i int) error {
	chains := st.bySite[i]
	if len(chains) == 0 {
		return nil
	}
	site := st.m.Sites[i]
	stripes := site.DiskStripes
	if stripes < 1 {
		stripes = 1
	}
	// Centers: CPU, one per database stripe, an optional log disk, and
	// one combined delay center.
	nCenters := 1 + stripes + 1
	logIdx := -1
	if site.SeparateLog {
		logIdx = 1 + stripes
		nCenters++
	}
	delayIdx := nCenters - 1
	net := &mva.Network{
		Kinds:       make([]mva.CenterKind, nCenters),
		Demands:     make([][]float64, nCenters),
		Servers:     make([]int, nCenters),
		Populations: make([]int, len(chains)),
	}
	net.Kinds[0] = mva.Queueing // CPU
	if site.CPUs > 1 {
		net.Kinds[0] = mva.MultiServer
		net.Servers[0] = site.CPUs
	}
	for s := 0; s < stripes; s++ {
		net.Kinds[1+s] = mva.Queueing // DB disk stripe
	}
	if logIdx >= 0 {
		net.Kinds[logIdx] = mva.Queueing
	}
	net.Kinds[delayIdx] = mva.Delay
	for c := range net.Demands {
		net.Demands[c] = make([]float64, len(chains))
	}
	for k, cs := range chains {
		net.Populations[k] = cs.c.Population
		net.Demands[0][k] = cs.Dcpu
		for s := 0; s < stripes; s++ {
			net.Demands[1+s][k] = cs.Ddisk / float64(stripes)
		}
		if logIdx >= 0 {
			net.Demands[logIdx][k] = cs.Dlog
		} else {
			// Shared device: the log lives on the first stripe.
			net.Demands[1][k] += cs.Dlog
		}
		net.Demands[delayIdx][k] = cs.DLW + cs.DRW + cs.DCW + cs.DUT + cs.DTM
	}
	var sol *mva.Solution
	var err error
	if st.m.UseApproxMVA {
		sol, err = mva.SolveApprox(net, 1e-10, 0)
	} else {
		sol, err = mva.SolveExact(net)
	}
	if err != nil {
		return err
	}
	for k, cs := range chains {
		cs.X = sol.Throughput[k]
		cs.Rtotal = sol.CycleTime[k]
	}
	st.cpuUtil[i] = sol.Utilization[0]
	var dbU float64
	for s := 0; s < stripes; s++ {
		dbU += sol.Utilization[1+s]
	}
	st.diskUtil[i] = dbU / float64(stripes)
	if logIdx >= 0 {
		st.logUtil[i] = sol.Utilization[logIdx]
	} else {
		st.logUtil[i] = sol.Utilization[1]
	}
	return nil
}

// decomposeTimes splits the cycle into per-submission execution times:
// R_exec (average per submission, excluding think), R_s (successful) and
// R_f = σ·R_s (failed), per Section 5.4.1. It also updates the blocked-
// time occupancy used by the deadlock approximation.
func (cs *chainState) decomposeTimes() {
	if cs.Rtotal <= 0 || cs.Ns <= 0 {
		return
	}
	exec := (cs.Rtotal - cs.DUT) / cs.Ns
	if exec < 0 {
		exec = 0
	}
	cs.Rexec = exec
	denom := cs.Pa*cs.sig + (1 - cs.Pa)
	if denom <= 0 {
		denom = 1
	}
	cs.Rs = exec / denom
	cs.Rf = cs.sig * cs.Rs
	cs.Pw = clamp01(cs.DLW / cs.Rtotal)
}

// lockHolding evaluates Eq. 14 for the time-average number of locks a
// transaction of this chain holds.
func (cs *chainState) lockHolding() float64 {
	if cs.Nlk <= 0 || cs.Rs <= 0 {
		return 0
	}
	think := cs.c.ThinkTime
	num := (1 - (1-cs.sig*cs.sig)*cs.Pa) * cs.Rs
	den := cs.Pa*cs.Rf + (1-cs.Pa)*cs.Rs + think
	if den <= 0 {
		return 0
	}
	lh := cs.Nlk / 2 * num / den
	if lh < 0 {
		lh = 0
	}
	return lh
}

// assemble packages the converged state into a Result.
func (st *solverState) assemble(iters int, converged bool) *Result {
	res := &Result{Iterations: iters, Converged: converged}
	for i, site := range st.m.Sites {
		sr := &SiteResult{Chains: make(map[Type]*ChainResult)}
		for _, cs := range st.bySite[i] {
			cr := &ChainResult{
				Type:         cs.c.Type,
				Population:   cs.c.Population,
				Throughput:   cs.X,
				CycleTime:    cs.Rtotal,
				ResponseTime: cs.Rtotal - cs.c.ThinkTime,
				Pb:           cs.Pb,
				Pd:           cs.Pd,
				Pra:          cs.Pra,
				Pa:           cs.Pa,
				Ns:           cs.Ns,
				Nlk:          cs.Nlk,
				Plw:          1 - math.Pow(1-cs.Pb, cs.Nlk),
				BR:           blockingRatio(cs.Nlk),
				Lh:           cs.Lh,
				RLW:          cs.RLW,
				RRW:          cs.RRW,
				RCW:          cs.RCWC,
				CPUDemand:    cs.Dcpu,
				DiskDemand:   cs.Ddisk,
				LogDemand:    cs.Dlog,
				LWDemand:     cs.DLW,
				RWDemand:     cs.DRW,
				CWDemand:     cs.DCW,
				UTDemand:     cs.DUT,
				TMWaitDemand: cs.DTM,
				DiskOps:      cs.diskOps,
				Visits:       cs.visits,
			}
			sr.Chains[cs.c.Type] = cr
			sr.DiskIORate += cs.X * cs.diskOps
			if !cs.c.Type.Slave() {
				sr.TotalTxnThroughput += cs.X
				sr.RecordThroughput += cs.X * float64(cs.c.N()*cs.c.RecordsPerRequest)
			}
		}
		sr.CPUUtilization = st.cpuUtil[i]
		sr.DiskUtilization = st.diskUtil[i]
		sr.LogDiskUtilization = st.logUtil[i]
		if !site.SeparateLog {
			sr.LogDiskUtilization = st.diskUtil[i]
		}
		res.Sites = append(res.Sites, sr)
	}
	return res
}
