// Package rng provides a small deterministic random number generator with
// the distributions a transaction-workload simulator needs.
//
// The generator is xoshiro256++ seeded through splitmix64, implemented here
// rather than taken from math/rand so that simulation streams are stable
// across Go releases. Independent substreams for different purposes (record
// selection, service times, think times) are derived with Split.
package rng

import "math"

// Rand is a deterministic pseudo-random generator. It is not safe for
// concurrent use; the simulation kernel guarantees single-threaded access.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output. It is
// the recommended seeder for xoshiro generators.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Equal seeds give identical
// streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// A xoshiro state of all zeros is absorbing; splitmix64 cannot produce
	// four zero outputs from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent substream labelled by id. Streams with
// different ids (or from generators with different seeds) are effectively
// uncorrelated.
func (r *Rand) Split(id uint64) *Rand {
	// Mix the parent state with the id through splitmix64.
	st := r.s[0] ^ (r.s[2] << 1) ^ (id * 0x9e3779b97f4a7c15)
	st = splitmix64(&st)
	return New(st ^ id)
}

// SeedStream derives an independent seed for substream id of a base seed,
// without advancing any generator state. It is how the experiment layer
// labels replication streams: SeedStream(base, id) and SeedStream(base, id')
// for id != id' seed effectively uncorrelated generators, and the mapping is
// a pure function of (base, id), so a replication can be reproduced in
// isolation.
func SeedStream(base, id uint64) uint64 {
	return New(base).Split(id).Uint64()
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256++).
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Exp returns an exponential variate with the given mean. A zero or
// negative mean returns 0.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// 1-u is in (0, 1], so the log is finite.
	return -mean * math.Log(1-u)
}

// Uniform returns a uniform variate in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// PermAppend appends a permutation of [0, n) to dst and returns the extended
// slice, drawing identically to Perm but allocating nothing when dst has
// capacity.
func (r *Rand) PermAppend(dst []int, n int) []int {
	base := len(dst)
	for i := 0; i < n; i++ {
		j := r.Intn(i + 1)
		if j == i {
			dst = append(dst, i)
		} else {
			dst = append(dst, dst[base+j])
			dst[base+j] = i
		}
	}
	return dst
}

// SampleInts returns k distinct uniform integers from [0, n) using Floyd's
// algorithm. It panics if k > n.
func (r *Rand) SampleInts(n, k int) []int {
	return r.SampleIntsAppend(make([]int, 0, k), n, k)
}

// SampleIntsAppend appends k distinct uniform integers from [0, n) to dst
// and returns the extended slice. The random draws are identical to
// SampleInts; duplicates are detected by scanning the appended prefix, which
// beats a map for the small k of a per-request sample and allocates nothing
// when dst has capacity.
func (r *Rand) SampleIntsAppend(dst []int, n, k int) []int {
	if k > n {
		panic("rng: sample larger than population")
	}
	base := len(dst)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		for _, x := range dst[base:] {
			if x == t {
				// Values sampled so far came from smaller ranges, so j
				// itself cannot be among them.
				t = j
				break
			}
		}
		dst = append(dst, t)
	}
	return dst
}

// Choice returns a uniform index weighted by w (weights must be
// non-negative with positive sum).
func (r *Rand) Choice(w []float64) int {
	var sum float64
	for _, x := range w {
		if x < 0 {
			panic("rng: negative weight")
		}
		sum += x
	}
	if sum <= 0 {
		panic("rng: weights sum to zero")
	}
	u := r.Float64() * sum
	for i, x := range w {
		u -= x
		if u < 0 {
			return i
		}
	}
	return len(w) - 1
}
