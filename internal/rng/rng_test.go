package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := 0
	a2 := New(42)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide %d/1000 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("substreams collide %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(2)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d: %d, want ~%v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(3)
	const mean, trials = 25.0, 200000
	var sum float64
	for i := 0; i < trials; i++ {
		x := r.Exp(mean)
		if x < 0 {
			t.Fatalf("negative exponential %v", x)
		}
		sum += x
	}
	got := sum / trials
	if math.Abs(got-mean) > 0.5 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
	if New(1).Exp(0) != 0 || New(1).Exp(-3) != 0 {
		t.Fatal("nonpositive mean must yield 0")
	}
}

func TestUniformRange(t *testing.T) {
	r := New(4)
	for i := 0; i < 1000; i++ {
		x := r.Uniform(5, 9)
		if x < 5 || x >= 9 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIntsDistinctAndInRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(100)
		k := r.Intn(n + 1)
		s := r.SampleInts(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIntsCoverage(t *testing.T) {
	// Sampling k=n must return all of [0,n).
	r := New(9)
	s := r.SampleInts(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d missing from full sample %v", i, s)
		}
	}
}

func TestChoiceWeights(t *testing.T) {
	r := New(5)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("ratio = %v, want ~3", ratio)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(6)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %v", got)
	}
}

func TestSeedStream(t *testing.T) {
	// Deterministic: same (base, id) always gives the same seed.
	if SeedStream(42, 7) != SeedStream(42, 7) {
		t.Fatal("SeedStream must be deterministic")
	}
	// Distinct across ids and bases.
	seen := map[uint64]uint64{}
	for id := uint64(0); id < 1000; id++ {
		s := SeedStream(42, id)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SeedStream(42, %d) collides with id %d", id, prev)
		}
		seen[s] = id
	}
	if SeedStream(1, 5) == SeedStream(2, 5) {
		t.Fatal("different bases must give different streams")
	}
	// Streams seeded from different ids must not be correlated.
	a, b := New(SeedStream(9, 1)), New(SeedStream(9, 2))
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams collide %d/1000 times", same)
	}
}
