// Package stats provides the small set of estimators a discrete-event
// simulation needs: sample tallies, time-weighted averages, rates, and
// batch-means confidence intervals.
//
// All estimators are plain values with no locking; the simulation kernel
// guarantees single-threaded access.
package stats

import (
	"fmt"
	"math"
)

// Tally accumulates independent observations (Welford's algorithm) and
// reports count, mean, variance, min and max.
type Tally struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (t *Tally) Add(x float64) {
	t.n++
	if t.n == 1 {
		t.min, t.max = x, x
	} else {
		if x < t.min {
			t.min = x
		}
		if x > t.max {
			t.max = x
		}
	}
	d := x - t.mean
	t.mean += d / float64(t.n)
	t.m2 += d * (x - t.mean)
}

// N returns the number of observations.
func (t *Tally) N() int64 { return t.n }

// Mean returns the sample mean, or 0 with no observations.
func (t *Tally) Mean() float64 { return t.mean }

// Var returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (t *Tally) Var() float64 {
	if t.n < 2 {
		return 0
	}
	return t.m2 / float64(t.n-1)
}

// StdDev returns the sample standard deviation.
func (t *Tally) StdDev() float64 { return math.Sqrt(t.Var()) }

// Min returns the smallest observation, or 0 with none.
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest observation, or 0 with none.
func (t *Tally) Max() float64 { return t.max }

// Sum returns n*mean, the total of all observations.
func (t *Tally) Sum() float64 { return t.mean * float64(t.n) }

// Reset discards all observations.
func (t *Tally) Reset() { *t = Tally{} }

// CI95 returns the two-sided 95% Student-t confidence half-width around
// Mean, treating the observations as independent (appropriate for
// across-replication estimates, where each observation is one independent
// run). It returns +Inf with fewer than two observations.
func (t *Tally) CI95() float64 {
	if t.n < 2 {
		return math.Inf(1)
	}
	return TCrit95(t.n-1) * t.StdDev() / math.Sqrt(float64(t.n))
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..30 degrees
// of freedom.
var tCrit95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCrit95 returns the two-sided 95% Student-t critical value for the given
// degrees of freedom: exact to three decimals for df <= 30, and a smooth
// monotone approximation decaying to the normal value 1.96 beyond that
// (error under 0.5%). Non-positive df returns +Inf.
func TCrit95(df int64) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df <= 30 {
		return tCrit95[df-1]
	}
	return 1.96 + (tCrit95[29]-1.96)*30/float64(df)
}

func (t *Tally) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", t.n, t.Mean(), t.StdDev(), t.min, t.max)
}

// TimeWeighted tracks a piecewise-constant value over simulated time and
// reports its time average (e.g. queue length, number of busy servers).
type TimeWeighted struct {
	value    float64
	lastT    float64
	integral float64
	started  bool
	startT   float64
	maxVal   float64
}

// Set records that the tracked value changed to v at time t. Times must be
// non-decreasing.
func (w *TimeWeighted) Set(v, t float64) {
	if !w.started {
		w.started = true
		w.startT = t
	} else {
		w.integral += w.value * (t - w.lastT)
	}
	w.value = v
	w.lastT = t
	if v > w.maxVal {
		w.maxVal = v
	}
}

// Adjust shifts the tracked value by delta at time t.
func (w *TimeWeighted) Adjust(delta, t float64) { w.Set(w.value+delta, t) }

// Value returns the current value.
func (w *TimeWeighted) Value() float64 { return w.value }

// Max returns the largest value seen.
func (w *TimeWeighted) Max() float64 { return w.maxVal }

// Mean returns the time average over [start, t].
func (w *TimeWeighted) Mean(t float64) float64 {
	if !w.started || t <= w.startT {
		return 0
	}
	return (w.integral + w.value*(t-w.lastT)) / (t - w.startT)
}

// Integral returns the accumulated value-time product up to time t.
func (w *TimeWeighted) Integral(t float64) float64 {
	if !w.started {
		return 0
	}
	return w.integral + w.value*(t-w.lastT)
}

// ResetAt discards history and restarts the integral at time t, keeping the
// current value. Use it to truncate a warm-up transient.
func (w *TimeWeighted) ResetAt(t float64) {
	if !w.started {
		w.started = true
		w.value = 0
	}
	w.integral = 0
	w.startT = t
	w.lastT = t
	w.maxVal = w.value
}

// Counter counts events and reports a rate per unit time.
type Counter struct {
	n      int64
	startT float64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Addn adds k to the counter.
func (c *Counter) Addn(k int64) { c.n += k }

// N returns the event count.
func (c *Counter) N() int64 { return c.n }

// Rate returns events per unit time over [start, t].
func (c *Counter) Rate(t float64) float64 {
	if t <= c.startT {
		return 0
	}
	return float64(c.n) / (t - c.startT)
}

// ResetAt zeroes the count and restarts the observation window at t.
func (c *Counter) ResetAt(t float64) { c.n = 0; c.startT = t }

// WindowedRate estimates an event rate with a batch-means confidence
// interval: simulated time is cut into fixed windows, each window's event
// count is one batch observation, and the windows' scatter gives the
// interval. Empty windows count as zero observations (they matter).
type WindowedRate struct {
	window float64
	start  float64
	cur    float64
	counts Tally
}

// NewWindowedRate starts an estimator at time t with the given window
// length (> 0).
func NewWindowedRate(window, t float64) *WindowedRate {
	if window <= 0 {
		panic("stats: window must be positive")
	}
	return &WindowedRate{window: window, start: t}
}

// advance closes every window that ended at or before time t.
func (w *WindowedRate) advance(t float64) {
	for t >= w.start+w.window {
		w.counts.Add(w.cur)
		w.cur = 0
		w.start += w.window
	}
}

// Add records one event at time t (non-decreasing).
func (w *WindowedRate) Add(t float64) {
	w.advance(t)
	w.cur++
}

// Rate returns the events-per-time estimate over complete windows at time
// t, plus the 95% half-width (normal critical value; +Inf with fewer than
// two complete windows).
func (w *WindowedRate) Rate(t float64) (rate, halfWidth float64) {
	w.advance(t)
	k := w.counts.N()
	if k == 0 {
		return 0, math.Inf(1)
	}
	rate = w.counts.Mean() / w.window
	if k < 2 {
		return rate, math.Inf(1)
	}
	halfWidth = 1.96 * w.counts.StdDev() / math.Sqrt(float64(k)) / w.window
	return rate, halfWidth
}

// Windows returns the number of complete windows observed by the last
// Rate/Add call.
func (w *WindowedRate) Windows() int64 { return w.counts.N() }

// BatchMeans estimates a confidence interval for a steady-state mean by the
// method of nonoverlapping batch means. Observations are grouped into
// batches of fixed size; the batch averages are treated as approximately
// independent.
type BatchMeans struct {
	batchSize int
	cur       Tally
	batches   Tally
}

// NewBatchMeans returns an estimator using the given batch size (>= 1).
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize < 1 {
		panic("stats: batch size must be >= 1")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add records one observation.
func (b *BatchMeans) Add(x float64) {
	b.cur.Add(x)
	if int(b.cur.N()) == b.batchSize {
		b.batches.Add(b.cur.Mean())
		b.cur.Reset()
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.batches.N() }

// Mean returns the grand mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// HalfWidth returns the approximate 95% confidence half-width around Mean,
// using a normal critical value (adequate for >= 10 batches). It returns
// +Inf with fewer than two batches.
func (b *BatchMeans) HalfWidth() float64 {
	k := b.batches.N()
	if k < 2 {
		return math.Inf(1)
	}
	return 1.96 * b.batches.StdDev() / math.Sqrt(float64(k))
}
