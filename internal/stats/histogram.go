package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates observations into geometrically spaced buckets and
// answers quantile queries — the simulator's percentile estimator for
// response times. Buckets grow by a fixed ratio, so relative error is
// bounded by the ratio regardless of scale.
type Histogram struct {
	base    float64 // lower edge of the first bucket
	ratio   float64 // bucket growth factor (> 1)
	counts  []int64
	n       int64
	underlo int64 // observations below base
	sum     float64
	max     float64
}

// NewHistogram creates a histogram covering [base, ∞) with buckets growing
// by ratio (e.g. base=1, ratio=1.1 gives ~5% quantile error).
func NewHistogram(base, ratio float64) *Histogram {
	if base <= 0 || ratio <= 1 {
		panic("stats: histogram needs base > 0 and ratio > 1")
	}
	return &Histogram{base: base, ratio: ratio}
}

// bucketOf returns the bucket index for x >= base.
func (h *Histogram) bucketOf(x float64) int {
	return int(math.Log(x/h.base) / math.Log(h.ratio))
}

// lowerEdge returns bucket i's lower edge.
func (h *Histogram) lowerEdge(i int) float64 {
	return h.base * math.Pow(h.ratio, float64(i))
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum += x
	if x > h.max {
		h.max = x
	}
	if x < h.base {
		h.underlo++
		return
	}
	i := h.bucketOf(x)
	for i >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[i]++
}

// N returns the observation count.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the exact sample mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest observation.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-quantile (0 < q <= 1), accurate to
// one bucket width (a relative error of at most ratio-1). It returns 0
// with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.n)))
	cum := h.underlo
	if cum >= target {
		return h.base
	}
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			// Midpoint of the bucket, geometrically.
			return h.lowerEdge(i) * math.Sqrt(h.ratio)
		}
	}
	return h.max
}

// Merge folds another histogram's observations into h, as if every
// observation behind o had been Added to h directly — the aggregation step
// for histograms filled by parallel replications. Because both histograms
// share the same bucket edges, merging loses nothing: quantile estimates
// keep the one-bucket error bound of a single histogram. Merging histograms
// with different base or ratio would misfile every count, so that panics.
func (h *Histogram) Merge(o *Histogram) {
	if o.base != h.base || o.ratio != h.ratio {
		panic("stats: merging histograms with different bucket geometry")
	}
	for len(h.counts) < len(o.counts) {
		h.counts = append(h.counts, 0)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.underlo += o.underlo
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.counts = h.counts[:0]
	h.n, h.underlo = 0, 0
	h.sum, h.max = 0, 0
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p95=%.4g max=%.4g",
		h.n, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.max)
}

// QuantileOfSorted returns the q-quantile of a sorted sample exactly
// (nearest-rank); a reference implementation for tests and small samples.
func QuantileOfSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if !sort.Float64sAreSorted(sorted) {
		panic("stats: sample not sorted")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}
