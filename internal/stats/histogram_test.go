package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramQuantilesAgainstExact(t *testing.T) {
	f := func(seed int64) bool {
		// Deterministic pseudo-random sample.
		x := uint64(seed)
		next := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return 1 + float64(x>>11)/float64(1<<53)*10_000
		}
		h := NewHistogram(1, 1.05)
		var sample []float64
		for i := 0; i < 2000; i++ {
			v := next()
			h.Add(v)
			sample = append(sample, v)
		}
		sort.Float64s(sample)
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			exact := QuantileOfSorted(sample, q)
			got := h.Quantile(q)
			if math.Abs(got-exact)/exact > 0.06 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 1.1)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %v", h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 45 || p50 > 56 {
		t.Fatalf("p50 = %v, want ~50", p50)
	}
	// Quantile(1) is within a bucket of the max.
	if got := h.Quantile(1); got < 90 || got > 110 {
		t.Fatalf("p100 = %v", got)
	}
	h.Reset()
	if h.N() != 0 || h.Quantile(0.9) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestHistogramBelowBase(t *testing.T) {
	h := NewHistogram(10, 1.5)
	h.Add(1)
	h.Add(2)
	h.Add(100)
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("under-base quantile = %v, want clamped to base", got)
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	for _, tc := range []struct{ base, ratio float64 }{{0, 1.1}, {1, 1}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v) must panic", tc.base, tc.ratio)
				}
			}()
			NewHistogram(tc.base, tc.ratio)
		}()
	}
}

func TestQuantileOfSorted(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if QuantileOfSorted(s, 0.5) != 5 {
		t.Fatalf("median = %v", QuantileOfSorted(s, 0.5))
	}
	if QuantileOfSorted(s, 0) != 1 || QuantileOfSorted(s, 1) != 10 {
		t.Fatal("extremes wrong")
	}
	if QuantileOfSorted(nil, 0.5) != 0 {
		t.Fatal("empty sample")
	}
}

// TestHistogramMergeEquivalence pins the Merge contract: merging histograms
// filled by disjoint shards of a sample is indistinguishable from filling
// one histogram with the whole sample, so the quantile error bound (one
// bucket, i.e. a relative error of at most ratio-1) survives aggregation
// across parallel replications.
func TestHistogramMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		x := uint64(seed)
		next := func() float64 {
			x = x*6364136223846793005 + 1442695040888963407
			return 0.5 + float64(x>>11)/float64(1<<53)*10_000 // some below base
		}
		const shards = 4
		merged := NewHistogram(1, 1.05)
		direct := NewHistogram(1, 1.05)
		var sample []float64
		for s := 0; s < shards; s++ {
			h := NewHistogram(1, 1.05)
			for i := 0; i < 500; i++ {
				v := next()
				h.Add(v)
				direct.Add(v)
				sample = append(sample, v)
			}
			merged.Merge(h)
		}
		// Mean compares with a tiny tolerance: merging sums per-shard
		// subtotals, so the additions round differently than one long chain.
		if merged.N() != direct.N() || merged.Max() != direct.Max() ||
			math.Abs(merged.Mean()-direct.Mean()) > 1e-9*direct.Mean() {
			return false
		}
		sort.Float64s(sample)
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			if merged.Quantile(q) != direct.Quantile(q) {
				return false
			}
			exact := QuantileOfSorted(sample, q)
			if math.Abs(merged.Quantile(q)-exact)/exact > 0.06 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergePanicsOnGeometryMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging histograms with different geometry must panic")
		}
	}()
	NewHistogram(1, 1.1).Merge(NewHistogram(1, 1.05))
}
