package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTallyBasics(t *testing.T) {
	var ta Tally
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		ta.Add(x)
	}
	if ta.N() != 8 {
		t.Fatalf("N = %d", ta.N())
	}
	if ta.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", ta.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if got, want := ta.Var(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Var = %v, want %v", got, want)
	}
	if ta.Min() != 2 || ta.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", ta.Min(), ta.Max())
	}
	if ta.Sum() != 40 {
		t.Fatalf("Sum = %v, want 40", ta.Sum())
	}
}

func TestTallyEmptyAndSingle(t *testing.T) {
	var ta Tally
	if ta.Mean() != 0 || ta.Var() != 0 || ta.StdDev() != 0 {
		t.Fatal("empty tally must report zeros")
	}
	ta.Add(3)
	if ta.Var() != 0 {
		t.Fatal("single observation variance must be 0")
	}
	if ta.Min() != 3 || ta.Max() != 3 {
		t.Fatal("single observation min/max")
	}
}

func TestTallyMeanWithinBounds(t *testing.T) {
	// Property: mean is always within [min, max].
	f := func(xs []float64) bool {
		var ta Tally
		any := false
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue // Welford's m2 update overflows near MaxFloat64
			}
			ta.Add(x)
			any = true
		}
		if !any {
			return true
		}
		return ta.Mean() >= ta.Min()-1e-9*math.Abs(ta.Min()) && ta.Mean() <= ta.Max()+1e-9*math.Abs(ta.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Set(2, 10) // value 0 over [0,10]
	w.Set(4, 20) // value 2 over [10,20]
	// value 4 over [20,30]
	if got := w.Mean(30); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("Mean = %v, want 2 ((0*10+2*10+4*10)/30)", got)
	}
	if w.Max() != 4 {
		t.Fatalf("Max = %v, want 4", w.Max())
	}
	if got := w.Integral(30); got != 60 {
		t.Fatalf("Integral = %v, want 60", got)
	}
}

func TestTimeWeightedAdjustAndReset(t *testing.T) {
	var w TimeWeighted
	w.Set(1, 0)
	w.Adjust(2, 5) // 3 from t=5
	if w.Value() != 3 {
		t.Fatalf("Value = %v", w.Value())
	}
	w.ResetAt(10)
	// After reset the integral restarts but the value persists.
	if got := w.Mean(20); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Mean after reset = %v, want 3", got)
	}
}

func TestTimeWeightedZeroWindow(t *testing.T) {
	var w TimeWeighted
	w.Set(5, 3)
	if w.Mean(3) != 0 {
		t.Fatal("zero-length window must report 0")
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	if c.N() != 10 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.Rate(5); got != 2 {
		t.Fatalf("Rate = %v, want 2", got)
	}
	c.ResetAt(5)
	c.Addn(4)
	if got := c.Rate(7); got != 2 {
		t.Fatalf("Rate after reset = %v, want 2", got)
	}
}

func TestBatchMeans(t *testing.T) {
	b := NewBatchMeans(10)
	for i := 0; i < 100; i++ {
		b.Add(float64(i % 10)) // every batch mean is 4.5
	}
	if b.Batches() != 10 {
		t.Fatalf("Batches = %d", b.Batches())
	}
	if math.Abs(b.Mean()-4.5) > 1e-12 {
		t.Fatalf("Mean = %v", b.Mean())
	}
	if hw := b.HalfWidth(); hw != 0 {
		t.Fatalf("HalfWidth = %v, want 0 for identical batches", hw)
	}
}

func TestWindowedRateDeterministicStream(t *testing.T) {
	// One event every 10 time units, offset to avoid window boundaries:
	// every 100-unit window counts exactly 10, so the rate is 0.1 with
	// zero half-width.
	w := NewWindowedRate(100, 0)
	for i := 0; i < 1000; i++ {
		w.Add(float64(i*10) + 5)
	}
	rate, half := w.Rate(10_000)
	if math.Abs(rate-0.1) > 1e-12 {
		t.Fatalf("rate = %v, want 0.1", rate)
	}
	if half > 1e-12 {
		t.Fatalf("half-width = %v, want 0 for a deterministic stream", half)
	}
	if w.Windows() < 90 {
		t.Fatalf("windows = %d", w.Windows())
	}
}

func TestWindowedRateCountsEmptyWindows(t *testing.T) {
	// Ten events all in the first window, then silence: the rate over ten
	// windows is 1 event per window-length, with wide spread.
	w := NewWindowedRate(10, 0)
	for i := 0; i < 10; i++ {
		w.Add(0.5)
	}
	rate, half := w.Rate(100)
	if math.Abs(rate-0.1) > 1e-12 {
		t.Fatalf("rate = %v, want 0.1 (10 events / 100 time)", rate)
	}
	if half <= 0 || math.IsInf(half, 1) {
		t.Fatalf("half-width = %v, want finite positive", half)
	}
}

func TestWindowedRateFewWindows(t *testing.T) {
	w := NewWindowedRate(100, 0)
	w.Add(5)
	if _, half := w.Rate(50); !math.IsInf(half, 1) {
		t.Fatal("no complete window must give infinite half-width")
	}
}

func TestWindowedRatePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindowedRate(0, 0)
}

func TestBatchMeansFewBatches(t *testing.T) {
	b := NewBatchMeans(5)
	for i := 0; i < 5; i++ {
		b.Add(1)
	}
	if !math.IsInf(b.HalfWidth(), 1) {
		t.Fatal("one batch must give infinite half-width")
	}
}

func TestTCrit95(t *testing.T) {
	cases := []struct {
		df   int64
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {9, 2.262}, {30, 2.042},
	}
	for _, c := range cases {
		if got := TCrit95(c.df); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TCrit95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	if !math.IsInf(TCrit95(0), 1) || !math.IsInf(TCrit95(-3), 1) {
		t.Error("non-positive df must give +Inf")
	}
	// Beyond the table: monotone decreasing toward the normal 1.96.
	prev := TCrit95(30)
	for _, df := range []int64{31, 40, 60, 120, 1000, 1 << 30} {
		got := TCrit95(df)
		if got >= prev || got < 1.96 {
			t.Fatalf("TCrit95(%d) = %v, want in [1.96, %v)", df, got, prev)
		}
		prev = got
	}
	// 120 df is 1.980 in the standard table; the approximation stays close.
	if got := TCrit95(120); math.Abs(got-1.980) > 0.01 {
		t.Errorf("TCrit95(120) = %v, want ~1.980", got)
	}
}

func TestTallyCI95(t *testing.T) {
	var ta Tally
	if !math.IsInf(ta.CI95(), 1) {
		t.Fatal("empty tally must give +Inf half-width")
	}
	ta.Add(5)
	if !math.IsInf(ta.CI95(), 1) {
		t.Fatal("single observation must give +Inf half-width")
	}
	// {2,4,6}: mean 4, sample sd 2, se 2/sqrt(3), t(2) = 4.303.
	var tb Tally
	for _, x := range []float64{2, 4, 6} {
		tb.Add(x)
	}
	want := 4.303 * 2 / math.Sqrt(3)
	if got := tb.CI95(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	// Identical observations: zero-width interval.
	var tc Tally
	for i := 0; i < 5; i++ {
		tc.Add(3.5)
	}
	if got := tc.CI95(); got != 0 {
		t.Fatalf("constant observations CI95 = %v, want 0", got)
	}
}
