package placement

import (
	"strings"
	"testing"
)

func TestParseCanonicalAndAliases(t *testing.T) {
	cases := map[string]Strategy{
		"hash": Hash, "HASH": Hash, " striped ": Hash, "stripe": Hash,
		"range": Range, "shard": Range, "Sharded": Range,
		"locality": Locality, "affinity": Locality, "LOCAL": Locality,
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseUnknownListsValidStrategies(t *testing.T) {
	_, err := Parse("round-robin")
	if err == nil {
		t.Fatal("Parse accepted an unknown strategy")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list strategy %q", err, name)
		}
	}
}

func TestRegistryCoversEveryStrategy(t *testing.T) {
	reg := Registry()
	if len(reg) != len(Names()) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(Names()))
	}
	for i, info := range reg {
		if info.Name != Strategy(i).String() {
			t.Fatalf("registry[%d] = %q, want %q", i, info.Name, Strategy(i))
		}
		if info.Summary == "" {
			t.Fatalf("registry entry %q has no summary", info.Name)
		}
	}
}

func TestNewDirectoryValidation(t *testing.T) {
	if _, err := NewDirectory(Strategy(99), 4, 10); err == nil {
		t.Fatal("accepted an invalid strategy")
	}
	if _, err := NewDirectory(Hash, 1, 10); err == nil {
		t.Fatal("accepted a single-site directory")
	}
	if _, err := NewDirectory(Hash, 4, 0); err == nil {
		t.Fatal("accepted an empty shard")
	}
}

// TestHashStripes checks the hash mapping stripes consecutive granules
// round-robin across sites and that Local ids stay within the shard.
func TestHashStripes(t *testing.T) {
	d, err := NewDirectory(Hash, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < d.Granules(); g++ {
		if got, want := d.Site(g), g%4; got != want {
			t.Fatalf("Site(%d) = %d, want %d", g, got, want)
		}
		if l := d.Local(g); l < 0 || l >= 25 {
			t.Fatalf("Local(%d) = %d outside shard [0,25)", g, l)
		}
	}
}

// TestRangeShards checks range (and locality, which shares the mapping)
// assigns contiguous shards and round-trips Site/Local.
func TestRangeShards(t *testing.T) {
	for _, strat := range []Strategy{Range, Locality} {
		d, err := NewDirectory(strat, 4, 25)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < d.Granules(); g++ {
			if got, want := d.Site(g), g/25; got != want {
				t.Fatalf("%v: Site(%d) = %d, want %d", strat, g, got, want)
			}
			if got, want := d.Local(g), g%25; got != want {
				t.Fatalf("%v: Local(%d) = %d, want %d", strat, g, got, want)
			}
		}
	}
}

// TestDirectoryBalanced checks every strategy assigns exactly
// granulesPerSite granules to every site.
func TestDirectoryBalanced(t *testing.T) {
	for s := Strategy(0); s < numStrategies; s++ {
		d, err := NewDirectory(s, 8, 30)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, 8)
		for g := 0; g < d.Granules(); g++ {
			counts[d.Site(g)]++
		}
		for site, c := range counts {
			if c != 30 {
				t.Fatalf("%v: site %d owns %d granules, want 30", s, site, c)
			}
		}
	}
}

func TestSiteWrapsOutOfRangeGranules(t *testing.T) {
	d, _ := NewDirectory(Hash, 4, 25)
	if got, want := d.Site(d.Granules()+3), d.Site(3); got != want {
		t.Fatalf("wrapped Site = %d, want %d", got, want)
	}
}
