// Package placement is the data-directory subsystem: it maps a global
// granule space onto N home sites through pluggable placement strategies.
// The 1987 testbed hard-wired its data directory for two sites (every
// distributed user named its remote partners by hand in UserSpec.Remotes);
// growing the simulator to 16/64/128 sites needs the directory the paper's
// Section 2 sketches — a mapping from granule to home site that every
// transaction consults to resolve where a request executes.
//
// Three strategies are registered:
//
//   - hash: granule g lives at site g mod N — uniform striping, so a
//     skewed access head is spread evenly across the fleet;
//   - range: the granule space is cut into N contiguous shards — a skewed
//     head concentrates on the low shards' sites;
//   - locality: contiguous shards like range, but the workload layer adds
//     an affinity draw so a configurable fraction of every transaction's
//     accesses stay in the submitting site's own shard and only the rest
//     scatter through the directory.
//
// Parsing is strict, mirroring cc.Parse: unknown names fail with an error
// listing the valid strategies.
package placement

import (
	"fmt"
	"strings"
)

// Strategy enumerates the registered placement strategies.
type Strategy int

const (
	// Hash stripes granules uniformly: granule g homes at site g mod N.
	Hash Strategy = iota
	// Range cuts the global granule space into N contiguous shards.
	Range
	// Locality is Range plus a workload-level affinity draw: each site
	// owns a contiguous shard, and an affinity fraction of every
	// transaction's accesses stay in the submitting site's shard.
	Locality

	numStrategies
)

// String names the strategy as Parse accepts it.
func (s Strategy) String() string {
	switch s {
	case Hash:
		return "hash"
	case Range:
		return "range"
	case Locality:
		return "locality"
	default:
		return fmt.Sprintf("placement(%d)", int(s))
	}
}

// Valid reports whether s names a registered strategy.
func (s Strategy) Valid() bool { return s >= 0 && s < numStrategies }

// Names lists the canonical strategy names, for error messages and CLI
// help.
func Names() []string {
	out := make([]string, numStrategies)
	for s := Strategy(0); s < numStrategies; s++ {
		out[s] = s.String()
	}
	return out
}

// Info describes one registered strategy for CLI help and docs.
type Info struct {
	Name    string
	Summary string
}

// Registry lists every registered strategy with a one-line summary, in
// Strategy order.
func Registry() []Info {
	return []Info{
		{Name: Hash.String(), Summary: "uniform striping: granule g homes at site g mod N"},
		{Name: Range.String(), Summary: "contiguous shards: the granule space is cut into N equal ranges"},
		{Name: Locality.String(), Summary: "contiguous shards plus an affinity draw keeping a configurable fraction of accesses in the home shard"},
	}
}

// Parse resolves a strategy name case-insensitively, accepting the
// canonical names plus common aliases. Unknown names return an error that
// lists the valid strategies.
func Parse(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "hash", "striped", "stripe":
		return Hash, nil
	case "range", "shard", "sharded":
		return Range, nil
	case "locality", "affinity", "local":
		return Locality, nil
	default:
		return 0, fmt.Errorf("placement: unknown strategy %q (valid strategies: %s)",
			name, strings.Join(Names(), ", "))
	}
}

// Directory is the data directory: the resolved granule→site mapping for
// one fleet. It is immutable and safe for concurrent readers.
type Directory struct {
	strategy Strategy
	sites    int
	perSite  int
}

// NewDirectory builds the directory for a fleet of sites, each owning
// granulesPerSite granules of the global space (sites × granulesPerSite
// granules total).
func NewDirectory(strategy Strategy, sites, granulesPerSite int) (Directory, error) {
	if !strategy.Valid() {
		return Directory{}, fmt.Errorf("placement: unknown strategy %d (valid strategies: %s)",
			int(strategy), strings.Join(Names(), ", "))
	}
	if sites < 2 {
		return Directory{}, fmt.Errorf("placement: directory needs at least 2 sites, got %d", sites)
	}
	if granulesPerSite < 1 {
		return Directory{}, fmt.Errorf("placement: directory needs at least 1 granule per site, got %d", granulesPerSite)
	}
	return Directory{strategy: strategy, sites: sites, perSite: granulesPerSite}, nil
}

// Strategy returns the directory's placement strategy.
func (d Directory) Strategy() Strategy { return d.strategy }

// Sites returns the number of home sites.
func (d Directory) Sites() int { return d.sites }

// Granules returns the size of the global granule space.
func (d Directory) Granules() int { return d.sites * d.perSite }

// Site resolves the home site of global granule g. Granules outside the
// global space wrap, so any non-negative granule id resolves.
func (d Directory) Site(g int) int {
	g %= d.Granules()
	if d.strategy == Hash {
		return g % d.sites
	}
	return g / d.perSite
}

// Local translates global granule g to its site-local granule id — the id
// the owning site's lock and disk layers address.
func (d Directory) Local(g int) int {
	g %= d.Granules()
	if d.strategy == Hash {
		return g / d.sites
	}
	return g % d.perSite
}
