package comm

import (
	"testing"

	"carat/internal/sim"
)

func TestEthernetDelayMatchesMean(t *testing.T) {
	e := DefaultEthernet()
	for _, u := range []float64{0, 0.3, 0.7} {
		if e.Delay(200, u) != e.MeanDelay(200, u) {
			t.Fatalf("Ethernet Delay must be deterministic at u=%v", u)
		}
	}
}

func TestZeroAndFixedMeanDelay(t *testing.T) {
	if (ZeroDelay{}).MeanDelay(100, 0.5) != 0 {
		t.Fatal("ZeroDelay mean must be 0")
	}
	if (FixedDelay{D: 3}).MeanDelay(100, 0.9) != 3 {
		t.Fatal("FixedDelay mean must be the constant")
	}
}

func TestNetworkNodesAndUtilization(t *testing.T) {
	e := sim.NewEnv()
	nw := NewNetwork[int](e, 3, DefaultEthernet())
	if nw.Nodes() != 3 {
		t.Fatalf("Nodes = %d", nw.Nodes())
	}
	// Higher configured utilization must lengthen delivery.
	var at []float64
	recv := func(node NodeID) {
		e.Spawn("r", func(p *sim.Proc) {
			if _, err := nw.Inbox(node).Get(p); err == nil {
				at = append(at, p.Now())
			}
		})
	}
	recv(1)
	recv(2)
	e.Spawn("send", func(p *sim.Proc) {
		nw.SetUtilization(0)
		nw.Send(0, 1, 1000, 1)
		nw.SetUtilization(0.9)
		nw.Send(0, 2, 1000, 2)
	})
	e.RunAll()
	if len(at) != 2 {
		t.Fatalf("deliveries = %d", len(at))
	}
	if at[1] <= at[0] {
		t.Fatalf("loaded channel (%v) should deliver later than idle (%v)", at[1], at[0])
	}
}
