package comm

// PartitionMap tracks the current network partition, if any: an assignment
// of sites to disjoint groups such that only same-group sites can exchange
// messages. Sites not named by the split stay in the implicit group -1 and
// remain reachable from everyone — this models a partial partition where a
// subset of links is severed while the rest of the fabric is intact.
//
// The map is a pure reachability oracle: it injects no delay and draws no
// randomness, so holding one that was never Split leaves every behavior of
// the network byte-identical.
type PartitionMap struct {
	group  []int
	active bool
}

// NewPartitionMap creates a map for n sites with no partition in effect.
func NewPartitionMap(n int) *PartitionMap {
	return &PartitionMap{group: make([]int, n)}
}

// Split installs a partition: groups[i] lists the sites in group i. Sites
// appearing in no group are reachable from every site (group -1). A site
// listed twice lands in its last-listed group. Out-of-range sites are
// ignored.
func (m *PartitionMap) Split(groups [][]int) {
	for i := range m.group {
		m.group[i] = -1
	}
	for g, sites := range groups {
		for _, s := range sites {
			if s >= 0 && s < len(m.group) {
				m.group[s] = g
			}
		}
	}
	m.active = true
}

// Heal removes the partition; every pair of sites is reachable again.
func (m *PartitionMap) Heal() {
	m.active = false
}

// Active reports whether a partition is currently in effect.
func (m *PartitionMap) Active() bool { return m != nil && m.active }

// Reachable reports whether a message from site a can reach site b under
// the current partition. Local delivery (a == b) always succeeds, as does
// any pair involving a site outside every named group.
func (m *PartitionMap) Reachable(a, b int) bool {
	if m == nil || !m.active || a == b {
		return true
	}
	ga, gb := m.group[a], m.group[b]
	return ga == -1 || gb == -1 || ga == gb
}
