package comm

import "testing"

// The Ethernet channel as a queueing center: these tests pin the contract
// the scale-out study leans on — contention inflation monotone in host
// count and offered load, minimum-frame padding, and the dedicated-link
// degenerate case.

// TestEthernetInflationMonotoneInHosts checks the contention coefficient
// grows with the number of contending stations: more hosts, more collision
// overhead per packet at the same utilization.
func TestEthernetInflationMonotoneInHosts(t *testing.T) {
	const u = 0.5
	prev := -1.0
	for hosts := 1; hosts <= 256; hosts *= 2 {
		e := DefaultEthernet()
		e.Hosts = hosts
		_, inflation, _ := e.Breakdown(256, u)
		if inflation < prev {
			t.Fatalf("inflation fell from %.6f to %.6f going to %d hosts", prev, inflation, hosts)
		}
		if hosts > 1 && inflation <= prev {
			t.Fatalf("inflation did not grow from %.6f at %d hosts", prev, hosts)
		}
		prev = inflation
	}
	// The host-aware coefficient stays below the legacy saturation
	// constant, which assumed the worst case regardless of fleet size.
	legacy := DefaultEthernet()
	_, legacyInfl, _ := legacy.Breakdown(256, u)
	if prev >= legacyInfl {
		t.Fatalf("256-host inflation %.6f not below legacy saturation %.6f", prev, legacyInfl)
	}
}

// TestEthernetInflationMonotoneInLoad checks both inflation and queueing
// delay grow with offered load at a fixed host count.
func TestEthernetInflationMonotoneInLoad(t *testing.T) {
	e := DefaultEthernet()
	e.Hosts = 16
	prevInfl, prevQ := -1.0, -1.0
	for _, u := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9} {
		_, inflation, queue := e.Breakdown(512, u)
		if inflation <= prevInfl && u > 0 {
			t.Fatalf("inflation not increasing at u=%.1f: %.6f after %.6f", u, inflation, prevInfl)
		}
		if queue <= prevQ && u > 0 {
			t.Fatalf("queueing delay not increasing at u=%.1f: %.6f after %.6f", u, queue, prevQ)
		}
		prevInfl, prevQ = inflation, queue
	}
}

// TestEthernetMinimumFramePadding checks messages below the 512-bit
// minimum frame all cost the same wire time, and the first message above
// it costs more.
func TestEthernetMinimumFramePadding(t *testing.T) {
	e := DefaultEthernet()
	e.Hosts = 8
	// 32 and 64 bytes are both ≤ 512 bits: identical padded transmission.
	raw32, _, _ := e.Breakdown(32, 0.4)
	raw64, _, _ := e.Breakdown(64, 0.4)
	if raw32 != raw64 {
		t.Fatalf("padded frames differ: 32B=%.6f 64B=%.6f", raw32, raw64)
	}
	if want := 512 / e.BandwidthBitsPerMS; raw64 != want {
		t.Fatalf("minimum frame transmission %.6f, want %.6f", raw64, want)
	}
	// 65 bytes = 520 bits crosses the minimum.
	raw65, _, _ := e.Breakdown(65, 0.4)
	if raw65 <= raw64 {
		t.Fatalf("65-byte frame %.6f not above the 512-bit minimum %.6f", raw65, raw64)
	}
}

// TestEthernetSingleHostDegenerates checks a 1-host channel is a dedicated
// link: delay is exactly raw transmission plus propagation at any load.
func TestEthernetSingleHostDegenerates(t *testing.T) {
	e := DefaultEthernet()
	e.Hosts = 1
	for _, u := range []float64{0, 0.5, 0.9} {
		for _, bytes := range []int{32, 256, 4096} {
			want := e.transmission(bytes) + e.Propagation
			if got := e.MeanDelay(bytes, u); got != want {
				t.Fatalf("1-host delay(%dB, u=%.1f) = %.6f, want %.6f", bytes, u, got, want)
			}
		}
	}
}

// TestEthernetLegacyPathUnchanged pins the Hosts==0 delay to the exact
// historical formula — the byte-identity contract of the default build.
func TestEthernetLegacyPathUnchanged(t *testing.T) {
	e := DefaultEthernet()
	for _, u := range []float64{0, 0.3, 0.7, 0.95} {
		for _, bytes := range []int{64, 256, 512} {
			tr := e.transmission(bytes)
			svc := tr + 2.718*e.SlotTime*u
			uc := u
			if uc > 0.95 {
				uc = 0.95
			}
			want := svc + uc*svc/(2*(1-uc)) + e.Propagation
			if got := e.MeanDelay(bytes, u); got != want {
				t.Fatalf("legacy delay(%dB, u=%.2f) = %v, want %v", bytes, u, got, want)
			}
		}
	}
}
