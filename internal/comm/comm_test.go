package comm

import (
	"math"
	"testing"

	"carat/internal/sim"
)

func TestZeroDelayDelivery(t *testing.T) {
	e := sim.NewEnv()
	nw := NewNetwork[string](e, 2, ZeroDelay{})
	var got Message[string]
	var at float64 = -1
	e.Spawn("recv", func(p *sim.Proc) {
		m, err := nw.Inbox(1).Get(p)
		if err != nil {
			t.Errorf("Get: %v", err)
		}
		got = m
		at = p.Now()
	})
	e.Spawn("send", func(p *sim.Proc) {
		p.Hold(5)
		nw.Send(0, 1, 100, "hello")
	})
	e.RunAll()
	if got.Payload != "hello" || got.From != 0 || got.To != 1 || got.Bytes != 100 {
		t.Fatalf("message = %+v", got)
	}
	if at != 5 {
		t.Fatalf("delivered at %v, want 5 (zero delay)", at)
	}
	if nw.Sent() != 1 || nw.BytesSent() != 100 {
		t.Fatalf("counters: sent=%d bytes=%d", nw.Sent(), nw.BytesSent())
	}
}

func TestFixedDelayDelivery(t *testing.T) {
	e := sim.NewEnv()
	nw := NewNetwork[int](e, 2, FixedDelay{D: 3})
	var at float64 = -1
	e.Spawn("recv", func(p *sim.Proc) {
		if _, err := nw.Inbox(1).Get(p); err == nil {
			at = p.Now()
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		p.Hold(10)
		nw.Send(0, 1, 64, 42)
	})
	e.RunAll()
	if at != 13 {
		t.Fatalf("delivered at %v, want 13", at)
	}
}

func TestLocalSendBypassesDelay(t *testing.T) {
	e := sim.NewEnv()
	nw := NewNetwork[int](e, 2, FixedDelay{D: 50})
	var at float64 = -1
	e.Spawn("recv", func(p *sim.Proc) {
		if _, err := nw.Inbox(0).Get(p); err == nil {
			at = p.Now()
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		p.Hold(1)
		nw.Send(0, 0, 64, 1)
	})
	e.RunAll()
	if at != 1 {
		t.Fatalf("local delivery at %v, want 1", at)
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	e := sim.NewEnv()
	nw := NewNetwork[int](e, 2, FixedDelay{D: 2})
	var got []int
	e.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			m, _ := nw.Inbox(1).Get(p)
			got = append(got, m.Payload)
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 1; i <= 3; i++ {
			nw.Send(0, 1, 10, i)
			p.Hold(1)
		}
	})
	e.RunAll()
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestEthernetModelShape(t *testing.T) {
	en := DefaultEthernet()
	// Zero load: delay is about transmission + propagation.
	d0 := en.MeanDelay(128, 0)
	tx := en.transmission(128)
	if math.Abs(d0-(tx+en.Propagation)) > 1e-9 {
		t.Fatalf("idle delay = %v, want %v", d0, tx+en.Propagation)
	}
	// Delay must rise with utilization.
	prev := d0
	for _, u := range []float64{0.2, 0.5, 0.8, 0.9} {
		d := en.MeanDelay(128, u)
		if d <= prev {
			t.Fatalf("delay not increasing at u=%v: %v <= %v", u, d, prev)
		}
		prev = d
	}
	// Saturation guard: still finite near 1.
	if d := en.MeanDelay(128, 0.999); math.IsInf(d, 0) || math.IsNaN(d) {
		t.Fatalf("saturated delay = %v", d)
	}
}

func TestEthernetMinimumFrame(t *testing.T) {
	en := DefaultEthernet()
	if en.transmission(1) != en.transmission(64) {
		t.Fatal("frames below the 64-byte minimum must pad")
	}
	if en.transmission(1000) <= en.transmission(64) {
		t.Fatal("bigger frames must take longer")
	}
}

func TestNetworkStatsReset(t *testing.T) {
	e := sim.NewEnv()
	nw := NewNetwork[int](e, 2, ZeroDelay{})
	nw.Send(0, 1, 10, 1)
	nw.ResetStats(0)
	if nw.Sent() != 0 {
		t.Fatalf("sent after reset = %d", nw.Sent())
	}
	nw.Send(0, 1, 10, 1)
	if r := nw.MessageRate(2); math.Abs(r-0.5) > 1e-9 {
		t.Fatalf("message rate = %v, want 0.5", r)
	}
}
