// Package comm models the inter-site network of the CARAT testbed: message
// passing between TM servers over a shared 10 Mb/s Ethernet.
//
// The network delivers each message into the destination node's inbox after
// a delay drawn from a pluggable DelayModel. The paper's two-node
// experiments measured a negligible communication delay α and dropped it
// from the computation; the default model here is therefore zero delay, but
// an Almes–Lazowska-style Ethernet contention model [ALME79] is provided
// for configurations where α matters (many nodes, long messages).
package comm

import (
	"fmt"
	"math"

	"carat/internal/sim"
	"carat/internal/stats"
)

// NodeID identifies a site.
type NodeID int

// DelayModel yields the end-to-end latency of one message.
type DelayModel interface {
	// Delay returns the network delay for a message of the given size,
	// given the current network utilization in [0, 1).
	Delay(bytes int, utilization float64) float64
	// MeanDelay returns the expected delay at the utilization, used to
	// parameterize α in the analytical model.
	MeanDelay(bytes int, utilization float64) float64
}

// ZeroDelay delivers instantly — the paper's operating point for two nodes.
type ZeroDelay struct{}

// Delay implements DelayModel.
func (ZeroDelay) Delay(int, float64) float64 { return 0 }

// MeanDelay implements DelayModel.
func (ZeroDelay) MeanDelay(int, float64) float64 { return 0 }

// FixedDelay delivers every message after a constant latency.
type FixedDelay struct{ D float64 }

// Delay implements DelayModel.
func (f FixedDelay) Delay(int, float64) float64 { return f.D }

// MeanDelay implements DelayModel.
func (f FixedDelay) MeanDelay(int, float64) float64 { return f.D }

// Ethernet approximates a CSMA/CD channel following the flavor of the
// Almes–Lazowska Ethernet model: the raw transmission time is inflated by
// the contention-interval overhead (≈ e slot times per packet at high
// load), and queueing for the shared channel is approximated as M/D/1.
//
// All times are in the same unit the simulation uses (milliseconds in the
// CARAT configuration).
type Ethernet struct {
	BandwidthBitsPerMS float64 // channel capacity, bits per millisecond
	SlotTime           float64 // collision slot (2x end-to-end propagation)
	Propagation        float64 // one-way propagation delay

	// Hosts is the number of stations contending for the shared channel.
	// 0 keeps the historical saturation constant (≈ e slot times wasted
	// per packet regardless of fleet size — the byte-pinned default).
	// 1 models a dedicated point-to-point link: no contention interval and
	// no channel queueing, so delay degenerates to transmission plus
	// propagation. Q ≥ 2 uses the Almes–Lazowska contention coefficient
	// (1−A)/A with A = (1−1/Q)^(Q−1), which grows from 1.0 at Q=2 toward
	// e−1 as Q→∞ — inflation monotone in the host count.
	Hosts int
}

// DefaultEthernet returns the 10 Mb/s Ethernet of the testbed: 10^4 bits/ms,
// 51.2 µs slot time, ~10 µs propagation.
func DefaultEthernet() Ethernet {
	return Ethernet{BandwidthBitsPerMS: 1e4, SlotTime: 0.0512, Propagation: 0.01}
}

// transmission returns the raw wire time for a message.
func (e Ethernet) transmission(bytes int) float64 {
	bits := float64(bytes * 8)
	if bits < 512 { // minimum Ethernet frame
		bits = 512
	}
	return bits / e.BandwidthBitsPerMS
}

// contentionCoeff returns the slot-time multiplier of the contention
// interval: the historical saturation constant when Hosts is unset, the
// host-count-dependent Almes–Lazowska coefficient otherwise.
func (e Ethernet) contentionCoeff() float64 {
	if e.Hosts <= 0 {
		// At saturation roughly e ≈ 2.718 slot times are wasted per
		// successful packet.
		return 2.718
	}
	q := float64(e.Hosts)
	a := math.Pow(1-1/q, q-1)
	return (1 - a) / a
}

// Breakdown decomposes the channel's mean delay at utilization u into its
// queueing-center components: raw transmission time, contention-interval
// inflation, and M/D/1 queueing delay for the shared channel. Propagation
// is excluded; MeanDelay is the sum of all three plus Propagation.
func (e Ethernet) Breakdown(bytes int, u float64) (raw, inflation, queue float64) {
	raw = e.transmission(bytes)
	if e.Hosts == 1 {
		// A dedicated link: nothing contends, nothing queues.
		return raw, 0, 0
	}
	inflation = e.contentionCoeff() * e.SlotTime * u
	svc := raw + inflation
	if u < 0 {
		u = 0
	}
	if u > 0.95 {
		u = 0.95
	}
	queue = u * svc / (2 * (1 - u))
	return raw, inflation, queue
}

// MeanDelay implements DelayModel: service time inflated by contention plus
// M/D/1 queueing delay plus propagation.
func (e Ethernet) MeanDelay(bytes int, u float64) float64 {
	raw, inflation, queue := e.Breakdown(bytes, u)
	return raw + inflation + queue + e.Propagation
}

// Delay implements DelayModel. The model is deterministic given load.
func (e Ethernet) Delay(bytes int, u float64) float64 { return e.MeanDelay(bytes, u) }

// Message is what the network carries: an opaque payload with routing
// metadata.
type Message[T any] struct {
	From    NodeID
	To      NodeID
	Bytes   int
	Payload T
}

// Network connects a fixed set of nodes. Each node owns an inbox queue that
// its TM server process drains.
type Network[T any] struct {
	env    *sim.Env
	model  DelayModel
	inbox  []*sim.Queue[Message[T]]
	sent   stats.Counter
	bytes  stats.Counter
	busyMS stats.TimeWeighted
	util   float64
}

// NewNetwork creates a network with n nodes attached to env.
func NewNetwork[T any](env *sim.Env, n int, model DelayModel) *Network[T] {
	if model == nil {
		model = ZeroDelay{}
	}
	nw := &Network[T]{env: env, model: model}
	for i := 0; i < n; i++ {
		nw.inbox = append(nw.inbox, sim.NewQueue[Message[T]](env, fmt.Sprintf("inbox-%d", i)))
	}
	return nw
}

// Nodes returns the node count.
func (n *Network[T]) Nodes() int { return len(n.inbox) }

// Inbox returns node id's message queue.
func (n *Network[T]) Inbox(id NodeID) *sim.Queue[Message[T]] { return n.inbox[id] }

// Send delivers payload from src to dst after the model's delay. Local
// sends (src == dst) are delivered with zero network delay.
func (n *Network[T]) Send(src, dst NodeID, bytes int, payload T) {
	m := Message[T]{From: src, To: dst, Bytes: bytes, Payload: payload}
	n.sent.Inc()
	n.bytes.Addn(int64(bytes))
	d := 0.0
	if src != dst {
		d = n.model.Delay(bytes, n.util)
	}
	if d <= 0 {
		n.inbox[dst].Put(m)
		return
	}
	n.env.After(d, func() { n.inbox[dst].Put(m) })
}

// SetUtilization updates the utilization estimate fed to the delay model.
// The experiment harness recomputes it periodically from byte counters.
func (n *Network[T]) SetUtilization(u float64) { n.util = u }

// Sent returns the number of messages sent.
func (n *Network[T]) Sent() int64 { return n.sent.N() }

// BytesSent returns the number of payload bytes sent.
func (n *Network[T]) BytesSent() int64 { return n.bytes.N() }

// MessageRate returns messages per unit time at time t.
func (n *Network[T]) MessageRate(t float64) float64 { return n.sent.Rate(t) }

// ResetStats truncates the statistics window at t.
func (n *Network[T]) ResetStats(t float64) {
	n.sent.ResetAt(t)
	n.bytes.ResetAt(t)
}
