// Package health implements a heartbeat-style failure detector for the
// simulated testbed. Every site periodically observes every other site; a
// site that has been unobservable for longer than the suspicion timeout is
// suspected, and trusted again as soon as an observation gets through.
//
// The detector is deliberately simple — a timeout-based eventually-perfect
// detector in the Chandra–Toueg taxonomy — because its job in the testbed is
// not protocol novelty but realism: admission gates, replica failover, and
// 2PC termination must act on *suspicion* (which can be wrong during gray
// periods and detector lag) rather than on the simulator's ground truth.
//
// The detector is driven entirely by an injected Clock, so it runs on the
// simulation's virtual time and is byte-for-byte deterministic: ticks fire
// at fixed multiples of the heartbeat interval and the per-tick scan visits
// ordered site pairs in a fixed order. It draws no randomness.
package health

// Clock abstracts the simulation clock: the current time and one-shot
// timers. All durations share the simulation's unit (milliseconds in the
// CARAT configuration).
type Clock interface {
	Now() float64
	After(d float64, fn func())
}

// Probe answers whether an observer site can currently hear a heartbeat
// from a subject site. The testbed wires this to the conjunction of both
// sites being up and the partition map allowing the pair; a detector built
// on ground truth plus a timeout yields exactly the lag-window semantics of
// a real heartbeat exchange without simulating every heartbeat message.
type Probe interface {
	Reachable(observer, subject int) bool
}

// Options tunes the detector.
type Options struct {
	// IntervalMS is the heartbeat/observation period (default 250).
	IntervalMS float64
	// SuspectAfterMS is how long a subject must stay unobservable before the
	// observer suspects it (default 1000). Must exceed IntervalMS for the
	// detector to ever trust anyone between ticks.
	SuspectAfterMS float64
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.IntervalMS <= 0 {
		o.IntervalMS = 250
	}
	if o.SuspectAfterMS <= 0 {
		o.SuspectAfterMS = 1000
	}
	return o
}

// Detector tracks, for every ordered pair of sites, when the observer last
// heard the subject and whether it currently suspects it.
type Detector struct {
	clock    Clock
	probe    Probe
	opt      Options
	n        int
	lastSeen [][]float64
	suspect  [][]bool
	onChange func(observer, subject int, suspected bool)
	running  bool
}

// New builds a detector for n sites. onChange, if non-nil, fires on every
// suspicion transition (suspected=true) and recovery (suspected=false), in
// ascending (observer, subject) order within a tick.
func New(n int, clock Clock, probe Probe, opt Options,
	onChange func(observer, subject int, suspected bool)) *Detector {
	d := &Detector{
		clock:    clock,
		probe:    probe,
		opt:      opt.withDefaults(),
		n:        n,
		onChange: onChange,
	}
	d.lastSeen = make([][]float64, n)
	d.suspect = make([][]bool, n)
	for i := 0; i < n; i++ {
		d.lastSeen[i] = make([]float64, n)
		d.suspect[i] = make([]bool, n)
	}
	return d
}

// Start begins the heartbeat ticks. Every pair starts out trusted as of the
// current instant, so a subject must be silent for a full suspicion timeout
// before the first transition.
func (d *Detector) Start() {
	if d.running {
		return
	}
	d.running = true
	now := d.clock.Now()
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			d.lastSeen[i][j] = now
		}
	}
	d.clock.After(d.opt.IntervalMS, d.tick)
}

// Stop halts the detector; pending ticks become no-ops.
func (d *Detector) Stop() { d.running = false }

// tick performs one observation round and re-arms the timer.
func (d *Detector) tick() {
	if !d.running {
		return
	}
	now := d.clock.Now()
	for obs := 0; obs < d.n; obs++ {
		for sub := 0; sub < d.n; sub++ {
			if obs == sub {
				continue
			}
			if d.probe.Reachable(obs, sub) {
				d.lastSeen[obs][sub] = now
			}
			suspected := now-d.lastSeen[obs][sub] >= d.opt.SuspectAfterMS
			if suspected != d.suspect[obs][sub] {
				d.suspect[obs][sub] = suspected
				if d.onChange != nil {
					d.onChange(obs, sub, suspected)
				}
			}
		}
	}
	d.clock.After(d.opt.IntervalMS, d.tick)
}

// Suspects reports whether observer currently suspects subject. A site
// never suspects itself.
func (d *Detector) Suspects(observer, subject int) bool {
	if observer == subject {
		return false
	}
	return d.suspect[observer][subject]
}

// MajorityReachable reports whether the observer trusts a strict majority
// of all sites (counting itself). A site on the minority side of a
// partition fails this — the predicate replica failover uses to refuse
// serving reads that could be stale relative to the majority side.
func (d *Detector) MajorityReachable(observer int) bool {
	trusted := 1 // self
	for sub := 0; sub < d.n; sub++ {
		if sub != observer && !d.suspect[observer][sub] {
			trusted++
		}
	}
	return 2*trusted > d.n
}
