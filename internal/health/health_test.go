package health

import (
	"sort"
	"testing"
)

// fakeClock is a minimal virtual-time event loop for driving the detector
// in isolation.
type fakeClock struct {
	now    float64
	timers []timer
	seq    int
}

type timer struct {
	at  float64
	seq int
	fn  func()
}

func (c *fakeClock) Now() float64 { return c.now }

func (c *fakeClock) After(d float64, fn func()) {
	c.seq++
	c.timers = append(c.timers, timer{at: c.now + d, seq: c.seq, fn: fn})
}

// advance runs virtual time forward to t, firing due timers in order.
func (c *fakeClock) advance(t float64) {
	for {
		sort.Slice(c.timers, func(i, j int) bool {
			if c.timers[i].at != c.timers[j].at {
				return c.timers[i].at < c.timers[j].at
			}
			return c.timers[i].seq < c.timers[j].seq
		})
		if len(c.timers) == 0 || c.timers[0].at > t {
			break
		}
		tm := c.timers[0]
		c.timers = c.timers[1:]
		c.now = tm.at
		tm.fn()
	}
	c.now = t
}

// fakeProbe is a mutable reachability matrix.
type fakeProbe struct{ blocked map[[2]int]bool }

func (p *fakeProbe) Reachable(obs, sub int) bool { return !p.blocked[[2]int{obs, sub}] }

func (p *fakeProbe) cut(a, b int) {
	if p.blocked == nil {
		p.blocked = make(map[[2]int]bool)
	}
	p.blocked[[2]int{a, b}] = true
	p.blocked[[2]int{b, a}] = true
}

func (p *fakeProbe) restore(a, b int) {
	delete(p.blocked, [2]int{a, b})
	delete(p.blocked, [2]int{b, a})
}

type transition struct {
	obs, sub  int
	suspected bool
	at        float64
}

func TestSuspicionAndRecovery(t *testing.T) {
	clk := &fakeClock{}
	pr := &fakeProbe{}
	var log []transition
	d := New(3, clk, pr, Options{IntervalMS: 100, SuspectAfterMS: 400},
		func(obs, sub int, s bool) {
			log = append(log, transition{obs, sub, s, clk.Now()})
		})
	d.Start()

	clk.advance(1000)
	if len(log) != 0 {
		t.Fatalf("healthy cluster produced transitions: %+v", log)
	}
	for i := 0; i < 3; i++ {
		if !d.MajorityReachable(i) {
			t.Fatalf("site %d lost majority while healthy", i)
		}
	}

	// Cut site 2 off from 0 and 1 at t=1000. Last observation is the
	// t=1000 tick, so suspicion lands on the first tick at or after
	// 1000+400: t=1400.
	pr.cut(0, 2)
	pr.cut(1, 2)
	clk.advance(1300)
	if d.Suspects(0, 2) || d.Suspects(2, 0) {
		t.Fatal("suspicion raised before the timeout elapsed")
	}
	clk.advance(1400)
	for _, pair := range [][2]int{{0, 2}, {1, 2}, {2, 0}, {2, 1}} {
		if !d.Suspects(pair[0], pair[1]) {
			t.Fatalf("pair %v not suspected after timeout", pair)
		}
	}
	if d.Suspects(0, 1) || d.Suspects(1, 0) {
		t.Fatal("intact pair 0-1 suspected")
	}
	if !d.MajorityReachable(0) || !d.MajorityReachable(1) {
		t.Fatal("majority side lost its majority")
	}
	if d.MajorityReachable(2) {
		t.Fatal("isolated site 2 still claims a majority")
	}

	// Heal at t=2000: the first tick after the heal re-observes the pairs
	// and recovery is immediate.
	clk.advance(2000)
	pr.restore(0, 2)
	pr.restore(1, 2)
	clk.advance(2100)
	for _, pair := range [][2]int{{0, 2}, {1, 2}, {2, 0}, {2, 1}} {
		if d.Suspects(pair[0], pair[1]) {
			t.Fatalf("pair %v still suspected after heal", pair)
		}
	}
	if !d.MajorityReachable(2) {
		t.Fatal("site 2 did not regain its majority after heal")
	}

	// The transition log must contain exactly 4 suspicions then 4
	// recoveries, at the expected ticks.
	if len(log) != 8 {
		t.Fatalf("expected 8 transitions, got %d: %+v", len(log), log)
	}
	for i, tr := range log[:4] {
		if !tr.suspected || tr.at != 1400 {
			t.Fatalf("transition %d: want suspicion at 1400, got %+v", i, tr)
		}
	}
	for i, tr := range log[4:] {
		if tr.suspected || tr.at != 2100 {
			t.Fatalf("transition %d: want recovery at 2100, got %+v", i+4, tr)
		}
	}
}

func TestStopHaltsTicks(t *testing.T) {
	clk := &fakeClock{}
	pr := &fakeProbe{}
	fired := 0
	d := New(2, clk, pr, Options{IntervalMS: 50, SuspectAfterMS: 100},
		func(int, int, bool) { fired++ })
	d.Start()
	clk.advance(200)
	d.Stop()
	pr.cut(0, 1)
	clk.advance(1000)
	if fired != 0 {
		t.Fatalf("stopped detector still produced %d transitions", fired)
	}
	if len(clk.timers) != 0 {
		t.Fatalf("stopped detector left %d timers armed", len(clk.timers))
	}
}

func TestDefaultsAndSelfTrust(t *testing.T) {
	clk := &fakeClock{}
	d := New(2, clk, &fakeProbe{}, Options{}, nil)
	if d.opt.IntervalMS != 250 || d.opt.SuspectAfterMS != 1000 {
		t.Fatalf("defaults not applied: %+v", d.opt)
	}
	if d.Suspects(0, 0) {
		t.Fatal("site suspects itself")
	}
	// Double Start must not double the tick cadence.
	d.Start()
	d.Start()
	clk.advance(250)
	if len(clk.timers) != 1 {
		t.Fatalf("double Start armed %d timers, want 1", len(clk.timers))
	}
}
