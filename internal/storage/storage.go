// Package storage models the partitioned CARAT database: each site holds a
// file of fixed-size blocks ("granules"), each packing a fixed number of
// records. Locking, logging and I/O all operate at block granularity, as in
// the testbed (Section 2: 3,000 blocks of 512 bytes, six records per block).
//
// The package also provides the access-pattern generators used by the
// synthetic workload and Yao's formula [YAO77] for the expected number of
// distinct blocks touched when sampling records without replacement.
package storage

import (
	"math"
	"slices"
	"sort"
	"sync"

	"carat/internal/rng"
)

// Layout describes one site's database file.
type Layout struct {
	Granules       int // Ng: blocks at the site
	RecordsPerGran int // Nb: records per block
}

// DefaultLayout returns the layout used in the paper's experiments:
// 3,000 blocks, six 85-byte records per 512-byte block.
func DefaultLayout() Layout { return Layout{Granules: 3000, RecordsPerGran: 6} }

// Records returns the total number of records at the site.
func (l Layout) Records() int { return l.Granules * l.RecordsPerGran }

// GranuleOf returns the block holding record id.
func (l Layout) GranuleOf(record int) int { return record / l.RecordsPerGran }

// Scale returns the global layout of an n-site fleet in which every site
// holds a copy of l's shape: n times the granules, same packing. The
// placement directory draws anchor records over this global space.
func (l Layout) Scale(n int) Layout {
	return Layout{Granules: l.Granules * n, RecordsPerGran: l.RecordsPerGran}
}

// Pattern selects the records a request touches.
type Pattern interface {
	// Pick returns k distinct record ids from a site with the layout.
	Pick(r *rng.Rand, l Layout, k int) []int
}

// AppendPattern is the allocation-free variant of Pattern: PickAppend
// appends the picked records to dst with draws identical to Pick. All the
// patterns in this package implement it; hot callers type-assert for it and
// fall back to Pick.
type AppendPattern interface {
	PickAppend(dst []int, r *rng.Rand, l Layout, k int) []int
}

// Uniform picks records uniformly at random without replacement — the
// paper's workload assumption ("records are chosen randomly from among all
// the database records located at the site").
type Uniform struct{}

// Pick implements Pattern.
func (Uniform) Pick(r *rng.Rand, l Layout, k int) []int {
	return r.SampleInts(l.Records(), k)
}

// PickAppend implements AppendPattern.
func (Uniform) PickAppend(dst []int, r *rng.Rand, l Layout, k int) []int {
	return r.SampleIntsAppend(dst, l.Records(), k)
}

// Hotspot implements the b–c rule: a fraction Frac of accesses go to the
// first Hot fraction of the records. Hotspot{Hot: 0.2, Frac: 0.8} is the
// classic 80/20 skew. It generalizes the paper's uniform assumption for the
// nonuniform-access extension flagged in its conclusions.
type Hotspot struct {
	Hot  float64 // fraction of records that are hot (0 < Hot < 1)
	Frac float64 // fraction of accesses aimed at the hot set
}

// Pick implements Pattern. Records are distinct within one call.
func (h Hotspot) Pick(r *rng.Rand, l Layout, k int) []int {
	return h.PickAppend(make([]int, 0, k), r, l, k)
}

// PickAppend implements AppendPattern.
func (h Hotspot) PickAppend(dst []int, r *rng.Rand, l Layout, k int) []int {
	n := l.Records()
	hot := int(h.Hot * float64(n))
	if hot < 1 {
		hot = 1
	}
	if hot >= n {
		return r.SampleIntsAppend(dst, n, k)
	}
	base := len(dst)
	for len(dst)-base < k {
		var rec int
		if r.Bool(h.Frac) {
			rec = r.Intn(hot)
		} else {
			rec = hot + r.Intn(n-hot)
		}
		if slices.Contains(dst[base:], rec) {
			continue
		}
		dst = append(dst, rec)
	}
	return dst
}

// Zipf picks records from a bounded Zipf distribution over the site's
// records: rank i (0-based, record 0 the most popular) is drawn with
// probability proportional to 1/(i+1)^Theta. Theta = 0 degenerates to
// uniform; the YCSB-style default is Theta ≈ 0.99. Records are distinct
// within one call, like the other patterns.
//
// Sampling inverts the exact cumulative distribution with a binary search;
// the CDF table is built once per layout and cached, so a single Zipf value
// can be shared across concurrent simulations (the cache is mutex-guarded
// and the table itself is immutable once published).
type Zipf struct {
	Theta float64

	mu     sync.Mutex
	cdf    []float64
	cdfFor Layout
}

// NewZipf returns a Zipf pattern with the skew exponent theta > 0.
func NewZipf(theta float64) *Zipf { return &Zipf{Theta: theta} }

// table returns the CDF over the layout's records, building it on first use.
func (z *Zipf) table(l Layout) []float64 {
	z.mu.Lock()
	defer z.mu.Unlock()
	if z.cdf != nil && z.cdfFor == l {
		return z.cdf
	}
	n := l.Records()
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), z.Theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	z.cdf, z.cdfFor = cdf, l
	return cdf
}

// Pick implements Pattern. Records are distinct within one call.
func (z *Zipf) Pick(r *rng.Rand, l Layout, k int) []int {
	return z.PickAppend(make([]int, 0, k), r, l, k)
}

// PickAppend implements AppendPattern.
func (z *Zipf) PickAppend(dst []int, r *rng.Rand, l Layout, k int) []int {
	cdf := z.table(l)
	n := len(cdf)
	if k >= n {
		return r.SampleIntsAppend(dst, n, k)
	}
	base := len(dst)
	for len(dst)-base < k {
		rec := sort.SearchFloat64s(cdf, r.Float64())
		if rec >= n {
			rec = n - 1
		}
		if slices.Contains(dst[base:], rec) {
			continue
		}
		dst = append(dst, rec)
	}
	return dst
}

// GranulesOf maps record ids to the distinct granules holding them,
// preserving first-touch order.
func GranulesOf(l Layout, records []int) []int {
	return GranulesOfAppend(make([]int, 0, len(records)), l, records)
}

// GranulesOfAppend appends the distinct granules holding records to dst in
// first-touch order and returns the extended slice. Deduplication scans the
// appended prefix, which beats a map for per-request granule counts.
func GranulesOfAppend(dst []int, l Layout, records []int) []int {
	base := len(dst)
	for _, rec := range records {
		g := l.GranuleOf(rec)
		if !slices.Contains(dst[base:], g) {
			dst = append(dst, g)
		}
	}
	return dst
}

// Yao returns the expected number of distinct blocks accessed when k
// records are selected without replacement from n records packed m per
// block [YAO77]:
//
//	E = b * (1 - C(n-m, k) / C(n, k))
//
// where b = n/m blocks. Computed as a running product to stay in floating
// point for large n.
func Yao(n, m, k int) float64 {
	if k <= 0 || n <= 0 || m <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	b := float64(n) / float64(m)
	// prod = C(n-m, k)/C(n, k) = Π_{i=0}^{k-1} (n-m-i)/(n-i)
	prod := 1.0
	for i := 0; i < k; i++ {
		num := float64(n - m - i)
		if num <= 0 {
			prod = 0
			break
		}
		prod *= num / float64(n-i)
	}
	return b * (1 - prod)
}

// Store is one site's database state: per-block contents (a version
// counter standing in for data) used by the WAL tests and the recovery
// path. The simulator charges I/O through the disk package; Store tracks
// logical state only.
type Store struct {
	layout Layout
	blocks []uint64 // version per block
}

// NewStore creates a zeroed store with the layout.
func NewStore(l Layout) *Store {
	return &Store{layout: l, blocks: make([]uint64, l.Granules)}
}

// Layout returns the store's layout.
func (s *Store) Layout() Layout { return s.layout }

// ReadBlock returns the version of block g.
func (s *Store) ReadBlock(g int) uint64 { return s.blocks[g] }

// WriteBlock sets the version of block g.
func (s *Store) WriteBlock(g int, v uint64) { s.blocks[g] = v }

// Touch increments block g's version and returns the new value, modelling
// an in-place update.
func (s *Store) Touch(g int) uint64 {
	s.blocks[g]++
	return s.blocks[g]
}
