package storage

import (
	"math"
	"testing"
	"testing/quick"

	"carat/internal/rng"
)

func TestLayout(t *testing.T) {
	l := DefaultLayout()
	if l.Granules != 3000 || l.RecordsPerGran != 6 {
		t.Fatalf("default layout = %+v, want paper's 3000x6", l)
	}
	if l.Records() != 18000 {
		t.Fatalf("Records = %d", l.Records())
	}
	if l.GranuleOf(0) != 0 || l.GranuleOf(5) != 0 || l.GranuleOf(6) != 1 {
		t.Fatal("GranuleOf mapping wrong")
	}
}

func TestUniformPickDistinctInRange(t *testing.T) {
	l := Layout{Granules: 100, RecordsPerGran: 6}
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		k := 1 + rr.Intn(20)
		recs := Uniform{}.Pick(r, l, k)
		if len(recs) != k {
			return false
		}
		seen := map[int]bool{}
		for _, rec := range recs {
			if rec < 0 || rec >= l.Records() || seen[rec] {
				return false
			}
			seen[rec] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHotspotSkew(t *testing.T) {
	l := Layout{Granules: 1000, RecordsPerGran: 6}
	r := rng.New(2)
	h := Hotspot{Hot: 0.2, Frac: 0.8}
	hot := int(0.2 * float64(l.Records()))
	inHot := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		recs := h.Pick(r, l, 1)
		if recs[0] < hot {
			inHot++
		}
	}
	frac := float64(inHot) / trials
	if math.Abs(frac-0.8) > 0.02 {
		t.Fatalf("hot fraction = %v, want ~0.8", frac)
	}
}

func TestHotspotDistinct(t *testing.T) {
	l := Layout{Granules: 10, RecordsPerGran: 2}
	r := rng.New(3)
	h := Hotspot{Hot: 0.5, Frac: 0.9}
	for i := 0; i < 100; i++ {
		recs := h.Pick(r, l, 15)
		seen := map[int]bool{}
		for _, rec := range recs {
			if seen[rec] {
				t.Fatalf("duplicate record %d in %v", rec, recs)
			}
			seen[rec] = true
		}
	}
}

func TestGranulesOf(t *testing.T) {
	l := Layout{Granules: 10, RecordsPerGran: 6}
	gs := GranulesOf(l, []int{0, 5, 6, 13, 1})
	// records 0,5 -> g0; 6 -> g1; 13 -> g2; 1 -> g0 (dup)
	want := []int{0, 1, 2}
	if len(gs) != len(want) {
		t.Fatalf("granules = %v, want %v", gs, want)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Fatalf("granules = %v, want %v", gs, want)
		}
	}
}

func TestYaoBoundaries(t *testing.T) {
	// k=0 -> 0 blocks.
	if Yao(18000, 6, 0) != 0 {
		t.Fatal("Yao(k=0) != 0")
	}
	// k=n -> all blocks.
	if got := Yao(60, 6, 60); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Yao full scan = %v, want 10", got)
	}
	// One record -> one block.
	if got := Yao(18000, 6, 1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Yao(k=1) = %v, want 1", got)
	}
	// m=1: every record its own block -> exactly k blocks.
	if got := Yao(100, 1, 17); math.Abs(got-17) > 1e-9 {
		t.Fatalf("Yao(m=1) = %v, want 17", got)
	}
}

func TestYaoPaperRegime(t *testing.T) {
	// For the paper's workloads (k records out of 18000, 6 per block),
	// g(t) is "very close to" k: sampling 16 records rarely doubles up.
	for _, k := range []int{4, 8, 16, 32, 80} {
		got := Yao(18000, 6, k)
		if got > float64(k) || got < float64(k)*0.98 {
			t.Fatalf("Yao(18000,6,%d) = %v, want within 2%% below %d", k, got, k)
		}
	}
}

func TestYaoMonotonicInK(t *testing.T) {
	prev := 0.0
	for k := 0; k <= 200; k += 5 {
		got := Yao(1200, 6, k)
		if got < prev-1e-12 {
			t.Fatalf("Yao not monotone at k=%d: %v < %v", k, got, prev)
		}
		prev = got
	}
}

func TestYaoMatchesMonteCarlo(t *testing.T) {
	l := Layout{Granules: 50, RecordsPerGran: 6}
	r := rng.New(11)
	const k, trials = 30, 20000
	var sum float64
	for i := 0; i < trials; i++ {
		recs := Uniform{}.Pick(r, l, k)
		sum += float64(len(GranulesOf(l, recs)))
	}
	mc := sum / trials
	analytic := Yao(l.Records(), l.RecordsPerGran, k)
	if math.Abs(mc-analytic) > 0.05*analytic {
		t.Fatalf("Monte Carlo %v vs Yao %v", mc, analytic)
	}
}

func TestStoreTouchAndVersions(t *testing.T) {
	s := NewStore(Layout{Granules: 5, RecordsPerGran: 6})
	if s.ReadBlock(3) != 0 {
		t.Fatal("fresh store must be zeroed")
	}
	if v := s.Touch(3); v != 1 {
		t.Fatalf("Touch = %d, want 1", v)
	}
	s.WriteBlock(3, 42)
	if s.ReadBlock(3) != 42 {
		t.Fatal("WriteBlock not visible")
	}
	if s.Layout().Granules != 5 {
		t.Fatal("Layout accessor wrong")
	}
}

// TestZipfSkew checks the frequency skew of the bounded Zipf pattern: the
// empirical frequency ratio between the most popular record and a deep-tail
// record must track the theoretical (rank ratio)^theta, and the head of the
// distribution must absorb far more than its uniform share.
func TestZipfSkew(t *testing.T) {
	l := Layout{Granules: 100, RecordsPerGran: 6} // 600 records
	r := rng.New(5)
	const theta = 1.0
	z := NewZipf(theta)
	counts := make([]int, l.Records())
	const trials = 200000
	for i := 0; i < trials; i++ {
		counts[z.Pick(r, l, 1)[0]]++
	}
	// P(rank 0)/P(rank 99) = 100^theta = 100.
	ratio := float64(counts[0]) / float64(counts[99]+1)
	if ratio < 50 || ratio > 200 {
		t.Fatalf("rank-0/rank-99 frequency ratio = %v, want ~100", ratio)
	}
	// The top 1% of records should draw well over a third of the accesses
	// at theta=1 (uniform would give them 1%).
	top := 0
	for i := 0; i < l.Records()/100; i++ {
		top += counts[i]
	}
	if frac := float64(top) / trials; frac < 0.3 {
		t.Fatalf("top-1%% share = %v, want skewed well above uniform", frac)
	}
}

func TestZipfDistinctAndInRange(t *testing.T) {
	l := Layout{Granules: 10, RecordsPerGran: 2}
	r := rng.New(6)
	z := NewZipf(0.99)
	for i := 0; i < 200; i++ {
		recs := z.Pick(r, l, 12)
		seen := map[int]bool{}
		for _, rec := range recs {
			if rec < 0 || rec >= l.Records() {
				t.Fatalf("record %d out of range", rec)
			}
			if seen[rec] {
				t.Fatalf("duplicate record %d in %v", rec, recs)
			}
			seen[rec] = true
		}
	}
}
