package lock

import (
	"testing"

	"carat/internal/rng"
)

func newPreventionMgr(d Discipline) (*Manager, *recorder) {
	r := &recorder{}
	m := NewManagerWithDiscipline(d, VictimRequester, r.onGrant)
	return m, r
}

func TestWaitDieOlderWaits(t *testing.T) {
	m, _ := newPreventionMgr(WaitDie)
	m.RegisterTxn(1, 100) // older
	m.RegisterTxn(2, 200) // younger
	if out, _ := m.Request(2, 5, Exclusive); out != Granted {
		t.Fatal("first request must be granted")
	}
	out, victims := m.Request(1, 5, Exclusive)
	if out != Wait || len(victims) != 0 {
		t.Fatalf("older requester must wait: %v %v", out, victims)
	}
}

func TestWaitDieYoungerDies(t *testing.T) {
	m, _ := newPreventionMgr(WaitDie)
	m.RegisterTxn(1, 100)
	m.RegisterTxn(2, 200)
	m.Request(1, 5, Exclusive)
	out, victims := m.Request(2, 5, Exclusive)
	if out != Deadlock || len(victims) != 0 {
		t.Fatalf("younger requester must die: %v %v", out, victims)
	}
	if m.Stats().Deadlocks != 1 {
		t.Fatalf("deaths not counted: %+v", m.Stats())
	}
	// The dead requester left no queue entry.
	if m.Waiting(2) {
		t.Fatal("dead requester still queued")
	}
}

func TestWaitDieMixedHolders(t *testing.T) {
	// Requester older than one holder but younger than another: dies.
	m, _ := newPreventionMgr(WaitDie)
	m.RegisterTxn(1, 100)
	m.RegisterTxn(2, 200)
	m.RegisterTxn(3, 300)
	m.Request(1, 5, Shared)
	m.Request(3, 5, Shared)
	out, _ := m.Request(2, 5, Exclusive)
	if out != Deadlock {
		t.Fatalf("requester younger than holder 1 must die: %v", out)
	}
}

func TestWoundWaitOlderWounds(t *testing.T) {
	m, _ := newPreventionMgr(WoundWait)
	m.RegisterTxn(1, 100)
	m.RegisterTxn(2, 200)
	m.Request(2, 5, Exclusive)
	out, victims := m.Request(1, 5, Exclusive)
	if out != Wait {
		t.Fatalf("older requester waits after wounding: %v", out)
	}
	if len(victims) != 1 || victims[0] != 2 {
		t.Fatalf("victims = %v, want [2]", victims)
	}
	// Aborting the wounded holder hands over the lock.
	m.ReleaseAll(2)
	if !m.Holds(1, 5, Exclusive) {
		t.Fatal("requester not granted after wound abort")
	}
}

func TestWoundWaitYoungerWaits(t *testing.T) {
	m, _ := newPreventionMgr(WoundWait)
	m.RegisterTxn(1, 100)
	m.RegisterTxn(2, 200)
	m.Request(1, 5, Exclusive)
	out, victims := m.Request(2, 5, Exclusive)
	if out != Wait || len(victims) != 0 {
		t.Fatalf("younger requester must wait without wounding: %v %v", out, victims)
	}
}

func TestWoundWaitMultipleVictims(t *testing.T) {
	m, _ := newPreventionMgr(WoundWait)
	m.RegisterTxn(1, 100)
	m.RegisterTxn(2, 200)
	m.RegisterTxn(3, 300)
	m.Request(2, 5, Shared)
	m.Request(3, 5, Shared)
	out, victims := m.Request(1, 5, Exclusive)
	if out != Wait || len(victims) != 2 {
		t.Fatalf("out=%v victims=%v, want both younger readers wounded", out, victims)
	}
}

func TestWoundWaitSharedCompatibleNoWound(t *testing.T) {
	m, _ := newPreventionMgr(WoundWait)
	m.RegisterTxn(1, 100)
	m.RegisterTxn(2, 200)
	m.Request(2, 5, Shared)
	out, victims := m.Request(1, 5, Shared)
	if out != Granted || len(victims) != 0 {
		t.Fatalf("compatible request must not wound: %v %v", out, victims)
	}
}

func TestUnregisteredTimestampDefaultsToID(t *testing.T) {
	m, _ := newPreventionMgr(WaitDie)
	// No RegisterTxn: ids are the timestamps, so txn 2 is younger.
	m.Request(1, 5, Exclusive)
	if out, _ := m.Request(2, 5, Exclusive); out != Deadlock {
		t.Fatalf("unregistered younger requester must die: %v", out)
	}
}

func TestReleaseAllForgetsTimestamp(t *testing.T) {
	m, _ := newPreventionMgr(WaitDie)
	m.RegisterTxn(1, 7)
	m.Request(1, 5, Exclusive)
	m.ReleaseAll(1)
	if got := m.timestampOf(1); got != 1 {
		t.Fatalf("timestamp survived ReleaseAll: %d", got)
	}
}

// TestPropertyPreventionLiveness drives random conflicting workloads under
// both prevention disciplines and verifies no waiter is ever stuck without
// a live blocker and the oldest live transaction is never the one killed
// (wait-die kills the younger requester; wound-wait kills younger
// holders).
func TestPropertyPreventionLiveness(t *testing.T) {
	for _, d := range []Discipline{WaitDie, WoundWait} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			r := rng.New(42)
			for trial := 0; trial < 40; trial++ {
				blocked := map[TxnID]bool{}
				var m *Manager
				m = NewManagerWithDiscipline(d, VictimRequester, func(txn TxnID, _ GranuleID) {
					delete(blocked, txn)
				})
				const txns, grans = 6, 5
				oldest := TxnID(1)
				for i := TxnID(1); i <= txns; i++ {
					m.RegisterTxn(i, int64(i)*10)
				}
				for step := 0; step < 150; step++ {
					txn := TxnID(1 + r.Intn(txns))
					if blocked[txn] {
						continue
					}
					mode := Shared
					if r.Bool(0.5) {
						mode = Exclusive
					}
					out, victims := m.Request(txn, GranuleID(r.Intn(grans)), mode)
					if out == Wait {
						blocked[txn] = true
					}
					if out == Deadlock {
						// The timestamp rules never kill the oldest, but
						// the FCFS queue adds wait edges the rules don't
						// see; the detection backstop resolves those rare
						// cycles by sacrificing the requester, whoever it
						// is. Only wounds are asserted age-safe below.
						m.ReleaseAll(txn)
						delete(blocked, txn)
						m.RegisterTxn(txn, int64(txn)*10) // restart, same ts
					}
					for _, v := range victims {
						if v == oldest {
							t.Fatalf("%v wounded the oldest transaction", d)
						}
						m.ReleaseAll(v)
						delete(blocked, v)
						m.RegisterTxn(v, int64(v)*10)
					}
				}
				// Every still-blocked transaction has at least one blocker.
				for txn := TxnID(1); txn <= txns; txn++ {
					if blocked[txn] && len(m.WaitsFor(txn)) == 0 {
						t.Fatalf("%v: txn %d blocked with no blocker", d, txn)
					}
				}
			}
		})
	}
}

func TestDisciplineString(t *testing.T) {
	if Detect.String() != "detect" || WaitDie.String() != "wait-die" || WoundWait.String() != "wound-wait" {
		t.Fatal("discipline names wrong")
	}
}
