package lock

import (
	"testing"
	"testing/quick"

	"carat/internal/rng"
)

// recorder collects grant callbacks.
type recorder struct {
	grants [][2]int64 // (txn, granule)
}

func (r *recorder) onGrant(t TxnID, g GranuleID) {
	r.grants = append(r.grants, [2]int64{int64(t), int64(g)})
}

func newMgr() (*Manager, *recorder) {
	r := &recorder{}
	return NewManager(VictimRequester, r.onGrant), r
}

func TestSharedLocksCoexist(t *testing.T) {
	m, _ := newMgr()
	for txn := TxnID(1); txn <= 3; txn++ {
		out, victims := m.Request(txn, 10, Shared)
		if out != Granted || len(victims) != 0 {
			t.Fatalf("txn %d: %v", txn, out)
		}
	}
	if !m.Holds(1, 10, Shared) || !m.Holds(3, 10, Shared) {
		t.Fatal("shared holders missing")
	}
}

func TestExclusiveBlocksAll(t *testing.T) {
	m, rec := newMgr()
	if out, _ := m.Request(1, 5, Exclusive); out != Granted {
		t.Fatalf("first X: %v", out)
	}
	if out, _ := m.Request(2, 5, Shared); out != Wait {
		t.Fatal("S behind X must wait")
	}
	if out, _ := m.Request(3, 5, Exclusive); out != Wait {
		t.Fatal("X behind X must wait")
	}
	m.ReleaseAll(1)
	// FCFS: txn 2 (S) granted first; txn 3 (X) must keep waiting.
	if len(rec.grants) != 1 || rec.grants[0] != [2]int64{2, 5} {
		t.Fatalf("grants = %v, want [[2 5]]", rec.grants)
	}
	m.ReleaseAll(2)
	if len(rec.grants) != 2 || rec.grants[1] != [2]int64{3, 5} {
		t.Fatalf("grants = %v, want txn 3 granted after release", rec.grants)
	}
}

func TestFCFSNoOvertaking(t *testing.T) {
	m, rec := newMgr()
	m.Request(1, 7, Exclusive)
	m.Request(2, 7, Exclusive) // waits
	// A fresh S request must not overtake the queued X.
	if out, _ := m.Request(3, 7, Shared); out != Wait {
		t.Fatal("S must queue behind waiting X (fairness)")
	}
	m.ReleaseAll(1)
	if rec.grants[0][0] != 2 {
		t.Fatalf("grants = %v; txn 2 should be first", rec.grants)
	}
}

func TestReentrantRequests(t *testing.T) {
	m, _ := newMgr()
	m.Request(1, 3, Shared)
	if out, _ := m.Request(1, 3, Shared); out != Granted {
		t.Fatal("re-request of held S must be immediate")
	}
	m.Request(2, 4, Exclusive)
	if out, _ := m.Request(2, 4, Shared); out != Granted {
		t.Fatal("S under held X must be immediate")
	}
	if out, _ := m.Request(2, 4, Exclusive); out != Granted {
		t.Fatal("re-request of held X must be immediate")
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m, _ := newMgr()
	m.Request(1, 9, Shared)
	out, _ := m.Request(1, 9, Exclusive)
	if out != Granted {
		t.Fatalf("sole-holder upgrade: %v", out)
	}
	if !m.Holds(1, 9, Exclusive) {
		t.Fatal("upgrade not recorded")
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m, rec := newMgr()
	m.Request(1, 9, Shared)
	m.Request(2, 9, Shared)
	out, _ := m.Request(1, 9, Exclusive)
	if out != Wait {
		t.Fatalf("upgrade with co-holder: %v, want Wait", out)
	}
	m.ReleaseAll(2)
	if len(rec.grants) != 1 || rec.grants[0] != [2]int64{1, 9} {
		t.Fatalf("grants = %v; upgrade should complete", rec.grants)
	}
	if !m.Holds(1, 9, Exclusive) {
		t.Fatal("upgraded mode not recorded")
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two S holders both upgrading is the classic 2-cycle.
	m, _ := newMgr()
	m.Request(1, 9, Shared)
	m.Request(2, 9, Shared)
	if out, _ := m.Request(1, 9, Exclusive); out != Wait {
		t.Fatal("first upgrade should wait")
	}
	out, victims := m.Request(2, 9, Exclusive)
	if out != Deadlock {
		t.Fatalf("second upgrade: %v (victims=%v), want Deadlock", out, victims)
	}
	if m.Stats().Deadlocks != 1 {
		t.Fatalf("deadlocks = %d", m.Stats().Deadlocks)
	}
}

func TestTwoCycleDeadlockDetected(t *testing.T) {
	m, _ := newMgr()
	m.Request(1, 100, Exclusive)
	m.Request(2, 200, Exclusive)
	if out, _ := m.Request(1, 200, Exclusive); out != Wait {
		t.Fatal("t1 should wait for t2")
	}
	out, _ := m.Request(2, 100, Exclusive)
	if out != Deadlock {
		t.Fatalf("t2 closing the cycle: %v, want Deadlock", out)
	}
	// Victim's request was withdrawn: releasing t1's lock on 200 must not
	// leave t2 queued there.
	if m.Waiting(2) {
		t.Fatal("victim must not remain queued")
	}
}

func TestThreeCycleDeadlockDetected(t *testing.T) {
	m, _ := newMgr()
	m.Request(1, 1, Exclusive)
	m.Request(2, 2, Exclusive)
	m.Request(3, 3, Exclusive)
	m.Request(1, 2, Exclusive) // 1 -> 2
	m.Request(2, 3, Exclusive) // 2 -> 3
	out, _ := m.Request(3, 1, Exclusive)
	if out != Deadlock {
		t.Fatalf("3-cycle: %v, want Deadlock", out)
	}
}

func TestSharedDoesNotDeadlockWithShared(t *testing.T) {
	m, _ := newMgr()
	m.Request(1, 1, Shared)
	m.Request(2, 2, Shared)
	if out, _ := m.Request(1, 2, Shared); out != Granted {
		t.Fatal("S-S must not conflict")
	}
	if out, _ := m.Request(2, 1, Shared); out != Granted {
		t.Fatal("S-S must not conflict")
	}
}

func TestVictimYoungest(t *testing.T) {
	r := &recorder{}
	m := NewManager(VictimYoungest, r.onGrant)
	m.Request(1, 1, Exclusive)
	m.Request(5, 2, Exclusive)
	m.Request(1, 2, Exclusive) // 1 -> 5
	out, victims := m.Request(5, 1, Exclusive)
	// Youngest on the cycle is 5 == requester, so Deadlock.
	if out != Deadlock || len(victims) != 0 {
		t.Fatalf("out=%v victims=%v; requester is youngest", out, victims)
	}

	m2 := NewManager(VictimYoungest, r.onGrant)
	m2.Request(5, 1, Exclusive)
	m2.Request(1, 2, Exclusive)
	m2.Request(5, 2, Exclusive) // 5 -> 1
	out, victims = m2.Request(1, 1, Exclusive)
	// Youngest is 5, not the requester: requester waits, victim reported.
	if out != Wait || len(victims) != 1 || victims[0] != 5 {
		t.Fatalf("out=%v victims=%v; want Wait with victim 5", out, victims)
	}
	// Aborting the victim unblocks the requester.
	m2.ReleaseAll(5)
	found := false
	for _, g := range r.grants {
		if g == [2]int64{1, 1} {
			found = true
		}
	}
	if !found {
		t.Fatalf("grants = %v; txn 1 should be granted after victim abort", r.grants)
	}
}

func TestVictimFewestLocks(t *testing.T) {
	r := &recorder{}
	m := NewManager(VictimFewestLocks, r.onGrant)
	// txn 1 holds 3 locks, txn 2 holds 1.
	m.Request(1, 1, Exclusive)
	m.Request(1, 2, Exclusive)
	m.Request(1, 3, Exclusive)
	m.Request(2, 4, Exclusive)
	m.Request(2, 1, Exclusive) // 2 -> 1
	out, victims := m.Request(1, 4, Exclusive)
	// Cycle {1,2}; fewest locks is 2.
	if out != Wait || len(victims) != 1 || victims[0] != 2 {
		t.Fatalf("out=%v victims=%v, want Wait victim=2", out, victims)
	}
}

func TestReleaseAllCleansState(t *testing.T) {
	m, _ := newMgr()
	m.Request(1, 1, Exclusive)
	m.Request(1, 2, Shared)
	m.Request(2, 1, Shared) // waits
	m.ReleaseAll(1)
	if m.NumHeld(1) != 0 {
		t.Fatal("held locks survived ReleaseAll")
	}
	if !m.Holds(2, 1, Shared) {
		t.Fatal("waiter not granted after release")
	}
	m.ReleaseAll(2)
	if m.LockedGranules() != 0 {
		t.Fatalf("lock table not empty: %d entries", m.LockedGranules())
	}
}

func TestWaitsForEdges(t *testing.T) {
	m, _ := newMgr()
	m.Request(1, 1, Shared)
	m.Request(2, 1, Shared)
	m.Request(3, 1, Exclusive) // waits on 1 and 2
	wf := m.WaitsFor(3)
	if len(wf) != 2 || wf[0] != 1 || wf[1] != 2 {
		t.Fatalf("WaitsFor(3) = %v, want [1 2]", wf)
	}
	if len(m.WaitsFor(1)) != 0 {
		t.Fatal("holder must not wait")
	}
	edges := m.WaitEdges()
	if len(edges) != 2 {
		t.Fatalf("WaitEdges = %v", edges)
	}
}

func TestWaitsForQueuedAhead(t *testing.T) {
	m, _ := newMgr()
	m.Request(1, 1, Shared)
	m.Request(2, 1, Exclusive) // waits on 1
	m.Request(3, 1, Shared)    // waits behind the X of 2
	wf := m.WaitsFor(3)
	found := false
	for _, x := range wf {
		if x == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("WaitsFor(3) = %v, must include queued-ahead X holder 2", wf)
	}
}

func TestStatsCounting(t *testing.T) {
	m, _ := newMgr()
	m.Request(1, 1, Exclusive)
	m.Request(2, 1, Exclusive)
	m.Request(2, 2, Shared)
	s := m.Stats()
	if s.Requests != 3 || s.Immediate != 2 || s.Waits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestPropertyNoLostRequests drives a random schedule of requests and
// aborts and checks global invariants after every step: X locks are sole,
// holders never appear in their own wait set, and every victim's state is
// fully cleared.
func TestPropertyNoLostRequests(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		granted := make(map[TxnID]map[GranuleID]bool)
		blocked := map[TxnID]bool{}
		var m *Manager
		m = NewManager(VictimRequester, func(txn TxnID, g GranuleID) {
			if granted[txn] == nil {
				granted[txn] = map[GranuleID]bool{}
			}
			granted[txn][g] = true
			delete(blocked, txn)
		})
		live := map[TxnID]bool{}
		const txns, grans, steps = 6, 8, 200
		for i := 0; i < steps; i++ {
			txn := TxnID(1 + r.Intn(txns))
			live[txn] = true
			switch r.Intn(10) {
			case 0: // abort/finish
				m.ReleaseAll(txn)
				delete(granted, txn)
				delete(live, txn)
				delete(blocked, txn)
			default:
				if blocked[txn] {
					continue // one outstanding request per transaction
				}
				g := GranuleID(r.Intn(grans))
				mode := Shared
				if r.Bool(0.4) {
					mode = Exclusive
				}
				out, victims := m.Request(txn, g, mode)
				if out == Wait {
					blocked[txn] = true
				}
				if out == Deadlock {
					m.ReleaseAll(txn)
					delete(granted, txn)
					delete(live, txn)
				}
				for _, victim := range victims {
					m.ReleaseAll(victim)
					delete(granted, victim)
					delete(live, victim)
					delete(blocked, victim)
				}
			}
			// Invariant: an X holder is the only holder.
			for t1 := TxnID(1); t1 <= txns; t1++ {
				for g, mode := range m.HeldBy(t1) {
					if mode != Exclusive {
						continue
					}
					for t2 := TxnID(1); t2 <= txns; t2++ {
						if t2 != t1 && m.Holds(t2, g, Shared) {
							return false
						}
					}
				}
			}
			// Invariant: no transaction waits for itself.
			for t1 := TxnID(1); t1 <= txns; t1++ {
				for _, w := range m.WaitsFor(t1) {
					if w == t1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNoUndetectedStall builds random conflict patterns and checks
// that after all grants and victim aborts settle, any still-waiting
// transaction has a live blocker (no lost wakeups).
func TestPropertyNoUndetectedStall(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		blocked := map[TxnID]bool{}
		var m *Manager
		m = NewManager(VictimRequester, func(txn TxnID, _ GranuleID) { delete(blocked, txn) })
		const txns, grans = 5, 6
		for i := 0; i < 120; i++ {
			txn := TxnID(1 + r.Intn(txns))
			if blocked[txn] {
				continue // a blocked transaction issues no further requests
			}
			g := GranuleID(r.Intn(grans))
			mode := Shared
			if r.Bool(0.5) {
				mode = Exclusive
			}
			out, victims := m.Request(txn, g, mode)
			if out == Wait {
				blocked[txn] = true
			}
			if out == Deadlock {
				m.ReleaseAll(txn)
			}
			for _, victim := range victims {
				m.ReleaseAll(victim)
				delete(blocked, victim)
			}
		}
		// Every waiter must have at least one blocker that holds a lock.
		for t1 := TxnID(1); t1 <= txns; t1++ {
			if !m.Waiting(t1) {
				continue
			}
			blockers := m.WaitsFor(t1)
			if len(blockers) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
