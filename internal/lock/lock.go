// Package lock implements the CARAT lock manager: two-phase locking at
// database-block ("granule") granularity with shared and exclusive modes,
// FCFS wait queues, lock upgrades, and local deadlock detection by search
// of the transaction-wait-for graph, exactly the regime modelled in the
// paper (Sections 2–3).
//
// The manager is independent of the simulation kernel: it is a synchronous
// data structure that reports grants through a callback, so it can be unit-
// and property-tested in isolation and driven by the testbed's processes.
package lock

import (
	"fmt"
	"slices"
)

// Mode is a lock mode.
type Mode int

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single writer.
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// compatible reports whether a lock in mode a coexists with one in mode b.
func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// TxnID identifies a transaction agent at one site.
type TxnID int64

// GranuleID identifies one database block at one site. A site's own
// (primary) granules use the block number directly, in [0, granules);
// replicated copies of other sites' granules are routed into the disjoint
// ReplicaGranule namespace, so a failed-over read never contends with the
// serving site's primary data.
type GranuleID int

// ReplicaGranule maps the copy of granule g owned by site owner into a
// lock id disjoint from every primary granule id: primary-copy locking
// routes writes to the owner's [0, granules) namespace, while reads served
// at a replica lock this id at the serving site.
func ReplicaGranule(owner, granules, g int) GranuleID {
	return GranuleID((owner+1)*granules + g)
}

// Outcome is the result of a lock request.
type Outcome int

const (
	// Granted means the lock was acquired immediately.
	Granted Outcome = iota
	// Wait means the request was queued; a Grant callback will follow.
	Wait
	// Deadlock means the request would close a wait-for cycle and the
	// requester was chosen as victim; the request was not queued.
	Deadlock
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Granted:
		return "granted"
	case Wait:
		return "wait"
	case Deadlock:
		return "deadlock"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// VictimPolicy chooses which transaction on a wait-for cycle dies.
type VictimPolicy int

const (
	// VictimRequester aborts the transaction whose request closed the
	// cycle — CARAT's policy and the one Pd(t,i) in the model describes
	// ("a blocked transaction is chosen as deadlock victim").
	VictimRequester VictimPolicy = iota
	// VictimYoungest aborts the cycle member with the largest TxnID.
	VictimYoungest
	// VictimFewestLocks aborts the cycle member holding the fewest locks,
	// minimizing rollback work.
	VictimFewestLocks
)

// Discipline selects how the manager deals with potential deadlocks.
// CARAT uses detection (the paper's subject); the two timestamp-based
// prevention schemes of Rosenkrantz et al. are provided as the classical
// baselines the contemporaneous modeling literature compares against.
type Discipline int

const (
	// Detect allows arbitrary waiting and searches the wait-for graph for
	// cycles on every blocked request (dynamic locking with deadlock
	// detection — the paper's scheme).
	Detect Discipline = iota
	// WaitDie lets a requester wait only for younger holders; conflicting
	// with an older holder kills the requester (non-preemptive
	// prevention). Timestamps come from RegisterTxn.
	WaitDie
	// WoundWait lets an older requester wound (abort) younger conflicting
	// holders and wait; a younger requester waits for older holders
	// (preemptive prevention).
	WoundWait
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case Detect:
		return "detect"
	case WaitDie:
		return "wait-die"
	case WoundWait:
		return "wound-wait"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// request is a queued lock request.
type request struct {
	txn     TxnID
	mode    Mode
	upgrade bool
}

// grantRec is one holder of a granule. The granted set is a small slice —
// one holder for exclusive locks, rarely more than a handful for shared —
// so linear scans beat a map and the entry recycles with zero allocation.
type grantRec struct {
	txn  TxnID
	mode Mode
}

// entry is the lock table entry for one granule.
type entry struct {
	granted []grantRec
	queue   []*request
}

func (e *entry) grantedMode() (Mode, bool) {
	if len(e.granted) == 0 {
		return Shared, false
	}
	for _, gr := range e.granted {
		if gr.mode == Exclusive {
			return Exclusive, true
		}
	}
	return Shared, true
}

// grantedOf returns txn's granted mode on e, if any.
func (e *entry) grantedOf(txn TxnID) (Mode, bool) {
	for _, gr := range e.granted {
		if gr.txn == txn {
			return gr.mode, true
		}
	}
	return Shared, false
}

// setGranted records txn as holding e in mode, replacing any existing record.
func (e *entry) setGranted(txn TxnID, mode Mode) {
	for i := range e.granted {
		if e.granted[i].txn == txn {
			e.granted[i].mode = mode
			return
		}
	}
	e.granted = append(e.granted, grantRec{txn: txn, mode: mode})
}

// dropGranted removes txn's holder record from e, preserving order.
func (e *entry) dropGranted(txn TxnID) {
	for i := range e.granted {
		if e.granted[i].txn == txn {
			n := len(e.granted)
			copy(e.granted[i:], e.granted[i+1:])
			e.granted = e.granted[:n-1]
			return
		}
	}
}

// Stats aggregates lock-manager activity for the measurement reports.
type Stats struct {
	Requests  int64 // lock requests processed
	Immediate int64 // granted without waiting
	Waits     int64 // requests that had to queue
	Deadlocks int64 // cycles detected
	Upgrades  int64 // S->X upgrades requested
}

// Manager is one site's lock manager.
type Manager struct {
	table      map[GranuleID]*entry
	held       map[TxnID]map[GranuleID]Mode
	policy     VictimPolicy
	discipline Discipline
	ts         map[TxnID]int64 // prevention timestamps (RegisterTxn)

	// onGrant is invoked when a queued request is finally granted.
	onGrant func(txn TxnID, g GranuleID)

	// queuedAt indexes the granules on which each transaction has a queued
	// request, so the wait-for graph (WaitsFor, Waiting, ReleaseAll's
	// withdrawal pass) is read without scanning the whole lock table.
	queuedAt map[TxnID][]GranuleID

	// Free lists and scratch buffers. Lock-table entries, queued requests,
	// per-transaction held maps and index slices churn once per granule
	// touch / wait / transaction, so they are recycled (with their map
	// capacity) instead of reallocated.
	freeEntries []*entry
	freeReqs    []*request
	freeHeld    []map[GranuleID]Mode
	freeGSlices [][]GranuleID
	seenBuf     map[TxnID]struct{} // WaitsFor scratch
	heldBuf     []GranuleID        // ReleaseAll scratch
	queuedBuf   []GranuleID        // ReleaseAll scratch

	stats Stats
}

// newEntry takes a lock-table entry from the free list.
func (m *Manager) newEntry() *entry {
	if k := len(m.freeEntries); k > 0 {
		e := m.freeEntries[k-1]
		m.freeEntries[k-1] = nil
		m.freeEntries = m.freeEntries[:k-1]
		return e
	}
	return &entry{}
}

// newRequest takes a request record from the free list.
func (m *Manager) newRequest(txn TxnID, mode Mode, upgrade bool) *request {
	if k := len(m.freeReqs); k > 0 {
		r := m.freeReqs[k-1]
		m.freeReqs[k-1] = nil
		m.freeReqs = m.freeReqs[:k-1]
		*r = request{txn: txn, mode: mode, upgrade: upgrade}
		return r
	}
	return &request{txn: txn, mode: mode, upgrade: upgrade}
}

func (m *Manager) freeRequest(r *request) {
	m.freeReqs = append(m.freeReqs, r)
}

// pushRequest queues req on e (the entry for granule g). Upgrades go to the
// head of the queue: the holder cannot be asked to wait behind fresh requests
// for a lock it holds.
func (m *Manager) pushRequest(e *entry, g GranuleID, req *request) {
	if req.upgrade {
		e.queue = append(e.queue, nil)
		copy(e.queue[1:], e.queue)
		e.queue[0] = req
	} else {
		e.queue = append(e.queue, req)
	}
	m.noteQueued(req.txn, g)
}

// noteQueued records in the index that txn has a queued request on g.
func (m *Manager) noteQueued(txn TxnID, g GranuleID) {
	s, ok := m.queuedAt[txn]
	if !ok {
		if k := len(m.freeGSlices); k > 0 {
			s = m.freeGSlices[k-1]
			m.freeGSlices[k-1] = nil
			m.freeGSlices = m.freeGSlices[:k-1]
		}
	}
	m.queuedAt[txn] = append(s, g)
}

// unnoteQueued removes the index record of txn's queued request on g,
// recycling the slice once txn has no queued requests left.
func (m *Manager) unnoteQueued(txn TxnID, g GranuleID) {
	s := m.queuedAt[txn]
	for i, x := range s {
		if x == g {
			s[i] = s[len(s)-1]
			s = s[:len(s)-1]
			break
		}
	}
	if len(s) == 0 {
		delete(m.queuedAt, txn)
		if s != nil {
			m.freeGSlices = append(m.freeGSlices, s)
		}
		return
	}
	m.queuedAt[txn] = s
}

// NewManager creates a detection-discipline lock manager. onGrant may be
// nil if the caller never lets requests wait (as in some unit tests).
func NewManager(policy VictimPolicy, onGrant func(txn TxnID, g GranuleID)) *Manager {
	return NewManagerWithDiscipline(Detect, policy, onGrant)
}

// NewManagerWithDiscipline creates a manager with an explicit deadlock
// discipline. The victim policy applies to Detect only.
func NewManagerWithDiscipline(d Discipline, policy VictimPolicy, onGrant func(txn TxnID, g GranuleID)) *Manager {
	return &Manager{
		table:      make(map[GranuleID]*entry),
		held:       make(map[TxnID]map[GranuleID]Mode),
		policy:     policy,
		discipline: d,
		ts:         make(map[TxnID]int64),
		queuedAt:   make(map[TxnID][]GranuleID),
		seenBuf:    make(map[TxnID]struct{}),
		onGrant:    onGrant,
	}
}

// RegisterTxn records a transaction's prevention timestamp (smaller =
// older). Wait-die and wound-wait require the timestamp to survive
// restarts, so re-executions of the same user transaction must register
// the original timestamp. Unregistered transactions default to their id.
func (m *Manager) RegisterTxn(txn TxnID, timestamp int64) {
	m.ts[txn] = timestamp
}

// timestampOf returns the prevention timestamp.
func (m *Manager) timestampOf(txn TxnID) int64 {
	if t, ok := m.ts[txn]; ok {
		return t
	}
	return int64(txn)
}

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// HeldBy returns the locks txn currently holds, as a granule->mode map.
// The returned map is the manager's own; callers must not mutate it.
func (m *Manager) HeldBy(txn TxnID) map[GranuleID]Mode { return m.held[txn] }

// NumHeld returns the number of granules txn has locked.
func (m *Manager) NumHeld(txn TxnID) int { return len(m.held[txn]) }

// Holds reports whether txn holds granule g in a mode covering want.
func (m *Manager) Holds(txn TxnID, g GranuleID, want Mode) bool {
	have, ok := m.held[txn][g]
	if !ok {
		return false
	}
	return want == Shared || have == Exclusive
}

// Request asks for granule g in the given mode on behalf of txn. A
// transaction may have at most one outstanding (waiting) request at a time:
// after a Wait outcome it must not issue further requests until onGrant
// fires or it is aborted — which mirrors the testbed, where a blocked DM
// server does no further work for the transaction.
//
// Returns Granted if acquired now; Wait if queued (the manager calls
// onGrant(txn, g) when it is eventually granted); Deadlock if the
// discipline decided the requester must abort (a detected cycle with the
// requester as victim, or a wait-die death). The victims slice lists other
// transactions the caller must abort: the non-requester victim of a
// detected cycle, or the younger holders wounded under wound-wait. Abort
// them with ReleaseAll (the testbed interrupts their processes), which may
// in turn grant this request through onGrant.
func (m *Manager) Request(txn TxnID, g GranuleID, mode Mode) (out Outcome, victims []TxnID) {
	m.stats.Requests++
	e := m.table[g]
	if e == nil {
		e = m.newEntry()
		m.table[g] = e
	}

	// Re-entrant: already held in a sufficient mode.
	if have, ok := e.grantedOf(txn); ok {
		if mode == Shared || have == Exclusive {
			m.stats.Immediate++
			return Granted, nil
		}
		// Upgrade S -> X.
		m.stats.Upgrades++
		if m.soleHolder(e, txn) {
			e.setGranted(txn, Exclusive)
			m.held[txn][g] = Exclusive
			m.stats.Immediate++
			return Granted, nil
		}
		return m.block(e, txn, g, mode, true)
	}

	if m.grantableNow(e, txn, mode) {
		m.grant(e, txn, g, mode)
		m.stats.Immediate++
		return Granted, nil
	}
	return m.block(e, txn, g, mode, false)
}

// conflictingHolders returns the holders of e whose mode conflicts with a
// request by txn in the given mode.
func (m *Manager) conflictingHolders(e *entry, txn TxnID, mode Mode) []TxnID {
	var out []TxnID
	for _, gr := range e.granted {
		if gr.txn == txn {
			continue
		}
		if !compatible(mode, gr.mode) {
			out = append(out, gr.txn)
		}
	}
	slices.Sort(out)
	return out
}

// block handles a request that cannot be granted now, applying the
// manager's deadlock discipline.
func (m *Manager) block(e *entry, txn TxnID, g GranuleID, mode Mode, upgrade bool) (Outcome, []TxnID) {
	switch m.discipline {
	case WaitDie:
		// Non-preemptive: the requester may wait only if it is older than
		// every conflicting holder; otherwise it dies.
		myTS := m.timestampOf(txn)
		for _, h := range m.conflictingHolders(e, txn, mode) {
			if myTS >= m.timestampOf(h) {
				m.stats.Deadlocks++
				return Deadlock, nil
			}
		}
		return m.enqueue(e, txn, g, mode, upgrade)
	case WoundWait:
		// Preemptive: the requester wounds every younger conflicting
		// holder, then waits.
		myTS := m.timestampOf(txn)
		var wounds []TxnID
		for _, h := range m.conflictingHolders(e, txn, mode) {
			if m.timestampOf(h) > myTS {
				wounds = append(wounds, h)
			}
		}
		if len(wounds) > 0 {
			// Any wait-for cycle through this request runs through a
			// wounded holder and dies with it, so skip the detection
			// backstop and queue directly.
			m.stats.Deadlocks += int64(len(wounds))
			m.pushRequest(e, g, m.newRequest(txn, mode, upgrade))
			m.stats.Waits++
			return Wait, wounds
		}
		return m.enqueue(e, txn, g, mode, upgrade)
	default:
		return m.enqueue(e, txn, g, mode, upgrade)
	}
}

// soleHolder reports whether txn is the only holder of e.
func (m *Manager) soleHolder(e *entry, txn TxnID) bool {
	return len(e.granted) == 1 && e.granted[0].txn == txn
}

// grantableNow reports whether a fresh request can be granted immediately:
// compatible with every holder and no waiter queued ahead (FCFS fairness).
func (m *Manager) grantableNow(e *entry, txn TxnID, mode Mode) bool {
	if len(e.queue) > 0 {
		return false
	}
	for _, gr := range e.granted {
		if gr.txn == txn {
			continue
		}
		if !compatible(mode, gr.mode) {
			return false
		}
	}
	return true
}

// grant records txn as a holder of g.
func (m *Manager) grant(e *entry, txn TxnID, g GranuleID, mode Mode) {
	if have, ok := e.grantedOf(txn); !ok || mode == Exclusive && have == Shared {
		e.setGranted(txn, mode)
	}
	hm := m.held[txn]
	if hm == nil {
		if k := len(m.freeHeld); k > 0 {
			hm = m.freeHeld[k-1]
			m.freeHeld[k-1] = nil
			m.freeHeld = m.freeHeld[:k-1]
		} else {
			hm = make(map[GranuleID]Mode)
		}
		m.held[txn] = hm
	}
	if have, ok := hm[g]; !ok || mode == Exclusive && have == Shared {
		hm[g] = mode
	}
}

// enqueue queues the request and runs cycle detection — the primary
// mechanism under Detect, and a liveness backstop under the prevention
// disciplines (FCFS queue ordering can, rarely, arrange waits the
// timestamp rules did not foresee).
func (m *Manager) enqueue(e *entry, txn TxnID, g GranuleID, mode Mode, upgrade bool) (Outcome, []TxnID) {
	m.pushRequest(e, g, m.newRequest(txn, mode, upgrade))
	m.stats.Waits++

	cycle := m.findCycle(txn)
	if cycle == nil {
		return Wait, nil
	}
	m.stats.Deadlocks++
	v := m.chooseVictim(txn, cycle)
	if v == txn || m.discipline != Detect {
		// Withdraw the request; the caller aborts itself. Prevention
		// disciplines always sacrifice the requester on the backstop path.
		m.removeFromQueue(e, g, txn)
		return Deadlock, nil
	}
	// Someone else dies. The caller must abort v (ReleaseAll(v)), which
	// may immediately grant this request; we still report Wait and let
	// the grant arrive through onGrant.
	return Wait, []TxnID{v}
}

// chooseVictim applies the victim policy to the detected cycle.
func (m *Manager) chooseVictim(requester TxnID, cycle []TxnID) TxnID {
	switch m.policy {
	case VictimYoungest:
		v := cycle[0]
		for _, t := range cycle[1:] {
			if t > v {
				v = t
			}
		}
		return v
	case VictimFewestLocks:
		v := cycle[0]
		for _, t := range cycle[1:] {
			if len(m.held[t]) < len(m.held[v]) {
				v = t
			}
		}
		return v
	default:
		return requester
	}
}

// removeFromQueue deletes txn's queued request on e (granule g), if any.
func (m *Manager) removeFromQueue(e *entry, g GranuleID, txn TxnID) {
	for i, r := range e.queue {
		if r.txn == txn {
			n := len(e.queue)
			copy(e.queue[i:], e.queue[i+1:])
			e.queue[n-1] = nil
			e.queue = e.queue[:n-1]
			m.freeRequest(r)
			m.unnoteQueued(txn, g)
			return
		}
	}
}

// ReleaseAll drops every lock and queued request of txn (transaction end or
// abort) and dispatches newly grantable waiters. Granules are processed in
// sorted order so grant sequences are deterministic.
func (m *Manager) ReleaseAll(txn TxnID) {
	held := m.heldBuf[:0]
	for g := range m.held[txn] {
		held = append(held, g)
	}
	slices.Sort(held)
	m.heldBuf = held
	for _, g := range held {
		e := m.table[g]
		e.dropGranted(txn)
		m.dispatch(e, g)
		m.cleanup(e, g)
	}
	if hm, ok := m.held[txn]; ok {
		clear(hm)
		m.freeHeld = append(m.freeHeld, hm)
	}
	delete(m.held, txn)
	delete(m.ts, txn)
	// Withdraw any still-queued requests (a victim may be waiting somewhere).
	// The index slice is copied because removeFromQueue mutates it.
	queued := append(m.queuedBuf[:0], m.queuedAt[txn]...)
	slices.Sort(queued)
	m.queuedBuf = queued
	for _, g := range queued {
		e := m.table[g]
		m.removeFromQueue(e, g, txn)
		m.dispatch(e, g)
		m.cleanup(e, g)
	}
}

// cleanup recycles empty lock-table entries; both slices keep their
// capacity for the next use.
func (m *Manager) cleanup(e *entry, g GranuleID) {
	if len(e.granted) == 0 && len(e.queue) == 0 {
		delete(m.table, g)
		e.queue = e.queue[:0]
		m.freeEntries = append(m.freeEntries, e)
	}
}

// dispatch grants queued requests in FCFS order while they are compatible
// with the granted set.
func (m *Manager) dispatch(e *entry, g GranuleID) {
	for len(e.queue) > 0 {
		req := e.queue[0]
		ok := true
		for _, gr := range e.granted {
			if gr.txn == req.txn {
				continue
			}
			if !compatible(req.mode, gr.mode) {
				ok = false
				break
			}
		}
		if !ok {
			return
		}
		n := len(e.queue)
		copy(e.queue, e.queue[1:])
		e.queue[n-1] = nil
		e.queue = e.queue[:n-1]
		txn := req.txn
		m.unnoteQueued(txn, g)
		m.grant(e, txn, g, req.mode)
		m.freeRequest(req)
		if m.onGrant != nil {
			m.onGrant(txn, g)
		}
	}
}

// WaitsFor returns the distinct transactions that txn is waiting on: the
// incompatible holders of every granule where txn has a queued request,
// plus incompatible requests queued ahead of it (they will hold the lock
// before txn can). Sorted for determinism.
func (m *Manager) WaitsFor(txn TxnID) []TxnID {
	seen := m.seenBuf
	clear(seen)
	for _, g := range m.queuedAt[txn] {
		e := m.table[g]
		pos := -1
		var mode Mode
		for i, r := range e.queue {
			if r.txn == txn {
				pos = i
				mode = r.mode
				break
			}
		}
		if pos < 0 {
			continue
		}
		for _, gr := range e.granted {
			if gr.txn == txn {
				continue
			}
			if !compatible(mode, gr.mode) || mode == Exclusive || gr.mode == Exclusive {
				seen[gr.txn] = struct{}{}
			}
		}
		for i := 0; i < pos; i++ {
			ahead := e.queue[i]
			if ahead.txn != txn && (!compatible(mode, ahead.mode)) {
				seen[ahead.txn] = struct{}{}
			}
		}
	}
	out := make([]TxnID, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	slices.Sort(out)
	return out
}

// Waiting reports whether txn has a queued (ungranted) request.
func (m *Manager) Waiting(txn TxnID) bool { return len(m.queuedAt[txn]) > 0 }

// findCycle searches the wait-for graph for a cycle reachable from start
// that includes start, returning the cycle members (nil if none). Depth-
// first search over WaitsFor edges.
func (m *Manager) findCycle(start TxnID) []TxnID {
	var path []TxnID
	onPath := make(map[TxnID]struct{})
	visited := make(map[TxnID]struct{})
	var dfs func(t TxnID) []TxnID
	dfs = func(t TxnID) []TxnID {
		path = append(path, t)
		onPath[t] = struct{}{}
		defer func() {
			path = path[:len(path)-1]
			delete(onPath, t)
		}()
		for _, next := range m.WaitsFor(t) {
			if next == start {
				cycle := make([]TxnID, len(path))
				copy(cycle, path)
				return cycle
			}
			if _, seen := visited[next]; seen {
				continue
			}
			if _, on := onPath[next]; on {
				continue
			}
			if c := dfs(next); c != nil {
				return c
			}
			visited[next] = struct{}{}
		}
		return nil
	}
	return dfs(start)
}

// LockedGranules returns the number of granules with at least one holder.
func (m *Manager) LockedGranules() int { return len(m.table) }

// WaitEdges returns every wait-for edge at this site as (waiter, holder)
// pairs, for the distributed probe algorithm. Sorted for determinism.
func (m *Manager) WaitEdges() [][2]TxnID {
	waiters := make([]TxnID, 0, len(m.queuedAt))
	for t := range m.queuedAt {
		waiters = append(waiters, t)
	}
	slices.Sort(waiters)
	var out [][2]TxnID
	for _, w := range waiters {
		for _, h := range m.WaitsFor(w) {
			out = append(out, [2]TxnID{w, h})
		}
	}
	return out
}
