// Package lock implements the CARAT lock manager: two-phase locking at
// database-block ("granule") granularity with shared and exclusive modes,
// FCFS wait queues, lock upgrades, and local deadlock detection by search
// of the transaction-wait-for graph, exactly the regime modelled in the
// paper (Sections 2–3).
//
// The manager is independent of the simulation kernel: it is a synchronous
// data structure that reports grants through a callback, so it can be unit-
// and property-tested in isolation and driven by the testbed's processes.
package lock

import (
	"fmt"
	"sort"
)

// Mode is a lock mode.
type Mode int

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single writer.
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// compatible reports whether a lock in mode a coexists with one in mode b.
func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// TxnID identifies a transaction agent at one site.
type TxnID int64

// GranuleID identifies one database block at one site. A site's own
// (primary) granules use the block number directly, in [0, granules);
// replicated copies of other sites' granules are routed into the disjoint
// ReplicaGranule namespace, so a failed-over read never contends with the
// serving site's primary data.
type GranuleID int

// ReplicaGranule maps the copy of granule g owned by site owner into a
// lock id disjoint from every primary granule id: primary-copy locking
// routes writes to the owner's [0, granules) namespace, while reads served
// at a replica lock this id at the serving site.
func ReplicaGranule(owner, granules, g int) GranuleID {
	return GranuleID((owner+1)*granules + g)
}

// Outcome is the result of a lock request.
type Outcome int

const (
	// Granted means the lock was acquired immediately.
	Granted Outcome = iota
	// Wait means the request was queued; a Grant callback will follow.
	Wait
	// Deadlock means the request would close a wait-for cycle and the
	// requester was chosen as victim; the request was not queued.
	Deadlock
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Granted:
		return "granted"
	case Wait:
		return "wait"
	case Deadlock:
		return "deadlock"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// VictimPolicy chooses which transaction on a wait-for cycle dies.
type VictimPolicy int

const (
	// VictimRequester aborts the transaction whose request closed the
	// cycle — CARAT's policy and the one Pd(t,i) in the model describes
	// ("a blocked transaction is chosen as deadlock victim").
	VictimRequester VictimPolicy = iota
	// VictimYoungest aborts the cycle member with the largest TxnID.
	VictimYoungest
	// VictimFewestLocks aborts the cycle member holding the fewest locks,
	// minimizing rollback work.
	VictimFewestLocks
)

// Discipline selects how the manager deals with potential deadlocks.
// CARAT uses detection (the paper's subject); the two timestamp-based
// prevention schemes of Rosenkrantz et al. are provided as the classical
// baselines the contemporaneous modeling literature compares against.
type Discipline int

const (
	// Detect allows arbitrary waiting and searches the wait-for graph for
	// cycles on every blocked request (dynamic locking with deadlock
	// detection — the paper's scheme).
	Detect Discipline = iota
	// WaitDie lets a requester wait only for younger holders; conflicting
	// with an older holder kills the requester (non-preemptive
	// prevention). Timestamps come from RegisterTxn.
	WaitDie
	// WoundWait lets an older requester wound (abort) younger conflicting
	// holders and wait; a younger requester waits for older holders
	// (preemptive prevention).
	WoundWait
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case Detect:
		return "detect"
	case WaitDie:
		return "wait-die"
	case WoundWait:
		return "wound-wait"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// request is a queued lock request.
type request struct {
	txn     TxnID
	mode    Mode
	upgrade bool
}

// entry is the lock table entry for one granule.
type entry struct {
	granted map[TxnID]Mode
	queue   []*request
}

func (e *entry) grantedMode() (Mode, bool) {
	if len(e.granted) == 0 {
		return Shared, false
	}
	for _, m := range e.granted {
		if m == Exclusive {
			return Exclusive, true
		}
	}
	return Shared, true
}

// Stats aggregates lock-manager activity for the measurement reports.
type Stats struct {
	Requests  int64 // lock requests processed
	Immediate int64 // granted without waiting
	Waits     int64 // requests that had to queue
	Deadlocks int64 // cycles detected
	Upgrades  int64 // S->X upgrades requested
}

// Manager is one site's lock manager.
type Manager struct {
	table      map[GranuleID]*entry
	held       map[TxnID]map[GranuleID]Mode
	policy     VictimPolicy
	discipline Discipline
	ts         map[TxnID]int64 // prevention timestamps (RegisterTxn)

	// onGrant is invoked when a queued request is finally granted.
	onGrant func(txn TxnID, g GranuleID)

	stats Stats
}

// NewManager creates a detection-discipline lock manager. onGrant may be
// nil if the caller never lets requests wait (as in some unit tests).
func NewManager(policy VictimPolicy, onGrant func(txn TxnID, g GranuleID)) *Manager {
	return NewManagerWithDiscipline(Detect, policy, onGrant)
}

// NewManagerWithDiscipline creates a manager with an explicit deadlock
// discipline. The victim policy applies to Detect only.
func NewManagerWithDiscipline(d Discipline, policy VictimPolicy, onGrant func(txn TxnID, g GranuleID)) *Manager {
	return &Manager{
		table:      make(map[GranuleID]*entry),
		held:       make(map[TxnID]map[GranuleID]Mode),
		policy:     policy,
		discipline: d,
		ts:         make(map[TxnID]int64),
		onGrant:    onGrant,
	}
}

// RegisterTxn records a transaction's prevention timestamp (smaller =
// older). Wait-die and wound-wait require the timestamp to survive
// restarts, so re-executions of the same user transaction must register
// the original timestamp. Unregistered transactions default to their id.
func (m *Manager) RegisterTxn(txn TxnID, timestamp int64) {
	m.ts[txn] = timestamp
}

// timestampOf returns the prevention timestamp.
func (m *Manager) timestampOf(txn TxnID) int64 {
	if t, ok := m.ts[txn]; ok {
		return t
	}
	return int64(txn)
}

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// HeldBy returns the locks txn currently holds, as a granule->mode map.
// The returned map is the manager's own; callers must not mutate it.
func (m *Manager) HeldBy(txn TxnID) map[GranuleID]Mode { return m.held[txn] }

// NumHeld returns the number of granules txn has locked.
func (m *Manager) NumHeld(txn TxnID) int { return len(m.held[txn]) }

// Holds reports whether txn holds granule g in a mode covering want.
func (m *Manager) Holds(txn TxnID, g GranuleID, want Mode) bool {
	have, ok := m.held[txn][g]
	if !ok {
		return false
	}
	return want == Shared || have == Exclusive
}

// Request asks for granule g in the given mode on behalf of txn. A
// transaction may have at most one outstanding (waiting) request at a time:
// after a Wait outcome it must not issue further requests until onGrant
// fires or it is aborted — which mirrors the testbed, where a blocked DM
// server does no further work for the transaction.
//
// Returns Granted if acquired now; Wait if queued (the manager calls
// onGrant(txn, g) when it is eventually granted); Deadlock if the
// discipline decided the requester must abort (a detected cycle with the
// requester as victim, or a wait-die death). The victims slice lists other
// transactions the caller must abort: the non-requester victim of a
// detected cycle, or the younger holders wounded under wound-wait. Abort
// them with ReleaseAll (the testbed interrupts their processes), which may
// in turn grant this request through onGrant.
func (m *Manager) Request(txn TxnID, g GranuleID, mode Mode) (out Outcome, victims []TxnID) {
	m.stats.Requests++
	e := m.table[g]
	if e == nil {
		e = &entry{granted: make(map[TxnID]Mode)}
		m.table[g] = e
	}

	// Re-entrant: already held in a sufficient mode.
	if have, ok := e.granted[txn]; ok {
		if mode == Shared || have == Exclusive {
			m.stats.Immediate++
			return Granted, nil
		}
		// Upgrade S -> X.
		m.stats.Upgrades++
		if m.soleHolder(e, txn) {
			e.granted[txn] = Exclusive
			m.held[txn][g] = Exclusive
			m.stats.Immediate++
			return Granted, nil
		}
		return m.block(e, txn, g, mode, true)
	}

	if m.grantableNow(e, txn, mode) {
		m.grant(e, txn, g, mode)
		m.stats.Immediate++
		return Granted, nil
	}
	return m.block(e, txn, g, mode, false)
}

// conflictingHolders returns the holders of e whose mode conflicts with a
// request by txn in the given mode.
func (m *Manager) conflictingHolders(e *entry, txn TxnID, mode Mode) []TxnID {
	var out []TxnID
	for holder, hm := range e.granted {
		if holder == txn {
			continue
		}
		if !compatible(mode, hm) {
			out = append(out, holder)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// block handles a request that cannot be granted now, applying the
// manager's deadlock discipline.
func (m *Manager) block(e *entry, txn TxnID, g GranuleID, mode Mode, upgrade bool) (Outcome, []TxnID) {
	switch m.discipline {
	case WaitDie:
		// Non-preemptive: the requester may wait only if it is older than
		// every conflicting holder; otherwise it dies.
		myTS := m.timestampOf(txn)
		for _, h := range m.conflictingHolders(e, txn, mode) {
			if myTS >= m.timestampOf(h) {
				m.stats.Deadlocks++
				return Deadlock, nil
			}
		}
		return m.enqueue(e, txn, g, mode, upgrade)
	case WoundWait:
		// Preemptive: the requester wounds every younger conflicting
		// holder, then waits.
		myTS := m.timestampOf(txn)
		var wounds []TxnID
		for _, h := range m.conflictingHolders(e, txn, mode) {
			if m.timestampOf(h) > myTS {
				wounds = append(wounds, h)
			}
		}
		if len(wounds) > 0 {
			// Any wait-for cycle through this request runs through a
			// wounded holder and dies with it, so skip the detection
			// backstop and queue directly.
			m.stats.Deadlocks += int64(len(wounds))
			req := &request{txn: txn, mode: mode, upgrade: upgrade}
			if upgrade {
				e.queue = append([]*request{req}, e.queue...)
			} else {
				e.queue = append(e.queue, req)
			}
			m.stats.Waits++
			return Wait, wounds
		}
		return m.enqueue(e, txn, g, mode, upgrade)
	default:
		return m.enqueue(e, txn, g, mode, upgrade)
	}
}

// soleHolder reports whether txn is the only holder of e.
func (m *Manager) soleHolder(e *entry, txn TxnID) bool {
	if len(e.granted) != 1 {
		return false
	}
	_, ok := e.granted[txn]
	return ok
}

// grantableNow reports whether a fresh request can be granted immediately:
// compatible with every holder and no waiter queued ahead (FCFS fairness).
func (m *Manager) grantableNow(e *entry, txn TxnID, mode Mode) bool {
	if len(e.queue) > 0 {
		return false
	}
	for holder, hm := range e.granted {
		if holder == txn {
			continue
		}
		if !compatible(mode, hm) {
			return false
		}
	}
	return true
}

// grant records txn as a holder of g.
func (m *Manager) grant(e *entry, txn TxnID, g GranuleID, mode Mode) {
	if have, ok := e.granted[txn]; !ok || mode == Exclusive && have == Shared {
		e.granted[txn] = mode
	}
	hm := m.held[txn]
	if hm == nil {
		hm = make(map[GranuleID]Mode)
		m.held[txn] = hm
	}
	if have, ok := hm[g]; !ok || mode == Exclusive && have == Shared {
		hm[g] = mode
	}
}

// enqueue queues the request and runs cycle detection — the primary
// mechanism under Detect, and a liveness backstop under the prevention
// disciplines (FCFS queue ordering can, rarely, arrange waits the
// timestamp rules did not foresee).
func (m *Manager) enqueue(e *entry, txn TxnID, g GranuleID, mode Mode, upgrade bool) (Outcome, []TxnID) {
	req := &request{txn: txn, mode: mode, upgrade: upgrade}
	if upgrade {
		// Upgrades go to the head of the queue: the holder cannot be
		// asked to wait behind fresh requests for a lock it holds.
		e.queue = append([]*request{req}, e.queue...)
	} else {
		e.queue = append(e.queue, req)
	}
	m.stats.Waits++

	cycle := m.findCycle(txn)
	if cycle == nil {
		return Wait, nil
	}
	m.stats.Deadlocks++
	v := m.chooseVictim(txn, cycle)
	if v == txn || m.discipline != Detect {
		// Withdraw the request; the caller aborts itself. Prevention
		// disciplines always sacrifice the requester on the backstop path.
		m.removeFromQueue(e, txn)
		return Deadlock, nil
	}
	// Someone else dies. The caller must abort v (ReleaseAll(v)), which
	// may immediately grant this request; we still report Wait and let
	// the grant arrive through onGrant.
	return Wait, []TxnID{v}
}

// chooseVictim applies the victim policy to the detected cycle.
func (m *Manager) chooseVictim(requester TxnID, cycle []TxnID) TxnID {
	switch m.policy {
	case VictimYoungest:
		v := cycle[0]
		for _, t := range cycle[1:] {
			if t > v {
				v = t
			}
		}
		return v
	case VictimFewestLocks:
		v := cycle[0]
		for _, t := range cycle[1:] {
			if len(m.held[t]) < len(m.held[v]) {
				v = t
			}
		}
		return v
	default:
		return requester
	}
}

// removeFromQueue deletes txn's queued request on e, if any.
func (m *Manager) removeFromQueue(e *entry, txn TxnID) {
	for i, r := range e.queue {
		if r.txn == txn {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// ReleaseAll drops every lock and queued request of txn (transaction end or
// abort) and dispatches newly grantable waiters. Granules are processed in
// sorted order so grant sequences are deterministic.
func (m *Manager) ReleaseAll(txn TxnID) {
	held := make([]GranuleID, 0, len(m.held[txn]))
	for g := range m.held[txn] {
		held = append(held, g)
	}
	sort.Slice(held, func(i, j int) bool { return held[i] < held[j] })
	for _, g := range held {
		e := m.table[g]
		delete(e.granted, txn)
		m.dispatch(e, g)
		m.cleanup(e, g)
	}
	delete(m.held, txn)
	delete(m.ts, txn)
	// Remove any still-queued requests (a victim may be waiting somewhere).
	queued := make([]GranuleID, 0, 1)
	for g, e := range m.table {
		for _, r := range e.queue {
			if r.txn == txn {
				queued = append(queued, g)
				break
			}
		}
	}
	sort.Slice(queued, func(i, j int) bool { return queued[i] < queued[j] })
	for _, g := range queued {
		e := m.table[g]
		m.removeFromQueue(e, txn)
		m.dispatch(e, g)
		m.cleanup(e, g)
	}
}

// cleanup deletes empty lock-table entries.
func (m *Manager) cleanup(e *entry, g GranuleID) {
	if len(e.granted) == 0 && len(e.queue) == 0 {
		delete(m.table, g)
	}
}

// dispatch grants queued requests in FCFS order while they are compatible
// with the granted set.
func (m *Manager) dispatch(e *entry, g GranuleID) {
	for len(e.queue) > 0 {
		req := e.queue[0]
		ok := true
		for holder, hm := range e.granted {
			if holder == req.txn {
				continue
			}
			if !compatible(req.mode, hm) {
				ok = false
				break
			}
		}
		if !ok {
			return
		}
		e.queue = e.queue[1:]
		m.grant(e, req.txn, g, req.mode)
		if m.onGrant != nil {
			m.onGrant(req.txn, g)
		}
	}
}

// WaitsFor returns the distinct transactions that txn is waiting on: the
// incompatible holders of every granule where txn has a queued request,
// plus incompatible requests queued ahead of it (they will hold the lock
// before txn can). Sorted for determinism.
func (m *Manager) WaitsFor(txn TxnID) []TxnID {
	seen := make(map[TxnID]struct{})
	for _, e := range m.table {
		pos := -1
		var mode Mode
		for i, r := range e.queue {
			if r.txn == txn {
				pos = i
				mode = r.mode
				break
			}
		}
		if pos < 0 {
			continue
		}
		for holder, hm := range e.granted {
			if holder == txn {
				continue
			}
			if !compatible(mode, hm) || mode == Exclusive || hm == Exclusive {
				seen[holder] = struct{}{}
			}
		}
		for i := 0; i < pos; i++ {
			ahead := e.queue[i]
			if ahead.txn != txn && (!compatible(mode, ahead.mode)) {
				seen[ahead.txn] = struct{}{}
			}
		}
	}
	out := make([]TxnID, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Waiting reports whether txn has a queued (ungranted) request.
func (m *Manager) Waiting(txn TxnID) bool {
	for _, e := range m.table {
		for _, r := range e.queue {
			if r.txn == txn {
				return true
			}
		}
	}
	return false
}

// findCycle searches the wait-for graph for a cycle reachable from start
// that includes start, returning the cycle members (nil if none). Depth-
// first search over WaitsFor edges.
func (m *Manager) findCycle(start TxnID) []TxnID {
	var path []TxnID
	onPath := make(map[TxnID]struct{})
	visited := make(map[TxnID]struct{})
	var dfs func(t TxnID) []TxnID
	dfs = func(t TxnID) []TxnID {
		path = append(path, t)
		onPath[t] = struct{}{}
		defer func() {
			path = path[:len(path)-1]
			delete(onPath, t)
		}()
		for _, next := range m.WaitsFor(t) {
			if next == start {
				cycle := make([]TxnID, len(path))
				copy(cycle, path)
				return cycle
			}
			if _, seen := visited[next]; seen {
				continue
			}
			if _, on := onPath[next]; on {
				continue
			}
			if c := dfs(next); c != nil {
				return c
			}
			visited[next] = struct{}{}
		}
		return nil
	}
	return dfs(start)
}

// LockedGranules returns the number of granules with at least one holder.
func (m *Manager) LockedGranules() int { return len(m.table) }

// WaitEdges returns every wait-for edge at this site as (waiter, holder)
// pairs, for the distributed probe algorithm. Sorted for determinism.
func (m *Manager) WaitEdges() [][2]TxnID {
	waiterSet := make(map[TxnID]struct{})
	for _, e := range m.table {
		for _, r := range e.queue {
			waiterSet[r.txn] = struct{}{}
		}
	}
	waiters := make([]TxnID, 0, len(waiterSet))
	for t := range waiterSet {
		waiters = append(waiters, t)
	}
	sort.Slice(waiters, func(i, j int) bool { return waiters[i] < waiters[j] })
	var out [][2]TxnID
	for _, w := range waiters {
		for _, h := range m.WaitsFor(w) {
			out = append(out, [2]TxnID{w, h})
		}
	}
	return out
}
