// Package cc is the pluggable concurrency-control subsystem. It defines
// the Protocol interface the testbed drives for every granule access —
// admission, block/abort/restart decisions, commit-time validation and
// end-of-transaction release — plus per-paradigm capability flags that
// tell the testbed which machinery (lock-wait parking, Chandy–Misra
// deadlock probes, validation aborts) a paradigm actually needs.
//
// The 2PL family (detection, wait-die, wound-wait) and basic timestamp
// ordering are adapted here from the existing internal/lock and
// internal/tso engines; the optimistic and queue-oriented deterministic
// paradigms live in the cc/occ and cc/quecc subpackages. The paradigm
// set answers the dispute in the literature the paper cites (locking vs
// timestamp ordering, and later deterministic execution) under one
// simulator with identical assumptions.
package cc

import (
	"fmt"
	"strings"

	"carat/internal/lock"
	"carat/internal/tso"
)

// TxnID is a global transaction identifier; GranuleID a database block
// within one site's lock space. They convert directly to the engine
// packages' local types.
type (
	TxnID     int64
	GranuleID int
)

// Paradigm enumerates the supported concurrency-control paradigms. The
// values deliberately match testbed.CCProtocol so configurations convert
// by plain conversion.
type Paradigm int

const (
	// TwoPhaseDetect is 2PL with local + Chandy–Misra global deadlock
	// detection — the paper's scheme and the byte-pinned default.
	TwoPhaseDetect Paradigm = iota
	// TwoPhaseWaitDie is 2PL with wait-die prevention.
	TwoPhaseWaitDie
	// TwoPhaseWoundWait is 2PL with wound-wait prevention.
	TwoPhaseWoundWait
	// TimestampOrdering is basic TO (no blocking, restart on conflict).
	TimestampOrdering
	// Optimistic is OCC: execute without blocking, track read/write
	// sets, backward-validate at commit.
	Optimistic
	// QueueOrdered is QueCC-style deterministic execution: accesses are
	// planned into per-site priority queues over the granule space at
	// submission and drained in priority order — no locks, no deadlocks.
	QueueOrdered

	numParadigms
)

// String names the paradigm, matching the historical testbed names for
// the first four.
func (p Paradigm) String() string {
	switch p {
	case TwoPhaseDetect:
		return "2PL-detect"
	case TwoPhaseWaitDie:
		return "2PL-wait-die"
	case TwoPhaseWoundWait:
		return "2PL-wound-wait"
	case TimestampOrdering:
		return "basic-TO"
	case Optimistic:
		return "OCC"
	case QueueOrdered:
		return "QueCC"
	default:
		return fmt.Sprintf("cc(%d)", int(p))
	}
}

// Capabilities describes what machinery a paradigm needs from its host.
type Capabilities struct {
	// Blocks: accesses may queue and park awaiting a grant (the host
	// must provide the lock-wait/wakeup machinery).
	Blocks bool
	// Deadlocks: waits-for cycles are possible, so the Chandy–Misra
	// probe detector and its retransmission policy must be armed. Only
	// 2PL with detection has this; prevention, TO, OCC and QueCC are
	// deadlock-free by construction.
	Deadlocks bool
	// Wounds: conflict victims are wounded (spared once committing)
	// rather than killed outright.
	Wounds bool
	// ValidatesAtCommit: the commit point must run Validate and abort
	// the transaction on a validation conflict (OCC).
	ValidatesAtCommit bool
	// Deterministic: accesses follow a plan declared at submission
	// (QueCC); the host must pre-draw each transaction's access set and
	// register it before execution begins.
	Deterministic bool
}

// Capabilities returns the paradigm's capability flags.
func (p Paradigm) Capabilities() Capabilities {
	switch p {
	case TwoPhaseDetect:
		return Capabilities{Blocks: true, Deadlocks: true}
	case TwoPhaseWaitDie:
		return Capabilities{Blocks: true}
	case TwoPhaseWoundWait:
		return Capabilities{Blocks: true, Wounds: true}
	case TimestampOrdering:
		return Capabilities{}
	case Optimistic:
		return Capabilities{ValidatesAtCommit: true}
	case QueueOrdered:
		return Capabilities{Blocks: true, Deterministic: true}
	default:
		return Capabilities{}
	}
}

// Names lists the canonical paradigm names, for error messages.
func Names() []string {
	out := make([]string, numParadigms)
	for p := Paradigm(0); p < numParadigms; p++ {
		out[p] = p.String()
	}
	return out
}

// Parse resolves a paradigm name case-insensitively, accepting the
// canonical names plus common aliases. Unknown names return an error
// that lists the valid modes.
func Parse(name string) (Paradigm, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "2pl", "2pl-detect", "detect":
		return TwoPhaseDetect, nil
	case "2pl-wait-die", "wait-die", "waitdie":
		return TwoPhaseWaitDie, nil
	case "2pl-wound-wait", "wound-wait", "woundwait":
		return TwoPhaseWoundWait, nil
	case "basic-to", "to", "timestamp", "timestamp-ordering", "tso":
		return TimestampOrdering, nil
	case "occ", "optimistic":
		return Optimistic, nil
	case "quecc", "queue", "deterministic":
		return QueueOrdered, nil
	default:
		return 0, fmt.Errorf("cc: unknown concurrency control %q (valid modes: %s)",
			name, strings.Join(Names(), ", "))
	}
}

// Outcome is an access-admission decision.
type Outcome int

const (
	// Grant admits the access immediately.
	Grant Outcome = iota
	// Block queues the access; the caller parks until the protocol's
	// grant callback wakes it.
	Block
	// Restart aborts the requester: it must roll back and resubmit.
	Restart
)

// Decision is the result of one access request: the outcome plus any
// victim transactions the requester displaced (wound-wait's wounds). The
// Victims slice is only valid until the next Access call.
type Decision struct {
	Outcome Outcome
	Victims []TxnID
}

// Protocol is one site's concurrency-control engine, driven synchronously
// by the testbed's processes (like the lock and TO managers it
// generalizes).
type Protocol interface {
	// Begin introduces a transaction before its first access. ts is the
	// paradigm-relevant priority timestamp: the first-submission gid for
	// the prevention disciplines (stable across restarts), unused
	// elsewhere — TO and QueCC order by the per-attempt gid itself.
	Begin(txn TxnID, ts int64)
	// Access requests one granule access (write=true for exclusive).
	Access(txn TxnID, g GranuleID, write bool) Decision
	// Validate runs commit-time validation, reporting whether the
	// transaction may commit. Paradigms without ValidatesAtCommit always
	// return true.
	Validate(txn TxnID) bool
	// Finish releases every claim, lock, queue entry and set the
	// transaction holds at this site (commit or abort).
	Finish(txn TxnID)
	// Capabilities returns the paradigm's capability flags.
	Capabilities() Capabilities
}

// lockCC adapts the lock.Manager (2PL with detection or prevention) to
// the Protocol interface. The call sequence into the manager is exactly
// the sequence the testbed used before the extraction, keeping the
// byte-pinned default trace identical.
type lockCC struct {
	m        *lock.Manager
	caps     Capabilities
	register bool // prevention disciplines pre-register timestamps
	victims  []TxnID
}

// ForLockManager wraps a lock manager configured for the given 2PL
// paradigm (TwoPhaseDetect, TwoPhaseWaitDie or TwoPhaseWoundWait).
func ForLockManager(m *lock.Manager, p Paradigm) Protocol {
	return &lockCC{
		m:        m,
		caps:     p.Capabilities(),
		register: p == TwoPhaseWaitDie || p == TwoPhaseWoundWait,
	}
}

func (a *lockCC) Begin(txn TxnID, ts int64) {
	if a.register {
		a.m.RegisterTxn(lock.TxnID(txn), ts)
	}
}

func (a *lockCC) Access(txn TxnID, g GranuleID, write bool) Decision {
	mode := lock.Shared
	if write {
		mode = lock.Exclusive
	}
	out, victims := a.m.Request(lock.TxnID(txn), lock.GranuleID(g), mode)
	a.victims = a.victims[:0]
	for _, v := range victims {
		a.victims = append(a.victims, TxnID(v))
	}
	d := Decision{Victims: a.victims}
	switch out {
	case lock.Granted:
		d.Outcome = Grant
	case lock.Wait:
		d.Outcome = Block
	default:
		d.Outcome = Restart
	}
	return d
}

func (a *lockCC) Validate(TxnID) bool        { return true }
func (a *lockCC) Finish(txn TxnID)           { a.m.ReleaseAll(lock.TxnID(txn)) }
func (a *lockCC) Capabilities() Capabilities { return a.caps }

// tsoCC adapts the basic-TO manager. The attempt's gid is its timestamp,
// so a restart naturally carries a fresh, larger one.
type tsoCC struct {
	m *tso.Manager
}

// ForTimestampManager wraps a basic-TO manager.
func ForTimestampManager(m *tso.Manager) Protocol { return &tsoCC{m: m} }

func (a *tsoCC) Begin(TxnID, int64) {}

func (a *tsoCC) Access(txn TxnID, g GranuleID, write bool) Decision {
	if a.m.Read(tso.TxnID(txn), int64(txn), tso.GranuleID(g)) == tso.Reject {
		return Decision{Outcome: Restart}
	}
	if write {
		if out, _ := a.m.Write(tso.TxnID(txn), int64(txn), tso.GranuleID(g)); out == tso.Reject {
			return Decision{Outcome: Restart}
		}
	}
	return Decision{Outcome: Grant}
}

func (a *tsoCC) Validate(TxnID) bool        { return true }
func (a *tsoCC) Finish(txn TxnID)           { a.m.Forget(tso.TxnID(txn)) }
func (a *tsoCC) Capabilities() Capabilities { return TimestampOrdering.Capabilities() }
