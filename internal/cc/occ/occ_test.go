package occ

import (
	"testing"

	"carat/internal/cc"
)

func TestReadOnlyTxnsNeverConflict(t *testing.T) {
	m := NewManager()
	m.Begin(1, 0)
	m.Begin(2, 0)
	m.Access(1, 7, false)
	m.Access(2, 7, false)
	if !m.Validate(1) || !m.Validate(2) {
		t.Fatal("concurrent readers must both validate")
	}
	m.Finish(1)
	m.Finish(2)
	if m.Live() != 0 {
		t.Fatalf("Live = %d after Finish", m.Live())
	}
}

func TestBackwardValidationCatchesStaleRead(t *testing.T) {
	m := NewManager()
	m.Begin(1, 0) // reader starts first
	m.Begin(2, 0)
	m.Access(1, 7, false)
	m.Access(2, 7, true)
	if !m.Validate(2) {
		t.Fatal("writer validates first and must pass")
	}
	m.Finish(2)
	if m.Validate(1) {
		t.Fatal("reader overlapped a committed write of its read set and must abort")
	}
	m.Finish(1)
}

func TestWriteWriteConflictDetected(t *testing.T) {
	m := NewManager()
	m.Begin(1, 0)
	m.Begin(2, 0)
	m.Access(1, 3, true)
	m.Access(2, 3, true)
	if !m.Validate(1) {
		t.Fatal("first writer must pass")
	}
	m.Finish(1)
	if m.Validate(2) {
		t.Fatal("second writer overlapped the first and must abort")
	}
	m.Finish(2)
}

func TestSerialTxnsNeverConflict(t *testing.T) {
	m := NewManager()
	for i := cc.TxnID(1); i <= 50; i++ {
		m.Begin(i, 0)
		m.Access(i, cc.GranuleID(i%4), true)
		if !m.Validate(i) {
			t.Fatalf("serial txn %d failed validation", i)
		}
		m.Finish(i)
	}
	if got := m.Stats().Conflicts; got != 0 {
		t.Fatalf("serial history produced %d conflicts", got)
	}
}

func TestDisjointWriteSetsValidate(t *testing.T) {
	m := NewManager()
	m.Begin(1, 0)
	m.Begin(2, 0)
	m.Access(1, 1, true)
	m.Access(2, 2, true)
	if !m.Validate(1) || !m.Validate(2) {
		t.Fatal("disjoint writers must both validate")
	}
	m.Finish(1)
	m.Finish(2)
}

func TestHistoryGarbageCollected(t *testing.T) {
	m := NewManager()
	for i := cc.TxnID(1); i <= 1000; i++ {
		m.Begin(i, 0)
		m.Access(i, cc.GranuleID(i), true)
		m.Validate(i)
		m.Finish(i)
	}
	if len(m.hist) > 1 {
		t.Fatalf("history not collected: %d entries survive with no live txns", len(m.hist))
	}
}

func TestLateAccessWithoutBeginIsTracked(t *testing.T) {
	m := NewManager()
	m.Access(9, 4, false) // failover read path: no explicit Begin
	if m.Live() != 1 {
		t.Fatal("late access did not open tracking state")
	}
	if !m.Validate(9) {
		t.Fatal("late read with nothing published since must validate")
	}
	m.Finish(9)
}
