// Package occ implements optimistic concurrency control with backward
// validation (Kung & Robinson): transactions execute without blocking,
// recording per-site read and write sets, and validate at commit against
// the write sets of transactions that committed since they began. A
// conflict aborts the validating transaction — counted by the testbed
// under its own abort cause — and the closed-loop user resubmits.
//
// The manager is one site's validator, a synchronous data structure
// driven by the testbed's processes like the lock and TO managers.
package occ

import (
	"slices"

	"carat/internal/cc"
)

// Stats counts validator activity.
type Stats struct {
	Begins    int64
	Accesses  int64
	Validated int64
	Conflicts int64
}

// liveTxn is an executing transaction's tracking state.
type liveTxn struct {
	start  int64 // commit sequence number at Begin
	reads  map[cc.GranuleID]bool
	writes map[cc.GranuleID]bool
}

// committedTxn is a published write set awaiting garbage collection.
type committedTxn struct {
	seq    int64
	writes []cc.GranuleID
}

// Manager is one site's OCC validator.
type Manager struct {
	seq   int64
	live  map[cc.TxnID]*liveTxn
	hist  []committedTxn // ascending seq
	stats Stats
	// freeSets recycles read/write sets across transactions so the
	// steady-state access path stays allocation-light.
	freeSets []map[cc.GranuleID]bool
}

// NewManager creates an empty validator.
func NewManager() *Manager {
	return &Manager{live: make(map[cc.TxnID]*liveTxn)}
}

// Stats returns the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// Live returns the number of transactions with tracking state.
func (m *Manager) Live() int { return len(m.live) }

func (m *Manager) getSet() map[cc.GranuleID]bool {
	if k := len(m.freeSets); k > 0 {
		s := m.freeSets[k-1]
		m.freeSets[k-1] = nil
		m.freeSets = m.freeSets[:k-1]
		return s
	}
	return make(map[cc.GranuleID]bool)
}

func (m *Manager) putSet(s map[cc.GranuleID]bool) {
	clear(s)
	m.freeSets = append(m.freeSets, s)
}

// Begin starts tracking a transaction: its validation window opens at the
// current commit sequence number. The ts parameter is unused (Protocol
// interface parity).
func (m *Manager) Begin(txn cc.TxnID, _ int64) {
	if m.live[txn] != nil {
		return
	}
	m.stats.Begins++
	m.live[txn] = &liveTxn{start: m.seq, reads: m.getSet(), writes: m.getSet()}
}

func (m *Manager) track(txn cc.TxnID) *liveTxn {
	t := m.live[txn]
	if t == nil {
		// Access without Begin (a failed-over read served here): open the
		// window late, at the current sequence — conservative for nothing
		// published since.
		m.Begin(txn, 0)
		t = m.live[txn]
	}
	return t
}

// Access records one granule access and always grants: OCC never blocks
// during the read phase. An update access reads and writes the granule.
func (m *Manager) Access(txn cc.TxnID, g cc.GranuleID, write bool) cc.Decision {
	m.stats.Accesses++
	t := m.track(txn)
	t.reads[g] = true
	if write {
		t.writes[g] = true
	}
	return cc.Decision{Outcome: cc.Grant}
}

// Validate runs backward validation: the transaction conflicts if any
// write set published since its window opened intersects its read or
// write set. On success the transaction's own write set is published at
// the next commit sequence number in the same step — the validate-and-
// publish critical section is atomic here because the simulation kernel
// runs events serially. Read-only transactions publish nothing.
//
// A transaction whose commit protocol fails after a successful Validate
// (participant crash, prepare timeout) leaves its published set behind:
// later validators may see phantom conflicts with it. That is the
// conservative direction — spurious aborts, never lost ones.
func (m *Manager) Validate(txn cc.TxnID) bool {
	t := m.live[txn]
	if t == nil {
		return true
	}
	for i := len(m.hist) - 1; i >= 0; i-- {
		e := &m.hist[i]
		if e.seq <= t.start {
			break
		}
		for _, g := range e.writes {
			if t.reads[g] || t.writes[g] {
				m.stats.Conflicts++
				return false
			}
		}
	}
	m.stats.Validated++
	if len(t.writes) > 0 {
		ws := make([]cc.GranuleID, 0, len(t.writes))
		for g := range t.writes {
			ws = append(ws, g)
		}
		slices.Sort(ws)
		m.seq++
		m.hist = append(m.hist, committedTxn{seq: m.seq, writes: ws})
		m.gc()
	}
	return true
}

// gc drops published write sets older than every live transaction's
// validation window — no future validation can reach them.
func (m *Manager) gc() {
	min := m.seq
	for _, t := range m.live {
		if t.start < min {
			min = t.start
		}
	}
	cut := 0
	for cut < len(m.hist) && m.hist[cut].seq <= min {
		cut++
	}
	if cut > 0 {
		m.hist = append(m.hist[:0], m.hist[cut:]...)
	}
}

// Finish drops a transaction's tracking state (commit or abort),
// recycling its sets.
func (m *Manager) Finish(txn cc.TxnID) {
	if t, ok := m.live[txn]; ok {
		m.putSet(t.reads)
		m.putSet(t.writes)
		delete(m.live, txn)
	}
}

// Capabilities returns the OCC capability flags.
func (m *Manager) Capabilities() cc.Capabilities { return cc.Optimistic.Capabilities() }
