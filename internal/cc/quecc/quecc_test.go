package quecc

import (
	"testing"

	"carat/internal/cc"
)

func collectGrants(t *testing.T) (*Scheduler, *[]cc.TxnID) {
	t.Helper()
	var woken []cc.TxnID
	s := NewScheduler(func(txn cc.TxnID) { woken = append(woken, txn) })
	return s, &woken
}

func TestPriorityOrderAdmission(t *testing.T) {
	s, woken := collectGrants(t)
	s.Plan(1, 10, true)
	s.Plan(2, 10, true)
	if d := s.Access(1, 10, true); d.Outcome != cc.Grant {
		t.Fatalf("highest-priority claim must be admitted: %v", d.Outcome)
	}
	if d := s.Access(2, 10, true); d.Outcome != cc.Block {
		t.Fatalf("younger conflicting claim must block: %v", d.Outcome)
	}
	s.Finish(1)
	if len(*woken) != 1 || (*woken)[0] != 2 {
		t.Fatalf("finish must wake the blocked successor, got %v", *woken)
	}
	s.Finish(2)
	if s.Live() != 0 {
		t.Fatal("claims leaked")
	}
}

func TestReadersShareAGranule(t *testing.T) {
	s, _ := collectGrants(t)
	s.Plan(1, 4, false)
	s.Plan(2, 4, false)
	s.Plan(3, 4, false)
	for _, txn := range []cc.TxnID{1, 2, 3} {
		if d := s.Access(txn, 4, false); d.Outcome != cc.Grant {
			t.Fatalf("reader %d must be admitted: %v", txn, d.Outcome)
		}
	}
}

func TestWriterBehindReadersWaitsForAll(t *testing.T) {
	s, woken := collectGrants(t)
	s.Plan(1, 4, false)
	s.Plan(2, 4, false)
	s.Plan(3, 4, true)
	s.Access(1, 4, false)
	s.Access(2, 4, false)
	if d := s.Access(3, 4, true); d.Outcome != cc.Block {
		t.Fatalf("writer behind readers must block: %v", d.Outcome)
	}
	s.Finish(1)
	if len(*woken) != 0 {
		t.Fatal("writer woke while a conflicting reader remained")
	}
	s.Finish(2)
	if len(*woken) != 1 || (*woken)[0] != 3 {
		t.Fatalf("writer not woken after last reader, got %v", *woken)
	}
}

func TestNoWaitEverPointsFromOlderToYounger(t *testing.T) {
	// The deadlock-freedom argument: a claim only blocks on claims ahead
	// of it in the queue, which always carry smaller ids. Exercise a
	// random-ish interleaving and assert every Block has a smaller-id
	// conflicting claim present.
	s, _ := collectGrants(t)
	for txn := cc.TxnID(1); txn <= 20; txn++ {
		for g := cc.GranuleID(0); g < 5; g++ {
			if (int(txn)+int(g))%3 != 0 {
				continue
			}
			s.Plan(txn, g, txn%2 == 0)
		}
	}
	for txn := cc.TxnID(1); txn <= 20; txn++ {
		for g := cc.GranuleID(0); g < 5; g++ {
			q := s.queues[g]
			mine := -1
			for i := range q {
				if q[i].txn == txn {
					mine = i
				}
			}
			if mine < 0 {
				continue
			}
			d := s.Access(txn, g, txn%2 == 0)
			if d.Outcome == cc.Block {
				conflict := false
				for j := 0; j < mine; j++ {
					if q[j].txn >= txn {
						t.Fatalf("claim ahead of txn %d has id %d", txn, q[j].txn)
					}
					if q[j].write || q[mine].write {
						conflict = true
					}
				}
				if !conflict {
					t.Fatalf("txn %d blocked without a conflicting predecessor on g%d", txn, g)
				}
			}
		}
	}
}

func TestLateClaimInsertsAtPriority(t *testing.T) {
	s, _ := collectGrants(t)
	s.Plan(5, 9, false)
	s.Access(5, 9, false)
	// txn 3 never planned granule 9 (the failover-read case) and claims
	// it late; as a read among reads it is admitted.
	if d := s.Access(3, 9, false); d.Outcome != cc.Grant {
		t.Fatalf("late shared claim among readers must be admitted: %v", d.Outcome)
	}
	q := s.queues[9]
	if len(q) != 2 || q[0].txn != 3 || q[1].txn != 5 {
		t.Fatalf("late claim not inserted at priority order: %v", q)
	}
	if s.Stats().Late != 1 {
		t.Fatalf("Late = %d, want 1", s.Stats().Late)
	}
}

func TestFinishWithoutClaimsIsANoOp(t *testing.T) {
	s, woken := collectGrants(t)
	s.Finish(42)
	if len(*woken) != 0 || s.Live() != 0 {
		t.Fatal("no-op Finish had side effects")
	}
}

func TestAbortedWaiterReleasesAndUnblocksSuccessors(t *testing.T) {
	s, woken := collectGrants(t)
	s.Plan(1, 7, true)
	s.Plan(2, 7, true)
	s.Plan(3, 7, true)
	s.Access(1, 7, true)
	s.Access(2, 7, true)
	s.Access(3, 7, true)
	// Txn 2 aborts (timeout) while parked: its claim must vanish and txn
	// 3 must still be woken when txn 1 finishes.
	s.Finish(2)
	s.Finish(1)
	if len(*woken) != 1 || (*woken)[0] != 3 {
		t.Fatalf("successor not woken past an aborted waiter, got %v", *woken)
	}
}
