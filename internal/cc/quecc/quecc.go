// Package quecc implements a queue-oriented deterministic concurrency
// control in the spirit of QueCC (Qadah & Sadoghi, arXiv:1910.10350):
// plan-then-execute. At submission the planner declares every granule a
// transaction will touch at each site, entering a claim into that
// granule's priority queue ordered by transaction id (the submission
// order — older is higher priority). The execution phase then drains the
// queues: an access is admitted the moment no conflicting higher-priority
// claim remains ahead of it, and blocks otherwise until predecessors
// finish. There are no locks, no lock-order races, and no deadlocks by
// construction: every wait points from a younger transaction to an older
// one, so the waits-for graph is acyclic and the Chandy–Misra probe
// machinery is never armed.
//
// Claims are registered in transaction-id order (the testbed plans in the
// same kernel step that assigns the id), which is what makes the
// admission rule safe: an older transaction's claim is always queued
// before any younger conflicting transaction can be admitted. The one
// exception is a late claim — an access to a granule outside the declared
// plan, which in the testbed only happens for shared failed-over reads in
// the replica namespace; those insert at the transaction's priority on
// the fly and, being reads among reads, cannot violate exclusivity.
package quecc

import "carat/internal/cc"

// Stats counts scheduler activity.
type Stats struct {
	Planned  int64 // claims registered by planners
	Late     int64 // claims inserted at access time (unplanned granules)
	Admitted int64
	Blocked  int64
	Woken    int64
}

// claim is one transaction's declared intent on a granule.
type claim struct {
	txn     cc.TxnID
	write   bool
	waiting bool // the transaction is parked on this claim
}

// Scheduler is one site's deterministic planner + execution queues.
type Scheduler struct {
	onGrant func(cc.TxnID)
	// queues holds each granule's claims in ascending transaction id —
	// priority order. Ids increase monotonically, so planner inserts are
	// amortized appends.
	queues map[cc.GranuleID][]claim
	// txns records each live transaction's claimed granules in claim
	// order, so Finish releases deterministically without map iteration.
	txns  map[cc.TxnID][]cc.GranuleID
	stats Stats
}

// NewScheduler creates an empty scheduler. onGrant is called when a
// parked transaction's blocked claim becomes admissible.
func NewScheduler(onGrant func(cc.TxnID)) *Scheduler {
	return &Scheduler{
		onGrant: onGrant,
		queues:  make(map[cc.GranuleID][]claim),
		txns:    make(map[cc.TxnID][]cc.GranuleID),
	}
}

// Stats returns the activity counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Live returns the number of transactions holding claims.
func (s *Scheduler) Live() int { return len(s.txns) }

// Plan declares that txn will access granule g (write=true for updates).
// Claims for the same granule merge, upgrading read to write.
func (s *Scheduler) Plan(txn cc.TxnID, g cc.GranuleID, write bool) {
	q := s.queues[g]
	for i := range q {
		if q[i].txn == txn {
			q[i].write = q[i].write || write
			return
		}
	}
	s.stats.Planned++
	// Insert in priority order; ids are monotone so this is normally an
	// append, and a late claim walks back a few slots at most.
	pos := len(q)
	for pos > 0 && q[pos-1].txn > txn {
		pos--
	}
	q = append(q, claim{})
	copy(q[pos+1:], q[pos:])
	q[pos] = claim{txn: txn, write: write}
	s.queues[g] = q
	s.txns[txn] = append(s.txns[txn], g)
}

// admissible reports whether the claim at index i of g's queue conflicts
// with no claim ahead of it (all higher-priority claims are reads, or it
// is itself a read among reads).
func admissible(q []claim, i int) bool {
	for j := 0; j < i; j++ {
		if q[j].write || q[i].write {
			return false
		}
	}
	return true
}

// Begin is a planner no-op: priority is the transaction id itself.
func (s *Scheduler) Begin(cc.TxnID, int64) {}

// Access asks to execute txn's claimed access on g. An access outside the
// declared plan registers a late claim at the transaction's priority.
func (s *Scheduler) Access(txn cc.TxnID, g cc.GranuleID, write bool) cc.Decision {
	q := s.queues[g]
	i := -1
	for j := range q {
		if q[j].txn == txn {
			i = j
			break
		}
	}
	if i < 0 {
		s.stats.Late++
		s.Plan(txn, g, write)
		q = s.queues[g]
		for j := range q {
			if q[j].txn == txn {
				i = j
				break
			}
		}
	} else if write && !q[i].write {
		q[i].write = true
	}
	if admissible(q, i) {
		s.stats.Admitted++
		return cc.Decision{Outcome: cc.Grant}
	}
	s.stats.Blocked++
	q[i].waiting = true
	return cc.Decision{Outcome: cc.Block}
}

// Validate is a no-op: deterministic execution admits only conflict-free
// accesses, so there is nothing to validate at commit.
func (s *Scheduler) Validate(cc.TxnID) bool { return true }

// Finish removes every claim txn holds (commit or abort) and wakes the
// parked transactions whose blocked claims become admissible, in queue —
// priority — order.
func (s *Scheduler) Finish(txn cc.TxnID) {
	grans, ok := s.txns[txn]
	if !ok {
		return
	}
	delete(s.txns, txn)
	for _, g := range grans {
		q := s.queues[g]
		for i := range q {
			if q[i].txn == txn {
				q = append(q[:i], q[i+1:]...)
				break
			}
		}
		if len(q) == 0 {
			delete(s.queues, g)
			continue
		}
		s.queues[g] = q
		for i := range q {
			if q[i].waiting && admissible(q, i) {
				q[i].waiting = false
				s.stats.Woken++
				s.onGrant(q[i].txn)
			}
		}
	}
}

// Capabilities returns the QueCC capability flags.
func (s *Scheduler) Capabilities() cc.Capabilities { return cc.QueueOrdered.Capabilities() }
