package cc

import (
	"strings"
	"testing"

	"carat/internal/lock"
	"carat/internal/tso"
)

func TestParseCanonicalAndAliases(t *testing.T) {
	cases := map[string]Paradigm{
		"2PL":                TwoPhaseDetect,
		"2pl-detect":         TwoPhaseDetect,
		"Wait-Die":           TwoPhaseWaitDie,
		"waitdie":            TwoPhaseWaitDie,
		"WOUND-WAIT":         TwoPhaseWoundWait,
		"2pl-wound-wait":     TwoPhaseWoundWait,
		"basic-TO":           TimestampOrdering,
		"timestamp-ordering": TimestampOrdering,
		"to":                 TimestampOrdering,
		"OCC":                Optimistic,
		"optimistic":         Optimistic,
		"QueCC":              QueueOrdered,
		"quecc":              QueueOrdered,
		" 2pl ":              TwoPhaseDetect,
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseRejectsUnknownListingModes(t *testing.T) {
	_, err := Parse("3PL")
	if err == nil {
		t.Fatal("Parse accepted an unknown mode")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid mode %q", err, name)
		}
	}
}

func TestRoundTripParseString(t *testing.T) {
	for p := Paradigm(0); p < numParadigms; p++ {
		got, err := Parse(p.String())
		if err != nil || got != p {
			t.Errorf("Parse(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
}

func TestCapabilityFlags(t *testing.T) {
	// Only the detection discipline can deadlock; everything else must
	// run with the probe machinery disarmed.
	for p := Paradigm(0); p < numParadigms; p++ {
		caps := p.Capabilities()
		if got, want := caps.Deadlocks, p == TwoPhaseDetect; got != want {
			t.Errorf("%v: Deadlocks = %v, want %v", p, got, want)
		}
	}
	if !QueueOrdered.Capabilities().Deterministic {
		t.Error("QueCC must be Deterministic")
	}
	if !Optimistic.Capabilities().ValidatesAtCommit {
		t.Error("OCC must validate at commit")
	}
	if Optimistic.Capabilities().Blocks || TimestampOrdering.Capabilities().Blocks {
		t.Error("OCC and basic TO never block")
	}
}

func TestLockAdapterMirrorsManager(t *testing.T) {
	granted := map[lock.TxnID]bool{}
	m := lock.NewManagerWithDiscipline(lock.Detect, lock.VictimRequester,
		func(txn lock.TxnID, _ lock.GranuleID) { granted[txn] = true })
	p := ForLockManager(m, TwoPhaseDetect)
	if d := p.Access(1, 10, false); d.Outcome != Grant {
		t.Fatalf("first shared access: %v", d.Outcome)
	}
	if d := p.Access(2, 10, true); d.Outcome != Block {
		t.Fatalf("conflicting write should queue: %v", d.Outcome)
	}
	p.Finish(1)
	if !granted[2] {
		t.Fatal("release did not dispatch the queued writer")
	}
	if !p.Validate(2) {
		t.Fatal("2PL Validate must always pass")
	}
	p.Finish(2)
	if m.NumHeld(1)+m.NumHeld(2) != 0 {
		t.Fatal("locks leaked after Finish")
	}
}

func TestLockAdapterWaitDieRestartsYounger(t *testing.T) {
	m := lock.NewManagerWithDiscipline(lock.WaitDie, lock.VictimRequester, func(lock.TxnID, lock.GranuleID) {})
	p := ForLockManager(m, TwoPhaseWaitDie)
	p.Begin(1, 100)
	p.Begin(2, 200)
	if d := p.Access(1, 5, true); d.Outcome != Grant {
		t.Fatalf("older writer: %v", d.Outcome)
	}
	if d := p.Access(2, 5, true); d.Outcome != Restart {
		t.Fatalf("younger conflicting writer under wait-die should die: %v", d.Outcome)
	}
}

func TestTimestampAdapterRejectsStaleRead(t *testing.T) {
	m := tso.NewManager()
	p := ForTimestampManager(m)
	if d := p.Access(10, 3, true); d.Outcome != Grant {
		t.Fatalf("write by txn 10: %v", d.Outcome)
	}
	p.Finish(10)
	if d := p.Access(5, 3, false); d.Outcome != Restart {
		t.Fatalf("older read after younger write must restart: %v", d.Outcome)
	}
	if d := p.Access(20, 3, true); d.Outcome != Grant {
		t.Fatalf("younger write: %v", d.Outcome)
	}
	p.Finish(20)
	if m.Live() != 0 {
		t.Fatal("TO bookkeeping leaked after Finish")
	}
}
