package testbed

import (
	"errors"
	"fmt"
	"sort"

	"carat/internal/comm"
	"carat/internal/disk"
	"carat/internal/health"
	"carat/internal/rng"
	"carat/internal/sim"
	"carat/internal/wal"
)

// Fault causes delivered to transactions doomed by the fault injector.
// errDeadlockVictim (system.go) completes the abort-cause taxonomy.
var (
	// errSiteCrash dooms every transaction with a crashed participant site.
	errSiteCrash = errors.New("testbed: participant site crashed")
	// errLockTimeout aborts a transaction whose lock wait exceeded the
	// plan's bound.
	errLockTimeout = errors.New("testbed: lock wait timed out")
	// errPrepareTimeout aborts a two-phase commit whose prepare
	// acknowledgments did not all arrive in time (presumed abort).
	errPrepareTimeout = errors.New("testbed: 2PC prepare timed out")
	// errPartitioned dooms a transaction that needs a site the current
	// network partition makes unreachable from its home. Classified under
	// CauseCrash for retry accounting (the participant is unavailable either
	// way) but tallied separately per site.
	errPartitioned = errors.New("testbed: participant site unreachable (network partition)")
)

// PartitionSchedule schedules one network partition: at AtMS the sites split
// into the listed Groups — only same-group sites can exchange messages —
// and the partition heals HealAfterMS later. Sites appearing in no group
// stay reachable from everyone (a partial partition). A scheduled partition
// whose onset falls while another partition is still in effect is ignored:
// the model carries one partition at a time.
type PartitionSchedule struct {
	Groups      [][]NodeID
	AtMS        float64
	HealAfterMS float64
}

// GrayFailure degrades one site without failing it: from AtMS for ForMS the
// site's CPU service times are stretched by CPUFactor and its disk service
// times by DiskFactor (each >= 1; zero leaves that resource unchanged). The
// site stays up and answers every protocol — just slowly — which is exactly
// the failure mode timeout-based detection misjudges.
type GrayFailure struct {
	Site       NodeID
	AtMS       float64
	ForMS      float64
	CPUFactor  float64
	DiskFactor float64
}

// SiteCrash schedules one explicit crash: site Site loses volatile state at
// AtMS and begins restart recovery DownForMS later.
type SiteCrash struct {
	Site      NodeID
	AtMS      float64
	DownForMS float64
}

// FaultPlan injects mid-run faults into a simulation: site crashes (explicit
// schedule and/or an exponential crash process), message loss and extra
// delay on the inter-site network, and the protocol timeouts surviving sites
// use to degrade gracefully instead of wedging.
//
// Fault timing is driven by a dedicated RNG stream derived from Seed, so it
// is deterministic and independent of the workload seed: the same plan
// crashes the same sites at the same instants whatever workload runs under
// it. A nil or zero plan is fully inert — the simulation is byte-identical
// to one configured without it.
//
// Probability convention: the probability of a recoverable event that the
// injector loops on lies in [0,1) — MsgLossProb's geometric retransmission
// diverges at 1 — while the probability of an unrecoverable one-shot event
// lies in [0,1], where 1 means "always": MsgExtraDelayProb, ProbeLossProb
// (1.0 models a fully partitioned detection channel), and
// PartitionSplitProb.
type FaultPlan struct {
	// Seed drives the fault RNG streams (crash timing, message faults).
	// Zero selects a fixed default stream, still independent of the
	// workload seed.
	Seed uint64

	// Crashes lists explicit crash/restart events. A crash while the site
	// is already down is ignored.
	Crashes []SiteCrash

	// CrashMTTFMS > 0 adds a random crash process per site: time to the
	// next crash is exponential with this mean, and each outage lasts an
	// exponential time with mean CrashMTTRMS (default 5000 ms) before
	// restart recovery begins.
	CrashMTTFMS float64
	CrashMTTRMS float64

	// MsgLossProb is the per-message loss probability on inter-site hops;
	// each loss adds MsgRetransmitMS (default 10 ms) to the delivery delay
	// and the message is re-sent (geometric retransmission).
	MsgLossProb     float64
	MsgRetransmitMS float64

	// MsgExtraDelayProb adds, with this probability, an exponential extra
	// delay of mean MsgExtraDelayMS (default 5 ms) to an inter-site hop.
	MsgExtraDelayProb float64
	MsgExtraDelayMS   float64

	// PrepareTimeoutMS bounds the coordinator's wait for PREPARE
	// acknowledgments; on expiry the transaction is aborted under presumed
	// abort. Zero disables the timeout (crashed slaves still fail fast via
	// the crash notification).
	PrepareTimeoutMS float64

	// LockWaitTimeoutMS bounds every lock wait; a transaction blocked
	// longer is aborted with a timeout cause. Zero disables it.
	LockWaitTimeoutMS float64

	// RetryBackoffMS is how long a user whose slave site is down waits
	// between submission attempts (default 500 ms). Users homed at a down
	// site park until its restart completes instead.
	RetryBackoffMS float64

	// ProbeLossProb drops each inter-site deadlock probe with this
	// probability — silently, with no retransmission, unlike MsgLossProb.
	// 1.0 (total probe loss) is allowed: it models a partitioned detection
	// channel and is what the probe-retransmission regression exercises.
	ProbeLossProb float64

	// ProbeLossUntilMS, when positive, drops every inter-site probe before
	// this instant: a bounded probe-channel outage. Probes sent at or after
	// the instant are subject only to ProbeLossProb.
	ProbeLossUntilMS float64

	// Partitions lists scheduled network partitions, enforced at the link
	// layer: every message crossing a severed pair — user requests, 2PC
	// votes, replica propagation, deadlock probes — is undeliverable until
	// the heal.
	Partitions []PartitionSchedule

	// PartitionMTBFMS > 0 adds a random partition process on a dedicated RNG
	// stream: time to the next onset is exponential with this mean, each
	// partition lasts an exponential time with mean PartitionMeanMS (default
	// 5000 ms, minimum 1 ms), and each site lands on side A independently
	// with probability PartitionSplitProb (default 0.5). A draw that puts
	// every site on one side is a degenerate, no-op partition.
	PartitionMTBFMS    float64
	PartitionMeanMS    float64
	PartitionSplitProb float64

	// GraySites lists scheduled gray failures: per-site CPU/disk
	// service-rate degradation windows. Windows for the same site must not
	// overlap.
	GraySites []GrayFailure

	// HeartbeatIntervalMS and SuspectAfterMS tune the heartbeat failure
	// detector that the partition-aware mechanisms consult (admission
	// shedding toward unreachable coordinators, minority-side failover
	// refusal, cooperative 2PC termination). The detector runs only when
	// partitions are configured; defaults are 250 ms heartbeats and a
	// 1000 ms suspicion timeout.
	HeartbeatIntervalMS float64
	SuspectAfterMS      float64
}

// partitionsConfigured reports whether the plan can ever sever a link.
func (f *FaultPlan) partitionsConfigured() bool {
	return len(f.Partitions) > 0 || f.PartitionMTBFMS > 0
}

// Active reports whether the plan injects anything at all.
func (f *FaultPlan) Active() bool {
	if f == nil {
		return false
	}
	return len(f.Crashes) > 0 || f.CrashMTTFMS > 0 ||
		f.MsgLossProb > 0 || f.MsgExtraDelayProb > 0 ||
		f.PrepareTimeoutMS > 0 || f.LockWaitTimeoutMS > 0 ||
		f.ProbeLossProb > 0 || f.ProbeLossUntilMS > 0 ||
		f.partitionsConfigured() || len(f.GraySites) > 0
}

// validate checks the plan against the node count and fills scalar defaults
// in place. Plans are documented as shareable across replications, so
// Config.Validate always hands validate a private copy and re-points the
// config at it — the caller's plan is never written through. The Crashes,
// Partitions and GraySites slices are never mutated either way.
func (f *FaultPlan) validate(nodes int) error {
	for i, c := range f.Crashes {
		if int(c.Site) < 0 || int(c.Site) >= nodes {
			return fmt.Errorf("testbed: fault plan crash %d: site %d out of range", i, c.Site)
		}
		if c.AtMS < 0 {
			return fmt.Errorf("testbed: fault plan crash %d: negative time %v", i, c.AtMS)
		}
		if c.DownForMS <= 0 {
			return fmt.Errorf("testbed: fault plan crash %d: DownForMS must be positive", i)
		}
	}
	if f.CrashMTTFMS < 0 || f.CrashMTTRMS < 0 {
		return fmt.Errorf("testbed: fault plan MTTF/MTTR must be non-negative")
	}
	if f.MsgLossProb < 0 || f.MsgLossProb >= 1 {
		return fmt.Errorf("testbed: fault plan MsgLossProb %v out of [0,1)", f.MsgLossProb)
	}
	if f.MsgExtraDelayProb < 0 || f.MsgExtraDelayProb > 1 {
		return fmt.Errorf("testbed: fault plan MsgExtraDelayProb %v out of [0,1]", f.MsgExtraDelayProb)
	}
	if f.PrepareTimeoutMS < 0 || f.LockWaitTimeoutMS < 0 {
		return fmt.Errorf("testbed: fault plan timeouts must be non-negative")
	}
	if f.ProbeLossProb < 0 || f.ProbeLossProb > 1 {
		return fmt.Errorf("testbed: fault plan ProbeLossProb %v out of [0,1]", f.ProbeLossProb)
	}
	if f.ProbeLossUntilMS < 0 {
		return fmt.Errorf("testbed: fault plan ProbeLossUntilMS must be non-negative")
	}
	for i, ps := range f.Partitions {
		if ps.AtMS < 0 {
			return fmt.Errorf("testbed: fault plan partition %d: negative time %v", i, ps.AtMS)
		}
		if ps.HealAfterMS <= 0 {
			return fmt.Errorf("testbed: fault plan partition %d: HealAfterMS must be positive", i)
		}
		if len(ps.Groups) < 2 {
			return fmt.Errorf("testbed: fault plan partition %d: needs at least two groups", i)
		}
		seen := make(map[NodeID]bool)
		for _, grp := range ps.Groups {
			for _, site := range grp {
				if int(site) < 0 || int(site) >= nodes {
					return fmt.Errorf("testbed: fault plan partition %d: site %d out of range", i, site)
				}
				if seen[site] {
					return fmt.Errorf("testbed: fault plan partition %d: site %d in two groups", i, site)
				}
				seen[site] = true
			}
		}
	}
	if f.PartitionMTBFMS < 0 || f.PartitionMeanMS < 0 {
		return fmt.Errorf("testbed: fault plan partition MTBF/mean must be non-negative")
	}
	if f.PartitionSplitProb < 0 || f.PartitionSplitProb > 1 {
		return fmt.Errorf("testbed: fault plan PartitionSplitProb %v out of [0,1]", f.PartitionSplitProb)
	}
	for i, g := range f.GraySites {
		if int(g.Site) < 0 || int(g.Site) >= nodes {
			return fmt.Errorf("testbed: fault plan gray failure %d: site %d out of range", i, g.Site)
		}
		if g.AtMS < 0 {
			return fmt.Errorf("testbed: fault plan gray failure %d: negative time %v", i, g.AtMS)
		}
		if g.ForMS <= 0 {
			return fmt.Errorf("testbed: fault plan gray failure %d: ForMS must be positive", i)
		}
		if (g.CPUFactor != 0 && g.CPUFactor < 1) || (g.DiskFactor != 0 && g.DiskFactor < 1) {
			return fmt.Errorf("testbed: fault plan gray failure %d: factors must be >= 1 (or 0 for unchanged)", i)
		}
		for j := 0; j < i; j++ {
			o := f.GraySites[j]
			if o.Site == g.Site && g.AtMS < o.AtMS+o.ForMS && o.AtMS < g.AtMS+g.ForMS {
				return fmt.Errorf("testbed: fault plan gray failures %d and %d overlap on site %d", j, i, g.Site)
			}
		}
	}
	if f.HeartbeatIntervalMS < 0 || f.SuspectAfterMS < 0 {
		return fmt.Errorf("testbed: fault plan detector timings must be non-negative")
	}
	if f.PartitionMTBFMS > 0 {
		if f.PartitionMeanMS == 0 {
			f.PartitionMeanMS = 5000
		}
		if f.PartitionSplitProb == 0 {
			f.PartitionSplitProb = 0.5
		}
	}
	if f.CrashMTTFMS > 0 && f.CrashMTTRMS == 0 {
		f.CrashMTTRMS = 5000
	}
	if f.MsgRetransmitMS <= 0 {
		f.MsgRetransmitMS = 10
	}
	if f.MsgExtraDelayMS <= 0 {
		f.MsgExtraDelayMS = 5
	}
	if f.RetryBackoffMS <= 0 {
		f.RetryBackoffMS = 500
	}
	return nil
}

// interruptCause extracts the cause of a sim interrupt delivered to a parked
// process, distinguishing fault-injected aborts (crash, timeout) from
// deadlock kills.
func interruptCause(err error) (error, bool) {
	var ie *sim.InterruptError
	if errors.As(err, &ie) {
		return ie.Cause, true
	}
	return nil, false
}

// faultStreamSalt separates the fault RNG universe from every workload
// stream (workload substreams are Split off rng.New(cfg.Seed) directly).
const faultStreamSalt = 0xFA5E17

// faultState is the per-run fault injector: the validated plan plus its
// dedicated RNG substreams (one for message faults, one per site for crash
// timing), all derived from the plan seed alone.
type faultState struct {
	plan     FaultPlan
	msgRnd   *rng.Rand
	probeRnd *rng.Rand
	crashRnd []*rng.Rand

	// partRnd drives the random partition process; it is split off the root
	// unconditionally (Split is pure) so configuring partitions never shifts
	// the crash or message streams.
	partRnd *rng.Rand

	// part is the live partition map, non-nil only when the plan can sever
	// links; every reachability check through System.reachable is a no-op
	// while it is nil.
	part *comm.PartitionMap

	// detector is the heartbeat failure detector, started only when
	// partitions are configured.
	detector *health.Detector

	// term queues commit-protocol terminations per site: work a site owes a
	// transaction whose coordinator became unreachable mid-protocol, drained
	// when the partition heals (a crash of the site supersedes the queue —
	// restart recovery resolves everything durable).
	term map[NodeID][]termEntry

	// Partition measurement (reset at end of warmup).
	partitions     int64   // partitions begun
	partitionMS    float64 // accumulated wall time with a partition in effect
	partitionSince float64 // onset of the current partition, if any
	lastHealT      float64 // instant the last partition healed
}

// initFaults installs an active fault plan: RNG streams are derived and the
// initial crash events scheduled. Called from New before user processes are
// spawned, so the event order at time zero is fixed.
func (s *System) initFaults(plan FaultPlan) {
	seed := plan.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	root := rng.New(rng.SeedStream(seed, faultStreamSalt))
	f := &faultState{plan: plan, msgRnd: root.Split(1), probeRnd: root.Split(2), partRnd: root.Split(3)}
	for i := range s.nodes {
		f.crashRnd = append(f.crashRnd, root.Split(uint64(1000+i)))
	}
	s.faults = f
	for _, c := range plan.Crashes {
		c := c
		s.env.At(c.AtMS, func() { s.crashSite(c.Site, c.DownForMS) })
	}
	if plan.CrashMTTFMS > 0 {
		for i := range s.nodes {
			s.scheduleRandomCrash(NodeID(i))
		}
	}
	s.initPartitions()
	s.initGray()
}

// scheduleRandomCrash draws the site's next (crash time, outage length) pair
// from its dedicated stream and schedules the crash. Both values are drawn
// now, so each site's crash schedule is a fixed function of the plan seed.
func (s *System) scheduleRandomCrash(id NodeID) {
	f := s.faults
	at := f.crashRnd[id].Exp(f.plan.CrashMTTFMS)
	down := f.crashRnd[id].Exp(f.plan.CrashMTTRMS)
	if down < 1 {
		down = 1
	}
	s.env.After(at, func() { s.crashSite(id, down) })
}

// msgPenalty returns the extra delay fault injection adds to one inter-site
// hop leaving node from: geometric retransmissions for lost messages plus an
// occasional exponential extra delay.
func (s *System) msgPenalty(from NodeID) float64 {
	f := s.faults
	var extra float64
	if f.plan.MsgLossProb > 0 {
		for f.msgRnd.Bool(f.plan.MsgLossProb) {
			s.nodes[from].msgsLost.Inc()
			extra += f.plan.MsgRetransmitMS
		}
	}
	if f.plan.MsgExtraDelayProb > 0 && f.msgRnd.Bool(f.plan.MsgExtraDelayProb) {
		extra += f.msgRnd.Exp(f.plan.MsgExtraDelayMS)
	}
	return extra
}

// dropProbe reports whether fault injection drops one inter-site deadlock
// probe leaving node from: always inside the probe-channel outage window,
// else with the per-probe loss probability. Dropped probes are simply gone —
// no retransmission; recovering from this is the resilience layer's probe
// retransmission (Resilience.ProbeRetryMS).
func (s *System) dropProbe(from NodeID) bool {
	f := s.faults
	if f.plan.ProbeLossUntilMS > 0 && s.env.Now() < f.plan.ProbeLossUntilMS {
		s.nodes[from].probesLost.Inc()
		return true
	}
	if f.plan.ProbeLossProb > 0 && f.probeRnd.Bool(f.plan.ProbeLossProb) {
		s.nodes[from].probesLost.Inc()
		return true
	}
	return false
}

// crashSite fails a site: its volatile state (lock table, timestamp state,
// probe detector, pending grants) is lost, every in-flight transaction with
// the site among its participants is doomed with a crash cause, and restart
// recovery is scheduled downFor later. A crash while the site is already
// down is ignored.
func (s *System) crashSite(id NodeID, downFor float64) {
	nd := s.nodes[id]
	if nd.down {
		return
	}
	nd.crashes.Inc()
	s.markDown(nd)
	s.trace(-1, KindNone, id, EvCrash, -1)

	// Doom in ascending gid order so the interleaving of victim wakeups is
	// deterministic (s.reg is a map).
	gids := make([]int64, 0, len(s.reg))
	for gid := range s.reg {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		st := s.reg[gid]
		if st.finished || !st.hasParticipant(id) {
			continue
		}
		if !st.doomed {
			st.doomed = true
			st.cause = errSiteCrash
		}
		if st.parked {
			// Only lock waits are force-interrupted (mirroring killTxn);
			// anything else notices the doom at its next phase boundary.
			st.proc.Interrupt(errSiteCrash)
		}
	}
	nd.wipeVolatile()
	// Any queued partition terminations are superseded: restart recovery
	// resolves every durable branch, and the volatile locks they would have
	// released are gone with the wipe.
	delete(s.faults.term, id)
	s.env.After(downFor, func() { s.restartSite(id) })
}

// restartSite spawns the site's restart recovery process: WAL recovery
// undoes the losers (charging the undo I/O), in-doubt two-phase-commit
// branches are resolved against the coordinators' durable logs, and the
// site rejoins. The site counts as down until recovery completes.
func (s *System) restartSite(id NodeID) {
	nd := s.nodes[id]
	s.env.Spawn(fmt.Sprintf("recover-%d", id), func(p *sim.Proc) {
		costs := s.cfg.Params.CostsFor(id, LU)
		undo := durableLoserBlocks(nd.journal)
		losers, inDoubt := nd.journal.Recover(nd.store)
		_ = losers
		for _, g := range undo {
			g := g
			mustUse(nd, p, func() error { return nd.cpuUse(p, costs.DMIOCPU) })
			mustUse(nd, p, func() error { return nd.dbDiskFor(g).Do(p, disk.Write, g) })
		}
		for _, gid := range inDoubt {
			commit := s.coordinatorCommitted(gid)
			if commit {
				mustUse(nd, p, func() error { return nd.logDisk.Do(p, disk.ForceWrite, 0) })
				nd.inDoubtCommit.Inc()
			} else {
				k := nd.journal.BeforeImageCount(gid)
				for i := 0; i < k; i++ {
					mustUse(nd, p, func() error { return nd.cpuUse(p, costs.DMIOCPU) })
					mustUse(nd, p, func() error { return nd.dbDiskFor(0).Do(p, disk.Write, 0) })
				}
				nd.inDoubtAbort.Inc()
			}
			nd.journal.ResolveInDoubt(gid, commit, nd.store)
		}
		if s.repl != nil {
			s.recoverReplicas(p, nd)
		}
		s.markUp(nd)
		s.trace(-1, KindNone, id, EvRestart, -1)
		if s.faults.plan.CrashMTTFMS > 0 {
			s.scheduleRandomCrash(id)
		}
	})
}

// markDown flags the node down and starts the downtime/degraded clocks.
func (s *System) markDown(nd *node) {
	nd.down = true
	nd.downSince = s.env.Now()
	if nd.upEv == nil {
		nd.upEv = sim.NewEvent(s.env, fmt.Sprintf("up-%d", nd.id))
	}
	if s.downCount == 0 {
		s.degradedSince = s.env.Now()
	}
	s.downCount++
}

// markUp flags the node up again, settles the downtime/degraded clocks and
// releases users parked on the restart.
func (s *System) markUp(nd *node) {
	now := s.env.Now()
	nd.down = false
	nd.downtimeMS += now - nd.downSince
	s.downCount--
	if s.downCount == 0 {
		s.degradedMS += now - s.degradedSince
	}
	if nd.upEv != nil {
		nd.upEv.Trigger(nil)
		nd.upEv = nil
	}
}

// durableLoserBlocks returns the blocks restart recovery will undo, in undo
// order: the durable before-images of every transaction with neither a
// durable resolution nor a durable prepared record. It mirrors wal.Recover's
// loser selection so the restart process can charge the undo I/O.
func durableLoserBlocks(l *wal.Log) []int {
	flushed := l.FlushedLSN()
	recs := l.Records()
	resolved := make(map[int64]bool)
	prepared := make(map[int64]bool)
	for _, r := range recs {
		if r.LSN > flushed {
			continue
		}
		switch r.Kind {
		case wal.Commit, wal.Abort:
			resolved[r.Txn] = true
		case wal.Prepared:
			prepared[r.Txn] = true
		}
	}
	var blocks []int
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		if r.Kind == wal.BeforeImage && r.LSN <= flushed && !resolved[r.Txn] && !prepared[r.Txn] {
			blocks = append(blocks, r.Block)
		}
	}
	return blocks
}

// hasParticipant reports whether the site participates in the transaction.
func (st *txnState) hasParticipant(id NodeID) bool {
	for _, p := range st.parts {
		if p == id {
			return true
		}
	}
	return false
}

// awaitFaults is the degraded-mode throttle in the user's retry loop: a user
// homed at a down site parks until its restart completes; a user whose slave
// site is down, partitioned away, or suspected by the failure detector backs
// off before retrying, so outages do not spin the closed loop. No-op while
// every relevant site is up and reachable.
func (u *user) awaitFaults(p *sim.Proc) {
	sys := u.sys
	home := sys.nodes[u.spec.Home]
	for home.down && home.upEv != nil {
		if err := home.upEv.Wait(p); err != nil {
			return
		}
	}
	for _, r := range u.spec.RemoteSites() {
		nd := sys.nodes[r]
		if nd.down || !sys.reachable(u.spec.Home, nd.id) || sys.suspected(u.spec.Home, nd.id) {
			if sys.replReadFailover(u.spec.Home, u.spec.Kind) {
				// Reads fail over to surviving replicas; the outage does not
				// block this user.
				continue
			}
			p.Hold(sys.faults.plan.RetryBackoffMS)
			return
		}
	}
}
