package testbed

import "carat/internal/stats"

// NodeResults carries one site's measurements over the post-warmup window.
// Rates are per second (the simulation runs in milliseconds internally),
// matching the units of the paper's tables: TR-XPUT in transactions/second,
// Total-DIO in block I/Os per second, Total-CPU as a utilization fraction.
type NodeResults struct {
	// TxnThroughput is the commit rate per transaction kind for users
	// homed at this node, in transactions/second.
	TxnThroughput map[TxnKind]float64
	// TotalTxnThroughput is the sum over kinds (the tables' TR-XPUT).
	TotalTxnThroughput float64
	// RecordThroughput is the normalized throughput of Figures 5 and 8:
	// commit rate times records accessed per transaction, in records/second.
	RecordThroughput float64
	// CPUUtilization is the busy fraction of the node's CPU (Total-CPU).
	CPUUtilization float64
	// DiskIORate is the combined database+log disk operation rate in
	// block I/Os per second (Total-DIO).
	DiskIORate float64
	// DBDiskUtilization and LogDiskUtilization are device busy fractions;
	// they coincide when the log shares the database disk.
	DBDiskUtilization  float64
	LogDiskUtilization float64
	// TMUtilization is the busy fraction of the TM server critical
	// section — the serialization the model deliberately ignores.
	TMUtilization float64
	// MeanResponse is the mean user response time per kind in ms,
	// including aborted executions and resubmissions (the paper's R).
	MeanResponse map[TxnKind]float64
	// P95Response is the 95th-percentile response time per kind in ms
	// (histogram estimate, ~5% relative error).
	P95Response map[TxnKind]float64
	// ThroughputCI is the 95% batch-means half-width around TxnThroughput
	// per kind, in transactions/second (+Inf when the run is too short for
	// two batch windows).
	ThroughputCI map[TxnKind]float64
	// Commits and Submissions count per kind; Submissions/Commits
	// estimates the model's N_s.
	Commits     map[TxnKind]int64
	Submissions map[TxnKind]int64
	// LocalDeadlocks counts victims of wait-for-graph cycles detected at
	// this site; GlobalDeadlocks counts probe-detected victims that were
	// waiting here.
	LocalDeadlocks  int64
	GlobalDeadlocks int64
	// MeanLockWait is the mean blocked time per lock wait at this site, ms.
	MeanLockWait float64
	// LockWaits is the number of lock waits observed at this site.
	LockWaits int64
	// Messages counts protocol messages sent or received by this node.
	Messages int64

	// Availability measurements (all zero without an active fault plan).

	// Crashes counts this site's crashes in the window.
	Crashes int64
	// DowntimeMS is the site's total time down (crash until restart
	// recovery completed) within the window, in ms.
	DowntimeMS float64
	// Availability is 1 - DowntimeMS/Window.
	Availability float64
	// CrashAborts and TimeoutAborts count aborted submissions of
	// transactions homed here, by cause (deadlock aborts are counted by
	// LocalDeadlocks/GlobalDeadlocks).
	CrashAborts   int64
	TimeoutAborts int64
	// InDoubtCommitted and InDoubtAborted count prepared two-phase-commit
	// branches this site resolved during restart recovery.
	InDoubtCommitted int64
	InDoubtAborted   int64
	// MessagesLost counts lost (and retransmitted) messages leaving here.
	MessagesLost int64
	// DegradedCommits counts commits recorded at this site while at least
	// one site in the system was down — the goodput under partial outage.
	DegradedCommits int64

	// Resilience measurements. Retried is live even with a zero Resilience
	// config — the default policy resubmits every abort, and the counter
	// measures exactly that; everything else is zero unless the
	// corresponding knob is set.

	// Retried counts aborted submissions of transactions homed here that
	// were resubmitted, by abort cause; Abandoned counts transactions that
	// exhausted their retry budget instead. Together they separate retried
	// work from given-up work, so availability metrics don't double-count
	// resubmissions.
	Retried   map[AbortCause]int64
	Abandoned map[AbortCause]int64
	// ShedArrivals and DelayedArrivals count admission-gate rejections and
	// queueings of arrivals at this site; MeanAdmitWaitMS is the mean
	// queueing delay of the delayed ones.
	ShedArrivals    int64
	DelayedArrivals int64
	MeanAdmitWaitMS float64
	// PeakMPL is the high-water mark of concurrently admitted submissions
	// homed here within the window (0 when admission control is off).
	PeakMPL int
	// ProbesLost counts deadlock probes fault injection dropped leaving
	// this site; ProbesResent counts probe rounds re-initiated here.
	ProbesLost   int64
	ProbesResent int64

	// ValidationAborts counts OCC backward-validation conflicts detected
	// at this site. Zero — and omitted from JSON, keeping non-OCC
	// serializations byte-identical — except under CCOCC.
	ValidationAborts int64 `json:",omitempty"`

	// Partition and gray-failure measurements (all zero — and omitted from
	// JSON, keeping fault-free serializations byte-identical — unless the
	// fault plan configures partitions or gray failures).

	// PartitionAborts counts aborted submissions of transactions homed here
	// whose cause was an unreachable (partitioned-away) participant. They
	// are also classified under CauseCrash in Retried/Abandoned.
	PartitionAborts int64 `json:",omitempty"`
	// PartitionShed counts submissions blocked before they began because a
	// participant was unreachable or suspected by the failure detector.
	PartitionShed int64 `json:",omitempty"`
	// SuspectEvents counts suspicion transitions raised by this site's
	// failure detector (recoveries are not counted).
	SuspectEvents int64 `json:",omitempty"`
	// GrayMS is the time this site spent inside a gray-failure degradation
	// window within the measurement window, in ms.
	GrayMS float64 `json:",omitempty"`

	// Replication measurements (all zero unless Config.Replication is
	// active).

	// FailoverReads counts reads of a down site's granules this site served
	// from its replica copies.
	FailoverReads int64
	// ReplicaApplies counts committed writers' updates journaled at this
	// site's replica copies, including restart catch-up.
	ReplicaApplies int64
	// QuorumReads counts quorum confirmations performed for reads served at
	// this site (read-quorum policy only).
	QuorumReads int64

	// Open-arrival measurements (all zero unless Config.Open is active).

	// OpenArrivals counts open-mode transactions that arrived at this site
	// within the window; OpenOfferedPerSec is the measured offered rate.
	OpenArrivals      int64
	OpenOfferedPerSec float64
	// OpenMeanInSystem and OpenPeakInSystem are the time-average and peak
	// number of open transactions concurrently resident at this site
	// (arrival to commit or abandonment, including admission-gate queueing)
	// — the open queue's N by Little's law.
	OpenMeanInSystem float64
	OpenPeakInSystem float64
	// OpenMeanResponseMS, OpenP50ResponseMS and OpenP95ResponseMS aggregate
	// the committed response-time distribution across all transaction kinds
	// homed here (per-kind figures remain in MeanResponse/P95Response).
	OpenMeanResponseMS float64
	OpenP50ResponseMS  float64
	OpenP95ResponseMS  float64
}

// Results is a full measurement run.
type Results struct {
	Nodes []NodeResults
	// Window is the measurement window length in ms.
	Window float64
	// DegradedMS is the time within the window during which at least one
	// site was down (zero without an active fault plan).
	DegradedMS float64
	// Partitions counts network partitions that took effect within the
	// window; PartitionMS is the time a partition was in effect. Both are
	// zero — and omitted from JSON — unless partitions are configured.
	Partitions  int64   `json:",omitempty"`
	PartitionMS float64 `json:",omitempty"`

	// Shared-fabric network measurements: the Ethernet of the scale-out
	// configurations treated as a first-class queueing center. All zero —
	// and omitted from JSON, keeping pre-existing serializations
	// byte-identical — unless the network is a comm.Ethernet with
	// Hosts > 0.

	// NetMessages and NetBytes count the inter-site messages (and their
	// payload bytes) routed through the shared fabric in the window.
	NetMessages int64 `json:",omitempty"`
	NetBytes    int64 `json:",omitempty"`
	// NetUtilization is the wire's offered utilization: summed raw
	// transmission time over the window. The fabric is an analytic delay
	// model, not a serializing server, so values above 1 are possible and
	// mean the offered traffic exceeds the channel's raw capacity — a
	// regime where a real CSMA/CD segment would be unstable (the queueing
	// estimate inside the delay model saturates at 0.95 occupancy).
	NetUtilization float64 `json:",omitempty"`
	// NetMeanInflationMS and NetMeanQueueMS are the mean per-message
	// contention-interval inflation and M/D/1 channel queueing delay, ms.
	NetMeanInflationMS float64 `json:",omitempty"`
	NetMeanQueueMS     float64 `json:",omitempty"`
}

// collect snapshots every node's statistics at time t, the end of the
// measurement window (the time the simulation stopped executing events).
func (s *System) collect(t float64) Results {
	res := Results{Window: t - s.cfg.Warmup}
	for _, n := range s.nodes {
		nr := NodeResults{
			TxnThroughput: make(map[TxnKind]float64),
			ThroughputCI:  make(map[TxnKind]float64),
			MeanResponse:  make(map[TxnKind]float64),
			P95Response:   make(map[TxnKind]float64),
			Commits:       make(map[TxnKind]int64),
			Submissions:   make(map[TxnKind]int64),
		}
		for _, k := range []TxnKind{LRO, LU, DRO, DU} {
			x := n.commits[k].Rate(t) * 1000 // per ms -> per s
			nr.TxnThroughput[k] = x
			if wr, ok := n.commitRate[k]; ok {
				_, half := wr.Rate(t)
				nr.ThroughputCI[k] = half * 1000
			}
			nr.TotalTxnThroughput += x
			nr.RecordThroughput += n.recordsDone[k].Rate(t) * 1000
			nr.MeanResponse[k] = n.respTime[k].Mean()
			nr.P95Response[k] = n.respHist[k].Quantile(0.95)
			nr.Commits[k] = n.commits[k].N()
			nr.Submissions[k] = n.submissions[k].N()
		}
		nr.CPUUtilization = n.cpu.Utilization(t)
		nr.TMUtilization = n.tm.Utilization(t)
		for _, d := range n.dbDisks {
			nr.DBDiskUtilization += d.Utilization(t) / float64(len(n.dbDisks))
			nr.DiskIORate += d.IORate(t) * 1000
		}
		if n.separateLog() {
			nr.LogDiskUtilization = n.logDisk.Utilization(t)
			nr.DiskIORate += n.logDisk.IORate(t) * 1000
		} else {
			nr.LogDiskUtilization = nr.DBDiskUtilization
		}
		nr.LocalDeadlocks = n.deadlocks.N()
		nr.GlobalDeadlocks = n.globalDead.N()
		nr.MeanLockWait = n.lockWaits.Mean()
		nr.LockWaits = n.lockWaits.N()
		nr.Messages = n.msgs.N()
		nr.Crashes = n.crashes.N()
		nr.DowntimeMS = n.downtimeMS
		if n.down {
			nr.DowntimeMS += t - n.downSince
		}
		nr.Availability = 1
		if res.Window > 0 {
			nr.Availability = 1 - nr.DowntimeMS/res.Window
		}
		nr.CrashAborts = n.crashAborts.N()
		nr.TimeoutAborts = n.timeoutAborts.N()
		nr.InDoubtCommitted = n.inDoubtCommit.N()
		nr.InDoubtAborted = n.inDoubtAbort.N()
		nr.MessagesLost = n.msgsLost.N()
		nr.DegradedCommits = n.degradedCommits.N()
		nr.Retried = make(map[AbortCause]int64)
		nr.Abandoned = make(map[AbortCause]int64)
		for c := AbortCause(0); c < numAbortCauses; c++ {
			if c == CauseValidation && s.cfg.Concurrency != CCOCC {
				// Only OCC produces validation aborts; keeping the key out
				// of the maps everywhere else keeps the serialized shape —
				// and the kernel-equivalence pins — of every pre-existing
				// configuration byte-identical.
				continue
			}
			nr.Retried[c] = n.retried[c].N()
			nr.Abandoned[c] = n.abandoned[c].N()
		}
		nr.ValidationAborts = n.validationFails.N()
		nr.PartitionAborts = n.partitionAborts.N()
		nr.PartitionShed = n.partitionShed.N()
		nr.SuspectEvents = n.suspectEvents.N()
		nr.GrayMS = n.grayMS
		if n.grayActive {
			nr.GrayMS += t - n.graySince
		}
		nr.ShedArrivals = n.shedArrivals.N()
		nr.DelayedArrivals = n.delayedArrivals.N()
		nr.MeanAdmitWaitMS = n.admitWait.Mean()
		nr.PeakMPL = n.peakMPL
		nr.ProbesLost = n.probesLost.N()
		nr.ProbesResent = n.probesResent.N()
		nr.FailoverReads = n.failoverReads.N()
		nr.ReplicaApplies = n.replicaApplies.N()
		nr.QuorumReads = n.quorumReads.N()
		if s.open != nil {
			nr.OpenArrivals = n.openArrivals.N()
			nr.OpenOfferedPerSec = n.openArrivals.Rate(t) * 1000
			nr.OpenMeanInSystem = n.openInSystem.Mean(t)
			nr.OpenPeakInSystem = n.openInSystem.Max()
			agg := stats.NewHistogram(1, 1.05)
			var sum float64
			var cnt int64
			for _, k := range []TxnKind{LRO, LU, DRO, DU} {
				agg.Merge(n.respHist[k])
				sum += n.respTime[k].Sum()
				cnt += n.respTime[k].N()
			}
			if cnt > 0 {
				nr.OpenMeanResponseMS = sum / float64(cnt)
			}
			nr.OpenP50ResponseMS = agg.Quantile(0.50)
			nr.OpenP95ResponseMS = agg.Quantile(0.95)
		}
		res.Nodes = append(res.Nodes, nr)
	}
	res.DegradedMS = s.degradedMS
	if s.downCount > 0 {
		res.DegradedMS += t - s.degradedSince
	}
	if f := s.faults; f != nil {
		res.Partitions = f.partitions
		res.PartitionMS = f.partitionMS
		if f.part.Active() {
			res.PartitionMS += t - f.partitionSince
		}
	}
	if fb := s.fabric; fb != nil {
		res.NetMessages = fb.msgs
		res.NetBytes = fb.bytes
		if res.Window > 0 {
			res.NetUtilization = fb.busyMS / res.Window
		}
		if fb.msgs > 0 {
			res.NetMeanInflationMS = fb.inflateMS / float64(fb.msgs)
			res.NetMeanQueueMS = fb.queueMS / float64(fb.msgs)
		}
	}
	return res
}
