package testbed

import (
	"testing"

	"carat/internal/storage"
)

// TestCrashRecoveryConsistency crashes a busy distributed system mid-run
// and checks that restart recovery leaves every site consistent: losers
// are only in-flight transactions, every in-doubt branch resolves to its
// coordinator's outcome, and committed work survives.
func TestCrashRecoveryConsistency(t *testing.T) {
	cfg := twoNodeConfig(mb4Users(), 8, 13)
	cfg.Duration = 500_000
	cfg.Layout = storage.Layout{Granules: 500, RecordsPerGran: 6}

	committed := map[int64]bool{}
	cfg.Trace = func(ev TraceEvent) {
		if ev.Ev == EvForceCommit {
			committed[ev.Txn] = true
		}
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run() // clock stops mid-transaction for most users

	inFlight := map[int64]bool{}
	for gid := range sys.reg {
		inFlight[gid] = true
	}

	rep := sys.CrashRecover()

	var losers, doubts int
	for i := range rep.Losers {
		for _, gid := range rep.Losers[i] {
			losers++
			if committed[gid] {
				t.Errorf("node %d undid committed txn %d", i, gid)
			}
		}
		doubts += len(rep.InDoubt[i])
	}
	// Every in-doubt branch must resolve to the coordinator's outcome.
	for gid, outcome := range rep.Resolved {
		if outcome != committed[gid] {
			t.Errorf("in-doubt txn %d resolved to %v but coordinator committed=%v",
				gid, outcome, committed[gid])
		}
	}
	// Losers exist: the crash caught work in flight.
	if losers == 0 && doubts == 0 {
		t.Fatal("crash found nothing in flight — run too idle for this test")
	}
	// Losers are a subset of in-flight transactions (never finished ones).
	for i := range rep.Losers {
		for _, gid := range rep.Losers[i] {
			if !inFlight[gid] && committed[gid] {
				t.Errorf("loser %d at node %d was already committed", gid, i)
			}
		}
	}
}

// TestCrashRecoveryInDoubtBranches engineers the in-doubt window: stop the
// clock often and look for runs where a DU transaction prepared at the
// slave but the coordinator's commit record was or wasn't yet durable.
func TestCrashRecoveryInDoubtBranches(t *testing.T) {
	foundDoubt := false
	for seed := uint64(1); seed <= 40 && !foundDoubt; seed++ {
		users := []UserSpec{
			{Kind: DU, Home: 0, Remote: 1},
			{Kind: DU, Home: 1, Remote: 0},
			{Kind: LU, Home: 0},
			{Kind: LU, Home: 1},
		}
		cfg := twoNodeConfig(users, 8, seed)
		// Stop at an arbitrary point; with DU commits taking ~100s ms the
		// prepared-but-uncommitted window is regularly hit.
		cfg.Duration = 50_000 + float64(seed)*7_919
		cfg.Warmup = 0
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run()
		rep := sys.CrashRecover()
		for i := range rep.InDoubt {
			if len(rep.InDoubt[i]) > 0 {
				foundDoubt = true
			}
		}
	}
	if !foundDoubt {
		t.Fatal("no in-doubt branch found across 40 crash points — prepare records not being written?")
	}
}

// TestCrashRecoveryIdempotentState verifies recovery twice in a row leaves
// the stores untouched the second time (no work left undone or redone).
func TestCrashRecoveryIdempotentState(t *testing.T) {
	cfg := twoNodeConfig(mb4Users(), 8, 21)
	cfg.Duration = 300_000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	sys.CrashRecover()
	before := snapshotStores(sys)
	rep := sys.CrashRecover()
	for i := range rep.Losers {
		if len(rep.Losers[i]) != 0 || len(rep.InDoubt[i]) != 0 {
			t.Fatalf("second recovery found work at node %d: losers=%v inDoubt=%v",
				i, rep.Losers[i], rep.InDoubt[i])
		}
	}
	after := snapshotStores(sys)
	for i := range before {
		for g := range before[i] {
			if before[i][g] != after[i][g] {
				t.Fatalf("node %d block %d changed on idempotent recovery", i, g)
			}
		}
	}
}

func snapshotStores(sys *System) [][]uint64 {
	out := make([][]uint64, len(sys.nodes))
	for i, n := range sys.nodes {
		blocks := make([]uint64, n.store.Layout().Granules)
		for g := range blocks {
			blocks[g] = n.store.ReadBlock(g)
		}
		out[i] = blocks
	}
	return out
}
