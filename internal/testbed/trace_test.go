package testbed

import (
	"testing"

	"carat/internal/storage"
)

// collectTrace runs a contended MB4-style workload with tracing and
// returns the event stream grouped by transaction.
func collectTrace(t *testing.T, n int, seed uint64) (all []TraceEvent, byTxn map[int64][]TraceEvent) {
	t.Helper()
	cfg := twoNodeConfig(mb4Users(), n, seed)
	cfg.Duration = 400_000
	cfg.Warmup = 0
	cfg.Layout = storage.Layout{Granules: 400, RecordsPerGran: 6} // force conflicts
	cfg.Trace = func(ev TraceEvent) { all = append(all, ev) }
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	byTxn = make(map[int64][]TraceEvent)
	for _, ev := range all {
		byTxn[ev.Txn] = append(byTxn[ev.Txn], ev)
	}
	return all, byTxn
}

// terminal returns the transaction's final outcome event, or -1 if it was
// still in flight when the simulation clock stopped.
func terminal(evs []TraceEvent) TraceKind {
	for _, ev := range evs {
		if ev.Ev == EvCommitted || ev.Ev == EvAborted {
			return ev.Ev
		}
	}
	return -1
}

func TestTraceEveryAttemptTerminates(t *testing.T) {
	_, byTxn := collectTrace(t, 8, 3)
	inflight := 0
	for txn, evs := range byTxn {
		if evs[0].Ev != EvBegin {
			t.Fatalf("txn %d first event %v, want begin", txn, evs[0].Ev)
		}
		if terminal(evs) == -1 {
			inflight++
		}
	}
	// At most one in-flight attempt per user when the clock stops.
	if inflight > len(mb4Users()) {
		t.Fatalf("%d unterminated attempts for %d users", inflight, len(mb4Users()))
	}
	if len(byTxn) < 50 {
		t.Fatalf("only %d attempts traced; workload too idle for the test", len(byTxn))
	}
}

// TestTraceStrictTwoPhaseLocking: locks are released only after the commit
// point (force-written commit record) or after rollback began — never
// between lock acquisition and the outcome decision.
func TestTraceStrictTwoPhaseLocking(t *testing.T) {
	_, byTxn := collectTrace(t, 8, 4)
	for txn, evs := range byTxn {
		decided := false
		for _, ev := range evs {
			switch ev.Ev {
			case EvForceCommit, EvRollback, EvDeadlock:
				decided = true
			case EvLockGrant:
				if decided {
					t.Fatalf("txn %d acquires lock after outcome decided:\n%v", txn, evs)
				}
			case EvRelease:
				if !decided {
					t.Fatalf("txn %d releases locks before outcome decided:\n%v", txn, evs)
				}
			}
		}
	}
}

// TestTraceTwoPhaseCommitOrder: for every committed distributed
// transaction, all prepare acknowledgments precede the coordinator's
// force-written commit record, which precedes every slave commit.
func TestTraceTwoPhaseCommitOrder(t *testing.T) {
	_, byTxn := collectTrace(t, 8, 5)
	checked := 0
	for txn, evs := range byTxn {
		if !evs[0].Kind.Distributed() || terminal(evs) != EvCommitted {
			continue
		}
		var lastPrepare, forceAt, firstSlaveCommit float64 = -1, -1, -1
		prepares, slaveCommits := 0, 0
		for _, ev := range evs {
			switch ev.Ev {
			case EvPrepareAck:
				prepares++
				if ev.T > lastPrepare {
					lastPrepare = ev.T
				}
			case EvForceCommit:
				forceAt = ev.T
			case EvSlaveCommit:
				slaveCommits++
				if firstSlaveCommit < 0 || ev.T < firstSlaveCommit {
					firstSlaveCommit = ev.T
				}
			}
		}
		if prepares == 0 || slaveCommits == 0 || forceAt < 0 {
			t.Fatalf("txn %d committed without full 2PC: %d prepares, %d slave commits, force=%v",
				txn, prepares, slaveCommits, forceAt)
		}
		if prepares != slaveCommits {
			t.Fatalf("txn %d: %d prepares but %d slave commits", txn, prepares, slaveCommits)
		}
		if lastPrepare > forceAt {
			t.Fatalf("txn %d: prepare ack at %v after commit point %v", txn, lastPrepare, forceAt)
		}
		if firstSlaveCommit < forceAt {
			t.Fatalf("txn %d: slave commit at %v before commit point %v", txn, firstSlaveCommit, forceAt)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no committed distributed transactions to check")
	}
}

// TestTraceLocalTxnsSkip2PC: local transactions never emit prepare or
// slave-commit events.
func TestTraceLocalTxnsSkip2PC(t *testing.T) {
	_, byTxn := collectTrace(t, 8, 6)
	for txn, evs := range byTxn {
		if evs[0].Kind.Distributed() {
			continue
		}
		for _, ev := range evs {
			if ev.Ev == EvPrepareAck || ev.Ev == EvSlaveCommit {
				t.Fatalf("local txn %d ran 2PC: %v", txn, ev)
			}
			if ev.Node != evs[0].Node {
				t.Fatalf("local txn %d touched node %d", txn, ev.Node)
			}
		}
	}
}

// TestTraceDeadlockVictimsRollBack: every deadlock victim rolls back and
// releases at every node it touched, and ends aborted.
func TestTraceDeadlockVictimsRollBack(t *testing.T) {
	_, byTxn := collectTrace(t, 12, 7)
	victims := 0
	for txn, evs := range byTxn {
		hasDeadlock := false
		for _, ev := range evs {
			if ev.Ev == EvDeadlock {
				hasDeadlock = true
			}
		}
		if !hasDeadlock {
			continue
		}
		victims++
		if got := terminal(evs); got != EvAborted {
			t.Fatalf("victim %d terminal = %v, want aborted:\n%v", txn, got, evs)
		}
		// Rollback precedes the aborted event.
		sawRollback := false
		for _, ev := range evs {
			if ev.Ev == EvRollback {
				sawRollback = true
			}
			if ev.Ev == EvAborted && !sawRollback {
				t.Fatalf("victim %d aborted without rollback", txn)
			}
		}
	}
	if victims == 0 {
		t.Fatal("no deadlock victims at n=12 on a 400-granule database — suspicious")
	}
}

// TestTraceWaitsEventuallyResolve: every lock-wait event is followed by a
// grant or a deadlock for that granule (no lost wakeups), unless the run
// ended first.
func TestTraceWaitsEventuallyResolve(t *testing.T) {
	_, byTxn := collectTrace(t, 10, 8)
	for txn, evs := range byTxn {
		if terminal(evs) == -1 {
			continue // in flight at clock stop
		}
		pending := map[int]bool{}
		for _, ev := range evs {
			switch ev.Ev {
			case EvLockWait:
				pending[ev.Granule] = true
			case EvLockGrant, EvDeadlock:
				delete(pending, ev.Granule)
			}
		}
		if len(pending) > 0 {
			t.Fatalf("txn %d finished with unresolved lock waits %v:\n%v", txn, pending, evs)
		}
	}
}

// TestTraceEventStrings exercises the event formatting used by trace dumps.
func TestTraceEventStrings(t *testing.T) {
	ev := TraceEvent{T: 12.5, Txn: 3, Kind: DU, Node: 1, Ev: EvForceCommit, Granule: -1}
	s := ev.String()
	if s == "" || EvBegin.String() != "begin" || TraceKind(99).String() == "" {
		t.Fatal("trace formatting broken")
	}
}
