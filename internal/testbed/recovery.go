package testbed

import "carat/internal/wal"

// RecoveryReport summarizes a simulated crash-and-restart of the whole
// distributed system.
type RecoveryReport struct {
	// Losers[i] lists transactions undone at node i by presumed abort
	// (no durable commit, abort or prepared record).
	Losers [][]int64
	// InDoubt[i] lists transactions that were prepared at node i and had
	// to be resolved against their coordinator's log; Resolved maps each
	// to the outcome applied (true = commit).
	InDoubt  [][]int64
	Resolved map[int64]bool
}

// CrashRecover simulates every node losing volatile memory at the current
// simulation time and running restart recovery: each site undoes its
// losers from the durable journal, and in-doubt two-phase-commit branches
// are resolved by consulting the coordinator's durable log (commit record
// present -> commit; otherwise abort), as the centralized protocol
// prescribes. Call after Run; the simulation must not be resumed
// afterwards.
func (s *System) CrashRecover() RecoveryReport {
	rep := RecoveryReport{
		Losers:   make([][]int64, len(s.nodes)),
		InDoubt:  make([][]int64, len(s.nodes)),
		Resolved: make(map[int64]bool),
	}
	// Phase 1: local recovery at every site.
	type doubt struct {
		node *node
		gid  int64
	}
	var doubts []doubt
	for i, n := range s.nodes {
		losers, inDoubt := n.journal.Recover(n.store)
		rep.Losers[i] = losers
		rep.InDoubt[i] = inDoubt
		for _, gid := range inDoubt {
			doubts = append(doubts, doubt{node: n, gid: gid})
		}
	}
	// Phase 2: resolve in-doubt branches against the coordinator's log.
	for _, d := range doubts {
		commit := s.coordinatorCommitted(d.gid)
		rep.Resolved[d.gid] = commit
		d.node.journal.ResolveInDoubt(d.gid, commit, d.node.store)
	}
	return rep
}

// coordinatorCommitted reports whether any node's durable log holds a
// commit record for gid — the centralized 2PC recovery query. (The
// coordinator's identity is implicit: only it writes the commit record.)
func (s *System) coordinatorCommitted(gid int64) bool {
	for _, n := range s.nodes {
		for _, r := range n.journal.Records() {
			if r.Txn == gid && r.Kind == wal.Commit && r.LSN <= n.journal.FlushedLSN() {
				return true
			}
		}
	}
	return false
}
