package testbed

import (
	"testing"

	"carat/internal/storage"
)

// ccConfig builds a contended two-node workload under a given protocol.
func ccConfig(cc CCProtocol, n int, seed uint64) Config {
	cfg := twoNodeConfig(mb4Users(), n, seed)
	cfg.Concurrency = cc
	cfg.Layout = storage.Layout{Granules: 400, RecordsPerGran: 6}
	cfg.Duration = 800_000
	cfg.Warmup = 50_000
	return cfg
}

func runCC(t *testing.T, cc CCProtocol, n int, seed uint64) Results {
	t.Helper()
	sys, err := New(ccConfig(cc, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run()
}

func TestAllProtocolsMakeProgress(t *testing.T) {
	for _, cc := range []CCProtocol{CC2PL, CCWaitDie, CCWoundWait, CCTimestamp} {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			cfg := ccConfig(cc, 8, 31)
			// On the paper's standard database every protocol sustains
			// all four transaction types (basic TO starves long writers
			// on much smaller databases — see the starvation test).
			cfg.Layout = storage.DefaultLayout()
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := sys.Run()
			for i, nr := range res.Nodes {
				for _, k := range []TxnKind{LRO, LU, DRO, DU} {
					if nr.TxnThroughput[k] <= 0 {
						t.Fatalf("node %d: %v stalled under %v", i, k, cc)
					}
				}
			}
		})
	}
}

// TestTimestampOrderingStarvesLongWriters documents basic TO's known
// failure mode in read-heavy mixes: a long update transaction keeps
// arriving "too late" at granules younger readers have touched, restarting
// indefinitely while short readers sail through — one concrete instance of
// the assumption-sensitivity Agrawal, Carey & Livny used to explain the
// literature's contradictory 2PL-vs-TO conclusions.
func TestTimestampOrderingStarvesLongWriters(t *testing.T) {
	res := runCC(t, CCTimestamp, 12, 31) // 400-granule database
	var duCommits int64
	var lroCommits int64
	for _, nr := range res.Nodes {
		duCommits += nr.Commits[DU]
		lroCommits += nr.Commits[LRO]
	}
	if lroCommits == 0 {
		t.Fatal("even readers stalled — that is a bug, not starvation")
	}
	// 2PL at identical parameters commits DUs steadily.
	ref := runCC(t, CC2PL, 12, 31)
	var duRef int64
	for _, nr := range ref.Nodes {
		duRef += nr.Commits[DU]
	}
	if duRef == 0 {
		t.Fatal("reference 2PL run has no DU commits — test parameters broken")
	}
	if duCommits*4 > duRef {
		t.Fatalf("expected severe DU starvation under TO: TO %d vs 2PL %d commits",
			duCommits, duRef)
	}
}

func TestPreventionAbortsMoreRestartsThanDetection(t *testing.T) {
	// Wait-die kills on every old-holder conflict, detection only on real
	// cycles: prevention must show more resubmissions at equal contention.
	detect := runCC(t, CC2PL, 12, 7)
	waitDie := runCC(t, CCWaitDie, 12, 7)
	resub := func(r Results) int64 {
		var subs, commits int64
		for _, nr := range r.Nodes {
			for _, k := range []TxnKind{LRO, LU, DRO, DU} {
				subs += nr.Submissions[k]
				commits += nr.Commits[k]
			}
		}
		return subs - commits
	}
	if resub(waitDie) <= resub(detect) {
		t.Fatalf("wait-die restarts (%d) should exceed detection's (%d)",
			resub(waitDie), resub(detect))
	}
}

func TestTimestampOrderingNeverBlocks(t *testing.T) {
	cfg := ccConfig(CCTimestamp, 12, 9)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	for i, nr := range res.Nodes {
		if nr.LockWaits != 0 {
			t.Fatalf("node %d: %d lock waits under TO — TO must not block", i, nr.LockWaits)
		}
		if nr.TotalTxnThroughput <= 0 {
			t.Fatalf("node %d stalled", i)
		}
	}
}

func TestTimestampOrderingRestartsUnderContention(t *testing.T) {
	res := runCC(t, CCTimestamp, 16, 11)
	var rejects int64
	for _, nr := range res.Nodes {
		rejects += nr.LocalDeadlocks // Reject aborts share the counter
	}
	if rejects == 0 {
		t.Fatal("no TO rejects at n=16 on a 400-granule database")
	}
}

func TestWoundWaitWoundsRunningTransactions(t *testing.T) {
	// Two LU populations, tiny database: wounds must occur and the system
	// must keep committing (no stuck wounded transactions).
	users := []UserSpec{
		{Kind: LU, Home: 0}, {Kind: LU, Home: 0}, {Kind: LU, Home: 0}, {Kind: LU, Home: 0},
	}
	cfg := twoNodeConfig(users, 12, 13)
	cfg.Concurrency = CCWoundWait
	cfg.Layout = storage.Layout{Granules: 60, RecordsPerGran: 6}
	cfg.Duration = 600_000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if res.Nodes[0].Commits[LU] == 0 {
		t.Fatal("no commits under wound-wait at high contention")
	}
	var aborts int64
	aborts = res.Nodes[0].Submissions[LU] - res.Nodes[0].Commits[LU]
	if aborts == 0 {
		t.Fatal("no wounds at this contention level — wound path untested")
	}
}

func TestCCProtocolsDeterministic(t *testing.T) {
	for _, cc := range []CCProtocol{CCWaitDie, CCWoundWait, CCTimestamp} {
		a := runCC(t, cc, 8, 17)
		b := runCC(t, cc, 8, 17)
		for i := range a.Nodes {
			if a.Nodes[i].TotalTxnThroughput != b.Nodes[i].TotalTxnThroughput {
				t.Fatalf("%v nondeterministic at node %d", cc, i)
			}
		}
	}
}

func TestCCProtocolString(t *testing.T) {
	if CC2PL.String() != "2PL-detect" || CCTimestamp.String() != "basic-TO" {
		t.Fatal("protocol names wrong")
	}
}

// TestCCTraceInvariantsHoldForPrevention re-runs the strict-2PL and
// termination trace properties under the prevention disciplines.
func TestCCTraceInvariantsHoldForPrevention(t *testing.T) {
	for _, cc := range []CCProtocol{CCWaitDie, CCWoundWait} {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			var all []TraceEvent
			cfg := ccConfig(cc, 10, 19)
			cfg.Duration = 300_000
			cfg.Warmup = 0
			cfg.Trace = func(ev TraceEvent) { all = append(all, ev) }
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sys.Run()
			byTxn := map[int64][]TraceEvent{}
			for _, ev := range all {
				byTxn[ev.Txn] = append(byTxn[ev.Txn], ev)
			}
			for txn, evs := range byTxn {
				decided := false
				for _, ev := range evs {
					switch ev.Ev {
					case EvForceCommit, EvRollback, EvDeadlock:
						decided = true
					case EvLockGrant:
						if decided {
							t.Fatalf("%v: txn %d acquires after decision", cc, txn)
						}
					case EvRelease:
						if !decided {
							t.Fatalf("%v: txn %d releases before decision", cc, txn)
						}
					}
				}
			}
		})
	}
}
