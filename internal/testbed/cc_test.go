package testbed

import (
	"testing"

	"carat/internal/storage"
)

// ccConfig builds a contended two-node workload under a given protocol.
func ccConfig(cc CCProtocol, n int, seed uint64) Config {
	cfg := twoNodeConfig(mb4Users(), n, seed)
	cfg.Concurrency = cc
	cfg.Layout = storage.Layout{Granules: 400, RecordsPerGran: 6}
	cfg.Duration = 800_000
	cfg.Warmup = 50_000
	return cfg
}

func runCC(t *testing.T, cc CCProtocol, n int, seed uint64) Results {
	t.Helper()
	sys, err := New(ccConfig(cc, n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run()
}

func TestAllProtocolsMakeProgress(t *testing.T) {
	for _, cc := range []CCProtocol{CC2PL, CCWaitDie, CCWoundWait, CCTimestamp, CCOCC, CCQueCC} {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			cfg := ccConfig(cc, 8, 31)
			// On the paper's standard database every protocol sustains
			// all four transaction types (basic TO starves long writers
			// on much smaller databases — see the starvation test).
			cfg.Layout = storage.DefaultLayout()
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := sys.Run()
			for i, nr := range res.Nodes {
				for _, k := range []TxnKind{LRO, LU, DRO, DU} {
					if nr.TxnThroughput[k] <= 0 {
						t.Fatalf("node %d: %v stalled under %v", i, k, cc)
					}
				}
			}
		})
	}
}

// TestTimestampOrderingStarvesLongWriters documents basic TO's known
// failure mode in read-heavy mixes: a long update transaction keeps
// arriving "too late" at granules younger readers have touched, restarting
// indefinitely while short readers sail through — one concrete instance of
// the assumption-sensitivity Agrawal, Carey & Livny used to explain the
// literature's contradictory 2PL-vs-TO conclusions.
func TestTimestampOrderingStarvesLongWriters(t *testing.T) {
	res := runCC(t, CCTimestamp, 12, 31) // 400-granule database
	var duCommits int64
	var lroCommits int64
	for _, nr := range res.Nodes {
		duCommits += nr.Commits[DU]
		lroCommits += nr.Commits[LRO]
	}
	if lroCommits == 0 {
		t.Fatal("even readers stalled — that is a bug, not starvation")
	}
	// 2PL at identical parameters commits DUs steadily.
	ref := runCC(t, CC2PL, 12, 31)
	var duRef int64
	for _, nr := range ref.Nodes {
		duRef += nr.Commits[DU]
	}
	if duRef == 0 {
		t.Fatal("reference 2PL run has no DU commits — test parameters broken")
	}
	if duCommits*4 > duRef {
		t.Fatalf("expected severe DU starvation under TO: TO %d vs 2PL %d commits",
			duCommits, duRef)
	}
}

func TestPreventionAbortsMoreRestartsThanDetection(t *testing.T) {
	// Wait-die kills on every old-holder conflict, detection only on real
	// cycles: prevention must show more resubmissions at equal contention.
	detect := runCC(t, CC2PL, 12, 7)
	waitDie := runCC(t, CCWaitDie, 12, 7)
	resub := func(r Results) int64 {
		var subs, commits int64
		for _, nr := range r.Nodes {
			for _, k := range []TxnKind{LRO, LU, DRO, DU} {
				subs += nr.Submissions[k]
				commits += nr.Commits[k]
			}
		}
		return subs - commits
	}
	if resub(waitDie) <= resub(detect) {
		t.Fatalf("wait-die restarts (%d) should exceed detection's (%d)",
			resub(waitDie), resub(detect))
	}
}

func TestTimestampOrderingNeverBlocks(t *testing.T) {
	cfg := ccConfig(CCTimestamp, 12, 9)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	for i, nr := range res.Nodes {
		if nr.LockWaits != 0 {
			t.Fatalf("node %d: %d lock waits under TO — TO must not block", i, nr.LockWaits)
		}
		if nr.TotalTxnThroughput <= 0 {
			t.Fatalf("node %d stalled", i)
		}
	}
}

func TestTimestampOrderingRestartsUnderContention(t *testing.T) {
	res := runCC(t, CCTimestamp, 16, 11)
	var rejects int64
	for _, nr := range res.Nodes {
		rejects += nr.LocalDeadlocks // Reject aborts share the counter
	}
	if rejects == 0 {
		t.Fatal("no TO rejects at n=16 on a 400-granule database")
	}
}

func TestWoundWaitWoundsRunningTransactions(t *testing.T) {
	// Two LU populations, tiny database: wounds must occur and the system
	// must keep committing (no stuck wounded transactions).
	users := []UserSpec{
		{Kind: LU, Home: 0}, {Kind: LU, Home: 0}, {Kind: LU, Home: 0}, {Kind: LU, Home: 0},
	}
	cfg := twoNodeConfig(users, 12, 13)
	cfg.Concurrency = CCWoundWait
	cfg.Layout = storage.Layout{Granules: 60, RecordsPerGran: 6}
	cfg.Duration = 600_000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if res.Nodes[0].Commits[LU] == 0 {
		t.Fatal("no commits under wound-wait at high contention")
	}
	var aborts int64
	aborts = res.Nodes[0].Submissions[LU] - res.Nodes[0].Commits[LU]
	if aborts == 0 {
		t.Fatal("no wounds at this contention level — wound path untested")
	}
}

func TestCCProtocolsDeterministic(t *testing.T) {
	for _, cc := range []CCProtocol{CCWaitDie, CCWoundWait, CCTimestamp, CCOCC, CCQueCC} {
		a := runCC(t, cc, 8, 17)
		b := runCC(t, cc, 8, 17)
		for i := range a.Nodes {
			if a.Nodes[i].TotalTxnThroughput != b.Nodes[i].TotalTxnThroughput {
				t.Fatalf("%v nondeterministic at node %d", cc, i)
			}
		}
	}
}

func TestCCProtocolString(t *testing.T) {
	if CC2PL.String() != "2PL-detect" || CCTimestamp.String() != "basic-TO" {
		t.Fatal("protocol names wrong")
	}
	if CCOCC.String() != "OCC" || CCQueCC.String() != "QueCC" {
		t.Fatal("OCC/QueCC protocol names wrong")
	}
}

// TestNoProbeStateOutsideDetection is the regression for the probe-gating
// satellite: the Chandy–Misra detector (and with it every probe message)
// exists only under 2PL with deadlock detection, the one paradigm whose
// waits-for graph can cycle. Prevention, TO, OCC and QueCC allocate no
// probe state at all.
func TestNoProbeStateOutsideDetection(t *testing.T) {
	for _, ccp := range []CCProtocol{CCWaitDie, CCWoundWait, CCTimestamp, CCOCC, CCQueCC} {
		cfg := ccConfig(ccp, 4, 5)
		cfg.Duration = 100_000
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range sys.nodes {
			if n.detector != nil {
				t.Fatalf("%v: node %d allocated a probe detector", ccp, i)
			}
		}
		sys.Run()
	}
	sys, err := New(ccConfig(CC2PL, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range sys.nodes {
		if n.detector == nil {
			t.Fatalf("2PL-detect: node %d missing its probe detector", i)
		}
	}
	sys.Run()
}

// TestQueCCNoDeadlocksNoProbeTraffic checks the deterministic paradigm's
// headline property end to end: claims enter every queue in global gid
// order at planning time, so no deadlock can form and no probe machinery
// runs — even with probe retransmission configured, which is armed only
// for paradigms that can deadlock.
func TestQueCCNoDeadlocksNoProbeTraffic(t *testing.T) {
	cfg := ccConfig(CCQueCC, 16, 23)
	cfg.Resilience.ProbeRetryMS = 50
	var reprobes, deadlockEvs int
	cfg.Trace = func(ev TraceEvent) {
		switch ev.Ev {
		case EvReprobe:
			reprobes++
		case EvDeadlock:
			deadlockEvs++
		}
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	for i, nr := range res.Nodes {
		if nr.LocalDeadlocks != 0 || nr.GlobalDeadlocks != 0 {
			t.Fatalf("node %d: deadlocks under QueCC (local %d, global %d)",
				i, nr.LocalDeadlocks, nr.GlobalDeadlocks)
		}
		if nr.ProbesResent != 0 {
			t.Fatalf("node %d: %d probe rounds resent under QueCC", i, nr.ProbesResent)
		}
		if nr.TotalTxnThroughput <= 0 {
			t.Fatalf("node %d stalled under QueCC", i)
		}
	}
	if reprobes != 0 || deadlockEvs != 0 {
		t.Fatalf("QueCC trace shows %d reprobes, %d deadlock events", reprobes, deadlockEvs)
	}
}

// TestQueCCHighMPLNoStall regresses the execution-slot gate: with more
// users than DM servers, a parked claim-waiter holding its DM servers used
// to starve the older transaction its claims wait for out of the DM pool —
// a cross-layer cycle that wedged the whole system within seconds. Bounded
// execution slots (System.ccSlots) keep admitted transactions ≤ the DM
// pool, so the run must commit steadily through the entire window.
func TestQueCCHighMPLNoStall(t *testing.T) {
	users := make([]UserSpec, 0, 32)
	base := mb4Users()
	for i := 0; i < 4; i++ {
		users = append(users, base...)
	}
	cfg := twoNodeConfig(users, 8, 9245) // 32 users vs 16 DM servers per site
	cfg.Concurrency = CCQueCC
	cfg.Layout = storage.Layout{Granules: 400, RecordsPerGran: 6}
	cfg.Warmup = 0
	cfg.Duration = 1_920_000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if res.Window < cfg.Duration {
		t.Fatalf("run wedged: event queue drained at %.0f ms of %.0f", res.Window, cfg.Duration)
	}
	var commits int64
	for _, nr := range res.Nodes {
		for _, k := range []TxnKind{LRO, LU, DRO, DU} {
			commits += nr.Commits[k]
		}
	}
	if commits < 100 {
		t.Fatalf("only %d commits across a 32-minute window at MPL 32", commits)
	}
}

// TestOCCNeverBlocksAndValidates exercises optimistic execution under
// contention: accesses never block (no lock waits), conflicts surface as
// commit-time validation aborts counted under CauseValidation, and the
// system keeps committing.
func TestOCCNeverBlocksAndValidates(t *testing.T) {
	res := runCC(t, CCOCC, 16, 29)
	var vAborts, commits, retriedV int64
	for i, nr := range res.Nodes {
		if nr.LockWaits != 0 {
			t.Fatalf("node %d: %d lock waits under OCC — OCC must not block", i, nr.LockWaits)
		}
		if nr.LocalDeadlocks != 0 || nr.GlobalDeadlocks != 0 {
			t.Fatalf("node %d: deadlock counters nonzero under OCC", i)
		}
		vAborts += nr.ValidationAborts
		retriedV += nr.Retried[CauseValidation]
		for _, k := range []TxnKind{LRO, LU, DRO, DU} {
			commits += nr.Commits[k]
		}
	}
	if commits == 0 {
		t.Fatal("no commits under OCC")
	}
	if vAborts == 0 {
		t.Fatal("no validation conflicts at n=16 on a 400-granule database")
	}
	if retriedV == 0 {
		t.Fatal("validation aborts not classified under CauseValidation in retry accounting")
	}
}

// TestCCTraceInvariantsHoldForPrevention re-runs the strict-2PL and
// termination trace properties under the prevention disciplines and the
// new paradigms: no access grant after the commit/abort decision, no
// release before it.
func TestCCTraceInvariantsHoldForPrevention(t *testing.T) {
	for _, cc := range []CCProtocol{CCWaitDie, CCWoundWait, CCOCC, CCQueCC} {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			var all []TraceEvent
			cfg := ccConfig(cc, 10, 19)
			cfg.Duration = 300_000
			cfg.Warmup = 0
			cfg.Trace = func(ev TraceEvent) { all = append(all, ev) }
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sys.Run()
			byTxn := map[int64][]TraceEvent{}
			for _, ev := range all {
				byTxn[ev.Txn] = append(byTxn[ev.Txn], ev)
			}
			for txn, evs := range byTxn {
				decided := false
				for _, ev := range evs {
					switch ev.Ev {
					case EvForceCommit, EvRollback, EvDeadlock:
						decided = true
					case EvLockGrant:
						if decided {
							t.Fatalf("%v: txn %d acquires after decision", cc, txn)
						}
					case EvRelease:
						if !decided {
							t.Fatalf("%v: txn %d releases before decision", cc, txn)
						}
					}
				}
			}
		})
	}
}
