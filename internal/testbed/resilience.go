package testbed

import (
	"fmt"

	"carat/internal/sim"
)

// AbortCause classifies why a submission aborted, for the retry/abandon
// accounting: deadlock victims (local wait-for-graph cycles, probe-detected
// global cycles, and the prevention protocols' restarts), participant-site
// crashes, and lock-wait/2PC-prepare timeouts.
type AbortCause int

const (
	// CauseDeadlock covers every concurrency-control restart.
	CauseDeadlock AbortCause = iota
	// CauseCrash covers aborts forced by a crashed participant site.
	CauseCrash
	// CauseTimeout covers lock-wait and 2PC prepare timeouts.
	CauseTimeout
	// CauseValidation covers OCC commit-time validation conflicts. Only
	// CCOCC runs produce it (and only CCOCC runs serialize it — see
	// Results.collect).
	CauseValidation

	numAbortCauses
)

// String names the cause.
func (c AbortCause) String() string {
	switch c {
	case CauseDeadlock:
		return "deadlock"
	case CauseCrash:
		return "crash"
	case CauseTimeout:
		return "timeout"
	case CauseValidation:
		return "validation"
	default:
		return fmt.Sprintf("AbortCause(%d)", int(c))
	}
}

// abortCauseOf maps a txnState doom cause to its AbortCause. A nil cause is
// a locally detected deadlock victim (the lock manager aborts it without
// going through killTxn).
func abortCauseOf(err error) AbortCause {
	switch err {
	case errSiteCrash, errPartitioned:
		// A partition is an availability fault like a crash: both retry and
		// abandonment accounting pool them under CauseCrash. The dedicated
		// PartitionAborts counter keeps the split visible.
		return CauseCrash
	case errLockTimeout, errPrepareTimeout:
		return CauseTimeout
	case errValidation:
		return CauseValidation
	default:
		return CauseDeadlock
	}
}

// RetryPolicy bounds how a user resubmits after an abort. The zero value is
// the historical CARAT behavior: retry forever, immediately (Section 3's
// restart-after-abort, which livelocks gracelessly under fault storms).
type RetryPolicy struct {
	// MaxAttempts caps the submissions of one user transaction; after the
	// cap the transaction is abandoned (counted, not committed) and the user
	// moves on. Zero retries forever.
	MaxAttempts int
	// BaseBackoffMS > 0 enables exponential backoff between resubmissions:
	// attempt k waits min(MaxBackoffMS, BaseBackoffMS·Multiplier^(k-1)),
	// jittered by ±JitterFrac. Zero disables backoff.
	BaseBackoffMS float64
	// MaxBackoffMS caps the backoff (default 32× BaseBackoffMS).
	MaxBackoffMS float64
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// JitterFrac in [0,1] scales each backoff by a uniform factor in
	// [1-JitterFrac, 1+JitterFrac], drawn from a dedicated per-user RNG
	// stream so enabling it never perturbs the workload streams.
	JitterFrac float64
}

// AdmissionPolicy is the per-site overload gate: when engaged, at most
// MaxMPL transactions homed at a site execute concurrently; excess arrivals
// are shed (rejected and backed off) or delayed (queued FIFO).
type AdmissionPolicy struct {
	// MaxMPL > 0 caps the concurrently admitted submissions per home site.
	// Zero disables admission control.
	MaxMPL int
	// AbortRateThreshold engages the gate only while the site's abort rate
	// (aborts per second over the trailing WindowMS) is at or above this
	// value; zero keeps the gate always engaged.
	AbortRateThreshold float64
	// WindowMS is the trailing abort-rate window (default 1000).
	WindowMS float64
	// Shed rejects excess arrivals and re-tries them after ShedBackoffMS
	// instead of queueing them (default false: delay, FIFO).
	Shed bool
	// ShedBackoffMS is the wait before a shed arrival re-tries (default 100).
	ShedBackoffMS float64
}

// Resilience configures the testbed's failure-survival layer. The zero
// value is fully inert: the simulation is byte-identical to one configured
// without it.
type Resilience struct {
	// Retry bounds and paces resubmission after aborts.
	Retry RetryPolicy
	// Admission gates new arrivals per home site under overload.
	Admission AdmissionPolicy
	// ProbeRetryMS > 0 re-initiates global deadlock probes for every
	// transaction still blocked in a lock wait, with this period, so a lost
	// probe message delays detection instead of hiding the deadlock until
	// the coarse lock-wait timeout (or forever).
	ProbeRetryMS float64
}

// Active reports whether any resilience mechanism is configured.
func (r *Resilience) Active() bool {
	return r.Retry.MaxAttempts > 0 || r.Retry.BaseBackoffMS > 0 ||
		r.Admission.MaxMPL > 0 || r.ProbeRetryMS > 0
}

// validate checks the policies and fills defaults in place.
func (r *Resilience) validate() error {
	if r.Retry.MaxAttempts < 0 {
		return fmt.Errorf("testbed: resilience MaxAttempts must be non-negative")
	}
	if r.Retry.BaseBackoffMS < 0 || r.Retry.MaxBackoffMS < 0 {
		return fmt.Errorf("testbed: resilience backoff times must be non-negative")
	}
	if r.Retry.JitterFrac < 0 || r.Retry.JitterFrac > 1 {
		return fmt.Errorf("testbed: resilience JitterFrac %v out of [0,1]", r.Retry.JitterFrac)
	}
	if r.Retry.BaseBackoffMS > 0 {
		if r.Retry.Multiplier <= 0 {
			r.Retry.Multiplier = 2
		}
		if r.Retry.Multiplier < 1 {
			return fmt.Errorf("testbed: resilience Multiplier %v must be >= 1", r.Retry.Multiplier)
		}
		if r.Retry.MaxBackoffMS == 0 {
			r.Retry.MaxBackoffMS = 32 * r.Retry.BaseBackoffMS
		}
		if r.Retry.MaxBackoffMS < r.Retry.BaseBackoffMS {
			return fmt.Errorf("testbed: resilience MaxBackoffMS %v below BaseBackoffMS %v",
				r.Retry.MaxBackoffMS, r.Retry.BaseBackoffMS)
		}
	}
	if r.Admission.MaxMPL < 0 {
		return fmt.Errorf("testbed: resilience MaxMPL must be non-negative")
	}
	if r.Admission.AbortRateThreshold < 0 {
		return fmt.Errorf("testbed: resilience AbortRateThreshold must be non-negative")
	}
	if r.Admission.MaxMPL > 0 {
		if r.Admission.WindowMS <= 0 {
			r.Admission.WindowMS = 1000
		}
		if r.Admission.ShedBackoffMS <= 0 {
			r.Admission.ShedBackoffMS = 100
		}
	}
	if r.ProbeRetryMS < 0 {
		return fmt.Errorf("testbed: resilience ProbeRetryMS must be non-negative")
	}
	return nil
}

// retryBackoff returns the backoff before resubmission number attempt+1,
// after attempt aborted submissions: exponential growth from the base,
// capped, with deterministic jitter from the user's dedicated stream.
func (u *user) retryBackoff(attempt int) float64 {
	pol := &u.sys.cfg.Resilience.Retry
	if pol.BaseBackoffMS <= 0 {
		return 0
	}
	b := pol.BaseBackoffMS
	for i := 1; i < attempt && b < pol.MaxBackoffMS; i++ {
		b *= pol.Multiplier
	}
	if b > pol.MaxBackoffMS {
		b = pol.MaxBackoffMS
	}
	if pol.JitterFrac > 0 {
		b *= 1 + pol.JitterFrac*(2*u.backoffRnd.Float64()-1)
	}
	return b
}

// admit blocks until the home site's admission gate passes this user's next
// submission, then takes a slot. No-op when admission control is off.
func (u *user) admit(p *sim.Proc, home *node) {
	pol := &u.sys.cfg.Resilience.Admission
	if pol.MaxMPL <= 0 {
		return
	}
	for home.admitted >= pol.MaxMPL && home.gateEngaged(p.Now()) {
		if pol.Shed {
			home.shedArrivals.Inc()
			u.sys.trace(-1, u.spec.Kind, home.id, EvShed, -1)
			p.Hold(pol.ShedBackoffMS)
			continue
		}
		ev := sim.NewEvent(u.sys.env, fmt.Sprintf("admit-%d", u.id))
		home.admitQ = append(home.admitQ, ev)
		home.delayedArrivals.Inc()
		t0 := p.Now()
		if err := ev.Wait(p); err != nil {
			// Never interrupted in practice (no transaction is registered
			// yet); bail without a slot so the accounting stays balanced.
			return
		}
		home.admitWait.Add(p.Now() - t0)
	}
	home.admitted++
	u.holdsSlot = true
	if home.admitted > home.peakMPL {
		home.peakMPL = home.admitted
	}
}

// releaseAdmission returns this user's admission slot and hands it to the
// first queued arrival, if any.
func (u *user) releaseAdmission(home *node) {
	if !u.holdsSlot {
		return
	}
	u.holdsSlot = false
	home.admitted--
	if len(home.admitQ) > 0 {
		ev := home.admitQ[0]
		home.admitQ = home.admitQ[1:]
		ev.Trigger(nil)
	}
}

// noteAbortRate records one abort at time t for the admission gate's
// trailing-window rate estimate. No-op unless a thresholded gate is on.
func (n *node) noteAbortRate(t float64) {
	pol := &n.sys.cfg.Resilience.Admission
	if pol.MaxMPL <= 0 || pol.AbortRateThreshold <= 0 {
		return
	}
	n.recentAborts = append(n.recentAborts, t)
	n.pruneAborts(t)
}

// pruneAborts drops abort timestamps older than the trailing window.
func (n *node) pruneAborts(t float64) {
	w := n.sys.cfg.Resilience.Admission.WindowMS
	i := 0
	for i < len(n.recentAborts) && n.recentAborts[i] < t-w {
		i++
	}
	if i > 0 {
		n.recentAborts = n.recentAborts[i:]
	}
}

// gateEngaged reports whether the admission gate applies at time t: always,
// or only while the trailing abort rate is at or above the threshold.
func (n *node) gateEngaged(t float64) bool {
	pol := &n.sys.cfg.Resilience.Admission
	if pol.AbortRateThreshold <= 0 {
		return true
	}
	n.pruneAborts(t)
	rate := float64(len(n.recentAborts)) / pol.WindowMS * 1000
	return rate >= pol.AbortRateThreshold
}
