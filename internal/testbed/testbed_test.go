package testbed

import (
	"math"
	"testing"

	"carat/internal/disk"
	"carat/internal/storage"
)

// twoNodeConfig builds a paper-style two-node system.
func twoNodeConfig(users []UserSpec, n int, seed uint64) Config {
	return Config{
		Nodes: []NodeConfig{
			{DBDisk: disk.ProfileRM05(), DMServers: 16},
			{DBDisk: disk.ProfileRP06(), DMServers: 16},
		},
		Users:             users,
		RequestsPerTxn:    n,
		RecordsPerRequest: 4,
		Seed:              seed,
		Warmup:            60_000,    // 1 simulated minute
		Duration:          1_000_000, // ~16.7 simulated minutes
	}
}

// mb4Users is the MB4 workload: one user of each kind at each node.
func mb4Users() []UserSpec {
	return []UserSpec{
		{Kind: LRO, Home: 0}, {Kind: LU, Home: 0},
		{Kind: DRO, Home: 0, Remote: 1}, {Kind: DU, Home: 0, Remote: 1},
		{Kind: LRO, Home: 1}, {Kind: LU, Home: 1},
		{Kind: DRO, Home: 1, Remote: 0}, {Kind: DU, Home: 1, Remote: 0},
	}
}

// lb8Users is the LB8 workload on one node: four LRO and four LU users.
func lb8Users(home NodeID) []UserSpec {
	var us []UserSpec
	for i := 0; i < 4; i++ {
		us = append(us, UserSpec{Kind: LRO, Home: home})
		us = append(us, UserSpec{Kind: LU, Home: home})
	}
	return us
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no nodes", func(c *Config) { c.Nodes = nil }},
		{"no users", func(c *Config) { c.Users = nil }},
		{"home out of range", func(c *Config) { c.Users[0].Home = 9 }},
		{"remote equals home", func(c *Config) {
			c.Users = []UserSpec{{Kind: DU, Home: 0, Remote: 0}}
		}},
		{"zero n", func(c *Config) { c.RequestsPerTxn = 0 }},
		{"bad buffer ratio", func(c *Config) { c.BufferHitRatio = 1.5 }},
		{"no duration", func(c *Config) { c.Duration = 0 }},
		{"warmup past duration", func(c *Config) { c.Warmup = c.Duration + 1 }},
		{"missing disk", func(c *Config) { c.Nodes[0].DBDisk = nil }},
		{"bad remote frac", func(c *Config) { c.RemoteFrac = 2 }},
	}
	for _, tc := range cases {
		cfg := twoNodeConfig(mb4Users(), 4, 1)
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestLB8LocalWorkloadRuns(t *testing.T) {
	cfg := twoNodeConfig(lb8Users(1), 4, 7)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	b := res.Nodes[1]
	if b.TotalTxnThroughput <= 0 {
		t.Fatal("no transactions committed")
	}
	if b.TxnThroughput[DRO] != 0 || b.TxnThroughput[DU] != 0 {
		t.Fatal("LB8 must not run distributed transactions")
	}
	// Node 0 hosts no users: it must stay idle.
	if res.Nodes[0].TotalTxnThroughput != 0 || res.Nodes[0].CPUUtilization > 0.001 {
		t.Fatalf("node 0 should be idle: %+v", res.Nodes[0])
	}
	// All committed work is accounted: record throughput = txn throughput * n * 4.
	wantRecs := b.TotalTxnThroughput * 4 * 4
	if math.Abs(b.RecordThroughput-wantRecs) > 0.02*wantRecs {
		t.Fatalf("record throughput %v, want ~%v", b.RecordThroughput, wantRecs)
	}
	// Sanity: with the shared DB/log disk the disk is the bottleneck.
	if b.DBDiskUtilization < 0.5 {
		t.Fatalf("disk utilization %v suspiciously low for 8 users", b.DBDiskUtilization)
	}
	if b.CPUUtilization <= 0 || b.CPUUtilization >= 1 {
		t.Fatalf("cpu utilization %v out of range", b.CPUUtilization)
	}
}

func TestMB4DistributedWorkloadRuns(t *testing.T) {
	cfg := twoNodeConfig(mb4Users(), 8, 11)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	for i, nr := range res.Nodes {
		if nr.TotalTxnThroughput <= 0 {
			t.Fatalf("node %d: no throughput", i)
		}
		for _, k := range []TxnKind{LRO, LU, DRO, DU} {
			if nr.TxnThroughput[k] <= 0 {
				t.Fatalf("node %d: no %v commits", i, k)
			}
		}
		if nr.Messages == 0 {
			t.Fatalf("node %d: no messages counted", i)
		}
	}
	// Node A (faster disk) must outperform node B.
	if res.Nodes[0].TotalTxnThroughput <= res.Nodes[1].TotalTxnThroughput {
		t.Fatalf("node A (%v) should beat node B (%v)",
			res.Nodes[0].TotalTxnThroughput, res.Nodes[1].TotalTxnThroughput)
	}
	// LRO should commit at roughly twice the LU rate (1 vs 3 I/Os per record).
	a := res.Nodes[0]
	if a.TxnThroughput[LRO] <= a.TxnThroughput[LU] {
		t.Fatalf("LRO (%v) should beat LU (%v)", a.TxnThroughput[LRO], a.TxnThroughput[LU])
	}
}

func TestDeadlocksAppearAtLargeN(t *testing.T) {
	cfg := twoNodeConfig(mb4Users(), 16, 3)
	// A small database makes conflicts frequent.
	cfg.Layout = storage.Layout{Granules: 300, RecordsPerGran: 6}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	var deadlocks, commits int64
	for _, nr := range res.Nodes {
		deadlocks += nr.LocalDeadlocks + nr.GlobalDeadlocks
		for _, k := range []TxnKind{LRO, LU, DRO, DU} {
			commits += nr.Commits[k]
		}
	}
	if commits == 0 {
		t.Fatal("no commits despite contention — livelock?")
	}
	if deadlocks == 0 {
		t.Fatal("expected deadlocks on a 300-granule database at n=16")
	}
	// Resubmissions: submissions must exceed commits when deadlocks occur.
	var subs int64
	for _, nr := range res.Nodes {
		for _, k := range []TxnKind{LRO, LU, DRO, DU} {
			subs += nr.Submissions[k]
		}
	}
	if subs <= commits {
		t.Fatalf("submissions (%d) must exceed commits (%d) under deadlocks", subs, commits)
	}
}

func TestThroughputFallsWithN(t *testing.T) {
	// The paper's central qualitative result: normalized record throughput
	// decreases as n grows beyond ~8 due to deadlock rollback.
	recTp := func(n int) float64 {
		cfg := twoNodeConfig(lb8Users(1), n, 5)
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run()
		return res.Nodes[1].RecordThroughput
	}
	at8, at20 := recTp(8), recTp(20)
	if at20 >= at8 {
		t.Fatalf("record throughput must fall from n=8 (%v) to n=20 (%v)", at8, at20)
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() Results {
		cfg := twoNodeConfig(mb4Users(), 8, 99)
		cfg.Duration = 300_000
		cfg.Warmup = 30_000
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	a, b := run(), run()
	for i := range a.Nodes {
		if a.Nodes[i].TotalTxnThroughput != b.Nodes[i].TotalTxnThroughput {
			t.Fatalf("node %d throughput differs across identical runs: %v vs %v",
				i, a.Nodes[i].TotalTxnThroughput, b.Nodes[i].TotalTxnThroughput)
		}
		if a.Nodes[i].CPUUtilization != b.Nodes[i].CPUUtilization {
			t.Fatalf("node %d CPU differs across identical runs", i)
		}
	}
}

func TestSeparateLogDiskIncreasesThroughput(t *testing.T) {
	base := twoNodeConfig(lb8Users(0), 8, 21)
	shared, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	sharedRes := shared.Run()

	sep := twoNodeConfig(lb8Users(0), 8, 21)
	sep.Nodes[0].LogDisk = disk.ProfileRM05()
	sepSys, err := New(sep)
	if err != nil {
		t.Fatal(err)
	}
	sepRes := sepSys.Run()

	if sepRes.Nodes[0].TotalTxnThroughput <= sharedRes.Nodes[0].TotalTxnThroughput {
		t.Fatalf("separate log disk (%v tps) should beat shared (%v tps)",
			sepRes.Nodes[0].TotalTxnThroughput, sharedRes.Nodes[0].TotalTxnThroughput)
	}
}

func TestBufferPoolReducesDiskLoad(t *testing.T) {
	base := twoNodeConfig(lb8Users(0), 8, 31)
	noBuf, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	noBufRes := noBuf.Run()

	buf := twoNodeConfig(lb8Users(0), 8, 31)
	buf.BufferHitRatio = 0.8
	bufSys, err := New(buf)
	if err != nil {
		t.Fatal(err)
	}
	bufRes := bufSys.Run()

	if bufRes.Nodes[0].TotalTxnThroughput <= noBufRes.Nodes[0].TotalTxnThroughput {
		t.Fatalf("80%% buffer hits (%v tps) should beat none (%v tps)",
			bufRes.Nodes[0].TotalTxnThroughput, noBufRes.Nodes[0].TotalTxnThroughput)
	}
}

func TestMeanResponseAndLittlesLaw(t *testing.T) {
	// With zero think time, each user always has exactly one transaction in
	// flight: N = X * R per user class (Little's law over users).
	cfg := twoNodeConfig(lb8Users(0), 8, 41)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	a := res.Nodes[0]
	for _, k := range []TxnKind{LRO, LU} {
		x := a.TxnThroughput[k] / 1000 // per ms
		r := a.MeanResponse[k]
		users := 4.0
		if got := x * r; math.Abs(got-users) > 0.25*users {
			t.Fatalf("%v: X*R = %v, want ~%v users (Little's law)", k, got, users)
		}
	}
}

func TestGlobalDeadlockDetection(t *testing.T) {
	// Only DU users on a tiny database: global (cross-site) deadlocks are
	// the dominant cycle type. The probe machinery must fire.
	users := []UserSpec{
		{Kind: DU, Home: 0, Remote: 1}, {Kind: DU, Home: 0, Remote: 1},
		{Kind: DU, Home: 1, Remote: 0}, {Kind: DU, Home: 1, Remote: 0},
	}
	cfg := twoNodeConfig(users, 12, 17)
	cfg.Layout = storage.Layout{Granules: 40, RecordsPerGran: 6}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	var global, commits int64
	for _, nr := range res.Nodes {
		global += nr.GlobalDeadlocks
		commits += nr.Commits[DU]
	}
	if commits == 0 {
		t.Fatal("no commits — global deadlocks not resolved?")
	}
	if global == 0 {
		t.Fatal("no global deadlocks detected on a 40-granule database")
	}
}

func TestNoStuckTransactionsAtEnd(t *testing.T) {
	// After a long run every user is still making progress: the number of
	// live processes equals users plus any in-flight 2PC helpers, and no
	// node's lock table retains locks from finished transactions.
	cfg := twoNodeConfig(mb4Users(), 12, 53)
	cfg.Layout = storage.Layout{Granules: 200, RecordsPerGran: 6}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	for i, nr := range res.Nodes {
		if nr.TotalTxnThroughput <= 0 {
			t.Fatalf("node %d stalled", i)
		}
	}
	// Registry holds only in-flight transactions (at most one per user
	// since users run sequentially).
	if len(sys.reg) > len(cfg.Users) {
		t.Fatalf("registry leaked: %d entries for %d users", len(sys.reg), len(cfg.Users))
	}
}

func TestDMPoolLimitsConcurrency(t *testing.T) {
	// With only two DM servers for eight users, transactions queue for a
	// DM before doing any work: throughput must fall versus a full pool.
	full := twoNodeConfig(lb8Users(0), 8, 71)
	fullSys, err := New(full)
	if err != nil {
		t.Fatal(err)
	}
	fullRes := fullSys.Run()

	tight := twoNodeConfig(lb8Users(0), 8, 71)
	tight.Nodes[0].DMServers = 2
	tightSys, err := New(tight)
	if err != nil {
		t.Fatal(err)
	}
	tightRes := tightSys.Run()

	if tightRes.Nodes[0].TotalTxnThroughput >= fullRes.Nodes[0].TotalTxnThroughput {
		t.Fatalf("2 DM servers (%v tps) should throttle vs 16 (%v tps)",
			tightRes.Nodes[0].TotalTxnThroughput, fullRes.Nodes[0].TotalTxnThroughput)
	}
	if tightRes.Nodes[0].TotalTxnThroughput <= 0 {
		t.Fatal("tight pool deadlocked entirely")
	}
}

func TestMultiCPUSimulator(t *testing.T) {
	// CPU-bound regime (buffer pool + separate log): a second processor
	// raises throughput.
	single := twoNodeConfig(lb8Users(0), 8, 73)
	single.BufferHitRatio = 0.9
	single.Nodes[0].LogDisk = disk.ProfileRM05()
	s1, err := New(single)
	if err != nil {
		t.Fatal(err)
	}
	r1 := s1.Run()

	dual := twoNodeConfig(lb8Users(0), 8, 73)
	dual.BufferHitRatio = 0.9
	dual.Nodes[0].LogDisk = disk.ProfileRM05()
	dual.Nodes[0].CPUs = 2
	s2, err := New(dual)
	if err != nil {
		t.Fatal(err)
	}
	r2 := s2.Run()

	if r2.Nodes[0].TotalTxnThroughput <= r1.Nodes[0].TotalTxnThroughput {
		t.Fatalf("second CPU should help when CPU-bound: %v vs %v",
			r2.Nodes[0].TotalTxnThroughput, r1.Nodes[0].TotalTxnThroughput)
	}
}

func TestThinkTimeReducesUtilization(t *testing.T) {
	busy := twoNodeConfig(lb8Users(0), 4, 61)
	busySys, err := New(busy)
	if err != nil {
		t.Fatal(err)
	}
	busyRes := busySys.Run()

	idle := twoNodeConfig(lb8Users(0), 4, 61)
	idle.Params = DefaultParams(2)
	for n := range idle.Params.Costs {
		for k, c := range idle.Params.Costs[n] {
			c.ThinkTime = 2000 // 2 s of thinking between transactions
			idle.Params.Costs[n][k] = c
		}
	}
	idleSys, err := New(idle)
	if err != nil {
		t.Fatal(err)
	}
	idleRes := idleSys.Run()

	if idleRes.Nodes[0].CPUUtilization >= busyRes.Nodes[0].CPUUtilization {
		t.Fatalf("think time should reduce CPU utilization: %v vs %v",
			idleRes.Nodes[0].CPUUtilization, busyRes.Nodes[0].CPUUtilization)
	}
}
