package testbed

import (
	"fmt"

	"carat/internal/cc"
	"carat/internal/disk"
	"carat/internal/lock"
	"carat/internal/placement"
	"carat/internal/probe"
	"carat/internal/rng"
	"carat/internal/sim"
	"carat/internal/storage"
)

// user is one TR application process: it submits transactions of one kind
// sequentially, in a closed loop with optional think time, resubmitting
// after deadlock aborts until each transaction commits (Figure 3).
type user struct {
	sys  *System
	spec UserSpec
	id   int
	rnd  *rng.Rand
	// backoffRnd is the dedicated retry-jitter stream; kept separate from
	// rnd so a backoff policy never shifts the workload's draws.
	backoffRnd *rng.Rand
	// curTS is the prevention timestamp of the current user transaction:
	// the gid of its first submission, kept across deadlock restarts so
	// wait-die and wound-wait make progress.
	curTS int64
	// lastAbort and lastGid record the cause and gid of the most recent
	// aborted submission, for the retry loop's per-cause accounting.
	lastAbort error
	lastGid   int64
	// holdsSlot is true while this user holds an admission slot at its home
	// site.
	holdsSlot bool
	// Per-submission scratch buffers (a user runs one attempt at a time),
	// reused so the request path stays allocation-free in steady state.
	recsBuf  []int
	gransBuf []int
	schedBuf []int
	permBuf  []int
	shufBuf  []int
	// Placement scratch: anchorBuf holds the one-record anchor draw that
	// picks a request's executing site; remBuf the submission's distinct
	// remote sites in first-touch order (placement runs only).
	anchorBuf []int
	remBuf    []*node
	// QueCC planning scratch: planBuf holds the pre-drawn granules of each
	// request (schedule order); ccSkipBuf marks the remotes whose granules
	// this submission serves at replicas instead (read failover, decided at
	// plan time so the claim plan and the execution agree).
	planBuf   [][]int
	ccSkipBuf []bool
	// Open-class overrides (see OpenClass): zero values inherit the
	// Config-wide transaction size, remote fraction and access pattern.
	// Closed users always leave them zero.
	classReq int
	classRF  float64
	classPat storage.Pattern
}

// attemptOutcome is what one submission attempt came to.
type attemptOutcome int

const (
	// attemptAborted: the submission began and was aborted (and rolled
	// back); it counts against the retry budget.
	attemptAborted attemptOutcome = iota
	// attemptCommitted: the submission committed.
	attemptCommitted
	// attemptBlockedDown: a participant site was down before the
	// submission could begin; nothing was executed, so it does not count
	// against the retry budget.
	attemptBlockedDown
)

// run is the TR process body: an endless submit-commit loop. The
// simulation clock bound ends it.
func (u *user) run(p *sim.Proc) {
	home := u.sys.nodes[u.spec.Home]
	costs := u.sys.cfg.Params.CostsFor(home.id, u.spec.Kind)
	for {
		if costs.ThinkTime > 0 {
			p.Hold(costs.ThinkTime)
		}
		u.execOne(p)
	}
}

// execOne drives one user transaction from first submission to commit,
// looping through aborts under the configured retry policy: each aborted
// submission counts against the retry budget, waits out the exponential
// backoff, and — once the budget is exhausted — the transaction is
// abandoned instead of resubmitted. With the zero policy the loop is the
// paper's behavior: retry immediately, forever. Response time (including
// aborts and inter-submission think times, the paper's R) is recorded at
// the home node only for transactions that commit.
func (u *user) execOne(p *sim.Proc) {
	home := u.sys.nodes[u.spec.Home]
	costs := u.sys.cfg.Params.CostsFor(home.id, u.spec.Kind)
	retry := &u.sys.cfg.Resilience.Retry
	if u.sys.faults != nil {
		u.awaitFaults(p)
	}
	start := p.Now()
	u.curTS = 0
	attempts := 0
	committed := false
	for {
		u.admit(p, home)
		outcome := u.attempt(p)
		u.releaseAdmission(home)
		if outcome == attemptCommitted {
			committed = true
			break
		}
		if outcome == attemptAborted {
			attempts++
			cause := abortCauseOf(u.lastAbort)
			if retry.MaxAttempts > 0 && attempts >= retry.MaxAttempts {
				home.abandoned[cause].Inc()
				u.sys.trace(u.lastGid, u.spec.Kind, home.id, EvAbandon, -1)
				break
			}
			home.retried[cause].Inc()
		}
		if costs.ThinkTime > 0 {
			p.Hold(costs.ThinkTime)
		}
		if outcome == attemptAborted {
			if b := u.retryBackoff(attempts); b > 0 {
				u.sys.trace(u.lastGid, u.spec.Kind, home.id, EvRetryBackoff, -1)
				p.Hold(b)
			}
		}
		if u.sys.faults != nil {
			u.awaitFaults(p)
		}
	}
	if !committed {
		return
	}
	home.respTime[u.spec.Kind].Add(p.Now() - start)
	home.respHist[u.spec.Kind].Add(p.Now() - start)
	home.recordCommit(u.spec.Kind, p.Now())
	home.recordsDone[u.spec.Kind].Addn(int64(u.reqsPerTxn() * u.sys.cfg.RecordsPerRequest))
}

// attempt executes one submission of the transaction and reports how it
// ended: committed, aborted (and rolled back), or blocked before it began
// by a down participant site.
func (u *user) attempt(p *sim.Proc) attemptOutcome {
	sys := u.sys
	if sys.ccSlots != nil {
		// Deterministic execution admits one submission per execution slot
		// (see System.ccSlots). Acquired before the pre-submission checks so
		// that the check, the gid draw and the plan still share one kernel
		// step once the slot is granted.
		mustAcquire(sys.ccSlots, p)
		defer func() {
			if !sys.env.Terminated() {
				sys.ccSlots.Release()
			}
		}()
	}
	cfg := &sys.cfg
	kind := u.spec.Kind
	home := sys.nodes[u.spec.Home]
	var remotes []*node
	var schedule []int
	if sys.placement != nil && kind.Distributed() {
		// Directory-driven routing: the request schedule and the distinct
		// remote sites it touches are resolved through the data directory,
		// replacing the hand-wired RemoteSites list. Drawn before the
		// participant checks because the fault layer needs the remote set.
		schedule, remotes = u.placementSchedule()
	} else {
		for _, r := range u.spec.RemoteSites() {
			remotes = append(remotes, sys.nodes[r])
		}
	}
	costs := cfg.Params.CostsFor(home.id, kind)

	if sys.faults != nil {
		// A submission against a down site fails immediately; the user
		// backs off in execOne and resubmits after the outage.
		if home.down {
			return attemptBlockedDown
		}
		for _, r := range remotes {
			// Reads of replicated granules need not wait out a slave outage:
			// they fail over to surviving replicas below.
			if r.down && !sys.replReadFailover(home.id, kind) {
				return attemptBlockedDown
			}
			if (!sys.reachable(home.id, r.id) || sys.suspected(home.id, r.id)) &&
				!sys.replReadFailover(home.id, kind) {
				// The slave is partitioned away — or the failure detector
				// suspects it — and no failover path exists: shed the
				// submission before it begins rather than let it time out
				// mid-protocol.
				home.partitionShed.Inc()
				return attemptBlockedDown
			}
		}
	}

	gid := sys.nextTxnID()
	st := &txnState{gid: gid, kind: kind, home: home.id, activeNode: home.id, proc: p}
	if sys.faults != nil {
		st.parts = append(st.parts, home.id)
		for _, r := range remotes {
			st.parts = append(st.parts, r.id)
		}
	}
	sys.reg[gid] = st
	defer func() {
		if sys.env.Terminated() {
			// Shutdown is unwinding this process: the run ended with the
			// transaction in flight. Leave it registered so CrashRecover
			// sees the same frozen state a real crash would.
			return
		}
		st.finished = true
		delete(sys.reg, gid)
	}()
	home.submissions[kind].Inc()
	sys.trace(gid, kind, home.id, EvBegin, -1)
	if u.curTS == 0 {
		u.curTS = gid
	}
	// Open the concurrency-control state at every participant. Begin is a
	// no-op under 2PL with detection, registers the prevention timestamp
	// under wait-die/wound-wait, and opens the validation window under OCC.
	// A remote the pre-submission check only let through because read
	// failover covers it (down, unreachable or suspected — ccSkip) takes no
	// part in the submission, so no state is opened there; no simulation
	// time has passed since that check, so the conditions still hold.
	ccSkip := u.ccSkipBuf[:0]
	for range remotes {
		ccSkip = append(ccSkip, false)
	}
	u.ccSkipBuf = ccSkip
	home.ccp.Begin(cc.TxnID(gid), u.curTS)
	for i, remote := range remotes {
		if sys.faults != nil && (remote.down || !sys.reachable(home.id, remote.id) ||
			sys.suspected(home.id, remote.id)) {
			ccSkip[i] = true
			continue
		}
		remote.ccp.Begin(cc.TxnID(gid), u.curTS)
	}
	var plan [][]int
	if sys.ccCaps.Deterministic {
		// QueCC plans the whole submission now, in the same kernel step as
		// the gid draw: every queue receives its claims in global gid order,
		// so the "grant iff no conflicting older claim ahead" admission rule
		// can never form a wait cycle — no deadlocks by construction.
		schedule, plan = u.planQueCC(st, home, remotes, ccSkip, schedule)
	}

	// --- INIT phase: TBEGIN and DBOPEN processing; DM allocation. ---
	// Read failover is decided here, once per remote for the whole
	// submission: a remote down at INIT never joins dmHeld, so every one of
	// its requests must be served at replicas even if it restarts
	// mid-submission — taking native locks at a site outside the commit
	// protocol would leak them.
	dmHeld := []*node{home}
	foRemote := make([]bool, len(remotes))
	mustAcquire(home.dmPool, p)
	mustUse(home, p, func() error { return home.tmStep(p, costs.InitCPU) })
	for i, remote := range remotes {
		if sys.ccCaps.Deterministic && ccSkip[i] {
			// The failover decision was made at plan time (no claims were
			// planted at this site); it is binding even if the site has
			// recovered since, so the execution matches the plan.
			foRemote[i] = true
			continue
		}
		if (remote.down || !sys.reachable(home.id, remote.id) || sys.suspected(home.id, remote.id)) &&
			sys.replReadFailover(home.id, kind) {
			// Failed-over read: the down (or unreachable, or suspected) site
			// takes no part in this submission; its granules are served at
			// surviving replicas.
			foRemote[i] = true
			u.dropSkippedCC(st, remote)
			continue
		}
		if !sys.reachable(home.id, remote.id) {
			// Partitioned away since the pre-submission check and no
			// failover path: the INIT message cannot be delivered. The doom
			// is noticed at the next phase boundary, like a crash.
			if st.cause == nil {
				st.cause = errPartitioned
			}
			st.doomed = true
			u.dropSkippedCC(st, remote)
			continue
		}
		rcosts := cfg.Params.CostsFor(remote.id, kind)
		p.Hold(sys.hop(home.id, remote.id, controlMsgBytes))
		mustUse(remote, p, func() error { return remote.tmStep(p, rcosts.TMCPU) })
		mustAcquire(remote.dmPool, p)
		dmHeld = append(dmHeld, remote)
		p.Hold(sys.hop(remote.id, home.id, controlMsgBytes))
	}
	if sys.repl != nil {
		st.protoHeld = dmHeld
	}
	releaseDMs := func() {
		for _, nd := range dmHeld {
			nd.dmPool.Release()
		}
	}

	// --- Request sequence: n requests, a shuffled mix of local and remote.
	// Under QueCC the schedule (and every request's granules) was already
	// drawn at planning time; everywhere else it is drawn here. ---
	if schedule == nil {
		schedule = u.requestSchedule(len(remotes))
	}
	aborted := false
	for ri, dest := range schedule {
		// U phase: the user application prepares the request.
		st.activeNode = home.id
		mustUse(home, p, func() error { return home.cpuUse(p, costs.UCPU) })
		// TM phase: the coordinator TM routes the TDO.
		mustUse(home, p, func() error { return home.tmStep(p, costs.TMCPU) })

		exec := home
		failover := false
		if dest >= 0 {
			exec = remotes[dest]
			if foRemote[dest] {
				// The slave was down at INIT: skip its TM entirely and let
				// dmRequest serve the granules at surviving replicas.
				failover = true
			} else if !sys.reachable(home.id, exec.id) {
				// Partitioned away mid-submission: the REMDO cannot be
				// delivered.
				if st.cause == nil {
					st.cause = errPartitioned
				}
				st.doomed = true
				aborted = true
				break
			} else {
				rcosts := cfg.Params.CostsFor(exec.id, kind)
				p.Hold(sys.hop(home.id, exec.id, requestMsgBytes))
				// Slave TM receives the REMDO and forwards to the slave DM.
				mustUse(exec, p, func() error { return exec.tmStep(p, rcosts.TMCPU) })
			}
		}

		var planned []int
		if plan != nil {
			planned = plan[ri]
		}
		if err := u.dmRequest(p, st, exec, failover, planned); err != nil {
			aborted = true
		}

		if !aborted && dest >= 0 && !failover {
			rcosts := cfg.Params.CostsFor(exec.id, kind)
			// Slave TM routes the response back to the coordinator.
			mustUse(exec, p, func() error { return exec.tmStep(p, rcosts.TMCPU) })
			p.Hold(sys.hop(exec.id, home.id, responseMsgBytes))
		}
		if !aborted {
			st.activeNode = home.id
			// Coordinator TM processes the DOSTEP_K / REMDO_K.
			mustUse(home, p, func() error { return home.tmStep(p, costs.TMCPU) })
		}
		if st.doomed {
			aborted = true
		}
		if aborted {
			break
		}
	}

	if !aborted {
		// --- Commit: TEND through the TM, then validation (OCC only) and
		// the commit protocol. ---
		st.committing = true
		mustUse(home, p, func() error { return home.tmStep(p, costs.TMCPU) })
		committed := false
		// Two-phase commit coordinates the slaves actually holding work —
		// under read failover a down remote never joined dmHeld.
		if !sys.ccCaps.ValidatesAtCommit || u.ccValidate(st, dmHeld) {
			if len(dmHeld) == 1 {
				committed = u.commitLocal(p, st, home, costs)
			} else {
				committed = u.twoPhaseCommit(p, st, home, dmHeld[1:])
			}
		}
		if committed {
			u.releaseReplicaReads(p, st)
			sys.trace(gid, kind, home.id, EvCommitted, -1)
			releaseDMs()
			return attemptCommitted
		}
		aborted = true
	}

	u.noteAbort(home, st)
	u.rollback(p, st, dmHeld)
	u.releaseReplicaReads(p, st)
	sys.trace(gid, kind, home.id, EvAborted, -1)
	releaseDMs()
	return attemptAborted
}

// noteAbort attributes an abort to a crash or a timeout for the
// availability accounting (deadlock aborts are already counted by the lock
// manager and probe machinery), remembers the cause and gid for the retry
// loop, and feeds the admission gate's abort-rate trigger.
func (u *user) noteAbort(home *node, st *txnState) {
	u.lastAbort = st.cause
	u.lastGid = st.gid
	switch st.cause {
	case errSiteCrash:
		home.crashAborts.Inc()
	case errPartitioned:
		home.partitionAborts.Inc()
	case errLockTimeout, errPrepareTimeout:
		home.timeoutAborts.Inc()
	}
	home.noteAbortRate(u.sys.env.Now())
}

// requestSchedule returns the destination of each of the n requests: -1
// for local, otherwise an index into the user's remote sites. The remote
// count is round(RemoteFrac * n), spread over the slave sites by
// RemoteSplit; positions are shuffled per submission.
func (u *user) requestSchedule(remotes int) []int {
	n := u.reqsPerTxn()
	schedule := u.schedBuf[:0]
	for i := 0; i < n; i++ {
		schedule = append(schedule, -1)
	}
	u.schedBuf = schedule
	if !u.spec.Kind.Distributed() || remotes == 0 {
		return schedule
	}
	nRemote := int(u.remoteFrac()*float64(n) + 0.5)
	if nRemote > n {
		nRemote = n
	}
	split := RemoteSplit(nRemote, remotes)
	pos := 0
	for site, cnt := range split {
		for i := 0; i < cnt; i++ {
			schedule[pos] = site
			pos++
		}
	}
	u.permBuf = u.rnd.PermAppend(u.permBuf[:0], n)
	shuffled := u.shufBuf[:0]
	for i := 0; i < n; i++ {
		shuffled = append(shuffled, 0)
	}
	for i, j := range u.permBuf {
		shuffled[j] = schedule[i]
	}
	u.shufBuf = shuffled
	return shuffled
}

// placementSchedule draws one submission's request schedule through the
// data directory: every request's executing site comes from an anchor
// record drawn over the fleet's global record space and resolved by the
// directory (the locality strategy first makes the affinity draw, pinning
// the request to the home shard). It returns the schedule (-1 = home,
// otherwise an index into the returned remotes) and the distinct remote
// sites in first-touch order.
func (u *user) placementSchedule() ([]int, []*node) {
	sys := u.sys
	pl := sys.placement
	home := u.spec.Home
	n := u.reqsPerTxn()
	schedule := u.schedBuf[:0]
	remotes := u.remBuf[:0]
	for i := 0; i < n; i++ {
		site := u.drawSite(pl, home)
		if site == home {
			schedule = append(schedule, -1)
			continue
		}
		idx := -1
		for j, nd := range remotes {
			if nd.id == site {
				idx = j
				break
			}
		}
		if idx < 0 {
			remotes = append(remotes, sys.nodes[site])
			idx = len(remotes) - 1
		}
		schedule = append(schedule, idx)
	}
	u.schedBuf = schedule
	u.remBuf = remotes
	return schedule, remotes
}

// drawSite picks the executing site of one request. Under the locality
// strategy an affinity draw first keeps the request in the home shard;
// otherwise (and always under hash and range) a single anchor record drawn
// over the global record space names the granule whose directory entry is
// the executing site — so a skewed anchor pattern concentrates load on the
// sites owning the hot granules under range placement and stripes it under
// hash placement.
func (u *user) drawSite(pl *placementState, home NodeID) NodeID {
	if pl.dir.Strategy() == placement.Locality && u.rnd.Bool(pl.affinity) {
		return home
	}
	var rec int
	if ap, ok := pl.pat.(storage.AppendPattern); ok {
		u.anchorBuf = ap.PickAppend(u.anchorBuf[:0], u.rnd, pl.global, 1)
		rec = u.anchorBuf[0]
	} else {
		rec = pl.pat.Pick(u.rnd, pl.global, 1)[0]
	}
	return NodeID(pl.dir.Site(pl.global.GranuleOf(rec)))
}

// pickRecords draws the records for one request into the user's scratch
// buffer, using the pattern's allocation-free path when it has one.
func (u *user) pickRecords(l storage.Layout, k int) []int {
	pat := u.pattern()
	if ap, ok := pat.(storage.AppendPattern); ok {
		u.recsBuf = ap.PickAppend(u.recsBuf[:0], u.rnd, l, k)
	} else {
		u.recsBuf = append(u.recsBuf[:0], pat.Pick(u.rnd, l, k)...)
	}
	return u.recsBuf
}

// planQueCC builds the submission's deterministic execution plan in the
// same kernel step as the gid draw: the full request schedule and every
// request's granules are drawn now, and each granule is registered as a
// priority-queue claim at its executing site. Registration order therefore
// equals gid order at every site, which keeps the per-granule queues
// acyclic — a claim only ever waits on strictly older claims, so waits
// can never cycle. Remotes flagged in skip serve their granules at
// replicas (read failover), so no claims are planted there. A non-nil
// schedule (directory-driven placement) is planned as given; nil draws the
// classic RemoteFrac schedule here.
func (u *user) planQueCC(st *txnState, home *node, remotes []*node, skip []bool, schedule []int) ([]int, [][]int) {
	cfg := &u.sys.cfg
	write := u.spec.Kind.Update()
	if schedule == nil {
		schedule = u.requestSchedule(len(remotes))
	}
	if cap(u.planBuf) < len(schedule) {
		grown := make([][]int, len(schedule))
		copy(grown, u.planBuf[:cap(u.planBuf)])
		u.planBuf = grown
	}
	plan := u.planBuf[:len(schedule)]
	for ri, dest := range schedule {
		recs := u.pickRecords(cfg.Layout, cfg.RecordsPerRequest)
		plan[ri] = storage.GranulesOfAppend(plan[ri][:0], cfg.Layout, recs)
		if dest >= 0 && skip[dest] {
			continue
		}
		nd := home
		if dest >= 0 {
			nd = remotes[dest]
		}
		for _, g := range plan[ri] {
			nd.qcc.Plan(cc.TxnID(st.gid), cc.GranuleID(g), write)
		}
	}
	return schedule, plan
}

// dropSkippedCC clears the concurrency-control state opened at Begin (and,
// under QueCC, the planned queue claims) at a remote skipped for the rest
// of this submission. A crashed site lost the state with its volatile
// memory; an unreachable site cleans up cooperatively when the partition
// heals; a reachable-but-suspected site drops it now. The 2PL/TO engines
// keep the original do-nothing behavior: their per-transaction Begin state
// is inert, and those paths are byte-pinned.
func (u *user) dropSkippedCC(st *txnState, nd *node) {
	sys := u.sys
	if !sys.ccCaps.Deterministic && !sys.ccCaps.ValidatesAtCommit {
		return
	}
	if nd.down {
		return
	}
	if !sys.reachable(st.home, nd.id) {
		sys.queueTermination(nd.id, st.gid, true)
		return
	}
	nd.ccp.Finish(cc.TxnID(st.gid))
}

// ccValidate runs OCC backward validation at every participant, home
// first. Success at a site atomically publishes its write set; a conflict
// at any site dooms the transaction under CauseValidation and the normal
// rollback path undoes its writes. (Sites validated before the failing one
// keep their published entries — a conservative over-approximation that
// can only add spurious conflicts, never miss real ones.)
func (u *user) ccValidate(st *txnState, participants []*node) bool {
	sys := u.sys
	for _, nd := range participants {
		if nd.down {
			// The site's validation state died with it; the commit protocol
			// below aborts the transaction for the crash.
			continue
		}
		if !nd.ccp.Validate(cc.TxnID(st.gid)) {
			nd.validationFails.Inc()
			sys.trace(st.gid, u.spec.Kind, nd.id, EvValidationAbort, -1)
			if st.cause == nil {
				st.cause = errValidation
			}
			return false
		}
	}
	return true
}

// dmRequest executes one database request at node nd: the DM/LR/DMIO phase
// loop over the request's granules, acquiring locks and performing block
// I/O. With failover set (replicated read against a down site) the granules
// are served at surviving replicas instead. planned is the request's
// pre-drawn granules under QueCC (nil everywhere else: the draw happens
// here). It returns errDeadlockVictim if the transaction must abort.
func (u *user) dmRequest(p *sim.Proc, st *txnState, nd *node, failover bool, planned []int) error {
	sys := u.sys
	cfg := &sys.cfg
	kind := u.spec.Kind
	costs := cfg.Params.CostsFor(nd.id, kind)
	st.activeNode = nd.id
	if sys.faults != nil && !failover && (nd.down || !sys.reachable(st.home, nd.id)) {
		if st.cause == nil {
			st.cause = errSiteCrash
			if !nd.down {
				st.cause = errPartitioned
			}
		}
		st.doomed = true
		return st.cause
	}

	grans := planned
	if grans == nil {
		recs := u.pickRecords(cfg.Layout, cfg.RecordsPerRequest)
		u.gransBuf = storage.GranulesOfAppend(u.gransBuf[:0], cfg.Layout, recs)
		grans = u.gransBuf
	}

	if failover {
		return u.failoverRead(p, st, nd, grans)
	}

	mode := lock.Shared
	if kind.Update() {
		mode = lock.Exclusive
	}

	// DM phase: processing before the first lock request.
	mustUse(nd, p, func() error { return nd.cpuUse(p, costs.DMCPU) })

	for _, g := range grans {
		// LR phase: concurrency-control request processing (lock request
		// with local deadlock detection under 2PL, timestamp check under
		// TO); its CPU cost is LRCPU, per the paper.
		mustUse(nd, p, func() error { return nd.cpuUse(p, costs.LRCPU) })
		if err := u.ccAccess(p, st, nd, g, mode); err != nil {
			return err
		}
		if st.doomed {
			return errDeadlockVictim
		}

		// DMIO phase: the block I/O burst for this granule.
		mustUse(nd, p, func() error { return nd.cpuUse(p, costs.DMIOCPU) })
		if err := u.granuleIO(p, st, nd, g, kind); err != nil {
			return err
		}
		if sys.replQuorum(mode) {
			if err := u.quorumRead(p, st, nd, nd.id, g); err != nil {
				return err
			}
		}

		// DM phase: processing between lock requests.
		mustUse(nd, p, func() error { return nd.cpuUse(p, costs.DMCPU) })
		if st.doomed {
			return errDeadlockVictim
		}
	}
	return nil
}

// ccAccess admits one granule access through the site's cc.Protocol
// engine: a lock request under the 2PL family (with detection or
// prevention per the lock manager's discipline), a timestamp check under
// basic TO, read/write-set tracking under OCC, or a queue-claim admission
// check under QueCC. It returns errDeadlockVictim when the protocol
// restarts the requester.
func (u *user) ccAccess(p *sim.Proc, st *txnState, nd *node, g int, mode lock.Mode) error {
	sys := u.sys
	kind := u.spec.Kind
	if sys.faults != nil && (nd.down || !sys.reachable(st.home, nd.id)) {
		// The site crashed since the request started (its CC state is
		// gone; never insert state into the fresh engine) — or it was
		// partitioned away from the coordinator mid-request.
		if st.cause == nil {
			st.cause = errSiteCrash
			if !nd.down {
				st.cause = errPartitioned
			}
		}
		st.doomed = true
		return st.cause
	}

	d := nd.ccp.Access(cc.TxnID(st.gid), cc.GranuleID(g), mode == lock.Exclusive)
	for _, v := range d.Victims {
		if sys.ccCaps.Wounds {
			sys.woundTxn(int64(v))
		} else {
			sys.killTxn(int64(v))
		}
	}
	switch d.Outcome {
	case cc.Grant:
		sys.trace(st.gid, kind, nd.id, EvLockGrant, g)
	case cc.Restart:
		nd.deadlocks.Inc()
		sys.trace(st.gid, kind, nd.id, EvDeadlock, g)
		return errDeadlockVictim
	case cc.Block:
		sys.trace(st.gid, kind, nd.id, EvLockWait, g)
		if err := u.lockWait(p, st, nd); err != nil {
			switch err {
			case errLockTimeout:
				sys.trace(st.gid, kind, nd.id, EvTimeoutAbort, g)
			case errSiteCrash:
				// The site's crash event is already in the trace.
			default:
				sys.trace(st.gid, kind, nd.id, EvDeadlock, g)
			}
			return err
		}
		sys.trace(st.gid, kind, nd.id, EvLockGrant, g)
	}
	return nil
}

// lockWait parks the process until the site engine grants the queued
// request, initiating global deadlock probes first — but only where a
// probe detector exists: the detector (and with it all probe traffic) is
// armed solely for paradigms whose waits can form cycles, i.e. 2PL with
// deadlock detection. It returns errDeadlockVictim if the transaction is
// killed while waiting.
func (u *user) lockWait(p *sim.Proc, st *txnState, nd *node) error {
	sys := u.sys
	ev := sim.NewEvent(sys.env, fmt.Sprintf("grant-%d", st.gid))
	nd.grantEv[st.gid] = ev
	st.parked = true
	if f := sys.faults; f != nil && f.plan.LockWaitTimeoutMS > 0 {
		sys.env.After(f.plan.LockWaitTimeoutMS, func() {
			// Stale once the lock was granted, the transaction was doomed
			// some other way, or this submission already ended.
			if ev.Triggered() || st.finished || st.doomed || !st.parked {
				return
			}
			st.doomed = true
			st.cause = errLockTimeout
			st.proc.Interrupt(errLockTimeout)
		})
	}
	if nd.detector != nil {
		sys.sendProbes(nd.id, nd.detector.Initiate(probe.TxnID(st.gid)))
		if rp := sys.cfg.Resilience.ProbeRetryMS; rp > 0 {
			// Periodic re-initiation for as long as this wait lasts: each
			// round carries a fresh probe sequence, so sites along the cycle
			// forward it again even if an earlier round was lost in transit.
			var rearm func()
			rearm = func() {
				if ev.Triggered() || st.finished || st.doomed || !st.parked || nd.down {
					return
				}
				nd.probesResent.Inc()
				sys.trace(st.gid, st.kind, nd.id, EvReprobe, -1)
				sys.sendProbes(nd.id, nd.detector.Reprobe(probe.TxnID(st.gid)))
				sys.env.After(rp, rearm)
			}
			sys.env.After(rp, rearm)
		}
	}

	t0 := p.Now()
	err := ev.Wait(p)
	st.parked = false
	nd.lockWaits.Add(p.Now() - t0)
	if nd.detector != nil {
		nd.detector.ClearTxn(probe.TxnID(st.gid))
	}
	if err != nil {
		delete(nd.grantEv, st.gid)
		if cause, ok := interruptCause(err); ok && (cause == errLockTimeout || cause == errSiteCrash) {
			return cause
		}
		nd.globalDead.Inc()
		return errDeadlockVictim
	}
	return nil
}

// granuleIO performs the disk work for one granule access: one read for
// read-only kinds; read + before-image journal write + in-place write for
// update kinds (the three I/Os behind Table 2's tripled DMIO disk time).
// A configured buffer pool can absorb the read.
func (u *user) granuleIO(p *sim.Proc, st *txnState, nd *node, g int, kind TxnKind) error {
	cfg := &u.sys.cfg
	if u.sys.faults != nil && (nd.down || !u.sys.reachable(st.home, nd.id)) {
		// Never write journal records at a crashed site (restart recovery
		// must see exactly the state the crash froze), and never perform
		// work a partition made undeliverable.
		if st.cause == nil {
			st.cause = errSiteCrash
			if !nd.down {
				st.cause = errPartitioned
			}
		}
		st.doomed = true
		return st.cause
	}
	bufferHit := cfg.BufferHitRatio > 0 && u.rnd.Bool(cfg.BufferHitRatio)
	if !bufferHit {
		mustUse(nd, p, func() error { return nd.dbDiskFor(g).Do(p, disk.Read, g) })
	}
	if kind.Update() {
		nd.journal.LogBeforeImage(st.gid, nd.store, g)
		mustUse(nd, p, func() error { return nd.logDisk.Do(p, disk.LogWrite, g) })
		nd.store.Touch(g)
		mustUse(nd, p, func() error { return nd.dbDiskFor(g).Do(p, disk.Write, g) })
		if u.sys.repl != nil {
			st.noteReplWrite(nd.id, g)
		}
	}
	return nil
}

// rollback undoes a deadlock victim at every participating site: the TA
// (rollback CPU) and TAIO (one database write per before-image) phases,
// then lock release, in participation order with message hops between
// sites for distributed transactions.
func (u *user) rollback(p *sim.Proc, st *txnState, participants []*node) {
	sys := u.sys
	home := participants[0]
	for i, nd := range participants {
		if sys.faults != nil && nd.down {
			// The site lost its volatile state; restart recovery undoes
			// this transaction's updates from the journal instead.
			continue
		}
		if i > 0 && !sys.reachable(home.id, nd.id) {
			// The abort message cannot be delivered: the participant
			// terminates its branch cooperatively at the heal (presumed
			// abort — unless the coordinator's durable commit record says
			// otherwise, which it cannot on this path).
			sys.queueTermination(nd.id, st.gid, false)
			continue
		}
		costs := sys.cfg.Params.CostsFor(nd.id, u.spec.Kind)
		if i > 0 {
			p.Hold(sys.hop(home.id, nd.id, controlMsgBytes))
			mustUse(nd, p, func() error { return nd.tmStep(p, costs.TMCPU) })
		}
		st.activeNode = nd.id
		sys.trace(st.gid, u.spec.Kind, nd.id, EvRollback, -1)
		mustUse(nd, p, func() error { return nd.cpuUse(p, costs.AbortCPU) })
		undo := nd.journal.Rollback(st.gid, nd.store)
		for _, g := range undo {
			g := g
			mustUse(nd, p, func() error { return nd.cpuUse(p, costs.DMIOCPU) })
			mustUse(nd, p, func() error { return nd.dbDiskFor(g).Do(p, disk.Write, g) })
		}
		mustUse(nd, p, func() error { return nd.cpuUse(p, costs.UnlockCPU) })
		nd.releaseTxn(st.gid)
		sys.trace(st.gid, u.spec.Kind, nd.id, EvRelease, -1)
		if nd.detector != nil {
			nd.detector.ClearTxn(probe.TxnID(st.gid))
		}
		if i > 0 {
			p.Hold(sys.hop(nd.id, home.id, controlMsgBytes))
		}
	}
	st.activeNode = home.id
}

// commitLocal commits a local transaction: TC processing, the force-written
// commit record (TCIO), and unlock (UL). It returns false — without writing
// the commit record — if a crash doomed the transaction before the commit
// point.
func (u *user) commitLocal(p *sim.Proc, st *txnState, home *node, costs PhaseCosts) bool {
	if st.doomed || home.down {
		return false
	}
	mustUse(home, p, func() error { return home.cpuUse(p, costs.CommitCPU) })
	for i := 0; i < costs.CommitIOs; i++ {
		mustUse(home, p, func() error { return home.logDisk.Do(p, disk.ForceWrite, 0) })
	}
	if st.doomed || home.down {
		return false
	}
	rec := home.journal.Commit(st.gid)
	home.journal.Force(rec.LSN)
	u.sys.trace(st.gid, u.spec.Kind, home.id, EvForceCommit, -1)
	u.propagateReplicas(p, st)
	mustUse(home, p, func() error { return home.cpuUse(p, costs.UnlockCPU) })
	home.releaseTxn(st.gid)
	u.sys.trace(st.gid, u.spec.Kind, home.id, EvRelease, -1)
	return true
}

// twoPhaseCommit runs the centralized two-phase commit protocol of
// [GRAY79]: PREPARE to every slave (in parallel), a force-written commit
// record at the coordinator, COMMIT to every slave, then local unlock. The
// coordinator's waits for slave acknowledgments are the CW phase.
//
// It returns false — without writing the coordinator commit record, so
// presumed abort applies — if a participant crash or a prepare timeout
// aborts the protocol before the commit point. Once the commit record is
// force-written the transaction commits even if a slave crashes afterwards:
// that slave's prepared branch stays in doubt until its restart recovery
// resolves it against this durable record.
func (u *user) twoPhaseCommit(p *sim.Proc, st *txnState, home *node, slaves []*node) bool {
	sys := u.sys
	kind := u.spec.Kind
	costs := sys.cfg.Params.CostsFor(home.id, kind)

	// TC: coordinator builds and sends PREPARE.
	mustUse(home, p, func() error { return home.cpuUse(p, costs.CommitCPU) })

	// Phase 1: PREPARE processed in parallel at the slaves.
	if err := u.fanOutPrepare(p, st, home, slaves); err != nil {
		if st.cause == nil {
			st.cause = err
		}
		st.doomed = true
		if err == errPrepareTimeout {
			sys.trace(st.gid, kind, home.id, EvTimeoutAbort, -1)
		}
		return false
	}
	if st.doomed || home.down {
		return false
	}

	// The commit point: force-write the commit record at the coordinator.
	for i := 0; i < costs.CommitIOs; i++ {
		mustUse(home, p, func() error { return home.logDisk.Do(p, disk.ForceWrite, 0) })
	}
	if st.doomed || home.down {
		return false
	}
	rec := home.journal.Commit(st.gid)
	home.journal.Force(rec.LSN)
	sys.trace(st.gid, kind, home.id, EvForceCommit, -1)
	u.propagateReplicas(p, st)

	// Phase 2: COMMIT processed in parallel at the slaves; each slave
	// writes its commit record lazily, releases its locks and acks.
	u.fanOutCommit(p, st, home, slaves)

	// UL at the coordinator.
	mustUse(home, p, func() error { return home.cpuUse(p, costs.UnlockCPU) })
	home.releaseTxn(st.gid)
	sys.trace(st.gid, kind, home.id, EvRelease, -1)
	return true
}

// fanOutPrepare runs phase 1 at every slave in parallel helper processes and
// blocks the coordinator until every acknowledgment arrives — the CW delay
// center. It returns non-nil if any slave crashed before acknowledging or
// the plan's prepare timeout expired first.
func (u *user) fanOutPrepare(p *sim.Proc, st *txnState, home *node, slaves []*node) error {
	sys := u.sys
	kind := u.spec.Kind
	env := sys.env
	done := make([]*sim.Event, len(slaves))
	for i, nd := range slaves {
		i, nd := i, nd
		done[i] = sim.NewEvent(env, "prepare")
		env.Spawn(fmt.Sprintf("prepare-%d", nd.id), func(hp *sim.Proc) {
			rcosts := sys.cfg.Params.CostsFor(nd.id, kind)
			hp.Hold(sys.hop(home.id, nd.id, controlMsgBytes))
			if nd.down || st.doomed {
				done[i].Trigger(errSiteCrash)
				return
			}
			if !sys.reachable(home.id, nd.id) {
				// The PREPARE cannot be delivered; the slave never votes.
				done[i].Trigger(errPartitioned)
				return
			}
			mustUse(nd, hp, func() error { return nd.tmStep(hp, rcosts.TMCPU) })
			mustUse(nd, hp, func() error { return nd.cpuUse(hp, rcosts.CommitCPU) })
			if nd.down || st.doomed {
				done[i].Trigger(errSiteCrash)
				return
			}
			if !sys.reachable(home.id, nd.id) {
				// Partitioned away before voting: no prepared record was
				// written, so presumed abort covers the branch; the slave
				// terminates it cooperatively at the heal.
				sys.queueTermination(nd.id, st.gid, false)
				done[i].Trigger(errPartitioned)
				return
			}
			if sys.cfg.Params.SlaveCommitIOs[kind] > 0 {
				// The slave's prepared record: force-written before voting
				// yes, so a crash leaves the branch in doubt rather than
				// presumed aborted.
				nd.journal.Prepare(st.gid)
			}
			for j := 0; j < sys.cfg.Params.SlaveCommitIOs[kind]; j++ {
				mustUse(nd, hp, func() error { return nd.logDisk.Do(hp, disk.ForceWrite, 0) })
			}
			if nd.down {
				done[i].Trigger(errSiteCrash)
				return
			}
			if !sys.reachable(nd.id, home.id) {
				// The vote is durable but the YES ack cannot reach the
				// coordinator: the branch is in doubt. The coordinator
				// aborts (presumed abort), and the slave resolves against
				// the coordinator's durable log at the heal.
				sys.queueTermination(nd.id, st.gid, false)
				done[i].Trigger(errPartitioned)
				return
			}
			sys.trace(st.gid, kind, nd.id, EvPrepareAck, -1)
			hp.Hold(sys.hop(nd.id, home.id, controlMsgBytes))
			done[i].Trigger(nil)
		})
	}

	// An optional timeout bounds the coordinator's wait. armed keeps a
	// firing after the fan-out returned from interrupting whatever the
	// process parks on next.
	armed := false
	if f := sys.faults; f != nil && f.plan.PrepareTimeoutMS > 0 {
		armed = true
		env.After(f.plan.PrepareTimeoutMS, func() {
			if !armed || st.finished {
				return
			}
			p.Interrupt(errPrepareTimeout)
		})
	}
	var prepErr error
	for _, ev := range done {
		for {
			err := ev.Wait(p)
			if err == nil {
				break
			}
			if _, ok := interruptCause(err); ok {
				// The timeout fired; remember it and keep draining the
				// helpers (they always terminate, triggering their events).
				if prepErr == nil {
					prepErr = errPrepareTimeout
				}
				continue
			}
			if prepErr == nil {
				prepErr = err
			}
			break
		}
	}
	armed = false
	return prepErr
}

// fanOutCommit runs phase 2 at every slave in parallel helper processes and
// blocks the coordinator until all complete. The transaction is already
// durably committed: a slave that is down is simply skipped — its prepared
// branch is resolved by restart recovery.
func (u *user) fanOutCommit(p *sim.Proc, st *txnState, home *node, slaves []*node) {
	sys := u.sys
	kind := u.spec.Kind
	env := sys.env
	done := make([]*sim.Event, len(slaves))
	for i, nd := range slaves {
		i, nd := i, nd
		done[i] = sim.NewEvent(env, "commit")
		env.Spawn(fmt.Sprintf("commit-%d", nd.id), func(hp *sim.Proc) {
			rcosts := sys.cfg.Params.CostsFor(nd.id, kind)
			hp.Hold(sys.hop(home.id, nd.id, controlMsgBytes))
			if nd.down {
				done[i].Trigger(nil)
				return
			}
			if !sys.reachable(home.id, nd.id) {
				// The COMMIT cannot be delivered: the slave's prepared
				// branch stays in doubt until it terminates cooperatively at
				// the heal, where the coordinator's durable commit record
				// resolves it to commit.
				sys.queueTermination(nd.id, st.gid, false)
				done[i].Trigger(nil)
				return
			}
			mustUse(nd, hp, func() error { return nd.tmStep(hp, rcosts.TMCPU) })
			if nd.down {
				done[i].Trigger(nil)
				return
			}
			sys.trace(st.gid, kind, nd.id, EvSlaveCommit, -1)
			nd.journal.Commit(st.gid)
			mustUse(nd, hp, func() error { return nd.cpuUse(hp, rcosts.UnlockCPU) })
			nd.releaseTxn(st.gid)
			sys.trace(st.gid, kind, nd.id, EvRelease, -1)
			hp.Hold(sys.hop(nd.id, home.id, controlMsgBytes))
			done[i].Trigger(nil)
		})
	}
	for _, ev := range done {
		if err := ev.Wait(p); err != nil {
			panic("testbed: commit fan-out interrupted: " + err.Error())
		}
	}
}

// mustAcquire obtains a pool server; the wait must never be interrupted
// (transactions are only killed while parked in lock waits).
func mustAcquire(r *sim.Resource, p *sim.Proc) {
	if err := r.Acquire(p); err != nil {
		panic("testbed: unexpected interrupt acquiring " + r.Name() + ": " + err.Error())
	}
}

// mustUse runs a service step that must never be interrupted.
func mustUse(nd *node, _ *sim.Proc, fn func() error) {
	if err := fn(); err != nil {
		panic(fmt.Sprintf("testbed: unexpected interrupt at node %d: %v", nd.id, err))
	}
}
