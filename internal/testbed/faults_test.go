package testbed

import (
	"reflect"
	"testing"

	"carat/internal/wal"
)

// faultTestConfig is the short two-node configuration the fault tests run.
func faultTestConfig(seed uint64) Config {
	cfg := twoNodeConfig(mb4Users(), 8, seed)
	cfg.Warmup = 10_000
	cfg.Duration = 300_000
	return cfg
}

// TestZeroFaultPlanInert pins the inertness guarantee: a present-but-zero
// FaultPlan must leave the simulation byte-identical to one configured
// without it (same RNG draws, same event order, same Results).
func TestZeroFaultPlanInert(t *testing.T) {
	run := func(f *FaultPlan) Results {
		cfg := faultTestConfig(11)
		cfg.Faults = f
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	plain := run(nil)
	zero := run(&FaultPlan{})
	if !reflect.DeepEqual(plain, zero) {
		t.Fatalf("a zero FaultPlan changed the measurement:\nwithout: %+v\nwith:    %+v", plain, zero)
	}
}

// activePlan is a plan exercising every fault mechanism at once.
func activePlan() *FaultPlan {
	return &FaultPlan{
		Seed:              7,
		Crashes:           []SiteCrash{{Site: 1, AtMS: 60_000, DownForMS: 10_000}},
		CrashMTTFMS:       120_000,
		CrashMTTRMS:       4_000,
		MsgLossProb:       0.05,
		MsgExtraDelayProb: 0.1,
		PrepareTimeoutMS:  4_000,
		LockWaitTimeoutMS: 8_000,
	}
}

// TestFaultRunDeterministic pins fault determinism: the same workload seed
// and the same FaultPlan must reproduce bit-identical Results.
func TestFaultRunDeterministic(t *testing.T) {
	run := func() Results {
		cfg := faultTestConfig(23)
		cfg.Faults = activePlan()
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs with the same seed and fault plan diverge:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestCrashRestartAvailability drives one explicit crash/restart cycle and
// checks the availability accounting and the trace events around it.
func TestCrashRestartAvailability(t *testing.T) {
	const crashAt, downFor = 100_000.0, 20_000.0
	cfg := faultTestConfig(5)
	cfg.Faults = &FaultPlan{
		Crashes: []SiteCrash{{Site: 1, AtMS: crashAt, DownForMS: downFor}},
	}
	var crashes, restarts []TraceEvent
	cfg.Trace = func(ev TraceEvent) {
		switch ev.Ev {
		case EvCrash:
			crashes = append(crashes, ev)
		case EvRestart:
			restarts = append(restarts, ev)
		}
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()

	if len(crashes) != 1 || len(restarts) != 1 {
		t.Fatalf("trace saw %d crash and %d restart events, want 1 and 1", len(crashes), len(restarts))
	}
	if c := crashes[0]; c.Node != 1 || c.Txn != -1 || c.T != crashAt {
		t.Fatalf("crash event %+v, want node 1, txn -1, t=%v", c, crashAt)
	}
	if r := restarts[0]; r.Node != 1 || r.T < crashAt+downFor {
		t.Fatalf("restart event %+v, want node 1 no earlier than %v", r, crashAt+downFor)
	}

	nd := res.Nodes[1]
	if nd.Crashes != 1 {
		t.Fatalf("node 1 crashes = %d, want 1", nd.Crashes)
	}
	// Downtime runs from the crash until restart recovery completes, so it
	// is at least the outage and should end well before the run does.
	if nd.DowntimeMS < downFor || nd.DowntimeMS > downFor+60_000 {
		t.Fatalf("node 1 downtime = %v ms, want within [%v, %v]", nd.DowntimeMS, downFor, downFor+60_000)
	}
	if nd.Availability >= 1 || nd.Availability <= 0.5 {
		t.Fatalf("node 1 availability = %v, want in (0.5, 1)", nd.Availability)
	}
	if got := 1 - nd.DowntimeMS/res.Window; !closeTo(nd.Availability, got, 1e-12) {
		t.Fatalf("availability %v inconsistent with downtime (%v)", nd.Availability, got)
	}
	if up := res.Nodes[0]; up.Crashes != 0 || up.DowntimeMS != 0 || up.Availability != 1 {
		t.Fatalf("surviving node 0 reports outage stats: %+v", up)
	}
	if res.DegradedMS < downFor {
		t.Fatalf("system degraded time = %v ms, want >= %v", res.DegradedMS, downFor)
	}
	var crashAborts int64
	for _, n := range res.Nodes {
		crashAborts += n.CrashAborts
	}
	if crashAborts == 0 {
		t.Fatal("no transaction was aborted by the crash; with 8 users in flight at least one must be")
	}
}

// closeTo reports |a-b| <= eps.
func closeTo(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// TestPrepareWindowCrashResolvesInDoubt is the two-phase-commit recovery
// regression test: under a distributed-update-only workload with frequent
// short crashes, some crashes land inside the prepare window, leaving
// force-written Prepared records at the crashed slave. Restart recovery must
// resolve every one of them against the coordinator's durable log — no
// branch may stay in doubt once its site is back up.
func TestPrepareWindowCrashResolvesInDoubt(t *testing.T) {
	users := []UserSpec{
		{Kind: DU, Home: 0, Remote: 1}, {Kind: DU, Home: 0, Remote: 1},
		{Kind: DU, Home: 0, Remote: 1}, {Kind: DU, Home: 0, Remote: 1},
		{Kind: DU, Home: 1, Remote: 0}, {Kind: DU, Home: 1, Remote: 0},
		{Kind: DU, Home: 1, Remote: 0}, {Kind: DU, Home: 1, Remote: 0},
	}
	cfg := twoNodeConfig(users, 8, 31)
	cfg.Warmup = 10_000
	cfg.Duration = 600_000
	cfg.Faults = &FaultPlan{
		CrashMTTFMS:       15_000,
		CrashMTTRMS:       1_000,
		LockWaitTimeoutMS: 10_000,
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()

	var crashes, resolved int64
	for _, n := range res.Nodes {
		crashes += n.Crashes
		resolved += n.InDoubtCommitted + n.InDoubtAborted
	}
	if crashes < 5 {
		t.Fatalf("only %d crashes in the run; the plan should produce many", crashes)
	}
	if resolved == 0 {
		t.Fatal("no crash landed in a 2PC prepare window: the regression test exercised nothing")
	}

	// Every durably Prepared branch at an up site must have a resolution
	// record, unless its transaction was still in flight when the clock
	// stopped (sys.reg keeps exactly those frozen).
	for id, nd := range sys.nodes {
		if nd.down {
			continue
		}
		prepared := map[int64]bool{}
		resolved := map[int64]bool{}
		for _, r := range nd.journal.Records() {
			switch r.Kind {
			case wal.Prepared:
				prepared[r.Txn] = true
			case wal.Commit, wal.Abort:
				resolved[r.Txn] = true
			}
		}
		for gid := range prepared {
			if resolved[gid] {
				continue
			}
			if _, inFlight := sys.reg[gid]; inFlight {
				continue
			}
			t.Errorf("node %d: transaction %d is stuck in doubt: durable Prepared record, no resolution, not in flight", id, gid)
		}
	}
}

// TestCrashPathLeavesNoGoroutines extends the PR 1 leak regression to the
// fault machinery: repeated runs with crashes, restarts and timeouts (which
// spawn recovery processes and park users on restart events) must still
// return the goroutine count to baseline.
func TestCrashPathLeavesNoGoroutines(t *testing.T) {
	mkCfg := func(seed uint64) Config {
		cfg := twoNodeConfig(mb4Users(), 8, seed)
		cfg.Warmup = 5_000
		cfg.Duration = 60_000
		cfg.Faults = &FaultPlan{
			// One site is down when the clock stops: shutdown must also
			// unwind users parked on the restart event.
			Crashes:           []SiteCrash{{Site: 0, AtMS: 20_000, DownForMS: 5_000}, {Site: 1, AtMS: 55_000, DownForMS: 60_000}},
			CrashMTTFMS:       30_000,
			CrashMTTRMS:       2_000,
			PrepareTimeoutMS:  2_000,
			LockWaitTimeoutMS: 4_000,
		}
		return cfg
	}

	// Warm up once so lazy runtime goroutines don't count against us.
	sys, err := New(mkCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()

	baseline := settledGoroutines()
	const runs = 20
	for i := 0; i < runs; i++ {
		sys, err := New(mkCfg(uint64(200 + i)))
		if err != nil {
			t.Fatal(err)
		}
		sys.Run()
	}
	after := settledGoroutines()
	if after > baseline+5 {
		t.Fatalf("goroutines grew from %d to %d over %d faulted runs: the crash path leaks simulation processes",
			baseline, after, runs)
	}
}
