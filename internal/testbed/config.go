// Package testbed is a discrete-event simulator of CARAT, the distributed
// database testbed the paper measures (Section 2). It reproduces the
// process and message structure of Figure 1 — TR user processes, one TM
// server per node (a serialization point), a pool of DM servers per node —
// and the three protocols the model integrates:
//
//   - two-phase locking at block granularity with local wait-for-graph
//     deadlock detection and Chandy–Misra probes for global deadlocks,
//   - before-image journaling with rollback of deadlock victims, and
//   - centralized two-phase commit with a force-written commit record.
//
// In this reproduction the simulator plays the role of the paper's VAX
// hardware: its measurements are the "empirical" side of every
// model-vs-measurement table and figure. Service demands are taken from
// Table 2 of the paper (see DefaultParams).
package testbed

import (
	"fmt"

	"carat/internal/cc"
	"carat/internal/comm"
	"carat/internal/disk"
	"carat/internal/placement"
	"carat/internal/repl"
	"carat/internal/storage"
)

// TxnKind is one of the four workload transaction types (Section 2).
type TxnKind int

// KindNone tags trace events not tied to a transaction (site crash and
// restart events).
const KindNone TxnKind = -1

const (
	// LRO is a local read-only transaction.
	LRO TxnKind = iota
	// LU is a local update transaction.
	LU
	// DRO is a distributed read-only transaction.
	DRO
	// DU is a distributed update transaction.
	DU
)

// String returns the paper's abbreviation for the kind.
func (k TxnKind) String() string {
	switch k {
	case KindNone:
		return "-"
	case LRO:
		return "LRO"
	case LU:
		return "LU"
	case DRO:
		return "DRO"
	case DU:
		return "DU"
	default:
		return fmt.Sprintf("TxnKind(%d)", int(k))
	}
}

// Update reports whether the kind writes the database.
func (k TxnKind) Update() bool { return k == LU || k == DU }

// Distributed reports whether the kind issues remote requests.
func (k TxnKind) Distributed() bool { return k == DRO || k == DU }

// NodeID identifies a site.
type NodeID = comm.NodeID

// UserSpec describes one TR user process: where it runs, what it submits,
// and (for distributed types) which remote nodes serve its remote requests.
type UserSpec struct {
	Kind TxnKind
	Home NodeID
	// Remote is the slave site for DRO/DU users. The paper's two-node
	// experiments always use "the other node".
	Remote NodeID
	// Remotes optionally lists several slave sites; remote requests are
	// spread evenly across them and two-phase commit coordinates all of
	// them. When empty, [Remote] is used. Extends the paper's two-node
	// setup ("the architecture generalizes to any number of nodes").
	Remotes []NodeID
}

// RemoteSites returns the user's slave sites (at least one for
// distributed kinds).
func (u UserSpec) RemoteSites() []NodeID {
	if !u.Kind.Distributed() {
		return nil
	}
	if len(u.Remotes) > 0 {
		return u.Remotes
	}
	return []NodeID{u.Remote}
}

// RemoteSplit returns how many of the nRemote remote requests go to each
// of k slave sites: the first nRemote%k sites get one extra. Both the
// simulator and the analytical model use this split, keeping them
// parameterized identically.
func RemoteSplit(nRemote, k int) []int {
	out := make([]int, k)
	if k == 0 {
		return out
	}
	base, extra := nRemote/k, nRemote%k
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out
}

// PhaseCosts carries the per-phase resource requirements for one
// transaction type at one node — the six basic parameters of Table 2 plus
// the derived phase costs the paper computed in [JENQ86].
// All times are milliseconds.
type PhaseCosts struct {
	// The six basic parameters (Table 2).
	UCPU      float64 // R_U: user application processing per request
	TMCPU     float64 // R_TM: TM processing per message (larger for DRO/DU)
	DMCPU     float64 // R_DM: DM processing between two lock requests
	LRCPU     float64 // R_LR: lock request processing incl. local deadlock detection
	DMIOCPU   float64 // R_DMIO(cpu): CPU to start/finish the I/O burst per granule
	DMIOCount int     // disk I/Os per granule access (1 read-only, 3 update)

	// Derived phase costs (reconstructed from the basic parameters; the
	// paper computed them in the thesis and does not print them).
	InitCPU   float64 // INIT: TBEGIN + DBOPEN processing at the coordinator
	CommitCPU float64 // TC: commit protocol CPU per participating site
	CommitIOs int     // TCIO: force-written log records at this site on commit
	AbortCPU  float64 // TA: fixed rollback CPU
	UnlockCPU float64 // UL: CPU to release all locks (charged once)
	ThinkTime float64 // R_UT: user think time between transactions (0 in the paper)
}

// Params maps every (node, kind) pair to its phase costs, plus the
// slave-side costs for distributed transactions.
type Params struct {
	// Costs[node][kind] are the coordinator/local costs at that node.
	Costs map[NodeID]map[TxnKind]PhaseCosts
	// SlaveCommitIOs is the number of force-written log records at a slave
	// site on commit: 1 for update slaves (the prepare record), 0 for
	// read-only slaves (read-only 2PC optimization).
	SlaveCommitIOs map[TxnKind]int
}

// CostsFor returns the phase costs for kind at node, panicking on unknown
// pairs so configuration errors surface immediately.
func (p Params) CostsFor(n NodeID, k TxnKind) PhaseCosts {
	byKind, ok := p.Costs[n]
	if !ok {
		panic(fmt.Sprintf("testbed: no costs for node %d", n))
	}
	c, ok := byKind[k]
	if !ok {
		panic(fmt.Sprintf("testbed: no costs for %v at node %d", k, n))
	}
	return c
}

// DefaultParams returns Table 2 of the paper for an n-node system: every
// node gets Node A's CPU costs (the CPUs were identical VAX 11/780s), and
// the per-node disk speed difference lives in the disk profiles, not here.
// Derived phase costs follow the reconstruction documented in DESIGN.md:
//
//	InitCPU   = 2*TMCPU + DMCPU   (TBEGIN and DBOPEN round trips)
//	CommitCPU = TMCPU             (commit message processing per site)
//	AbortCPU  = DMCPU             (rollback administration)
//	UnlockCPU = 2.0               (release all locks)
func DefaultParams(nodes int) Params {
	p := Params{
		Costs: make(map[NodeID]map[TxnKind]PhaseCosts),
		SlaveCommitIOs: map[TxnKind]int{
			DRO: 0, // read-only slave votes READ-ONLY, writes nothing
			DU:  1, // update slave force-writes its prepare record
		},
	}
	for n := 0; n < nodes; n++ {
		byKind := make(map[TxnKind]PhaseCosts)
		for _, k := range []TxnKind{LRO, LU, DRO, DU} {
			tm := 8.0
			if k.Distributed() {
				tm = 12.0
			}
			dm, ioCPU, ios := 5.4, 1.5, 1
			if k.Update() {
				dm, ioCPU, ios = 8.6, 2.5, 3
			}
			byKind[k] = PhaseCosts{
				UCPU:      7.8,
				TMCPU:     tm,
				DMCPU:     dm,
				LRCPU:     2.2,
				DMIOCPU:   ioCPU,
				DMIOCount: ios,
				InitCPU:   2*tm + dm,
				CommitCPU: tm,
				CommitIOs: 1,
				AbortCPU:  dm,
				UnlockCPU: 2.0,
				ThinkTime: 0,
			}
		}
		p.Costs[NodeID(n)] = byKind
	}
	return p
}

// CCProtocol selects the concurrency control scheme the testbed runs.
// CARAT's scheme — and the only one the analytical model covers — is
// CC2PL; the others are the classical baselines the contemporaneous
// modeling literature compares against (Rosenkrantz's prevention schemes,
// Galler's basic timestamp ordering) plus the modern OCC and
// deterministic paradigms. The values mirror cc.Paradigm one-to-one; the
// engine dispatch lives in internal/cc.
type CCProtocol int

const (
	// CC2PL is two-phase locking with wait-for-graph deadlock detection
	// (the paper's scheme; the default).
	CC2PL CCProtocol = iota
	// CCWaitDie is 2PL with wait-die prevention: a requester younger than
	// a conflicting holder aborts instead of waiting.
	CCWaitDie
	// CCWoundWait is 2PL with wound-wait prevention: an older requester
	// aborts younger conflicting holders.
	CCWoundWait
	// CCTimestamp is basic timestamp ordering: no locks, no blocking;
	// late accesses abort and restart with a fresh timestamp.
	CCTimestamp
	// CCOCC is optimistic concurrency control: execute without blocking,
	// track read/write sets, backward-validate at commit; validation
	// conflicts abort under CauseValidation.
	CCOCC
	// CCQueCC is QueCC-style deterministic execution: accesses are planned
	// into per-site priority queues at submission and drained in priority
	// order — no locks, no deadlocks, no probe traffic by construction.
	CCQueCC
)

// paradigm converts to the cc subsystem's paradigm enum (same values).
func (c CCProtocol) paradigm() cc.Paradigm { return cc.Paradigm(c) }

// String names the protocol.
func (c CCProtocol) String() string {
	switch c {
	case CC2PL:
		return "2PL-detect"
	case CCWaitDie:
		return "2PL-wait-die"
	case CCWoundWait:
		return "2PL-wound-wait"
	case CCTimestamp:
		return "basic-TO"
	case CCOCC:
		return "OCC"
	case CCQueCC:
		return "QueCC"
	default:
		return fmt.Sprintf("CCProtocol(%d)", int(c))
	}
}

// PlacementConfig activates the data-directory placement subsystem: the
// granule space of the whole fleet (Layout scaled by the node count) is
// mapped onto home sites by a placement.Directory, and every distributed
// transaction resolves its remote sites through the directory instead of
// the hand-wired UserSpec.Remote/Remotes path. Nil keeps the historical
// two-site routing — and the byte-pinned default traces — untouched.
type PlacementConfig struct {
	// Strategy selects the granule→site mapping (see placement.Parse).
	Strategy placement.Strategy
	// Affinity, for the locality strategy, is the fraction of a
	// distributed transaction's requests pinned to the submitting site's
	// own shard; the rest scatter through the directory's anchor draw.
	// Ignored by hash and range. Must be in [0,1].
	Affinity float64
	// Pattern draws each scattered request's anchor record over the
	// global record space (defaults to a fresh copy of Config.Pattern).
	// storage.Zipf caches its CDF for a single layout, so the anchor
	// needs its own instance rather than sharing Config.Pattern's.
	Pattern storage.Pattern
}

// NodeConfig describes one site's hardware.
type NodeConfig struct {
	// DBDisk is the database disk service model (Table 2 folds positioning
	// into a per-block mean: 28 ms RM05 on Node A, 40 ms RP06 on Node B).
	DBDisk disk.ServiceModel
	// LogDisk, when non-nil, puts the recovery log on its own device. The
	// paper's configuration (nil) shares the database disk — a compromise
	// it explicitly calls out as a bottleneck.
	LogDisk disk.ServiceModel
	// CPUs is the number of processors at the node (default 1, the
	// paper's single-processor configuration; 2 models a VAX 11/782-class
	// dual processor).
	CPUs int
	// DMServers is the DM pool size fixed at system start-up.
	DMServers int
	// DBDiskStripes stripes the database over this many identical devices
	// (block g lives on device g mod stripes) — the paper's "multiple DISK
	// queueing centers can be used to represent multiple disks for the
	// database" (Section 4). Default 1, the measured configuration.
	DBDiskStripes int
}

// Config assembles a complete simulated CARAT system.
type Config struct {
	Nodes  []NodeConfig
	Users  []UserSpec
	Params Params
	Layout storage.Layout // per-site database size (paper: 3000 x 6)

	// RequestsPerTxn is the transaction size n; RecordsPerRequest is fixed
	// at four in the paper's experiments.
	RequestsPerTxn    int
	RecordsPerRequest int

	// Pattern selects records within a site (default uniform, the paper's
	// assumption).
	Pattern storage.Pattern

	// Network is the inter-site delay model (default zero, the paper's
	// measured operating point for two nodes).
	Network comm.DelayModel

	// RemoteFrac is the fraction of a distributed transaction's n requests
	// that execute at the slave site (default 0.5: half local, half
	// remote, so l(t) = r(t) = n/2 in the model's terms).
	RemoteFrac float64

	// BufferHitRatio h in [0,1) lets a fraction h of granule reads hit a
	// shared buffer and skip the disk — the database-buffering extension
	// from the paper's conclusions. The paper's testbed has h = 0.
	BufferHitRatio float64

	// Concurrency selects the concurrency control protocol (default
	// CC2PL, the paper's scheme).
	Concurrency CCProtocol

	Seed uint64
	// Warmup and Duration bound the run: statistics are reset at Warmup
	// and collected until Duration (both in ms).
	Warmup   float64
	Duration float64

	// Trace, when non-nil, receives every protocol event (see TraceEvent).
	// Tracing is synchronous and can slow long runs; intended for protocol
	// validation and debugging.
	Trace func(TraceEvent)

	// Faults, when non-nil and active, injects site crashes, message loss
	// and protocol timeouts into the run (see FaultPlan). A nil or zero
	// plan leaves the simulation byte-identical to a fault-free build.
	Faults *FaultPlan

	// Resilience configures retry/backoff, per-site admission control and
	// probe retransmission (see Resilience). The zero value is fully inert.
	Resilience Resilience

	// Replication configures replicated granules with primary-copy locking
	// (see repl.Policy): every granule keeps Factor copies on distinct
	// sites, writes propagate to all available copies after commit, and
	// reads run read-one or read-quorum. The zero value (or Factor 1) is
	// fully inert — a testbed extension beyond the paper's single-copy
	// system.
	Replication repl.Policy

	// Placement, when non-nil, activates the data-directory subsystem:
	// distributed transactions resolve their executing sites through a
	// placement.Directory over the fleet's global granule space instead of
	// the per-user Remote/Remotes wiring (see PlacementConfig). Nil leaves
	// routing — and the byte-pinned default traces — untouched.
	Placement *PlacementConfig

	// Open, when non-nil and active, drives the testbed with open arrivals
	// (see OpenConfig): per-site Poisson processes on dedicated RNG
	// substreams, optionally burst-modulated and ramped, submitting
	// transactions from a multi-class mix. Users may then be empty (the
	// closed terminals are replaced) or non-empty (mixed open + closed
	// load). Nil leaves closed-mode runs byte-identical.
	Open *OpenConfig
}

// Validate checks the configuration and fills defaults in place.
func (c *Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("testbed: no nodes")
	}
	if len(c.Users) == 0 && !c.Open.Active() {
		return fmt.Errorf("testbed: no users")
	}
	for i, u := range c.Users {
		if int(u.Home) < 0 || int(u.Home) >= len(c.Nodes) {
			return fmt.Errorf("testbed: user %d home node %d out of range", i, u.Home)
		}
		// Under directory-driven placement the per-user Remote/Remotes
		// wiring is ignored, so generated N-site configs need not fill it.
		if u.Kind.Distributed() && c.Placement == nil {
			seen := map[NodeID]bool{}
			for _, r := range u.RemoteSites() {
				switch {
				case int(r) < 0 || int(r) >= len(c.Nodes):
					return fmt.Errorf(
						"testbed: user %d (%v homed at site %d) lists unreachable remote site %d: remotes must name existing sites in [0, %d]",
						i, u.Kind, u.Home, r, len(c.Nodes)-1)
				case r == u.Home:
					return fmt.Errorf(
						"testbed: user %d (%v homed at site %d) lists its own home as a remote: remotes must name other sites",
						i, u.Kind, u.Home)
				case seen[r]:
					return fmt.Errorf(
						"testbed: user %d (%v homed at site %d) lists remote site %d twice: remotes must be distinct",
						i, u.Kind, u.Home, r)
				}
				seen[r] = true
			}
		}
	}
	if c.RequestsPerTxn <= 0 {
		return fmt.Errorf("testbed: RequestsPerTxn must be positive")
	}
	if c.RecordsPerRequest <= 0 {
		c.RecordsPerRequest = 4
	}
	if c.Layout.Granules == 0 {
		c.Layout = storage.DefaultLayout()
	}
	if c.Pattern == nil {
		c.Pattern = storage.Uniform{}
	}
	if c.Network == nil {
		c.Network = comm.ZeroDelay{}
	}
	if c.BufferHitRatio < 0 || c.BufferHitRatio >= 1 {
		return fmt.Errorf("testbed: BufferHitRatio %v out of [0,1)", c.BufferHitRatio)
	}
	if c.RemoteFrac == 0 {
		c.RemoteFrac = 0.5
	}
	if c.RemoteFrac < 0 || c.RemoteFrac > 1 {
		return fmt.Errorf("testbed: RemoteFrac %v out of [0,1]", c.RemoteFrac)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("testbed: Duration must be positive")
	}
	if c.Warmup < 0 || c.Warmup >= c.Duration {
		return fmt.Errorf("testbed: Warmup must be in [0, Duration)")
	}
	for i := range c.Nodes {
		if c.Nodes[i].DBDisk == nil {
			return fmt.Errorf("testbed: node %d has no database disk model", i)
		}
		if c.Nodes[i].DMServers <= 0 {
			c.Nodes[i].DMServers = 16
		}
		if c.Nodes[i].DBDiskStripes <= 0 {
			c.Nodes[i].DBDiskStripes = 1
		}
		if c.Nodes[i].CPUs <= 0 {
			c.Nodes[i].CPUs = 1
		}
	}
	if c.Params.Costs == nil {
		c.Params = DefaultParams(len(c.Nodes))
	}
	if c.Faults != nil {
		// Fault plans are shareable across replications (sweeps hand many
		// concurrent runs the same pointer), so validation — which fills
		// scalar defaults — operates on a private copy and re-points this
		// config at it, never writing through the caller's plan.
		fp := *c.Faults
		if err := fp.validate(len(c.Nodes)); err != nil {
			return err
		}
		c.Faults = &fp
	}
	if err := c.Resilience.validate(); err != nil {
		return err
	}
	if err := c.Replication.Validate(len(c.Nodes)); err != nil {
		return fmt.Errorf("testbed: %w", err)
	}
	if c.Open.Active() {
		if err := c.Open.validate(len(c.Nodes)); err != nil {
			return err
		}
	}
	if c.Placement != nil {
		// Like fault plans, placement configs are shared across a sweep's
		// concurrent cells: validation fills defaults on a private copy.
		pc := *c.Placement
		if !pc.Strategy.Valid() {
			return fmt.Errorf("testbed: placement strategy %d unknown (valid strategies: %v)",
				int(pc.Strategy), placement.Names())
		}
		if len(c.Nodes) < 2 {
			return fmt.Errorf("testbed: placement needs at least 2 sites, got %d", len(c.Nodes))
		}
		if pc.Affinity < 0 || pc.Affinity > 1 {
			return fmt.Errorf("testbed: placement affinity %v out of [0,1]", pc.Affinity)
		}
		if pc.Pattern == nil {
			if z, ok := c.Pattern.(*storage.Zipf); ok {
				// Zipf caches its CDF for one layout; the anchor draws
				// over the global layout, so it gets its own instance.
				pc.Pattern = storage.NewZipf(z.Theta)
			} else {
				pc.Pattern = c.Pattern
			}
		}
		c.Placement = &pc
	}
	return nil
}
