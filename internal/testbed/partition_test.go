package testbed

import (
	"reflect"
	"sync"
	"testing"

	"carat/internal/repl"
)

// partitionPlan is a scheduled 1|1 split of the two-node system from t=60s,
// healing after 20s, with the detector on its defaults and finite timeouts
// so minority-side work aborts instead of wedging.
func partitionPlan() *FaultPlan {
	return &FaultPlan{
		Partitions: []PartitionSchedule{{
			Groups:      [][]NodeID{{0}, {1}},
			AtMS:        60_000,
			HealAfterMS: 20_000,
		}},
		PrepareTimeoutMS:  4_000,
		LockWaitTimeoutMS: 8_000,
	}
}

// TestScheduledPartitionEffects drives one explicit partition window and
// checks the bookkeeping around it: the trace events, the severed-time
// accounting, the detector's suspicion transitions, and the admission-side
// shedding of distributed submissions.
func TestScheduledPartitionEffects(t *testing.T) {
	cfg := faultTestConfig(5)
	cfg.Faults = partitionPlan()
	var parts, heals, suspects, trusts []TraceEvent
	cfg.Trace = func(ev TraceEvent) {
		switch ev.Ev {
		case EvPartition:
			parts = append(parts, ev)
		case EvPartitionHeal:
			heals = append(heals, ev)
		case EvSuspect:
			suspects = append(suspects, ev)
		case EvTrust:
			trusts = append(trusts, ev)
		}
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()

	if res.Partitions != 1 || res.PartitionMS != 20_000 {
		t.Fatalf("partitions=%d severed=%.0fms, want 1 and 20000ms", res.Partitions, res.PartitionMS)
	}
	if len(parts) != 2 || parts[0].T != 60_000 || parts[1].T != 60_000 {
		t.Fatalf("partition events = %+v, want one per site at t=60000", parts)
	}
	if len(heals) != 1 || heals[0].T != 80_000 {
		t.Fatalf("heal events = %+v, want one at t=80000", heals)
	}
	// Each side suspects the other once per window, then trusts it again.
	if len(suspects) != 2 || len(trusts) != 2 {
		t.Fatalf("suspicion transitions: %d suspects, %d trusts, want 2 and 2", len(suspects), len(trusts))
	}
	var shed, suspectEvents int64
	for _, n := range res.Nodes {
		shed += n.PartitionShed
		suspectEvents += n.SuspectEvents
	}
	if shed == 0 {
		t.Fatal("no distributed submissions were shed during the partition")
	}
	if suspectEvents != 2 {
		t.Fatalf("SuspectEvents = %d, want 2", suspectEvents)
	}
}

// TestPartitionRunDeterministic pins partition determinism: the same seed
// and plan (scheduled splits plus the random partition process) must
// reproduce bit-identical Results.
func TestPartitionRunDeterministic(t *testing.T) {
	run := func() Results {
		cfg := faultTestConfig(23)
		plan := partitionPlan()
		plan.PartitionMTBFMS = 90_000
		plan.PartitionMeanMS = 8_000
		cfg.Faults = plan
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs with the same seed and partition plan diverge:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestPartitionReplicatedAuditClean is the testbed-level split-brain check:
// a replicated run through a full partition window must satisfy every audit
// invariant — no transaction committed on one side and aborted on the
// other, and replicas reconciled to agreement after the heal.
func TestPartitionReplicatedAuditClean(t *testing.T) {
	cfg := replTestConfig(31, repl.Policy{Factor: 2, Read: repl.ReadOne})
	cfg.Faults = partitionPlan()
	aud := NewAuditor()
	cfg.Trace = aud.Record
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if res.Partitions != 1 {
		t.Fatalf("partitions = %d, want 1", res.Partitions)
	}
	if bad := aud.Audit(sys); len(bad) > 0 {
		t.Fatalf("replicated partition run violated invariants:\n%v", bad)
	}
}

// TestGrayFailureDegrades drives one gray window — site 1 at a third of its
// speed for two simulated minutes — and checks the degradation accounting
// and that the slowdown is actually visible in commit latency.
func TestGrayFailureDegrades(t *testing.T) {
	run := func(f *FaultPlan) Results {
		cfg := faultTestConfig(13)
		cfg.Faults = f
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	gray := run(&FaultPlan{GraySites: []GrayFailure{
		{Site: 1, AtMS: 60_000, ForMS: 120_000, CPUFactor: 3, DiskFactor: 3},
	}})
	plain := run(&FaultPlan{})

	if gray.Nodes[1].GrayMS != 120_000 {
		t.Fatalf("GrayMS = %.0f, want 120000", gray.Nodes[1].GrayMS)
	}
	if gray.Nodes[0].GrayMS != 0 {
		t.Fatalf("healthy site reported GrayMS = %.0f", gray.Nodes[0].GrayMS)
	}
	mean := func(r Results) float64 {
		var w float64
		var c int64
		for _, n := range r.Nodes {
			for k, cc := range n.Commits {
				c += cc
				w += n.MeanResponse[k] * float64(cc)
			}
		}
		return w / float64(c)
	}
	if g, p := mean(gray), mean(plain); g <= p {
		t.Fatalf("gray run mean latency %.2fms not above the healthy %.2fms", g, p)
	}
}

// TestSharedFaultPlanNotMutated is the -race regression for the validate
// copy fix: many Systems built concurrently from configs sharing one
// FaultPlan pointer must neither race nor write defaults through it.
func TestSharedFaultPlanNotMutated(t *testing.T) {
	plan := &FaultPlan{CrashMTTFMS: 60_000, PartitionMTBFMS: 120_000}
	want := *plan
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			cfg := faultTestConfig(seed)
			cfg.Faults = plan
			if _, err := New(cfg); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}(uint64(40 + i))
	}
	wg.Wait()
	if !reflect.DeepEqual(*plan, want) {
		t.Fatalf("shared plan mutated by validation: %+v, want %+v", *plan, want)
	}
}
