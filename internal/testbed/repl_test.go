package testbed

import (
	"reflect"
	"testing"

	"carat/internal/repl"
)

// replTestConfig is the short two-node configuration the replication tests
// run, with the given replication policy attached.
func replTestConfig(seed uint64, policy repl.Policy) Config {
	cfg := faultTestConfig(seed)
	cfg.Replication = policy
	return cfg
}

// TestInertReplicationPolicy pins the inertness guarantee: a zero policy and
// an explicit R=1 policy must leave the simulation byte-identical to one
// configured without replication at all (same RNG draws, same event order,
// same Results).
func TestInertReplicationPolicy(t *testing.T) {
	run := func(policy repl.Policy) Results {
		sys, err := New(replTestConfig(11, policy))
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	plain := run(repl.Policy{})
	one := run(repl.Policy{Factor: 1, Read: repl.ReadQuorum})
	if !reflect.DeepEqual(plain, one) {
		t.Fatalf("an R=1 policy changed the measurement:\nwithout: %+v\nwith:    %+v", plain, one)
	}
}

// TestReplicatedRunDeterministic pins replication determinism: the same seed
// and the same policy must reproduce bit-identical Results.
func TestReplicatedRunDeterministic(t *testing.T) {
	run := func() Results {
		cfg := replTestConfig(23, repl.Policy{Factor: 2, Read: repl.ReadQuorum})
		cfg.Faults = activePlan()
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two replicated runs with the same seed diverge:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestFailoverReadsDuringCrash crashes one site during a read-heavy workload
// and checks that the surviving replica serves its granules: reads that would
// have blocked on the down site complete as failover reads, updates propagate
// to the crashed site's replicas at restart, and the replica-agreement audit
// stays clean.
func TestFailoverReadsDuringCrash(t *testing.T) {
	users := []UserSpec{
		{Kind: LRO, Home: 0}, {Kind: LU, Home: 0},
		{Kind: DRO, Home: 0, Remote: 1}, {Kind: DRO, Home: 0, Remote: 1},
		{Kind: DRO, Home: 0, Remote: 1}, {Kind: DU, Home: 0, Remote: 1},
	}
	cfg := twoNodeConfig(users, 8, 31)
	cfg.Warmup = 10_000
	cfg.Duration = 300_000
	cfg.Replication = repl.Policy{Factor: 2}
	cfg.Faults = &FaultPlan{
		Crashes: []SiteCrash{{Site: 1, AtMS: 60_000, DownForMS: 60_000}},
	}
	aud := NewAuditor()
	cfg.Trace = aud.Record
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	var failover, applies, degraded int64
	for _, n := range res.Nodes {
		failover += n.FailoverReads
		applies += n.ReplicaApplies
		degraded += n.DegradedCommits
	}
	if failover == 0 {
		t.Error("no failover reads were served while site 1 was down")
	}
	if applies == 0 {
		t.Error("no replica applies were journaled")
	}
	if degraded == 0 {
		t.Error("no commits completed during the outage despite failover reads")
	}
	if bad := aud.Audit(sys); len(bad) > 0 {
		t.Fatalf("audit violations:\n%v", bad)
	}
}

// TestQuorumReadsCounted checks that the read-quorum policy confirms reads
// against the other copy and counts the confirmations.
func TestQuorumReadsCounted(t *testing.T) {
	cfg := replTestConfig(7, repl.Policy{Factor: 2, Read: repl.ReadQuorum})
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	var quorum int64
	for _, n := range res.Nodes {
		quorum += n.QuorumReads
	}
	if quorum == 0 {
		t.Error("no quorum confirmations were counted under the read-quorum policy")
	}
}

// TestReplicatedFaultsAuditClean runs the full fault cocktail with R=2 and
// checks every audit invariant, replica agreement included.
func TestReplicatedFaultsAuditClean(t *testing.T) {
	cfg := replTestConfig(41, repl.Policy{Factor: 2})
	cfg.Faults = activePlan()
	aud := NewAuditor()
	cfg.Trace = aud.Record
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if bad := aud.Audit(sys); len(bad) > 0 {
		t.Fatalf("audit violations:\n%v", bad)
	}
}
