package testbed

import (
	"math"
	"testing"

	"carat/internal/openload"
)

// openConfig builds a two-node open-arrival system with no closed users.
func openConfig(lambda float64, n int, seed uint64) Config {
	cfg := twoNodeConfig(nil, n, seed)
	cfg.Open = &OpenConfig{RatePerSec: lambda}
	return cfg
}

// An open run at a light load must commit close to the offered rate: the
// system is far from saturation, so essentially every arrival gets through.
func TestOpenArrivalsCommitOfferedLoad(t *testing.T) {
	cfg := openConfig(0.8, 4, 99)
	cfg.Warmup = 30_000
	cfg.Duration = 630_000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	var offered, committed, arrivals float64
	for _, nr := range res.Nodes {
		offered += nr.OpenOfferedPerSec
		committed += nr.TotalTxnThroughput
		arrivals += float64(nr.OpenArrivals)
		if nr.OpenMeanInSystem <= 0 {
			t.Errorf("node mean-in-system not tracked: %v", nr.OpenMeanInSystem)
		}
		if nr.OpenMeanResponseMS <= 0 || nr.OpenP95ResponseMS < nr.OpenP50ResponseMS {
			t.Errorf("bad open response stats: mean=%v p50=%v p95=%v",
				nr.OpenMeanResponseMS, nr.OpenP50ResponseMS, nr.OpenP95ResponseMS)
		}
	}
	if arrivals < 300 {
		t.Fatalf("too few arrivals for a 600s window at λ=0.8: %v", arrivals)
	}
	if math.Abs(offered-0.8) > 0.15 {
		t.Errorf("measured offered rate %v not near λ=0.8", offered)
	}
	// Committed ≈ offered, minus the handful still in flight at the end.
	if committed < 0.85*offered {
		t.Errorf("committed %v too far below offered %v at light load", committed, offered)
	}
}

// Same seed ⇒ byte-identical open-mode results, including the arrival
// stream, class draws and per-arrival workload substreams.
func TestOpenRunDeterministic(t *testing.T) {
	run := func() Results {
		cfg := openConfig(1.5, 4, 7)
		cfg.Open.Burst = openload.Burst{OnMeanMS: 5_000, OffMeanMS: 20_000, Factor: 3}
		cfg.Open.Classes = []OpenClass{
			{Kind: LU, Weight: 2},
			{Kind: DU, Weight: 1, Requests: 8, RemoteFrac: 0.25},
			{Kind: LRO, Weight: 1},
		}
		cfg.Warmup = 20_000
		cfg.Duration = 220_000
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	a, b := run(), run()
	for i := range a.Nodes {
		if a.Nodes[i].OpenArrivals != b.Nodes[i].OpenArrivals ||
			a.Nodes[i].TotalTxnThroughput != b.Nodes[i].TotalTxnThroughput ||
			a.Nodes[i].OpenMeanResponseMS != b.Nodes[i].OpenMeanResponseMS {
			t.Fatalf("node %d diverged across identical runs: %+v vs %+v", i, a.Nodes[i], b.Nodes[i])
		}
	}
}

// Open arrivals compose with closed users: a mixed run keeps both paths
// live, and the closed users' draws are not perturbed by open streams.
func TestOpenMixedWithClosedUsers(t *testing.T) {
	cfg := twoNodeConfig(mb4Users(), 4, 11)
	cfg.Warmup = 20_000
	cfg.Duration = 220_000
	cfg.Open = &OpenConfig{RatePerSec: 0.5, Classes: []OpenClass{{Kind: LRO}}}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	var arrivals int64
	var commits int64
	for _, nr := range res.Nodes {
		arrivals += nr.OpenArrivals
		for _, c := range nr.Commits {
			commits += c
		}
	}
	if arrivals == 0 {
		t.Fatal("no open arrivals in mixed mode")
	}
	if commits == 0 {
		t.Fatal("no commits in mixed mode")
	}
}

// A ramp schedule must shape the arrival stream over the run.
func TestOpenRampSchedule(t *testing.T) {
	cfg := openConfig(0, 4, 5)
	cfg.Open = &OpenConfig{Ramp: []OpenRampPoint{{AtMS: 0, RatePerSec: 0.2}, {AtMS: 400_000, RatePerSec: 2}}}
	cfg.Warmup = 0
	cfg.Duration = 400_000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	var arrivals float64
	for _, nr := range res.Nodes {
		arrivals += float64(nr.OpenArrivals)
	}
	// Mean rate over the ramp is 1.1/s → ~440 arrivals over 400 s.
	if arrivals < 300 || arrivals > 600 {
		t.Fatalf("ramped arrival count %v far from expectation ~440", arrivals)
	}
}

func TestOpenConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative rate", func(c *Config) { c.Open.RatePerSec = -1; c.Open.Ramp = []OpenRampPoint{{0, 1}} }},
		{"per-site length", func(c *Config) { c.Open.PerSiteRatePerSec = []float64{1} }},
		{"unsorted ramp", func(c *Config) {
			c.Open.Ramp = []OpenRampPoint{{1000, 1}, {0, 2}}
		}},
		{"burst without sojourns", func(c *Config) { c.Open.Burst = openload.Burst{Factor: 4} }},
		{"bad class kind", func(c *Config) { c.Open.Classes = []OpenClass{{Kind: TxnKind(9)}} }},
		{"bad class remote frac", func(c *Config) {
			c.Open.Classes = []OpenClass{{Kind: LU, RemoteFrac: 2}}
		}},
	}
	for _, tc := range cases {
		cfg := openConfig(1, 4, 1)
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}
