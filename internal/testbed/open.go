package testbed

import (
	"fmt"
	"math"

	"carat/internal/openload"
	"carat/internal/rng"
	"carat/internal/sim"
	"carat/internal/storage"
)

// This file is the open-arrival submission path: instead of (or alongside)
// the paper's closed terminal loops, transactions arrive from an unbounded
// population at a configurable rate λ, each arrival running the same
// Figure-3 retry loop as a closed user and then leaving the system. Open
// mode is the regime where the admission gate (Resilience) matters: offered
// load can exceed capacity, which a closed population cannot do by
// construction.
//
// All open-mode randomness lives on dedicated rng substreams (Split is
// pure), so a configuration with Open nil leaves every closed-mode draw —
// and therefore every golden snapshot — byte-identical.

// RNG substream bases for open mode. Closed mode uses 0..len(nodes) for
// node/disk streams, 10000+ for users and 20000+ for retry backoff; the
// open generator claims disjoint ranges.
const (
	openArrivalStreamBase = 30000 // per-site interarrival + burst sojourns
	openMixStreamBase     = 40000 // per-site class-mix draws
	openTxnStreamBase     = 50000 // per-site root of per-arrival streams
)

// OpenClass is one transaction class in an open arrival mix. Zero-valued
// fields inherit the Config-wide setting: Requests falls back to
// RequestsPerTxn, RemoteFrac to Config.RemoteFrac, Pattern to
// Config.Pattern. Weight is the class's share of the mix (non-positive
// weights count as 1; omit a class to exclude it).
type OpenClass struct {
	Kind       TxnKind
	Weight     float64
	Requests   int
	RemoteFrac float64
	Pattern    storage.Pattern
}

// OpenRampPoint anchors a piecewise-linear schedule for the system-wide
// arrival rate: λ is RatePerSec at AtMS, interpolated between points and
// held flat outside them.
type OpenRampPoint struct {
	AtMS       float64
	RatePerSec float64
}

// OpenConfig switches the testbed to open arrivals. The system-wide Poisson
// rate RatePerSec is split evenly across sites (or overridden per site);
// Burst superimposes an on-off modulator and Ramp a time-varying schedule
// (system-wide, split evenly; it overrides RatePerSec when non-empty).
// Classes defaults to one class per transaction kind with equal weights.
// A nil or zero OpenConfig is fully inert.
type OpenConfig struct {
	RatePerSec        float64
	PerSiteRatePerSec []float64
	Burst             openload.Burst
	Ramp              []OpenRampPoint
	Classes           []OpenClass
}

// Active reports whether open arrivals are configured.
func (o *OpenConfig) Active() bool {
	if o == nil {
		return false
	}
	return o.RatePerSec > 0 || len(o.PerSiteRatePerSec) > 0 || len(o.Ramp) > 0
}

// validate checks the open configuration and fills the default class mix in
// place (one class per kind — the MB-style balanced mix — restricted to the
// local kinds on a single-site system).
func (o *OpenConfig) validate(nodes int) error {
	if o.RatePerSec < 0 {
		return fmt.Errorf("testbed: open arrival rate %v negative", o.RatePerSec)
	}
	if len(o.PerSiteRatePerSec) > 0 && len(o.PerSiteRatePerSec) != nodes {
		return fmt.Errorf("testbed: %d per-site open rates for %d nodes", len(o.PerSiteRatePerSec), nodes)
	}
	for i, r := range o.PerSiteRatePerSec {
		if r < 0 {
			return fmt.Errorf("testbed: open rate for site %d negative", i)
		}
	}
	for i, rp := range o.Ramp {
		if rp.RatePerSec < 0 {
			return fmt.Errorf("testbed: open ramp point %d rate negative", i)
		}
		if i > 0 && rp.AtMS < o.Ramp[i-1].AtMS {
			return fmt.Errorf("testbed: open ramp points not sorted by time")
		}
	}
	b := o.Burst
	if b.Factor < 0 || b.OnMeanMS < 0 || b.OffMeanMS < 0 {
		return fmt.Errorf("testbed: open burst parameters must be non-negative")
	}
	if b.Factor > 1 && !b.Active() {
		return fmt.Errorf("testbed: open burst factor %v needs positive on/off sojourn means", b.Factor)
	}
	if len(o.Classes) == 0 {
		for _, k := range []TxnKind{LRO, LU, DRO, DU} {
			if k.Distributed() && nodes < 2 {
				continue
			}
			o.Classes = append(o.Classes, OpenClass{Kind: k, Weight: 1})
		}
	}
	for i, c := range o.Classes {
		if c.Kind < LRO || c.Kind > DU {
			return fmt.Errorf("testbed: open class %d has invalid kind", i)
		}
		if c.Kind.Distributed() && nodes < 2 {
			return fmt.Errorf("testbed: open class %d is distributed but the system has one site", i)
		}
		if c.Requests < 0 {
			return fmt.Errorf("testbed: open class %d request count negative", i)
		}
		if c.RemoteFrac < 0 || c.RemoteFrac > 1 {
			return fmt.Errorf("testbed: open class %d remote fraction %v out of [0,1]", i, c.RemoteFrac)
		}
	}
	return nil
}

// openGen is one site's arrival generator.
type openGen struct {
	site    NodeID
	proc    *openload.Process
	mixRnd  *rng.Rand // class-mix draws
	txnRoot *rng.Rand // root for per-arrival workload/backoff substreams
}

// openState is the system-wide open-arrival machinery.
type openState struct {
	cfg  OpenConfig
	gens []*openGen
	seq  int64     // arrival sequence number, across all sites
	cum  []float64 // cumulative class weights
}

// initOpen builds the per-site arrival processes and spawns their generator
// loops. Called from New only when the open configuration is active.
func (s *System) initOpen() {
	oc := *s.cfg.Open
	st := &openState{cfg: oc}
	total := 0.0
	for _, c := range oc.Classes {
		w := c.Weight
		if w <= 0 {
			w = 1
		}
		total += w
		st.cum = append(st.cum, total)
	}
	sites := float64(len(s.nodes))
	for i := range s.nodes {
		base := oc.RatePerSec / sites / 1000 // per-site events/ms
		if len(oc.PerSiteRatePerSec) > 0 {
			base = oc.PerSiteRatePerSec[i] / 1000
		}
		var ramp []openload.RampPoint
		for _, rp := range oc.Ramp {
			ramp = append(ramp, openload.RampPoint{AtMS: rp.AtMS, Rate: rp.RatePerSec / sites / 1000})
		}
		g := &openGen{
			site:    NodeID(i),
			proc:    openload.NewProcess(base, ramp, oc.Burst, s.rnd.Split(uint64(openArrivalStreamBase+i))),
			mixRnd:  s.rnd.Split(uint64(openMixStreamBase + i)),
			txnRoot: s.rnd.Split(uint64(openTxnStreamBase + i)),
		}
		st.gens = append(st.gens, g)
		s.env.Spawn(fmt.Sprintf("openarrivals-%d", i), s.openGenRun(g))
	}
	s.open = st
}

// openGenRun is the generator process body for one site: draw the next
// arrival time, sleep until it, hand the arrival off to its own process.
func (s *System) openGenRun(g *openGen) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		for {
			t := g.proc.Next(p.Now())
			if math.IsInf(t, 1) {
				return
			}
			if t > p.Now() {
				p.Hold(t - p.Now())
			}
			s.openArrive(p, g)
		}
	}
}

// openArrive admits one arrival at g's site: draw its class, account for it
// in the open-queue statistics, and spawn a one-shot process that runs the
// standard submit-retry loop (execOne) and then leaves the system.
func (s *System) openArrive(p *sim.Proc, g *openGen) {
	st := s.open
	ci := 0
	if len(st.cum) > 1 {
		u := g.mixRnd.Float64() * st.cum[len(st.cum)-1]
		for ci < len(st.cum)-1 && u >= st.cum[ci] {
			ci++
		}
	}
	class := st.cfg.Classes[ci]
	seq := st.seq
	st.seq++
	home := s.nodes[g.site]
	home.openArrivals.Inc()
	home.openInSystem.Adjust(1, p.Now())
	// Arrivals have no transaction id yet (one is allocated per submission
	// attempt); the trace carries the negated arrival sequence instead.
	s.trace(-(seq + 1), class.Kind, g.site, EvArrival, -1)

	spec := UserSpec{Kind: class.Kind, Home: g.site}
	if class.Kind.Distributed() {
		spec.Remote = NodeID((int(g.site) + 1) % len(s.nodes))
	}
	u := &user{
		sys:  s,
		spec: spec,
		// Ids above the closed-user range; only used in process/event names.
		id:         int(1<<30 + seq),
		rnd:        g.txnRoot.Split(uint64(2 * seq)),
		backoffRnd: g.txnRoot.Split(uint64(2*seq + 1)),
		classReq:   class.Requests,
		classRF:    class.RemoteFrac,
		classPat:   class.Pattern,
	}
	s.env.Spawn(fmt.Sprintf("open-%d-%v", seq, class.Kind), func(tp *sim.Proc) {
		u.execOne(tp)
		home.openInSystem.Adjust(-1, tp.Now())
	})
}

// Per-transaction workload parameters: open classes may override the
// Config-wide transaction size, remote fraction and access pattern; closed
// users always inherit them (their override fields stay zero).

// reqsPerTxn returns this transaction's size n.
func (u *user) reqsPerTxn() int {
	if u.classReq > 0 {
		return u.classReq
	}
	return u.sys.cfg.RequestsPerTxn
}

// remoteFrac returns this transaction's remote request fraction.
func (u *user) remoteFrac() float64 {
	if u.classRF > 0 {
		return u.classRF
	}
	return u.sys.cfg.RemoteFrac
}

// pattern returns this transaction's record access pattern.
func (u *user) pattern() storage.Pattern {
	if u.classPat != nil {
		return u.classPat
	}
	return u.sys.cfg.Pattern
}
