package testbed

import (
	"carat/internal/disk"
	"carat/internal/lock"
	"carat/internal/repl"
	"carat/internal/sim"
)

// replStreamSalt labels the replica-placement substream of the workload RNG.
// Split is pure, so deriving it perturbs no other stream: enabling
// replication never shifts the node or user draws.
const replStreamSalt = 0x5EB11CA

// pendingApply is one write-all-available catch-up entry: a committed
// writer's update that must still reach a replica whose site was down when
// the writer propagated.
type pendingApply struct {
	block int
	gid   int64
}

// replState is the per-run replication machinery: the validated policy, the
// deterministic replica placement, and the per-site catch-up queues.
type replState struct {
	policy repl.Policy
	place  *repl.Placement
	// pending queues catch-up applies per down site; the site's restart
	// recovery drains them (charging the log writes) before it rejoins.
	pending map[NodeID][]pendingApply
}

// initRepl installs an active replication policy. Called from New after the
// nodes exist, before user processes are spawned.
func (s *System) initRepl() {
	pol := s.cfg.Replication
	s.repl = &replState{
		policy:  pol,
		place:   repl.NewPlacement(len(s.nodes), s.cfg.Layout.Granules, pol.Factor, s.rnd.Split(replStreamSalt)),
		pending: make(map[NodeID][]pendingApply),
	}
}

// replBlock maps granule g of site owner into the replica lock/journal
// namespace — disjoint from every site's primary granule ids, so a
// failed-over read never contends with the serving site's own data.
func (s *System) replBlock(owner NodeID, g int) int {
	return int(lock.ReplicaGranule(int(owner), s.cfg.Layout.Granules, g))
}

// replReadFailover reports whether reads of the kind may be served at a
// surviving replica while the primary's site is down or unreachable. A home
// site whose failure detector cannot see a majority refuses to fail over:
// on the minority side of a partition its reads could be stale relative to
// writes committing on the majority side.
func (s *System) replReadFailover(home NodeID, kind TxnKind) bool {
	return s.repl != nil && !kind.Update() && s.majorityReachable(home)
}

// replQuorum reports whether an access in the mode must confirm against a
// read quorum of the replica set.
func (s *System) replQuorum(mode lock.Mode) bool {
	return s.repl != nil && s.repl.policy.Read == repl.ReadQuorum && mode == lock.Shared
}

// failoverSite returns the first replica of granule g of site owner — in
// placement order, deterministic, no runtime draws — that is up, reachable
// from home, and on the majority side of any partition. A minority-side
// replica refuses failover reads: it cannot rule out a newer committed
// write on the majority side. Returns nil when no copy qualifies.
func (s *System) failoverSite(home, owner NodeID, g int) *node {
	for _, sid := range s.repl.place.Replicas(int(owner), g) {
		nd := s.nodes[sid]
		if nd.down || !s.reachable(home, nd.id) {
			continue
		}
		if !s.majorityReachable(nd.id) {
			continue
		}
		return nd
	}
	return nil
}

// queueReplicaApply parks a committed writer's apply for a down site.
func (s *System) queueReplicaApply(id NodeID, block int, gid int64) {
	s.repl.pending[id] = append(s.repl.pending[id], pendingApply{block: block, gid: gid})
}

// pendingReplApply reports whether an apply for the block is already queued
// at the site. While it is, later committed writes to the same block must
// park behind it — a direct apply would be overtaken by the older queued
// write when the catch-up drain reaches it. Blocks with nothing queued are
// free to apply directly; per-block order is all replica agreement needs.
func (s *System) pendingReplApply(id NodeID, blk int) bool {
	for _, a := range s.repl.pending[id] {
		if a.block == blk {
			return true
		}
	}
	return false
}

// recoverReplicas is the replication half of restart recovery: the replica
// version map (volatile, lost at the crash) is rebuilt by replaying the
// durable replica-apply records, then the site catches up on the applies
// that arrived while it was down, journaling and charging each. The drain
// loops because the catch-up I/O itself takes simulated time, during which
// new applies may be queued.
func (s *System) recoverReplicas(p *sim.Proc, nd *node) {
	nd.replVersion = nd.journal.ReplicaVersions()
	s.drainReplicaApplies(p, nd)
}

// drainReplicaApplies drains the site's catch-up queue, journaling and
// charging each apply. Shared by restart recovery and the partition-heal
// drain; the latter must NOT rebuild the version map first — the site never
// lost its volatile state, only its connectivity.
func (s *System) drainReplicaApplies(p *sim.Proc, nd *node) {
	// Restart recovery drains while the site is still marked down (markUp
	// follows recovery); only a crash that lands mid-drain aborts the loop.
	downAtStart := nd.down
	for len(s.repl.pending[nd.id]) > 0 {
		if nd.down && !downAtStart {
			// The site crashed mid-drain: leave the rest of the queue for
			// restart recovery's own drain.
			return
		}
		// Peek, apply, then pop: the entry stays visible in the queue while
		// its log write holds, so a committer propagating during the drain
		// sees a non-empty queue and parks its apply behind it instead of
		// overtaking the older queued write with a direct one.
		a := s.repl.pending[nd.id][0]
		nd.journal.LogReplicaApply(a.gid, a.block)
		mustUse(nd, p, func() error { return nd.logDisk.Do(p, disk.LogWrite, 0) })
		nd.replVersion[a.block] = a.gid
		nd.replicaApplies.Inc()
		s.repl.pending[nd.id] = s.repl.pending[nd.id][1:]
	}
	delete(s.repl.pending, nd.id)
}

// noteReplWrite records one granule write for post-commit propagation,
// deduplicated: a transaction re-writing a granule propagates it once.
func (st *txnState) noteReplWrite(owner NodeID, g int) {
	for _, w := range st.replWrites {
		if w.owner == owner && w.granule == g {
			return
		}
	}
	st.replWrites = append(st.replWrites, replWrite{owner: owner, granule: g})
}

// noteFailover registers a replica site serving a failed-over read: it
// becomes a crash-dooming participant, and — unless the commit/abort
// protocol already releases this transaction's locks there (it allocated the
// site's DM during INIT) — is remembered for the end-of-transaction lock
// release. The serving site can be the granules' own restarted primary: a
// remote that was down at INIT stays on the failover path for the whole
// submission, so its replica locks are released here, never by the protocol.
func (st *txnState) noteFailover(serve *node) {
	if !st.hasParticipant(serve.id) {
		st.parts = append(st.parts, serve.id)
	}
	for _, fs := range st.failoverNodes {
		if fs == serve {
			return
		}
	}
	for _, nd := range st.protoHeld {
		if nd == serve {
			return
		}
	}
	st.failoverNodes = append(st.failoverNodes, serve)
}

// propagateReplicas pushes a committed writer's updates to every copy of
// every granule it wrote. Called by the coordinator strictly after the
// force-written commit record (the commit point) and strictly before lock
// release at the owner, so applies to one granule arrive in commit order.
// Copies at live sites get a forced replica-apply journal record and the
// log write it costs; copies at down sites are queued for catch-up
// (write-all-available). The primary's own version stamp piggybacks on its
// already-durable commit without extra I/O.
func (u *user) propagateReplicas(p *sim.Proc, st *txnState) {
	sys := u.sys
	if sys.repl == nil || len(st.replWrites) == 0 {
		return
	}
	home := sys.nodes[st.home]
	for _, w := range st.replWrites {
		blk := sys.replBlock(w.owner, w.granule)
		for _, sid := range sys.repl.place.Replicas(int(w.owner), w.granule) {
			nd := sys.nodes[sid]
			if nd.down {
				sys.queueReplicaApply(nd.id, blk, st.gid)
				continue
			}
			if nd.id == w.owner {
				nd.journal.LogReplicaApply(st.gid, blk)
				nd.replVersion[blk] = st.gid
				continue
			}
			if !sys.reachable(home.id, nd.id) {
				// The copy is partitioned away from the coordinator: queue
				// the apply for the heal drain (write-all-available).
				sys.queueReplicaApply(nd.id, blk, st.gid)
				continue
			}
			if sys.pendingReplApply(nd.id, blk) {
				// An older write to this block is still queued for this copy
				// (a catch-up drain is pending or in progress): park behind
				// it, or the direct apply would be overtaken by the stale
				// queued one and the copy would finish on an old version.
				sys.queueReplicaApply(nd.id, blk, st.gid)
				continue
			}
			p.Hold(sys.hop(home.id, nd.id, controlMsgBytes))
			if nd.down || !sys.reachable(home.id, nd.id) || sys.pendingReplApply(nd.id, blk) {
				// The site crashed, the link died, or older applies were
				// queued for it while the apply message was in flight.
				sys.queueReplicaApply(nd.id, blk, st.gid)
				continue
			}
			nd.journal.LogReplicaApply(st.gid, blk)
			mustUse(nd, p, func() error { return nd.logDisk.Do(p, disk.LogWrite, 0) })
			nd.replVersion[blk] = st.gid
			nd.replicaApplies.Inc()
			sys.trace(st.gid, st.kind, nd.id, EvReplicaApply, blk)
		}
	}
}

// failoverRead serves one request's granules — owned by the crashed site
// owner — at their surviving replicas: for each granule, the first live
// copy in placement order takes the shared lock under the replica
// namespace, performs the read I/O, and answers the coordinator directly.
// Counted as FailoverReads at the serving sites.
func (u *user) failoverRead(p *sim.Proc, st *txnState, owner *node, grans []int) error {
	sys := u.sys
	kind := u.spec.Kind
	home := sys.nodes[st.home]
	for _, g := range grans {
		serve := sys.failoverSite(home.id, owner.id, g)
		if serve == nil {
			// Every copy's site is down, unreachable, or minority-side:
			// the read is unavailable.
			cause := sys.unavailableCause()
			if st.cause == nil {
				st.cause = cause
			}
			st.doomed = true
			return cause
		}
		st.noteFailover(serve)
		st.activeNode = serve.id
		rcosts := sys.cfg.Params.CostsFor(serve.id, kind)
		p.Hold(sys.hop(home.id, serve.id, requestMsgBytes))
		if serve.down || !sys.reachable(home.id, serve.id) {
			// Crashed — or partitioned away — while the request was in
			// flight.
			cause := errSiteCrash
			if !serve.down {
				cause = errPartitioned
			}
			if st.cause == nil {
				st.cause = cause
			}
			st.doomed = true
			return cause
		}
		mustUse(serve, p, func() error { return serve.tmStep(p, rcosts.TMCPU) })
		mustUse(serve, p, func() error { return serve.cpuUse(p, rcosts.DMCPU) })
		lid := sys.replBlock(owner.id, g)
		mustUse(serve, p, func() error { return serve.cpuUse(p, rcosts.LRCPU) })
		if err := u.ccAccess(p, st, serve, lid, lock.Shared); err != nil {
			return err
		}
		if st.doomed {
			return errDeadlockVictim
		}
		mustUse(serve, p, func() error { return serve.cpuUse(p, rcosts.DMIOCPU) })
		if err := u.granuleIO(p, st, serve, g, kind); err != nil {
			return err
		}
		serve.failoverReads.Inc()
		sys.trace(st.gid, kind, serve.id, EvFailoverRead, lid)
		if sys.replQuorum(lock.Shared) {
			if err := u.quorumRead(p, st, serve, owner.id, g); err != nil {
				return err
			}
		}
		p.Hold(sys.hop(serve.id, home.id, responseMsgBytes))
		if st.doomed {
			return errDeadlockVictim
		}
	}
	st.activeNode = st.home
	return nil
}

// quorumRead confirms a shared read against a read quorum of the granule's
// replica set: the serving copy plus version checks at QuorumSize-1 further
// live copies. A version check is a control round trip answered from the
// copy's version map — no data I/O. The read aborts when fewer than a
// quorum of copies are live.
func (u *user) quorumRead(p *sim.Proc, st *txnState, serve *node, owner NodeID, g int) error {
	sys := u.sys
	need := sys.repl.policy.QuorumSize() - 1
	if need <= 0 {
		return nil
	}
	for _, sid := range sys.repl.place.Replicas(int(owner), g) {
		if need == 0 {
			break
		}
		nd := sys.nodes[sid]
		if nd == serve || nd.down || !sys.reachable(serve.id, nd.id) {
			continue
		}
		rcosts := sys.cfg.Params.CostsFor(nd.id, u.spec.Kind)
		p.Hold(sys.hop(serve.id, nd.id, controlMsgBytes))
		if nd.down || !sys.reachable(serve.id, nd.id) {
			continue
		}
		mustUse(nd, p, func() error { return nd.tmStep(p, rcosts.TMCPU) })
		p.Hold(sys.hop(nd.id, serve.id, controlMsgBytes))
		serve.quorumReads.Inc()
		need--
	}
	if need > 0 {
		// Fewer than a quorum of copies are reachable.
		cause := sys.unavailableCause()
		if st.cause == nil {
			st.cause = cause
		}
		st.doomed = true
		return cause
	}
	return nil
}

// unavailableCause attributes an unavailability abort: to the partition
// while one is in effect, to a crash otherwise.
func (s *System) unavailableCause() error {
	if s.faults != nil && s.faults.part.Active() {
		return errPartitioned
	}
	return errSiteCrash
}

// releaseReplicaReads releases the shared locks failed-over reads took at
// replica sites that are not otherwise participants. Called on both the
// commit and the abort path; a serving site that crashed since lost the
// locks with its volatile state.
func (u *user) releaseReplicaReads(p *sim.Proc, st *txnState) {
	if len(st.failoverNodes) == 0 {
		return
	}
	sys := u.sys
	home := sys.nodes[st.home]
	for _, fs := range st.failoverNodes {
		if fs.down {
			continue
		}
		if !sys.reachable(home.id, fs.id) {
			// The release cannot be delivered: the serving site drops the
			// read locks itself at the heal.
			sys.queueTermination(fs.id, st.gid, true)
			continue
		}
		costs := sys.cfg.Params.CostsFor(fs.id, u.spec.Kind)
		p.Hold(sys.hop(home.id, fs.id, controlMsgBytes))
		if fs.down {
			continue
		}
		if !sys.reachable(home.id, fs.id) {
			sys.queueTermination(fs.id, st.gid, true)
			continue
		}
		mustUse(fs, p, func() error { return fs.cpuUse(p, costs.UnlockCPU) })
		fs.releaseTxn(st.gid)
		sys.trace(st.gid, u.spec.Kind, fs.id, EvRelease, -1)
	}
}
