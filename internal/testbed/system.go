package testbed

import (
	"errors"
	"fmt"

	"carat/internal/cc"
	"carat/internal/comm"
	"carat/internal/placement"
	"carat/internal/probe"
	"carat/internal/rng"
	"carat/internal/sim"
	"carat/internal/storage"
)

// errDeadlockVictim is the interrupt cause delivered to a transaction
// chosen as a (local or global) deadlock victim while it waits for a lock.
var errDeadlockVictim = errors.New("testbed: deadlock victim")

// errValidation dooms a transaction that failed OCC backward validation
// at commit (CCOCC runs only); it rolls back and resubmits under
// CauseValidation.
var errValidation = errors.New("testbed: validation conflict")

// txnState is the system-wide registry entry for one in-flight transaction,
// used by global deadlock detection to locate and kill victims.
type txnState struct {
	gid        int64
	kind       TxnKind
	home       NodeID
	activeNode NodeID
	proc       *sim.Proc
	doomed     bool
	finished   bool
	// parked is true exactly while the transaction's process is blocked in
	// a lock wait; global deadlock victims are only killed in that state
	// (a probe that arrives after its victim was granted the lock is
	// stale: the cycle it observed no longer exists).
	parked bool
	// committing is true from TEND processing onward: past that point the
	// transaction may no longer be wounded or killed (under 2PL it holds
	// every lock it needs, so it cannot be on any deadlock cycle).
	committing bool
	// cause records why the transaction was doomed (deadlock, site crash,
	// timeout) for the aborts-by-cause accounting. Nil until doomed.
	cause error
	// parts lists the participant sites (home first); populated only when a
	// fault plan is active, for crash dooming.
	parts []NodeID
	// replWrites lists the granules this transaction wrote, deduplicated,
	// for post-commit replica propagation (replication runs only).
	replWrites []replWrite
	// failoverNodes lists replica sites serving failed-over reads that do
	// not release this transaction's locks through the normal protocol, for
	// end-of-transaction lock release.
	failoverNodes []*node
	// protoHeld lists the sites whose DMs this submission allocated — the
	// sites the commit/abort protocol itself releases locks at (replication
	// runs only; mirrors attempt's dmHeld).
	protoHeld []*node
}

// replWrite identifies one written granule by its owning site.
type replWrite struct {
	owner   NodeID
	granule int
}

// System is a complete simulated CARAT installation.
type System struct {
	cfg    Config
	env    *sim.Env
	nodes  []*node
	rnd    *rng.Rand
	ccCaps cc.Capabilities // capability flags of the configured CC paradigm
	// ccSlots bounds concurrent submissions under deterministic execution
	// (nil otherwise). A QueCC claim-wait parks while holding its DM
	// servers, so unbounded admission can wedge: every DM server held by a
	// parked younger transaction while the older transaction its claims
	// wait for starves in the DM queue — a cycle through the DM pool the
	// claim layer's gid-order acyclicity cannot see. Capping admitted
	// transactions at the smallest site's DM pool guarantees an admitted
	// transaction always obtains its DM servers, so every wait is a claim
	// wait and the younger-waits-for-older argument covers the whole
	// system. This is QueCC's plan-then-execute shape: the planner hands
	// batches to a fixed set of execution queues, never more work in
	// flight than executors.
	ccSlots *sim.Resource

	txnSeq   int64
	reg      map[int64]*txnState
	users    []*user
	netBytes int64 // inter-site payload bytes, for load-aware delay models

	// Data-directory placement state (nil unless Config.Placement is set).
	placement *placementState

	// Shared-fabric accounting (nil unless the network is an Ethernet with
	// Hosts > 0, i.e. a scale-out fabric rather than the legacy model).
	fabric *fabricStats

	// Replication state (nil unless Config.Replication is active).
	repl *replState

	// Open-arrival state (nil unless Config.Open is active).
	open *openState

	// Fault injection state (nil without an active FaultPlan).
	faults        *faultState
	downCount     int     // sites currently down
	degradedSince float64 // when downCount last rose from zero
	degradedMS    float64 // accumulated time with at least one site down
}

// placementState is the resolved data directory of one run: the directory
// itself, the fleet's global record space, and the anchor machinery that
// scatters requests across it.
type placementState struct {
	dir      placement.Directory
	global   storage.Layout  // per-site layout scaled by the site count
	affinity float64         // locality strategy: fraction pinned to the home shard
	pat      storage.Pattern // anchor-record pattern over the global space
}

// fabricStats accumulates the shared Ethernet fabric's queueing-center
// measurements over the measurement window.
type fabricStats struct {
	eth       comm.Ethernet
	msgs      int64   // inter-site messages routed through the fabric
	bytes     int64   // payload bytes carried
	busyMS    float64 // wire occupancy: summed raw transmission time
	inflateMS float64 // summed contention-interval inflation
	queueMS   float64 // summed M/D/1 channel queueing delay
}

// account charges one inter-site message against the fabric.
func (f *fabricStats) account(bytes int, util float64) {
	raw, infl, queue := f.eth.Breakdown(bytes, util)
	f.msgs++
	f.bytes += int64(bytes)
	f.busyMS += raw
	f.inflateMS += infl
	f.queueMS += queue
}

// New builds a system from the configuration (validating it first).
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys := &System{
		cfg:    cfg,
		env:    sim.NewEnv(),
		rnd:    rng.New(cfg.Seed),
		reg:    make(map[int64]*txnState),
		ccCaps: cfg.Concurrency.paradigm().Capabilities(),
	}
	if pc := cfg.Placement; pc != nil {
		dir, err := placement.NewDirectory(pc.Strategy, len(cfg.Nodes), cfg.Layout.Granules)
		if err != nil {
			return nil, fmt.Errorf("testbed: %w", err)
		}
		sys.placement = &placementState{
			dir:      dir,
			global:   cfg.Layout.Scale(len(cfg.Nodes)),
			affinity: pc.Affinity,
			pat:      pc.Pattern,
		}
	}
	if e, ok := cfg.Network.(comm.Ethernet); ok && e.Hosts > 0 {
		sys.fabric = &fabricStats{eth: e}
	}
	for i := range cfg.Nodes {
		sys.nodes = append(sys.nodes, newNode(sys, NodeID(i), cfg.Nodes[i], cfg.Layout, sys.rnd.Split(uint64(i))))
	}
	if sys.ccCaps.Deterministic {
		slots := cfg.Nodes[0].DMServers
		for _, nc := range cfg.Nodes[1:] {
			if nc.DMServers < slots {
				slots = nc.DMServers
			}
		}
		sys.ccSlots = sim.NewResource(sys.env, "cc-slots", slots)
	}
	if cfg.Faults.Active() {
		sys.initFaults(*cfg.Faults)
	}
	if cfg.Replication.Active() {
		sys.initRepl()
	}
	for i, spec := range cfg.Users {
		u := &user{
			sys:  sys,
			spec: spec,
			id:   i,
			rnd:  sys.rnd.Split(uint64(10000 + i)),
			// A dedicated backoff stream (Split is pure, so carving it out
			// perturbs nothing) keeps retry jitter from shifting the
			// workload's draws.
			backoffRnd: sys.rnd.Split(uint64(20000 + i)),
		}
		sys.users = append(sys.users, u)
		sys.env.Spawn(fmt.Sprintf("user-%d-%v", i, spec.Kind), u.run)
	}
	if cfg.Open.Active() {
		sys.initOpen()
	}
	return sys, nil
}

// Env exposes the simulation environment (tests and tracing).
func (s *System) Env() *sim.Env { return s.env }

// Run executes the configured warmup and measurement window and returns
// the collected results. The simulation is torn down before returning:
// stopping the clock at cfg.Duration parks every user process mid-flight,
// and each parked process is a goroutine that would otherwise be blocked
// forever — across a replicated sweep those leaks compound into thousands
// of dead goroutines. The teardown models a crash: journal, store and the
// in-flight transaction registry stay frozen for CrashRecover.
func (s *System) Run() Results {
	warmEnd := 0.0
	if s.cfg.Warmup > 0 {
		warmEnd = s.env.Run(s.cfg.Warmup)
	}
	s.resetStats(warmEnd)
	// Measure through the time the simulation actually stopped: the
	// configured horizon, or earlier if the event queue drained first (for
	// example when every user is wedged in the lock-thrashing regime) —
	// rates are taken over the interval in which activity was possible.
	stop := s.env.Run(s.cfg.Duration)
	res := s.collect(stop)
	s.env.Shutdown()
	return res
}

// resetStats truncates all statistics at time t (end of warmup).
func (s *System) resetStats(t float64) {
	for _, n := range s.nodes {
		n.resetStats(t)
	}
	s.degradedMS = 0
	if s.downCount > 0 {
		s.degradedSince = t
	}
	if f := s.fabric; f != nil {
		*f = fabricStats{eth: f.eth}
	}
	if f := s.faults; f != nil {
		f.partitions = 0
		f.partitionMS = 0
		if f.part.Active() {
			f.partitionSince = t
		}
	}
}

// nextTxnID allocates a global transaction id.
func (s *System) nextTxnID() int64 {
	s.txnSeq++
	return s.txnSeq
}

// hop returns the one-way network delay for a message of the given size and
// counts it against both endpoints. For a load-aware model (the Ethernet of
// [ALME79]) the current channel utilization is estimated from the bytes
// sent so far.
func (s *System) hop(from, to NodeID, bytes int) float64 {
	s.nodes[from].msgs.Inc()
	s.nodes[to].msgs.Inc()
	if from == to {
		return 0
	}
	s.netBytes += int64(bytes)
	util := 0.0
	if e, ok := s.cfg.Network.(comm.Ethernet); ok && s.env.Now() > 0 {
		util = float64(s.netBytes) * 8 / s.env.Now() / e.BandwidthBitsPerMS
		if util > 0.95 {
			util = 0.95
		}
	}
	d := s.cfg.Network.Delay(bytes, util)
	if s.fabric != nil {
		s.fabric.account(bytes, util)
		s.trace(-1, KindNone, from, EvNetHop, int(to))
	}
	if s.faults != nil {
		d += s.msgPenalty(from)
	}
	return d
}

// sendProbes delivers probe messages to their destination detectors after
// the network delay, recursing on any forwards. Detection kills the victim.
func (s *System) sendProbes(from NodeID, probes []probe.Probe) {
	for _, pr := range probes {
		pr := pr
		if s.faults != nil && NodeID(pr.Dest) != from {
			// The partition check comes first so a severed link consumes no
			// probe-loss draws: the loss stream stays aligned with the
			// no-partition run.
			if !s.reachable(from, NodeID(pr.Dest)) {
				s.nodes[from].probesLost.Inc()
				continue
			}
			if s.dropProbe(from) {
				continue
			}
		}
		d := s.hop(from, NodeID(pr.Dest), probeMsgBytes)
		deliver := func() {
			dest := s.nodes[pr.Dest]
			fwd, victim, found := dest.detector.Receive(pr)
			if found {
				dest.globalDead.Inc()
				s.killTxn(int64(victim))
			}
			s.sendProbes(NodeID(pr.Dest), fwd)
		}
		if d <= 0 {
			// Still defer through the event queue so detector state
			// mutations never interleave with a running process.
			s.env.After(0, deliver)
		} else {
			s.env.After(d, deliver)
		}
	}
}

// killTxn aborts a deadlock victim. Victims are interrupted only while
// parked in a lock wait; a kill arriving in any other state is treated as
// stale (the wait edge that formed the cycle is gone) and ignored.
func (s *System) killTxn(gid int64) {
	st, ok := s.reg[gid]
	if !ok || st.finished || st.doomed || !st.parked {
		return
	}
	st.doomed = true
	st.cause = errDeadlockVictim
	st.proc.Interrupt(errDeadlockVictim)
}

// woundTxn aborts a wound-wait victim. Unlike deadlock victims, a wounded
// transaction may be actively executing: it is doomed immediately, and
// interrupted only if it is parked in a lock wait (any other blocking —
// CPU queue, disk queue, commit fan-out — runs to completion and the doom
// is noticed at the next phase boundary). A transaction past its commit
// point is spared — it holds everything it needs and will release shortly.
func (s *System) woundTxn(gid int64) {
	st, ok := s.reg[gid]
	if !ok || st.finished || st.doomed || st.committing {
		return
	}
	st.doomed = true
	st.cause = errDeadlockVictim
	if st.parked {
		st.proc.Interrupt(errDeadlockVictim)
	}
}

// Message size constants (bytes) used for network delay and accounting.
// Request/response messages carry parameters or one response set; protocol
// messages are small. Sizes only matter when a non-zero DelayModel is
// configured.
const (
	requestMsgBytes  = 256
	responseMsgBytes = 512
	controlMsgBytes  = 64
	probeMsgBytes    = 32
)
