package testbed

import "fmt"

// TraceKind tags protocol events emitted by the simulator when a Trace
// callback is configured. The event stream makes protocol-order properties
// (strict two-phase locking, two-phase commit sequencing, rollback before
// release) directly checkable — the testbed's equivalent of CARAT's
// instrumentation.
type TraceKind int

const (
	// EvBegin marks a transaction submission (one per attempt).
	EvBegin TraceKind = iota
	// EvLockWait marks a lock request blocking.
	EvLockWait
	// EvLockGrant marks a lock acquired (immediately or after a wait).
	EvLockGrant
	// EvDeadlock marks the transaction's selection as a deadlock victim.
	EvDeadlock
	// EvRollback marks the start of undo at a node.
	EvRollback
	// EvPrepareAck marks a slave's acknowledgment of PREPARE.
	EvPrepareAck
	// EvForceCommit marks the coordinator's force-written commit record —
	// the commit point.
	EvForceCommit
	// EvSlaveCommit marks a slave processing the COMMIT message.
	EvSlaveCommit
	// EvRelease marks a node releasing all of the transaction's locks.
	EvRelease
	// EvCommitted marks successful completion of the attempt.
	EvCommitted
	// EvAborted marks the end of the abort path for the attempt.
	EvAborted
	// EvCrash marks a site crash (fault injection; Txn is -1).
	EvCrash
	// EvRestart marks a site completing restart recovery and rejoining
	// (fault injection; Txn is -1).
	EvRestart
	// EvTimeoutAbort marks a transaction doomed by a lock-wait or 2PC
	// prepare timeout (fault injection).
	EvTimeoutAbort
	// EvAbandon marks a transaction giving up after exhausting its retry
	// budget (resilience; Txn is the last aborted submission's gid).
	EvAbandon
	// EvShed marks an arrival rejected by the admission gate (resilience;
	// Txn is -1: no submission was created).
	EvShed
	// EvReprobe marks a blocked transaction re-initiating its deadlock
	// probes (resilience).
	EvReprobe
	// EvRetryBackoff marks a user waiting out the exponential retry backoff
	// before resubmitting an aborted transaction (resilience; Txn is the
	// aborted submission's gid).
	EvRetryBackoff
	// EvFailoverRead marks a read of a down site's granule served at a
	// surviving replica (replication; Granule is the replica block id).
	EvFailoverRead
	// EvReplicaApply marks a committed writer's update applied at a replica
	// site (replication; Granule is the replica block id).
	EvReplicaApply
	// EvArrival marks an open-mode transaction arriving at its home site
	// (open arrivals; no submission exists yet, so Txn is the negated
	// arrival sequence number).
	EvArrival
	// EvPartition marks a network partition taking effect: one event per
	// affected site (fault injection; Txn is -1, Node is the site, Granule
	// is its partition-group index).
	EvPartition
	// EvPartitionHeal marks the partition healing (fault injection; Txn is
	// -1, Node and Granule are -1).
	EvPartitionHeal
	// EvSuspect marks the failure detector at one site starting to suspect
	// another (health; Txn is -1, Node is the observer, Granule is the
	// suspected site).
	EvSuspect
	// EvTrust marks the failure detector at one site trusting another again
	// (health; Txn is -1, Node is the observer, Granule is the trusted site).
	EvTrust
	// EvValidationAbort marks a transaction failing OCC backward validation
	// at the named site (CCOCC only).
	EvValidationAbort
	// EvNetHop marks one inter-site message routed through the shared
	// Ethernet fabric (scale-out fabric runs only; Txn is -1, Node is the
	// sender, Granule is the destination site). New kinds append here: the
	// numeric values feed the kernel-equivalence trace hashes.
	EvNetHop
)

var traceNames = map[TraceKind]string{
	EvBegin:           "begin",
	EvLockWait:        "lock-wait",
	EvLockGrant:       "lock-grant",
	EvDeadlock:        "deadlock-victim",
	EvRollback:        "rollback",
	EvPrepareAck:      "prepare-ack",
	EvForceCommit:     "force-commit-record",
	EvSlaveCommit:     "slave-commit",
	EvRelease:         "release-locks",
	EvCommitted:       "committed",
	EvAborted:         "aborted",
	EvCrash:           "crash",
	EvRestart:         "restart",
	EvTimeoutAbort:    "timeout-abort",
	EvAbandon:         "abandon",
	EvShed:            "admission-shed",
	EvReprobe:         "probe-retransmit",
	EvRetryBackoff:    "retry-backoff",
	EvFailoverRead:    "failover-read",
	EvReplicaApply:    "replica-apply",
	EvArrival:         "arrival",
	EvPartition:       "partition",
	EvPartitionHeal:   "partition-heal",
	EvSuspect:         "suspect",
	EvTrust:           "trust",
	EvValidationAbort: "validation-abort",
	EvNetHop:          "net-hop",
}

// String names the event.
func (k TraceKind) String() string {
	if s, ok := traceNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TraceKind(%d)", int(k))
}

// TraceEvent is one protocol event.
type TraceEvent struct {
	T       float64 // simulation time, ms
	Txn     int64   // global transaction id (one per attempt)
	Kind    TxnKind
	Node    NodeID
	Ev      TraceKind
	Granule int // lock events only; -1 otherwise
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("%10.1f txn=%d %v node=%d %v g=%d", e.T, e.Txn, e.Kind, e.Node, e.Ev, e.Granule)
}

// trace emits an event if tracing is configured.
func (s *System) trace(txn int64, kind TxnKind, node NodeID, ev TraceKind, granule int) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace(TraceEvent{T: s.env.Now(), Txn: txn, Kind: kind, Node: node, Ev: ev, Granule: granule})
}
