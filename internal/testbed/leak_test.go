package testbed

import (
	"runtime"
	"testing"
	"time"
)

// TestRunLeavesNoGoroutines is the regression test for the goroutine leak:
// System.Run used to return with every user/transaction process still
// parked on its resume channel, so each completed run pinned its whole
// process population forever. Run now shuts the simulation environment
// down, so repeated runs must return the process count to baseline.
func TestRunLeavesNoGoroutines(t *testing.T) {
	cfg := twoNodeConfig(mb4Users(), 8, 7)
	cfg.Warmup = 10_000
	cfg.Duration = 60_000

	// Warm up once so lazy runtime goroutines don't count against us.
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()

	baseline := settledGoroutines()
	const runs = 20
	for i := 0; i < runs; i++ {
		cfg.Seed = uint64(100 + i)
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run()
	}
	after := settledGoroutines()
	// Each leaked run pinned dozens of goroutines (users, transactions,
	// servers), so any real regression blows well past this slack.
	if after > baseline+5 {
		t.Fatalf("goroutines grew from %d to %d over %d runs: System.Run leaks simulation processes",
			baseline, after, runs)
	}
}

// settledGoroutines samples runtime.NumGoroutine after letting exiting
// goroutines finish their teardown.
func settledGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		runtime.GC()
		time.Sleep(time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}
