package testbed

import (
	"fmt"

	"carat/internal/cc"
	"carat/internal/cc/occ"
	"carat/internal/cc/quecc"
	"carat/internal/disk"
	"carat/internal/lock"
	"carat/internal/probe"
	"carat/internal/rng"
	"carat/internal/sim"
	"carat/internal/stats"
	"carat/internal/storage"
	"carat/internal/tso"
	"carat/internal/wal"
)

// node is one CARAT site: a CPU, a database disk (optionally a separate
// log disk), the TM server (a serialization point), a DM server pool, and
// the site-local protocol state (lock table, journal, probe detector).
type node struct {
	id  NodeID
	sys *System

	cpu    *sim.Resource
	tm     *sim.Resource // the single TM server: one critical section per message
	dmPool *sim.Resource
	// dbDisks holds the database device(s); block g lives on stripe
	// g mod len(dbDisks). The paper's configuration has one.
	dbDisks []*disk.Device
	logDisk *disk.Device // == dbDisks[0] when the log shares the database disk

	// ccp is the site's concurrency-control engine behind the cc.Protocol
	// interface; the typed fields below expose the one concrete engine the
	// configured paradigm uses (the others stay nil). locks also feeds the
	// probe detector's waits-for edges; detector — and with it every probe
	// message — exists only under 2PL with deadlock detection, the one
	// paradigm whose waits can cycle.
	ccp      cc.Protocol
	locks    *lock.Manager    // 2PL family
	tso      *tso.Manager     // basic TO
	occv     *occ.Manager     // OCC
	qcc      *quecc.Scheduler // QueCC
	journal  *wal.Log
	store    *storage.Store
	detector *probe.Detector

	// grantEv maps a transaction blocked in a concurrency-control wait at
	// this site to the event its process parks on; the engine's grant
	// callback triggers it.
	grantEv map[int64]*sim.Event

	// Fault state: down is true from a crash until its restart recovery
	// completes; upEv (non-nil only while down) releases users parked on
	// the restart.
	down      bool
	downSince float64
	upEv      *sim.Event

	// Measurement state.
	commitRate  map[TxnKind]*stats.WindowedRate // non-nil after warmup
	commits     map[TxnKind]*stats.Counter
	recordsDone map[TxnKind]*stats.Counter
	respTime    map[TxnKind]*stats.Tally
	respHist    map[TxnKind]*stats.Histogram
	submissions map[TxnKind]*stats.Counter
	lockWaits   stats.Tally
	deadlocks   stats.Counter
	globalDead  stats.Counter
	msgs        stats.Counter

	// Availability measurement state (fault-injection runs).
	crashes         stats.Counter
	crashAborts     stats.Counter // aborts of txns homed here caused by a participant crash
	timeoutAborts   stats.Counter // aborts of txns homed here caused by lock/prepare timeouts
	inDoubtCommit   stats.Counter // in-doubt branches resolved to commit at restart
	inDoubtAbort    stats.Counter // in-doubt branches resolved to abort at restart
	msgsLost        stats.Counter // messages lost (and retransmitted) leaving this node
	degradedCommits stats.Counter // commits recorded here while some site was down
	downtimeMS      float64

	// Gray-failure state: grayCPU > 1 stretches every CPU service time at
	// this site (disk degradation lives on the devices); grayActive/graySince
	// track the degradation clock for GrayMS.
	grayCPU    float64
	grayActive bool
	graySince  float64
	grayMS     float64

	// Partition/health measurement state (partition-configured runs only).
	partitionAborts stats.Counter // aborts of txns homed here caused by an unreachable participant
	partitionShed   stats.Counter // submissions blocked pre-begin by partition or suspicion
	suspectEvents   stats.Counter // suspicion transitions raised by this site's detector

	// Resilience measurement state (txns homed here).
	retried         [numAbortCauses]stats.Counter // aborted submissions that were resubmitted
	abandoned       [numAbortCauses]stats.Counter // transactions that exhausted the retry budget
	shedArrivals    stats.Counter                 // arrivals rejected by the admission gate
	delayedArrivals stats.Counter                 // arrivals queued by the admission gate
	admitWait       stats.Tally                   // queueing delay at the admission gate (ms)
	probesLost      stats.Counter                 // deadlock probes dropped leaving this node
	probesResent    stats.Counter                 // probe rounds re-initiated for blocked txns
	validationFails stats.Counter                 // OCC validation conflicts detected here

	// Replication state (replication runs only): replVersion maps a replica
	// block (see replBlock) held at this site to the last committed writer
	// applied to it. Volatile — wiped at a crash and rebuilt at restart from
	// the durable replica-apply records.
	replVersion map[int]int64

	// Replication measurement state.
	failoverReads  stats.Counter // failed-over reads served at this site
	replicaApplies stats.Counter // replica applies journaled here (incl. catch-up)
	quorumReads    stats.Counter // quorum confirmations for reads served here

	// Open-arrival measurement state (open-mode runs only).
	openArrivals stats.Counter      // arrivals offered at this site
	openInSystem stats.TimeWeighted // open transactions concurrently resident here

	// Admission gate state: the currently admitted submission count, its
	// high-water mark, the FIFO of parked arrivals, and the trailing abort
	// timestamps behind the abort-rate trigger.
	admitted     int
	peakMPL      int
	admitQ       []*sim.Event
	recentAborts []float64
}

func newNode(sys *System, id NodeID, cfg NodeConfig, layout storage.Layout, r *rng.Rand) *node {
	n := &node{
		id:          id,
		sys:         sys,
		cpu:         sim.NewResource(sys.env, fmt.Sprintf("cpu-%d", id), cfg.CPUs),
		tm:          sim.NewResource(sys.env, fmt.Sprintf("tm-%d", id), 1),
		dmPool:      sim.NewResource(sys.env, fmt.Sprintf("dm-%d", id), cfg.DMServers),
		store:       storage.NewStore(layout),
		journal:     wal.NewLog(),
		grantEv:     make(map[int64]*sim.Event),
		commits:     make(map[TxnKind]*stats.Counter),
		recordsDone: make(map[TxnKind]*stats.Counter),
		respTime:    make(map[TxnKind]*stats.Tally),
		respHist:    make(map[TxnKind]*stats.Histogram),
		submissions: make(map[TxnKind]*stats.Counter),
		replVersion: make(map[int]int64),
	}
	for s := 0; s < cfg.DBDiskStripes; s++ {
		n.dbDisks = append(n.dbDisks, disk.New(sys.env,
			fmt.Sprintf("dbdisk-%d.%d", id, s), cfg.DBDisk, r.Split(uint64(1000+100*s+int(id)))))
	}
	if cfg.LogDisk != nil {
		n.logDisk = disk.New(sys.env, fmt.Sprintf("logdisk-%d", id), cfg.LogDisk, r.Split(uint64(2000+id)))
	} else {
		n.logDisk = n.dbDisks[0]
	}
	n.initCC()
	for _, k := range []TxnKind{LRO, LU, DRO, DU} {
		n.commits[k] = &stats.Counter{}
		n.recordsDone[k] = &stats.Counter{}
		n.respTime[k] = &stats.Tally{}
		n.respHist[k] = stats.NewHistogram(1, 1.05) // ms buckets, ~5% error
		n.submissions[k] = &stats.Counter{}
	}
	return n
}

// lockDiscipline maps the configured concurrency protocol to the lock
// manager's discipline.
func (s *System) lockDiscipline() lock.Discipline {
	switch s.cfg.Concurrency {
	case CCWaitDie:
		return lock.WaitDie
	case CCWoundWait:
		return lock.WoundWait
	default:
		return lock.Detect
	}
}

// initCC builds the site's concurrency-control engine for the configured
// paradigm. Only the machinery the paradigm needs exists: the Chandy–Misra
// probe detector is allocated solely under 2PL with deadlock detection —
// the one paradigm whose waits-for graph can cycle — so prevention, TO,
// OCC and QueCC runs carry no probe state at all.
func (n *node) initCC() {
	n.ccp, n.locks, n.tso, n.occv, n.qcc, n.detector = nil, nil, nil, nil, nil, nil
	switch n.sys.cfg.Concurrency {
	case CCTimestamp:
		n.tso = tso.NewManager()
		n.ccp = cc.ForTimestampManager(n.tso)
	case CCOCC:
		n.occv = occ.NewManager()
		n.ccp = n.occv
	case CCQueCC:
		n.qcc = quecc.NewScheduler(func(txn cc.TxnID) { n.wake(int64(txn)) })
		n.ccp = n.qcc
	default:
		n.locks = lock.NewManagerWithDiscipline(n.sys.lockDiscipline(), lock.VictimRequester, n.onGrant)
		n.ccp = cc.ForLockManager(n.locks, n.sys.cfg.Concurrency.paradigm())
		if n.sys.cfg.Concurrency == CC2PL {
			n.detector = probe.NewDetector(probe.SiteID(n.id), (*probeHost)(n))
		}
	}
}

// wipeVolatile models the loss of the site's volatile memory at a crash:
// the concurrency-control engine (lock table, timestamp bookkeeping,
// validation sets or execution queues), probe detector state and pending
// grants are gone. The journal and store survive (stable storage).
func (n *node) wipeVolatile() {
	n.initCC()
	n.grantEv = make(map[int64]*sim.Event)
	n.replVersion = make(map[int]int64)
}

// onGrant adapts the lock manager's grant callback to wake.
func (n *node) onGrant(txn lock.TxnID, _ lock.GranuleID) {
	n.wake(int64(txn))
}

// wake releases the process parked on a concurrency-control wait at this
// site, if one is still parked.
func (n *node) wake(gid int64) {
	if ev, ok := n.grantEv[gid]; ok {
		delete(n.grantEv, gid)
		ev.Trigger(nil)
	}
}

// cpuUse charges one CPU burst at this site, stretched by the gray-failure
// factor while a degradation window is in effect. With no factor set the
// time passes through bit-exact.
func (n *node) cpuUse(p *sim.Proc, t float64) error {
	if n.grayCPU > 1 {
		t *= n.grayCPU
	}
	return n.cpu.Use(p, t)
}

// tmStep models one TM server message-processing step: the TM is a critical
// section (Section 5.5) whose body is a burst of CPU time.
func (n *node) tmStep(p *sim.Proc, cpuTime float64) error {
	if err := n.tm.Acquire(p); err != nil {
		return err
	}
	err := n.cpuUse(p, cpuTime)
	n.tm.Release()
	return err
}

// recordCommit counts one committed transaction of the kind at time t,
// feeding both the plain counter and the batch-means rate estimator.
func (n *node) recordCommit(k TxnKind, t float64) {
	n.commits[k].Inc()
	if wr, ok := n.commitRate[k]; ok {
		wr.Add(t)
	}
	if n.sys.downCount > 0 {
		n.degradedCommits.Inc()
	}
}

// dbDiskFor returns the stripe holding block g.
func (n *node) dbDiskFor(g int) *disk.Device {
	return n.dbDisks[g%len(n.dbDisks)]
}

// releaseTxn drops the transaction's concurrency-control state at this
// site: locks (2PL family), TO bookkeeping, OCC read/write sets or QueCC
// queue claims, depending on the configured engine.
func (n *node) releaseTxn(gid int64) {
	n.ccp.Finish(cc.TxnID(gid))
}

// separateLog reports whether the log has its own device.
func (n *node) separateLog() bool { return n.logDisk != n.dbDisks[0] }

// totalDIO returns the combined database+log I/O count.
func (n *node) totalDIO() int64 {
	var total int64
	for _, d := range n.dbDisks {
		r, w, l := d.Counts()
		total += r + w + l
	}
	if n.separateLog() {
		r2, w2, l2 := n.logDisk.Counts()
		total += r2 + w2 + l2
	}
	return total
}

// resetStats truncates every measurement window at time t (end of warmup).
func (n *node) resetStats(t float64) {
	n.cpu.ResetStats(t)
	n.tm.ResetStats(t)
	n.dmPool.ResetStats(t)
	for _, d := range n.dbDisks {
		d.ResetStats(t)
	}
	if n.separateLog() {
		n.logDisk.ResetStats(t)
	}
	window := (n.sys.cfg.Duration - n.sys.cfg.Warmup) / 20
	for _, k := range []TxnKind{LRO, LU, DRO, DU} {
		if window > 0 {
			if n.commitRate == nil {
				n.commitRate = make(map[TxnKind]*stats.WindowedRate)
			}
			n.commitRate[k] = stats.NewWindowedRate(window, t)
		}
		n.commits[k].ResetAt(t)
		n.recordsDone[k].ResetAt(t)
		n.respTime[k].Reset()
		n.respHist[k].Reset()
		n.submissions[k].ResetAt(t)
	}
	n.lockWaits.Reset()
	n.deadlocks.ResetAt(t)
	n.globalDead.ResetAt(t)
	n.msgs.ResetAt(t)
	n.crashes.ResetAt(t)
	n.crashAborts.ResetAt(t)
	n.timeoutAborts.ResetAt(t)
	n.inDoubtCommit.ResetAt(t)
	n.inDoubtAbort.ResetAt(t)
	n.msgsLost.ResetAt(t)
	n.degradedCommits.ResetAt(t)
	n.downtimeMS = 0
	if n.down {
		n.downSince = t
	}
	n.grayMS = 0
	if n.grayActive {
		n.graySince = t
	}
	n.partitionAborts.ResetAt(t)
	n.partitionShed.ResetAt(t)
	n.suspectEvents.ResetAt(t)
	for c := range n.retried {
		n.retried[c].ResetAt(t)
		n.abandoned[c].ResetAt(t)
	}
	n.shedArrivals.ResetAt(t)
	n.delayedArrivals.ResetAt(t)
	n.admitWait.Reset()
	n.probesLost.ResetAt(t)
	n.probesResent.ResetAt(t)
	n.validationFails.ResetAt(t)
	n.failoverReads.ResetAt(t)
	n.replicaApplies.ResetAt(t)
	n.quorumReads.ResetAt(t)
	n.openArrivals.ResetAt(t)
	n.openInSystem.ResetAt(t)
	n.peakMPL = n.admitted
}

// probeHost adapts a node to the probe.Host interface.
type probeHost node

// WaitsFor implements probe.Host using the site lock manager. Transaction
// ids are global, so lock.TxnID converts directly.
func (h *probeHost) WaitsFor(t probe.TxnID) []probe.TxnID {
	deps := (*node)(h).locks.WaitsFor(lock.TxnID(t))
	out := make([]probe.TxnID, len(deps))
	for i, d := range deps {
		out[i] = probe.TxnID(d)
	}
	return out
}

// ActiveSite implements probe.Host from the system-wide registry.
func (h *probeHost) ActiveSite(t probe.TxnID) (probe.SiteID, bool) {
	st, ok := (*node)(h).sys.reg[int64(t)]
	if !ok || st.finished {
		return 0, false
	}
	return probe.SiteID(st.activeNode), true
}
