package testbed

import "carat/internal/health"

// healthClock adapts the simulation environment to health.Clock so the
// detector's heartbeat timers run on the simulated clock.
type healthClock struct{ s *System }

func (c healthClock) Now() float64               { return c.s.env.Now() }
func (c healthClock) After(d float64, fn func()) { c.s.env.After(d, fn) }

// healthProbe is the ground-truth oracle the detector's heartbeats sample:
// a heartbeat from sub lands at obs iff both sites are up and the partition
// map allows the pair. The detector's suspicion timeout then turns that
// instantaneous truth into the lag-windowed view a real failure detector
// has — a site is only suspected SuspectAfterMS after its last heartbeat.
type healthProbe struct{ s *System }

func (h healthProbe) Reachable(obs, sub int) bool {
	s := h.s
	return !s.nodes[obs].down && !s.nodes[sub].down && s.reachable(NodeID(obs), NodeID(sub))
}

// initDetector starts the heartbeat failure detector. Only runs on
// partition-configured plans (crash-only and gray-only plans keep the
// pre-detector behavior, bit-exactly). Suspicion transitions are traced and
// counted at the observer.
func (s *System) initDetector() {
	opt := health.Options{
		IntervalMS:     s.faults.plan.HeartbeatIntervalMS,
		SuspectAfterMS: s.faults.plan.SuspectAfterMS,
	}
	s.faults.detector = health.New(len(s.nodes), healthClock{s}, healthProbe{s}, opt,
		func(obs, sub int, suspected bool) {
			if suspected {
				s.nodes[obs].suspectEvents.Inc()
				s.trace(-1, KindNone, NodeID(obs), EvSuspect, sub)
			} else {
				s.trace(-1, KindNone, NodeID(obs), EvTrust, sub)
			}
		})
	s.faults.detector.Start()
}
