package testbed

import (
	"fmt"
	"sort"

	"carat/internal/wal"
)

// Auditor collects the trace of a run and checks hard correctness
// invariants against the system's frozen post-run state — the chaos
// harness's oracle. Install Record as Config.Trace, run the system, then
// call Audit with the System (after Run; its teardown freezes journals,
// stores and the in-flight registry exactly as a crash would).
//
// The invariants:
//
//   - lifecycle: every gid begins exactly once, and no gid both commits
//     and aborts (trace-level 2PC atomicity);
//   - conservation: every begun gid is committed, aborted, or still
//     in flight at drain — no transaction vanishes;
//   - journal atomicity: no gid has a durable commit record at one site
//     and an abort record at another, and a slave-site commit record
//     implies a durable coordinator commit;
//   - durability: every committed gid has a durable commit record at its
//     home site, and is never a restart-recovery loser at any site where
//     it journaled durable before-images (its updates survive replay);
//   - replica agreement (replication runs only): after quiescence every
//     live, caught-up copy of a granule names the same last committed
//     writer.
type Auditor struct {
	events []TraceEvent
}

// NewAuditor creates an empty auditor.
func NewAuditor() *Auditor { return &Auditor{} }

// Record appends one trace event; install it as Config.Trace.
func (a *Auditor) Record(ev TraceEvent) { a.events = append(a.events, ev) }

// Events returns the collected trace.
func (a *Auditor) Events() []TraceEvent { return a.events }

// Audit checks every invariant and returns one message per violation
// (empty means the run was clean).
func (a *Auditor) Audit(sys *System) []string {
	var bad []string
	begun := make(map[int64]int)
	committed := make(map[int64]NodeID) // gid -> home (EvCommitted's node)
	aborted := make(map[int64]bool)
	for _, ev := range a.events {
		switch ev.Ev {
		case EvBegin:
			begun[ev.Txn]++
		case EvCommitted:
			committed[ev.Txn] = ev.Node
		case EvAborted:
			aborted[ev.Txn] = true
		}
	}

	// Lifecycle.
	for gid, n := range begun {
		if n > 1 {
			bad = append(bad, fmt.Sprintf("lifecycle: txn %d began %d times", gid, n))
		}
	}
	for gid := range committed {
		if begun[gid] == 0 {
			bad = append(bad, fmt.Sprintf("lifecycle: txn %d committed without beginning", gid))
		}
		if aborted[gid] {
			bad = append(bad, fmt.Sprintf("atomicity: txn %d both committed and aborted", gid))
		}
	}

	// Conservation: begun = committed + aborted + in-flight-at-drain.
	for gid := range begun {
		if _, ok := committed[gid]; ok {
			continue
		}
		if aborted[gid] {
			continue
		}
		if _, inFlight := sys.reg[gid]; inFlight {
			continue
		}
		bad = append(bad, fmt.Sprintf("conservation: txn %d began but neither finished nor remains in flight", gid))
	}

	// Journal-level checks against each site's frozen log.
	type siteLog struct {
		durableCommit map[int64]bool
		anyCommit     map[int64]bool
		anyAbort      map[int64]bool
		durableLoser  map[int64]bool // durable before-images, no durable resolution or prepare
	}
	logs := make([]siteLog, len(sys.nodes))
	for i, nd := range sys.nodes {
		sl := siteLog{
			durableCommit: make(map[int64]bool),
			anyCommit:     make(map[int64]bool),
			anyAbort:      make(map[int64]bool),
			durableLoser:  make(map[int64]bool),
		}
		flushed := nd.journal.FlushedLSN()
		durablePrepared := make(map[int64]bool)
		durableUndo := make(map[int64]bool)
		for _, r := range nd.journal.Records() {
			durable := r.LSN <= flushed
			switch r.Kind {
			case wal.Commit:
				sl.anyCommit[r.Txn] = true
				if durable {
					sl.durableCommit[r.Txn] = true
				}
			case wal.Abort:
				sl.anyAbort[r.Txn] = true
			case wal.Prepared:
				if durable {
					durablePrepared[r.Txn] = true
				}
			case wal.BeforeImage:
				if durable {
					durableUndo[r.Txn] = true
				}
			}
		}
		for gid := range durableUndo {
			if !sl.durableCommit[gid] && !sl.anyAbort[gid] && !durablePrepared[gid] {
				sl.durableLoser[gid] = true
			}
		}
		logs[i] = sl
	}

	// Journal atomicity across sites.
	gids := make([]int64, 0, len(begun))
	for gid := range begun {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		var durableAt, abortAt []int
		for i := range logs {
			if logs[i].durableCommit[gid] {
				durableAt = append(durableAt, i)
			}
			if logs[i].anyAbort[gid] {
				abortAt = append(abortAt, i)
			}
		}
		if len(durableAt) > 0 && len(abortAt) > 0 {
			bad = append(bad, fmt.Sprintf(
				"atomicity: txn %d has a durable commit record at site(s) %v and an abort record at site(s) %v",
				gid, durableAt, abortAt))
		}
	}

	// Durability of every committed transaction.
	for _, gid := range gids {
		home, ok := committed[gid]
		if !ok {
			continue
		}
		if !logs[home].durableCommit[gid] {
			bad = append(bad, fmt.Sprintf(
				"durability: txn %d committed but has no durable commit record at home site %d", gid, home))
		}
		for i := range logs {
			if NodeID(i) == home {
				continue
			}
			if logs[i].anyCommit[gid] && !logs[home].durableCommit[gid] {
				bad = append(bad, fmt.Sprintf(
					"atomicity: txn %d has a slave commit record at site %d without a durable coordinator commit", gid, i))
			}
			if logs[i].durableLoser[gid] {
				bad = append(bad, fmt.Sprintf(
					"durability: txn %d committed but restart recovery at site %d would undo its updates", gid, i))
			}
		}
	}

	bad = append(bad, a.auditReplicas(sys)...)
	bad = append(bad, a.auditPartitions(sys)...)
	return bad
}

// auditPartitions checks the split-brain reconciliation invariant: once the
// last partition has healed and the drain has had its margin to run, no up
// site may still owe queued cooperative terminations or pending replica
// applies. A run torn down mid-partition (or inside the drain margin) is
// exempt — that state is exactly what the heal would have reconciled.
func (a *Auditor) auditPartitions(sys *System) []string {
	f := sys.faults
	if f == nil || f.part == nil || f.part.Active() {
		return nil
	}
	if sys.env.Now()-f.lastHealT < healDrainMarginMS {
		return nil
	}
	var bad []string
	for i, nd := range sys.nodes {
		if nd.down {
			continue
		}
		if n := len(f.term[NodeID(i)]); n > 0 {
			bad = append(bad, fmt.Sprintf(
				"partition: site %d still owes %d queued terminations after the heal", i, n))
		}
		if sys.repl != nil {
			if n := len(sys.repl.pending[NodeID(i)]); n > 0 {
				bad = append(bad, fmt.Sprintf(
					"partition: site %d still has %d pending replica applies after the heal", i, n))
			}
		}
	}
	return bad
}

// auditReplicas checks the replica-agreement invariant: every live copy of
// a granule names the same last committed writer. Copies at down sites are
// skipped (their version maps are gone and restart recovery has not rebuilt
// them), as are granules whose claimed writer is still in flight — the
// run's teardown can freeze a writer mid-propagation, exactly as a real
// crash would, and its catch-up belongs to a restart that never comes.
func (a *Auditor) auditReplicas(sys *System) []string {
	if sys.repl == nil {
		return nil
	}
	var bad []string
	blocks := make(map[int]bool)
	for _, nd := range sys.nodes {
		if nd.down {
			continue
		}
		for b := range nd.replVersion {
			blocks[b] = true
		}
	}
	sorted := make([]int, 0, len(blocks))
	for b := range blocks {
		sorted = append(sorted, b)
	}
	sort.Ints(sorted)
	granules := sys.cfg.Layout.Granules
	for _, b := range sorted {
		if pendingApplyFor(sys, b) {
			// A catch-up apply for this block is still queued somewhere
			// (teardown froze the run before the restart or heal that would
			// drain it): the copies legitimately disagree.
			continue
		}
		owner := b/granules - 1
		g := b % granules
		want := int64(-1)
		inflight := false
		disagree := false
		var views []string
		for _, sid := range sys.repl.place.Replicas(owner, g) {
			nd := sys.nodes[sid]
			if nd.down {
				continue
			}
			v := nd.replVersion[b]
			if _, fly := sys.reg[v]; fly && v != 0 {
				inflight = true
			}
			if want == -1 {
				want = v
			} else if v != want {
				disagree = true
			}
			views = append(views, fmt.Sprintf("site %d -> txn %d", sid, v))
		}
		if disagree && !inflight {
			bad = append(bad, fmt.Sprintf(
				"replica-divergence: granule %d of site %d: live copies disagree on the last committed writer (%v)",
				g, owner, views))
		}
	}
	return bad
}

// pendingApplyFor reports whether any site still has a queued catch-up
// apply for block b.
func pendingApplyFor(sys *System, b int) bool {
	for _, q := range sys.repl.pending {
		for _, a := range q {
			if a.block == b {
				return true
			}
		}
	}
	return false
}
