package testbed

import (
	"reflect"
	"testing"

	"carat/internal/storage"
)

// crossLockConfig builds the smallest system that can form a global
// deadlock and nothing else: two sites with a single block each, and two
// DU users homed on opposite sites. Every submission wants the block at
// both sites (one local and one remote request), so sooner or later each
// user holds its home block and waits for the other's — a cycle whose two
// edges live at different sites, invisible to local detection. With only
// two users a local (single-site) deadlock is impossible.
func crossLockConfig(seed uint64) Config {
	cfg := twoNodeConfig([]UserSpec{
		{Kind: DU, Home: 0, Remote: 1},
		{Kind: DU, Home: 1, Remote: 0},
	}, 2, seed)
	cfg.Layout = storage.Layout{Granules: 1, RecordsPerGran: 6}
	cfg.Warmup = 0
	cfg.Duration = 60_000
	return cfg
}

// TestProbeRetransmissionRecoversLostProbes is the regression the
// resilience layer exists for: a deadlock whose probes are lost must be
// detected by retransmission well before any lock-wait timeout. The fault
// plan drops every inter-site probe for the first 20 s (a partitioned
// detection channel) and sets a lock-wait timeout far beyond the run, so
// only probes can break the cycle. With ProbeRetryMS set, the blocked
// users keep re-initiating; the first round after the outage gets through
// and the victim aborts within one retry period.
func TestProbeRetransmissionRecoversLostProbes(t *testing.T) {
	const outage = 20_000.0
	cfg := crossLockConfig(42)
	cfg.Faults = &FaultPlan{
		ProbeLossUntilMS:  outage,
		LockWaitTimeoutMS: 300_000, // never fires within the run
	}
	cfg.Resilience = Resilience{ProbeRetryMS: 500}
	var firstDeadlock float64 = -1
	lastCommit := -1.0
	cfg.Trace = func(ev TraceEvent) {
		switch ev.Ev {
		case EvDeadlock:
			if firstDeadlock < 0 {
				firstDeadlock = ev.T
			}
		case EvCommitted:
			lastCommit = ev.T
		}
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()

	var deadlocks, commits, resent, lost, timeouts int64
	for _, nd := range res.Nodes {
		deadlocks += nd.GlobalDeadlocks + nd.LocalDeadlocks
		for _, c := range nd.Commits {
			commits += c
		}
		resent += nd.ProbesResent
		lost += nd.ProbesLost
		timeouts += nd.TimeoutAborts
	}
	if deadlocks < 1 {
		t.Fatalf("no deadlock victim despite retransmission (first EvDeadlock at %v)", firstDeadlock)
	}
	if firstDeadlock < outage || firstDeadlock > outage+1_000 {
		t.Errorf("first deadlock detected at %v ms, want within [%v, %v] (one retry round past the outage)",
			firstDeadlock, outage, outage+1_000)
	}
	if commits == 0 || lastCommit < outage {
		t.Errorf("commits = %d (last at %v ms): the system did not resume after the probe outage", commits, lastCommit)
	}
	if resent == 0 {
		t.Errorf("ProbesResent = 0, want > 0 with ProbeRetryMS set")
	}
	if lost == 0 {
		t.Errorf("ProbesLost = 0, want > 0 with every probe dropped for %v ms", outage)
	}
	if timeouts != 0 {
		t.Errorf("TimeoutAborts = %d: detection should have beaten the %v ms lock-wait timeout", timeouts, 300_000.0)
	}
}

// TestProbeLossWedgesWithoutRetransmission is the control for the
// regression above: the identical run with retransmission disabled loses
// the one probe round sent at block time and never detects the cycle —
// both users stay wedged for the rest of the run. It also validates the
// regression's premise that the deadlock forms during the outage.
func TestProbeLossWedgesWithoutRetransmission(t *testing.T) {
	const outage = 20_000.0
	cfg := crossLockConfig(42)
	cfg.Faults = &FaultPlan{
		ProbeLossUntilMS:  outage,
		LockWaitTimeoutMS: 300_000,
	}
	lastCommit := -1.0
	cfg.Trace = func(ev TraceEvent) {
		if ev.Ev == EvCommitted {
			lastCommit = ev.T
		}
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()

	var deadlocks, resent int64
	for _, nd := range res.Nodes {
		deadlocks += nd.GlobalDeadlocks + nd.LocalDeadlocks
		resent += nd.ProbesResent
	}
	if deadlocks != 0 {
		t.Errorf("deadlock victims = %d without retransmission, want 0 (initial probes were dropped)", deadlocks)
	}
	if resent != 0 {
		t.Errorf("ProbesResent = %d with ProbeRetryMS unset, want 0", resent)
	}
	if lastCommit >= outage {
		t.Errorf("a transaction committed at %v ms, after the outage: the run never wedged, so the regression premise fails", lastCommit)
	}
}

// stormConfig is the crash-storm configuration the admission tests share:
// the standard mixed workload under frequent random crashes with lock-wait
// timeouts, the regime the gate is meant to tame.
func stormConfig(seed uint64) Config {
	cfg := twoNodeConfig(mb4Users(), 8, seed)
	cfg.Warmup = 10_000
	cfg.Duration = 300_000
	cfg.Faults = &FaultPlan{
		CrashMTTFMS:       20_000,
		CrashMTTRMS:       3_000,
		LockWaitTimeoutMS: 5_000,
	}
	return cfg
}

// TestAdmissionGateCapsMPL pins the gate's core guarantee: with MaxMPL set,
// the number of concurrently admitted submissions homed at a site never
// exceeds it, even while a crash storm churns retries. Excess arrivals
// queue (the default) and their waits are measured.
func TestAdmissionGateCapsMPL(t *testing.T) {
	cfg := stormConfig(31)
	cfg.Resilience = Resilience{Admission: AdmissionPolicy{MaxMPL: 2}}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()

	var delayed, shed int64
	for i, nd := range res.Nodes {
		if nd.PeakMPL > 2 {
			t.Errorf("node %d peak MPL = %d, want <= 2", i, nd.PeakMPL)
		}
		if nd.PeakMPL < 1 {
			t.Errorf("node %d peak MPL = %d, want >= 1 (users did run)", i, nd.PeakMPL)
		}
		delayed += nd.DelayedArrivals
		shed += nd.ShedArrivals
	}
	if delayed == 0 {
		t.Errorf("DelayedArrivals = 0: four users per site against MaxMPL 2 must queue")
	}
	if shed != 0 {
		t.Errorf("ShedArrivals = %d in queueing mode, want 0", shed)
	}
}

// TestAdmissionGateSheds pins the shedding variant: the same storm with
// Shed set rejects excess arrivals outright instead of queueing them.
func TestAdmissionGateSheds(t *testing.T) {
	cfg := stormConfig(31)
	cfg.Resilience = Resilience{Admission: AdmissionPolicy{MaxMPL: 2, Shed: true, ShedBackoffMS: 50}}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()

	var delayed, shed int64
	for i, nd := range res.Nodes {
		if nd.PeakMPL > 2 {
			t.Errorf("node %d peak MPL = %d, want <= 2", i, nd.PeakMPL)
		}
		delayed += nd.DelayedArrivals
		shed += nd.ShedArrivals
	}
	if shed == 0 {
		t.Errorf("ShedArrivals = 0 in shedding mode, want > 0")
	}
	if delayed != 0 {
		t.Errorf("DelayedArrivals = %d in shedding mode, want 0", delayed)
	}
}

// TestRetryBudgetSeparatesRetriedFromAbandoned drives a conflict-heavy
// workload under a two-attempt budget: a transaction's first abort is
// retried, its second abandons it. Both counters must move, and the run
// must stay bit-deterministic with the backoff jitter stream active.
func TestRetryBudgetSeparatesRetriedFromAbandoned(t *testing.T) {
	run := func() Results {
		cfg := twoNodeConfig(mb4Users(), 8, 77)
		cfg.Layout = storage.Layout{Granules: 20, RecordsPerGran: 6}
		cfg.Warmup = 5_000
		cfg.Duration = 150_000
		cfg.Resilience = Resilience{Retry: RetryPolicy{
			MaxAttempts:   2,
			BaseBackoffMS: 5,
			MaxBackoffMS:  50,
			JitterFrac:    0.5,
		}}
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	res := run()

	var retried, abandoned int64
	for _, nd := range res.Nodes {
		for c := AbortCause(0); c < numAbortCauses; c++ {
			retried += nd.Retried[c]
			abandoned += nd.Abandoned[c]
		}
	}
	if retried == 0 {
		t.Errorf("Retried total = 0 on a 20-granule database, want > 0")
	}
	if abandoned == 0 {
		t.Errorf("Abandoned total = 0 with MaxAttempts 2, want > 0")
	}
	if again := run(); !reflect.DeepEqual(res, again) {
		t.Errorf("two identical runs with retry jitter diverge:\nfirst:  %+v\nsecond: %+v", res, again)
	}
}

// TestAuditorCleanOnFaultyRun runs the chaos oracle over a run exercising
// every fault mechanism at once plus the full resilience stack: a correct
// implementation must produce zero invariant violations.
func TestAuditorCleanOnFaultyRun(t *testing.T) {
	cfg := faultTestConfig(19)
	cfg.Faults = activePlan()
	cfg.Faults.ProbeLossProb = 0.3
	cfg.Resilience = Resilience{
		Retry:        RetryPolicy{MaxAttempts: 5, BaseBackoffMS: 10, JitterFrac: 0.3},
		Admission:    AdmissionPolicy{MaxMPL: 3, AbortRateThreshold: 2},
		ProbeRetryMS: 400,
	}
	aud := NewAuditor()
	cfg.Trace = aud.Record
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if bad := aud.Audit(sys); len(bad) != 0 {
		t.Fatalf("auditor found %d violation(s):\n%s", len(bad), bad)
	}
	if len(aud.Events()) == 0 {
		t.Fatal("auditor recorded no events")
	}
}

// TestResilienceValidation rejects each malformed policy.
func TestResilienceValidation(t *testing.T) {
	cases := []struct {
		name string
		r    Resilience
	}{
		{"negative attempts", Resilience{Retry: RetryPolicy{MaxAttempts: -1}}},
		{"negative base backoff", Resilience{Retry: RetryPolicy{BaseBackoffMS: -1}}},
		{"max below base", Resilience{Retry: RetryPolicy{BaseBackoffMS: 10, MaxBackoffMS: 5}}},
		{"multiplier below one", Resilience{Retry: RetryPolicy{BaseBackoffMS: 1, Multiplier: 0.5}}},
		{"jitter above one", Resilience{Retry: RetryPolicy{BaseBackoffMS: 1, JitterFrac: 1.5}}},
		{"negative jitter", Resilience{Retry: RetryPolicy{BaseBackoffMS: 1, JitterFrac: -0.1}}},
		{"negative MPL", Resilience{Admission: AdmissionPolicy{MaxMPL: -1}}},
		{"negative abort threshold", Resilience{Admission: AdmissionPolicy{MaxMPL: 1, AbortRateThreshold: -1}}},
		{"negative probe retry", Resilience{ProbeRetryMS: -1}},
	}
	for _, tc := range cases {
		cfg := twoNodeConfig(mb4Users(), 4, 1)
		cfg.Resilience = tc.r
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}
