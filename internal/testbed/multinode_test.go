package testbed

import (
	"testing"

	"carat/internal/disk"
)

// threeNodeConfig builds a three-node system where distributed users at
// each node spread their remote requests over both other nodes.
func threeNodeConfig(n int, seed uint64) Config {
	nodes := []NodeConfig{
		{DBDisk: disk.ProfileRM05(), DMServers: 16},
		{DBDisk: disk.ProfileRP06(), DMServers: 16},
		{DBDisk: disk.ProfileRP06(), DMServers: 16},
	}
	var users []UserSpec
	for home := NodeID(0); home < 3; home++ {
		others := []NodeID{}
		for j := NodeID(0); j < 3; j++ {
			if j != home {
				others = append(others, j)
			}
		}
		users = append(users,
			UserSpec{Kind: LRO, Home: home},
			UserSpec{Kind: LU, Home: home},
			UserSpec{Kind: DRO, Home: home, Remotes: others},
			UserSpec{Kind: DU, Home: home, Remotes: others},
		)
	}
	return Config{
		Nodes:             nodes,
		Users:             users,
		RequestsPerTxn:    n,
		RecordsPerRequest: 4,
		Seed:              seed,
		Warmup:            60_000,
		Duration:          1_000_000,
	}
}

func TestThreeNodeSystemRuns(t *testing.T) {
	sys, err := New(threeNodeConfig(8, 5))
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if len(res.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(res.Nodes))
	}
	for i, nr := range res.Nodes {
		for _, k := range []TxnKind{LRO, LU, DRO, DU} {
			if nr.TxnThroughput[k] <= 0 {
				t.Fatalf("node %d: no %v commits", i, k)
			}
		}
		if nr.Messages == 0 {
			t.Fatalf("node %d: no messages", i)
		}
	}
}

func TestRemoteSplit(t *testing.T) {
	cases := []struct {
		nRemote, k int
		want       []int
	}{
		{4, 2, []int{2, 2}},
		{5, 2, []int{3, 2}},
		{4, 3, []int{2, 1, 1}},
		{1, 3, []int{1, 0, 0}},
		{0, 2, []int{0, 0}},
		{6, 1, []int{6}},
	}
	for _, tc := range cases {
		got := RemoteSplit(tc.nRemote, tc.k)
		if len(got) != len(tc.want) {
			t.Fatalf("RemoteSplit(%d,%d) = %v, want %v", tc.nRemote, tc.k, got, tc.want)
		}
		sum := 0
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("RemoteSplit(%d,%d) = %v, want %v", tc.nRemote, tc.k, got, tc.want)
			}
			sum += got[i]
		}
		if sum != tc.nRemote {
			t.Fatalf("RemoteSplit(%d,%d) loses requests: %v", tc.nRemote, tc.k, got)
		}
	}
}

func TestRemoteSitesDefaultsToRemote(t *testing.T) {
	u := UserSpec{Kind: DU, Home: 0, Remote: 1}
	sites := u.RemoteSites()
	if len(sites) != 1 || sites[0] != 1 {
		t.Fatalf("RemoteSites = %v", sites)
	}
	u2 := UserSpec{Kind: DU, Home: 0, Remotes: []NodeID{1, 2}}
	if got := u2.RemoteSites(); len(got) != 2 {
		t.Fatalf("RemoteSites = %v", got)
	}
	local := UserSpec{Kind: LRO, Home: 0}
	if got := local.RemoteSites(); got != nil {
		t.Fatalf("local user has remote sites %v", got)
	}
}

func TestDuplicateRemoteRejected(t *testing.T) {
	cfg := threeNodeConfig(8, 1)
	cfg.Users[2].Remotes = []NodeID{1, 1}
	cfg.Users[2].Home = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("duplicate remote site must fail validation")
	}
}

func TestThreeNodeDeterminism(t *testing.T) {
	run := func() Results {
		sys, err := New(threeNodeConfig(8, 77))
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	a, b := run(), run()
	for i := range a.Nodes {
		if a.Nodes[i].TotalTxnThroughput != b.Nodes[i].TotalTxnThroughput {
			t.Fatalf("node %d nondeterministic", i)
		}
	}
}

// TestTwoPhaseCommitMultiSlaveParallel verifies commit waits scale with the
// slowest slave, not the sum: under light load, three-node DU response
// times should be far below twice the two-node ones.
func TestTwoPhaseCommitMultiSlaveParallel(t *testing.T) {
	// A single DU user: no contention, so response time reflects protocol
	// path length only.
	single := func(remotes []NodeID) float64 {
		cfg := threeNodeConfig(8, 9)
		cfg.Users = []UserSpec{{Kind: DU, Home: 0, Remotes: remotes}}
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run()
		return res.Nodes[0].MeanResponse[DU]
	}
	one := single([]NodeID{1})
	two := single([]NodeID{1, 2})
	if two > 1.6*one {
		t.Fatalf("two slaves (%v ms) should not cost ~2x one slave (%v ms): 2PC phases run in parallel", two, one)
	}
	if two <= 0 || one <= 0 {
		t.Fatal("no responses measured")
	}
}
