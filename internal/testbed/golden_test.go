package testbed

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden simulation snapshot")

// goldenSnapshot pins the exact deterministic output of one reference run.
// Any change to the kernel's event ordering, the RNG streams, the protocol
// paths or the statistics collection shows up here immediately — the
// regression net under every refactor.
type goldenSnapshot struct {
	Seed     uint64             `json:"seed"`
	Workload string             `json:"workload"`
	N        int                `json:"n"`
	Nodes    []goldenNode       `json:"nodes"`
	Meta     map[string]float64 `json:"meta"`
}

type goldenNode struct {
	TxnPerSec  map[string]float64 `json:"txnPerSec"`
	CPU        float64            `json:"cpu"`
	DIO        float64            `json:"dio"`
	Deadlocks  int64              `json:"deadlocks"`
	Messages   int64              `json:"messages"`
	MeanRespLU float64            `json:"meanRespLU"`
}

func takeSnapshot() goldenSnapshot {
	cfg := twoNodeConfig(mb4Users(), 8, 424242)
	cfg.Warmup = 30_000
	cfg.Duration = 630_000
	sys, err := New(cfg)
	if err != nil {
		panic(err)
	}
	res := sys.Run()
	snap := goldenSnapshot{Seed: 424242, Workload: "MB4", N: 8, Meta: map[string]float64{}}
	for _, nr := range res.Nodes {
		gn := goldenNode{
			TxnPerSec:  map[string]float64{},
			CPU:        nr.CPUUtilization,
			DIO:        nr.DiskIORate,
			Deadlocks:  nr.LocalDeadlocks + nr.GlobalDeadlocks,
			Messages:   nr.Messages,
			MeanRespLU: nr.MeanResponse[LU],
		}
		for _, k := range []TxnKind{LRO, LU, DRO, DU} {
			gn.TxnPerSec[k.String()] = nr.TxnThroughput[k]
		}
		snap.Nodes = append(snap.Nodes, gn)
	}
	return snap
}

func TestGoldenSimulationSnapshot(t *testing.T) {
	path := filepath.Join("testdata", "golden_mb4_n8.json")
	got := takeSnapshot()

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden snapshot rewritten: %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want goldenSnapshot
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want.Nodes) != len(got.Nodes) {
		t.Fatalf("node count changed: %d vs %d", len(got.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		w, g := want.Nodes[i], got.Nodes[i]
		for k, wv := range w.TxnPerSec {
			if gv := g.TxnPerSec[k]; !floatEq(gv, wv) {
				t.Errorf("node %d %s throughput drifted: %v, golden %v", i, k, gv, wv)
			}
		}
		if !floatEq(g.CPU, w.CPU) {
			t.Errorf("node %d CPU drifted: %v, golden %v", i, g.CPU, w.CPU)
		}
		if !floatEq(g.DIO, w.DIO) {
			t.Errorf("node %d DIO drifted: %v, golden %v", i, g.DIO, w.DIO)
		}
		if g.Deadlocks != w.Deadlocks {
			t.Errorf("node %d deadlocks drifted: %d, golden %d", i, g.Deadlocks, w.Deadlocks)
		}
		if g.Messages != w.Messages {
			t.Errorf("node %d messages drifted: %d, golden %d", i, g.Messages, w.Messages)
		}
		if !floatEq(g.MeanRespLU, w.MeanRespLU) {
			t.Errorf("node %d LU response drifted: %v, golden %v", i, g.MeanRespLU, w.MeanRespLU)
		}
	}
	if t.Failed() {
		t.Log("a behavioral change was made deliberately? re-pin with: go test ./internal/testbed -run Golden -update-golden")
	}
}

// floatEq compares snapshot floats through their JSON round trip.
func floatEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
