package testbed

import (
	"fmt"

	"carat/internal/comm"
	"carat/internal/disk"
	"carat/internal/sim"
	"carat/internal/wal"
)

// termEntry is one queued cooperative termination: work a site owes a
// transaction whose coordinator became unreachable mid-protocol. Release
// entries only drop locks a failed-over read took; resolve entries settle a
// commit-protocol branch against the coordinator's durable log.
type termEntry struct {
	gid     int64
	release bool
}

// healDrainMarginMS is how long after a heal the reconciliation drain is
// given before the partition audit treats leftovers as violations: the
// drain charges real (simulated) I/O, so a teardown landing right on the
// heal can legitimately freeze it mid-flight.
const healDrainMarginMS = 5000

// reachable reports whether sites a and b can exchange messages under the
// current partition. Always true while no partition machinery is installed,
// so every enforcement check below this is a no-op on non-partition runs.
func (s *System) reachable(a, b NodeID) bool {
	return s.faults == nil || s.faults.part == nil || s.faults.part.Reachable(int(a), int(b))
}

// suspected reports whether the failure detector at site obs currently
// suspects site sub. Always false while the detector is not running.
func (s *System) suspected(obs, sub NodeID) bool {
	return s.faults != nil && s.faults.detector != nil && s.faults.detector.Suspects(int(obs), int(sub))
}

// majorityReachable reports whether the failure detector at the site trusts
// a strict majority of all sites (counting itself); vacuously true while
// the detector is off.
func (s *System) majorityReachable(id NodeID) bool {
	if s.faults == nil || s.faults.detector == nil {
		return true
	}
	return s.faults.detector.MajorityReachable(int(id))
}

// initPartitions installs the partition machinery when the plan can sever
// links: the partition map, the scheduled partitions, the random partition
// process, and the heartbeat failure detector. Called from initFaults, so
// the event order at time zero is fixed before user processes spawn.
func (s *System) initPartitions() {
	f := s.faults
	if !f.plan.partitionsConfigured() {
		return
	}
	f.part = comm.NewPartitionMap(len(s.nodes))
	f.term = make(map[NodeID][]termEntry)
	for _, ps := range f.plan.Partitions {
		ps := ps
		s.env.At(ps.AtMS, func() { s.startPartition(ps.Groups, ps.HealAfterMS) })
	}
	if f.plan.PartitionMTBFMS > 0 {
		s.scheduleRandomPartition()
	}
	s.initDetector()
}

// scheduleRandomPartition draws the next partition — onset, duration, and a
// two-sided split — from the dedicated partition stream and schedules it.
// All draws happen now, so the partition schedule is a fixed function of
// the plan seed; the process re-arms itself after each window whether or
// not its partition actually took effect.
func (s *System) scheduleRandomPartition() {
	f := s.faults
	at := f.partRnd.Exp(f.plan.PartitionMTBFMS)
	dur := f.partRnd.Exp(f.plan.PartitionMeanMS)
	if dur < 1 {
		dur = 1
	}
	groups := make([][]NodeID, 2)
	for i := range s.nodes {
		if f.partRnd.Bool(f.plan.PartitionSplitProb) {
			groups[0] = append(groups[0], NodeID(i))
		} else {
			groups[1] = append(groups[1], NodeID(i))
		}
	}
	s.env.After(at, func() {
		s.startPartition(groups, dur)
		s.env.After(dur, func() { s.scheduleRandomPartition() })
	})
}

// startPartition puts a partition into effect and schedules its heal. An
// onset while another partition is in effect is dropped (one partition at a
// time), as is a degenerate split with fewer than two non-empty groups.
func (s *System) startPartition(groups [][]NodeID, healAfter float64) {
	f := s.faults
	if f.part.Active() {
		return
	}
	nonEmpty := 0
	for _, grp := range groups {
		if len(grp) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return
	}
	split := make([][]int, len(groups))
	for i, grp := range groups {
		for _, site := range grp {
			split[i] = append(split[i], int(site))
		}
	}
	f.part.Split(split)
	f.partitions++
	f.partitionSince = s.env.Now()
	for gi, grp := range groups {
		for _, site := range grp {
			s.trace(-1, KindNone, site, EvPartition, gi)
		}
	}
	s.env.After(healAfter, func() { s.healPartition() })
}

// healPartition removes the partition and kicks off the reconciliation the
// split deferred: queued cooperative terminations and pending replica
// applies at up sites. (Down sites reconcile in restart recovery instead.)
func (s *System) healPartition() {
	f := s.faults
	if !f.part.Active() {
		return
	}
	f.part.Heal()
	now := s.env.Now()
	f.partitionMS += now - f.partitionSince
	f.lastHealT = now
	s.trace(-1, KindNone, -1, EvPartitionHeal, -1)
	for i := range s.nodes {
		id := NodeID(i)
		nd := s.nodes[i]
		if nd.down {
			continue
		}
		entries := f.term[id]
		pending := s.repl != nil && len(s.repl.pending[id]) > 0
		if len(entries) == 0 && !pending {
			continue
		}
		delete(f.term, id)
		s.env.Spawn(fmt.Sprintf("heal-%d", id), func(p *sim.Proc) {
			s.terminateQueued(p, nd, entries)
			if s.repl != nil {
				s.drainReplicaApplies(p, nd)
			}
		})
	}
}

// queueTermination records that site id owes transaction gid a cooperative
// termination once the partition heals, deduplicated per (site, gid). Sites
// that crash before the heal drop their queue — restart recovery resolves
// everything durable.
func (s *System) queueTermination(id NodeID, gid int64, release bool) {
	f := s.faults
	if f == nil || f.term == nil {
		return
	}
	for _, e := range f.term[id] {
		if e.gid == gid {
			return
		}
	}
	f.term[id] = append(f.term[id], termEntry{gid: gid, release: release})
}

// terminateQueued performs cooperative termination for one site's queued
// entries, in queue order. It mirrors restart recovery's in-doubt
// resolution: strictly local work plus the coordinator's durable log as the
// ground-truth oracle — no network hops — so a fresh partition starting
// mid-drain cannot invalidate it. Presumed abort is preserved: a branch
// commits if and only if the coordinator holds a durable commit record.
func (s *System) terminateQueued(p *sim.Proc, nd *node, entries []termEntry) {
	costs := s.cfg.Params.CostsFor(nd.id, LU)
	for _, e := range entries {
		if nd.down {
			// Crashed mid-drain: restart recovery supersedes the rest.
			return
		}
		if e.release {
			// A failed-over read's locks: no journal state to settle.
			mustUse(nd, p, func() error { return nd.cpuUse(p, costs.UnlockCPU) })
			nd.releaseTxn(e.gid)
			s.trace(e.gid, KindNone, nd.id, EvRelease, -1)
			continue
		}
		prepared, resolved := siteBranchState(nd, e.gid)
		if resolved {
			// The protocol completed here before the link died; only the
			// lock release could have been lost.
			nd.releaseTxn(e.gid)
			continue
		}
		if s.coordinatorCommitted(e.gid) {
			if prepared {
				mustUse(nd, p, func() error { return nd.logDisk.Do(p, disk.ForceWrite, 0) })
				nd.inDoubtCommit.Inc()
				nd.journal.ResolveInDoubt(e.gid, true, nd.store)
			} else {
				// Read-only branch (no prepared record): record the lazy
				// commit exactly as phase 2 would have.
				nd.journal.Commit(e.gid)
			}
			s.trace(e.gid, KindNone, nd.id, EvSlaveCommit, -1)
		} else if prepared {
			k := nd.journal.BeforeImageCount(e.gid)
			for i := 0; i < k; i++ {
				mustUse(nd, p, func() error { return nd.cpuUse(p, costs.DMIOCPU) })
				mustUse(nd, p, func() error { return nd.dbDiskFor(0).Do(p, disk.Write, 0) })
			}
			nd.inDoubtAbort.Inc()
			nd.journal.ResolveInDoubt(e.gid, false, nd.store)
		} else {
			// Never prepared and no coordinator commit: presumed abort.
			undo := nd.journal.Rollback(e.gid, nd.store)
			for _, g := range undo {
				mustUse(nd, p, func() error { return nd.cpuUse(p, costs.DMIOCPU) })
				mustUse(nd, p, func() error { return nd.dbDiskFor(g).Do(p, disk.Write, g) })
			}
		}
		mustUse(nd, p, func() error { return nd.cpuUse(p, costs.UnlockCPU) })
		nd.releaseTxn(e.gid)
		s.trace(e.gid, KindNone, nd.id, EvRelease, -1)
	}
}

// siteBranchState reports whether the site holds a durable prepared record
// for gid with no resolution yet, and whether any resolution (commit or
// abort record) exists.
func siteBranchState(nd *node, gid int64) (prepared, resolved bool) {
	flushed := nd.journal.FlushedLSN()
	for _, r := range nd.journal.Records() {
		if r.Txn != gid {
			continue
		}
		switch r.Kind {
		case wal.Prepared:
			if r.LSN <= flushed {
				prepared = true
			}
		case wal.Commit, wal.Abort:
			resolved = true
		}
	}
	return prepared, resolved
}

// initGray schedules the plan's gray-failure windows. Validation guarantees
// windows for one site never overlap, so start/end pairs nest trivially.
func (s *System) initGray() {
	for _, g := range s.faults.plan.GraySites {
		g := g
		s.env.At(g.AtMS, func() { s.startGray(g) })
	}
}

// startGray enters one degradation window: the site's CPU bursts stretch by
// CPUFactor and its disks slow by DiskFactor until the window ends.
func (s *System) startGray(g GrayFailure) {
	nd := s.nodes[g.Site]
	if g.CPUFactor > 1 {
		nd.grayCPU = g.CPUFactor
	}
	if g.DiskFactor > 1 {
		for _, d := range nd.dbDisks {
			d.SetSlowdown(g.DiskFactor)
		}
		nd.logDisk.SetSlowdown(g.DiskFactor)
	}
	nd.grayActive = true
	nd.graySince = s.env.Now()
	s.env.After(g.ForMS, func() { s.endGray(nd) })
}

// endGray restores the site to full speed and settles its degradation clock.
func (s *System) endGray(nd *node) {
	nd.grayCPU = 0
	for _, d := range nd.dbDisks {
		d.SetSlowdown(0)
	}
	nd.logDisk.SetSlowdown(0)
	if nd.grayActive {
		nd.grayMS += s.env.Now() - nd.graySince
		nd.grayActive = false
	}
}
