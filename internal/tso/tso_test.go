package tso

import (
	"testing"
	"testing/quick"

	"carat/internal/rng"
)

func TestReadAfterLaterWriteRejected(t *testing.T) {
	m := NewManager()
	if out, _ := m.Write(2, 20, 5); out != OK {
		t.Fatal("first write must pass")
	}
	if out := m.Read(1, 10, 5); out != Reject {
		t.Fatal("read with ts 10 after write ts 20 must be rejected")
	}
	if out := m.Read(3, 30, 5); out != OK {
		t.Fatal("read with ts 30 must pass")
	}
	s := m.Stats()
	if s.Reads != 2 || s.ReadRejects != 1 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWriteAfterLaterReadRejected(t *testing.T) {
	m := NewManager()
	if out := m.Read(2, 20, 5); out != OK {
		t.Fatal("read must pass")
	}
	if out, _ := m.Write(1, 10, 5); out != Reject {
		t.Fatal("write ts 10 after read ts 20 must be rejected")
	}
	if out, _ := m.Write(3, 30, 5); out != OK {
		t.Fatal("write ts 30 must pass")
	}
}

func TestWriteAfterLaterWriteRejectedWithoutThomas(t *testing.T) {
	m := NewManager()
	m.Write(2, 20, 5)
	if out, _ := m.Write(1, 10, 5); out != Reject {
		t.Fatal("basic TO rejects obsolete writes")
	}
}

func TestThomasWriteRuleSkips(t *testing.T) {
	m := NewManager()
	m.ThomasWriteRule = true
	m.Write(2, 20, 5)
	out, skip := m.Write(1, 10, 5)
	if out != OK || !skip {
		t.Fatalf("Thomas rule: out=%v skip=%v, want OK/skip", out, skip)
	}
	// But a conflicting later read still rejects.
	m2 := NewManager()
	m2.ThomasWriteRule = true
	m2.Read(3, 30, 5)
	if out, _ := m2.Write(1, 10, 5); out != Reject {
		t.Fatal("Thomas rule must not bypass read conflicts")
	}
}

func TestTimestampsPersistAcrossFinish(t *testing.T) {
	m := NewManager()
	m.Write(2, 20, 5)
	m.Finish(2)
	// A restarted old transaction still sees the granule timestamps.
	if out, _ := m.Write(1, 10, 5); out != Reject {
		t.Fatal("granule timestamps must survive Finish")
	}
}

func TestFinishReturnsTouchedGranules(t *testing.T) {
	m := NewManager()
	m.Read(1, 10, 7)
	m.Write(1, 10, 3)
	m.Read(1, 10, 3)
	got := m.Finish(1)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("touched = %v, want [3 7]", got)
	}
	if m.Live() != 0 {
		t.Fatal("bookkeeping not cleared")
	}
	if got := m.Finish(1); len(got) != 0 {
		t.Fatal("double Finish must be empty")
	}
}

// TestPropertySerializability: admitted operations, ordered by timestamp,
// must be conflict-equivalent to their admission order. For basic TO that
// reduces to: per granule, the sequences of admitted read and write
// timestamps are such that no admitted operation conflicts with an
// already-admitted one carrying a larger timestamp.
func TestPropertySerializability(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := NewManager()
		type op struct {
			ts    int64
			write bool
			g     GranuleID
		}
		var admitted []op
		for i := 0; i < 300; i++ {
			o := op{
				ts:    int64(1 + r.Intn(100)),
				write: r.Bool(0.4),
				g:     GranuleID(r.Intn(8)),
			}
			var ok bool
			if o.write {
				out, _ := m.Write(TxnID(o.ts), o.ts, o.g)
				ok = out == OK
			} else {
				ok = m.Read(TxnID(o.ts), o.ts, o.g) == OK
			}
			if ok {
				// Conflict check against everything already admitted on
				// this granule with a LARGER timestamp.
				for _, prev := range admitted {
					if prev.g != o.g || prev.ts <= o.ts {
						continue
					}
					if prev.write || o.write {
						return false // admitted a conflicting late op
					}
				}
				admitted = append(admitted, o)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOutcomeString(t *testing.T) {
	if OK.String() != "ok" || Reject.String() != "reject" {
		t.Fatal("outcome names wrong")
	}
}
