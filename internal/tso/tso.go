// Package tso implements basic timestamp-ordering concurrency control —
// the classical alternative to two-phase locking that the contemporaneous
// performance literature compares CARAT's scheme against (Galler's thesis,
// cited by the paper, "showed that the performance of basic timestamp
// ordering is better than that of two-phase locking"; Agrawal, Carey &
// Livny trace such contradictory conclusions to modeling assumptions).
// This package lets the testbed run the same workloads under basic TO so
// the comparison can be made with identical assumptions.
//
// Basic TO: every transaction carries a unique timestamp. Each granule
// remembers the largest read and write timestamps that touched it. A read
// is rejected if it arrives after a younger write; a write is rejected if
// it arrives after a younger read or write. Rejected transactions abort
// and restart with a fresh (larger) timestamp. There is no blocking and
// there are no deadlocks.
package tso

import "slices"

// TxnID identifies a transaction; GranuleID a database block.
type (
	TxnID     int64
	GranuleID int
)

// Outcome of an access check.
type Outcome int

const (
	// OK means the access is admitted.
	OK Outcome = iota
	// Reject means the transaction must abort and restart with a new
	// timestamp.
	Reject
)

// String names the outcome.
func (o Outcome) String() string {
	if o == OK {
		return "ok"
	}
	return "reject"
}

// Stats counts scheduler activity.
type Stats struct {
	Reads        int64
	Writes       int64
	ReadRejects  int64
	WriteRejects int64
}

// granuleTS is the per-block timestamp pair.
type granuleTS struct {
	read, write int64
}

// Manager is one site's basic-TO scheduler. Like the lock manager it is a
// synchronous data structure driven by the testbed's processes.
type Manager struct {
	ts map[GranuleID]*granuleTS
	// touched tracks, per live transaction, the granules it has accessed,
	// so Finish can expose them for accounting parity with 2PL.
	touched map[TxnID]map[GranuleID]bool
	// freeSets recycles touched sets (with their capacity) across
	// transactions.
	freeSets []map[GranuleID]bool
	stats    Stats

	// ThomasWriteRule, when set, silently skips obsolete writes (a write
	// older than the granule's write timestamp but not conflicting with a
	// later read) instead of rejecting the transaction.
	ThomasWriteRule bool
}

// NewManager creates an empty scheduler.
func NewManager() *Manager {
	return &Manager{
		ts:      make(map[GranuleID]*granuleTS),
		touched: make(map[TxnID]map[GranuleID]bool),
	}
}

// Stats returns the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

func (m *Manager) entry(g GranuleID) *granuleTS {
	e := m.ts[g]
	if e == nil {
		e = &granuleTS{}
		m.ts[g] = e
	}
	return e
}

func (m *Manager) touch(txn TxnID, g GranuleID) {
	set := m.touched[txn]
	if set == nil {
		if k := len(m.freeSets); k > 0 {
			set = m.freeSets[k-1]
			m.freeSets[k-1] = nil
			m.freeSets = m.freeSets[:k-1]
		} else {
			set = make(map[GranuleID]bool)
		}
		m.touched[txn] = set
	}
	set[g] = true
}

// Read admits or rejects a read of g by the transaction with the given
// timestamp. On OK the granule's read timestamp advances.
func (m *Manager) Read(txn TxnID, timestamp int64, g GranuleID) Outcome {
	m.stats.Reads++
	e := m.entry(g)
	if timestamp < e.write {
		m.stats.ReadRejects++
		return Reject
	}
	if timestamp > e.read {
		e.read = timestamp
	}
	m.touch(txn, g)
	return OK
}

// Write admits or rejects a write of g. On OK the granule's write
// timestamp advances. With the Thomas write rule, a write older than the
// recorded write (but no younger read) reports OK with skip=true: the
// caller must not apply the update.
func (m *Manager) Write(txn TxnID, timestamp int64, g GranuleID) (out Outcome, skip bool) {
	m.stats.Writes++
	e := m.entry(g)
	if timestamp < e.read {
		m.stats.WriteRejects++
		return Reject, false
	}
	if timestamp < e.write {
		if m.ThomasWriteRule {
			m.touch(txn, g)
			return OK, true
		}
		m.stats.WriteRejects++
		return Reject, false
	}
	e.write = timestamp
	m.touch(txn, g)
	return OK, false
}

// Finish forgets a transaction's bookkeeping (commit or abort) and returns
// the granules it touched, sorted. Granule timestamps persist — that is
// the essence of TO. Callers that don't need the touched set should use
// Forget, which allocates nothing.
func (m *Manager) Finish(txn TxnID) []GranuleID {
	set := m.touched[txn]
	out := make([]GranuleID, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	slices.Sort(out)
	m.Forget(txn)
	return out
}

// Forget drops a transaction's bookkeeping without materializing its
// touched set, recycling the set's storage.
func (m *Manager) Forget(txn TxnID) {
	if set, ok := m.touched[txn]; ok {
		if set != nil {
			clear(set)
			m.freeSets = append(m.freeSets, set)
		}
		delete(m.touched, txn)
	}
}

// Live returns the number of transactions with bookkeeping.
func (m *Manager) Live() int { return len(m.touched) }
