package phase

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

// TestTable1Matrix checks the coordinator matrix entry-by-entry against
// Table 1 of the paper.
func TestTable1Matrix(t *testing.T) {
	pr := Probs{L: 3, R: 2, Q: 4, Pb: 0.1, Pd: 0.05, Pra: 0.02}
	m, err := Coordinator(pr)
	if err != nil {
		t.Fatal(err)
	}
	n, c := 5.0, 11.0
	checks := []struct {
		from, to Phase
		want     float64
	}{
		{UT, INIT, 1},
		{INIT, U, 1},
		{U, TM, 1},
		{TM, U, n / c},
		{TM, DM, 3 / c},
		{TM, RW, 2 / c},
		{TM, TC, 1 / c},
		{DM, TM, 1.0 / 5.0},
		{DM, LR, 4.0 / 5.0},
		{LR, DMIO, 0.9},
		{LR, LW, 0.1},
		{DMIO, DM, 1},
		{LW, DMIO, 0.95},
		{LW, TA, 0.05},
		{RW, TM, 0.98},
		{RW, TA, 0.02},
		{TC, CWC, 1},
		{TA, CWA, 1},
		{CWC, TCIO, 1},
		{CWA, TAIO, 1},
		{TCIO, UL, 1},
		{TAIO, UL, 1},
		{UL, UT, 1},
	}
	for _, ch := range checks {
		if got := m[ch.from][ch.to]; !almost(got, ch.want) {
			t.Errorf("p[%v][%v] = %v, want %v", ch.from, ch.to, got, ch.want)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		l := int(seed%5) + 1
		r := int(seed % 3)
		if seed < 0 {
			l, r = -int(seed%5)+1, -int(seed%3)
		}
		pr := Probs{L: l, R: r, Q: 3.5, Pb: 0.2, Pd: 0.1, Pra: 0.05}
		m, err := Coordinator(pr)
		if err != nil {
			return false
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVisitCountsNoConflicts checks closed forms with Pb=Pd=Pra=0:
// V_INIT=1, V_U=n+1, V_TM=2n+1, V_DM=l(q+1), V_LR=V_DMIO=lq, V_RW=r,
// V_TC=V_CWC=V_TCIO=V_UL=1, V_TA=V_LW=0.
func TestVisitCountsNoConflicts(t *testing.T) {
	pr := Probs{L: 3, R: 2, Q: 4}
	m, err := Coordinator(pr)
	if err != nil {
		t.Fatal(err)
	}
	v, err := VisitCounts(m)
	if err != nil {
		t.Fatal(err)
	}
	n, l, r, q := 5.0, 3.0, 2.0, 4.0
	want := map[Phase]float64{
		UT: 1, INIT: 1, U: n + 1, TM: 2*n + 1,
		DM: l * (q + 1), LR: l * q, DMIO: l * q, LW: 0,
		RW: r, TC: 1, TA: 0, TCIO: 1, TAIO: 0, CWC: 1, CWA: 0, UL: 1,
	}
	for ph, w := range want {
		if !almost(v[ph], w) {
			t.Errorf("V[%v] = %v, want %v", ph, v[ph], w)
		}
	}
}

// TestVisitCountsLocalType checks a pure local transaction (r=0).
func TestVisitCountsLocalType(t *testing.T) {
	pr := Probs{L: 8, R: 0, Q: 4}
	m, err := Coordinator(pr)
	if err != nil {
		t.Fatal(err)
	}
	v, err := VisitCounts(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v[RW], 0) {
		t.Errorf("V[RW] = %v, want 0 for local type", v[RW])
	}
	if !almost(v[TM], 17) {
		t.Errorf("V[TM] = %v, want 17", v[TM])
	}
	if !almost(v[DMIO], 32) {
		t.Errorf("V[DMIO] = %v, want 32", v[DMIO])
	}
}

// TestVisitCountsWithBlocking: with Pb>0 and Pd=0 every blocked request
// still completes, so V_LW = Pb * V_LR and all terminal counts stay 1.
func TestVisitCountsWithBlocking(t *testing.T) {
	pr := Probs{L: 4, R: 0, Q: 4, Pb: 0.25}
	m, err := Coordinator(pr)
	if err != nil {
		t.Fatal(err)
	}
	v, err := VisitCounts(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v[LW], 0.25*v[LR]) {
		t.Errorf("V[LW] = %v, want Pb*V[LR] = %v", v[LW], 0.25*v[LR])
	}
	if !almost(v[TCIO], 1) || !almost(v[TAIO], 0) {
		t.Errorf("terminal counts: TCIO=%v TAIO=%v", v[TCIO], v[TAIO])
	}
}

// TestVisitCountsAbortPaths: with deadlocks possible, commit and abort
// exits must balance: V_TC + V_TA = V_UL and V_UL = 1 (one exit per
// execution), and expected aborts V_TA = 1 - V_TC.
func TestVisitCountsAbortPaths(t *testing.T) {
	pr := Probs{L: 6, R: 2, Q: 4, Pb: 0.15, Pd: 0.1, Pra: 0.03}
	m, err := Coordinator(pr)
	if err != nil {
		t.Fatal(err)
	}
	v, err := VisitCounts(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(v[UL], 1) {
		t.Errorf("V[UL] = %v, want 1 (every execution ends once)", v[UL])
	}
	if !almost(v[TC]+v[TA], 1) {
		t.Errorf("V[TC]+V[TA] = %v, want 1", v[TC]+v[TA])
	}
	if v[TA] <= 0 {
		t.Errorf("V[TA] = %v, want positive under deadlocks", v[TA])
	}
	if !almost(v[CWC], v[TC]) || !almost(v[CWA], v[TA]) {
		t.Errorf("commit-wait counts don't track commit/abort: %v/%v vs %v/%v",
			v[CWC], v[CWA], v[TC], v[TA])
	}
	// The abort probability per execution must match the analytical form
	// observed through the chain: each LR visit aborts w.p. Pb*Pd.
	// V_TA is the per-execution abort probability.
	if v[TA] >= 1 || v[TA] < 0 {
		t.Errorf("V[TA] = %v out of [0,1)", v[TA])
	}
}

// TestSlaveMatrixShape checks the slave variant: no INIT or U phases, UT
// feeds TM directly, and per request the TM fans to DM and RW equally.
func TestSlaveMatrixShape(t *testing.T) {
	pr := Probs{L: 4, Q: 4, Pb: 0.1, Pd: 0.05, Pra: 0.02}
	m, err := Slave(pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	c := 9.0
	if !almost(m[UT][TM], 1) {
		t.Errorf("UT->TM = %v", m[UT][TM])
	}
	if m[UT][INIT] != 0 || m[INIT][U] != 0 {
		t.Error("slave must skip INIT and U")
	}
	if !almost(m[TM][DM], 4/c) || !almost(m[TM][RW], 4/c) || !almost(m[TM][TC], 1/c) {
		t.Errorf("TM row = DM %v RW %v TC %v", m[TM][DM], m[TM][RW], m[TM][TC])
	}
}

// TestSlaveVisitCounts with no conflicts: V_TM = 2l+1, V_DM = l(q+1),
// V_RW = l, V_U = 0.
func TestSlaveVisitCounts(t *testing.T) {
	pr := Probs{L: 4, Q: 4}
	m, err := Slave(pr)
	if err != nil {
		t.Fatal(err)
	}
	v, err := VisitCounts(m)
	if err != nil {
		t.Fatal(err)
	}
	want := map[Phase]float64{
		U: 0, INIT: 0, TM: 9, DM: 20, LR: 16, DMIO: 16, RW: 4, TC: 1, UL: 1,
	}
	for ph, w := range want {
		if !almost(v[ph], w) {
			t.Errorf("V[%v] = %v, want %v", ph, v[ph], w)
		}
	}
}

// TestVisitCountsConservation is the structural property: for every
// non-absorbing phase, flow in equals flow out (V_c = Σ V_i p_ic already
// enforced; here we re-verify via the returned counts for random
// parameters).
func TestVisitCountsConservation(t *testing.T) {
	f := func(pbSeed, pdSeed, praSeed uint8, lSeed, rSeed uint8) bool {
		pr := Probs{
			L:   int(lSeed%6) + 1,
			R:   int(rSeed % 4),
			Q:   4,
			Pb:  float64(pbSeed%90) / 100,
			Pd:  float64(pdSeed%90) / 100,
			Pra: float64(praSeed%90) / 100,
		}
		m, err := Coordinator(pr)
		if err != nil {
			return false
		}
		v, err := VisitCounts(m)
		if err != nil {
			return false
		}
		for j := 0; j < NumPhases; j++ {
			var in float64
			for i := 0; i < NumPhases; i++ {
				in += v[i] * m[i][j]
			}
			if j == int(UT) {
				// UT receives one visit per cycle.
				if !almost(in, 1) {
					return false
				}
				continue
			}
			if !almost(in, v[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSlaveVisitCountsConservation mirrors the coordinator conservation
// property for the slave matrix, including abort paths.
func TestSlaveVisitCountsConservation(t *testing.T) {
	f := func(pbSeed, pdSeed, praSeed uint8, lSeed uint8) bool {
		pr := Probs{
			L:   int(lSeed%6) + 1,
			Q:   4,
			Pb:  float64(pbSeed%90) / 100,
			Pd:  float64(pdSeed%90) / 100,
			Pra: float64(praSeed%90) / 100,
		}
		m, err := Slave(pr)
		if err != nil {
			return false
		}
		v, err := VisitCounts(m)
		if err != nil {
			return false
		}
		for j := 0; j < NumPhases; j++ {
			var in float64
			for i := 0; i < NumPhases; i++ {
				in += v[i] * m[i][j]
			}
			if j == int(UT) {
				if !almost(in, 1) {
					return false
				}
				continue
			}
			if !almost(in, v[j]) {
				return false
			}
		}
		// Exactly one terminal exit, INIT and U never visited.
		return almost(v[UL], 1) && almost(v[TC]+v[TA], 1) && v[INIT] == 0 && v[U] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := Coordinator(Probs{L: 0, R: 0, Q: 4}); err == nil {
		t.Error("zero requests must fail")
	}
	if _, err := Coordinator(Probs{L: 1, Q: 0}); err == nil {
		t.Error("zero q must fail")
	}
	if _, err := Coordinator(Probs{L: 1, Q: 4, Pb: 1.5}); err == nil {
		t.Error("Pb > 1 must fail")
	}
	if _, err := Slave(Probs{L: 0, Q: 4}); err == nil {
		t.Error("slave with no requests must fail")
	}
	if _, err := Slave(Probs{L: 2, R: 1, Q: 4}); err == nil {
		t.Error("slave with remote requests must fail")
	}
}

func TestPhaseString(t *testing.T) {
	if UT.String() != "UT" || DMIO.String() != "DMIO" || UL.String() != "UL" {
		t.Fatal("phase names wrong")
	}
	if Phase(99).String() != "Phase(99)" {
		t.Fatal("out-of-range phase name")
	}
	if len(All()) != NumPhases {
		t.Fatal("All() wrong length")
	}
}
