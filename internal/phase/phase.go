// Package phase implements the transaction-phase machinery of the paper's
// Site Processing Model (Section 4.1): the phase set P, the phase
// transition probability matrices of Table 1 (and their slave-transaction
// variant described in Section 5.1), and the visit-count equations
//
//	V_c2 = Σ_c1 V_c1 · p_{c1,c2}        (Equation 1)
//
// solved as a linear system with V_UT = 1 (one pass through the user-think
// phase per transaction execution).
package phase

import (
	"fmt"
	"math"
)

// Phase enumerates the transaction phases of Section 4.1.
type Phase int

const (
	// UT is the user think wait between transaction executions.
	UT Phase = iota
	// INIT is transaction initialization (TBEGIN/DBOPEN processing).
	INIT
	// U is user application processing for one request.
	U
	// TM is TM server message processing.
	TM
	// DM is DM server processing between two lock requests.
	DM
	// LR is lock request processing (including local deadlock detection).
	LR
	// DMIO is the disk I/O burst for one granule.
	DMIO
	// LW is the lock wait (blocked on a lock conflict).
	LW
	// RW is the remote request wait.
	RW
	// TC is transaction commit processing.
	TC
	// TA is transaction abort (rollback) processing.
	TA
	// TCIO is the commit log force-write disk I/O.
	TCIO
	// TAIO is the rollback disk I/O (before-image writes).
	TAIO
	// CWC is the two-phase-commit wait on the commit path.
	CWC
	// CWA is the two-phase-commit wait on the abort path.
	CWA
	// UL is unlock processing (release all locks).
	UL

	// NumPhases is the size of the phase set P.
	NumPhases = int(UL) + 1
)

var phaseNames = [NumPhases]string{
	"UT", "INIT", "U", "TM", "DM", "LR", "DMIO", "LW",
	"RW", "TC", "TA", "TCIO", "TAIO", "CWC", "CWA", "UL",
}

// String returns the paper's phase abbreviation.
func (ph Phase) String() string {
	if ph < 0 || int(ph) >= NumPhases {
		return fmt.Sprintf("Phase(%d)", int(ph))
	}
	return phaseNames[ph]
}

// All lists every phase in declaration order.
func All() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Matrix is a phase transition probability matrix: Matrix[c1][c2] is the
// probability of entering c2 on completing c1.
type Matrix [NumPhases][NumPhases]float64

// Validate checks that every row with any outgoing probability sums to 1.
func (m *Matrix) Validate() error {
	for i := 0; i < NumPhases; i++ {
		var sum float64
		for j := 0; j < NumPhases; j++ {
			p := m[i][j]
			if p < 0 || p > 1 {
				return fmt.Errorf("phase: p[%v][%v] = %v out of [0,1]", Phase(i), Phase(j), p)
			}
			sum += p
		}
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("phase: row %v sums to %v", Phase(i), sum)
		}
	}
	return nil
}

// Probs carries the quantities Table 1 is parameterized by.
type Probs struct {
	L int     // l(t): local requests
	R int     // r(t): remote requests (0 for local transactions)
	Q float64 // q(t): mean disk I/O operations (granule accesses) per request

	Pb  float64 // probability a lock request is blocked
	Pd  float64 // probability a blocked request is chosen deadlock victim
	Pra float64 // probability a remote wait ends in abort (coordinators only)
}

// N returns the total request count n(t) = l(t) + r(t).
func (pr Probs) N() int { return pr.L + pr.R }

// Coordinator builds Table 1: the transition matrix for local (LRO, LU;
// r = 0) and distributed coordinator (DROC, DUC) transactions. The total
// number of transitions out of TM is C = 2n+1: two per request (TDO
// routing and DOSTEP_K/REMDO_K processing) plus the TEND message.
func Coordinator(pr Probs) (*Matrix, error) {
	if pr.L < 0 || pr.R < 0 || pr.N() == 0 {
		return nil, fmt.Errorf("phase: need at least one request, got l=%d r=%d", pr.L, pr.R)
	}
	if pr.Q <= 0 {
		return nil, fmt.Errorf("phase: q must be positive, got %v", pr.Q)
	}
	if err := checkProbs(pr); err != nil {
		return nil, err
	}
	n := float64(pr.N())
	c := 2*n + 1
	var m Matrix
	m[UT][INIT] = 1
	m[INIT][U] = 1
	m[U][TM] = 1
	m[TM][U] = n / c
	m[TM][DM] = float64(pr.L) / c
	m[TM][RW] = float64(pr.R) / c
	m[TM][TC] = 1 / c
	m[DM][TM] = 1 / (pr.Q + 1)
	m[DM][LR] = pr.Q / (pr.Q + 1)
	m[LR][DMIO] = 1 - pr.Pb
	m[LR][LW] = pr.Pb
	m[DMIO][DM] = 1
	m[LW][DMIO] = 1 - pr.Pd
	m[LW][TA] = pr.Pd
	m[RW][TM] = 1 - pr.Pra
	m[RW][TA] = pr.Pra
	m[TC][CWC] = 1
	m[TA][CWA] = 1
	m[TCIO][UL] = 1
	m[TAIO][UL] = 1
	m[CWC][TCIO] = 1
	m[CWA][TAIO] = 1
	m[UL][UT] = 1
	return &m, nil
}

// Slave builds the matrix for distributed slave transactions (DROS, DUS),
// per Section 5.1's note that similar expressions hold for the slave
// types. A slave is driven by arriving remote requests: it moves straight
// from UT to TM on the first request, returns to RW after answering each
// request, and enters TC when the two-phase-commit PREPARE arrives. The
// total transitions out of TM are C' = 2l+1: per request one to DM
// (executing it) and one to RW (after sending the response), plus one to
// TC. Pra here is the probability that the wait for the next request ends
// with an abort instead (the coordinator died in a deadlock elsewhere).
func Slave(pr Probs) (*Matrix, error) {
	if pr.L <= 0 {
		return nil, fmt.Errorf("phase: slave needs local requests, got l=%d", pr.L)
	}
	if pr.R != 0 {
		return nil, fmt.Errorf("phase: slave cannot issue remote requests, got r=%d", pr.R)
	}
	if pr.Q <= 0 {
		return nil, fmt.Errorf("phase: q must be positive, got %v", pr.Q)
	}
	if err := checkProbs(pr); err != nil {
		return nil, err
	}
	l := float64(pr.L)
	c := 2*l + 1
	var m Matrix
	m[UT][TM] = 1
	m[TM][DM] = l / c
	m[TM][RW] = l / c
	m[TM][TC] = 1 / c
	m[DM][TM] = 1 / (pr.Q + 1)
	m[DM][LR] = pr.Q / (pr.Q + 1)
	m[LR][DMIO] = 1 - pr.Pb
	m[LR][LW] = pr.Pb
	m[DMIO][DM] = 1
	m[LW][DMIO] = 1 - pr.Pd
	m[LW][TA] = pr.Pd
	m[RW][TM] = 1 - pr.Pra
	m[RW][TA] = pr.Pra
	m[TC][CWC] = 1
	m[TA][CWA] = 1
	m[TCIO][UL] = 1
	m[TAIO][UL] = 1
	m[CWC][TCIO] = 1
	m[CWA][TAIO] = 1
	m[UL][UT] = 1
	return &m, nil
}

func checkProbs(pr Probs) error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Pb", pr.Pb}, {"Pd", pr.Pd}, {"Pra", pr.Pra}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("phase: %s = %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

// VisitCounts solves Equation 1 for the expected visits to each phase per
// transaction execution, normalized to V_UT = 1. The system
//
//	V_j = Σ_i V_i p_ij   (j ≠ UT),  V_UT = 1
//
// is solved by Gaussian elimination with partial pivoting.
func VisitCounts(m *Matrix) ([NumPhases]float64, error) {
	var visits [NumPhases]float64
	if err := m.Validate(); err != nil {
		return visits, err
	}
	// Unknowns: V_j for j = 1..NumPhases-1 (phase 0 is UT, fixed at 1).
	const k = NumPhases - 1
	var a [k][k + 1]float64 // augmented matrix
	for j := 1; j < NumPhases; j++ {
		row := j - 1
		for i := 1; i < NumPhases; i++ {
			a[row][i-1] = -m[i][j]
		}
		a[row][j-1] += 1
		a[row][k] = m[int(UT)][j] // contribution of V_UT = 1
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < k; col++ {
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-14 {
			return visits, fmt.Errorf("phase: singular visit-count system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= k; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	// Back substitution.
	var x [k]float64
	for row := k - 1; row >= 0; row-- {
		sum := a[row][k]
		for c := row + 1; c < k; c++ {
			sum -= a[row][c] * x[c]
		}
		x[row] = sum / a[row][row]
	}
	visits[UT] = 1
	for j := 1; j < NumPhases; j++ {
		v := x[j-1]
		if v < 0 && v > -1e-9 {
			v = 0
		}
		visits[j] = v
	}
	return visits, nil
}
