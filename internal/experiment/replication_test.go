package experiment

import (
	"reflect"
	"testing"

	"carat/internal/disk"
	"carat/internal/repl"
	"carat/internal/storage"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// replicatedMB4 is MB4 with an R=2 quorum-read replication policy attached.
func replicatedMB4(n int) workload.Workload {
	wl := workload.MB4(n)
	wl.Replication = repl.Policy{Factor: 2, Read: repl.ReadQuorum}
	return wl
}

// TestReplicationSweepAvailability pins the subsystem's payoff: with one
// site crashed during the window, the R=2 read-one point must sustain
// strictly higher availability (degraded-goodput ratio) than the
// unreplicated baseline, because reads of the down site's granules fail
// over to the surviving replica instead of blocking.
func TestReplicationSweepAvailability(t *testing.T) {
	opts := quickOpts()
	opts.Warmup = 10_000
	opts.Duration = 300_000
	plan := testbed.FaultPlan{
		Crashes: []testbed.SiteCrash{{Site: 1, AtMS: 60_000, DownForMS: 120_000}},
	}
	pts, err := ReplicationSweep(workload.MB4(8), []int{1, 2}, []repl.ReadMode{repl.ReadOne}, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	base, rep2 := pts[0], pts[1]
	if base.Factor != 1 || rep2.Factor != 2 {
		t.Fatalf("factors = %d, %d, want 1, 2", base.Factor, rep2.Factor)
	}
	if base.FailoverReads != 0 {
		t.Fatalf("baseline served %d failover reads, want 0", base.FailoverReads)
	}
	if rep2.FailoverReads == 0 {
		t.Fatal("R=2 point served no failover reads during the outage")
	}
	if base.Availability <= 0 || base.Availability >= 1 {
		t.Fatalf("baseline availability = %v, want in (0, 1)", base.Availability)
	}
	if rep2.Availability <= base.Availability {
		t.Fatalf("availability: R=2 %v is not strictly above the R=1 baseline %v",
			rep2.Availability, base.Availability)
	}
	for _, p := range pts {
		if p.TxnPerSec <= 0 || p.MeanCommitLatencyMS <= 0 {
			t.Fatalf("R=%d: degenerate point %+v", p.Factor, p)
		}
	}
}

// TestReplicationSweepBaselineOnce checks the grid shape: factor-1 points
// ignore the read-mode axis and appear exactly once.
func TestReplicationSweepBaselineOnce(t *testing.T) {
	opts := quickOpts()
	opts.Warmup = 10_000
	opts.Duration = 60_000
	plan := testbed.FaultPlan{}
	pts, err := ReplicationSweep(workload.MB4(4), []int{1, 2},
		[]repl.ReadMode{repl.ReadOne, repl.ReadQuorum}, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3 (one baseline + two R=2 read modes)", len(pts))
	}
	if pts[0].Factor != 1 || pts[0].ReadMode != "one" {
		t.Fatalf("first point = R=%d read=%s, want the R=1 read-one baseline",
			pts[0].Factor, pts[0].ReadMode)
	}
	if pts[1].ReadMode != "one" || pts[2].ReadMode != "quorum" {
		t.Fatalf("R=2 read modes = %s, %s, want one, quorum", pts[1].ReadMode, pts[2].ReadMode)
	}
	if pts[2].QuorumReads == 0 {
		t.Fatal("quorum point counted no quorum confirmations")
	}
}

// threeNodeMB is a hand-built three-site distributed mix (the standard
// workloads are all two-node), so the sweep can reach R=3.
func threeNodeMB(n int) workload.Workload {
	var users []testbed.UserSpec
	for node := 0; node < 3; node++ {
		other := testbed.NodeID((node + 1) % 3)
		users = append(users,
			testbed.UserSpec{Kind: testbed.LRO, Home: testbed.NodeID(node)},
			testbed.UserSpec{Kind: testbed.LU, Home: testbed.NodeID(node)},
			testbed.UserSpec{Kind: testbed.DRO, Home: testbed.NodeID(node), Remote: other},
			testbed.UserSpec{Kind: testbed.DU, Home: testbed.NodeID(node), Remote: other},
		)
	}
	return workload.Workload{
		Name:              "MB-3site",
		NumNodes:          3,
		Users:             users,
		RequestsPerTxn:    n,
		RecordsPerRequest: 4,
		RemoteFrac:        0.5,
		Layout:            storage.DefaultLayout(),
		Params:            testbed.DefaultParams(3),
		DBDisks:           []disk.ServiceModel{disk.ProfileRM05(), disk.ProfileRP06(), disk.ProfileRM05()},
		LogDisks:          []disk.ServiceModel{nil, nil, nil},
	}
}

// TestReplicationSweepFactorThree covers the full R ∈ {1, 2, 3} grid on a
// three-site workload: every factor must run, and replica traffic must grow
// with the factor (each write reaches R-1 replicas).
func TestReplicationSweepFactorThree(t *testing.T) {
	opts := quickOpts()
	opts.Warmup = 10_000
	opts.Duration = 120_000
	plan := testbed.FaultPlan{
		Crashes: []testbed.SiteCrash{{Site: 2, AtMS: 40_000, DownForMS: 40_000}},
	}
	pts, err := ReplicationSweep(threeNodeMB(8), []int{1, 2, 3}, []repl.ReadMode{repl.ReadOne}, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	for i, p := range pts {
		if p.Factor != i+1 {
			t.Fatalf("point %d has factor %d", i, p.Factor)
		}
		if p.TxnPerSec <= 0 {
			t.Fatalf("R=%d: no goodput", p.Factor)
		}
	}
	if pts[0].ReplicaApplies != 0 {
		t.Fatalf("baseline journaled %d replica applies, want 0", pts[0].ReplicaApplies)
	}
	if pts[1].ReplicaApplies == 0 || pts[2].ReplicaApplies <= pts[1].ReplicaApplies {
		t.Fatalf("replica applies must grow with the factor: R=2 %d, R=3 %d",
			pts[1].ReplicaApplies, pts[2].ReplicaApplies)
	}
}

// TestReplicatedSweepDeterministicAcrossWorkerCounts extends the
// determinism-under-concurrency guarantee to replicated-granule workloads: a
// parallel sweep with an R=2 quorum policy attached must be bit-identical on
// 1 and 4 workers.
func TestReplicatedSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []*RepComparison {
		rcs, err := SweepReplicated(replicatedMB4, []int{4, 8}, repOpts(3, workers))
		if err != nil {
			t.Fatal(err)
		}
		return rcs
	}
	one := run(1)
	four := run(4)
	for i := range one {
		if !reflect.DeepEqual(one[i].Reps, four[i].Reps) {
			t.Fatalf("n=%d: replicated results differ between 1 and 4 workers", one[i].N)
		}
	}
}

// TestReplicatedChaosAuditClean runs the randomized fault audit over ten
// seeds with R=2 replication and requires every invariant — replica
// agreement included — to hold in every run.
func TestReplicatedChaosAuditClean(t *testing.T) {
	wl := workload.MB4(8)
	wl.Replication = repl.Policy{Factor: 2}
	report, err := RunChaos(wl, ChaosOptions{Runs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bad := report.Violations(); len(bad) > 0 {
		t.Fatalf("replicated chaos violations:\n%v", bad)
	}
}
