package experiment

import (
	"fmt"

	"carat/internal/phase"
)

// transitionTable formats the coordinator phase transition matrix (Table 1
// of the paper) for the given parameters.
func transitionTable(l, r int, q, pb, pd, pra float64) (*Table, error) {
	m, err := phase.Coordinator(phase.Probs{L: l, R: r, Q: q, Pb: pb, Pd: pd, Pra: pra})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table 1",
		Title: fmt.Sprintf("Transaction Phase Transition Probabilities (l=%d, r=%d, q=%.2g, Pb=%.2g, Pd=%.2g, Pra=%.2g)", l, r, q, pb, pd, pra),
	}
	t.Header = append(t.Header, "from\\to")
	for _, ph := range phase.All() {
		t.Header = append(t.Header, ph.String())
	}
	for _, from := range phase.All() {
		row := []string{from.String()}
		for _, to := range phase.All() {
			p := m[from][to]
			if p == 0 {
				row = append(row, "0")
			} else {
				row = append(row, fmt.Sprintf("%.3f", p))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
