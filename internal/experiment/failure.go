package experiment

import (
	"fmt"

	"carat/internal/testbed"
	"carat/internal/workload"
)

// FailurePoint is one point of a failure sweep: the workload simulated under
// a crash process with the given mean time to failure.
type FailurePoint struct {
	// MTTFMS is the per-site mean time to failure at this point (0 is the
	// fault-free baseline).
	MTTFMS float64
	// Results is the full simulator measurement.
	Results testbed.Results
	// TxnPerSec is the system-wide commit rate (goodput) in txn/s.
	TxnPerSec float64
	// Availability is the mean per-site availability over the window.
	Availability float64
	// System-wide abort and recovery counts.
	Crashes          int64
	CrashAborts      int64
	TimeoutAborts    int64
	InDoubtCommitted int64
	InDoubtAborted   int64
}

// FailureSweep simulates the workload at fixed transaction size under an
// increasing crash rate: for each mean time to failure the plan's
// CrashMTTFMS is overridden and the simulator run with opts. An MTTF of 0
// disables the random crash process at that point — with an otherwise-zero
// plan, that point is the fault-free baseline the degraded points compare
// against. The plan's timeouts, message faults and explicit crashes apply at
// every point.
func FailureSweep(wl workload.Workload, mttfs []float64, plan testbed.FaultPlan, opts SimOptions) ([]FailurePoint, error) {
	out := make([]FailurePoint, 0, len(mttfs))
	for _, mttf := range mttfs {
		p := plan
		p.CrashMTTFMS = mttf
		wl := wl
		wl.Faults = &p
		cfg := wl.TestbedConfig(opts.Seed, opts.Warmup, opts.Duration)
		sys, err := testbed.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: failure sweep mttf=%v: %w", mttf, err)
		}
		res := sys.Run()
		fp := FailurePoint{MTTFMS: mttf, Results: res}
		for _, n := range res.Nodes {
			fp.TxnPerSec += n.TotalTxnThroughput
			fp.Availability += n.Availability / float64(len(res.Nodes))
			fp.Crashes += n.Crashes
			fp.CrashAborts += n.CrashAborts
			fp.TimeoutAborts += n.TimeoutAborts
			fp.InDoubtCommitted += n.InDoubtCommitted
			fp.InDoubtAborted += n.InDoubtAborted
		}
		out = append(out, fp)
	}
	return out, nil
}
