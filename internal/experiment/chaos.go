package experiment

import (
	"fmt"

	"carat/internal/rng"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// ChaosOptions configures a randomized fault-injection audit: a sequence of
// simulator runs, each under a fault plan and resilience policy drawn from a
// seeded stream, each checked against the testbed's hard invariants
// (testbed.Auditor) and against a goodput floor relative to a fault-free
// baseline of the same workload.
type ChaosOptions struct {
	// Runs is the number of randomized runs (default 20).
	Runs int
	// Seed labels the whole audit: run r draws its fault plan, resilience
	// policy and simulation seed from the stream SeedStream(Seed, r), so
	// any single run can be reproduced in isolation (default 1).
	Seed uint64
	// Warmup and Duration bound each run in simulated ms (defaults 5_000
	// and 90_000).
	Warmup   float64
	Duration float64
	// MinGoodputFrac is the fraction of the fault-free baseline commit
	// rate every faulted run must retain; crossing it is reported as a
	// violation (default 0.05, i.e. the system must not collapse). Set
	// negative to disable the floor.
	MinGoodputFrac float64
	// Partitions, when true, additionally draws scheduled network
	// partitions (healing before the run ends) and failure-detector
	// timings into every run's plan, arming the split-brain checks: the
	// auditor's cross-site atomicity, replica-agreement, and post-heal
	// reconciliation invariants. Off by default so the historical audit
	// stream is unchanged.
	Partitions bool
	// Progress, when non-nil, is called after each completed run.
	Progress func(done, total int)
}

func (o *ChaosOptions) defaults() {
	if o.Runs <= 0 {
		o.Runs = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Warmup <= 0 {
		o.Warmup = 5_000
	}
	if o.Duration <= 0 {
		o.Duration = 90_000
	}
	if o.MinGoodputFrac == 0 {
		o.MinGoodputFrac = 0.05
	}
}

// ChaosRun is the record of one randomized run.
type ChaosRun struct {
	// Run is the 0-based run index; Seed is the simulation seed it ran with.
	Run  int
	Seed uint64
	// Plan and Resilience are the drawn configuration, kept so a failing
	// run can be replayed exactly.
	Plan       testbed.FaultPlan
	Resilience testbed.Resilience
	// GoodputTPS is the system-wide commit rate over the run's window.
	GoodputTPS float64
	// Violations lists every invariant the auditor (or the goodput floor)
	// found broken; empty means the run was clean.
	Violations []string
}

// ChaosReport is the outcome of a whole audit.
type ChaosReport struct {
	// BaselineTPS is the fault-free goodput of the workload at the audit's
	// base seed, the reference for the goodput floor.
	BaselineTPS float64
	Runs        []ChaosRun
}

// Violations flattens every run's violations, prefixed with the run index
// and seed so each is independently reproducible.
func (r *ChaosReport) Violations() []string {
	var out []string
	for _, run := range r.Runs {
		for _, v := range run.Violations {
			out = append(out, fmt.Sprintf("run %d (seed %#x): %s", run.Run, run.Seed, v))
		}
	}
	return out
}

// drawPlan samples a bounded fault plan: every mechanism active, rates held
// in ranges under which a correct system must stay live (detection channels
// heal, timeouts are finite, crashes are transient).
func drawPlan(r *rng.Rand) testbed.FaultPlan {
	p := testbed.FaultPlan{
		CrashMTTFMS:       30_000 + 60_000*r.Float64(),
		CrashMTTRMS:       2_000 + 4_000*r.Float64(),
		MsgLossProb:       0.2 * r.Float64(),
		MsgExtraDelayProb: 0.2 * r.Float64(),
		PrepareTimeoutMS:  2_000 + 8_000*r.Float64(),
		LockWaitTimeoutMS: 5_000 + 15_000*r.Float64(),
	}
	if r.Bool(0.5) {
		// Half the runs also degrade the deadlock-detection channel.
		p.ProbeLossProb = 0.5 * r.Float64()
	}
	return p
}

// drawPartitions augments a plan with one or two scheduled partitions —
// random two-sided splits, each healing well before the run ends so the
// post-heal reconciliation invariant is actually exercised — plus the
// failure-detector timings that arm suspicion-based shedding and failover
// refusal.
func drawPartitions(r *rng.Rand, p *testbed.FaultPlan, sites int, duration float64) {
	at := 0.1 * duration
	for i := 0; i < 2; i++ {
		at += r.Float64() * 0.15 * duration
		heal := 5_000 + r.Float64()*0.15*duration
		if at+heal > 0.75*duration {
			break
		}
		var a, b []testbed.NodeID
		for s := 0; s < sites; s++ {
			if r.Bool(0.5) {
				a = append(a, testbed.NodeID(s))
			} else {
				b = append(b, testbed.NodeID(s))
			}
		}
		if len(a) > 0 && len(b) > 0 {
			p.Partitions = append(p.Partitions, testbed.PartitionSchedule{
				Groups:      [][]testbed.NodeID{a, b},
				AtMS:        at,
				HealAfterMS: heal,
			})
		}
		at += heal
	}
	p.HeartbeatIntervalMS = 100 + 200*r.Float64()
	p.SuspectAfterMS = 500 + 1_000*r.Float64()
}

// drawResilience samples a resilience policy, including the degenerate
// corners (no retry budget, no admission gate) so the audit also covers the
// paper's retry-forever behavior under faults.
func drawResilience(r *rng.Rand, usersPerSite int) testbed.Resilience {
	var res testbed.Resilience
	if r.Bool(0.7) {
		res.Retry = testbed.RetryPolicy{
			MaxAttempts:   4 + r.Intn(7),
			BaseBackoffMS: 10 + 90*r.Float64(),
			JitterFrac:    0.5 * r.Float64(),
		}
	}
	if r.Bool(0.5) {
		res.Admission = testbed.AdmissionPolicy{
			MaxMPL: 1 + r.Intn(usersPerSite),
			Shed:   r.Bool(0.5),
		}
	}
	res.ProbeRetryMS = 200 + 800*r.Float64()
	return res
}

// RunChaos executes the audit over the given workload. Fault and resilience
// configuration on the workload itself is overridden per run; everything
// else (topology, transaction mix, service demands) is kept. The whole
// audit is deterministic in (workload, options).
func RunChaos(wl workload.Workload, opts ChaosOptions) (*ChaosReport, error) {
	opts.defaults()

	// Fault-free baseline for the goodput floor: the plain workload with
	// no faults and no resilience at the audit's base seed.
	base := wl
	base.Faults = nil
	base.Resilience = testbed.Resilience{}
	bsys, err := testbed.New(base.TestbedConfig(opts.Seed, opts.Warmup, opts.Duration))
	if err != nil {
		return nil, fmt.Errorf("experiment: chaos baseline: %w", err)
	}
	report := &ChaosReport{BaselineTPS: goodput(bsys.Run())}

	usersPerSite := len(wl.Users) / wl.NumNodes
	if usersPerSite < 1 {
		usersPerSite = 1
	}
	for run := 0; run < opts.Runs; run++ {
		r := rng.New(rng.SeedStream(opts.Seed, uint64(run)))
		plan := drawPlan(r)
		if opts.Partitions {
			drawPartitions(r, &plan, wl.NumNodes, opts.Duration)
		}
		res := drawResilience(r, usersPerSite)
		seed := r.Uint64()

		cw := wl
		cw.Faults = &plan
		cw.Resilience = res
		cfg := cw.TestbedConfig(seed, opts.Warmup, opts.Duration)
		aud := testbed.NewAuditor()
		cfg.Trace = aud.Record
		sys, err := testbed.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: chaos run %d: %w", run, err)
		}
		measured := sys.Run()

		cr := ChaosRun{Run: run, Seed: seed, Plan: plan, Resilience: res, GoodputTPS: goodput(measured)}
		cr.Violations = aud.Audit(sys)
		if floor := opts.MinGoodputFrac * report.BaselineTPS; opts.MinGoodputFrac >= 0 && cr.GoodputTPS < floor {
			cr.Violations = append(cr.Violations, fmt.Sprintf(
				"goodput: %.2f txn/s under faults, below %.0f%% of the %.2f txn/s fault-free baseline",
				cr.GoodputTPS, 100*opts.MinGoodputFrac, report.BaselineTPS))
		}
		report.Runs = append(report.Runs, cr)
		if opts.Progress != nil {
			opts.Progress(run+1, opts.Runs)
		}
	}
	return report, nil
}

// goodput sums the system-wide commit rate in txn/s.
func goodput(res testbed.Results) float64 {
	var tps float64
	for _, n := range res.Nodes {
		tps += n.TotalTxnThroughput
	}
	return tps
}
