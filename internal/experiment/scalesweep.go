package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"carat/internal/disk"
	"carat/internal/placement"
	"carat/internal/storage"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// ScalePoint is the measurement at one (sites, locality, λ) cell of the
// scale-out study, with the per-center utilizations that locate the
// system's bottleneck.
type ScalePoint struct {
	Sites int
	// Locality is the affinity fraction (locality strategy; recorded but
	// inert under hash and range).
	Locality float64
	// LambdaPerSite is the open arrival rate offered per site, txn/s.
	LambdaPerSite float64

	// CommittedTPS is system-wide committed transactions per second;
	// AbortRate is (submissions − commits) / submissions over the window;
	// MeanResponseMS is the commit-weighted mean response time.
	CommittedTPS   float64
	AbortRate      float64
	MeanResponseMS float64

	// The candidate bottleneck centers: the maximum CPU, disk (database or
	// log device) and TM utilization over all sites, and the shared wire's
	// offered utilization (above 1 the offered traffic exceeds the raw
	// channel capacity), plus the wire's per-message contention and
	// queueing delays.
	MaxCPUUtil         float64
	MaxDiskUtil        float64
	MaxTMUtil          float64
	WireUtil           float64
	NetMeanInflationMS float64
	NetMeanQueueMS     float64

	// Bottleneck names the max-utilization center: cpu, disk, tm or wire.
	Bottleneck string
}

// ScaleSweepResult is the full sites × locality × λ grid for one placement
// strategy.
type ScaleSweepResult struct {
	Strategy   placement.Strategy
	Sites      []int
	Localities []float64
	Lambdas    []float64
	// Points is sites-major, then locality, then λ — the same order Table
	// renders.
	Points []ScalePoint
}

// ScaleWorkload builds one cell's N-site workload: a homogeneous RM05
// fleet with striped database disks, dedicated log devices and a warm
// buffer (so the per-site centers stay comfortably below saturation and
// the shared wire can become the binding center at scale), uniform access
// over every shard (skewed anchors would pile the scattered traffic onto
// a few hot sites and drown the wire signal in lock thrashing),
// directory-driven placement with the given strategy and affinity, a
// shared Ethernet fabric with one contending host per site, and open
// Poisson arrivals at λ per site under a bounded MPL.
// scaleMaxMPL is the per-site admission cap of every scale cell.
const scaleMaxMPL = 12

func ScaleWorkload(strategy placement.Strategy, sites int, locality, lambdaPerSite float64) workload.Workload {
	dbs := make([]disk.ServiceModel, sites)
	logs := make([]disk.ServiceModel, sites)
	for i := range dbs {
		dbs[i] = disk.ProfileRM05()
		logs[i] = disk.ProfileRM05()
	}
	return workload.Workload{
		Name:              fmt.Sprintf("SCALE-%v-%d", strategy, sites),
		NumNodes:          sites,
		RequestsPerTxn:    8,
		RecordsPerRequest: 2,
		RemoteFrac:        0.5,
		Layout:            storage.Layout{Granules: 2400, RecordsPerGran: 6},
		Params:            testbed.DefaultParams(sites),
		DBDisks:           dbs,
		LogDisks:          logs,
		DiskStripes:       4,
		BufferHitRatio:    0.9,
		Pattern:           storage.Uniform{},
		Placement:         &testbed.PlacementConfig{Strategy: strategy, Affinity: locality},
		FabricHosts:       sites,
		// The 2.94 Mb/s experimental-Ethernet rate: against the paper's
		// hundreds-of-ms CPU costs per transaction, a 10 Mb/s segment
		// never binds; the original thin-wire rate lets the shared medium
		// become the bottleneck center the sweep is designed to expose.
		FabricBandwidthBitsPerMS: 2.94e3,
		// A distributed submission holds a DM slot at home and at every
		// participant for its whole lifetime, with no deadlock detection on
		// the pool; size it to the worst case (sites × MPL) so cross-site
		// hold-and-wait cycles cannot gridlock low-locality cells.
		DMServers: sites * scaleMaxMPL,
		// Shed past the MPL cap and pace retries so overloaded cells
		// degrade to a goodput plateau instead of queueing without bound.
		Resilience: testbed.Resilience{
			Retry:     testbed.RetryPolicy{BaseBackoffMS: 50},
			Admission: testbed.AdmissionPolicy{MaxMPL: scaleMaxMPL, Shed: true},
		},
		Open: &testbed.OpenConfig{RatePerSec: lambdaPerSite * float64(sites)},
	}
}

// ScaleSweep runs the scale-out study: every site count crossed with every
// locality level and every per-site arrival rate, under one placement
// strategy, measuring throughput and the per-center utilizations that
// locate the bottleneck as the fleet grows and locality drops. The grid
// fans out across a worker pool with a fixed seed RepSeed(opts.Seed, cell,
// 0) and a fixed result slot per cell, so the output is bit-identical for
// any worker count.
func ScaleSweep(strategy placement.Strategy, sites []int, localities, lambdas []float64, opts SimOptions) (*ScaleSweepResult, error) {
	if len(sites) == 0 || len(localities) == 0 || len(lambdas) == 0 {
		return nil, fmt.Errorf("experiment: scale sweep needs site counts, localities and arrival rates")
	}
	if !strategy.Valid() {
		return nil, fmt.Errorf("experiment: scale sweep: unknown placement strategy %d", int(strategy))
	}
	type cell struct {
		sites    int
		locality float64
		lambda   float64
	}
	var cells []cell
	for _, s := range sites {
		for _, loc := range localities {
			for _, l := range lambdas {
				cells = append(cells, cell{sites: s, locality: loc, lambda: l})
			}
		}
	}

	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]testbed.Results, len(cells))
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards done and firstErr, serializes Progress
		done     int
		failed   atomic.Bool
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if failed.Load() {
					continue
				}
				cl := cells[idx]
				wl := ScaleWorkload(strategy, cl.sites, cl.locality, cl.lambda)
				cfg := wl.TestbedConfig(RepSeed(opts.Seed, idx, 0), opts.Warmup, opts.Duration)
				sys, err := testbed.New(cfg)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("experiment: %v/%d sites/loc %.2f/λ %.2f: %w",
							strategy, cl.sites, cl.locality, cl.lambda, err)
					}
					mu.Unlock()
					continue
				}
				results[idx] = sys.Run()
				mu.Lock()
				done++
				if opts.Progress != nil {
					opts.Progress(done, len(cells))
				}
				mu.Unlock()
			}
		}()
	}
	for idx := range cells {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := &ScaleSweepResult{Strategy: strategy, Sites: sites, Localities: localities, Lambdas: lambdas}
	for idx, cl := range cells {
		out.Points = append(out.Points, scalePoint(cl.sites, cl.locality, cl.lambda, results[idx]))
	}
	return out, nil
}

// scalePoint aggregates one cell's run into the reported measurement.
func scalePoint(sites int, locality, lambda float64, res testbed.Results) ScalePoint {
	pt := ScalePoint{Sites: sites, Locality: locality, LambdaPerSite: lambda}
	var subs, commits int64
	var respWeighted float64
	for _, nr := range res.Nodes {
		for _, k := range []testbed.TxnKind{testbed.LRO, testbed.LU, testbed.DRO, testbed.DU} {
			subs += nr.Submissions[k]
			commits += nr.Commits[k]
			respWeighted += nr.MeanResponse[k] * float64(nr.Commits[k])
		}
		if nr.CPUUtilization > pt.MaxCPUUtil {
			pt.MaxCPUUtil = nr.CPUUtilization
		}
		if nr.DBDiskUtilization > pt.MaxDiskUtil {
			pt.MaxDiskUtil = nr.DBDiskUtilization
		}
		if nr.LogDiskUtilization > pt.MaxDiskUtil {
			pt.MaxDiskUtil = nr.LogDiskUtilization
		}
		if nr.TMUtilization > pt.MaxTMUtil {
			pt.MaxTMUtil = nr.TMUtilization
		}
	}
	if res.Window > 0 {
		pt.CommittedTPS = float64(commits) / res.Window * 1000
	}
	// Commits of submissions that straddle the warmup boundary can nudge
	// commits past subs; clamp instead of reporting a negative rate.
	if subs > 0 && commits < subs {
		pt.AbortRate = float64(subs-commits) / float64(subs)
	}
	if commits > 0 {
		pt.MeanResponseMS = respWeighted / float64(commits)
	}
	pt.WireUtil = res.NetUtilization
	pt.NetMeanInflationMS = res.NetMeanInflationMS
	pt.NetMeanQueueMS = res.NetMeanQueueMS
	pt.Bottleneck = bottleneckOf(pt)
	return pt
}

// bottleneckOf names the max-utilization center of one cell.
func bottleneckOf(pt ScalePoint) string {
	name, max := "cpu", pt.MaxCPUUtil
	if pt.MaxDiskUtil > max {
		name, max = "disk", pt.MaxDiskUtil
	}
	if pt.MaxTMUtil > max {
		name, max = "tm", pt.MaxTMUtil
	}
	if pt.WireUtil > max {
		name = "wire"
	}
	return name
}

// Point returns the cell for one (sites, locality, λ) triple.
func (r *ScaleSweepResult) Point(sites int, locality, lambda float64) (ScalePoint, bool) {
	for _, p := range r.Points {
		if p.Sites == sites && p.Locality == locality && p.LambdaPerSite == lambda {
			return p, true
		}
	}
	return ScalePoint{}, false
}

// Table renders the full grid as the bottleneck-migration table
// EXPERIMENTS.md embeds: one row per cell, sites-major.
func (r *ScaleSweepResult) Table() *Table {
	t := &Table{
		ID: "Scale sweep",
		Title: fmt.Sprintf("Bottleneck migration at scale (%v placement): per-center utilizations as sites × locality × λ grow",
			r.Strategy),
		Header: []string{
			"Sites", "Locality", "λ/site",
			"TPS", "Abort rate", "Resp (ms)",
			"CPU util", "Disk util", "TM util", "Wire util",
			"Wire inflation (ms)", "Wire queue (ms)", "Bottleneck",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Sites),
			fmt.Sprintf("%.2f", p.Locality),
			fmt.Sprintf("%.2f", p.LambdaPerSite),
			fmt.Sprintf("%.1f", p.CommittedTPS),
			fmt.Sprintf("%.3f", p.AbortRate),
			fmt.Sprintf("%.0f", p.MeanResponseMS),
			fmt.Sprintf("%.2f", p.MaxCPUUtil),
			fmt.Sprintf("%.2f", p.MaxDiskUtil),
			fmt.Sprintf("%.2f", p.MaxTMUtil),
			fmt.Sprintf("%.2f", p.WireUtil),
			fmt.Sprintf("%.3f", p.NetMeanInflationMS),
			fmt.Sprintf("%.3f", p.NetMeanQueueMS),
			p.Bottleneck,
		})
	}
	return t
}
