package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"carat/internal/core"
	"carat/internal/rng"
	"carat/internal/stats"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// RepSeed returns the simulation seed for replication rep (0-based) of the
// sweep point with transaction size n.
//
// The scheme is fixed and documented so any replication can be reproduced
// in isolation with the single-run CLI:
//
//	rep 0:  the base seed itself, at every point — byte-identical to the
//	        historical serial Sweep/Run path (and its golden tests).
//	rep r>0: rng.SeedStream(base, id) with stream id = n<<32 | r, so
//	        every (point, replication) pair owns a provably distinct
//	        substream label and streams are effectively uncorrelated.
func RepSeed(base uint64, n, rep int) uint64 {
	if rep == 0 {
		return base
	}
	return rng.SeedStream(base, uint64(n)<<32|uint64(rep))
}

// Estimate is an across-replication estimate of one scalar: the sample mean
// over independent runs with a two-sided 95% Student-t confidence
// half-width (+Inf when fewer than two replications ran).
type Estimate struct {
	Mean      float64
	HalfWidth float64
	Reps      int
}

// String formats the estimate as "mean ±half".
func (e Estimate) String() string {
	if math.IsInf(e.HalfWidth, 1) {
		return fmt.Sprintf("%.3f", e.Mean)
	}
	return fmt.Sprintf("%.3f ±%.3f", e.Mean, e.HalfWidth)
}

// RepComparison pairs the model's predictions with a set of independent
// simulation replications for one workload at one transaction size. The
// model side is deterministic and solved once; the measured side carries
// one Results per replication, in replication order.
type RepComparison struct {
	Workload string
	N        int
	Model    *core.Result
	// Seeds[r] is the seed replication r ran with (RepSeed(base, N, r)).
	Seeds []uint64
	// Reps[r] is replication r's measurement.
	Reps []testbed.Results
}

// Comparison returns the single-run view of replication rep, for code (and
// metrics) that consume the serial Comparison shape.
func (rc *RepComparison) Comparison(rep int) *Comparison {
	return &Comparison{Workload: rc.Workload, N: rc.N, Model: rc.Model, Measured: rc.Reps[rep]}
}

// First returns replication 0's view — byte-identical to what the serial
// Run would have produced with the base seed.
func (rc *RepComparison) First() *Comparison { return rc.Comparison(0) }

// Estimate extracts one metric at one node from every replication and
// returns the model's value alongside the across-replication estimate.
func (rc *RepComparison) Estimate(metric Metric, node int) (model float64, est Estimate) {
	var t stats.Tally
	for rep := range rc.Reps {
		mo, me := metric.Get(rc.Comparison(rep), node)
		model = mo
		t.Add(me)
	}
	return model, Estimate{Mean: t.Mean(), HalfWidth: t.CI95(), Reps: int(t.N())}
}

// RunReplicated is the replication-aware Run: it solves the model once and
// runs opts.Replications independent simulations of the workload on a
// worker pool, each with its own environment and derived seed.
func RunReplicated(wl workload.Workload, opts SimOptions) (*RepComparison, error) {
	out, err := SweepReplicated(func(int) workload.Workload { return wl }, []int{wl.RequestsPerTxn}, opts)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// SweepReplicated is the replication-aware Sweep: it fans the sweep's
// (point, replication) grid across a GOMAXPROCS-bounded worker pool. Each
// job builds its own workload, testbed.System and sim.Env, so nothing
// mutable is shared between concurrent simulations; each runs with the
// seed RepSeed(opts.Seed, n, rep). Results land in fixed (point,
// replication) slots, so the output is bit-identical for any worker count.
func SweepReplicated(mk func(n int) workload.Workload, ns []int, opts SimOptions) ([]*RepComparison, error) {
	reps := opts.Replications
	if reps < 1 {
		reps = 1
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if total := len(ns) * reps; workers > total {
		workers = total
	}

	// The model side is deterministic: solve each point once, serially.
	out := make([]*RepComparison, len(ns))
	for i, n := range ns {
		wl := mk(n)
		m, err := wl.Model()
		if err != nil {
			return nil, fmt.Errorf("experiment: n=%d: building model: %w", n, err)
		}
		res, err := core.Solve(m)
		if err != nil {
			return nil, fmt.Errorf("experiment: n=%d: solving model: %w", n, err)
		}
		rc := &RepComparison{
			Workload: wl.Name,
			N:        wl.RequestsPerTxn,
			Model:    res,
			Seeds:    make([]uint64, reps),
			Reps:     make([]testbed.Results, reps),
		}
		for r := 0; r < reps; r++ {
			rc.Seeds[r] = RepSeed(opts.Seed, n, r)
		}
		out[i] = rc
	}

	type job struct{ point, rep int }
	jobs := make(chan job)
	total := len(ns) * reps
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards done and firstErr, serializes Progress
		done     int
		failed   atomic.Bool
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if failed.Load() {
					continue
				}
				rc := out[j.point]
				// A fresh workload per job: constructors build their own
				// parameter maps, so concurrent simulations share nothing.
				wl := mk(rc.N)
				cfg := wl.TestbedConfig(rc.Seeds[j.rep], opts.Warmup, opts.Duration)
				sys, err := testbed.New(cfg)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("experiment: n=%d rep %d: %w", rc.N, j.rep, err)
					}
					mu.Unlock()
					continue
				}
				rc.Reps[j.rep] = sys.Run()
				mu.Lock()
				done++
				if opts.Progress != nil {
					opts.Progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}
	for point := range out {
		for rep := 0; rep < reps; rep++ {
			jobs <- job{point: point, rep: rep}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
