package experiment

import (
	"fmt"

	"carat/internal/repl"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// PartitionPoint is one point of a partition sweep: the workload simulated
// with a scheduled network partition of the given duration under the given
// replication factor.
type PartitionPoint struct {
	// DurationMS is the partition's scheduled duration at this point (0 is
	// the partition-free baseline).
	DurationMS float64
	// Factor is the replication factor R (1 = unreplicated).
	Factor int
	// Results is the full simulator measurement.
	Results testbed.Results
	// TxnPerSec is the system-wide commit rate (goodput) in txn/s over the
	// whole window.
	TxnPerSec float64
	// GoodputFrac is TxnPerSec relative to the same factor's
	// partition-free (DurationMS = 0) point — the sweep's availability
	// measure. 1 when the sweep has no zero-duration baseline.
	GoodputFrac float64
	// MeanCommitLatencyMS is the commit-weighted mean response time across
	// all sites and transaction kinds, in ms.
	MeanCommitLatencyMS float64
	// System-wide partition effect counters.
	PartitionAborts int64
	PartitionShed   int64
	SuspectEvents   int64
	FailoverReads   int64
	// PartitionMS is the measured severed time inside the window.
	PartitionMS float64
}

// partitionHalves splits the first ceil(n/2) sites from the rest — the
// scheduled split every sweep point uses, so points differ only in how long
// the split lasts.
func partitionHalves(n int) [][]testbed.NodeID {
	var a, b []testbed.NodeID
	for s := 0; s < n; s++ {
		if s < (n+1)/2 {
			a = append(a, testbed.NodeID(s))
		} else {
			b = append(b, testbed.NodeID(s))
		}
	}
	return [][]testbed.NodeID{a, b}
}

// PartitionSweep simulates the workload under a scheduled half/half network
// partition of each duration at each replication factor, reporting goodput,
// partition-shed and -abort counts, and commit latency per point. The
// partition starts a quarter of the way into the measured window. Duration
// 0 runs the partition-free baseline for its factor (plan.Partitions
// cleared), against which GoodputFrac is computed. The base plan should
// carry finite LockWaitTimeoutMS and PrepareTimeoutMS so minority-side
// transactions abort instead of wedging for the whole split.
func PartitionSweep(wl workload.Workload, durations []float64, factors []int, plan testbed.FaultPlan, opts SimOptions) ([]PartitionPoint, error) {
	onset := opts.Warmup + 0.25*(opts.Duration-opts.Warmup)
	groups := partitionHalves(wl.NumNodes)
	var out []PartitionPoint
	for _, factor := range factors {
		factorStart := len(out)
		for _, dur := range durations {
			wl := wl
			p := plan
			p.Partitions = nil
			if dur > 0 {
				p.Partitions = []testbed.PartitionSchedule{
					{Groups: groups, AtMS: onset, HealAfterMS: dur},
				}
			}
			wl.Faults = &p
			if factor > 1 {
				wl.Replication = repl.Policy{Factor: factor, Read: repl.ReadOne}
			} else {
				wl.Replication = repl.Policy{}
			}
			cfg := wl.TestbedConfig(opts.Seed, opts.Warmup, opts.Duration)
			sys, err := testbed.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: partition sweep R=%d dur=%v: %w", factor, dur, err)
			}
			out = append(out, partitionPoint(dur, factor, sys.Run()))
		}
		// GoodputFrac against this factor's zero-duration baseline.
		base := 0.0
		for _, pt := range out[factorStart:] {
			if pt.DurationMS == 0 {
				base = pt.TxnPerSec
			}
		}
		for i := factorStart; i < len(out); i++ {
			out[i].GoodputFrac = 1
			if base > 0 {
				out[i].GoodputFrac = out[i].TxnPerSec / base
			}
		}
	}
	return out, nil
}

// partitionPoint aggregates one run's measurements into a sweep point.
func partitionPoint(dur float64, factor int, res testbed.Results) PartitionPoint {
	pt := PartitionPoint{
		DurationMS:  dur,
		Factor:      factor,
		Results:     res,
		PartitionMS: res.PartitionMS,
	}
	var commits int64
	var latencyWeighted float64
	for _, n := range res.Nodes {
		pt.TxnPerSec += n.TotalTxnThroughput
		pt.PartitionAborts += n.PartitionAborts
		pt.PartitionShed += n.PartitionShed
		pt.SuspectEvents += n.SuspectEvents
		pt.FailoverReads += n.FailoverReads
		for k, c := range n.Commits {
			commits += c
			latencyWeighted += n.MeanResponse[k] * float64(c)
		}
	}
	if commits > 0 {
		pt.MeanCommitLatencyMS = latencyWeighted / float64(commits)
	}
	return pt
}
