package experiment

import (
	"reflect"
	"sync"
	"testing"

	"carat/internal/testbed"
	"carat/internal/workload"
)

// capacityWorkload is the sweep-under-test: MB8 with a per-site admission
// cap of 8 (the closed experiments' MPL, and provably safe against the
// cross-site DM-pool interlock on two nodes).
func capacityWorkload() workload.Workload {
	wl := workload.MB8(4)
	wl.Resilience = testbed.Resilience{Admission: testbed.AdmissionPolicy{MaxMPL: 8}}
	return wl
}

// The saturation sweep is shared by the knee/bound and no-collapse tests;
// long windows (one simulated hour per point) keep the transient
// mix-enrichment bias of the FIFO admission queue out of the plateau.
var (
	capOnce   sync.Once
	capResult *CapacityResult
	capErr    error
)

func capacitySweep(t *testing.T) *CapacityResult {
	t.Helper()
	capOnce.Do(func() {
		bound, _, _, err := closedBoundAndMix(capacityWorkload())
		if err != nil {
			capErr = err
			return
		}
		grid := []float64{0.5 * bound, 0.8 * bound, bound, 1.4 * bound, 2 * bound}
		capResult, capErr = CapacitySweep(capacityWorkload, grid, SimOptions{
			Seed: 1, Warmup: 30_000, Duration: 3_630_000,
		})
	})
	if capErr != nil {
		t.Fatal(capErr)
	}
	return capResult
}

// TestCapacitySweepMB8KneeMatchesBound is the sweep's headline validation:
// the measured committed throughput plateaus within 15% of the closed
// model's MVA bottleneck bound 1/D_max (Section 4), and the saturation knee
// sits at that capacity.
func TestCapacitySweepMB8KneeMatchesBound(t *testing.T) {
	cr := capacitySweep(t)
	bound := cr.BottleneckBoundTPS
	if bound <= 0 {
		t.Fatalf("no bottleneck bound computed for a modelable workload")
	}
	if cr.PeakCommittedTPS < 0.85*bound || cr.PeakCommittedTPS > 1.05*bound {
		t.Errorf("peak committed %.3f txn/s not within 15%% of bound %.3f",
			cr.PeakCommittedTPS, bound)
	}
	// The plateau, not just the peak: every overloaded point holds the level.
	for _, p := range cr.Points {
		if p.LambdaTPS >= bound && p.CommittedTPS < 0.85*bound {
			t.Errorf("λ=%.3f: committed %.3f dropped below 85%% of bound %.3f",
				p.LambdaTPS, p.CommittedTPS, bound)
		}
	}
	if cr.KneeLambdaTPS < 0.8*bound || cr.KneeLambdaTPS > 1.4*bound {
		t.Errorf("knee λ=%.3f far from bound %.3f", cr.KneeLambdaTPS, bound)
	}
	// Below the knee the system is open and unsaturated: it commits what is
	// offered, and response times are far below the overloaded points'.
	first, last := cr.Points[0], cr.Points[len(cr.Points)-1]
	if first.CommittedTPS < 0.9*first.OfferedTPS {
		t.Errorf("light load: committed %.3f below offered %.3f", first.CommittedTPS, first.OfferedTPS)
	}
	if first.MeanResponseMS <= 0 || first.MeanResponseMS > last.MeanResponseMS {
		t.Errorf("response did not grow toward saturation: %.0f ms vs %.0f ms",
			first.MeanResponseMS, last.MeanResponseMS)
	}
}

// TestOpenAdmissionNoCollapse pins the admission-control payoff: at twice
// the knee rate the gate keeps goodput within 20% of the measured peak
// instead of letting the overload collapse the system.
func TestOpenAdmissionNoCollapse(t *testing.T) {
	cr := capacitySweep(t)
	target := 2 * cr.KneeLambdaTPS
	over := cr.Points[len(cr.Points)-1]
	for _, p := range cr.Points {
		if p.LambdaTPS >= target {
			over = p
			break
		}
	}
	if over.LambdaTPS < target {
		t.Fatalf("grid has no point at 2× knee λ=%.3f", target)
	}
	if over.CommittedTPS < 0.8*cr.PeakCommittedTPS {
		t.Errorf("goodput %.3f at λ=%.3f collapsed below 80%% of peak %.3f",
			over.CommittedTPS, over.LambdaTPS, cr.PeakCommittedTPS)
	}
}

// TestCapacitySweepDeterministicAcrossWorkerCounts mirrors the replicated
// sweep's determinism guarantee: the capacity sweep's (seed, grid) fully
// determines its output regardless of worker count.
func TestCapacitySweepDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *CapacityResult {
		cr, err := CapacitySweep(capacityWorkload, []float64{0.8, 1.6}, SimOptions{
			Seed: 7, Warmup: 5_000, Duration: 65_000, Replications: 2, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cr
	}
	one := run(1)
	four := run(4)
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("capacity sweep differs between 1 and 4 workers:\n%+v\nvs\n%+v", one, four)
	}
}

// TestCapacitySweepNeedsRates pins the argument contract.
func TestCapacitySweepNeedsRates(t *testing.T) {
	if _, err := CapacitySweep(capacityWorkload, nil, SimOptions{}); err == nil {
		t.Fatal("expected an error for an empty λ grid")
	}
}

// TestOpenChaosAuditClean runs the randomized fault audit over a mixed
// workload with open arrivals attached: the invariant checks (atomicity,
// conservation, durable-commit survival) must stay clean when submissions
// come from an unbounded arrival stream instead of closed terminals only.
func TestOpenChaosAuditClean(t *testing.T) {
	wl := workload.MB4(8)
	wl.Open = &testbed.OpenConfig{RatePerSec: 0.5}
	report, err := RunChaos(wl, chaosOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if report.BaselineTPS <= 0 {
		t.Fatalf("fault-free baseline goodput = %v txn/s, want > 0", report.BaselineTPS)
	}
	if bad := report.Violations(); len(bad) != 0 {
		t.Fatalf("open-mode chaos audit found %d violation(s):\n%s", len(bad), bad)
	}
}
