package experiment

import (
	"reflect"
	"testing"

	"carat/internal/repl"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// partitionMB4 is MB4 with a scheduled mid-run partition, the failure
// detector, and finite timeouts attached — the partition analogue of
// faultyMB4 for the determinism pins.
func partitionMB4(n int) workload.Workload {
	wl := workload.MB4(n)
	wl.Faults = &testbed.FaultPlan{
		Partitions: []testbed.PartitionSchedule{{
			Groups:      [][]testbed.NodeID{{0}, {1}},
			AtMS:        40_000,
			HealAfterMS: 20_000,
		}},
		PrepareTimeoutMS:  4_000,
		LockWaitTimeoutMS: 8_000,
	}
	return wl
}

// TestPartitionSweepSmoke runs a short goodput-vs-partition-duration sweep
// and checks its accounting: the zero-duration baseline is the reference,
// and longer partitions cost goodput.
func TestPartitionSweepSmoke(t *testing.T) {
	opts := quickOpts()
	opts.Warmup = 10_000
	opts.Duration = 180_000
	plan := testbed.FaultPlan{PrepareTimeoutMS: 4_000, LockWaitTimeoutMS: 8_000}
	pts, err := PartitionSweep(workload.MB4(8), []float64{0, 20_000, 60_000}, []int{1, 2}, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6", len(pts))
	}
	for _, p := range pts {
		if p.DurationMS == 0 {
			if p.GoodputFrac != 1 || p.PartitionMS != 0 || p.PartitionShed != 0 {
				t.Fatalf("baseline point not partition-free: %+v", p)
			}
			continue
		}
		if p.PartitionMS != p.DurationMS {
			t.Fatalf("R=%d dur=%v: severed %.0fms, want the full duration", p.Factor, p.DurationMS, p.PartitionMS)
		}
		// MB4 is mostly local work, so the goodput dip is small — assert
		// the fraction is sane rather than a particular cliff shape.
		if p.GoodputFrac <= 0 || p.GoodputFrac > 1.1 {
			t.Fatalf("R=%d dur=%v: goodput fraction %v out of range", p.Factor, p.DurationMS, p.GoodputFrac)
		}
		if p.PartitionShed == 0 {
			t.Fatalf("R=%d dur=%v: no submissions shed during the partition", p.Factor, p.DurationMS)
		}
		if p.SuspectEvents == 0 {
			t.Fatalf("R=%d dur=%v: detector never suspected anyone", p.Factor, p.DurationMS)
		}
	}
}

// TestPartitionSweepDeterministicAcrossWorkerCounts extends the
// determinism-under-concurrency pins to partitioned workloads: a parallel
// replicated sweep whose fault plan includes a scheduled partition must be
// bit-identical on 1 and 4 workers. (This also exercises the shared-plan
// validation fix: every replication's config holds the same *FaultPlan.)
func TestPartitionSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []*RepComparison {
		rcs, err := SweepReplicated(partitionMB4, []int{4, 8}, repOpts(3, workers))
		if err != nil {
			t.Fatal(err)
		}
		return rcs
	}
	one := run(1)
	four := run(4)
	for i := range one {
		if !reflect.DeepEqual(one[i].Reps, four[i].Reps) {
			t.Fatalf("n=%d: partitioned results differ between 1 and 4 workers", one[i].N)
		}
	}
}

// TestPartitionChaosAuditClean is the split-brain acceptance audit: twenty
// randomized runs at R=2 with scheduled partitions drawn into every plan,
// requiring every invariant — cross-site atomicity, replica agreement,
// post-heal reconciliation — to hold in every run.
func TestPartitionChaosAuditClean(t *testing.T) {
	wl := workload.MB4(8)
	wl.Replication = repl.Policy{Factor: 2}
	report, err := RunChaos(wl, ChaosOptions{Runs: 20, Seed: 3, Partitions: true})
	if err != nil {
		t.Fatal(err)
	}
	if bad := report.Violations(); len(bad) > 0 {
		t.Fatalf("partition chaos violations:\n%v", bad)
	}
}
