package experiment

import (
	"math"
	"testing"

	"carat/internal/testbed"
	"carat/internal/workload"
)

// TestFullValidationSweep is the repository's strongest claim check: over
// all four workloads and the paper's full transaction-size sweep, the
// model must track the simulator on all three reported metrics within the
// paper's own deviation band, and the qualitative shapes must hold:
//
//   - TR-XPUT declines monotonically in n on both sides;
//   - Node A is at least as fast as node B;
//   - the model errs toward optimism at the largest n.
//
// Skipped with -short (it simulates 4 x 5 half-hour windows).
func TestFullValidationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation sweep")
	}
	opts := SimOptions{Seed: 2, Warmup: 60_000, Duration: 1_860_000}
	mks := map[string]func(int) workload.Workload{
		"LB8": workload.LB8,
		"MB4": workload.MB4,
		"MB8": workload.MB8,
		"UB6": workload.UB6,
	}
	for name, mk := range mks {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			comps, err := Sweep(mk, PaperNs(), opts)
			if err != nil {
				t.Fatal(err)
			}
			for node := 0; node < 2; node++ {
				var prevSim, prevMod float64 = math.Inf(1), math.Inf(1)
				for _, c := range comps {
					mo, me := TxnThroughput.Get(c, node)
					// Quantitative band: within the paper's observed
					// deviations (up to ~40% at the extremes).
					rel := (mo - me) / me
					if rel < -0.45 || rel > 0.60 {
						t.Errorf("%s n=%d node %d: model %0.3f vs sim %0.3f (rel %+.0f%%)",
							name, c.N, node, mo, me, rel*100)
					}
					// Monotone decline (allow 3% noise on the simulation).
					if me > prevSim*1.03 {
						t.Errorf("%s node %d: sim throughput rose at n=%d (%v > %v)",
							name, node, c.N, me, prevSim)
					}
					if mo > prevMod*1.001 {
						t.Errorf("%s node %d: model throughput rose at n=%d", name, node, c.N)
					}
					prevSim, prevMod = me, mo
				}
			}
			// Node A >= node B at every n, both sides.
			for _, c := range comps {
				moA, meA := TxnThroughput.Get(c, 0)
				moB, meB := TxnThroughput.Get(c, 1)
				if moA < moB || meA < meB*0.97 {
					t.Errorf("%s n=%d: node ordering violated (model %v/%v, sim %v/%v)",
						name, c.N, moA, moB, meA, meB)
				}
			}
			// Model optimism at the largest n (the paper's high-n bias).
			last := comps[len(comps)-1]
			mo, me := TxnThroughput.Get(last, 0)
			if mo < me*0.95 {
				t.Errorf("%s: at n=20 the model (%v) should not undershoot the sim (%v)", name, mo, me)
			}
		})
	}
}

// TestNetworkDelayConsistency raises α and checks model and simulator
// degrade together on distributed throughput while local types are nearly
// unaffected.
func TestNetworkDelayConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("network sweep")
	}
	opts := SimOptions{Seed: 4, Warmup: 60_000, Duration: 1_260_000}
	duRate := func(alpha float64) (model, sim, lroModel, lroSim float64) {
		wl := workload.MB4(8)
		wl.Alpha = alpha
		c, err := Run(wl, opts)
		if err != nil {
			t.Fatal(err)
		}
		return c.Model.Sites[0].ThroughputOf("DU") * 1000,
			c.Measured.Nodes[0].TxnThroughput[testbed.DU],
			c.Model.Sites[0].ThroughputOf("LRO") * 1000,
			c.Measured.Nodes[0].TxnThroughput[testbed.LRO]
	}
	m0, s0, l0m, l0s := duRate(0)
	m200, s200, l200m, l200s := duRate(200)
	if m200 >= m0 || s200 >= s0 {
		t.Fatalf("200 ms hops must slow DU: model %v->%v, sim %v->%v", m0, m200, s0, s200)
	}
	// Local chains lose far less (only through shared-resource coupling).
	relLocalM := (l0m - l200m) / l0m
	relLocalS := (l0s - l200s) / l0s
	relDUM := (m0 - m200) / m0
	relDUS := (s0 - s200) / s0
	if relLocalM > relDUM || relLocalS > relDUS {
		t.Fatalf("local types should suffer less than DU: local %v/%v vs DU %v/%v",
			relLocalM, relLocalS, relDUM, relDUS)
	}
}
