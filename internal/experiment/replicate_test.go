package experiment

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"carat/internal/workload"
)

// repOpts keeps replicated unit-test simulations short.
func repOpts(reps, workers int) SimOptions {
	o := quickOpts()
	o.Warmup = 10_000
	o.Duration = 120_000
	o.Replications = reps
	o.Workers = workers
	return o
}

func TestRepSeedScheme(t *testing.T) {
	const base = 424242
	if got := RepSeed(base, 8, 0); got != base {
		t.Fatalf("RepSeed(base, n, 0) = %d, want the base seed %d", got, base)
	}
	// Every (n, rep) pair must get a distinct seed.
	seen := map[uint64][2]int{}
	for _, n := range []int{4, 8, 12, 16, 20} {
		for rep := 1; rep < 8; rep++ {
			s := RepSeed(base, n, rep)
			if s == base {
				t.Fatalf("RepSeed(base, %d, %d) collides with the base seed", n, rep)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("RepSeed collision: (n=%d, rep=%d) and (n=%d, rep=%d) both map to %d",
					n, rep, prev[0], prev[1], s)
			}
			seen[s] = [2]int{n, rep}
		}
	}
}

// TestReplicationZeroMatchesSerialRun pins the compatibility guarantee:
// replication 0 of any point is byte-identical to the historical serial
// Run with the base seed.
func TestReplicationZeroMatchesSerialRun(t *testing.T) {
	opts := repOpts(3, 2)
	rc, err := RunReplicated(workload.MB4(8), opts)
	if err != nil {
		t.Fatal(err)
	}
	serialOpts := opts
	serialOpts.Replications = 0
	c, err := Run(workload.MB4(8), serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rc.First().Measured, c.Measured) {
		t.Fatal("replication 0 diverges from the serial Run with the same seed")
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the determinism-under-
// concurrency guarantee: the same (seed, workload) grid must produce
// bit-identical results no matter how many workers run it.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []*RepComparison {
		rcs, err := SweepReplicated(workload.MB4, []int{4, 8}, repOpts(3, workers))
		if err != nil {
			t.Fatal(err)
		}
		return rcs
	}
	one := run(1)
	four := run(4)
	for i := range one {
		if !reflect.DeepEqual(one[i].Seeds, four[i].Seeds) {
			t.Fatalf("n=%d: seeds differ across worker counts", one[i].N)
		}
		if !reflect.DeepEqual(one[i].Reps, four[i].Reps) {
			t.Fatalf("n=%d: results differ between 1 and 4 workers", one[i].N)
		}
	}
}

// TestParallelSweepSmoke is the short -race smoke named in the verify
// recipe: a replicated sweep on several workers with basic sanity checks.
func TestParallelSweepSmoke(t *testing.T) {
	var calls []int
	opts := repOpts(2, 4)
	opts.Progress = func(done, total int) { calls = append(calls, done) }
	rcs, err := SweepReplicated(workload.MB4, []int{4, 8}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rcs) != 2 {
		t.Fatalf("points = %d, want 2", len(rcs))
	}
	for _, rc := range rcs {
		if len(rc.Reps) != 2 {
			t.Fatalf("n=%d: reps = %d, want 2", rc.N, len(rc.Reps))
		}
		model, est := rc.Estimate(TxnThroughput, 0)
		if model <= 0 || est.Mean <= 0 || est.Reps != 2 {
			t.Fatalf("n=%d: estimate %+v vs model %v", rc.N, est, model)
		}
		if est.HalfWidth < 0 {
			t.Fatalf("n=%d: negative CI half-width %v", rc.N, est.HalfWidth)
		}
	}
	if len(calls) != 4 || calls[len(calls)-1] != 4 {
		t.Fatalf("progress calls = %v, want monotone 1..4", calls)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress calls = %v, want monotone 1..4", calls)
		}
	}
}

func TestReplicatedFigureCarriesCI(t *testing.T) {
	f, err := Figure5([]int{4, 8}, repOpts(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("series = %d, want model+simulation", len(f.Series))
	}
	model, meas := f.Series[0], f.Series[1]
	if model.CI != nil {
		t.Fatal("model series must not carry CIs")
	}
	if len(meas.CI) != 2 {
		t.Fatalf("simulation CI points = %d, want 2", len(meas.CI))
	}
	if !strings.Contains(f.ASCII(), "±") {
		t.Fatal("replicated figure rendering must show ± half-widths")
	}
}

func TestReplicatedTableCarriesCI(t *testing.T) {
	tb, err := Table3([]int{4}, repOpts(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(tb.Header, "|")
	if !strings.Contains(joined, "±") {
		t.Fatalf("replicated table header %v must have ± columns", tb.Header)
	}
	if !strings.Contains(tb.Title, "replications") {
		t.Fatalf("replicated table title %q must say so", tb.Title)
	}
}

// TestSerialFigureUnchanged pins that reps<=1 keeps the historical
// rendering byte-for-byte: no CI column, no ± characters.
func TestSerialFigureUnchanged(t *testing.T) {
	f, err := Figure5([]int{4}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		if s.CI != nil {
			t.Fatalf("serial series %s must not carry CIs", s.Name)
		}
	}
	if strings.Contains(f.ASCII(), "±") {
		t.Fatal("serial figure rendering must not show ±")
	}
}

// TestWorkersRunConcurrently proves the pool genuinely overlaps jobs: all
// four replications rendezvous at a barrier inside the workload
// constructor, which only releases once every one of them is in flight.
// A pool that ran jobs one at a time would never release the barrier.
// (Wall-clock speedup itself is hardware-dependent — see the benchmark —
// but this property holds even on a single core.)
func TestWorkersRunConcurrently(t *testing.T) {
	const reps = 4
	release := make(chan struct{})
	arrived := make(chan struct{}, reps)
	var once sync.Once
	var calls atomic.Int32
	mk := func(n int) workload.Workload {
		// The first call is the serial model-solving pass; only the per-job
		// calls (one per replication, on the workers) join the barrier.
		if calls.Add(1) == 1 {
			return workload.MB4(n)
		}
		arrived <- struct{}{}
		if len(arrived) == reps {
			once.Do(func() { close(release) })
		}
		<-release
		return workload.MB4(n)
	}
	done := make(chan error, 1)
	go func() {
		opts := repOpts(reps, reps)
		_, err := SweepReplicated(mk, []int{4}, opts)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep deadlocked at the barrier: workers are not running jobs concurrently")
	}
}

// BenchmarkSweepReplicated measures the parallel engine against the same
// grid on one worker; on an m-core machine the speedup approaches
// min(workers, m). Run with -bench SweepReplicated -benchtime 1x.
func BenchmarkSweepReplicated(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := SimOptions{Seed: 1, Warmup: 60_000, Duration: 1_060_000,
					Replications: 4, Workers: workers}
				if _, err := SweepReplicated(workload.MB4, []int{4, 8, 12, 16, 20}, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
