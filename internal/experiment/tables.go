package experiment

import (
	"fmt"
	"strings"

	"carat/internal/stats"
	"carat/internal/workload"
)

// Table reproduces one of the paper's tables.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Markdown formats the table as a GitHub-flavored Markdown table, for
// pasting regenerated results into EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s: %s**\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// comparisonTable builds the Table 3/4 layout: per (n, node) rows of
// measured and modeled TR-XPUT, Total-CPU and Total-DIO. With
// opts.Replications > 1 the measured columns are across-replication means
// and each gains a 95% confidence half-width column.
func comparisonTable(id, title string, mk func(int) workload.Workload, ns []int, opts SimOptions) (*Table, error) {
	if opts.Replications > 1 {
		return comparisonTableReplicated(id, title, mk, ns, opts)
	}
	comps, err := Sweep(mk, ns, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    id,
		Title: title,
		Header: []string{
			"n", "Node",
			"Sim TR-XPUT", "Sim Total-CPU", "Sim Total-DIO",
			"Model TR-XPUT", "Model Total-CPU", "Model Total-DIO",
		},
	}
	for _, c := range comps {
		for node := 0; node < 2; node++ {
			xm, xs := TxnThroughput.Get(c, node)
			cm, cs := CPUUtilization.Get(c, node)
			dm, ds := DiskIORate.Get(c, node)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", c.N),
				string(rune('A' + node)),
				fmt.Sprintf("%.2f", xs),
				fmt.Sprintf("%.2f", cs),
				fmt.Sprintf("%.1f", ds),
				fmt.Sprintf("%.2f", xm),
				fmt.Sprintf("%.2f", cm),
				fmt.Sprintf("%.1f", dm),
			})
		}
	}
	return t, nil
}

// comparisonTableReplicated is the replicated Table 3/4 layout: the sweep
// runs on the parallel engine and every simulated column is reported as
// mean plus a ± column (95% Student-t half-width over the replications).
func comparisonTableReplicated(id, title string, mk func(int) workload.Workload, ns []int, opts SimOptions) (*Table, error) {
	rcs, err := SweepReplicated(mk, ns, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("%s — %d replications, 95%% CI", title, len(rcs[0].Reps)),
		Header: []string{
			"n", "Node",
			"Sim TR-XPUT", "±", "Sim Total-CPU", "±", "Sim Total-DIO", "±",
			"Model TR-XPUT", "Model Total-CPU", "Model Total-DIO",
		},
	}
	for _, rc := range rcs {
		for node := 0; node < 2; node++ {
			xm, xe := rc.Estimate(TxnThroughput, node)
			cm, ce := rc.Estimate(CPUUtilization, node)
			dm, de := rc.Estimate(DiskIORate, node)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", rc.N),
				string(rune('A' + node)),
				fmt.Sprintf("%.2f", xe.Mean), fmt.Sprintf("%.2f", xe.HalfWidth),
				fmt.Sprintf("%.2f", ce.Mean), fmt.Sprintf("%.3f", ce.HalfWidth),
				fmt.Sprintf("%.1f", de.Mean), fmt.Sprintf("%.1f", de.HalfWidth),
				fmt.Sprintf("%.2f", xm),
				fmt.Sprintf("%.2f", cm),
				fmt.Sprintf("%.1f", dm),
			})
		}
	}
	return t, nil
}

// Table3 is "Model vs Measurement Results (MB8)".
func Table3(ns []int, opts SimOptions) (*Table, error) {
	return comparisonTable("Table 3", "Model vs Measurement Results (MB8)", workload.MB8, ns, opts)
}

// Table4 is "Model vs Measurement Results (UB6)".
func Table4(ns []int, opts SimOptions) (*Table, error) {
	return comparisonTable("Table 4", "Model vs Measurement Results (UB6)", workload.UB6, ns, opts)
}

// Table5 is "Model vs Measurement Throughput Results for Each TR Type
// (MB4)": per-type commit throughput at each node. With
// opts.Replications > 1 the simulated columns carry 95% CI half-widths.
func Table5(ns []int, opts SimOptions) (*Table, error) {
	if opts.Replications > 1 {
		return table5Replicated(ns, opts)
	}
	comps, err := Sweep(workload.MB4, ns, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table 5",
		Title: "Model vs Measurement Throughput Results for Each TR Type (MB4)",
		Header: []string{
			"n", "Type",
			"Sim Node A", "Sim Node B",
			"Model Node A", "Model Node B",
		},
	}
	for _, c := range comps {
		for _, ty := range []string{"LRO", "LU", "DRO", "DU"} {
			sa := measuredPerType(c, 0)[ty]
			sb := measuredPerType(c, 1)[ty]
			ma := modelPerType(c, 0)[ty]
			mb := modelPerType(c, 1)[ty]
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", c.N), ty,
				fmt.Sprintf("%.2f", sa), fmt.Sprintf("%.2f", sb),
				fmt.Sprintf("%.2f", ma), fmt.Sprintf("%.2f", mb),
			})
		}
	}
	return t, nil
}

// table5Replicated is the replicated Table 5: per-type throughput means
// with ± columns over the replications.
func table5Replicated(ns []int, opts SimOptions) (*Table, error) {
	rcs, err := SweepReplicated(workload.MB4, ns, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Table 5",
		Title: fmt.Sprintf("Model vs Measurement Throughput Results for Each TR Type (MB4) — %d replications, 95%% CI", len(rcs[0].Reps)),
		Header: []string{
			"n", "Type",
			"Sim Node A", "±", "Sim Node B", "±",
			"Model Node A", "Model Node B",
		},
	}
	for _, rc := range rcs {
		for _, ty := range []string{"LRO", "LU", "DRO", "DU"} {
			var ta, tb stats.Tally
			for rep := range rc.Reps {
				c := rc.Comparison(rep)
				ta.Add(measuredPerType(c, 0)[ty])
				tb.Add(measuredPerType(c, 1)[ty])
			}
			ma := modelPerType(rc.First(), 0)[ty]
			mb := modelPerType(rc.First(), 1)[ty]
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", rc.N), ty,
				fmt.Sprintf("%.2f", ta.Mean()), fmt.Sprintf("%.2f", ta.CI95()),
				fmt.Sprintf("%.2f", tb.Mean()), fmt.Sprintf("%.2f", tb.CI95()),
				fmt.Sprintf("%.2f", ma), fmt.Sprintf("%.2f", mb),
			})
		}
	}
	return t, nil
}

// Table1 renders the phase transition probability matrix for given
// parameters — a direct view of the paper's Table 1 (useful for docs and
// debugging; the numeric validation lives in the phase package tests).
func Table1(l, r int, q, pb, pd, pra float64) (*Table, error) {
	f, err := transitionTable(l, r, q, pb, pd, pra)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Table2 renders the basic parameter values the defaults are built from.
func Table2() *Table {
	t := &Table{
		ID:     "Table 2",
		Title:  "Basic Parameter Values (milliseconds)",
		Header: []string{"Node", "Type", "R_U", "R_TM", "R_DM", "R_LR", "R_DMIO(cpu)", "R_DMIO(disk)"},
	}
	diskTimes := map[int]map[string]float64{
		0: {"LRO": 28, "LU": 84, "DRO": 28, "DU": 84},
		1: {"LRO": 40, "LU": 120, "DRO": 40, "DU": 120},
	}
	for node := 0; node < 2; node++ {
		for _, ty := range []string{"LRO", "LU", "DRO", "DU"} {
			tm, dm, io := 8.0, 5.4, 1.5
			if ty == "DRO" || ty == "DU" {
				tm = 12.0
			}
			if ty == "LU" || ty == "DU" {
				dm, io = 8.6, 2.5
			}
			t.Rows = append(t.Rows, []string{
				string(rune('A' + node)), ty,
				"7.8", fmt.Sprintf("%.1f", tm), fmt.Sprintf("%.1f", dm),
				"2.2", fmt.Sprintf("%.1f", io),
				fmt.Sprintf("%.1f", diskTimes[node][ty]),
			})
		}
	}
	return t
}
