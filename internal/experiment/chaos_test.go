package experiment

import (
	"reflect"
	"testing"

	"carat/internal/testbed"
	"carat/internal/workload"
)

// chaosOpts keeps unit-test audits short while still running the full
// default batch of randomized plans.
func chaosOpts(runs int) ChaosOptions {
	return ChaosOptions{
		Runs:     runs,
		Seed:     0xC4A05,
		Warmup:   5_000,
		Duration: 90_000,
	}
}

// TestChaosAuditClean is the chaos harness's main assertion: twenty runs of
// the mixed workload under randomized bounded fault plans and resilience
// policies produce zero invariant violations — no transaction half-commits,
// none vanishes, every commit survives restart replay, and goodput never
// collapses below the floor.
func TestChaosAuditClean(t *testing.T) {
	report, err := RunChaos(workload.MB4(8), chaosOpts(20))
	if err != nil {
		t.Fatal(err)
	}
	if report.BaselineTPS <= 0 {
		t.Fatalf("fault-free baseline goodput = %v txn/s, want > 0", report.BaselineTPS)
	}
	if len(report.Runs) != 20 {
		t.Fatalf("ran %d chaos runs, want 20", len(report.Runs))
	}
	if bad := report.Violations(); len(bad) != 0 {
		t.Fatalf("chaos audit found %d violation(s):\n%s", len(bad), bad)
	}
	// Each run must record the drawn configuration for replay.
	for _, run := range report.Runs {
		if !run.Plan.Active() {
			t.Errorf("run %d drew an inactive fault plan", run.Run)
		}
		if !run.Resilience.Active() {
			t.Errorf("run %d drew an inactive resilience policy", run.Run)
		}
	}
}

// ccChaos runs the standard crash+loss chaos batch with the MB4 mix under
// the given concurrency-control paradigm.
func ccChaos(t *testing.T, prot testbed.CCProtocol) *ChaosReport {
	t.Helper()
	wl := workload.MB4(8)
	wl.Concurrency = prot
	report, err := RunChaos(wl, chaosOpts(20))
	if err != nil {
		t.Fatal(err)
	}
	if report.BaselineTPS <= 0 {
		t.Fatalf("%v fault-free baseline goodput = %v txn/s, want > 0", prot, report.BaselineTPS)
	}
	if len(report.Runs) != 20 {
		t.Fatalf("ran %d chaos runs, want 20", len(report.Runs))
	}
	if bad := report.Violations(); len(bad) != 0 {
		t.Fatalf("%v chaos audit found %d violation(s):\n%s", prot, len(bad), bad)
	}
	return report
}

// TestQueCCChaosAuditClean extends the chaos audit to the deterministic
// paradigm: twenty randomized crash+loss plans under QueCC must preserve
// every atomicity, durability and goodput invariant. The drawn resilience
// policies always arm probe retransmission, so this also exercises the
// probe gating (QueCC allocates no detector to retransmit from).
func TestQueCCChaosAuditClean(t *testing.T) {
	ccChaos(t, testbed.CCQueCC)
}

// TestOCCChaosAuditClean is the same audit under optimistic execution:
// commit-time validation aborts must compose with crashes, message loss and
// prepare timeouts without half-commits or lost transactions.
func TestOCCChaosAuditClean(t *testing.T) {
	ccChaos(t, testbed.CCOCC)
}

// TestChaosDeterministic pins that the whole audit is a pure function of
// (workload, options): same seed, same report.
func TestChaosDeterministic(t *testing.T) {
	a, err := RunChaos(workload.MB4(8), chaosOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(workload.MB4(8), chaosOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical chaos audits diverge:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestProbeRetransmissionDeterministicAcrossWorkerCounts runs a replicated
// sweep with probe loss, message faults and the full resilience stack
// active, and pins that results are bit-identical for any worker count —
// the retransmission timers and the backoff jitter stream must not leak
// state across concurrent simulations.
func TestProbeRetransmissionDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func(n int) workload.Workload {
		wl := workload.MB4(n)
		wl.Faults = &testbed.FaultPlan{
			MsgLossProb:       0.05,
			ProbeLossProb:     0.5,
			LockWaitTimeoutMS: 8_000,
		}
		wl.Resilience = testbed.Resilience{
			Retry:        testbed.RetryPolicy{MaxAttempts: 5, BaseBackoffMS: 10, JitterFrac: 0.4},
			Admission:    testbed.AdmissionPolicy{MaxMPL: 3},
			ProbeRetryMS: 300,
		}
		return wl
	}
	run := func(workers int) []*RepComparison {
		out, err := SweepReplicated(mk, []int{8}, repOpts(4, workers))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial, pooled := run(1), run(4)
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatalf("results differ between 1 and 4 workers under probe retransmission")
	}
	var resent int64
	for _, rc := range serial {
		for _, rep := range rc.Reps {
			for _, nd := range rep.Nodes {
				resent += nd.ProbesResent
			}
		}
	}
	if resent == 0 {
		t.Fatalf("ProbesResent = 0 across the sweep: retransmission never engaged")
	}
}
