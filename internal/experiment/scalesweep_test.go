package experiment

import (
	"reflect"
	"testing"

	"carat/internal/placement"
)

func scaleSweepOpts() SimOptions {
	opts := DefaultSimOptions()
	opts.Warmup = 5_000
	opts.Duration = 60_000
	return opts
}

// TestScaleSweepDeterministicAcrossWorkerCounts pins that the scale sweep
// is a pure function of its grid and seed: a 16-site fleet swept over two
// locality levels produces bit-identical points whether the cells run on
// one worker or race across eight.
func TestScaleSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	var ref *ScaleSweepResult
	for _, workers := range []int{1, 3, 8} {
		o := scaleSweepOpts()
		o.Workers = workers
		res, err := ScaleSweep(placement.Locality, []int{4, 16}, []float64{0.9, 0.1}, []float64{0.5}, o)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref.Points, res.Points) {
			t.Fatalf("scale sweep differs between 1 and %d workers", workers)
		}
	}
}

func TestScaleSweepRejectsEmptyGrid(t *testing.T) {
	if _, err := ScaleSweep(placement.Hash, nil, []float64{0.5}, []float64{0.5}, scaleSweepOpts()); err == nil {
		t.Fatal("empty site list accepted")
	}
	if _, err := ScaleSweep(placement.Hash, []int{4}, nil, []float64{0.5}, scaleSweepOpts()); err == nil {
		t.Fatal("empty locality list accepted")
	}
	if _, err := ScaleSweep(placement.Hash, []int{4}, []float64{0.5}, nil, scaleSweepOpts()); err == nil {
		t.Fatal("empty λ list accepted")
	}
	if _, err := ScaleSweep(placement.Strategy(99), []int{4}, []float64{0.5}, []float64{0.5}, scaleSweepOpts()); err == nil {
		t.Fatal("invalid strategy accepted")
	}
}

// TestScaleSweepSurfacesConfigErrors pins that a broken cell fails the
// whole sweep with the cell's identity in the error instead of returning
// a zeroed point.
func TestScaleSweepSurfacesConfigErrors(t *testing.T) {
	_, err := ScaleSweep(placement.Locality, []int{4}, []float64{1.5}, []float64{0.5}, scaleSweepOpts())
	if err == nil {
		t.Fatal("affinity 1.5 accepted")
	}
}

// TestScaleSweepEveryCellCommits sanity-checks the workload itself: every
// strategy sustains committed throughput at a moderate cell, and the wire
// metrics are live (messages flowed through the fabric).
func TestScaleSweepEveryCellCommits(t *testing.T) {
	for _, strat := range []placement.Strategy{placement.Hash, placement.Range, placement.Locality} {
		res, err := ScaleSweep(strat, []int{4}, []float64{0.5}, []float64{0.5}, scaleSweepOpts())
		if err != nil {
			t.Fatal(err)
		}
		pt := res.Points[0]
		if pt.CommittedTPS <= 0 {
			t.Fatalf("%v: no committed throughput: %+v", strat, pt)
		}
		if pt.WireUtil <= 0 {
			t.Fatalf("%v: fabric saw no traffic: %+v", strat, pt)
		}
		if pt.Bottleneck == "" {
			t.Fatalf("%v: no bottleneck named: %+v", strat, pt)
		}
	}
}

// TestScaleChaosAuditClean runs the standard randomized fault-injection
// audit over a 16-site placement-routed fleet on the shared fabric: twenty
// runs of bounded crash/loss plans and drawn resilience policies must
// leave every hard invariant intact — the scale-out path reuses the same
// commit machinery, so it must survive the same chaos the two-site
// configurations do.
func TestScaleChaosAuditClean(t *testing.T) {
	wl := ScaleWorkload(placement.Locality, 16, 0.5, 0.5)
	report, err := RunChaos(wl, chaosOpts(20))
	if err != nil {
		t.Fatal(err)
	}
	if report.BaselineTPS <= 0 {
		t.Fatalf("fault-free baseline goodput = %v txn/s, want > 0", report.BaselineTPS)
	}
	if len(report.Runs) != 20 {
		t.Fatalf("ran %d chaos runs, want 20", len(report.Runs))
	}
	if bad := report.Violations(); len(bad) != 0 {
		t.Fatalf("scale chaos audit found %d violation(s):\n%s", len(bad), bad)
	}
}

func BenchmarkScaleSweep(b *testing.B) {
	opts := scaleSweepOpts()
	opts.Workers = 1
	for i := 0; i < b.N; i++ {
		if _, err := ScaleSweep(placement.Locality, []int{16}, []float64{0.5}, []float64{0.5}, opts); err != nil {
			b.Fatal(err)
		}
	}
}
