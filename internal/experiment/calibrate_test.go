package experiment

import (
	"testing"

	"carat/internal/workload"
)

func TestCalibrateImprovesFit(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	opts := SimOptions{Seed: 6, Warmup: 60_000, Duration: 1_260_000}
	res, err := Calibrate(workload.MB8, []int{12, 16, 20}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adjust <= 0 {
		t.Fatalf("nonsensical adjust %v", res.Adjust)
	}
	if res.Error > res.BaselineError {
		t.Fatalf("calibration worsened the fit: %v > %v", res.Error, res.BaselineError)
	}
	// The factor moves the model: a fit meaningfully away from 1 must
	// come with a meaningfully better error (otherwise Calibrate should
	// have kept 1). Note the direction can go either way — Pd couples to
	// throughput through both the abort rate (down) and the lock-wait
	// chain lengths (up).
	if res.Adjust != 1 && res.BaselineError-res.Error < 1e-6 {
		t.Fatalf("adjust %v differs from 1 without improving the fit", res.Adjust)
	}
	t.Logf("adjust=%.3f error=%.3f baseline=%.3f evals=%d",
		res.Adjust, res.Error, res.BaselineError, res.Evaluations)
}

func TestCalibrateValidation(t *testing.T) {
	if _, err := Calibrate(workload.MB8, nil, quickOpts()); err == nil {
		t.Fatal("empty sweep must fail")
	}
}
