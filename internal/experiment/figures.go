package experiment

import (
	"fmt"
	"math"
	"strings"

	"carat/internal/core"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// Series is one line of a figure: model or measured values over the
// transaction-size sweep. CI, when non-nil, holds the 95% confidence
// half-width around each Y value (replicated measured series only; nil for
// model series and single-run figures).
type Series struct {
	Name string
	X    []float64
	Y    []float64
	CI   []float64
}

// Figure reproduces one of the paper's figures as data plus an ASCII
// rendering.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// figureSweep builds a two-series (model vs. simulation) figure for one
// metric at one node. With opts.Replications > 1 the sweep runs on the
// parallel replicated engine and the simulation series carries confidence
// half-widths; otherwise it is the historical serial single-run path.
func figureSweep(id, title string, mk func(int) workload.Workload, node int, metric Metric, ns []int, opts SimOptions) (*Figure, error) {
	if opts.Replications > 1 {
		rcs, err := SweepReplicated(mk, ns, opts)
		if err != nil {
			return nil, err
		}
		return figureFromReps(id, title, rcs, []int{node}, metric), nil
	}
	comps, err := Sweep(mk, ns, opts)
	if err != nil {
		return nil, err
	}
	return figureFromComparisons(id, title, comps, node, metric), nil
}

// figureFromReps lays replicated measurements (mean ± 95% CI) against the
// model over the sweep, one model+simulation series pair per node.
func figureFromReps(id, title string, rcs []*RepComparison, nodes []int, metric Metric) *Figure {
	f := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "transaction size n (requests/transaction)",
		YLabel: metric.Name + " (" + metric.Unit + ")",
	}
	for _, node := range nodes {
		model := Series{Name: "Model"}
		meas := Series{Name: "Simulation"}
		if len(nodes) > 1 {
			model.Name = fmt.Sprintf("Model (Node %c)", 'A'+node)
			meas.Name = fmt.Sprintf("Simulation (Node %c)", 'A'+node)
		}
		for _, rc := range rcs {
			mo, est := rc.Estimate(metric, node)
			model.X = append(model.X, float64(rc.N))
			model.Y = append(model.Y, mo)
			meas.X = append(meas.X, float64(rc.N))
			meas.Y = append(meas.Y, est.Mean)
			meas.CI = append(meas.CI, est.HalfWidth)
		}
		f.Series = append(f.Series, model, meas)
	}
	return f
}

func figureFromComparisons(id, title string, comps []*Comparison, node int, metric Metric) *Figure {
	model := Series{Name: "Model"}
	meas := Series{Name: "Simulation"}
	for _, c := range comps {
		mo, me := metric.Get(c, node)
		model.X = append(model.X, float64(c.N))
		model.Y = append(model.Y, mo)
		meas.X = append(meas.X, float64(c.N))
		meas.Y = append(meas.Y, me)
	}
	return &Figure{
		ID:     id,
		Title:  title,
		XLabel: "transaction size n (requests/transaction)",
		YLabel: metric.Name + " (" + metric.Unit + ")",
		Series: []Series{model, meas},
	}
}

// Figure5 is "LB8 Workload: Record Throughput (Node B)".
func Figure5(ns []int, opts SimOptions) (*Figure, error) {
	return figureSweep("Figure 5", "LB8 Workload: Record Throughput (Node B)",
		workload.LB8, 1, RecordThroughput, ns, opts)
}

// Figure6 is "LB8 Workload: CPU Utilization (Node B)".
func Figure6(ns []int, opts SimOptions) (*Figure, error) {
	return figureSweep("Figure 6", "LB8 Workload: CPU Utilization (Node B)",
		workload.LB8, 1, CPUUtilization, ns, opts)
}

// Figure7 is "LB8 Workload: Disk I/O Rate (Node B)".
func Figure7(ns []int, opts SimOptions) (*Figure, error) {
	return figureSweep("Figure 7", "LB8 Workload: Disk I/O Rate (Node B)",
		workload.LB8, 1, DiskIORate, ns, opts)
}

// mb4Figure builds an MB4 figure with per-node model and simulation series.
func mb4Figure(id, title string, metric Metric, ns []int, opts SimOptions) (*Figure, error) {
	if opts.Replications > 1 {
		rcs, err := SweepReplicated(workload.MB4, ns, opts)
		if err != nil {
			return nil, err
		}
		return figureFromReps(id, title, rcs, []int{0, 1}, metric), nil
	}
	comps, err := Sweep(workload.MB4, ns, opts)
	if err != nil {
		return nil, err
	}
	f := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "transaction size n (requests/transaction)",
		YLabel: metric.Name + " (" + metric.Unit + ")",
	}
	for node := 0; node < 2; node++ {
		model := Series{Name: fmt.Sprintf("Model (Node %c)", 'A'+node)}
		meas := Series{Name: fmt.Sprintf("Simulation (Node %c)", 'A'+node)}
		for _, c := range comps {
			mo, me := metric.Get(c, node)
			model.X = append(model.X, float64(c.N))
			model.Y = append(model.Y, mo)
			meas.X = append(meas.X, float64(c.N))
			meas.Y = append(meas.Y, me)
		}
		f.Series = append(f.Series, model, meas)
	}
	return f, nil
}

// Figure8 is "MB4 Workload: Record Throughput".
func Figure8(ns []int, opts SimOptions) (*Figure, error) {
	return mb4Figure("Figure 8", "MB4 Workload: Record Throughput", RecordThroughput, ns, opts)
}

// Figure9 is "MB4 Workload: CPU Utilization".
func Figure9(ns []int, opts SimOptions) (*Figure, error) {
	return mb4Figure("Figure 9", "MB4 Workload: CPU Utilization", CPUUtilization, ns, opts)
}

// Figure10 is "MB4 Workload: Disk I/O Rate".
func Figure10(ns []int, opts SimOptions) (*Figure, error) {
	return mb4Figure("Figure 10", "MB4 Workload: Disk I/O Rate", DiskIORate, ns, opts)
}

// FigureResponseTimes is an extension artifact beyond the paper's six
// figures: the mean LU response time R(t,i) — the model's most fundamental
// output (every delay submodel feeds it) — model vs simulation at Node A
// over the sweep. The paper validates throughput, CPU and DIO; response
// time follows from them through Little's law, and this figure shows the
// agreement directly.
func FigureResponseTimes(ns []int, opts SimOptions) (*Figure, error) {
	metric := Metric{
		Name: "LU Response Time",
		Unit: "ms",
		Get: func(c *Comparison, node int) (float64, float64) {
			return c.Model.Sites[node].Chains[core.LU].ResponseTime,
				c.Measured.Nodes[node].MeanResponse[testbed.LU]
		},
	}
	return figureSweep("Extension Figure R", "MB8 Workload: LU Response Time (Node A)",
		workload.MB8, 0, metric, ns, opts)
}

// ASCII renders the figure as an ASCII chart followed by the numeric
// series, suitable for a terminal.
func (f *Figure) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "y: %s   x: %s\n\n", f.YLabel, f.XLabel)
	b.WriteString(f.chart(64, 16))
	b.WriteString("\n")
	// Numeric table: one row per x, one column per series.
	fmt.Fprintf(&b, "%6s", "n")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %22s", s.Name)
	}
	b.WriteString("\n")
	if len(f.Series) > 0 {
		for i, x := range f.Series[0].X {
			fmt.Fprintf(&b, "%6.0f", x)
			for _, s := range f.Series {
				fmt.Fprintf(&b, "  %22s", s.cell(i))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// cell formats point i as a value, with its ± confidence half-width when
// the series carries one.
func (s *Series) cell(i int) string {
	if s.CI != nil && !math.IsInf(s.CI[i], 1) {
		return fmt.Sprintf("%.3f ±%.3f", s.Y[i], s.CI[i])
	}
	return fmt.Sprintf("%.3f", s.Y[i])
}

// Markdown formats the figure's data as a GitHub-flavored Markdown table
// (one row per x value, one column per series).
func (f *Figure) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s: %s** (%s vs %s)\n\n", f.ID, f.Title, f.YLabel, f.XLabel)
	b.WriteString("| n |")
	for _, s := range f.Series {
		b.WriteString(" " + s.Name + " |")
	}
	b.WriteString("\n|---|")
	for range f.Series {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	if len(f.Series) > 0 {
		for i, x := range f.Series[0].X {
			fmt.Fprintf(&b, "| %.0f |", x)
			for _, s := range f.Series {
				fmt.Fprintf(&b, " %s |", s.cell(i))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// chart draws all series on one ASCII grid.
func (f *Figure) chart(w, h int) string {
	var minX, maxX, maxY float64
	first := true
	for _, s := range f.Series {
		for i := range s.X {
			if first {
				minX, maxX = s.X[i], s.X[i]
				first = false
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if first || maxY == 0 {
		return "(no data)\n"
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	marks := []byte{'o', '*', '+', 'x', '#', '@'}
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			col := 0
			if maxX > minX {
				col = int(float64(w-1) * (s.X[i] - minX) / (maxX - minX))
			}
			row := h - 1 - int(float64(h-1)*s.Y[i]/maxY)
			if row < 0 {
				row = 0
			}
			if row >= h {
				row = h - 1
			}
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.2f ", maxY)
		} else if r == h-1 {
			label = fmt.Sprintf("%7.2f ", 0.0)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", w))
	fmt.Fprintf(&b, "        %-8.0f%*s\n", minX, w-4, fmt.Sprintf("%.0f", maxX))
	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c = %s", marks[si%len(marks)], s.Name))
	}
	fmt.Fprintf(&b, "        %s\n", strings.Join(legend, "   "))
	return b.String()
}
