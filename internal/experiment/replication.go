package experiment

import (
	"fmt"

	"carat/internal/repl"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// ReplicationPoint is one point of a replication sweep: the workload
// simulated under a fixed fault plan with the given replication factor and
// read policy.
type ReplicationPoint struct {
	// Factor is the replication factor R at this point (1 is the unreplicated
	// baseline — its simulation path is byte-identical to a run with no
	// replication policy at all).
	Factor int
	// ReadMode names the read policy ("one" or "quorum"; "one" at R=1, where
	// the policy is irrelevant).
	ReadMode string
	// Results is the full simulator measurement.
	Results testbed.Results
	// TxnPerSec is the system-wide commit rate (goodput) in txn/s over the
	// whole window.
	TxnPerSec float64
	// DegradedTxnPerSec is the commit rate during the degraded fraction of
	// the window (at least one site down); 0 when no site was ever down.
	DegradedTxnPerSec float64
	// Availability is the degraded-goodput ratio DegradedTxnPerSec/TxnPerSec:
	// the fraction of normal throughput the system sustains while a site is
	// down (1 when no outage occurred). Unlike per-site uptime, this is
	// sensitive to replication: failover reads keep commits flowing through
	// an outage.
	Availability float64
	// MeanCommitLatencyMS is the commit-weighted mean response time across
	// all sites and transaction kinds, in ms.
	MeanCommitLatencyMS float64
	// System-wide replication traffic counters.
	FailoverReads  int64
	ReplicaApplies int64
	QuorumReads    int64
}

// ReplicationSweep simulates the workload under a fixed fault plan at each
// replication factor × read policy, reporting availability, goodput and
// commit latency per point. Factor 1 points run the unreplicated baseline
// (read policy irrelevant, reported as "one") and are emitted once per
// factor regardless of how many read modes are requested, so the baseline
// appears exactly once. A nil or empty reads slice defaults to read-one.
func ReplicationSweep(wl workload.Workload, factors []int, reads []repl.ReadMode, plan testbed.FaultPlan, opts SimOptions) ([]ReplicationPoint, error) {
	if len(reads) == 0 {
		reads = []repl.ReadMode{repl.ReadOne}
	}
	var out []ReplicationPoint
	for _, factor := range factors {
		modes := reads
		if factor <= 1 {
			modes = []repl.ReadMode{repl.ReadOne}
		}
		for _, mode := range modes {
			wl := wl
			p := plan
			wl.Faults = &p
			if factor > 1 {
				wl.Replication = repl.Policy{Factor: factor, Read: mode}
			} else {
				wl.Replication = repl.Policy{}
			}
			cfg := wl.TestbedConfig(opts.Seed, opts.Warmup, opts.Duration)
			sys, err := testbed.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiment: replication sweep R=%d read=%v: %w", factor, mode, err)
			}
			res := sys.Run()
			out = append(out, replicationPoint(factor, mode, res))
		}
	}
	return out, nil
}

// replicationPoint aggregates one run's measurements into a sweep point.
func replicationPoint(factor int, mode repl.ReadMode, res testbed.Results) ReplicationPoint {
	pt := ReplicationPoint{Factor: factor, ReadMode: mode.String(), Results: res}
	var commits, degraded int64
	var latencyWeighted float64
	for _, n := range res.Nodes {
		pt.TxnPerSec += n.TotalTxnThroughput
		pt.FailoverReads += n.FailoverReads
		pt.ReplicaApplies += n.ReplicaApplies
		pt.QuorumReads += n.QuorumReads
		degraded += n.DegradedCommits
		for k, c := range n.Commits {
			commits += c
			latencyWeighted += n.MeanResponse[k] * float64(c)
		}
	}
	if commits > 0 {
		pt.MeanCommitLatencyMS = latencyWeighted / float64(commits)
	}
	pt.Availability = 1
	if res.DegradedMS > 0 {
		pt.DegradedTxnPerSec = float64(degraded) / res.DegradedMS * 1000
		if pt.TxnPerSec > 0 {
			pt.Availability = pt.DegradedTxnPerSec / pt.TxnPerSec
		} else {
			pt.Availability = 0
		}
	}
	return pt
}
