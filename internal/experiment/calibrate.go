package experiment

import (
	"fmt"
	"math"

	"carat/internal/core"
	"carat/internal/workload"
)

// CalibrationResult reports the outcome of fitting the model's deadlock
// adjusting factor to simulator measurements.
type CalibrationResult struct {
	// Adjust is the fitted DeadlockAdjust factor.
	Adjust float64
	// Error is the fit's mean relative TR-XPUT error across nodes and
	// transaction sizes (absolute value).
	Error float64
	// BaselineError is the same metric at Adjust = 1 (the paper's
	// first-order two-cycle approximation, uncalibrated).
	BaselineError float64
	// Evaluations counts model solutions performed.
	Evaluations int
}

// Calibrate implements the paper's Section 5.4.3 remark: "by observing the
// relative frequencies of more-than-two-cycle vs. two-cycle deadlocks in
// the experiments, we can determine an adjusting factor for each
// workload." Here the observation is a simulator run per transaction size;
// the adjusting factor is fitted by golden-section search on the mean
// relative throughput error.
//
// The fitted direction is workload-dependent: Pd couples to throughput
// both through the abort rate (more deadlocks waste more work) and through
// lock-wait chains (victims die sooner, so waits shorten). On the high-n
// MB8 points the fit lands below 1 and roughly halves the model's error;
// plugging the factor back in via Workload.DeadlockAdjust tightens the
// high-n predictions either way.
func Calibrate(mk func(int) workload.Workload, ns []int, opts SimOptions) (*CalibrationResult, error) {
	if len(ns) == 0 {
		return nil, fmt.Errorf("experiment: no transaction sizes to calibrate on")
	}
	// Measure once per n.
	type point struct {
		wl workload.Workload
		x  [2]float64 // measured TR-XPUT per node, txn/s
	}
	var points []point
	for _, n := range ns {
		wl := mk(n)
		c, err := Run(wl, opts)
		if err != nil {
			return nil, err
		}
		var pt point
		pt.wl = wl
		for node := 0; node < 2; node++ {
			pt.x[node] = c.Measured.Nodes[node].TotalTxnThroughput
		}
		points = append(points, pt)
	}

	evals := 0
	objective := func(adjust float64) (float64, error) {
		evals++
		var sum float64
		var cnt int
		for _, pt := range points {
			wl := pt.wl
			wl.DeadlockAdjust = adjust
			m, err := wl.Model()
			if err != nil {
				return 0, err
			}
			res, err := core.Solve(m)
			if err != nil {
				return 0, err
			}
			for node := 0; node < 2; node++ {
				if pt.x[node] <= 0 {
					continue
				}
				mo := res.Sites[node].TotalTxnThroughput * 1000
				sum += math.Abs(mo-pt.x[node]) / pt.x[node]
				cnt++
			}
		}
		if cnt == 0 {
			return 0, fmt.Errorf("experiment: no measured throughput to calibrate against")
		}
		return sum / float64(cnt), nil
	}

	baseline, err := objective(1)
	if err != nil {
		return nil, err
	}

	// Golden-section search on [0.25, 8] (log scale keeps the bracket
	// meaningful for a multiplicative factor).
	lo, hi := math.Log(0.25), math.Log(8.0)
	const phi = 0.6180339887498949
	a, b := hi-phi*(hi-lo), lo+phi*(hi-lo)
	fa, err := objective(math.Exp(a))
	if err != nil {
		return nil, err
	}
	fb, err := objective(math.Exp(b))
	if err != nil {
		return nil, err
	}
	for i := 0; i < 24 && hi-lo > 1e-3; i++ {
		if fa < fb {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			if fa, err = objective(math.Exp(a)); err != nil {
				return nil, err
			}
		} else {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			if fb, err = objective(math.Exp(b)); err != nil {
				return nil, err
			}
		}
	}
	best := math.Exp((lo + hi) / 2)
	fbest, err := objective(best)
	if err != nil {
		return nil, err
	}
	// The uncalibrated factor wins ties.
	if baseline <= fbest {
		best, fbest = 1, baseline
	}
	return &CalibrationResult{
		Adjust:        best,
		Error:         fbest,
		BaselineError: baseline,
		Evaluations:   evals,
	}, nil
}
