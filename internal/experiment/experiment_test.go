package experiment

import (
	"strings"
	"testing"

	"carat/internal/workload"
)

// quickOpts keeps unit-test simulations short.
func quickOpts() SimOptions {
	return SimOptions{Seed: 1, Warmup: 30_000, Duration: 600_000}
}

func TestRunProducesBothSides(t *testing.T) {
	c, err := Run(workload.MB4(8), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if c.Workload != "MB4" || c.N != 8 {
		t.Fatalf("identity wrong: %s n=%d", c.Workload, c.N)
	}
	for node := 0; node < 2; node++ {
		for _, m := range []Metric{RecordThroughput, CPUUtilization, DiskIORate, TxnThroughput} {
			mo, me := m.Get(c, node)
			if mo <= 0 || me <= 0 {
				t.Fatalf("node %d %s: model %v measured %v", node, m.Name, mo, me)
			}
		}
	}
}

// TestModelTracksSimulation is the reproduction's core validation: across
// the paper's sweep, model and simulation must agree in shape. We check
// relative error bounds looser than the paper's (our simulation windows in
// unit tests are short) and the qualitative claims exactly.
func TestModelTracksSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation sweep")
	}
	opts := SimOptions{Seed: 1, Warmup: 60_000, Duration: 1_860_000}
	comps, err := Sweep(workload.MB8, []int{4, 12, 20}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		for node := 0; node < 2; node++ {
			mo, me := TxnThroughput.Get(c, node)
			relErr := (mo - me) / me
			if relErr < -0.5 || relErr > 0.8 {
				t.Errorf("n=%d node %d: model %v vs sim %v (rel err %v)", c.N, node, mo, me, relErr)
			}
		}
	}
	// Qualitative: throughput decreases with n on both sides.
	for node := 0; node < 2; node++ {
		moFirst, meFirst := TxnThroughput.Get(comps[0], node)
		moLast, meLast := TxnThroughput.Get(comps[len(comps)-1], node)
		if moLast >= moFirst || meLast >= meFirst {
			t.Errorf("node %d: throughput must fall with n (model %v->%v, sim %v->%v)",
				node, moFirst, moLast, meFirst, meLast)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	f, err := Figure5([]int{4, 8}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("series = %d, want model+simulation", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.X) != 2 || len(s.Y) != 2 {
			t.Fatalf("series %s has %d points", s.Name, len(s.X))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %s has nonpositive value", s.Name)
			}
		}
	}
	out := f.ASCII()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "Record Throughput") {
		t.Fatalf("ASCII rendering missing labels:\n%s", out)
	}
}

func TestFigure8HasFourSeries(t *testing.T) {
	f, err := Figure8([]int{4}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("series = %d, want 4 (model+sim per node)", len(f.Series))
	}
}

func TestTable3Layout(t *testing.T) {
	tb, err := Table3([]int{4, 8}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // 2 n-values x 2 nodes
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	out := tb.Render()
	if !strings.Contains(out, "MB8") || !strings.Contains(out, "TR-XPUT") {
		t.Fatalf("rendering missing labels:\n%s", out)
	}
}

func TestTable5PerTypeRows(t *testing.T) {
	tb, err := Table5([]int{4}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // one n-value x four types
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	var types []string
	for _, r := range tb.Rows {
		types = append(types, r[1])
	}
	want := []string{"LRO", "LU", "DRO", "DU"}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("type order = %v, want %v", types, want)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	tb, err := Table1(3, 2, 4, 0.1, 0.05, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	for _, label := range []string{"UT", "INIT", "DMIO", "CWC"} {
		if !strings.Contains(out, label) {
			t.Fatalf("Table 1 missing %s:\n%s", label, out)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2().Render()
	for _, v := range []string{"7.8", "12.0", "8.6", "2.2", "120.0"} {
		if !strings.Contains(out, v) {
			t.Fatalf("Table 2 missing %s:\n%s", v, out)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	bad := func(n int) workload.Workload {
		wl := workload.MB4(n)
		wl.Users = nil
		return wl
	}
	if _, err := Sweep(bad, []int{4}, quickOpts()); err == nil {
		t.Fatal("expected error from invalid workload")
	}
}

func TestPaperNs(t *testing.T) {
	ns := PaperNs()
	want := []int{4, 8, 12, 16, 20}
	if len(ns) != len(want) {
		t.Fatalf("PaperNs = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("PaperNs = %v, want %v", ns, want)
		}
	}
}

func TestFigureResponseTimes(t *testing.T) {
	f, err := FigureResponseTimes([]int{4, 8}, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("series = %d", len(f.Series))
	}
	// Response times rise with n on both sides, and model tracks sim.
	for _, s := range f.Series {
		if s.Y[1] <= s.Y[0] {
			t.Fatalf("%s: response time should rise with n: %v", s.Name, s.Y)
		}
	}
	mo, me := f.Series[0].Y[1], f.Series[1].Y[1]
	if mo < 0.5*me || mo > 1.6*me {
		t.Fatalf("model response %v vs sim %v diverge", mo, me)
	}
}
