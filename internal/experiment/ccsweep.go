package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"carat/internal/storage"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// CCContention is one contention level of the concurrency-control sweep:
// a named record-access pattern driving the simulator's skew.
type CCContention struct {
	Name    string
	Pattern storage.Pattern
}

// DefaultCCContentions returns the sweep's three contention levels: the
// paper's uniform access, the classic 80/20 hotspot, and a YCSB-style
// Zipfian skew.
func DefaultCCContentions() []CCContention {
	return []CCContention{
		{Name: "uniform", Pattern: storage.Uniform{}},
		{Name: "hotspot-80/20", Pattern: storage.Hotspot{Hot: 0.2, Frac: 0.8}},
		{Name: "zipf-0.99", Pattern: storage.NewZipf(0.99)},
	}
}

// DefaultCCProtocols returns the three paradigms the lab compares: locking
// (2PL with distributed deadlock detection), deterministic queue-ordered
// execution (QueCC), and optimistic execution with backward validation.
func DefaultCCProtocols() []testbed.CCProtocol {
	return []testbed.CCProtocol{testbed.CC2PL, testbed.CCQueCC, testbed.CCOCC}
}

// CCSweepPoint is the measurement at one (protocol, contention, MPL) cell.
type CCSweepPoint struct {
	Protocol   string
	Contention string
	// Users is the closed multiprogramming level: the number of terminal
	// processes across both sites.
	Users int
	// CommittedTPS is system-wide committed transactions per second;
	// AbortRate is (submissions − commits) / submissions over the window.
	CommittedTPS float64
	AbortRate    float64
	// MeanResponseMS is the commit-weighted mean response time.
	MeanResponseMS float64
	// Paradigm-specific counters: deadlock victims (local + probe-detected)
	// and probe retransmission rounds exist only under locking; validation
	// aborts only under OCC; lock waits never occur under OCC.
	Deadlocks        int64
	ProbesResent     int64
	ValidationAborts int64
	LockWaits        int64
}

// CCSweepResult is the full three-way comparison grid.
type CCSweepResult struct {
	Protocols   []testbed.CCProtocol
	Contentions []string
	MPLs        []int
	// Points is protocol-major, then contention, then MPL — the same order
	// Table renders.
	Points []CCSweepPoint
}

// ccSweepWorkload builds one cell's workload: the MB4 user mix replicated
// m times per site (8m users total) on a deliberately small database, with
// the cell's access pattern and protocol. Simulation-only: the analytical
// model covers 2PL exclusively, so the sweep never calls Model.
func ccSweepWorkload(prot testbed.CCProtocol, pat storage.Pattern, m int) workload.Workload {
	wl := workload.MB4(8)
	base := wl.Users
	users := make([]testbed.UserSpec, 0, len(base)*m)
	for i := 0; i < m; i++ {
		users = append(users, base...)
	}
	wl.Name = fmt.Sprintf("CC-%s-x%d", prot, m)
	wl.Users = users
	wl.Layout = storage.Layout{Granules: 400, RecordsPerGran: 6}
	wl.Pattern = pat
	wl.Concurrency = prot
	return wl
}

// CCSweep runs the concurrency-control comparison lab: every protocol in
// protocols crossed with every contention level and every MPL multiplier
// (the MB4 mix replicated m times per site), measuring throughput, abort
// rate and the paradigm-specific abort/probe counters. The grid fans out
// across a worker pool with a fixed seed RepSeed(opts.Seed, cell, 0) and a
// fixed result slot per cell, so the output is bit-identical for any
// worker count. Replications are not used: one deterministic run per cell.
func CCSweep(protocols []testbed.CCProtocol, contentions []CCContention, mpls []int, opts SimOptions) (*CCSweepResult, error) {
	if len(protocols) == 0 || len(contentions) == 0 || len(mpls) == 0 {
		return nil, fmt.Errorf("experiment: cc sweep needs protocols, contentions and MPLs")
	}
	type cell struct {
		prot testbed.CCProtocol
		cont CCContention
		m    int
	}
	var cells []cell
	for _, p := range protocols {
		for _, c := range contentions {
			for _, m := range mpls {
				cells = append(cells, cell{prot: p, cont: c, m: m})
			}
		}
	}

	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]testbed.Results, len(cells))
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards done and firstErr, serializes Progress
		done     int
		failed   atomic.Bool
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if failed.Load() {
					continue
				}
				cl := cells[idx]
				wl := ccSweepWorkload(cl.prot, cl.cont.Pattern, cl.m)
				cfg := wl.TestbedConfig(RepSeed(opts.Seed, idx, 0), opts.Warmup, opts.Duration)
				sys, err := testbed.New(cfg)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("experiment: %v/%s/x%d: %w", cl.prot, cl.cont.Name, cl.m, err)
					}
					mu.Unlock()
					continue
				}
				results[idx] = sys.Run()
				mu.Lock()
				done++
				if opts.Progress != nil {
					opts.Progress(done, len(cells))
				}
				mu.Unlock()
			}
		}()
	}
	for idx := range cells {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := &CCSweepResult{Protocols: protocols, MPLs: mpls}
	for _, c := range contentions {
		out.Contentions = append(out.Contentions, c.Name)
	}
	for idx, cl := range cells {
		out.Points = append(out.Points, ccSweepPoint(cl.prot, cl.cont.Name, cl.m, results[idx]))
	}
	return out, nil
}

// ccSweepPoint aggregates one cell's run into the reported measurement.
func ccSweepPoint(prot testbed.CCProtocol, cont string, m int, res testbed.Results) CCSweepPoint {
	pt := CCSweepPoint{Protocol: prot.String(), Contention: cont, Users: 8 * m}
	var subs, commits int64
	var respWeighted float64
	for _, nr := range res.Nodes {
		for _, k := range []testbed.TxnKind{testbed.LRO, testbed.LU, testbed.DRO, testbed.DU} {
			subs += nr.Submissions[k]
			commits += nr.Commits[k]
			respWeighted += nr.MeanResponse[k] * float64(nr.Commits[k])
		}
		pt.Deadlocks += nr.LocalDeadlocks + nr.GlobalDeadlocks
		pt.ProbesResent += nr.ProbesResent
		pt.ValidationAborts += nr.ValidationAborts
		pt.LockWaits += nr.LockWaits
	}
	if res.Window > 0 {
		pt.CommittedTPS = float64(commits) / res.Window * 1000
	}
	if subs > 0 {
		pt.AbortRate = float64(subs-commits) / float64(subs)
	}
	if commits > 0 {
		pt.MeanResponseMS = respWeighted / float64(commits)
	}
	return pt
}

// Point returns the cell for one (protocol, contention, users) triple.
func (r *CCSweepResult) Point(prot, cont string, users int) (CCSweepPoint, bool) {
	for _, p := range r.Points {
		if p.Protocol == prot && p.Contention == cont && p.Users == users {
			return p, true
		}
	}
	return CCSweepPoint{}, false
}

// Table renders the full grid as the comparison table EXPERIMENTS.md
// embeds: one row per cell, protocol-major.
func (r *CCSweepResult) Table() *Table {
	t := &Table{
		ID:    "CC sweep",
		Title: "Concurrency-control paradigms under contention (2PL vs QueCC vs OCC)",
		Header: []string{
			"Protocol", "Contention", "Users",
			"TPS", "Abort rate", "Mean resp (ms)",
			"Deadlocks", "Probes resent", "Validation aborts", "Lock waits",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			p.Protocol, p.Contention, fmt.Sprintf("%d", p.Users),
			fmt.Sprintf("%.2f", p.CommittedTPS),
			fmt.Sprintf("%.3f", p.AbortRate),
			fmt.Sprintf("%.0f", p.MeanResponseMS),
			fmt.Sprintf("%d", p.Deadlocks),
			fmt.Sprintf("%d", p.ProbesResent),
			fmt.Sprintf("%d", p.ValidationAborts),
			fmt.Sprintf("%d", p.LockWaits),
		})
	}
	return t
}

// ThroughputFigure plots committed throughput against MPL at one
// contention level, one series per protocol.
func (r *CCSweepResult) ThroughputFigure(cont string) *Figure {
	f := &Figure{
		ID:     "CC sweep",
		Title:  fmt.Sprintf("Committed throughput vs. MPL (%s access)", cont),
		XLabel: "users (closed MPL, both sites)",
		YLabel: "committed txn/s (system-wide)",
	}
	for _, prot := range r.Protocols {
		s := Series{Name: prot.String()}
		for _, m := range r.MPLs {
			if p, ok := r.Point(prot.String(), cont, 8*m); ok {
				s.X = append(s.X, float64(p.Users))
				s.Y = append(s.Y, p.CommittedTPS)
			}
		}
		f.Series = append(f.Series, s)
	}
	return f
}
