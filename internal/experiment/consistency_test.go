package experiment

import (
	"math"
	"testing"

	"carat/internal/core"
	"carat/internal/phase"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// TestVisitCountsMatchSimulatedLockRequests ties the model's visit-count
// machinery (Table 1, Eq. 1) to the simulator's observed behavior: per
// committed LU transaction the expected number of lock-request events is
// N_s · V_LR = N_s · l·q, and the trace must agree within a few percent.
func TestVisitCountsMatchSimulatedLockRequests(t *testing.T) {
	wl := workload.MB4(8)
	m, err := wl.Model()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	lu := res.Sites[0].Chains[core.LU]
	// Expected lock-request events per commit: the LR phase's converged
	// visit count times N_s covers resubmissions.
	wantPerCommit := lu.Ns * lu.Visits[phase.LR]

	// Count grant+deadlock events per committed LU at node 0 in the
	// simulator (every lock request ends in exactly one of the two).
	var lockRequests, commits float64
	luTxns := map[int64]bool{}
	cfg := wl.TestbedConfig(3, 30_000, 1_230_000)
	cfg.Trace = func(ev testbed.TraceEvent) {
		if ev.Kind != testbed.LU || ev.Node != 0 {
			return
		}
		switch ev.Ev {
		case testbed.EvBegin:
			luTxns[ev.Txn] = true
		case testbed.EvLockGrant, testbed.EvDeadlock:
			if luTxns[ev.Txn] {
				lockRequests++
			}
		case testbed.EvCommitted:
			if luTxns[ev.Txn] {
				commits++
			}
		}
	}
	sys, err := testbed.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if commits < 50 {
		t.Fatalf("only %v commits traced", commits)
	}
	simPerCommit := lockRequests / commits
	if math.Abs(simPerCommit-wantPerCommit)/wantPerCommit > 0.10 {
		t.Fatalf("lock requests per commit: sim %.2f vs model %.2f", simPerCommit, wantPerCommit)
	}
}

// TestMessageRateConsistency checks the model's Communication Network feed
// (messages per ms) against the simulator's message counters for a
// distributed workload: the two must agree within ~25% (the model counts
// protocol messages; the simulator also counts per-node bookkeeping of
// the same hops, so we compare per committed distributed transaction).
func TestMessageRateConsistency(t *testing.T) {
	wl := workload.MB4(8)
	opts := SimOptions{Seed: 9, Warmup: 60_000, Duration: 1_260_000}
	c, err := Run(wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Simulator: messages counted at each endpoint, so each hop counts
	// twice across the node sums; local hops also counted. Take the total
	// and normalize by committed distributed transactions.
	var msgs float64
	var distCommits float64
	for node := 0; node < 2; node++ {
		msgs += float64(c.Measured.Nodes[node].Messages)
		distCommits += (c.Measured.Nodes[node].TxnThroughput[testbed.DRO] +
			c.Measured.Nodes[node].TxnThroughput[testbed.DU]) * c.Measured.Window / 1000
	}
	if distCommits < 100 {
		t.Fatalf("too few distributed commits: %v", distCommits)
	}
	simPerCommit := msgs / 2 / distCommits // de-double-count endpoints

	// Model: per distributed commit, 2·Ns·r request hops + 2 DBOPEN +
	// 4 2PC hops (one slave site).
	var modelPerCommit, weight float64
	for _, ty := range []core.Type{core.DROC, core.DUC} {
		cr := c.Model.Sites[0].Chains[ty]
		modelPerCommit += 2*cr.Ns*4 + 2 + 4 // r = 4 at n = 8
		weight++
	}
	modelPerCommit /= weight

	// The simulator's count also includes local DOSTEP-side accounting
	// and probe traffic, so allow a generous band — the point is the
	// scale, which feeds the Ethernet utilization estimate.
	ratio := simPerCommit / modelPerCommit
	if ratio < 0.7 || ratio > 2.5 {
		t.Fatalf("messages per distributed commit: sim %.1f vs model %.1f (ratio %.2f)",
			simPerCommit, modelPerCommit, ratio)
	}
}

// TestNsMatchesSimulatedResubmissions: the model's N_s (Eq. 4) against the
// simulator's submissions/commits at moderate contention.
func TestNsMatchesSimulatedResubmissions(t *testing.T) {
	wl := workload.MB8(12)
	opts := SimOptions{Seed: 5, Warmup: 60_000, Duration: 1_860_000}
	c, err := Run(wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 2; node++ {
		mr := c.Measured.Nodes[node]
		simNs := float64(mr.Submissions[testbed.LU]) / float64(mr.Commits[testbed.LU])
		modelNs := c.Model.Sites[node].Chains[core.LU].Ns
		if math.Abs(simNs-modelNs)/simNs > 0.35 {
			t.Fatalf("node %d: N_s sim %.2f vs model %.2f", node, simNs, modelNs)
		}
	}
}
