package experiment

import (
	"reflect"
	"testing"

	"carat/internal/testbed"
)

func ccSweepOpts() SimOptions {
	return SimOptions{Seed: 99, Warmup: 20_000, Duration: 220_000}
}

func TestCCSweepSmoke(t *testing.T) {
	res, err := CCSweep(DefaultCCProtocols(), DefaultCCContentions(), []int{1, 2}, ccSweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 3 * 2; len(res.Points) != want {
		t.Fatalf("got %d points, want %d", len(res.Points), want)
	}
	var occValidations, queccDeadlocks, queccProbes, twoPLDeadlocks int64
	for _, p := range res.Points {
		if p.CommittedTPS <= 0 {
			t.Fatalf("%s/%s/%d: no throughput", p.Protocol, p.Contention, p.Users)
		}
		switch p.Protocol {
		case "QueCC":
			queccDeadlocks += p.Deadlocks
			queccProbes += p.ProbesResent
			if p.ValidationAborts != 0 {
				t.Fatalf("QueCC cell reports validation aborts")
			}
		case "OCC":
			occValidations += p.ValidationAborts
			if p.Deadlocks != 0 || p.LockWaits != 0 {
				t.Fatalf("OCC cell blocks or deadlocks (deadlocks %d, waits %d)",
					p.Deadlocks, p.LockWaits)
			}
		case "2PL-detect":
			twoPLDeadlocks += p.Deadlocks
			if p.ValidationAborts != 0 {
				t.Fatalf("2PL cell reports validation aborts")
			}
		}
	}
	if queccDeadlocks != 0 || queccProbes != 0 {
		t.Fatalf("QueCC shows %d deadlocks, %d probe rounds — must be zero by construction",
			queccDeadlocks, queccProbes)
	}
	if occValidations == 0 {
		t.Fatal("OCC never validation-aborted across the whole contended grid")
	}
	if twoPLDeadlocks == 0 {
		t.Fatal("2PL never deadlocked across the whole contended grid — contention too low to compare")
	}
	// Rendering must cover every cell and every contention level.
	if got := len(res.Table().Rows); got != len(res.Points) {
		t.Fatalf("table has %d rows, want %d", got, len(res.Points))
	}
	for _, cont := range res.Contentions {
		f := res.ThroughputFigure(cont)
		if len(f.Series) != len(res.Protocols) {
			t.Fatalf("%s figure has %d series, want %d", cont, len(f.Series), len(res.Protocols))
		}
		for _, s := range f.Series {
			if len(s.X) != len(res.MPLs) {
				t.Fatalf("%s series %s has %d points, want %d", cont, s.Name, len(s.X), len(res.MPLs))
			}
		}
	}
}

func TestCCSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := ccSweepOpts()
	opts.Duration = 120_000
	protocols := DefaultCCProtocols()
	contentions := DefaultCCContentions()[:2]
	var ref *CCSweepResult
	for _, workers := range []int{1, 3, 8} {
		o := opts
		o.Workers = workers
		res, err := CCSweep(protocols, contentions, []int{1, 2}, o)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref.Points, res.Points) {
			t.Fatalf("cc sweep differs between 1 and %d workers", workers)
		}
	}
}

func TestCCSweepRejectsEmptyGrid(t *testing.T) {
	if _, err := CCSweep(nil, DefaultCCContentions(), []int{1}, ccSweepOpts()); err == nil {
		t.Fatal("empty protocol list accepted")
	}
	if _, err := CCSweep(DefaultCCProtocols(), nil, []int{1}, ccSweepOpts()); err == nil {
		t.Fatal("empty contention list accepted")
	}
	if _, err := CCSweep(DefaultCCProtocols(), DefaultCCContentions(), nil, ccSweepOpts()); err == nil {
		t.Fatal("empty MPL list accepted")
	}
}

func BenchmarkCCSweep(b *testing.B) {
	opts := SimOptions{Seed: 7, Warmup: 10_000, Duration: 70_000}
	protocols := []testbed.CCProtocol{testbed.CC2PL, testbed.CCQueCC, testbed.CCOCC}
	contentions := DefaultCCContentions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CCSweep(protocols, contentions, []int{1}, opts); err != nil {
			b.Fatal(err)
		}
	}
}
