// Package experiment regenerates every table and figure of the paper's
// evaluation (Section 6): it runs the analytical model and the testbed
// simulator on the same workload description and lays the two side by
// side, exactly as the paper's model-vs-measurement comparison does.
//
//	Figures 5–7:  LB8 record throughput / CPU utilization / disk I/O (Node B)
//	Figures 8–10: MB4 record throughput / CPU utilization / disk I/O
//	Table 3:      MB8 per-node TR-XPUT, Total-CPU, Total-DIO
//	Table 4:      UB6 per-node TR-XPUT, Total-CPU, Total-DIO
//	Table 5:      MB4 per-type throughput per node
package experiment

import (
	"fmt"

	"carat/internal/core"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// SimOptions controls the simulation ("measurement") side.
type SimOptions struct {
	Seed     uint64
	Warmup   float64 // ms of simulated warmup discarded
	Duration float64 // ms of simulated time including warmup

	// Replications is the number of independent simulation runs per sweep
	// point (0 or 1 means a single run). Replication 0 always runs with
	// Seed itself — so a single run reproduces the historical serial
	// behavior exactly — and replication r > 0 runs with the derived seed
	// RepSeed(Seed, n, r). With more than one replication the figure and
	// table builders report across-replication means with 95% Student-t
	// confidence half-widths next to the model values.
	Replications int
	// Workers bounds the number of concurrent simulations in replicated
	// runs (0 means GOMAXPROCS). Results are independent of Workers: every
	// (point, replication) pair has a fixed seed and a fixed output slot.
	Workers int
	// Progress, when non-nil, is called after each completed replication
	// run with the completed and total run counts. Calls are serialized but
	// may come from worker goroutines.
	Progress func(done, total int)
}

// DefaultSimOptions simulates one hour of testbed time after a two-minute
// warmup — enough for tight estimates at the paper's transaction rates.
func DefaultSimOptions() SimOptions {
	return SimOptions{Seed: 1, Warmup: 120_000, Duration: 3_720_000}
}

// Comparison pairs the model's predictions with the simulator's
// measurements for one workload at one transaction size.
type Comparison struct {
	Workload string
	N        int
	Model    *core.Result
	Measured testbed.Results
}

// Run solves the model and runs the simulator for one workload.
func Run(wl workload.Workload, opts SimOptions) (*Comparison, error) {
	m, err := wl.Model()
	if err != nil {
		return nil, fmt.Errorf("experiment: building model: %w", err)
	}
	modelRes, err := core.Solve(m)
	if err != nil {
		return nil, fmt.Errorf("experiment: solving model: %w", err)
	}
	cfg := wl.TestbedConfig(opts.Seed, opts.Warmup, opts.Duration)
	sys, err := testbed.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: building testbed: %w", err)
	}
	meas := sys.Run()
	return &Comparison{Workload: wl.Name, N: wl.RequestsPerTxn, Model: modelRes, Measured: meas}, nil
}

// Metric extracts one scalar from a comparison for a given node, returning
// the (model, measured) pair.
type Metric struct {
	Name string
	Unit string
	Get  func(c *Comparison, node int) (model, measured float64)
}

// RecordThroughput is the normalized throughput of Figures 5 and 8, in
// database records per second.
var RecordThroughput = Metric{
	Name: "Record Throughput",
	Unit: "records/s",
	Get: func(c *Comparison, node int) (float64, float64) {
		return c.Model.Sites[node].RecordThroughput * 1000, c.Measured.Nodes[node].RecordThroughput
	},
}

// CPUUtilization is Total-CPU: the node's CPU busy fraction.
var CPUUtilization = Metric{
	Name: "CPU Utilization",
	Unit: "fraction",
	Get: func(c *Comparison, node int) (float64, float64) {
		return c.Model.Sites[node].CPUUtilization, c.Measured.Nodes[node].CPUUtilization
	},
}

// DiskIORate is Total-DIO: block I/Os per second including the log.
var DiskIORate = Metric{
	Name: "Disk I/O Rate",
	Unit: "blocks/s",
	Get: func(c *Comparison, node int) (float64, float64) {
		return c.Model.Sites[node].DiskIORate * 1000, c.Measured.Nodes[node].DiskIORate
	},
}

// TxnThroughput is TR-XPUT: committed transactions per second.
var TxnThroughput = Metric{
	Name: "Transaction Throughput",
	Unit: "txn/s",
	Get: func(c *Comparison, node int) (float64, float64) {
		return c.Model.Sites[node].TotalTxnThroughput * 1000, c.Measured.Nodes[node].TotalTxnThroughput
	},
}

// Sweep runs a workload constructor over the transaction sizes, producing
// one comparison per point. The paper sweeps n over {4, 8, 12, 16, 20}.
// Every point runs serially with opts.Seed (the historical single-run
// behavior, pinned by golden tests); for independent replications with
// derived per-replication seeds and parallel execution, use SweepReplicated.
func Sweep(mk func(n int) workload.Workload, ns []int, opts SimOptions) ([]*Comparison, error) {
	out := make([]*Comparison, 0, len(ns))
	for _, n := range ns {
		c, err := Run(mk(n), opts)
		if err != nil {
			return nil, fmt.Errorf("experiment: n=%d: %w", n, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// PaperNs is the transaction-size sweep used throughout the evaluation.
func PaperNs() []int { return []int{4, 8, 12, 16, 20} }

// modelPerType returns the model's per-type commit throughput (txn/s) at a
// node, keyed by the four workload kinds (coordinator chains carry the
// distributed types).
func modelPerType(c *Comparison, node int) map[string]float64 {
	s := c.Model.Sites[node]
	out := map[string]float64{}
	for ty, cr := range s.Chains {
		if ty.Slave() {
			continue
		}
		out[ty.WorkloadName()] = cr.Throughput * 1000
	}
	return out
}

// measuredPerType returns the simulator's per-type commit throughput
// (txn/s) at a node.
func measuredPerType(c *Comparison, node int) map[string]float64 {
	out := map[string]float64{}
	for _, k := range []testbed.TxnKind{testbed.LRO, testbed.LU, testbed.DRO, testbed.DU} {
		out[k.String()] = c.Measured.Nodes[node].TxnThroughput[k]
	}
	return out
}
