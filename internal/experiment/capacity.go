package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"carat/internal/core"
	"carat/internal/testbed"
	"carat/internal/workload"
)

// CapacityPoint is the measurement at one offered-load grid point of a
// capacity sweep. All rates are system-wide transactions per second.
type CapacityPoint struct {
	// LambdaTPS is the configured offered rate; OfferedTPS is the rate the
	// arrival processes actually generated in the measurement window.
	LambdaTPS  float64
	OfferedTPS float64
	// CommittedTPS is the goodput; ShedTPS counts arrivals rejected by the
	// admission gate and AbandonedTPS transactions that exhausted their
	// retry budget.
	CommittedTPS float64
	ShedTPS      float64
	AbandonedTPS float64
	// Response-time percentiles over committed transactions, ms.
	MeanResponseMS float64
	P50ResponseMS  float64
	P95ResponseMS  float64
	// MeanInSystem is the time-average number of resident open
	// transactions, system-wide (Little's-law N).
	MeanInSystem float64
}

// CapacityResult is a full capacity sweep: the per-λ grid measurements plus
// the derived saturation summary.
type CapacityResult struct {
	Workload string
	Points   []CapacityPoint
	// PeakCommittedTPS is the largest committed throughput over the grid —
	// the measured capacity. KneeLambdaTPS is the smallest offered λ whose
	// committed throughput reaches 95% of the peak: the saturation knee.
	PeakCommittedTPS float64
	KneeLambdaTPS    float64
	// BottleneckBoundTPS is the closed model's asymptotic throughput bound
	// 1/D_max (Section 4): the workload's closed-population model is solved
	// once and X/U_max extrapolates its per-center demands to the
	// saturation of the busiest center. Zero when the workload cannot be
	// modeled (no closed users, or a non-2PL protocol).
	BottleneckBoundTPS float64
}

// Knee returns the grid point at the saturation knee.
func (cr *CapacityResult) Knee() CapacityPoint {
	for _, p := range cr.Points {
		if p.LambdaTPS == cr.KneeLambdaTPS {
			return p
		}
	}
	return CapacityPoint{}
}

// CapacitySweep measures an open-arrival workload's saturation behavior:
// it runs the simulator once per offered rate in lambdas (transactions per
// second, system-wide), collects offered/committed/shed throughput and
// response percentiles at each point, locates the saturation knee, and
// computes the closed model's MVA bottleneck bound for comparison.
//
// mk builds a fresh workload per run (nothing mutable is shared between
// concurrent simulations); the workload's Open config supplies the class
// mix and burst shape, and the sweep overrides its rate with each grid
// point (clearing any ramp — a capacity point is a constant-rate run). The
// (point, replication) grid fans out across a worker pool with fixed seeds
// RepSeed(opts.Seed, point, rep) and fixed result slots, so the output is
// bit-identical for any worker count.
func CapacitySweep(mk func() workload.Workload, lambdas []float64, opts SimOptions) (*CapacityResult, error) {
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("experiment: capacity sweep needs at least one rate")
	}
	reps := opts.Replications
	if reps < 1 {
		reps = 1
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if total := len(lambdas) * reps; workers > total {
		workers = total
	}

	probe := mk()
	cr := &CapacityResult{Workload: probe.Name, Points: make([]CapacityPoint, len(lambdas))}
	var modelMix []testbed.OpenClass
	var modelShares []float64
	if len(probe.Users) > 0 {
		// The bound needs the closed model; a workload without closed users
		// (pure open mode) simply reports no bound. The same solve yields
		// the closed system's per-kind throughput mix and per-site
		// throughput shares, which become the sweep's defaults: 1/D_max is
		// the capacity for that operating point (cheap classes circulate
		// faster in a closed system, so its committed mix is not its
		// population mix, and asymmetric sites carry asymmetric load), and
		// offering any other mix or split would saturate the bottleneck at
		// a lower total rate than the bound predicts.
		if b, mix, shares, err := closedBoundAndMix(probe); err == nil {
			cr.BottleneckBoundTPS = b
			modelMix = mix
			modelShares = shares
		}
	}

	results := make([][]testbed.Results, len(lambdas))
	for i := range results {
		results[i] = make([]testbed.Results, reps)
	}

	type job struct{ point, rep int }
	jobs := make(chan job)
	total := len(lambdas) * reps
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards done and firstErr, serializes Progress
		done     int
		failed   atomic.Bool
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if failed.Load() {
					continue
				}
				wl := openAt(mk(), lambdas[j.point], modelMix, modelShares)
				cfg := wl.TestbedConfig(RepSeed(opts.Seed, j.point, j.rep), opts.Warmup, opts.Duration)
				sys, err := testbed.New(cfg)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("experiment: λ=%v rep %d: %w", lambdas[j.point], j.rep, err)
					}
					mu.Unlock()
					continue
				}
				results[j.point][j.rep] = sys.Run()
				mu.Lock()
				done++
				if opts.Progress != nil {
					opts.Progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}
	for point := range lambdas {
		for rep := 0; rep < reps; rep++ {
			jobs <- job{point: point, rep: rep}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	for i, lambda := range lambdas {
		cr.Points[i] = capacityPoint(lambda, results[i])
		if cr.Points[i].CommittedTPS > cr.PeakCommittedTPS {
			cr.PeakCommittedTPS = cr.Points[i].CommittedTPS
		}
	}
	for _, p := range cr.Points {
		if p.CommittedTPS >= 0.95*cr.PeakCommittedTPS {
			cr.KneeLambdaTPS = p.LambdaTPS
			break
		}
	}
	return cr, nil
}

// openAt returns the workload configured for one constant-rate capacity
// point: open arrivals replace the closed terminals (Users only
// parameterize the model bound), the Open config's rate is set to lambda
// with any ramp cleared, and a workload without an explicit class mix or
// per-site split gets the closed model's throughput mix and shares.
func openAt(wl workload.Workload, lambda float64, modelMix []testbed.OpenClass, modelShares []float64) workload.Workload {
	oc := testbed.OpenConfig{RatePerSec: lambda}
	if wl.Open != nil {
		oc.Burst = wl.Open.Burst
		oc.Classes = wl.Open.Classes
	}
	if len(oc.Classes) == 0 {
		oc.Classes = modelMix
	}
	if len(modelShares) > 0 {
		oc.RatePerSec = 0
		oc.PerSiteRatePerSec = make([]float64, len(modelShares))
		for i, sh := range modelShares {
			oc.PerSiteRatePerSec[i] = lambda * sh
		}
	}
	wl.Open = &oc
	wl.Users = nil
	return wl
}

// capacityPoint aggregates one grid point's replications into the reported
// measurement (means across replications; response percentiles are
// commit-weighted across sites within each replication).
func capacityPoint(lambda float64, reps []testbed.Results) CapacityPoint {
	pt := CapacityPoint{LambdaTPS: lambda}
	for _, res := range reps {
		var offered, shed, abandoned, inSystem float64
		var respMean, respP50, respP95, commits float64
		for _, n := range res.Nodes {
			offered += n.OpenOfferedPerSec
			inSystem += n.OpenMeanInSystem
			if res.Window > 0 {
				shed += float64(n.ShedArrivals) / res.Window * 1000
				for _, a := range n.Abandoned {
					abandoned += float64(a) / res.Window * 1000
				}
			}
			var c float64
			for _, k := range n.Commits {
				c += float64(k)
			}
			commits += c
			respMean += n.OpenMeanResponseMS * c
			respP50 += n.OpenP50ResponseMS * c
			respP95 += n.OpenP95ResponseMS * c
		}
		pt.OfferedTPS += offered
		pt.CommittedTPS += goodput(res)
		pt.ShedTPS += shed
		pt.AbandonedTPS += abandoned
		pt.MeanInSystem += inSystem
		if commits > 0 {
			pt.MeanResponseMS += respMean / commits
			pt.P50ResponseMS += respP50 / commits
			pt.P95ResponseMS += respP95 / commits
		}
	}
	n := float64(len(reps))
	pt.OfferedTPS /= n
	pt.CommittedTPS /= n
	pt.ShedTPS /= n
	pt.AbandonedTPS /= n
	pt.MeanInSystem /= n
	pt.MeanResponseMS /= n
	pt.P50ResponseMS /= n
	pt.P95ResponseMS /= n
	return pt
}

// closedBoundAndMix solves the workload's closed model once and derives
// two things from the solution:
//
//   - The asymptotic throughput bound 1/D_max (Section 4), in transactions
//     per second. Utilizations are linear in throughput at fixed
//     per-center demands (U_k = X·D_k), so X/U_max is exactly the
//     throughput at which the busiest center saturates — the capacity any
//     open arrival process is up against.
//   - The closed system's per-kind throughput mix as open class weights,
//     and its per-site throughput shares (each site's fraction of total
//     commits) as the arrival split across sites.
func closedBoundAndMix(wl workload.Workload) (float64, []testbed.OpenClass, []float64, error) {
	m, err := wl.Model()
	if err != nil {
		return 0, nil, nil, err
	}
	res, err := core.Solve(m)
	if err != nil {
		return 0, nil, nil, err
	}
	kindOf := map[core.Type]testbed.TxnKind{
		core.LRO: testbed.LRO, core.LU: testbed.LU,
		core.DROC: testbed.DRO, core.DUC: testbed.DU,
	}
	weight := map[testbed.TxnKind]float64{}
	shares := make([]float64, len(res.Sites))
	var x, umax float64
	for i, s := range res.Sites {
		x += s.TotalTxnThroughput
		shares[i] = s.TotalTxnThroughput
		if s.CPUUtilization > umax {
			umax = s.CPUUtilization
		}
		if s.DiskUtilization > umax {
			umax = s.DiskUtilization
		}
		if m.Sites[i].SeparateLog && s.LogDiskUtilization > umax {
			umax = s.LogDiskUtilization
		}
		for ty, ch := range s.Chains {
			if k, ok := kindOf[ty]; ok {
				weight[k] += ch.Throughput
			}
		}
	}
	if umax <= 0 || x <= 0 {
		return 0, nil, nil, fmt.Errorf("experiment: model reports no utilization")
	}
	var mix []testbed.OpenClass
	for _, k := range []testbed.TxnKind{testbed.LRO, testbed.LU, testbed.DRO, testbed.DU} {
		if weight[k] > 0 {
			mix = append(mix, testbed.OpenClass{Kind: k, Weight: weight[k]})
		}
	}
	for i := range shares {
		shares[i] /= x
	}
	return x / umax * 1000, mix, shares, nil
}
