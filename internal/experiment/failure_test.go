package experiment

import (
	"reflect"
	"testing"

	"carat/internal/testbed"
	"carat/internal/workload"
)

// faultyMB4 is MB4 with an aggressive fault plan attached: frequent short
// crashes plus lock and prepare timeouts.
func faultyMB4(n int) workload.Workload {
	wl := workload.MB4(n)
	wl.Faults = &testbed.FaultPlan{
		CrashMTTFMS:       30_000,
		CrashMTTRMS:       2_000,
		PrepareTimeoutMS:  4_000,
		LockWaitTimeoutMS: 8_000,
	}
	return wl
}

// TestFailureSweepSmoke runs a short throughput-vs-crash-rate sweep and
// checks the availability accounting: the fault-free baseline must be fully
// available, and higher crash rates must actually crash sites and degrade
// availability.
func TestFailureSweepSmoke(t *testing.T) {
	opts := quickOpts()
	opts.Warmup = 10_000
	opts.Duration = 180_000
	plan := testbed.FaultPlan{CrashMTTRMS: 2_000, LockWaitTimeoutMS: 8_000}
	pts, err := FailureSweep(workload.MB4(8), []float64{0, 60_000, 20_000}, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	base := pts[0]
	if base.MTTFMS != 0 || base.Crashes != 0 || base.Availability != 1 {
		t.Fatalf("baseline point must be fault-free and fully available, got %+v", base)
	}
	if base.TxnPerSec <= 0 {
		t.Fatalf("baseline goodput = %v, want > 0", base.TxnPerSec)
	}
	for _, p := range pts[1:] {
		if p.Crashes == 0 {
			t.Fatalf("mttf=%v: no crashes in the window", p.MTTFMS)
		}
		if p.Availability >= 1 || p.Availability <= 0 {
			t.Fatalf("mttf=%v: availability = %v, want in (0, 1)", p.MTTFMS, p.Availability)
		}
		if p.TxnPerSec <= 0 || p.TxnPerSec >= base.TxnPerSec {
			t.Fatalf("mttf=%v: goodput %v, want positive and below the baseline %v",
				p.MTTFMS, p.TxnPerSec, base.TxnPerSec)
		}
	}
}

// TestFailureSweepDeterministic pins that the sweep itself is reproducible:
// the same workload, grid and plan give bit-identical points.
func TestFailureSweepDeterministic(t *testing.T) {
	opts := quickOpts()
	opts.Warmup = 10_000
	opts.Duration = 120_000
	plan := testbed.FaultPlan{CrashMTTRMS: 2_000, LockWaitTimeoutMS: 8_000}
	run := func() []FailurePoint {
		pts, err := FailureSweep(workload.MB4(8), []float64{0, 30_000}, plan, opts)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("two identical failure sweeps diverge")
	}
}

// TestFaultSweepDeterministicAcrossWorkerCounts extends the determinism-
// under-concurrency guarantee to faulted workloads: a replicated sweep with
// a FaultPlan attached must be bit-identical on 1 and 4 workers. This also
// exercises the per-run plan copy — workers validating a shared plan
// concurrently would race (and be caught by -race in CI).
func TestFaultSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []*RepComparison {
		rcs, err := SweepReplicated(faultyMB4, []int{4, 8}, repOpts(3, workers))
		if err != nil {
			t.Fatal(err)
		}
		return rcs
	}
	one := run(1)
	four := run(4)
	for i := range one {
		if !reflect.DeepEqual(one[i].Reps, four[i].Reps) {
			t.Fatalf("n=%d: faulted results differ between 1 and 4 workers", one[i].N)
		}
	}
}
