package wal

import (
	"testing"
	"testing/quick"

	"carat/internal/rng"
	"carat/internal/storage"
)

func newStore() *storage.Store {
	return storage.NewStore(storage.Layout{Granules: 20, RecordsPerGran: 6})
}

func TestRollbackRestoresBeforeImages(t *testing.T) {
	s := newStore()
	l := NewLog()
	s.WriteBlock(3, 10)
	s.WriteBlock(7, 20)

	l.LogBeforeImage(1, s, 3)
	s.Touch(3) // 11
	l.LogBeforeImage(1, s, 7)
	s.Touch(7) // 21
	l.LogBeforeImage(1, s, 3)
	s.Touch(3) // 12

	if l.BeforeImageCount(1) != 3 {
		t.Fatalf("BeforeImageCount = %d", l.BeforeImageCount(1))
	}
	undone := l.Rollback(1, s)
	if len(undone) != 3 {
		t.Fatalf("undone = %v", undone)
	}
	// Reverse order: 3 (->11), 7 (->20), 3 (->10).
	if undone[0] != 3 || undone[1] != 7 || undone[2] != 3 {
		t.Fatalf("undo order = %v, want [3 7 3]", undone)
	}
	if s.ReadBlock(3) != 10 || s.ReadBlock(7) != 20 {
		t.Fatalf("blocks = %d,%d want 10,20", s.ReadBlock(3), s.ReadBlock(7))
	}
	if l.BeforeImageCount(1) != 0 {
		t.Fatal("undo list not cleared")
	}
}

func TestRollbackIsolatedPerTxn(t *testing.T) {
	s := newStore()
	l := NewLog()
	l.LogBeforeImage(1, s, 1)
	s.Touch(1)
	l.LogBeforeImage(2, s, 2)
	s.Touch(2)
	l.Rollback(1, s)
	if s.ReadBlock(1) != 0 {
		t.Fatal("txn 1 not undone")
	}
	if s.ReadBlock(2) != 1 {
		t.Fatal("txn 2 must be untouched by txn 1 rollback")
	}
}

func TestCommitClearsUndoList(t *testing.T) {
	s := newStore()
	l := NewLog()
	l.LogBeforeImage(1, s, 1)
	s.Touch(1)
	rec := l.Commit(1)
	if rec.Kind != Commit {
		t.Fatalf("kind = %v", rec.Kind)
	}
	if l.BeforeImageCount(1) != 0 {
		t.Fatal("commit must clear the undo list")
	}
	// A later rollback call finds nothing to undo.
	if undone := l.Rollback(1, s); len(undone) != 0 {
		t.Fatalf("rollback after commit undid %v", undone)
	}
	if s.ReadBlock(1) != 1 {
		t.Fatal("committed update lost")
	}
}

func TestLSNsMonotonic(t *testing.T) {
	s := newStore()
	l := NewLog()
	var last int64
	for i := 0; i < 10; i++ {
		r := l.LogBeforeImage(int64(i%3), s, i%5)
		if r.LSN <= last {
			t.Fatalf("LSN %d not increasing past %d", r.LSN, last)
		}
		last = r.LSN
	}
}

func TestForceAndFlushedLSN(t *testing.T) {
	l := NewLog()
	s := newStore()
	bi := l.LogBeforeImage(1, s, 0)
	rec := l.Commit(1)
	// Before-images self-force (write-ahead rule); the commit record does not.
	if l.FlushedLSN() != bi.LSN {
		t.Fatalf("FlushedLSN = %d, want %d (before-image durable, commit not)", l.FlushedLSN(), bi.LSN)
	}
	l.Force(rec.LSN)
	if l.FlushedLSN() != rec.LSN {
		t.Fatalf("FlushedLSN = %d, want %d", l.FlushedLSN(), rec.LSN)
	}
	// Forcing beyond the end clamps.
	l.Force(rec.LSN + 100)
	if l.FlushedLSN() != rec.LSN {
		t.Fatalf("FlushedLSN clamped = %d", l.FlushedLSN())
	}
}

func TestRecoverUndoesLosersOnly(t *testing.T) {
	s := newStore()
	l := NewLog()

	// Txn 1 commits durably.
	l.LogBeforeImage(1, s, 1)
	s.WriteBlock(1, 100)
	c1 := l.Commit(1)
	l.Force(c1.LSN)

	// Txn 3 in flight at crash (its before-image is durable by the
	// write-ahead rule).
	l.LogBeforeImage(3, s, 3)
	s.WriteBlock(3, 300)

	// Txn 2 updates and commits, but the commit record is never forced and
	// no later log write pushes it out: lost in the crash.
	l.LogBeforeImage(2, s, 2)
	s.WriteBlock(2, 200)
	l.Commit(2) // not forced

	losers, inDoubt := l.Recover(s)
	if len(losers) != 2 {
		t.Fatalf("losers = %v, want txns 2 and 3", losers)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("inDoubt = %v, want none", inDoubt)
	}
	if s.ReadBlock(1) != 100 {
		t.Fatal("winner's update lost")
	}
	if s.ReadBlock(2) != 0 || s.ReadBlock(3) != 0 {
		t.Fatalf("losers not undone: %d, %d", s.ReadBlock(2), s.ReadBlock(3))
	}
}

func TestRecoverUndoOrderInterleaved(t *testing.T) {
	// Two losers touch the same block; undo must run in reverse LSN order
	// so the oldest before-image wins.
	s := newStore()
	l := NewLog()
	s.WriteBlock(5, 1)
	l.LogBeforeImage(1, s, 5) // image 1
	s.WriteBlock(5, 2)
	l.LogBeforeImage(2, s, 5) // image 2
	s.WriteBlock(5, 3)
	l.Force(1 << 30)
	losers, _ := l.Recover(s)
	if len(losers) != 2 {
		t.Fatalf("losers = %v", losers)
	}
	if s.ReadBlock(5) != 1 {
		t.Fatalf("block = %d, want original 1", s.ReadBlock(5))
	}
}

// TestPropertyRollbackAlwaysRestores runs random update/rollback schedules
// and checks that after rolling back every uncommitted transaction the
// store matches a shadow copy that only applied committed work.
func TestPropertyRollbackAlwaysRestores(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		layout := storage.Layout{Granules: 8, RecordsPerGran: 6}
		s := storage.NewStore(layout)
		shadow := storage.NewStore(layout)
		l := NewLog()
		const txns = 4
		liveDirty := map[int64]map[int]uint64{} // txn -> block -> pending value
		for i := 0; i < 150; i++ {
			txn := int64(1 + r.Intn(txns))
			switch r.Intn(6) {
			case 0: // commit
				if dirty, ok := liveDirty[txn]; ok {
					for b, v := range dirty {
						shadow.WriteBlock(b, v)
					}
					delete(liveDirty, txn)
				}
				l.Commit(txn)
			case 1: // abort
				l.Rollback(txn, s)
				delete(liveDirty, txn)
			default: // update a block not dirtied by another live txn
				b := r.Intn(layout.Granules)
				conflict := false
				for other, dirty := range liveDirty {
					if other != txn && dirty[b] != 0 {
						conflict = true
					}
				}
				if conflict {
					continue
				}
				if liveDirty[txn] == nil {
					liveDirty[txn] = map[int]uint64{}
				}
				if _, already := liveDirty[txn][b]; !already {
					l.LogBeforeImage(txn, s, b)
				}
				v := s.ReadBlock(b) + 1
				s.WriteBlock(b, v)
				liveDirty[txn][b] = v
			}
		}
		// Roll back everything still live.
		for txn := int64(1); txn <= txns; txn++ {
			l.Rollback(txn, s)
		}
		for b := 0; b < layout.Granules; b++ {
			if s.ReadBlock(b) != shadow.ReadBlock(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
