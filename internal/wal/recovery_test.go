package wal

import "testing"

func TestPreparedTxnIsInDoubt(t *testing.T) {
	s := newStore()
	l := NewLog()

	// A participant updates, prepares (force-written), then the crash
	// arrives before the COMMIT message.
	l.LogBeforeImage(10, s, 2)
	s.WriteBlock(2, 200)
	l.Prepare(10)

	losers, inDoubt := l.Recover(s)
	if len(losers) != 0 {
		t.Fatalf("losers = %v, want none", losers)
	}
	if len(inDoubt) != 1 || inDoubt[0] != 10 {
		t.Fatalf("inDoubt = %v, want [10]", inDoubt)
	}
	// In-doubt updates stay in place until resolution.
	if s.ReadBlock(2) != 200 {
		t.Fatalf("in-doubt update undone prematurely: %d", s.ReadBlock(2))
	}
}

func TestResolveInDoubtCommit(t *testing.T) {
	s := newStore()
	l := NewLog()
	l.LogBeforeImage(10, s, 2)
	s.WriteBlock(2, 200)
	l.Prepare(10)
	_, inDoubt := l.Recover(s)
	if len(inDoubt) != 1 {
		t.Fatalf("inDoubt = %v", inDoubt)
	}
	l.ResolveInDoubt(10, true, s)
	if s.ReadBlock(2) != 200 {
		t.Fatal("committed in-doubt update lost")
	}
	// A second recovery finds the transaction resolved.
	losers, inDoubt2 := l.Recover(s)
	if len(losers) != 0 || len(inDoubt2) != 0 {
		t.Fatalf("after resolution: losers=%v inDoubt=%v", losers, inDoubt2)
	}
}

func TestResolveInDoubtAbort(t *testing.T) {
	s := newStore()
	l := NewLog()
	s.WriteBlock(2, 7)
	l.LogBeforeImage(10, s, 2)
	s.WriteBlock(2, 200)
	l.Prepare(10)
	_, inDoubt := l.Recover(s)
	if len(inDoubt) != 1 {
		t.Fatalf("inDoubt = %v", inDoubt)
	}
	l.ResolveInDoubt(10, false, s)
	if s.ReadBlock(2) != 7 {
		t.Fatalf("aborted in-doubt update not undone: %d", s.ReadBlock(2))
	}
}

func TestPreparedThenCommittedIsWinner(t *testing.T) {
	s := newStore()
	l := NewLog()
	l.LogBeforeImage(10, s, 2)
	s.WriteBlock(2, 200)
	l.Prepare(10)
	c := l.Commit(10)
	l.Force(c.LSN)
	losers, inDoubt := l.Recover(s)
	if len(losers) != 0 || len(inDoubt) != 0 {
		t.Fatalf("losers=%v inDoubt=%v, want committed winner", losers, inDoubt)
	}
	if s.ReadBlock(2) != 200 {
		t.Fatal("winner's update lost")
	}
}

func TestMixedRecoveryScenario(t *testing.T) {
	// One winner, one loser, one in-doubt, all interleaved on the log.
	s := newStore()
	l := NewLog()

	l.LogBeforeImage(1, s, 1)
	s.WriteBlock(1, 100)
	l.LogBeforeImage(2, s, 2)
	s.WriteBlock(2, 200)
	l.LogBeforeImage(3, s, 3)
	s.WriteBlock(3, 300)

	c := l.Commit(1)
	l.Force(c.LSN)
	l.Prepare(3)

	losers, inDoubt := l.Recover(s)
	if len(losers) != 1 || losers[0] != 2 {
		t.Fatalf("losers = %v, want [2]", losers)
	}
	if len(inDoubt) != 1 || inDoubt[0] != 3 {
		t.Fatalf("inDoubt = %v, want [3]", inDoubt)
	}
	if s.ReadBlock(1) != 100 || s.ReadBlock(2) != 0 || s.ReadBlock(3) != 300 {
		t.Fatalf("state = %d,%d,%d", s.ReadBlock(1), s.ReadBlock(2), s.ReadBlock(3))
	}
	l.ResolveInDoubt(3, false, s)
	if s.ReadBlock(3) != 0 {
		t.Fatal("in-doubt abort resolution failed")
	}
}
