package wal

import (
	"testing"

	"carat/internal/storage"
)

// TestReplicaApplyInvisibleToRecovery pins the recovery contract of
// replica-apply records: they are durable and replayable (ReplicaVersions),
// but never make their writer a restart loser or an in-doubt branch, and
// Recover never undoes anything because of them.
func TestReplicaApplyInvisibleToRecovery(t *testing.T) {
	layout := storage.Layout{Granules: 10, RecordsPerGran: 6}
	store := storage.NewStore(layout)
	l := NewLog()

	// Committed writer 1 applies to replica blocks 23 and 47; writer 2's
	// apply supersedes writer 1 on block 23.
	l.LogReplicaApply(1, 23)
	l.LogReplicaApply(1, 47)
	l.LogReplicaApply(2, 23)

	versions := l.ReplicaVersions()
	if versions[23] != 2 || versions[47] != 1 {
		t.Fatalf("ReplicaVersions = %v, want block 23 -> 2, block 47 -> 1", versions)
	}

	before := store.ReadBlock(3)
	losers, inDoubt := l.Recover(store)
	if len(losers) != 0 || len(inDoubt) != 0 {
		t.Fatalf("recovery saw losers %v, in-doubt %v; replica applies must be invisible", losers, inDoubt)
	}
	if store.ReadBlock(3) != before {
		t.Fatal("recovery mutated the store with no before-images logged")
	}
	// The records survive recovery for replay.
	if got := l.ReplicaVersions(); got[23] != 2 || got[47] != 1 {
		t.Fatalf("ReplicaVersions after recovery = %v, want unchanged", got)
	}

	// A writer with an unforced before-image and a replica apply elsewhere
	// is still a loser for the before-image alone.
	l2 := NewLog()
	l2.LogBeforeImage(9, store, 4)
	l2.LogReplicaApply(9, 99)
	losers, _ = l2.Recover(store)
	if len(losers) != 1 || losers[0] != 9 {
		t.Fatalf("losers = %v, want exactly txn 9", losers)
	}
}
