// Package wal implements before-image journaling, the transaction recovery
// protocol of the CARAT testbed (Section 2: "Before-image journaling was
// used for transaction recovery").
//
// Before a transaction overwrites a database block, the block's prior
// contents (the before-image) are appended to the journal. Rolling back a
// transaction re-applies its before-images in reverse order; committing
// writes a commit record that must be force-written to stable storage
// before the transaction's locks are released (write-ahead rule). Recovery
// after a crash undoes every transaction without a commit record.
//
// The log is an in-memory sequence of records; the simulator charges the
// corresponding disk time separately through the disk package. The logical
// structure here is nonetheless complete enough to test the undo and crash
// recovery invariants directly.
package wal

import (
	"fmt"

	"carat/internal/storage"
)

// RecordKind tags journal records.
type RecordKind int

const (
	// BeforeImage stores a block's contents prior to an update.
	BeforeImage RecordKind = iota
	// Commit marks a transaction durable. It is force-written.
	Commit
	// Abort marks a transaction rolled back (written after undo).
	Abort
	// Prepared marks a two-phase-commit participant's promise: the
	// transaction's fate now rests with its coordinator. Force-written
	// before the PREPARE acknowledgment.
	Prepared
	// ReplicaApply marks a committed writer's update reaching a replica
	// copy: Block is the replica's lock-namespace id and Txn the committed
	// writer. Force-written at apply time, and deliberately invisible to
	// the loser/in-doubt selection of Recover — the writer is already
	// durably committed at its coordinator, so restart replay only needs
	// to restore the replica version map from these records.
	ReplicaApply
)

// String names the record kind.
func (k RecordKind) String() string {
	switch k {
	case BeforeImage:
		return "before-image"
	case Commit:
		return "commit"
	case Abort:
		return "abort"
	case Prepared:
		return "prepared"
	case ReplicaApply:
		return "replica-apply"
	default:
		return fmt.Sprintf("RecordKind(%d)", int(k))
	}
}

// Record is one journal entry.
type Record struct {
	LSN   int64
	Kind  RecordKind
	Txn   int64
	Block int    // BeforeImage only
	Image uint64 // BeforeImage only: prior block version
}

// Log is one site's journal.
type Log struct {
	records []Record
	nextLSN int64
	flushed int64 // LSN up to which records are on stable storage

	// byTxn indexes the positions of each live transaction's before-image
	// records for O(1) rollback lookup.
	byTxn map[int64][]int
}

// NewLog creates an empty journal.
func NewLog() *Log {
	return &Log{byTxn: make(map[int64][]int)}
}

// Len returns the number of records written.
func (l *Log) Len() int { return len(l.records) }

// FlushedLSN returns the highest LSN known durable.
func (l *Log) FlushedLSN() int64 { return l.flushed }

// append adds a record and returns it.
func (l *Log) append(r Record) Record {
	l.nextLSN++
	r.LSN = l.nextLSN
	l.records = append(l.records, r)
	return r
}

// LogBeforeImage journals block g's current contents from store on behalf
// of txn. Call it before the in-place write. Returns the record for the
// caller to charge I/O against.
//
// The record is immediately durable: the testbed writes the journal
// synchronously as one of the three I/Os of an update (Table 2), and the
// write-ahead rule requires it on stable storage before the in-place page
// write. Because the log is sequential, this also forces any earlier
// unforced records.
func (l *Log) LogBeforeImage(txn int64, store *storage.Store, g int) Record {
	r := l.append(Record{Kind: BeforeImage, Txn: txn, Block: g, Image: store.ReadBlock(g)})
	l.byTxn[txn] = append(l.byTxn[txn], len(l.records)-1)
	l.Force(r.LSN)
	return r
}

// BeforeImageCount returns how many before-images txn has journaled —
// exactly the number of undo I/Os a rollback will need (the TAIO phase).
func (l *Log) BeforeImageCount(txn int64) int { return len(l.byTxn[txn]) }

// Rollback undoes txn: its before-images are applied to store in reverse
// order, an abort record is appended, and the undo list is discarded. It
// returns the blocks restored, in undo order, for the caller to charge
// rollback I/O (one database write per block).
func (l *Log) Rollback(txn int64, store *storage.Store) []int {
	idxs := l.byTxn[txn]
	undone := make([]int, 0, len(idxs))
	for i := len(idxs) - 1; i >= 0; i-- {
		rec := l.records[idxs[i]]
		store.WriteBlock(rec.Block, rec.Image)
		undone = append(undone, rec.Block)
	}
	l.append(Record{Kind: Abort, Txn: txn})
	delete(l.byTxn, txn)
	return undone
}

// Commit appends txn's commit record and returns it. The record is not
// durable until Force is called (the testbed charges a synchronous disk
// write for that — the force-write the paper blames for the model's
// small-n deviation).
func (l *Log) Commit(txn int64) Record {
	r := l.append(Record{Kind: Commit, Txn: txn})
	delete(l.byTxn, txn)
	return r
}

// LogReplicaApply appends and forces a replica-apply record: committed
// writer txn's update reached this site's copy identified by block (a
// replica lock-namespace id, not a primary granule). The caller charges the
// log-disk write; the record's durability is what lets restart recovery
// rebuild the replica version map.
func (l *Log) LogReplicaApply(txn int64, block int) Record {
	r := l.append(Record{Kind: ReplicaApply, Txn: txn, Block: block, Image: uint64(txn)})
	l.Force(r.LSN)
	return r
}

// ReplicaVersions scans the durable journal and returns the last committed
// writer of every replica block applied at this site — the restart-replay
// source for the replica version map.
func (l *Log) ReplicaVersions() map[int]int64 {
	out := make(map[int]int64)
	for _, r := range l.records {
		if r.Kind == ReplicaApply && r.LSN <= l.flushed {
			out[r.Block] = r.Txn
		}
	}
	return out
}

// Prepare appends and forces txn's prepared record (a two-phase-commit
// participant voting yes). The undo list is retained: the transaction may
// still be told to abort.
func (l *Log) Prepare(txn int64) Record {
	r := l.append(Record{Kind: Prepared, Txn: txn})
	l.Force(r.LSN)
	return r
}

// Force marks everything up to lsn durable.
func (l *Log) Force(lsn int64) {
	if lsn > l.flushed {
		l.flushed = lsn
	}
	if l.flushed > l.nextLSN {
		l.flushed = l.nextLSN
	}
}

// Records returns a copy of the journal (tests and recovery).
func (l *Log) Records() []Record {
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// Recover simulates restart after losing volatile memory: only records with
// LSN <= FlushedLSN survive. Every transaction with a surviving before-
// image but no surviving commit, abort or prepared record is a loser and is
// undone against store (presumed abort). Transactions whose last word is a
// durable prepared record are in doubt: their updates are left in place and
// their ids returned for resolution against the coordinator's log (see
// ResolveInDoubt).
func (l *Log) Recover(store *storage.Store) (losers, inDoubt []int64) {
	durable := l.records[:0:0]
	for _, r := range l.records {
		if r.LSN <= l.flushed {
			durable = append(durable, r)
		}
	}
	resolved := make(map[int64]bool)
	prepared := make(map[int64]bool)
	var undoTxns []int64
	hasUndo := make(map[int64]bool)
	for _, r := range durable {
		switch r.Kind {
		case Commit, Abort:
			resolved[r.Txn] = true
		case Prepared:
			prepared[r.Txn] = true
		case BeforeImage:
			if !hasUndo[r.Txn] {
				hasUndo[r.Txn] = true
				undoTxns = append(undoTxns, r.Txn)
			}
		}
	}
	for _, txn := range undoTxns {
		switch {
		case resolved[txn]:
		case prepared[txn]:
			inDoubt = append(inDoubt, txn)
		default:
			losers = append(losers, txn)
		}
	}
	loserSet := make(map[int64]bool, len(losers))
	for _, t := range losers {
		loserSet[t] = true
	}
	// Undo in reverse log order across all losers. In-doubt undo lists are
	// rebuilt so a later ResolveInDoubt(abort) can roll them back.
	inDoubtSet := make(map[int64]bool, len(inDoubt))
	for _, t := range inDoubt {
		inDoubtSet[t] = true
	}
	l.byTxn = make(map[int64][]int)
	for i := len(durable) - 1; i >= 0; i-- {
		r := durable[i]
		if r.Kind != BeforeImage {
			continue
		}
		if loserSet[r.Txn] {
			store.WriteBlock(r.Block, r.Image)
		}
	}
	for i, r := range l.records {
		if r.Kind == BeforeImage && r.LSN <= l.flushed && inDoubtSet[r.Txn] {
			l.byTxn[r.Txn] = append(l.byTxn[r.Txn], i)
		}
	}
	// Log the losers' abort records durably so recovery is idempotent: a
	// second restart finds them resolved.
	for _, txn := range losers {
		r := l.append(Record{Kind: Abort, Txn: txn})
		l.Force(r.LSN)
	}
	return losers, inDoubt
}

// ResolveInDoubt settles an in-doubt transaction after recovery: commit
// keeps its updates and logs a commit record; abort rolls them back.
func (l *Log) ResolveInDoubt(txn int64, commit bool, store *storage.Store) {
	if commit {
		rec := l.Commit(txn)
		l.Force(rec.LSN)
		return
	}
	l.Rollback(txn, store)
}
