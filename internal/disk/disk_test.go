package disk

import (
	"math"
	"testing"

	"carat/internal/rng"
	"carat/internal/sim"
)

func TestProfilesMatchTable2(t *testing.T) {
	a, b := ProfileRM05(), ProfileRP06()
	if a.Mean(Read) != 28 || a.Mean(Write) != 28 {
		t.Fatalf("RM05 means = %v/%v, want 28 (Table 2, Node A)", a.Mean(Read), a.Mean(Write))
	}
	if b.Mean(Read) != 40 || b.Mean(Write) != 40 {
		t.Fatalf("RP06 means = %v/%v, want 40 (Table 2, Node B)", b.Mean(Read), b.Mean(Write))
	}
}

func TestFixedModel(t *testing.T) {
	m := Fixed{ReadTime: 5, WriteTime: 7, LogTime: 2}
	r := rng.New(1)
	if m.Time(r, Read, 3) != 5 || m.Time(r, Write, 3) != 7 || m.Time(r, LogWrite, 0) != 2 || m.Time(r, ForceWrite, 0) != 2 {
		t.Fatal("fixed model times wrong")
	}
}

func TestExponentialModelMean(t *testing.T) {
	m := Exponential{ReadMean: 30, WriteMean: 30, LogMean: 30}
	r := rng.New(2)
	var sum float64
	const trials = 100000
	for i := 0; i < trials; i++ {
		sum += m.Time(r, Read, 0)
	}
	got := sum / trials
	if math.Abs(got-30) > 0.5 {
		t.Fatalf("empirical mean = %v, want ~30", got)
	}
}

func TestSeekRotationalProperties(t *testing.T) {
	m := &SeekRotational{
		Cylinders:      823,
		BlocksPerCyl:   57,
		MinSeek:        6,
		MaxSeek:        55,
		RevolutionTime: 16.7,
		TransferTime:   0.4,
	}
	r := rng.New(3)
	// Log writes skip the seek: bounded by rotation + transfer.
	for i := 0; i < 100; i++ {
		d := m.Time(r, LogWrite, 0)
		if d < 0 || d > m.RevolutionTime+m.TransferTime {
			t.Fatalf("log write time %v out of bounds", d)
		}
	}
	// Same-cylinder read has no seek.
	m.lastCyl = 0
	d := m.Time(r, Read, 5) // block 5 is cylinder 0
	if d > m.RevolutionTime+m.TransferTime {
		t.Fatalf("same-cylinder read %v includes seek", d)
	}
	// Far read must include a seek of at least MinSeek.
	d = m.Time(r, Read, 822*57)
	if d < m.MinSeek {
		t.Fatalf("far read %v missing seek", d)
	}
	if mean := m.Mean(Read); mean <= m.RevolutionTime/2 {
		t.Fatalf("mean read %v implausible", mean)
	}
}

func TestDeviceQueuesFCFS(t *testing.T) {
	e := sim.NewEnv()
	d := New(e, "diskA", Fixed{ReadTime: 10, WriteTime: 10, LogTime: 10}, rng.New(1))
	var finish []float64
	for i := 0; i < 3; i++ {
		e.Spawn("io", func(p *sim.Proc) {
			if err := d.Do(p, Read, i); err != nil {
				t.Errorf("Do: %v", err)
			}
			finish = append(finish, p.Now())
		})
	}
	e.RunAll()
	want := []float64{10, 20, 30}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	reads, writes, logs := d.Counts()
	if reads != 3 || writes != 0 || logs != 0 {
		t.Fatalf("counts = %d,%d,%d", reads, writes, logs)
	}
	if u := d.Utilization(30); math.Abs(u-1) > 1e-9 {
		t.Fatalf("utilization = %v", u)
	}
	if rate := d.IORate(30); math.Abs(rate-0.1) > 1e-9 {
		t.Fatalf("IO rate = %v, want 0.1", rate)
	}
}

func TestDeviceOpMix(t *testing.T) {
	e := sim.NewEnv()
	d := New(e, "disk", Fixed{ReadTime: 1, WriteTime: 2, LogTime: 3}, rng.New(1))
	e.Spawn("io", func(p *sim.Proc) {
		_ = d.Do(p, Read, 0)
		_ = d.Do(p, Write, 0)
		_ = d.Do(p, LogWrite, 0)
		_ = d.Do(p, ForceWrite, 0)
	})
	end := e.RunAll()
	if end != 1+2+3+3 {
		t.Fatalf("end = %v, want 9", end)
	}
	r, w, l := d.Counts()
	if r != 1 || w != 1 || l != 2 {
		t.Fatalf("counts = %d,%d,%d", r, w, l)
	}
}

func TestDeviceResetStats(t *testing.T) {
	e := sim.NewEnv()
	d := New(e, "disk", Fixed{ReadTime: 10, WriteTime: 10, LogTime: 10}, rng.New(1))
	e.Spawn("io", func(p *sim.Proc) {
		_ = d.Do(p, Read, 0)
		d.ResetStats(p.Now())
		p.Hold(10) // idle window
	})
	e.RunAll()
	if u := d.Utilization(20); u != 0 {
		t.Fatalf("utilization after reset = %v, want 0", u)
	}
	r, _, _ := d.Counts()
	if r != 0 {
		t.Fatalf("reads after reset = %d", r)
	}
}

func TestOpKindString(t *testing.T) {
	if Read.String() != "read" || ForceWrite.String() != "forcewrite" {
		t.Fatal("OpKind names wrong")
	}
}
