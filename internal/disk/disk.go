// Package disk models the database and log disks of the CARAT testbed.
//
// A Device is a FCFS single-server station whose per-operation service time
// is drawn from a pluggable ServiceModel. The paper's measurements fold seek,
// rotation and transfer into a single mean per block I/O (Table 2: 28 ms on
// Node A's RM05, 40 ms on Node B's RP06 for a read), so the default profiles
// here are calibrated to those means; a detailed seek+rotation model is also
// provided for studies that move beyond the paper.
package disk

import (
	"fmt"
	"math"

	"carat/internal/rng"
	"carat/internal/sim"
)

// OpKind distinguishes the operations CARAT issues to a disk.
type OpKind int

const (
	// Read fetches one database block.
	Read OpKind = iota
	// Write rewrites one database block in place.
	Write
	// LogWrite appends one journal/log block (sequential).
	LogWrite
	// ForceWrite synchronously flushes a commit record (2PC force-write).
	ForceWrite
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case LogWrite:
		return "logwrite"
	case ForceWrite:
		return "forcewrite"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// ServiceModel yields a service time for one disk operation. Block
// addresses let positional models account for seek distance.
type ServiceModel interface {
	// Time returns the service time for an operation on the given block.
	Time(r *rng.Rand, op OpKind, block int) float64
	// Mean returns the long-run mean service time for the operation,
	// used to parameterize the analytical model consistently.
	Mean(op OpKind) float64
}

// Fixed is a deterministic service model: every operation of a kind takes
// exactly its configured time.
type Fixed struct {
	ReadTime  float64
	WriteTime float64
	LogTime   float64
}

// Time implements ServiceModel.
func (f Fixed) Time(_ *rng.Rand, op OpKind, _ int) float64 { return f.Mean(op) }

// Mean implements ServiceModel.
func (f Fixed) Mean(op OpKind) float64 {
	switch op {
	case Read:
		return f.ReadTime
	case Write:
		return f.WriteTime
	default:
		return f.LogTime
	}
}

// Exponential draws each service time from an exponential distribution
// around the configured means, the classical queueing-model assumption.
type Exponential struct {
	ReadMean  float64
	WriteMean float64
	LogMean   float64
}

// Time implements ServiceModel.
func (e Exponential) Time(r *rng.Rand, op OpKind, _ int) float64 {
	return r.Exp(e.Mean(op))
}

// Mean implements ServiceModel.
func (e Exponential) Mean(op OpKind) float64 {
	switch op {
	case Read:
		return e.ReadMean
	case Write:
		return e.WriteMean
	default:
		return e.LogMean
	}
}

// SeekRotational is a positional model: service time = seek (a function of
// cylinder distance) + rotational latency (uniform in one revolution) +
// fixed transfer time. Log writes are sequential and skip the seek.
type SeekRotational struct {
	Cylinders      int     // number of cylinders
	BlocksPerCyl   int     // blocks per cylinder
	MinSeek        float64 // single-track seek time
	MaxSeek        float64 // full-stroke seek time
	RevolutionTime float64 // one platter revolution
	TransferTime   float64 // one-block transfer

	lastCyl int
}

// Time implements ServiceModel. It mutates the head position, so a
// SeekRotational must not be shared between devices.
func (s *SeekRotational) Time(r *rng.Rand, op OpKind, block int) float64 {
	rot := r.Float64() * s.RevolutionTime
	if op == LogWrite || op == ForceWrite {
		// Sequential append: no seek, half-rotation on average already
		// captured by the uniform draw.
		return rot + s.TransferTime
	}
	cyl := 0
	if s.BlocksPerCyl > 0 {
		cyl = block / s.BlocksPerCyl
		if s.Cylinders > 0 {
			cyl %= s.Cylinders
		}
	}
	dist := cyl - s.lastCyl
	if dist < 0 {
		dist = -dist
	}
	s.lastCyl = cyl
	seek := 0.0
	if dist > 0 && s.Cylinders > 1 {
		frac := float64(dist) / float64(s.Cylinders-1)
		seek = s.MinSeek + (s.MaxSeek-s.MinSeek)*math.Sqrt(frac)
	}
	return seek + rot + s.TransferTime
}

// Mean implements ServiceModel with the standard uniform-position
// approximation (expected seek over one third of the stroke).
func (s *SeekRotational) Mean(op OpKind) float64 {
	if op == LogWrite || op == ForceWrite {
		return s.RevolutionTime/2 + s.TransferTime
	}
	seek := s.MinSeek + (s.MaxSeek-s.MinSeek)*math.Sqrt(1.0/3.0)
	return seek + s.RevolutionTime/2 + s.TransferTime
}

// Device is one disk: a single-server FCFS queue plus a service model and
// an operation mix breakdown for reporting.
type Device struct {
	name    string
	station *sim.Resource
	model   ServiceModel
	r       *rng.Rand

	// slow > 1 stretches every service time by that factor — a gray failure
	// (degraded controller, failing media retries). Values <= 1 leave the
	// drawn times bit-exact, so an unset factor changes nothing.
	slow float64

	reads, writes, logs int64
}

// New creates a device attached to env.
func New(env *sim.Env, name string, model ServiceModel, r *rng.Rand) *Device {
	return &Device{
		name:    name,
		station: sim.NewResource(env, name, 1),
		model:   model,
		r:       r,
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Station exposes the underlying queueing station for statistics.
func (d *Device) Station() *sim.Resource { return d.station }

// Model returns the device's service model.
func (d *Device) Model() ServiceModel { return d.model }

// SetSlowdown sets the gray-failure service-time multiplier; factors <= 1
// restore full speed.
func (d *Device) SetSlowdown(f float64) { d.slow = f }

// Do performs one disk operation: queue FCFS, hold for the drawn service
// time, release. The queue wait is interruptible.
func (d *Device) Do(p *sim.Proc, op OpKind, block int) error {
	t := d.model.Time(d.r, op, block)
	if d.slow > 1 {
		t *= d.slow
	}
	if err := d.station.Use(p, t); err != nil {
		return err
	}
	switch op {
	case Read:
		d.reads++
	case Write:
		d.writes++
	default:
		d.logs++
	}
	return nil
}

// Counts returns the number of completed reads, writes, and log writes.
func (d *Device) Counts() (reads, writes, logs int64) {
	return d.reads, d.writes, d.logs
}

// IORate returns completed operations per unit time at time t.
func (d *Device) IORate(t float64) float64 { return d.station.Throughput(t) }

// Utilization returns the busy fraction at time t.
func (d *Device) Utilization(t float64) float64 { return d.station.Utilization(t) }

// ResetStats truncates the statistics window at time t.
func (d *Device) ResetStats(t float64) {
	d.station.ResetStats(t)
	d.reads, d.writes, d.logs = 0, 0, 0
}

// Profiles for the two database disks used in the paper's experiments.
// Table 2 folds all positioning into one mean per block I/O: a read costs
// 28 ms on Node A (DEC RM05) and 40 ms on Node B (DEC RP06). Writes cost the
// same as reads at the device level — the 84/120 ms update figures in Table 2
// are three I/Os (read + journal write + in-place write), which the testbed
// issues as three separate operations.

// ProfileRM05 returns Node A's database-disk service model.
func ProfileRM05() ServiceModel {
	return Fixed{ReadTime: 28, WriteTime: 28, LogTime: 28}
}

// ProfileRP06 returns Node B's database-disk service model.
func ProfileRP06() ServiceModel {
	return Fixed{ReadTime: 40, WriteTime: 40, LogTime: 40}
}
