// Package workload defines the paper's synthetic transaction workloads
// (Section 2) — LB8, MB4, MB8 and UB6 — as a single description that
// translates both into a testbed simulator configuration (the
// "measurement" side) and into an analytical model input (the "modeling"
// side), guaranteeing the two are parameterized identically.
package workload

import (
	"fmt"

	"carat/internal/comm"
	"carat/internal/core"
	"carat/internal/disk"
	"carat/internal/repl"
	"carat/internal/storage"
	"carat/internal/testbed"
)

// Workload is a complete experiment description.
type Workload struct {
	Name     string
	NumNodes int
	Users    []testbed.UserSpec

	// RequestsPerTxn is the paper's transaction size n (swept 4..20);
	// RecordsPerRequest is fixed at 4 in the paper's experiments.
	RequestsPerTxn    int
	RecordsPerRequest int
	// RemoteFrac splits a distributed transaction's requests between the
	// home and slave sites (0.5: l = r = n/2).
	RemoteFrac float64

	Layout storage.Layout
	Params testbed.Params

	// DBDisks and LogDisks give per-node device models; a nil LogDisks
	// entry shares the database disk (the paper's forced configuration).
	DBDisks  []disk.ServiceModel
	LogDisks []disk.ServiceModel

	// CPUs is the processor count per node (default 1; 2 models the
	// dual-processor VAX 11/782).
	CPUs int
	// DiskStripes spreads each site's database over this many identical
	// devices (default 1, the paper's single shared disk).
	DiskStripes int

	// DetailedDisks replaces the fixed per-block service times with
	// positional seek+rotation disk models calibrated to the same means
	// (28 ms RM05, 40 ms RP06). The analytical model keeps using the
	// means — by BCMP theory the product-form solution depends on service
	// distributions only through their means for FCFS-exponential
	// stations, and this knob measures how far that robustness stretches
	// in practice.
	DetailedDisks bool

	// Pattern selects records within a site; nil means the paper's
	// uniform access. A skewed pattern only affects the simulator — the
	// analytical model retains its uniform-access assumption.
	Pattern storage.Pattern

	// BufferHitRatio and Alpha extend beyond the paper (both zero there).
	BufferHitRatio float64
	Alpha          float64
	// EthernetAlpha replaces the fixed Alpha with the Almes–Lazowska
	// Ethernet model of Section 3: the simulator estimates channel load
	// from bytes on the wire, and the analytical model closes the loop by
	// feeding its own message rate back into the network model each
	// iteration (the two-level structure the paper describes).
	EthernetAlpha bool

	// Concurrency selects the simulator's concurrency control protocol.
	// The analytical model covers only CC2PL (the paper's scheme); Model
	// returns an error for anything else.
	Concurrency testbed.CCProtocol

	// DeadlockAdjust calibrates the model's two-cycle deadlock
	// approximation (Section 5.4.3 allows a measured adjusting factor).
	DeadlockAdjust float64

	// ModelTMSerialization enables the optional TM-serialization
	// correction in the analytical model (the paper ignores it and points
	// at [JACO83]; see core.Model.IncludeTMSerialization).
	ModelTMSerialization bool

	// Faults optionally injects site crashes, message faults and protocol
	// timeouts into simulator runs (the analytical model ignores it). A nil
	// or zero plan leaves the simulation unchanged.
	Faults *testbed.FaultPlan

	// Resilience configures the simulator's retry, admission-control and
	// probe-retransmission policies (the analytical model ignores it). The
	// zero value leaves the simulation unchanged.
	Resilience testbed.Resilience

	// Replication configures replicated granules in the simulator (the
	// analytical model ignores it — the paper's system is single-copy, and
	// replication is a testbed extension). The zero value (or Factor 1)
	// leaves the simulation unchanged.
	Replication repl.Policy

	// Open switches simulator runs to open arrivals (see
	// testbed.OpenConfig): transactions arrive at rate λ from an unbounded
	// population instead of the paper's closed terminal loops. The closed
	// Users still parameterize the analytical model — which is how the
	// capacity sweep compares measured open capacity against the closed
	// model's bottleneck bound. Nil leaves the simulation unchanged.
	Open *testbed.OpenConfig

	// Placement activates the data-directory placement subsystem in the
	// simulator (see testbed.PlacementConfig): distributed transactions
	// resolve their executing sites through a placement.Directory over the
	// fleet's granule space instead of the per-user Remote wiring. The
	// analytical model ignores it. Nil leaves the simulation unchanged.
	Placement *testbed.PlacementConfig

	// FabricHosts, when positive, routes inter-site messages through a
	// shared Ethernet fabric with this many contending hosts (see
	// comm.Ethernet.Hosts): delay grows with the fleet's offered network
	// load, and the wire's utilization, inflation and queueing delay are
	// reported in Results. Zero keeps the Alpha/EthernetAlpha behavior.
	FabricHosts int

	// FabricBandwidthBitsPerMS overrides the fabric's raw bandwidth when
	// FabricHosts is positive (zero keeps comm.DefaultEthernet's 10 Mb/s).
	// The scale-out study uses the original 2.94 Mb/s experimental
	// Ethernet rate so the shared medium can genuinely bind before the
	// paper's CPU costs do.
	FabricBandwidthBitsPerMS float64

	// DMServers overrides the per-site DM process-pool size (zero keeps
	// the testbed's 16). A distributed submission holds one slot at its
	// home and at every participating remote for its whole lifetime, and
	// the pool has no deadlock detection: the two-site experiments are
	// gridlock-proof by arithmetic (2 sites × MPL ≤ 8 ≤ 16 slots), but an
	// N-site fleet must provision at least sites × MPL slots per site or
	// cross-site hold-and-wait cycles freeze the whole system.
	DMServers int
}

// twoNode fills the standard two-node configuration of the experiments:
// Node A with the RM05 database disk, Node B with the RP06.
func twoNode(name string, users []testbed.UserSpec, n int) Workload {
	return Workload{
		Name:              name,
		NumNodes:          2,
		Users:             users,
		RequestsPerTxn:    n,
		RecordsPerRequest: 4,
		RemoteFrac:        0.5,
		Layout:            storage.DefaultLayout(),
		Params:            testbed.DefaultParams(2),
		DBDisks:           []disk.ServiceModel{disk.ProfileRM05(), disk.ProfileRP06()},
		LogDisks:          []disk.ServiceModel{nil, nil},
	}
}

// LB8 is the local-only workload: at each node, four users run local
// read-only transactions and four run local update transactions.
func LB8(n int) Workload {
	var users []testbed.UserSpec
	for node := 0; node < 2; node++ {
		for i := 0; i < 4; i++ {
			users = append(users,
				testbed.UserSpec{Kind: testbed.LRO, Home: testbed.NodeID(node)},
				testbed.UserSpec{Kind: testbed.LU, Home: testbed.NodeID(node)},
			)
		}
	}
	return twoNode("LB8", users, n)
}

// MB4 is the distributed mix: at each node, exactly one user of each of
// the four transaction types.
func MB4(n int) Workload {
	var users []testbed.UserSpec
	for node := 0; node < 2; node++ {
		other := testbed.NodeID(1 - node)
		users = append(users,
			testbed.UserSpec{Kind: testbed.LRO, Home: testbed.NodeID(node)},
			testbed.UserSpec{Kind: testbed.LU, Home: testbed.NodeID(node)},
			testbed.UserSpec{Kind: testbed.DRO, Home: testbed.NodeID(node), Remote: other},
			testbed.UserSpec{Kind: testbed.DU, Home: testbed.NodeID(node), Remote: other},
		)
	}
	return twoNode("MB4", users, n)
}

// MB8 is MB4 doubled: two users of each type at each node.
func MB8(n int) Workload {
	var users []testbed.UserSpec
	for node := 0; node < 2; node++ {
		other := testbed.NodeID(1 - node)
		for i := 0; i < 2; i++ {
			users = append(users,
				testbed.UserSpec{Kind: testbed.LRO, Home: testbed.NodeID(node)},
				testbed.UserSpec{Kind: testbed.LU, Home: testbed.NodeID(node)},
				testbed.UserSpec{Kind: testbed.DRO, Home: testbed.NodeID(node), Remote: other},
				testbed.UserSpec{Kind: testbed.DU, Home: testbed.NodeID(node), Remote: other},
			)
		}
	}
	return twoNode("MB8", users, n)
}

// UB6 is the local-intensive distributed workload: at each node, two LRO
// users, two LU users, one DRO user and one DU user.
func UB6(n int) Workload {
	var users []testbed.UserSpec
	for node := 0; node < 2; node++ {
		other := testbed.NodeID(1 - node)
		users = append(users,
			testbed.UserSpec{Kind: testbed.LRO, Home: testbed.NodeID(node)},
			testbed.UserSpec{Kind: testbed.LRO, Home: testbed.NodeID(node)},
			testbed.UserSpec{Kind: testbed.LU, Home: testbed.NodeID(node)},
			testbed.UserSpec{Kind: testbed.LU, Home: testbed.NodeID(node)},
			testbed.UserSpec{Kind: testbed.DRO, Home: testbed.NodeID(node), Remote: other},
			testbed.UserSpec{Kind: testbed.DU, Home: testbed.NodeID(node), Remote: other},
		)
	}
	return twoNode("UB6", users, n)
}

// ByName returns the named standard workload at transaction size n.
func ByName(name string, n int) (Workload, error) {
	switch name {
	case "LB8", "lb8":
		return LB8(n), nil
	case "MB4", "mb4":
		return MB4(n), nil
	case "MB8", "mb8":
		return MB8(n), nil
	case "UB6", "ub6":
		return UB6(n), nil
	default:
		return Workload{}, fmt.Errorf("workload: unknown workload %q (want LB8, MB4, MB8 or UB6)", name)
	}
}

// remoteRequests returns r(t) for the workload's transaction size,
// matching the testbed's request scheduler exactly.
func (w Workload) remoteRequests() int {
	r := int(w.RemoteFrac*float64(w.RequestsPerTxn) + 0.5)
	if r > w.RequestsPerTxn {
		r = w.RequestsPerTxn
	}
	return r
}

// TestbedConfig builds the simulator configuration for this workload.
func (w Workload) TestbedConfig(seed uint64, warmup, duration float64) testbed.Config {
	nodes := make([]testbed.NodeConfig, w.NumNodes)
	for i := range nodes {
		db := w.DBDisks[i]
		if w.DetailedDisks {
			// Fresh positional models per configuration: they carry head
			// state, so sharing one across devices or runs would break
			// reproducibility.
			db = detailedModelFor(w.DBDisks[i])
		}
		dm := w.DMServers
		if dm <= 0 {
			dm = 16
		}
		nodes[i] = testbed.NodeConfig{DBDisk: db, DMServers: dm, DBDiskStripes: w.DiskStripes, CPUs: w.CPUs}
		if w.LogDisks != nil && w.LogDisks[i] != nil {
			nodes[i].LogDisk = w.LogDisks[i]
		}
	}
	var network comm.DelayModel
	if w.Alpha > 0 {
		network = comm.FixedDelay{D: w.Alpha}
	}
	if w.EthernetAlpha {
		network = comm.DefaultEthernet()
	}
	if w.FabricHosts > 0 {
		eth := comm.DefaultEthernet()
		eth.Hosts = w.FabricHosts
		if w.FabricBandwidthBitsPerMS > 0 {
			eth.BandwidthBitsPerMS = w.FabricBandwidthBitsPerMS
		}
		network = eth
	}
	var faults *testbed.FaultPlan
	if w.Faults != nil {
		// Each run gets its own copy: validation fills defaults in place,
		// and parallel replications must not share a mutable plan.
		fp := *w.Faults
		faults = &fp
	}
	var pl *testbed.PlacementConfig
	if w.Placement != nil {
		// Copied like Faults: validation fills the anchor-pattern default
		// in place, and parallel sweep cells must not share it.
		pc := *w.Placement
		pl = &pc
	}
	var open *testbed.OpenConfig
	if w.Open != nil {
		// Deep-copied for the same reason as Faults: validation fills the
		// default class mix in place.
		oc := *w.Open
		oc.PerSiteRatePerSec = append([]float64(nil), w.Open.PerSiteRatePerSec...)
		oc.Ramp = append([]testbed.OpenRampPoint(nil), w.Open.Ramp...)
		oc.Classes = append([]testbed.OpenClass(nil), w.Open.Classes...)
		open = &oc
	}
	return testbed.Config{
		Nodes:             nodes,
		Users:             w.Users,
		Faults:            faults,
		Open:              open,
		Placement:         pl,
		Resilience:        w.Resilience,
		Replication:       w.Replication,
		Params:            w.Params,
		Network:           network,
		Layout:            w.Layout,
		RequestsPerTxn:    w.RequestsPerTxn,
		RecordsPerRequest: w.RecordsPerRequest,
		RemoteFrac:        w.RemoteFrac,
		Pattern:           w.Pattern,
		Concurrency:       w.Concurrency,
		BufferHitRatio:    w.BufferHitRatio,
		Seed:              seed,
		Warmup:            warmup,
		Duration:          duration,
	}
}

// detailedModelFor returns a seek+rotation disk model calibrated to the
// same mean block time as the given flat profile: mean = expected seek
// (one third of the stroke) + half a revolution + transfer.
func detailedModelFor(flat disk.ServiceModel) disk.ServiceModel {
	mean := flat.Mean(disk.Read)
	const (
		rev      = 16.7 // 3600 rpm
		transfer = 0.4
		minSeek  = 6.0
	)
	wantSeek := mean - rev/2 - transfer
	maxSeek := minSeek
	if wantSeek > minSeek {
		// E[seek] = min + (max-min)*sqrt(1/3) under uniform positions.
		maxSeek = minSeek + (wantSeek-minSeek)/0.5773502691896258
	}
	return &disk.SeekRotational{
		Cylinders:      823,
		BlocksPerCyl:   4, // 3000+ blocks spread over the stroke
		MinSeek:        minSeek,
		MaxSeek:        maxSeek,
		RevolutionTime: rev,
		TransferTime:   transfer,
	}
}

// coreType maps a testbed transaction kind to its coordinator-side model
// chain type.
func coreType(k testbed.TxnKind) core.Type {
	switch k {
	case testbed.LRO:
		return core.LRO
	case testbed.LU:
		return core.LU
	case testbed.DRO:
		return core.DROC
	default:
		return core.DUC
	}
}

// Model builds the analytical model input for this workload, using exactly
// the parameters the simulator uses.
func (w Workload) Model() (*core.Model, error) {
	if w.Concurrency != testbed.CC2PL {
		return nil, fmt.Errorf("workload: the analytical model covers only 2PL with deadlock detection, not %v", w.Concurrency)
	}
	m := &core.Model{
		Sites:                  make([]*core.Site, w.NumNodes),
		Alpha:                  w.Alpha,
		DeadlockAdjust:         w.DeadlockAdjust,
		InflateCW:              true,
		IncludeTMSerialization: w.ModelTMSerialization,
	}
	if w.EthernetAlpha {
		// The average protocol message, weighing small control messages
		// against one response set per request.
		const avgMsgBytes = 256
		eth := comm.DefaultEthernet()
		m.AlphaModel = func(msgsPerMS float64) float64 {
			util := msgsPerMS * avgMsgBytes * 8 / eth.BandwidthBitsPerMS
			if util > 0.95 {
				util = 0.95
			}
			return eth.MeanDelay(avgMsgBytes, util)
		}
	}
	for i := range m.Sites {
		logTime := w.DBDisks[i].Mean(disk.ForceWrite)
		sep := false
		if w.LogDisks != nil && w.LogDisks[i] != nil {
			logTime = w.LogDisks[i].Mean(disk.ForceWrite)
			sep = true
		}
		m.Sites[i] = &core.Site{
			Granules:          w.Layout.Granules,
			RecordsPerGranule: w.Layout.RecordsPerGran,
			DiskTime:          w.DBDisks[i].Mean(disk.Read),
			LogDiskTime:       logTime,
			SeparateLog:       sep,
			CPUs:              w.CPUs,
			DiskStripes:       w.DiskStripes,
			BufferHitRatio:    w.BufferHitRatio,
			Chains:            make(map[core.Type]*core.Chain),
		}
	}

	n := w.RequestsPerTxn
	r := w.remoteRequests()
	l := n - r

	var chainErr error
	addChain := func(site int, ty core.Type, kind testbed.TxnKind, local, remote int, slaveSites []int, coordSite int) *core.Chain {
		ch := m.Sites[site].Chains[ty]
		if ch != nil && (ch.Local != local || ch.Remote != remote) {
			// The model aggregates same-type transactions at a site into
			// one chain, so their request splits must agree.
			chainErr = fmt.Errorf("workload: site %d chain %v: users disagree on request split (%d/%d vs %d/%d)",
				site, ty, ch.Local, ch.Remote, local, remote)
			return ch
		}
		if ch == nil {
			costs := w.Params.CostsFor(testbed.NodeID(site), kind)
			commitOps := costs.CommitIOs
			if ty.Slave() {
				commitOps = w.Params.SlaveCommitIOs[kind]
			}
			ch = &core.Chain{
				Type:              ty,
				Local:             local,
				Remote:            remote,
				RecordsPerRequest: w.RecordsPerRequest,
				UCPU:              costs.UCPU,
				TMCPU:             costs.TMCPU,
				DMCPU:             costs.DMCPU,
				LRCPU:             costs.LRCPU,
				DMIOCPU:           costs.DMIOCPU,
				InitCPU:           costs.InitCPU,
				CommitCPU:         costs.CommitCPU,
				AbortCPU:          costs.AbortCPU,
				UnlockCPU:         costs.UnlockCPU,
				DMIOOps:           costs.DMIOCount,
				CommitOps:         commitOps,
				ThinkTime:         costs.ThinkTime,
				SlaveSites:        slaveSites,
				CoordSite:         coordSite,
			}
			if ty.Slave() {
				ch.InitCPU = 0 // slaves have no INIT or U phases
				ch.UCPU = 0
			}
			m.Sites[site].Chains[ty] = ch
		}
		ch.Population++
		return ch
	}

	for _, u := range w.Users {
		home := int(u.Home)
		ty := coreType(u.Kind)
		if !u.Kind.Distributed() {
			addChain(home, ty, u.Kind, n, 0, nil, 0)
			continue
		}
		remotes := u.RemoteSites()
		split := testbed.RemoteSplit(r, len(remotes))
		// Slave sites that receive no requests at this transaction size
		// are dropped from the chain topology.
		var slaveSites []int
		for i, rs := range remotes {
			if split[i] > 0 {
				slaveSites = append(slaveSites, int(rs))
			}
		}
		addChain(home, ty, u.Kind, l, r, slaveSites, 0)
		for i, rs := range remotes {
			if split[i] == 0 {
				continue
			}
			addChain(int(rs), ty.Counterpart(), u.Kind, split[i], 0, nil, home)
		}
	}
	if chainErr != nil {
		return nil, chainErr
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
