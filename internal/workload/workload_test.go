package workload

import (
	"testing"

	"carat/internal/core"
	"carat/internal/testbed"
)

func countKind(us []testbed.UserSpec, k testbed.TxnKind, home testbed.NodeID) int {
	n := 0
	for _, u := range us {
		if u.Kind == k && u.Home == home {
			n++
		}
	}
	return n
}

func TestWorkloadCompositions(t *testing.T) {
	cases := []struct {
		wl      Workload
		perNode map[testbed.TxnKind]int
		total   int
	}{
		{LB8(8), map[testbed.TxnKind]int{testbed.LRO: 4, testbed.LU: 4, testbed.DRO: 0, testbed.DU: 0}, 16},
		{MB4(8), map[testbed.TxnKind]int{testbed.LRO: 1, testbed.LU: 1, testbed.DRO: 1, testbed.DU: 1}, 8},
		{MB8(8), map[testbed.TxnKind]int{testbed.LRO: 2, testbed.LU: 2, testbed.DRO: 2, testbed.DU: 2}, 16},
		{UB6(8), map[testbed.TxnKind]int{testbed.LRO: 2, testbed.LU: 2, testbed.DRO: 1, testbed.DU: 1}, 12},
	}
	for _, tc := range cases {
		if len(tc.wl.Users) != tc.total {
			t.Errorf("%s: %d users, want %d", tc.wl.Name, len(tc.wl.Users), tc.total)
		}
		for node := testbed.NodeID(0); node < 2; node++ {
			for k, want := range tc.perNode {
				if got := countKind(tc.wl.Users, k, node); got != want {
					t.Errorf("%s node %d: %d %v users, want %d", tc.wl.Name, node, got, k, want)
				}
			}
		}
	}
}

func TestDistributedUsersPointAcross(t *testing.T) {
	for _, u := range MB8(4).Users {
		if u.Kind.Distributed() && u.Remote == u.Home {
			t.Fatalf("user %+v points at itself", u)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"LB8", "MB4", "MB8", "UB6", "lb8"} {
		wl, err := ByName(name, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if wl.RequestsPerTxn != 8 {
			t.Fatalf("%s: n=%d", name, wl.RequestsPerTxn)
		}
	}
	if _, err := ByName("NOPE", 8); err == nil {
		t.Fatal("unknown workload must fail")
	}
}

func TestTestbedConfigValidates(t *testing.T) {
	for _, name := range []string{"LB8", "MB4", "MB8", "UB6"} {
		wl, _ := ByName(name, 8)
		cfg := wl.TestbedConfig(1, 1000, 10_000)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestModelChainsMB4(t *testing.T) {
	wl := MB4(8)
	m, err := wl.Model()
	if err != nil {
		t.Fatal(err)
	}
	for i, site := range m.Sites {
		// One of each local chain, one coordinator of each distributed
		// kind, one slave of each distributed kind (from the other node).
		for _, ty := range core.Types() {
			c := site.Chains[ty]
			if c == nil {
				t.Fatalf("site %d missing %v", i, ty)
			}
			if c.Population != 1 {
				t.Fatalf("site %d %v population %d, want 1", i, ty, c.Population)
			}
		}
		// l = r = 4 at n = 8 with RemoteFrac 0.5.
		if c := site.Chains[core.DUC]; c.Local != 4 || c.Remote != 4 {
			t.Fatalf("site %d DUC l=%d r=%d, want 4/4", i, c.Local, c.Remote)
		}
		if c := site.Chains[core.DUS]; c.Local != 4 || c.Remote != 0 {
			t.Fatalf("site %d DUS l=%d r=%d, want 4/0", i, c.Local, c.Remote)
		}
		// Slaves have no INIT or U phase costs.
		if c := site.Chains[core.DROS]; c.InitCPU != 0 || c.UCPU != 0 {
			t.Fatalf("site %d DROS has INIT/U costs", i)
		}
		// Read-only slaves write no prepare record; update slaves force one.
		if c := site.Chains[core.DROS]; c.CommitOps != 0 {
			t.Fatalf("DROS CommitOps = %d, want 0", c.CommitOps)
		}
		if c := site.Chains[core.DUS]; c.CommitOps != 1 {
			t.Fatalf("DUS CommitOps = %d, want 1", c.CommitOps)
		}
	}
	// Disk speeds differ by node (RM05 vs RP06).
	if m.Sites[0].DiskTime != 28 || m.Sites[1].DiskTime != 40 {
		t.Fatalf("disk times = %v/%v, want 28/40", m.Sites[0].DiskTime, m.Sites[1].DiskTime)
	}
}

func TestModelRemoteSplitMatchesTestbed(t *testing.T) {
	// The model's l/r split must match the testbed's request scheduler for
	// every n, including odd ones.
	for n := 1; n <= 21; n++ {
		wl := MB4(n)
		m, err := wl.Model()
		if err != nil {
			t.Fatal(err)
		}
		c := m.Sites[0].Chains[core.DUC]
		wantR := int(0.5*float64(n) + 0.5)
		if c.Remote != wantR || c.Local != n-wantR {
			t.Fatalf("n=%d: model l=%d r=%d, want %d/%d", n, c.Local, c.Remote, n-wantR, wantR)
		}
	}
}

func TestLB8ModelHasOnlyLocalChains(t *testing.T) {
	m, err := LB8(8).Model()
	if err != nil {
		t.Fatal(err)
	}
	for i, site := range m.Sites {
		if len(site.Chains) != 2 {
			t.Fatalf("site %d has %d chains, want 2 (LRO, LU)", i, len(site.Chains))
		}
		if site.Chains[core.LRO].Population != 4 || site.Chains[core.LU].Population != 4 {
			t.Fatalf("site %d populations wrong", i)
		}
	}
}

func TestInconsistentSlaveSplitsRejected(t *testing.T) {
	// Two DU users homed at node 0: one with a single slave, one spreading
	// over two slaves. Their DUS chains at node 1 would need different
	// request counts — the model must refuse the aggregation.
	wl := MB4(8)
	wl.NumNodes = 3
	wl.DBDisks = append(wl.DBDisks, wl.DBDisks[1])
	wl.LogDisks = append(wl.LogDisks, nil)
	wl.Params = testbed.DefaultParams(3)
	wl.Users = []testbed.UserSpec{
		{Kind: testbed.DU, Home: 0, Remote: 1},
		{Kind: testbed.DU, Home: 0, Remotes: []testbed.NodeID{1, 2}},
	}
	if _, err := wl.Model(); err == nil {
		t.Fatal("conflicting slave splits must be rejected")
	}
	// The simulator has no such restriction: per-user splits are fine.
	cfg := wl.TestbedConfig(1, 1000, 50_000)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("testbed should accept heterogeneous users: %v", err)
	}
}

func TestThreeNodeModel(t *testing.T) {
	wl := MB4(8)
	wl.NumNodes = 3
	wl.DBDisks = append(wl.DBDisks, wl.DBDisks[1])
	wl.LogDisks = append(wl.LogDisks, nil)
	wl.Params = testbed.DefaultParams(3)
	var users []testbed.UserSpec
	for home := testbed.NodeID(0); home < 3; home++ {
		others := []testbed.NodeID{}
		for j := testbed.NodeID(0); j < 3; j++ {
			if j != home {
				others = append(others, j)
			}
		}
		users = append(users,
			testbed.UserSpec{Kind: testbed.LU, Home: home},
			testbed.UserSpec{Kind: testbed.DU, Home: home, Remotes: others},
		)
	}
	wl.Users = users
	m, err := wl.Model()
	if err != nil {
		t.Fatal(err)
	}
	// Each site hosts one DUC (two slave sites) and two DUS chains (one
	// per other node's coordinator)... the aggregation gives a DUS chain
	// with population 2 at each site.
	for i, site := range m.Sites {
		duc := site.Chains[core.DUC]
		if duc == nil || len(duc.SlaveSites) != 2 {
			t.Fatalf("site %d DUC slave sites: %+v", i, duc)
		}
		dus := site.Chains[core.DUS]
		if dus == nil || dus.Population != 2 {
			t.Fatalf("site %d DUS population: %+v", i, dus)
		}
		// r=4 split over 2 sites -> 2 requests per slave chain.
		if dus.Local != 2 {
			t.Fatalf("site %d DUS local = %d, want 2", i, dus.Local)
		}
	}
}

func TestTable2DefaultsFlowThrough(t *testing.T) {
	// Table 2 values must reach the model chains unchanged.
	m, err := MB4(8).Model()
	if err != nil {
		t.Fatal(err)
	}
	lro := m.Sites[0].Chains[core.LRO]
	if lro.UCPU != 7.8 || lro.TMCPU != 8.0 || lro.DMCPU != 5.4 || lro.LRCPU != 2.2 || lro.DMIOCPU != 1.5 {
		t.Fatalf("LRO costs = %+v", lro)
	}
	duc := m.Sites[0].Chains[core.DUC]
	if duc.TMCPU != 12.0 || duc.DMCPU != 8.6 || duc.DMIOCPU != 2.5 || duc.DMIOOps != 3 {
		t.Fatalf("DUC costs = %+v", duc)
	}
}
