package sim

// Queue is an unbounded FIFO mailbox carrying values of type T between
// processes. Put never blocks; Get blocks (interruptibly) until an item is
// available. Items are delivered to waiting processes in FCFS order.
type Queue[T any] struct {
	env     *Env
	name    string
	items   []T
	waiters []*queueWaiter[T]
}

type queueWaiter[T any] struct {
	p       *Proc
	removed bool
	item    T
	filled  bool
}

// NewQueue creates an empty queue.
func NewQueue[T any](env *Env, name string) *Queue[T] {
	return &Queue[T]{env: env, name: name}
}

// Name returns the queue name.
func (q *Queue[T]) Name() string { return q.name }

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Waiting returns the number of processes blocked in Get.
func (q *Queue[T]) Waiting() int {
	n := 0
	for _, w := range q.waiters {
		if !w.removed {
			n++
		}
	}
	return n
}

// Put appends an item. If a process is waiting, the item is handed to the
// longest-waiting one; otherwise it is buffered. Put may be called from
// process or event context and never blocks.
func (q *Queue[T]) Put(v T) {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.removed {
			continue
		}
		w.item = v
		w.filled = true
		w.p.cancel = nil
		q.env.wake(w.p, nil)
		return
	}
	q.items = append(q.items, v)
}

// Get removes and returns the head item, blocking interruptibly while the
// queue is empty. On interrupt it returns the zero value and the interrupt
// error.
func (q *Queue[T]) Get(p *Proc) (T, error) {
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		return v, nil
	}
	w := &queueWaiter[T]{p: p}
	q.waiters = append(q.waiters, w)
	p.cancel = func() { w.removed = true }
	if err := p.park(); err != nil {
		var zero T
		return zero, err
	}
	return w.item, nil
}

// TryGet removes and returns the head item without blocking. The boolean
// reports whether an item was available.
func (q *Queue[T]) TryGet() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}
