package sim

// Queue is an unbounded FIFO mailbox carrying values of type T between
// processes. Put never blocks; Get blocks (interruptibly) until an item is
// available. Items are delivered to waiting processes in FCFS order.
type Queue[T any] struct {
	env  *Env
	name string
	// items[iHead:] is the buffer and waiters[wHead:] the wait queue.
	// Dequeues advance the head index and each backing array is reused
	// once its queue empties, so steady-state traffic does not grow them.
	items   []T
	iHead   int
	waiters []*queueWaiter[T]
	wHead   int
	pool    []*queueWaiter[T] // free waiter records; steady state allocates none
}

type queueWaiter[T any] struct {
	p       *Proc
	removed bool
	item    T
	filled  bool
}

// detach implements the interrupt hook: the waiter becomes a tombstone that
// Put skips (and reclaims) when it reaches it.
func (w *queueWaiter[T]) detach() { w.removed = true }

func (q *Queue[T]) newWaiter(p *Proc) *queueWaiter[T] {
	var w *queueWaiter[T]
	if k := len(q.pool); k > 0 {
		w = q.pool[k-1]
		q.pool[k-1] = nil
		q.pool = q.pool[:k-1]
	} else {
		w = &queueWaiter[T]{}
	}
	w.p = p
	return w
}

// freeWaiter recycles w, zeroing it so the pool never pins a carried item.
func (q *Queue[T]) freeWaiter(w *queueWaiter[T]) {
	*w = queueWaiter[T]{}
	q.pool = append(q.pool, w)
}

// NewQueue creates an empty queue.
func NewQueue[T any](env *Env, name string) *Queue[T] {
	return &Queue[T]{env: env, name: name}
}

// Name returns the queue name.
func (q *Queue[T]) Name() string { return q.name }

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) - q.iHead }

// Waiting returns the number of processes blocked in Get.
func (q *Queue[T]) Waiting() int {
	n := 0
	for _, w := range q.waiters[q.wHead:] {
		if !w.removed {
			n++
		}
	}
	return n
}

// popItem removes the buffer head, resetting the backing array for reuse
// when the buffer empties. The vacated slot is zeroed so the buffer never
// pins a delivered item.
func (q *Queue[T]) popItem() T {
	v := q.items[q.iHead]
	var zero T
	q.items[q.iHead] = zero
	q.iHead++
	if q.iHead == len(q.items) {
		q.items = q.items[:0]
		q.iHead = 0
	}
	return v
}

// popWaiter removes the wait-queue head, resetting the backing array for
// reuse when the queue empties.
func (q *Queue[T]) popWaiter() *queueWaiter[T] {
	w := q.waiters[q.wHead]
	q.waiters[q.wHead] = nil
	q.wHead++
	if q.wHead == len(q.waiters) {
		q.waiters = q.waiters[:0]
		q.wHead = 0
	}
	return w
}

// Put appends an item. If a process is waiting, the item is handed to the
// longest-waiting one; otherwise it is buffered. Put may be called from
// process or event context and never blocks.
func (q *Queue[T]) Put(v T) {
	for q.wHead < len(q.waiters) {
		w := q.popWaiter()
		if w.removed {
			q.freeWaiter(w)
			continue
		}
		w.item = v
		w.filled = true
		w.p.waiter = nil
		q.env.wake(w.p, nil)
		return
	}
	q.items = append(q.items, v)
}

// Get removes and returns the head item, blocking interruptibly while the
// queue is empty. On interrupt it returns the zero value and the interrupt
// error.
func (q *Queue[T]) Get(p *Proc) (T, error) {
	if q.iHead < len(q.items) {
		return q.popItem(), nil
	}
	w := q.newWaiter(p)
	q.waiters = append(q.waiters, w)
	p.waiter = w
	if err := p.park(); err != nil {
		var zero T
		return zero, err
	}
	v := w.item
	q.freeWaiter(w)
	return v, nil
}

// TryGet removes and returns the head item without blocking. The boolean
// reports whether an item was available.
func (q *Queue[T]) TryGet() (T, bool) {
	if q.iHead == len(q.items) {
		var zero T
		return zero, false
	}
	return q.popItem(), true
}
