package sim

import (
	"math"
	"slices"
)

// Event kinds. A kernel event either resumes a process continuation or runs
// a bare callback; start events create the process coroutine first.
const (
	evCall uint8 = iota
	evStart
	evResume
)

// event is one scheduled kernel action. Events are pooled: the scheduler
// owns a free-list and steady-state scheduling performs no allocation.
// Events at equal times fire in schedule (seq) order.
type event struct {
	t        float64
	seq      int64
	kind     uint8
	canceled bool
	proc     *Proc  // evStart, evResume
	err      error  // evResume
	fn       func() // evCall
}

// eventBefore is the total dispatch order: time, then schedule order.
func eventBefore(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// calQueue is an indexed calendar queue (Brown, CACM 1988) with a direct
// sorted lane for small populations.
//
// Bucketed mode is the classical calendar: a ring of time-width buckets,
// each holding its pending events sorted by (t, seq); dequeue scans forward
// from the last popped time, one bucket-width "day" at a time, wrapping
// years. Both operations are O(1) amortized for the large, smoothly
// distributed populations an open-arrival run can build up, against
// O(log n) for the binary heap this queue replaced.
//
// Most of the time, though, the pending population is tiny: same-time
// wakeups ride the environment's now-queue and holds mostly fuse, leaving
// only the in-flight service-time expiries here — a handful of events. For
// that regime the queue keeps a single sorted slice ("linear mode"): push
// is a short back-scan insert, peek reads the head, pop advances a head
// index. The queue switches to buckets above calLinearMax events and drops
// back below calLinearReenter (hysteresis, so a hovering population does
// not thrash between modes).
//
// Both modes preserve the exact (t, seq) total order of the heap they
// replaced — same-time events cannot straddle buckets and every bucket is
// kept sorted — so the dequeue sequence is byte-identical.
type calQueue struct {
	// Linear mode: lin[linHead:] holds the pending events sorted by
	// (t, seq). The backing array is reused once the queue drains.
	lin      []*event
	linHead  int
	bucketed bool

	buckets  [][]*event // nil until the population first outgrows linear mode
	mask     int        // len(buckets)-1; len is a power of two
	width    float64    // bucket time width
	invWidth float64    // 1/width, cached for bucket indexing
	lastT    float64    // dequeue position; never exceeds the minimum pending t
	n        int        // live (non-canceled) events
	phys     int        // physical entries, including canceled ones
	free     []*event

	// One-entry peek cache for bucketed mode: the minimum event and its
	// bucket, invalidated by pop and by any push that precedes it.
	cached       *event
	cachedBucket int
}

const (
	calMinBuckets    = 16
	calLinearMax     = 64 // linear -> bucketed above this population
	calLinearReenter = 16 // bucketed -> linear below this population
)

func (q *calQueue) init() {
	q.width = 1
	q.invWidth = 1
}

// alloc returns a zeroed event from the pool.
func (q *calQueue) alloc() *event {
	if n := len(q.free); n > 0 {
		ev := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return ev
	}
	return &event{}
}

// release returns a dispatched event to the pool, dropping its payload
// references so the pool never pins model objects.
func (q *calQueue) release(ev *event) {
	*ev = event{}
	q.free = append(q.free, ev)
}

func (q *calQueue) empty() bool { return q.n == 0 }

func (q *calQueue) bucketOf(t float64) int {
	return int(t*q.invWidth) & q.mask
}

// push enqueues ev, keeping (t, seq) order. Insertions scan from the back:
// most arrivals land at or near the end, because seq grows monotonically
// and service times cluster.
func (q *calQueue) push(ev *event) {
	q.n++
	q.phys++
	if !q.bucketed {
		b := q.lin
		j := len(b)
		for j > q.linHead && eventBefore(ev, b[j-1]) {
			j--
		}
		b = append(b, nil)
		copy(b[j+1:], b[j:])
		b[j] = ev
		q.lin = b
		if q.n > calLinearMax {
			q.toBucketed()
		}
		return
	}
	i := q.bucketOf(ev.t)
	q.bucketInsert(i, ev)
	if q.cached != nil && eventBefore(ev, q.cached) {
		q.cached, q.cachedBucket = ev, i
	}
	if q.n > 2*len(q.buckets) {
		q.rebuild(2 * len(q.buckets))
	}
}

// bucketInsert places ev into bucket i, keeping the bucket sorted.
func (q *calQueue) bucketInsert(i int, ev *event) {
	b := q.buckets[i]
	j := len(b)
	for j > 0 && eventBefore(ev, b[j-1]) {
		j--
	}
	b = append(b, nil)
	copy(b[j+1:], b[j:])
	b[j] = ev
	q.buckets[i] = b
}

// unschedule cancels a pending event in O(1); the slot is reclaimed when
// the dequeue scan reaches it.
func (q *calQueue) unschedule(ev *event) {
	if ev.canceled {
		return
	}
	ev.canceled = true
	q.n--
	if q.cached == ev {
		q.cached = nil
	}
}

// peek returns the minimum pending live event without removing it, or nil.
// Canceled events encountered on the way are reclaimed.
func (q *calQueue) peek() *event {
	if !q.bucketed {
		for q.linHead < len(q.lin) {
			ev := q.lin[q.linHead]
			if !ev.canceled {
				return ev
			}
			q.lin[q.linHead] = nil
			q.linHead++
			q.phys--
			q.release(ev)
		}
		q.lin = q.lin[:0]
		q.linHead = 0
		return nil
	}
	for {
		ev := q.scan()
		if ev == nil || !ev.canceled {
			return ev
		}
		q.removeHead(q.cachedBucket)
		q.release(ev)
	}
}

// pop removes and returns the minimum pending live event, or nil. The
// caller owns the event and must release it after dispatch.
func (q *calQueue) pop() *event {
	ev := q.peek()
	if ev == nil {
		return nil
	}
	q.n--
	q.phys--
	q.lastT = ev.t
	if !q.bucketed {
		q.lin[q.linHead] = nil
		q.linHead++
		if q.linHead == len(q.lin) {
			q.lin = q.lin[:0]
			q.linHead = 0
		}
		return ev
	}
	b := q.buckets[q.cachedBucket]
	copy(b, b[1:])
	b[len(b)-1] = nil
	q.buckets[q.cachedBucket] = b[:len(b)-1]
	q.cached = nil
	if q.n < calLinearReenter {
		q.toLinear()
	} else if q.n < len(q.buckets)/4 && len(q.buckets) > calMinBuckets {
		q.rebuild(len(q.buckets) / 2)
	}
	return ev
}

// removeHead removes the head of bucket i, shifting in place so bucket
// backing arrays stay warm for reuse. Bucketed mode only.
func (q *calQueue) removeHead(i int) {
	b := q.buckets[i]
	copy(b, b[1:])
	b[len(b)-1] = nil
	q.buckets[i] = b[:len(b)-1]
	q.phys--
	q.cached = nil
}

// scan locates the minimum pending event (live or canceled) and caches it.
// It walks at most one full year of buckets from the last popped time; if
// every pending event lies beyond that year (a sparse far-future queue), it
// falls back to a direct minimum search over the bucket heads.
func (q *calQueue) scan() *event {
	if q.cached != nil {
		return q.cached
	}
	if q.phys == 0 {
		return nil
	}
	nb := len(q.buckets)
	i := q.bucketOf(q.lastT)
	yearTop := (math.Floor(q.lastT*q.invWidth) + 1) * q.width
	for k := 0; k < nb; k++ {
		if b := q.buckets[i]; len(b) > 0 && b[0].t < yearTop {
			q.cached, q.cachedBucket = b[0], i
			return b[0]
		}
		i = (i + 1) & q.mask
		yearTop += q.width
	}
	var best *event
	bi := -1
	for j, b := range q.buckets {
		if len(b) > 0 && (best == nil || eventBefore(b[0], best)) {
			best, bi = b[0], j
		}
	}
	q.cached, q.cachedBucket = best, bi
	return best
}

// collectLive gathers every pending live event (releasing canceled ones)
// from whichever mode is active and clears that mode's storage, keeping
// backing arrays for reuse. Callers must restore n and phys.
func (q *calQueue) collectLive() []*event {
	live := make([]*event, 0, q.n)
	if !q.bucketed {
		for _, ev := range q.lin[q.linHead:] {
			if ev.canceled {
				q.release(ev)
				continue
			}
			live = append(live, ev)
		}
		clear(q.lin)
		q.lin = q.lin[:0]
		q.linHead = 0
		return live
	}
	for i, b := range q.buckets {
		for _, ev := range b {
			if ev.canceled {
				q.release(ev)
				continue
			}
			live = append(live, ev)
		}
		clear(b)
		q.buckets[i] = b[:0]
	}
	return live
}

// toBucketed switches from linear to calendar mode, sizing the ring for
// the current population. The linear lane is already sorted, so the
// collected slice needs no re-sort.
func (q *calQueue) toBucketed() {
	live := q.collectLive()
	q.bucketed = true
	nb := calMinBuckets
	for nb < len(live) {
		nb *= 2
	}
	q.placeBucketed(live, nb)
}

// toLinear switches from calendar to linear mode, merging the surviving
// bucket contents back into one sorted lane.
func (q *calQueue) toLinear() {
	live := q.collectLive()
	slices.SortFunc(live, func(a, b *event) int {
		if eventBefore(a, b) {
			return -1
		}
		return 1
	})
	q.bucketed = false
	q.cached = nil
	q.lin = append(q.lin[:0], live...)
	q.linHead = 0
	q.n = len(live)
	q.phys = len(live)
}

// rebuild resizes the ring to nb buckets, dropping canceled entries along
// the way. Bucketed mode only.
func (q *calQueue) rebuild(nb int) {
	q.placeBucketed(q.collectLive(), nb)
}

// placeBucketed retunes the bucket width to the live events' mean spacing
// and distributes them over a ring of nb buckets.
func (q *calQueue) placeBucketed(live []*event, nb int) {
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, ev := range live {
		if ev.t < minT {
			minT = ev.t
		}
		if ev.t > maxT {
			maxT = ev.t
		}
	}
	if q.buckets == nil || nb != len(q.buckets) {
		q.buckets = make([][]*event, nb)
		q.mask = nb - 1
	}
	if len(live) > 1 && maxT > minT {
		w := (maxT - minT) / float64(len(live))
		// Keep bucket indices well inside int range even for far-future
		// events: t/width stays below ~1e15.
		if min := maxT * 1e-15; w < min {
			w = min
		}
		q.width = w
		q.invWidth = 1 / w
	}
	q.cached = nil
	for _, ev := range live {
		q.bucketInsert(q.bucketOf(ev.t), ev)
	}
	q.n = len(live)
	q.phys = len(live)
}

// reset discards all pending events and the pool; used by Shutdown, after
// which the environment is dead.
func (q *calQueue) reset() {
	q.lin = nil
	q.linHead = 0
	q.bucketed = false
	q.buckets = nil
	q.free = nil
	q.cached = nil
	q.n = 0
	q.phys = 0
}
