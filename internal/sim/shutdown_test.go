package sim

import (
	"testing"
)

func TestShutdownKillsParkedProcesses(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q")
	r := NewResource(e, "cpu", 1)
	reached := false
	e.Spawn("queued", func(p *Proc) {
		_, _ = q.Get(p) // parks forever: nothing ever Puts
		reached = true
	})
	e.Spawn("holder", func(p *Proc) {
		_ = r.Use(p, 1e9) // still holding the server at the bound
		reached = true
	})
	e.Spawn("waiter", func(p *Proc) {
		_ = r.Acquire(p) // parks behind holder
		reached = true
	})
	e.Run(10)
	if e.Live() != 3 {
		t.Fatalf("Live before Shutdown = %d, want 3", e.Live())
	}
	e.Shutdown()
	if e.Live() != 0 {
		t.Fatalf("Live after Shutdown = %d, want 0", e.Live())
	}
	if reached {
		t.Fatal("a killed process ran code past its blocking point")
	}
	if !e.Terminated() {
		t.Fatal("Terminated() must report true after Shutdown")
	}
}

func TestShutdownUnstartedProcess(t *testing.T) {
	e := NewEnv()
	ran := false
	e.SpawnAt(1e6, "late", func(p *Proc) { ran = true })
	e.Run(10)
	e.Shutdown()
	if e.Live() != 0 {
		t.Fatalf("Live = %d, want 0", e.Live())
	}
	if ran {
		t.Fatal("unstarted process must never run")
	}
}

func TestShutdownRunsDefers(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q")
	cleaned := false
	e.Spawn("p", func(p *Proc) {
		defer func() { cleaned = true }()
		_, _ = q.Get(p)
	})
	e.Run(10)
	e.Shutdown()
	if !cleaned {
		t.Fatal("Shutdown must unwind the process stack, running defers")
	}
}

// TestShutdownRekillsReparkedProcess covers a process whose defer blocks
// again (here: on another queue) while being killed — Shutdown must keep
// killing until the environment is empty.
func TestShutdownRekillsReparkedProcess(t *testing.T) {
	e := NewEnv()
	q1 := NewQueue[int](e, "q1")
	q2 := NewQueue[int](e, "q2")
	e.Spawn("stubborn", func(p *Proc) {
		defer func() {
			recover()        // swallow the first kill...
			_, _ = q2.Get(p) // ...and park again
		}()
		_, _ = q1.Get(p)
	})
	e.Run(10)
	e.Shutdown()
	if e.Live() != 0 {
		t.Fatalf("Live = %d, want 0", e.Live())
	}
}

func TestShutdownIdempotentAndEmptyEnv(t *testing.T) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) { p.Hold(1) })
	e.RunAll() // drains naturally
	e.Shutdown()
	e.Shutdown() // second call must be a no-op
	if e.Live() != 0 {
		t.Fatalf("Live = %d, want 0", e.Live())
	}

	// An environment that never ran anything.
	e2 := NewEnv()
	e2.Shutdown()
	if !e2.Terminated() {
		t.Fatal("empty env must still mark Terminated")
	}
}

// TestShutdownLargeParkedPopulation is the regression test for the old
// quadratic Shutdown: each kill round rescanned the whole process table for
// the minimum live id, so tearing down n parked processes cost O(n²) map
// scans. The rewrite sorts the ids once per round; this population size
// finishes instantly now and took seconds before.
func TestShutdownLargeParkedPopulation(t *testing.T) {
	const parked = 20_000
	e := NewEnv()
	q := NewQueue[int](e, "q")
	r := NewResource(e, "cpu", 1)
	unwound := 0
	for i := 0; i < parked; i++ {
		blockOnQueue := i%2 == 0
		e.Spawn("p", func(p *Proc) {
			defer func() { unwound++ }()
			if blockOnQueue {
				_, _ = q.Get(p)
			} else {
				_ = r.Acquire(p)
				p.Hold(1e9)
			}
		})
	}
	e.Run(10)
	if e.Live() != parked {
		t.Fatalf("Live before Shutdown = %d, want %d", e.Live(), parked)
	}
	e.Shutdown()
	if e.Live() != 0 {
		t.Fatalf("Live after Shutdown = %d, want 0", e.Live())
	}
	if unwound != parked {
		t.Fatalf("unwound %d processes, want %d", unwound, parked)
	}
}

func TestShutdownDeterministicKillOrder(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		q := NewQueue[int](e, "q")
		var order []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				defer func() { order = append(order, name) }()
				_, _ = q.Get(p)
			})
		}
		e.Run(10)
		e.Shutdown()
		return order
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("kill orders %v / %v, want 3 entries each", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("kill order differs between runs: %v vs %v", a, b)
		}
	}
}
