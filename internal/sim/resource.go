package sim

import (
	"fmt"

	"carat/internal/stats"
)

// Resource is a multi-server service station with a FCFS queue. It models
// queueing centers such as a CPU or a disk: processes Acquire a server,
// Hold for their service time, and Release.
//
// A Resource collects the statistics a queueing study needs: utilization,
// mean queue length (waiting + in service), completion count, and the wait
// and residence time distributions.
type Resource struct {
	env     *Env
	name    string
	servers int
	inUse   int

	// waiters[wHead:] is the FCFS wait queue. Dequeue advances wHead and
	// the backing array is reused once the queue empties, so steady-state
	// queueing does not grow the slice.
	waiters []*resWaiter
	wHead   int
	pool    []*resWaiter // free waiter records; steady state allocates none

	busy        stats.TimeWeighted // number of busy servers over time
	population  stats.TimeWeighted // waiting + in service
	completions stats.Counter
	waitTime    stats.Tally
	residence   stats.Tally
}

type resWaiter struct {
	r       *Resource
	p       *Proc
	n       int
	arrived float64
	removed bool
}

// detach implements the interrupt hook: the waiter stays in the FCFS slice
// as a tombstone (reclaimed when dispatch reaches it) and the customer
// leaves the station's population immediately.
func (w *resWaiter) detach() {
	w.removed = true
	w.r.population.Adjust(-1, w.r.env.now)
}

// newWaiter takes a waiter record from the station's pool.
func (r *Resource) newWaiter(p *Proc, n int) *resWaiter {
	var w *resWaiter
	if k := len(r.pool); k > 0 {
		w = r.pool[k-1]
		r.pool[k-1] = nil
		r.pool = r.pool[:k-1]
	} else {
		w = &resWaiter{}
	}
	*w = resWaiter{r: r, p: p, n: n, arrived: r.env.now}
	return w
}

func (r *Resource) freeWaiter(w *resWaiter) {
	*w = resWaiter{}
	r.pool = append(r.pool, w)
}

// popWaiter removes the queue head, resetting the backing array for reuse
// when the queue empties.
func (r *Resource) popWaiter() *resWaiter {
	w := r.waiters[r.wHead]
	r.waiters[r.wHead] = nil
	r.wHead++
	if r.wHead == len(r.waiters) {
		r.waiters = r.waiters[:0]
		r.wHead = 0
	}
	return w
}

// NewResource creates a station with the given number of servers (>= 1).
func NewResource(env *Env, name string, servers int) *Resource {
	if servers < 1 {
		panic("sim: resource needs at least one server")
	}
	r := &Resource{env: env, name: name, servers: servers}
	r.busy.Set(0, env.now)
	r.population.Set(0, env.now)
	return r
}

// Name returns the station name.
func (r *Resource) Name() string { return r.name }

// Servers returns the number of servers.
func (r *Resource) Servers() int { return r.servers }

// InUse returns the number of servers currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting for a server.
func (r *Resource) QueueLen() int { return len(r.waiters) - r.wHead }

// Acquire obtains one server, waiting FCFS if none is free. The wait is
// interruptible; on interrupt the process leaves the queue and the error is
// returned.
func (r *Resource) Acquire(p *Proc) error { return r.AcquireN(p, 1) }

// AcquireN obtains n servers at once (all-or-nothing), waiting FCFS.
func (r *Resource) AcquireN(p *Proc, n int) error {
	if n < 1 || n > r.servers {
		panic(fmt.Sprintf("sim: AcquireN(%d) on %q with %d servers", n, r.name, r.servers))
	}
	now := r.env.now
	r.population.Adjust(1, now)
	if r.wHead == len(r.waiters) && r.inUse+n <= r.servers {
		r.grant(n)
		r.waitTime.Add(0)
		return nil
	}
	w := r.newWaiter(p, n)
	r.waiters = append(r.waiters, w)
	p.waiter = w
	if err := p.park(); err != nil {
		r.dispatch() // our slot may now be grantable to someone behind us
		return err
	}
	r.waitTime.Add(r.env.now - w.arrived)
	r.freeWaiter(w)
	return nil
}

// grant marks n servers busy.
func (r *Resource) grant(n int) {
	r.inUse += n
	r.busy.Set(float64(r.inUse), r.env.now)
}

// Release returns one server and hands it to the head of the queue.
func (r *Resource) Release() { r.ReleaseN(1) }

// ReleaseN returns the n servers obtained by a single AcquireN. One call
// counts as one customer completion regardless of n, so a customer must
// release everything it acquired in one call.
func (r *Resource) ReleaseN(n int) {
	if n < 1 || n > r.inUse {
		panic(fmt.Sprintf("sim: ReleaseN(%d) on %q with %d in use", n, r.name, r.inUse))
	}
	now := r.env.now
	r.inUse -= n
	r.busy.Set(float64(r.inUse), now)
	r.population.Adjust(-1, now)
	r.completions.Inc()
	r.dispatch()
}

// dispatch grants servers to queued waiters in FCFS order while capacity
// allows, skipping waiters removed by interrupts.
func (r *Resource) dispatch() {
	for r.wHead < len(r.waiters) {
		w := r.waiters[r.wHead]
		if w.removed {
			r.popWaiter()
			r.freeWaiter(w)
			continue
		}
		if r.inUse+w.n > r.servers {
			return
		}
		r.popWaiter()
		r.grant(w.n)
		w.p.waiter = nil
		r.env.wake(w.p, nil)
	}
}

// Use acquires a server, holds it for service time d, and releases it.
// The queue wait is interruptible; once service starts it runs to
// completion. On interrupt, no service is performed.
func (r *Resource) Use(p *Proc, d float64) error {
	start := r.env.now
	if err := r.Acquire(p); err != nil {
		return err
	}
	p.Hold(d)
	r.residence.Add(r.env.now - start)
	r.Release()
	return nil
}

// Utilization returns the time-average fraction of servers busy over the
// observation window, at time t.
func (r *Resource) Utilization(t float64) float64 {
	return r.busy.Mean(t) / float64(r.servers)
}

// BusyTime returns total accumulated server-busy time up to t.
func (r *Resource) BusyTime(t float64) float64 { return r.busy.Integral(t) }

// MeanPopulation returns the time-average number of processes at the
// station (waiting or in service) at time t.
func (r *Resource) MeanPopulation(t float64) float64 { return r.population.Mean(t) }

// Completions returns the number of service completions (servers released).
func (r *Resource) Completions() int64 { return r.completions.N() }

// Throughput returns completions per unit time over the observation window.
func (r *Resource) Throughput(t float64) float64 { return r.completions.Rate(t) }

// MeanWait returns the average time spent queued before service.
func (r *Resource) MeanWait() float64 { return r.waitTime.Mean() }

// MeanResidence returns the average wait+service time observed by Use.
func (r *Resource) MeanResidence() float64 { return r.residence.Mean() }

// ResetStats truncates the statistics window at time t (e.g. after warm-up)
// without disturbing the station state.
func (r *Resource) ResetStats(t float64) {
	r.busy.ResetAt(t)
	r.busy.Set(float64(r.inUse), t)
	r.population.ResetAt(t)
	r.completions.ResetAt(t)
	r.waitTime.Reset()
	r.residence.Reset()
}
