// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// Model code is written as ordinary sequential Go functions ("processes")
// that advance simulated time with Hold, contend for Resources, and exchange
// messages through Queues. The kernel runs exactly one process at a time and
// orders simultaneous events by schedule order, so a simulation with a fixed
// seed is fully reproducible.
//
// The kernel is intentionally small: an event heap, a process abstraction
// built on goroutine handoff, and a handful of synchronization primitives
// (Resource, Queue, Event) that cover the needs of queueing-network style
// models.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrInterrupted is returned from interruptible blocking calls when another
// process interrupts the waiter. Use errors.Is to test for it; the concrete
// error may carry a cause (see Interrupt).
var ErrInterrupted = errors.New("sim: interrupted")

// InterruptError is the error delivered to a parked process by Interrupt.
// It wraps ErrInterrupted and records the cause supplied by the interrupter.
type InterruptError struct {
	Cause error
}

func (e *InterruptError) Error() string {
	if e.Cause == nil {
		return "sim: interrupted"
	}
	return "sim: interrupted: " + e.Cause.Error()
}

// Unwrap reports ErrInterrupted so errors.Is(err, ErrInterrupted) holds.
func (e *InterruptError) Unwrap() error { return ErrInterrupted }

// errKilled is delivered on a process's resume channel by Shutdown. It never
// reaches model code: yield converts it into a killSentinel panic that
// unwinds the process goroutine, and the spawn wrapper swallows the sentinel.
var errKilled = errors.New("sim: environment shut down")

// killSentinel is the panic value used to unwind a process goroutine during
// Shutdown. It is recovered (and discarded) by the spawn wrapper.
type killSentinel struct{}

// event is a scheduled callback. Events at equal times fire in schedule order.
type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment: a virtual clock and an event queue.
// Create one with NewEnv, spawn processes with Spawn, then call Run.
// An Env must not be shared between OS threads while running; all model
// code executes under the kernel's single-runnable discipline.
type Env struct {
	now     float64
	events  eventHeap
	seq     int64
	procSeq int64

	// done is the handoff channel: the running process (or an event
	// callback that resumed a process) signals the kernel through it.
	done chan struct{}

	running   bool
	nlive     int             // live (spawned, not yet terminated) processes
	procs     map[int64]*Proc // live processes by id, for Shutdown
	dead      bool            // set by Shutdown; the environment is finished
	panicked  interface{}
	panicProc string
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{done: make(chan struct{}), procs: make(map[int64]*Proc)}
}

// Now returns the current simulation time.
func (e *Env) Now() float64 { return e.now }

// schedule enqueues fn to run at time t. Panics if t is in the past.
func (e *Env) schedule(t float64, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &event{t: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// At schedules fn to run as a bare event (not a process) at absolute time t.
// The callback must not block; to model activity over time, spawn a process.
func (e *Env) At(t float64, fn func()) { e.schedule(t, fn) }

// After schedules fn to run d time units from now.
func (e *Env) After(d float64, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.schedule(e.now+d, fn)
}

// Run executes events until the event queue is empty or the clock would pass
// until. It returns the time at which the simulation stopped. Run may be
// called repeatedly to continue a paused simulation.
func (e *Env) Run(until float64) float64 {
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		next := e.events[0]
		if next.t > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.events)
		e.now = next.t
		next.fn()
		if e.panicked != nil {
			panic(fmt.Sprintf("sim: process %s panicked: %v", e.panicProc, e.panicked))
		}
	}
	return e.now
}

// RunAll executes events until the queue drains, with no time bound.
func (e *Env) RunAll() float64 {
	for len(e.events) > 0 {
		next := heap.Pop(&e.events).(*event)
		e.now = next.t
		next.fn()
		if e.panicked != nil {
			panic(fmt.Sprintf("sim: process %s panicked: %v", e.panicProc, e.panicked))
		}
	}
	return e.now
}

// Live returns the number of spawned processes that have not terminated.
func (e *Env) Live() int { return e.nlive }

// Terminated reports whether Shutdown has begun. Model code unwinding
// during a shutdown can test this to distinguish an abrupt teardown (a
// simulated crash: leave shared state frozen) from a normal completion.
func (e *Env) Terminated() bool { return e.dead }

// Shutdown terminates the simulation: every live process goroutine is
// unwound (via a kill sentinel panic recovered in the spawn wrapper) and
// all pending events are discarded. Without it, any process still parked
// when Run stops at its time bound is a goroutine blocked forever — a
// leak that compounds across repeated simulations in one OS process.
//
// Deferred functions of unwound processes do run; they may schedule events
// (discarded) or block again (the process is simply killed again). The
// environment must not be used after Shutdown. Calling Shutdown on an
// already-drained or already-shut-down environment is a no-op.
func (e *Env) Shutdown() {
	if e.running {
		panic("sim: Shutdown called from inside Run")
	}
	e.dead = true
	for len(e.procs) > 0 {
		// Kill in ascending id order so teardown is deterministic.
		var victim *Proc
		for _, p := range e.procs {
			if victim == nil || p.id < victim.id {
				victim = p
			}
		}
		if !victim.started {
			// Its start event never fired, so no goroutine exists yet.
			e.nlive--
			delete(e.procs, victim.id)
			continue
		}
		// The goroutine is parked in yield's resume receive (the kernel is
		// stopped, so no process is mid-run). Deliver the kill and wait for
		// the wrapper's exit handshake. A process whose deferred functions
		// block again re-enters e.procs-visible parked state and is killed
		// again on the next iteration.
		victim.resume <- errKilled
		<-e.done
	}
	e.events = nil
	if e.panicked != nil {
		panic(fmt.Sprintf("sim: process %s panicked during shutdown: %v", e.panicProc, e.panicked))
	}
}

// Proc is the handle a process function uses to interact with the kernel.
// It is valid only inside the process function it was passed to.
type Proc struct {
	env  *Env
	id   int64
	name string

	resume chan error

	// started flips once the start event fires and the goroutine exists;
	// Shutdown must not deliver a kill to a process that was never started.
	started bool

	// cancel detaches the process from whatever waiter list it is parked
	// on. It is set by interruptible blocking primitives and nil while the
	// process is runnable or parked non-interruptibly.
	cancel func()
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the unique process id.
func (p *Proc) ID() int64 { return p.id }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current simulation time.
func (p *Proc) Now() float64 { return p.env.now }

// Spawn creates a process running fn, starting at the current time.
// The process begins execution when the kernel reaches its start event.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt creates a process running fn, starting at absolute time t >= now.
func (e *Env) SpawnAt(t float64, name string, fn func(p *Proc)) *Proc {
	e.procSeq++
	p := &Proc{env: e, id: e.procSeq, name: name, resume: make(chan error)}
	e.nlive++
	e.procs[p.id] = p
	e.schedule(t, func() {
		p.started = true
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, killed := r.(killSentinel); !killed {
						e.panicked = r
						e.panicProc = p.name
					}
				}
				e.nlive--
				delete(e.procs, p.id)
				e.done <- struct{}{}
			}()
			if err := <-p.resume; err != nil {
				// A process can be interrupted before its first
				// instruction only through kernel misuse.
				panic("sim: process interrupted before start")
			}
			fn(p)
		}()
		p.resume <- nil
		<-e.done
	})
	return p
}

// yield hands control from the running process back to the kernel and
// blocks until some event resumes this process. The returned error is the
// value passed to wake (nil for normal wakeups, an *InterruptError for
// interrupts). A kill delivered by Shutdown never returns: it unwinds the
// goroutine with a sentinel panic the spawn wrapper recovers.
func (p *Proc) yield() error {
	p.env.done <- struct{}{}
	err := <-p.resume
	if err == errKilled {
		panic(killSentinel{})
	}
	return err
}

// wake schedules process p to resume at the current time with err as the
// result of its pending yield. All wakeups flow through the event queue so
// that only one process runs at a time.
func (e *Env) wake(p *Proc, err error) {
	e.schedule(e.now, func() {
		p.resume <- err
		<-e.done
	})
}

// Hold advances the process's local time by d. It is not interruptible.
func (p *Proc) Hold(d float64) {
	if d < 0 {
		panic("sim: negative hold")
	}
	if d == 0 {
		return
	}
	e := p.env
	e.schedule(e.now+d, func() {
		p.resume <- nil
		<-e.done
	})
	if err := p.yield(); err != nil {
		panic("sim: Hold interrupted: " + err.Error())
	}
}

// park blocks the process until woken. Before calling park the primitive
// must have registered the process on a waiter list and set p.cancel to a
// function that removes it from that list. park clears cancel on wakeup.
func (p *Proc) park() error {
	err := p.yield()
	p.cancel = nil
	return err
}

// Interrupt wakes p with an *InterruptError carrying cause, provided p is
// parked on an interruptible primitive (lock wait, queue wait, event wait).
// It reports whether the interrupt was delivered. Interrupting a runnable
// process or one blocked in Hold is not supported and returns false.
func (p *Proc) Interrupt(cause error) bool {
	if p.cancel == nil {
		return false
	}
	p.cancel()
	p.cancel = nil
	p.env.wake(p, &InterruptError{Cause: cause})
	return true
}

// Interruptible reports whether the process is currently parked on an
// interruptible primitive.
func (p *Proc) Interruptible() bool { return p.cancel != nil }
