// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// Model code is written as ordinary sequential Go functions ("processes")
// that advance simulated time with Hold, contend for Resources, and exchange
// messages through Queues. The kernel runs exactly one process at a time and
// orders simultaneous events by schedule order, so a simulation with a fixed
// seed is fully reproducible.
//
// Internally the kernel is a single-threaded state-machine event loop: an
// indexed calendar-queue scheduler over pooled event structs, dispatching
// process continuations inline via coroutine switches (iter.Pull). A
// process is a coroutine the kernel resumes and that yields back when it
// blocks — one user-space switch per wakeup, with the Go scheduler, channel
// locks and goroutine parking entirely off the hot path. The process API
// (Proc, Hold, Resource, Queue, Event) is a thin veneer over this loop, so
// model code still reads as sequential programs.
package sim

import (
	"errors"
	"fmt"
	"iter"
	"math"
	"slices"
)

// ErrInterrupted is returned from interruptible blocking calls when another
// process interrupts the waiter. Use errors.Is to test for it; the concrete
// error may carry a cause (see Interrupt).
var ErrInterrupted = errors.New("sim: interrupted")

// InterruptError is the error delivered to a parked process by Interrupt.
// It wraps ErrInterrupted and records the cause supplied by the interrupter.
type InterruptError struct {
	Cause error
}

func (e *InterruptError) Error() string {
	if e.Cause == nil {
		return "sim: interrupted"
	}
	return "sim: interrupted: " + e.Cause.Error()
}

// Unwrap reports ErrInterrupted so errors.Is(err, ErrInterrupted) holds.
func (e *InterruptError) Unwrap() error { return ErrInterrupted }

// killSentinel is the panic value used to unwind a process coroutine during
// Shutdown. It is recovered (and discarded) by the process wrapper.
type killSentinel struct{}

// detacher is implemented by the waiter records of the interruptible
// primitives (Resource, Queue, Event): detach removes the record from its
// waiter list so the interrupted process stops being a wakeup target.
type detacher interface{ detach() }

// Env is a simulation environment: a virtual clock and an event queue.
// Create one with NewEnv, spawn processes with Spawn, then call Run.
// An Env must not be shared between OS threads while running; all model
// code executes under the kernel's single-runnable discipline.
type Env struct {
	now     float64
	seq     int64
	procSeq int64
	q       calQueue

	// nowQ[nowHead:] is the same-time FIFO: events scheduled at exactly the
	// current clock reading (wakeups, zero-delay callbacks). They are sorted
	// by construction — seq is monotonic — so they bypass the calendar
	// queue's bucket machinery entirely. The clock cannot advance while the
	// FIFO is non-empty (its events precede everything in the calendar), so
	// the t == now invariant holds for every entry.
	nowQ    []*event
	nowHead int

	running bool
	until   float64 // time bound of the active Run/RunAll, for Hold fusion

	nlive     int             // live (spawned, not yet terminated) processes
	procs     map[int64]*Proc // live processes by id, for Shutdown
	dead      bool            // set by Shutdown; the environment is finished
	panicked  interface{}
	panicProc string

	// evwPool recycles Event waiter records environment-wide (Events are
	// typically short-lived, so they cannot pool their own waiters).
	evwPool []*eventWaiter
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	e := &Env{procs: make(map[int64]*Proc)}
	e.q.init()
	return e
}

// Now returns the current simulation time.
func (e *Env) Now() float64 { return e.now }

// schedule enqueues a pooled event at time t. Events at exactly the current
// time go to the same-time FIFO; future events go to the calendar queue.
// Panics if t is in the past.
func (e *Env) schedule(t float64) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	ev := e.q.alloc()
	ev.t, ev.seq = t, e.seq
	if t == e.now {
		e.nowQ = append(e.nowQ, ev)
	} else {
		e.q.push(ev)
	}
	return ev
}

// peekNext returns the earliest pending event — the same-time FIFO head or
// the calendar minimum, whichever is (t, seq)-first — or nil if none.
func (e *Env) peekNext() *event {
	c := e.q.peek()
	if e.nowHead < len(e.nowQ) {
		nw := e.nowQ[e.nowHead]
		if c == nil || eventBefore(nw, c) {
			return nw
		}
	}
	return c
}

// popNext removes ev, which must be the event peekNext just returned.
func (e *Env) popNext(ev *event) {
	if e.nowHead < len(e.nowQ) && e.nowQ[e.nowHead] == ev {
		e.nowQ[e.nowHead] = nil
		e.nowHead++
		if e.nowHead == len(e.nowQ) {
			e.nowQ = e.nowQ[:0]
			e.nowHead = 0
		}
		return
	}
	e.q.pop()
}

// At schedules fn to run as a bare event (not a process) at absolute time t.
// The callback must not block; to model activity over time, spawn a process.
func (e *Env) At(t float64, fn func()) {
	ev := e.schedule(t)
	ev.kind, ev.fn = evCall, fn
}

// After schedules fn to run d time units from now.
func (e *Env) After(d float64, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	e.At(e.now+d, fn)
}

// Run executes events until the event queue is empty or the clock would pass
// until. On return the clock reads until on both exit paths — queue drained
// early and bound reached — so a subsequent After(d) schedules relative to
// the end of the interval that was simulated, not relative to whenever the
// last event happened to fire. (The only exception: until in the past never
// moves the clock backward.)
//
// The return value is the time at which the simulation stopped executing:
// until when the bound was reached with events still pending, or the time of
// the last executed event when the queue drained first. Callers measuring
// rates over the simulated interval should use the returned stop time as the
// window end; a drained queue means nothing happened after it. Run may be
// called repeatedly to continue a paused simulation.
func (e *Env) Run(until float64) float64 {
	return e.runLoop(until, true)
}

// RunAll executes events until the queue drains, with no time bound. It
// returns the time of the last event executed (the clock is not advanced
// past it: with no bound there is no "end of interval" to advance to).
func (e *Env) RunAll() float64 {
	return e.runLoop(math.Inf(1), false)
}

// runLoop is the kernel: pop the minimum (t, seq) event, advance the clock,
// dispatch the continuation inline, repeat. bounded selects the drained-
// queue clock semantics (Run advances to until, RunAll does not). It
// returns the stop time: the clock as of the last executed event if the
// queue drained, the bound otherwise.
func (e *Env) runLoop(until float64, bounded bool) float64 {
	e.running = true
	e.until = until
	defer func() { e.running = false }()
	for {
		ev := e.peekNext()
		if ev == nil {
			stop := e.now
			if bounded && until > e.now {
				e.now = until
			}
			return stop
		}
		if ev.t > until {
			if until > e.now {
				e.now = until
			}
			return e.now
		}
		e.popNext(ev)
		e.now = ev.t
		e.dispatch(ev)
		if e.panicked != nil {
			panic(fmt.Sprintf("sim: process %s panicked: %v", e.panicProc, e.panicked))
		}
	}
}

// dispatch runs one event. The event is released to the pool first, so the
// continuation can schedule freely without growing the pool.
func (e *Env) dispatch(ev *event) {
	switch ev.kind {
	case evResume:
		p, err := ev.proc, ev.err
		e.q.release(ev)
		e.resume(p, err)
	case evCall:
		fn := ev.fn
		e.q.release(ev)
		fn()
	case evStart:
		p := ev.proc
		e.q.release(ev)
		p.started = true
		p.next, p.stop = iter.Pull(p.coroutine)
		e.resume(p, nil)
	}
}

// resume transfers control into p's coroutine with err as the result of its
// pending yield, and returns when p blocks again or terminates.
func (e *Env) resume(p *Proc, err error) {
	p.resumeErr = err
	p.next()
}

// Live returns the number of spawned processes that have not terminated.
func (e *Env) Live() int { return e.nlive }

// Terminated reports whether Shutdown has begun. Model code unwinding
// during a shutdown can test this to distinguish an abrupt teardown (a
// simulated crash: leave shared state frozen) from a normal completion.
func (e *Env) Terminated() bool { return e.dead }

// Shutdown terminates the simulation: every live process coroutine is
// unwound (via a kill sentinel panic recovered in the process wrapper) and
// all pending events are discarded. Without it, any process still parked
// when Run stops at its time bound is a suspended coroutine pinned forever —
// a leak that compounds across repeated simulations in one OS process.
//
// Processes are killed in ascending id order, one sorted pass per
// generation: a pass snapshots the live ids, sorts them once, and kills
// each (teardown is O(n log n), not the quadratic min-scan it replaced);
// processes spawned by dying defers are collected by the next pass.
// Deferred functions of unwound processes do run; they may schedule events
// (discarded) or block again (the blocking call unwinds immediately: the
// kill is permanent). The environment must not be used after Shutdown.
// Calling Shutdown on an already-drained or already-shut-down environment
// is a no-op.
func (e *Env) Shutdown() {
	if e.running {
		panic("sim: Shutdown called from inside Run")
	}
	e.dead = true
	for len(e.procs) > 0 {
		ids := make([]int64, 0, len(e.procs))
		for id := range e.procs {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		for _, id := range ids {
			p, ok := e.procs[id]
			if !ok {
				continue
			}
			if !p.started {
				// Its start event never fired, so no coroutine exists yet.
				e.nlive--
				delete(e.procs, p.id)
				continue
			}
			// The coroutine is suspended in a yield (the kernel is stopped,
			// so no process is mid-run). stop makes that yield report the
			// kill, unwinding the coroutine synchronously — including any
			// deferred functions, whose own blocking calls unwind the same
			// way.
			p.stop()
		}
	}
	e.nowQ, e.nowHead = nil, 0
	e.q.reset()
	if e.panicked != nil {
		panic(fmt.Sprintf("sim: process %s panicked during shutdown: %v", e.panicProc, e.panicked))
	}
}

// Proc is the handle a process function uses to interact with the kernel.
// It is valid only inside the process function it was passed to.
type Proc struct {
	env  *Env
	id   int64
	name string
	fn   func(*Proc)

	// Coroutine handles: next resumes the process (kernel side), stop
	// unwinds it, yieldFn suspends it (process side). resumeErr carries the
	// wakeup result across the switch.
	next      func() (struct{}, bool)
	stop      func()
	yieldFn   func(struct{}) bool
	resumeErr error

	// started flips once the start event fires and the coroutine exists;
	// Shutdown must not unwind a process that was never started.
	started bool
	// terminated flips when the process function returns or is unwound.
	terminated bool

	// waiter is the waiter-list record the process is parked on. It is set
	// by interruptible blocking primitives and nil while the process is
	// runnable or parked non-interruptibly.
	waiter detacher
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// ID returns the unique process id.
func (p *Proc) ID() int64 { return p.id }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current simulation time.
func (p *Proc) Now() float64 { return p.env.now }

// Spawn creates a process running fn, starting at the current time.
// The process begins execution when the kernel reaches its start event.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt creates a process running fn, starting at absolute time t >= now.
func (e *Env) SpawnAt(t float64, name string, fn func(p *Proc)) *Proc {
	e.procSeq++
	p := &Proc{env: e, id: e.procSeq, name: name, fn: fn}
	e.nlive++
	e.procs[p.id] = p
	ev := e.schedule(t)
	ev.kind, ev.proc = evStart, p
	return p
}

// coroutine is the body the kernel runs inside iter.Pull: it publishes the
// yield handle, runs the model function, and on the way out — normal
// return, model panic, or kill — performs the liveness bookkeeping. Model
// panics are stashed for the kernel loop to rethrow with the process name;
// the kill sentinel is swallowed.
func (p *Proc) coroutine(yield func(struct{}) bool) {
	p.yieldFn = yield
	defer func() {
		e := p.env
		if r := recover(); r != nil {
			if _, killed := r.(killSentinel); !killed {
				e.panicked = r
				e.panicProc = p.name
			}
		}
		p.terminated = true
		e.nlive--
		delete(e.procs, p.id)
	}()
	p.fn(p)
}

// yield suspends the process until the kernel resumes it. The returned
// error is the wakeup result (nil for normal wakeups, an *InterruptError
// for interrupts). A kill delivered by Shutdown never returns: the yield
// reports it and the coroutine unwinds with a sentinel panic the process
// wrapper recovers.
func (p *Proc) yield() error {
	if !p.yieldFn(struct{}{}) {
		panic(killSentinel{})
	}
	return p.resumeErr
}

// wake schedules process p to resume at the current time with err as the
// result of its pending yield. All wakeups flow through the event queue so
// that only one process runs at a time and simultaneous wakeups keep their
// schedule order.
func (e *Env) wake(p *Proc, err error) {
	ev := e.schedule(e.now)
	ev.kind, ev.proc, ev.err = evResume, p, err
}

// Hold advances the process's local time by d. It is not interruptible.
//
// Fast path ("hold fusion"): when no pending event precedes the hold's
// expiry and the expiry lies within the active Run bound, the kernel would
// pop the expiry event immediately after this process yields — nothing can
// run in between. In that case the clock advances in place and the
// coroutine switch, the queue traffic and the event are all skipped. A
// sequence number is still consumed so the slow path's dispatch order is
// reproduced exactly.
func (p *Proc) Hold(d float64) {
	if d < 0 {
		panic("sim: negative hold")
	}
	if d == 0 {
		return
	}
	e := p.env
	t := e.now + d
	if e.running && t <= e.until && e.nowHead == len(e.nowQ) {
		if min := e.q.peek(); min == nil || min.t > t {
			e.seq++
			e.now = t
			return
		}
	}
	ev := e.schedule(t)
	ev.kind, ev.proc = evResume, p
	if err := p.yield(); err != nil {
		panic("sim: Hold interrupted: " + err.Error())
	}
}

// park blocks the process until woken. Before calling park the primitive
// must have registered the process on a waiter list and set p.waiter to
// that record. park clears the registration on wakeup.
func (p *Proc) park() error {
	err := p.yield()
	p.waiter = nil
	return err
}

// Interrupt wakes p with an *InterruptError carrying cause, provided p is
// parked on an interruptible primitive (lock wait, queue wait, event wait).
// It reports whether the interrupt was delivered. Interrupting a runnable
// process or one blocked in Hold is not supported and returns false.
func (p *Proc) Interrupt(cause error) bool {
	if p.waiter == nil {
		return false
	}
	p.waiter.detach()
	p.waiter = nil
	p.env.wake(p, &InterruptError{Cause: cause})
	return true
}

// Interruptible reports whether the process is currently parked on an
// interruptible primitive.
func (p *Proc) Interruptible() bool { return p.waiter != nil }
