package sim

// Event is a one-shot synchronization point: any number of processes Wait
// on it, and a single Trigger releases them all. Once triggered, Wait
// returns immediately. A triggered Event can be re-armed with Reset.
//
// Trigger carries a result error that every waiter receives, which the
// CARAT testbed uses to deliver transaction outcomes (commit vs. abort) to
// processes blocked on protocol acknowledgments.
type Event struct {
	env       *Env
	name      string
	triggered bool
	result    error
	waiters   []*eventWaiter
}

type eventWaiter struct {
	p       *Proc
	removed bool
}

// detach implements the interrupt hook: the waiter becomes a tombstone that
// Trigger and Reset skip (and reclaim).
func (w *eventWaiter) detach() { w.removed = true }

// Event waiter records are pooled on the Env, not the Event: the testbed
// creates Events per transaction, so a per-Event pool would never amortize.
func (ev *Event) newWaiter(p *Proc) *eventWaiter {
	e := ev.env
	var w *eventWaiter
	if k := len(e.evwPool); k > 0 {
		w = e.evwPool[k-1]
		e.evwPool[k-1] = nil
		e.evwPool = e.evwPool[:k-1]
	} else {
		w = &eventWaiter{}
	}
	w.p = p
	w.removed = false
	return w
}

func (ev *Event) freeWaiter(w *eventWaiter) {
	w.p = nil
	ev.env.evwPool = append(ev.env.evwPool, w)
}

// NewEvent creates an untriggered event.
func NewEvent(env *Env, name string) *Event {
	return &Event{env: env, name: name}
}

// Name returns the event name.
func (ev *Event) Name() string { return ev.name }

// Triggered reports whether Trigger has been called since the last Reset.
func (ev *Event) Triggered() bool { return ev.triggered }

// Result returns the error passed to Trigger (nil before triggering).
func (ev *Event) Result() error { return ev.result }

// Trigger fires the event, waking all waiters with result. Triggering an
// already-triggered event is a no-op that keeps the original result.
func (ev *Event) Trigger(result error) {
	if ev.triggered {
		return
	}
	ev.triggered = true
	ev.result = result
	ws := ev.waiters
	ev.waiters = ev.waiters[:0]
	for _, w := range ws {
		if !w.removed {
			w.p.waiter = nil
			ev.env.wake(w.p, nil)
		}
		ev.freeWaiter(w)
	}
}

// Reset re-arms a triggered event. It panics if processes are still waiting.
func (ev *Event) Reset() {
	for _, w := range ev.waiters {
		if !w.removed {
			panic("sim: Reset on event with waiters")
		}
	}
	for _, w := range ev.waiters {
		ev.freeWaiter(w)
	}
	ev.triggered = false
	ev.result = nil
	ev.waiters = ev.waiters[:0]
}

// Wait blocks (interruptibly) until the event is triggered, then returns
// the trigger result. If the event is already triggered it returns at once.
// On interrupt the interrupt error is returned instead of the result.
func (ev *Event) Wait(p *Proc) error {
	if ev.triggered {
		return ev.result
	}
	w := ev.newWaiter(p)
	ev.waiters = append(ev.waiters, w)
	p.waiter = w
	if err := p.park(); err != nil {
		return err
	}
	return ev.result
}
