package sim

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHoldAdvancesClock(t *testing.T) {
	e := NewEnv()
	var times []float64
	e.Spawn("p", func(p *Proc) {
		times = append(times, p.Now())
		p.Hold(5)
		times = append(times, p.Now())
		p.Hold(2.5)
		times = append(times, p.Now())
	})
	end := e.RunAll()
	if want := []float64{0, 5, 7.5}; len(times) != 3 || times[0] != want[0] || times[1] != want[1] || times[2] != want[2] {
		t.Fatalf("times = %v, want %v", times, want)
	}
	if end != 7.5 {
		t.Fatalf("end = %v, want 7.5", end)
	}
}

func TestHoldZeroIsNoop(t *testing.T) {
	e := NewEnv()
	ran := false
	e.Spawn("p", func(p *Proc) {
		p.Hold(0)
		ran = true
	})
	e.RunAll()
	if !ran {
		t.Fatal("process did not run")
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEnv()
	reached := false
	e.Spawn("p", func(p *Proc) {
		p.Hold(100)
		reached = true
	})
	end := e.Run(10)
	if end != 10 {
		t.Fatalf("end = %v, want 10", end)
	}
	if reached {
		t.Fatal("process ran past the bound")
	}
	e.Run(200)
	if !reached {
		t.Fatal("process did not resume on continued run")
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v; simultaneous events must fire in schedule order", order)
		}
	}
}

func TestSpawnAtStartsLater(t *testing.T) {
	e := NewEnv()
	var start float64 = -1
	e.SpawnAt(42, "late", func(p *Proc) { start = p.Now() })
	e.RunAll()
	if start != 42 {
		t.Fatalf("start = %v, want 42", start)
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	e := NewEnv()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			trace = append(trace, fmt.Sprintf("a@%v", p.Now()))
			p.Hold(2)
		}
	})
	e.Spawn("b", func(p *Proc) {
		p.Hold(1)
		for i := 0; i < 3; i++ {
			trace = append(trace, fmt.Sprintf("b@%v", p.Now()))
			p.Hold(2)
		}
	})
	e.RunAll()
	want := []string{"a@0", "b@1", "a@2", "b@3", "a@4", "b@5"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	e := NewEnv()
	e.Spawn("boom", func(p *Proc) { panic("kaboom") })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate to Run")
		}
	}()
	e.RunAll()
}

func TestLiveCountsProcesses(t *testing.T) {
	e := NewEnv()
	e.Spawn("short", func(p *Proc) { p.Hold(1) })
	e.Spawn("long", func(p *Proc) { p.Hold(10) })
	if e.Live() != 2 {
		t.Fatalf("Live = %d, want 2", e.Live())
	}
	e.Run(5)
	if e.Live() != 1 {
		t.Fatalf("Live after t=5: %d, want 1", e.Live())
	}
	e.RunAll()
	if e.Live() != 0 {
		t.Fatalf("Live at end: %d, want 0", e.Live())
	}
}

func TestResourceFCFSAndUtilization(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "cpu", 1)
	var finish []float64
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			if err := r.Use(p, 10); err != nil {
				t.Errorf("Use: %v", err)
			}
			finish = append(finish, p.Now())
		})
	}
	end := e.RunAll()
	if end != 30 {
		t.Fatalf("end = %v, want 30", end)
	}
	want := []float64{10, 20, 30}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v (FCFS)", finish, want)
		}
	}
	if u := r.Utilization(30); !almost(u, 1.0, 1e-9) {
		t.Fatalf("utilization = %v, want 1", u)
	}
	if n := r.Completions(); n != 3 {
		t.Fatalf("completions = %d, want 3", n)
	}
	if w := r.MeanWait(); !almost(w, 10, 1e-9) { // waits 0, 10, 20
		t.Fatalf("mean wait = %v, want 10", w)
	}
}

func TestResourceMultiServer(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "pool", 2)
	var finish []float64
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			if err := r.Use(p, 10); err != nil {
				t.Errorf("Use: %v", err)
			}
			finish = append(finish, p.Now())
		})
	}
	e.RunAll()
	// Two run [0,10], two run [10,20].
	want := []float64{10, 10, 20, 20}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if u := r.Utilization(20); !almost(u, 1.0, 1e-9) {
		t.Fatalf("utilization = %v, want 1", u)
	}
}

func TestResourceMeanPopulationLittlesLaw(t *testing.T) {
	// 3 customers, 1 server, service 10 each: L integral = 3*10 + 2*10 + 1*10 = 60,
	// over 30 time units -> mean population 2.
	e := NewEnv()
	r := NewResource(e, "cpu", 1)
	for i := 0; i < 3; i++ {
		e.Spawn("p", func(p *Proc) { _ = r.Use(p, 10) })
	}
	e.RunAll()
	if l := r.MeanPopulation(30); !almost(l, 2.0, 1e-9) {
		t.Fatalf("mean population = %v, want 2", l)
	}
	// Little's law: L = X * R with X = 3/30, R = mean residence (10+20+30)/3.
	x := r.Throughput(30)
	rr := r.MeanResidence()
	if !almost(x*rr, 2.0, 1e-9) {
		t.Fatalf("L=XR violated: X=%v R=%v", x, rr)
	}
}

func TestResourceInterruptLeavesQueue(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "cpu", 1)
	var victim *Proc
	gotErr := make(chan error, 1)
	e.Spawn("holder", func(p *Proc) { _ = r.Use(p, 100) })
	victim = e.Spawn("victim", func(p *Proc) {
		err := r.Acquire(p)
		gotErr <- err
	})
	third := 0.0
	e.Spawn("third", func(p *Proc) {
		if err := r.Use(p, 5); err != nil {
			t.Errorf("third: %v", err)
		}
		third = p.Now()
	})
	e.Spawn("killer", func(p *Proc) {
		p.Hold(10)
		if !victim.Interrupt(errors.New("die")) {
			t.Error("interrupt not delivered")
		}
	})
	e.RunAll()
	err := <-gotErr
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("victim error = %v, want ErrInterrupted", err)
	}
	// third must get the server right after holder releases at t=100.
	if third != 105 {
		t.Fatalf("third finished at %v, want 105", third)
	}
}

func TestInterruptCarriesCause(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q")
	cause := errors.New("deadlock victim")
	var got error
	victim := e.Spawn("v", func(p *Proc) {
		_, err := q.Get(p)
		got = err
	})
	e.Spawn("k", func(p *Proc) {
		p.Hold(1)
		victim.Interrupt(cause)
	})
	e.RunAll()
	var ie *InterruptError
	if !errors.As(got, &ie) || ie.Cause != cause {
		t.Fatalf("got %v, want InterruptError{%v}", got, cause)
	}
}

func TestInterruptRunnableFails(t *testing.T) {
	e := NewEnv()
	p1 := e.Spawn("busy", func(p *Proc) { p.Hold(10) })
	e.Spawn("k", func(p *Proc) {
		p.Hold(1)
		if p1.Interrupt(errors.New("no")) {
			t.Error("interrupt of Hold-blocked process should fail")
		}
	})
	e.RunAll()
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q")
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, err := q.Get(p)
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			got = append(got, v)
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Hold(5)
			q.Put(i * 10)
		}
	})
	e.RunAll()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got = %v, want [10 20 30]", got)
	}
}

func TestQueueBufferedBeforeGet(t *testing.T) {
	e := NewEnv()
	q := NewQueue[string](e, "q")
	q.Put("a")
	q.Put("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	var got []string
	e.Spawn("c", func(p *Proc) {
		for i := 0; i < 2; i++ {
			v, _ := q.Get(p)
			got = append(got, v)
		}
	})
	e.RunAll()
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("got = %v, want [a b]", got)
	}
}

func TestQueueMultipleWaitersFCFS(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.SpawnAt(float64(i), fmt.Sprintf("w%d", i), func(p *Proc) {
			v, _ := q.Get(p)
			order = append(order, i*100+v)
		})
	}
	e.Spawn("prod", func(p *Proc) {
		p.Hold(10)
		q.Put(1)
		q.Put(2)
		q.Put(3)
	})
	e.RunAll()
	want := []int{1, 102, 203}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (FCFS delivery)", order, want)
		}
	}
}

func TestTryGet(t *testing.T) {
	e := NewEnv()
	q := NewQueue[int](e, "q")
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.Put(7)
	v, ok := q.TryGet()
	if !ok || v != 7 {
		t.Fatalf("TryGet = %v,%v want 7,true", v, ok)
	}
}

func TestEventBroadcast(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e, "commit")
	result := errors.New("aborted")
	var woken []float64
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			if err := ev.Wait(p); err != result {
				t.Errorf("Wait = %v, want %v", err, result)
			}
			woken = append(woken, p.Now())
		})
	}
	e.Spawn("t", func(p *Proc) {
		p.Hold(7)
		ev.Trigger(result)
	})
	e.RunAll()
	if len(woken) != 3 {
		t.Fatalf("woken = %v, want 3 wakeups", woken)
	}
	for _, w := range woken {
		if w != 7 {
			t.Fatalf("woken at %v, want 7", w)
		}
	}
	// Waiting after the trigger returns immediately with the result.
	e2 := NewEnv()
	ev2 := NewEvent(e2, "done")
	ev2.Trigger(nil)
	ran := false
	e2.Spawn("late", func(p *Proc) {
		if err := ev2.Wait(p); err != nil {
			t.Errorf("late Wait = %v", err)
		}
		ran = true
	})
	e2.RunAll()
	if !ran {
		t.Fatal("late waiter did not run")
	}
}

func TestEventReset(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e, "cycle")
	ev.Trigger(nil)
	ev.Reset()
	if ev.Triggered() {
		t.Fatal("Reset did not clear trigger")
	}
}

func TestDoubleTriggerKeepsFirstResult(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e, "once")
	first := errors.New("first")
	ev.Trigger(first)
	ev.Trigger(errors.New("second"))
	if ev.Result() != first {
		t.Fatalf("Result = %v, want first", ev.Result())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) { p.Hold(10) })
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(5, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		r := NewResource(e, "cpu", 1)
		var trace []string
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					_ = r.Use(p, float64(1+i))
					trace = append(trace, fmt.Sprintf("%d@%.1f", i, p.Now()))
				}
			})
		}
		e.RunAll()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic trace length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestAcquireNAllOrNothing(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "pool", 3)
	var order []string
	e.Spawn("pair", func(p *Proc) {
		if err := r.AcquireN(p, 2); err != nil {
			t.Errorf("AcquireN: %v", err)
		}
		order = append(order, "pair-in")
		p.Hold(10)
		r.ReleaseN(2)
		order = append(order, "pair-out")
	})
	e.Spawn("triple", func(p *Proc) {
		p.Hold(1)
		// Needs all 3 servers: must wait until the pair releases even
		// though one server is idle meanwhile.
		if err := r.AcquireN(p, 3); err != nil {
			t.Errorf("AcquireN: %v", err)
		}
		order = append(order, "triple-in")
		p.Hold(5)
		r.ReleaseN(3)
	})
	end := e.RunAll()
	if end != 15 {
		t.Fatalf("end = %v, want 15", end)
	}
	want := []string{"pair-in", "pair-out", "triple-in"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAcquireNPanicsBeyondCapacity(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "pool", 2)
	e.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("AcquireN beyond capacity must panic")
			}
		}()
		_ = r.AcquireN(p, 3)
	})
	func() {
		defer func() { recover() }() // the kernel re-panics the process
		e.RunAll()
	}()
}

func TestEventResetWithWaitersPanics(t *testing.T) {
	e := NewEnv()
	ev := NewEvent(e, "held")
	e.Spawn("w", func(p *Proc) { _ = ev.Wait(p) })
	e.Spawn("r", func(p *Proc) {
		p.Hold(1)
		defer func() {
			if recover() == nil {
				t.Error("Reset with waiters must panic")
			}
			ev.Trigger(nil) // release the waiter so the env drains
		}()
		ev.Reset()
	})
	e.RunAll()
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "cpu", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire must panic")
		}
	}()
	r.Release()
}
